# End-to-end flight-recorder check, run as a ctest entry (cmake -P):
#   1. drives campaign_cli with --record-anomalies and a starved step budget
#      (every job is anomalous, so capture fires for real),
#   2. validates every emitted .lumirec with ci/check_recording.py, including
#      the replay leg: run_doctor --verify must reproduce each recording
#      byte-for-byte,
#   3. exercises the doctor's own record path: a livelocking table is
#      recorded, must be diagnosed `cycle`, and must certify.
#
# Expected -D definitions: CLI (campaign_cli binary), DOCTOR (run_doctor
# binary), PYTHON (interpreter), CHECKER (ci/check_recording.py), FIXTURE
# (livelock .lumi table), OUT_DIR (scratch directory).
foreach(var CLI DOCTOR PYTHON CHECKER FIXTURE OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "recording_e2e: missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")
set(recordings "${OUT_DIR}/recordings")

# --max-steps=5 starves every job; the campaign exits 1 (failures reported)
# by design, so only crash-grade exit codes fail the harness.
execute_process(
  COMMAND "${CLI}" --sections=4.2.1,4.3.1 --rows=4..6:2 --cols=4..6:2 --seeds=2
          --threads=2 --max-steps=5 --quiet "--record-anomalies=${recordings},4"
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(run_rc GREATER 1)
  message(FATAL_ERROR "recording_e2e: campaign_cli crashed (${run_rc}):\n${run_out}\n${run_err}")
endif()

file(GLOB recs "${recordings}/*.lumirec")
list(LENGTH recs rec_count)
if(rec_count EQUAL 0)
  message(FATAL_ERROR "recording_e2e: no .lumirec files captured in ${recordings}")
endif()
if(rec_count GREATER 4)
  message(FATAL_ERROR "recording_e2e: capture limit 4 violated (${rec_count} files)")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "--doctor=${DOCTOR}" ${recs}
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "recording_e2e: recording validation failed:\n${check_out}\n${check_err}")
endif()

# Livelock leg: record the blinker table, expect diagnosis cycle + certified
# witness + identical replay (run_doctor's full-report mode exits 0 only when
# certification and verification both pass).
set(livelock "${OUT_DIR}/livelock.lumirec")
execute_process(
  COMMAND "${DOCTOR}" "--record=${livelock}" "--table=${FIXTURE}" --rows=2 --cols=3
          --sched=fsync --seed=1 --max-steps=25
  RESULT_VARIABLE rec_rc
  OUTPUT_VARIABLE rec_out
  ERROR_VARIABLE rec_err)
if(NOT rec_rc EQUAL 0)
  message(FATAL_ERROR "recording_e2e: doctor --record failed (${rec_rc}):\n${rec_out}\n${rec_err}")
endif()

execute_process(
  COMMAND "${DOCTOR}" "${livelock}"
  RESULT_VARIABLE doc_rc
  OUTPUT_VARIABLE doc_out
  ERROR_VARIABLE doc_err)
if(NOT doc_rc EQUAL 0)
  message(FATAL_ERROR "recording_e2e: doctor report failed (${doc_rc}):\n${doc_out}\n${doc_err}")
endif()
if(NOT doc_out MATCHES "diagnosis +cycle")
  message(FATAL_ERROR "recording_e2e: livelock not diagnosed as cycle:\n${doc_out}")
endif()
if(NOT doc_out MATCHES "cycle: CERTIFIED")
  message(FATAL_ERROR "recording_e2e: cycle witness not certified:\n${doc_out}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "--doctor=${DOCTOR}" "${livelock}"
  RESULT_VARIABLE lcheck_rc
  OUTPUT_VARIABLE lcheck_out
  ERROR_VARIABLE lcheck_err)
if(NOT lcheck_rc EQUAL 0)
  message(FATAL_ERROR "recording_e2e: livelock recording invalid:\n${lcheck_out}\n${lcheck_err}")
endif()

message(STATUS "recording_e2e: ${rec_count} captured + 1 livelock recording validated")
