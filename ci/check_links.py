#!/usr/bin/env python3
"""Checks intra-repo Markdown links (and their #anchors) in the doc tree.

Scans README.md, PAPER.md and docs/*.md for inline links `[text](target)`.
External links (a URL scheme) are ignored; everything else must resolve to
an existing file or directory relative to the containing document, and a
`#fragment` on a Markdown target must name a heading in that document using
GitHub's anchor rules (lowercase, punctuation stripped, spaces to dashes).

Exit status 0 when every link resolves, 1 otherwise (each failure printed).
Stdlib only; run from anywhere: paths are anchored at the repo root.

`--self-test` runs the checker against the fixture docs under
ci/fixtures/check_links/ — one document per failure mode (missing file, bad
anchor, fragment on a non-Markdown target, duplicate-heading suffixes) plus
a clean document — and verifies each produces exactly the expected verdict.
The fixture suite is wired as a ctest entry, so the checker's own rules are
part of tier-1.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_GLOBS = ["README.md", "PAPER.md", "ISSUE.md", "docs/*.md"]

# Inline links, skipping images; [text](target "title") keeps only target.
LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def anchors(path: Path) -> set[str]:
    """GitHub-style anchors of every heading in a Markdown file."""
    out: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING.match(line)
        if not m:
            continue
        text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", m.group(1))  # unlink
        text = re.sub(r"[`*_]", "", text).strip().lower()
        slug = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
        slug = slug.replace(" ", "-")
        base, n = slug, 1
        while slug in out:  # duplicate headings get -1, -2, ... suffixes
            slug = f"{base}-{n}"
            n += 1
        out.add(slug)
    return out


def check(doc: Path) -> list[str]:
    errors: list[str] = []
    text = doc.read_text(encoding="utf-8")
    for m in LINK.finditer(text):
        target = m.group(1)
        if SCHEME.match(target):  # external: not ours to verify offline
            continue
        raw, _, fragment = target.partition("#")
        dest = doc if raw == "" else (doc.parent / raw).resolve()
        line = text.count("\n", 0, m.start()) + 1
        where = f"{doc.relative_to(REPO)}:{line}"
        if not dest.exists():
            errors.append(f"{where}: broken link '{target}' (no {raw})")
            continue
        if fragment:
            if dest.is_dir() or dest.suffix.lower() != ".md":
                errors.append(f"{where}: fragment on non-Markdown target '{target}'")
            elif fragment.lower() not in anchors(dest):
                errors.append(f"{where}: no heading for anchor '#{fragment}' in {raw or doc.name}")
    return errors


def self_test() -> int:
    """Pins the checker's verdicts on the fixture docs, exactly."""
    fixtures = REPO / "ci" / "fixtures" / "check_links"
    failures: list[str] = []

    def expect(name: str, wanted: list[str]) -> None:
        doc = fixtures / name
        if not doc.is_file():
            failures.append(f"missing fixture {name}")
            return
        got = check(doc)
        if len(got) != len(wanted):
            failures.append(f"{name}: expected {len(wanted)} errors, got {len(got)}: {got}")
            return
        for marker, err in zip(wanted, got):
            if marker not in err:
                failures.append(f"{name}: expected error containing '{marker}', got '{err}'")

    # Every link and anchor style we accept, including code/punctuation
    # stripping and the -1 suffix GitHub appends to a duplicated heading.
    expect("good.md", [])
    expect(
        "bad.md",
        [
            "broken link 'nope.md'",
            "no heading for anchor '#no-such-heading'",
            "fragment on non-Markdown target 'sub/data.txt#frag'",
            "no heading for anchor '#other-heading-2'",
        ],
    )
    for f in failures:
        print(f"self-test: {f}", file=sys.stderr)
    print(f"check_links self-test: {len(failures)} failures")
    return 1 if failures else 0


def main() -> int:
    if "--self-test" in sys.argv[1:]:
        return self_test()
    docs = sorted({p for g in DOC_GLOBS for p in REPO.glob(g) if p.is_file()})
    if not docs:
        print("check_links: no documents found", file=sys.stderr)
        return 1
    failures: list[str] = []
    checked = 0
    for doc in docs:
        failures += check(doc)
        checked += 1
    for f in failures:
        print(f, file=sys.stderr)
    print(f"check_links: {checked} documents, {len(failures)} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
