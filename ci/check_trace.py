#!/usr/bin/env python3
"""Validates Chrome trace_event JSON emitted by --trace-out.

Checks, per file:
  - the document parses as JSON and is an object with a "traceEvents" list;
  - every event is a complete ("ph":"X") event carrying name, cat, ts, dur,
    pid and tid with the right types, ts and dur non-negative;
  - spans nest per tid: two events on the same thread either do not overlap
    in time or one fully contains the other.  Partial overlap means a span
    outlived its enclosing scope — with RAII spans that is a bug, and
    chrome://tracing renders it as garbage.

Exit status 0 when every file passes, 1 otherwise (each failure printed).
Stdlib only; paths are taken as given (the e2e harness passes temp files).

`--self-test` runs the checker against ci/fixtures/check_trace/ — one file
per failure mode plus a clean one — and pins each verdict, mirroring
ci/check_links.py.  The fixture suite is wired as a ctest entry.
"""

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

REQUIRED = {"name": str, "cat": str, "ph": str, "ts": int, "dur": int, "pid": int, "tid": int}


def check(path: Path) -> list[str]:
    where = str(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as err:
        return [f"{where}: not valid JSON ({err})"]
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return [f"{where}: top level must be an object with a 'traceEvents' list"]
    errors: list[str] = []
    by_tid: dict[int, list[tuple[int, int, str]]] = {}
    for i, e in enumerate(doc["traceEvents"]):
        if not isinstance(e, dict):
            errors.append(f"{where}: event {i} is not an object")
            continue
        bad = False
        for key, typ in REQUIRED.items():
            # bool is an int subclass in Python; reject it explicitly.
            if not isinstance(e.get(key), typ) or isinstance(e.get(key), bool):
                errors.append(f"{where}: event {i} missing or mistyped '{key}'")
                bad = True
        if bad:
            continue
        if e["ph"] != "X":
            errors.append(f"{where}: event {i} has ph '{e['ph']}', expected complete 'X'")
            continue
        if e["ts"] < 0 or e["dur"] < 0:
            errors.append(f"{where}: event {i} has negative ts or dur")
            continue
        by_tid.setdefault(e["tid"], []).append((e["ts"], e["ts"] + e["dur"], e["name"]))
    for tid, spans in sorted(by_tid.items()):
        # Sorted by start (longest first on ties), a well-nested sequence
        # behaves like matched brackets against a stack of open intervals.
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: list[tuple[int, int, str]] = []
        for start, end, name in spans:
            while stack and stack[-1][1] <= start:
                stack.pop()
            if stack and end > stack[-1][1]:
                errors.append(
                    f"{where}: tid {tid}: span '{name}' [{start},{end}) partially "
                    f"overlaps '{stack[-1][2]}' [{stack[-1][0]},{stack[-1][1]})"
                )
                continue
            stack.append((start, end, name))
    return errors


def self_test() -> int:
    """Pins the checker's verdicts on the fixture traces, exactly."""
    fixtures = REPO / "ci" / "fixtures" / "check_trace"
    failures: list[str] = []

    def expect(name: str, wanted: list[str]) -> None:
        trace = fixtures / name
        if not trace.is_file():
            failures.append(f"missing fixture {name}")
            return
        got = check(trace)
        if len(got) != len(wanted):
            failures.append(f"{name}: expected {len(wanted)} errors, got {len(got)}: {got}")
            return
        for marker, err in zip(wanted, got):
            if marker not in err:
                failures.append(f"{name}: expected error containing '{marker}', got '{err}'")

    expect("good.json", [])
    expect("bad_syntax.json", ["not valid JSON"])
    expect("bad_shape.json", ["'traceEvents' list"])
    expect("bad_fields.json", ["missing or mistyped 'dur'"])
    expect("bad_phase.json", ["expected complete 'X'"])
    expect("bad_overlap.json", ["partially overlaps"])
    for f in failures:
        print(f"self-test: {f}", file=sys.stderr)
    print(f"check_trace self-test: {len(failures)} failures")
    return 1 if failures else 0


def main() -> int:
    args = sys.argv[1:]
    if "--self-test" in args:
        return self_test()
    if not args:
        print("usage: check_trace.py [--self-test] TRACE.json...", file=sys.stderr)
        return 2
    failures: list[str] = []
    for name in args:
        failures += check(Path(name))
    for f in failures:
        print(f, file=sys.stderr)
    print(f"check_trace: {len(args)} files, {len(failures)} problems")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
