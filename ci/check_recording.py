#!/usr/bin/env python3
"""Validates `.lumirec` flight recordings emitted by --record-anomalies and
run_doctor --record (format: docs/FORMATS.md#lumirec).

Checks, per file:
  - the magic/version line is `lumirec 1`;
  - every section appears exactly once, in canonical order, with well-typed
    operands (counted blocks — algorithm text, robot lists, event tail —
    carry exactly the announced number of lines);
  - events are well-formed: known kind, non-negative robot, rule >= -1,
    color letters, movement in NESW-, instants non-decreasing;
  - the diagnosis is one of the four enum spellings, a `cycle` witness line
    is present exactly when the diagnosis is `cycle`, and the failure line
    agrees (terminated <=> `failure ok`);
  - the `end` marker closes the file with nothing after it.

With `--doctor=PATH/TO/run_doctor` each file is additionally replayed
(`run_doctor --verify`): the re-execution must be byte-identical to the
recording, turning the schema check into a full determinism check.

Exit status 0 when every file passes, 1 otherwise (each failure printed).
Stdlib only; paths are taken as given (the e2e harness passes temp files).

`--self-test` runs the checker against ci/fixtures/check_recording/ — one
file per failure mode plus a clean one — and pins each verdict, mirroring
ci/check_trace.py.  The fixture suite is wired as a ctest entry.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DIAGNOSES = {"terminated", "cycle", "budget-exhausted", "verifier-failure"}
EVENT_KINDS = {"sync", "look", "compute", "move"}
COLORS = set("GWBR")
MOVES = set("NESW-")


class Stop(Exception):
    """Raised on a structural error that makes further parsing meaningless."""


class Reader:
    def __init__(self, where: str, text: str):
        self.where = where
        self.lines = text.split("\n")
        self.pos = 0
        self.errors: list[str] = []

    def error(self, msg: str) -> None:
        self.errors.append(f"{self.where}:{self.pos + 1}: {msg}")

    def next_line(self) -> str | None:
        if self.pos >= len(self.lines):
            self.errors.append(f"{self.where}: truncated (unexpected end of file)")
            raise Stop
        line = self.lines[self.pos].rstrip("\r")
        self.pos += 1
        return line

    def expect(self, key: str) -> list[str] | None:
        """Consumes one line that must start with `key`; returns its operands.
        A mismatch or truncation raises Stop: a broken section boundary makes
        every later line a cascade of noise, so the first error is the
        verdict."""
        line = self.next_line()
        if line is None:
            raise Stop
        fields = line.split(" ")
        if not fields or fields[0] != key:
            self.pos -= 1  # re-point the error at the offending line
            self.error(f"expected '{key} ...', got '{line}'")
            self.pos += 1
            raise Stop
        return fields[1:]


def to_int(reader: Reader, text: str, what: str, minimum: int) -> int | None:
    try:
        value = int(text)
    except ValueError:
        reader.error(f"{what} is not an integer: '{text}'")
        return None
    if value < minimum:
        reader.error(f"{what} must be >= {minimum}, got {value}")
        return None
    return value


def check_robots(reader: Reader, count: int) -> None:
    for i in range(count):
        ops = reader.expect("robot")
        if len(ops) != 4:
            reader.error(f"robot line needs 4 operands, got {len(ops)}")
            continue
        index = to_int(reader, ops[0], "robot index", 0)
        if index is not None and index != i:
            reader.error(f"robot index {index} out of order (expected {i})")
        to_int(reader, ops[1], "robot row", -(10**9))
        to_int(reader, ops[2], "robot col", -(10**9))
        if ops[3] not in COLORS:
            reader.error(f"robot color '{ops[3]}' not one of {sorted(COLORS)}")


def check(path: Path, doctor: Path | None = None) -> list[str]:
    where = str(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        return [f"{where}: unreadable ({err})"]
    r = Reader(where, text)
    try:
        check_body(r)
    except Stop:
        return r.errors
    if not r.errors and doctor is not None:
        proc = subprocess.run(
            [str(doctor), "--verify", str(path)], capture_output=True, text=True
        )
        if proc.returncode != 0:
            detail = (proc.stdout + proc.stderr).strip().replace("\n", "; ")
            r.errors.append(f"{where}: replay diverged ({detail})")
    return r.errors


def check_body(r: Reader) -> None:

    magic = r.expect("lumirec")
    if magic != ["1"]:
        r.error(f"unsupported version {magic}, expected ['1']")
        raise Stop  # nothing else is trustworthy

    ops = r.expect("capacity")
    capacity = to_int(r, ops[0], "capacity", 1) if ops and len(ops) == 1 else None
    if ops is not None and len(ops) != 1:
        r.error("capacity needs exactly 1 operand")
    ops = r.expect("detect-cycles")
    if ops is not None and ops not in (["0"], ["1"]):
        r.error(f"detect-cycles must be 0 or 1, got {ops}")
    ops = r.expect("section")
    if ops is not None and len(ops) != 1:
        r.error("section needs exactly 1 operand")
    ops = r.expect("scheduler")
    if ops is not None:
        if len(ops) != 2:
            r.error("scheduler needs exactly 2 operands (name, seed)")
        else:
            to_int(r, ops[1], "scheduler seed", 0)
    ops = r.expect("dims")
    if ops is not None:
        if len(ops) != 2:
            r.error("dims needs exactly 2 operands")
        else:
            to_int(r, ops[0], "rows", 0)
            to_int(r, ops[1], "cols", 0)
    ops = r.expect("topology")
    if ops is not None and len(ops) != 1:
        r.error("topology needs exactly 1 operand")
    ops = r.expect("max-steps")
    if ops is not None and len(ops) == 1:
        to_int(r, ops[0], "max-steps", 0)
    ops = r.expect("unique-actions")
    if ops is not None and ops not in (["0"], ["1"]):
        r.error(f"unique-actions must be 0 or 1, got {ops}")

    ops = r.expect("algorithm")
    alg_lines = to_int(r, ops[0], "algorithm line count", 0) if ops and len(ops) == 1 else None
    if alg_lines is None:
        raise Stop  # cannot skip an uncounted block; later errors are noise
    for _ in range(alg_lines):
        r.next_line()

    ops = r.expect("init")
    robots = to_int(r, ops[0], "initial robot count", 0) if ops and len(ops) == 1 else None
    if robots is None:
        raise Stop
    check_robots(r, robots)

    ops = r.expect("diagnosis")
    diagnosis = None
    if ops is not None:
        if len(ops) == 1 and ops[0] in DIAGNOSES:
            diagnosis = ops[0]
        else:
            r.error(f"diagnosis {ops} not one of {sorted(DIAGNOSES)}")

    has_cycle = r.pos < len(r.lines) and r.lines[r.pos].startswith("cycle ")
    if has_cycle:
        ops = r.expect("cycle")
        if ops is not None:
            if len(ops) != 3:
                r.error("cycle needs exactly 3 operands (start, length, hash)")
            else:
                to_int(r, ops[0], "cycle start", 0)
                to_int(r, ops[1], "cycle length", 1)
                if len(ops[2]) != 16 or any(c not in "0123456789abcdef" for c in ops[2]):
                    r.error(f"cycle hash '{ops[2]}' is not 16 lowercase hex digits")
    # A witness proves a loop, and a proven loop must be the verdict: the two
    # may only appear together.
    if diagnosis == "cycle" and not has_cycle:
        r.error("diagnosis is cycle but no cycle witness line follows")
    if diagnosis is not None and diagnosis != "cycle" and has_cycle:
        r.error(f"cycle witness present but diagnosis is {diagnosis}")

    ops = r.expect("events-seen")
    seen = to_int(r, ops[0], "events-seen", 0) if ops and len(ops) == 1 else None
    ops = r.expect("events")
    kept = to_int(r, ops[0], "kept event count", 0) if ops and len(ops) == 1 else None
    if kept is None:
        raise Stop
    if seen is not None and kept > seen:
        r.error(f"events {kept} exceeds events-seen {seen}")
    if capacity is not None and kept > capacity:
        r.error(f"events {kept} exceeds capacity {capacity}")
    last_instant = None
    for _ in range(kept):
        ops = r.expect("ev")
        if len(ops) != 9:
            r.error(f"ev line needs 9 operands, got {len(ops)}")
            continue
        instant = to_int(r, ops[0], "event instant", 0)
        if instant is not None:
            if last_instant is not None and instant < last_instant:
                r.error(f"event instants go backwards ({last_instant} -> {instant})")
            last_instant = instant
        if ops[1] not in EVENT_KINDS:
            r.error(f"event kind '{ops[1]}' not one of {sorted(EVENT_KINDS)}")
        to_int(r, ops[2], "event robot", 0)
        to_int(r, ops[3], "event rule index", -1)
        to_int(r, ops[4], "event rotation", 0)
        if ops[5] not in ("0", "1"):
            r.error(f"event mirror flag must be 0 or 1, got '{ops[5]}'")
        for label, letter in (("before", ops[6]), ("after", ops[7])):
            if letter not in COLORS:
                r.error(f"event color-{label} '{letter}' not one of {sorted(COLORS)}")
        if ops[8] not in MOVES:
            r.error(f"event move '{ops[8]}' not one of {sorted(MOVES)}")

    ops = r.expect("outcome")
    terminated = None
    if ops is not None:
        if len(ops) != 2 or any(o not in ("0", "1") for o in ops):
            r.error(f"outcome needs two 0/1 flags, got {ops}")
        else:
            terminated = ops[0] == "1"
    ops = r.expect("stats")
    if ops is not None:
        if len(ops) != 4:
            r.error("stats needs exactly 4 operands")
        else:
            for name, op in zip(("instants", "activations", "moves", "color-changes"), ops):
                to_int(r, op, f"stats {name}", 0)
    ops = r.expect("failure")
    if ops is not None:
        if not (ops == ["ok"] or (len(ops) == 2 and ops[0] == "err")):
            r.error(f"failure must be 'ok' or 'err <token>', got {ops}")
        elif diagnosis == "terminated" and ops != ["ok"]:
            r.error("diagnosis terminated requires 'failure ok'")
        elif diagnosis in ("budget-exhausted", "verifier-failure") and ops == ["ok"]:
            r.error(f"diagnosis {diagnosis} requires a failure message")
    if terminated is not None and diagnosis == "terminated" and not terminated:
        r.error("diagnosis terminated but outcome says the run did not terminate")

    ops = r.expect("final")
    robots = to_int(r, ops[0], "final robot count", 0) if ops and len(ops) == 1 else None
    if robots is None:
        raise Stop
    check_robots(r, robots)

    r.expect("end")
    while r.pos < len(r.lines):
        line = r.lines[r.pos].rstrip("\r")
        if line:
            r.error(f"content after end marker: '{line}'")
            break
        r.pos += 1


def self_test() -> int:
    """Pins the checker's verdicts on the fixture recordings, exactly."""
    fixtures = REPO / "ci" / "fixtures" / "check_recording"
    failures: list[str] = []

    def expect(name: str, wanted: list[str]) -> None:
        rec = fixtures / name
        if not rec.is_file():
            failures.append(f"missing fixture {name}")
            return
        got = check(rec)
        if len(got) != len(wanted):
            failures.append(f"{name}: expected {len(wanted)} errors, got {len(got)}: {got}")
            return
        for marker, err in zip(wanted, got):
            if marker not in err:
                failures.append(f"{name}: expected error containing '{marker}', got '{err}'")

    expect("good.lumirec", [])
    expect("good_cycle.lumirec", [])
    expect("bad_magic.lumirec", ["expected 'lumirec ...'"])
    expect("bad_order.lumirec", ["expected 'dims ...'"])
    expect("bad_event.lumirec", ["event kind 'teleport'"])
    expect("bad_diagnosis.lumirec", ["not one of"])
    expect("bad_cycle_mismatch.lumirec", ["cycle witness present but diagnosis is"])
    expect("bad_failure_mismatch.lumirec", ["requires 'failure ok'"])
    expect("bad_truncated.lumirec", ["truncated"])
    for f in failures:
        print(f"self-test: {f}", file=sys.stderr)
    print(f"check_recording self-test: {len(failures)} failures")
    return 1 if failures else 0


def main() -> int:
    args = sys.argv[1:]
    if "--self-test" in args:
        return self_test()
    doctor: Path | None = None
    paths: list[str] = []
    for arg in args:
        if arg.startswith("--doctor="):
            doctor = Path(arg[len("--doctor="):])
        else:
            paths.append(arg)
    if not paths:
        print(
            "usage: check_recording.py [--self-test] [--doctor=RUN_DOCTOR] FILE.lumirec...",
            file=sys.stderr,
        )
        return 2
    failures: list[str] = []
    for name in paths:
        failures += check(Path(name), doctor)
    for f in failures:
        print(f, file=sys.stderr)
    print(f"check_recording: {len(paths)} files, {len(failures)} problems")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
