# End-to-end telemetry check, run as a ctest entry (cmake -P):
#   1. drives campaign_cli with --trace-out/--metrics-out on a small matrix,
#   2. validates the emitted trace with ci/check_trace.py (JSON shape,
#      complete events, per-thread span nesting),
#   3. validates the metrics file against the documented schema marker
#      (lumi_metrics = 1) by round-tripping it through python json.
#
# Expected -D definitions: CLI (campaign_cli binary), PYTHON (interpreter),
# CHECKER (ci/check_trace.py), OUT_DIR (scratch directory).
foreach(var CLI PYTHON CHECKER OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "trace_e2e: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(trace "${OUT_DIR}/trace.json")
set(metrics "${OUT_DIR}/metrics.json")

execute_process(
  COMMAND "${CLI}" --sections=4.2.1,4.3.1 --rows=4..6:2 --cols=4..6:2 --seeds=2
          --threads=2 --quiet "--trace-out=${trace}" "--metrics-out=${metrics}"
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "trace_e2e: campaign_cli failed (${run_rc}):\n${run_out}\n${run_err}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${trace}"
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "trace_e2e: trace validation failed:\n${check_out}\n${check_err}")
endif()

execute_process(
  COMMAND "${PYTHON}" -c "import json,sys; d=json.load(open(sys.argv[1])); \
sys.exit(0 if d.get('lumi_metrics')==1 and d['counters'].get('campaign.jobs_done',0)>0 \
and 'gauges' in d and 'histograms' in d else 1)" "${metrics}"
  RESULT_VARIABLE m_rc
  OUTPUT_VARIABLE m_out
  ERROR_VARIABLE m_err)
if(NOT m_rc EQUAL 0)
  message(FATAL_ERROR "trace_e2e: metrics schema check failed:\n${m_out}\n${m_err}")
endif()

message(STATUS "trace_e2e: trace and metrics outputs validated")
