// Rule-table lint: runs the semantic analyzer (src/analysis/rule_analysis.hpp)
// over algorithms and reports every finding, with matcher-certified witnesses
// for determinism defects.
//
//   $ ./algo_lint                       # all Table 1 entries; exit 0 iff zero findings
//   $ ./algo_lint --json=lint.json      # same, plus a machine-readable report
//   $ ./algo_lint --file=my_algo.lumi   # lint one DSL file (validation off, so
//                                       # deliberately broken tables still load)
//   $ ./algo_lint --self-test --fixtures=tests/fixtures/algo_lint
//
// The self-test walks a fixture directory of .lumi files whose `# expect:`
// header names the defect classes the analyzer must (exactly) report —
// "clean" for none.  CI runs both modes: the registry pinned at zero
// findings, and every seeded defect fixture firing its class.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/algorithms/registry.hpp"
#include "src/analysis/rule_analysis.hpp"
#include "src/dsl/dsl.hpp"

namespace {

using namespace lumi;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct LintedAlgorithm {
  std::string name;
  std::string section;  ///< "" for files
  analysis::AnalysisReport report;
};

void print_report(const LintedAlgorithm& linted) {
  const std::size_t n = linted.report.findings.size();
  std::printf("%-32s %s\n", linted.name.c_str(),
              n == 0 ? "clean" : (std::to_string(n) + " finding(s)").c_str());
  for (const analysis::Finding& f : linted.report.findings) {
    std::printf("  %s\n", f.to_string().c_str());
  }
}

std::string report_json(const std::vector<LintedAlgorithm>& linted) {
  std::string out = "{\n  \"algorithms\": [\n";
  for (std::size_t i = 0; i < linted.size(); ++i) {
    const LintedAlgorithm& a = linted[i];
    out += "    {\"name\": \"";
    out += json_escape(a.name);
    out += "\", \"section\": \"";
    out += json_escape(a.section);
    out += "\", \"findings\": [";
    for (std::size_t j = 0; j < a.report.findings.size(); ++j) {
      const analysis::Finding& f = a.report.findings[j];
      out += j == 0 ? "\n" : ",\n";
      out += "      {\"class\": \"";
      out += analysis::to_string(f.cls);
      out += "\", \"severity\": \"";
      out += analysis::to_string(f.severity);
      out += "\", \"rule\": \"";
      out += json_escape(f.rule);
      out += "\", \"other_rule\": \"";
      out += json_escape(f.other_rule);
      out += "\", \"certified\": ";
      out += f.certified ? "true" : "false";
      out += ", \"message\": \"";
      out += json_escape(f.message);
      if (f.witness.has_value()) {
        out += "\", \"witness\": \"";
        out += json_escape(f.witness->to_string());
      }
      out += "\"}";
    }
    out += a.report.findings.empty() ? "]}" : "\n    ]}";
    out += i + 1 < linted.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"total_findings\": ";
  std::size_t total = 0;
  for (const LintedAlgorithm& a : linted) total += a.report.findings.size();
  out += std::to_string(total);
  out += "\n}\n";
  return out;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

/// Defect slugs from a fixture's `# expect: a b c` header (first match wins);
/// {"clean"} means the analyzer must report nothing.
std::set<std::string> expected_classes(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string prefix = "# expect:";
    if (!line.starts_with(prefix)) continue;
    std::istringstream rest(line.substr(prefix.size()));
    std::set<std::string> out;
    std::string slug;
    while (rest >> slug) out.insert(slug);
    return out;
  }
  return {};
}

/// Walks DIR/*.lumi (sorted), analyzes each with validation off, and demands
/// the reported defect-class set equals the `# expect:` header exactly —
/// both directions: a seeded defect must fire, and no foreign class may.
/// Conflict/ambiguous-move findings must additionally carry a
/// matcher-certified witness that independently re-certifies.
int run_self_test(const std::string& dir) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".lumi") files.push_back(entry.path());
  }
  if (ec || files.empty()) {
    std::fprintf(stderr, "self-test: no .lumi fixtures under '%s'\n", dir.c_str());
    return 2;
  }
  std::sort(files.begin(), files.end());
  int failures = 0;
  for (const auto& path : files) {
    std::string text;
    if (!read_file(path.string(), text)) {
      std::fprintf(stderr, "self-test: cannot read %s\n", path.c_str());
      failures += 1;
      continue;
    }
    const std::set<std::string> expect = expected_classes(text);
    if (expect.empty()) {
      std::fprintf(stderr, "%s: FAIL (missing '# expect:' header)\n", path.c_str());
      failures += 1;
      continue;
    }
    analysis::AnalysisReport report;
    Algorithm alg;
    try {
      alg = dsl::parse(text, dsl::ParseOptions{.validate = false});
      report = analysis::analyze(alg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: FAIL (%s)\n", path.c_str(), e.what());
      failures += 1;
      continue;
    }
    std::set<std::string> got;
    for (const analysis::Finding& f : report.findings) got.insert(analysis::to_string(f.cls));
    if (got.empty()) got.insert("clean");
    bool ok = got == expect;
    for (const analysis::Finding& f : report.findings) {
      const bool needs_witness = f.cls == analysis::DefectClass::DeterminismConflict ||
                                 f.cls == analysis::DefectClass::SymmetryAmbiguousMove;
      if (needs_witness && !(f.certified && analysis::certify_conflict(alg, f))) {
        std::fprintf(stderr, "%s: uncertified witness: %s\n", path.c_str(),
                     f.to_string().c_str());
        ok = false;
      }
    }
    if (ok) {
      std::printf("%s: ok\n", path.filename().c_str());
    } else {
      std::string got_text;
      for (const std::string& slug : got) {
        if (!got_text.empty()) got_text += ' ';
        got_text += slug;
      }
      std::fprintf(stderr, "%s: FAIL (expected {%s}, analyzer reported {%s})\n", path.c_str(),
                   [&] {
                     std::string e;
                     for (const std::string& slug : expect) {
                       if (!e.empty()) e += ' ';
                       e += slug;
                     }
                     return e;
                   }()
                       .c_str(),
                   got_text.c_str());
      for (const analysis::Finding& f : report.findings) {
        std::fprintf(stderr, "  %s\n", f.to_string().c_str());
      }
      failures += 1;
    }
  }
  std::printf("self-test: %zu fixtures, %d failure(s)\n", files.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string file_path;
  std::string fixtures_dir;
  bool self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* key) -> const char* {
      const std::size_t len = std::strlen(key);
      return arg.compare(0, len, key) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--json=")) {
      json_path = v;
    } else if (const char* v = value("--file=")) {
      file_path = v;
    } else if (const char* v = value("--fixtures=")) {
      fixtures_dir = v;
    } else if (arg == "--self-test") {
      self_test = true;
    } else {
      std::fprintf(stderr,
                   "unknown option '%s'\n"
                   "usage: %s [--json=PATH] [--file=PATH.lumi]\n"
                   "       %s --self-test --fixtures=DIR\n",
                   arg.c_str(), argv[0], argv[0]);
      return 2;
    }
  }

  if (self_test) {
    if (fixtures_dir.empty()) {
      std::fprintf(stderr, "--self-test needs --fixtures=DIR\n");
      return 2;
    }
    return run_self_test(fixtures_dir);
  }

  std::vector<LintedAlgorithm> linted;
  try {
    if (!file_path.empty()) {
      std::string text;
      if (!read_file(file_path, text)) {
        std::fprintf(stderr, "cannot read %s\n", file_path.c_str());
        return 2;
      }
      const Algorithm alg = dsl::parse(text, dsl::ParseOptions{.validate = false});
      linted.push_back({alg.name, "", analysis::analyze(alg)});
    } else {
      for (const algorithms::TableEntry& e : algorithms::table1()) {
        const Algorithm alg = e.make();
        linted.push_back({alg.name, e.section, analysis::analyze(alg)});
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lint failed: %s\n", e.what());
    return 2;
  }

  std::size_t total = 0;
  for (const LintedAlgorithm& a : linted) {
    print_report(a);
    total += a.report.findings.size();
  }
  std::printf("algo_lint: %zu algorithm(s), %zu finding(s)\n", linted.size(), total);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << report_json(linted);
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 2;
    }
  }
  // The registry pin: any finding at all — warning included — fails the run.
  return total == 0 ? 0 : 1;
}
