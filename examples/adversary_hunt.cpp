// Adversary hunting (the paper's Section 3): given a candidate algorithm,
// search for a fair SSYNC scheduler that keeps a node unvisited forever.
// Reproduces Theorem 1's conclusion constructively for two-robot phi=1
// candidates and shows k=3 escapes it.
//
//   $ ./adversary_hunt
#include <cstdio>

#include "src/algorithms/algorithms.hpp"
#include "src/analysis/impossibility.hpp"

int main() {
  using namespace lumi;
  using algorithms::algorithm10;
  using algorithms::algorithm3;

  std::printf("Hunting SSYNC adversaries (Theorem 1 demo)\n\n");

  struct Case {
    Algorithm alg;
    Grid grid;
    const char* note;
  };
  const Case cases[] = {
      {algorithm3(), Grid(4, 4), "paper Algorithm 3: correct under FSYNC, k=2, phi=1"},
      {algorithm3(), Grid(5, 5), "same, larger grid"},
      {algorithm10(), Grid(3, 3), "paper Algorithm 10: k=3, phi=1 (lower bound met)"},
      {algorithm10(), Grid(3, 4), "same, larger grid"},
  };

  for (const Case& c : cases) {
    std::printf("%s\n  grid %s ... ", c.note, c.grid.to_string().c_str());
    const AdversaryResult r = find_ssync_adversary(c.alg, c.grid);
    if (r.adversary_wins) {
      std::printf("adversary WINS: node (%d,%d) stays unvisited via %s (%ld states)\n\n",
                  r.protected_node.row, r.protected_node.col,
                  r.via_terminal ? "a stuck terminal configuration" : "a fair activation cycle",
                  r.states);
    } else {
      std::printf("no adversary exists: %s (%ld states)\n\n", r.summary.c_str(), r.states);
    }
  }

  std::printf("Conclusion (matches Theorem 1): two myopic phi=1 robots cannot solve\n");
  std::printf("terminating grid exploration under SSYNC, whatever the algorithm; three can.\n");
  return 0;
}
