// Campaign driver: sweeps algorithms x grids x schedulers x seeds on all
// cores and prints per-cell summaries, with optional CSV/JSON reports,
// sharding, checkpoint/resume and adaptive seed escalation.
//
//   $ ./campaign_cli                              # 11 paper algorithms, small grids
//   $ ./campaign_cli --rows=4..64:12 --cols=4..64:12 --seeds=3 --csv=sweep.csv
//   $ ./campaign_cli --sections=4.3.1,4.3.5 --scheds=async-random,async-stress
//   $ ./campaign_cli --topologies=grid,holes,obstacles:15:1   # topology families sweep
//   $ ./campaign_cli --topologies=torus --max-steps=2000      # borderless worlds
//   $ ./campaign_cli --shard=0/3 --checkpoint=s0.ckpt   # then merge: campaign_merge
//   $ ./campaign_cli --checkpoint=run.ckpt              # re-run resumes where it died
//   $ ./campaign_cli --checkpoint=run.ckpt --adaptive   # extra seeds for shaky cells
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "src/campaign/campaign.hpp"
#include "src/campaign/orchestrate.hpp"
#include "src/campaign/shard.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/progress.hpp"
#include "src/obs/trace_event.hpp"
#include "src/topo/topology.hpp"
#include "src/trace/report.hpp"

namespace {

using namespace lumi;

struct Args {
  std::string sections = "paper";
  std::string scheds = "all";
  std::string topologies = "grid";
  campaign::IntRange rows{4, 10, 2};
  campaign::IntRange cols{4, 10, 2};
  int seeds = 2;
  unsigned threads = 0;
  std::size_t batch = 0;  ///< jobs per worker task: 0 = auto, 1 = per-job
  long max_steps = 1'000'000;
  std::string csv_path;
  std::string json_path;
  std::string metrics_path;  ///< telemetry snapshot JSON (docs/FORMATS.md#metrics-json)
  std::string trace_path;    ///< Chrome trace_event JSON (chrome://tracing, Perfetto)
  /// .lumirec flight recordings of the first K anomalous jobs
  /// (docs/OBSERVABILITY.md#flight-recorder); result-inert.
  campaign::AnomalyCapture record_anomalies;
  bool progress = false;     ///< force the live meter even when stderr is not a TTY
  bool quiet = false;
  bool validate_only = false;  ///< expand + analyze the matrix, run nothing
  campaign::ShardSpec shard;  ///< default 0/1: the whole matrix
  std::string checkpoint_path;
  double flush_interval = 5.0;
  std::size_t max_jobs = 0;
  campaign::AdaptivePolicy adaptive;
};

/// Wraps campaign::range_from_string with a loud diagnostic: a bad range
/// (zero/negative step, garbage text) must abort with a clear message, never
/// hang in or overshoot the sweep loop.
bool parse_range(const std::string& text, campaign::IntRange& range) {
  const std::optional<campaign::IntRange> parsed = campaign::range_from_string(text);
  if (!parsed) {
    std::fprintf(stderr,
                 "bad range '%s': expected N, FROM..TO or FROM..TO:STEP "
                 "with positive FROM and STEP >= 1\n",
                 text.c_str());
    return false;
  }
  range = *parsed;
  return true;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* key) -> const char* {
      const std::size_t len = std::strlen(key);
      return arg.compare(0, len, key) == 0 ? arg.c_str() + len : nullptr;
    };
    // Every rejection names the offending flag: "which argument was wrong"
    // must never require re-reading the usage text.
    auto bad_value = [&arg]() {
      std::fprintf(stderr, "bad value in '%s'\n", arg.c_str());
      return false;
    };
    if (const char* v = value("--sections=")) {
      args.sections = v;
    } else if (const char* v = value("--scheds=")) {
      args.scheds = v;
    } else if (const char* v = value("--topologies=")) {
      args.topologies = v;
    } else if (const char* v = value("--rows=")) {
      if (!parse_range(v, args.rows)) return false;
    } else if (const char* v = value("--cols=")) {
      if (!parse_range(v, args.cols)) return false;
    } else if (const char* v = value("--seeds=")) {
      args.seeds = std::atoi(v);
      if (args.seeds < 1) return bad_value();
    } else if (const char* v = value("--threads=")) {
      args.threads = static_cast<unsigned>(std::atoi(v));
    } else if (const char* v = value("--batch=")) {
      // 0 = automatic per-cell sizing; 1 = the per-job reference path.
      // Reports are byte-identical at any value — this is a perf knob only.
      const long b = std::atol(v);
      if (b < 0) return bad_value();
      args.batch = static_cast<std::size_t>(b);
    } else if (const char* v = value("--max-steps=")) {
      args.max_steps = std::atol(v);
      if (args.max_steps < 1) return bad_value();
    } else if (const char* v = value("--csv=")) {
      args.csv_path = v;
    } else if (const char* v = value("--json=")) {
      args.json_path = v;
    } else if (const char* v = value("--metrics-out=")) {
      args.metrics_path = v;
    } else if (const char* v = value("--trace-out=")) {
      args.trace_path = v;
    } else if (const char* v = value("--record-anomalies=")) {
      // DIR or DIR,K — capture the first K anomalous jobs as .lumirec files.
      const std::string spec = v;
      const std::size_t comma = spec.rfind(',');
      if (comma != std::string::npos) {
        const long k = std::atol(spec.c_str() + comma + 1);
        if (k < 1) return bad_value();
        args.record_anomalies.dir = spec.substr(0, comma);
        args.record_anomalies.limit = static_cast<std::size_t>(k);
      } else {
        args.record_anomalies.dir = spec;
      }
      if (args.record_anomalies.dir.empty()) return bad_value();
    } else if (const char* v = value("--shard=")) {
      const auto spec = campaign::shard_from_string(v);
      if (!spec) return bad_value();
      args.shard = *spec;
    } else if (const char* v = value("--checkpoint=")) {
      args.checkpoint_path = v;
    } else if (const char* v = value("--flush-interval=")) {
      args.flush_interval = std::atof(v);
      if (args.flush_interval <= 0) return bad_value();
    } else if (const char* v = value("--max-jobs=")) {
      args.max_jobs = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--adaptive") {
      args.adaptive.enabled = true;
    } else if (const char* v = value("--adaptive-max-extra=")) {
      args.adaptive.enabled = true;
      args.adaptive.max_extra_seeds = static_cast<unsigned>(std::atoi(v));
    } else if (const char* v = value("--adaptive-round=")) {
      args.adaptive.enabled = true;
      args.adaptive.seeds_per_round = static_cast<unsigned>(std::atoi(v));
      if (args.adaptive.seeds_per_round == 0) return bad_value();
    } else if (const char* v = value("--adaptive-variance=")) {
      args.adaptive.enabled = true;
      args.adaptive.instants_variance_threshold = std::atof(v);
    } else if (arg == "--progress") {
      args.progress = true;
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else if (arg == "--validate-only") {
      args.validate_only = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  // A single shard sees only its slice of each cell, so its stats cannot
  // drive escalation decisions; escalate on the full matrix (or a merged
  // checkpoint) instead.
  if (args.adaptive.enabled && args.shard.count > 1) {
    std::fprintf(stderr, "--adaptive needs whole-cell stats and excludes --shard\n");
    return false;
  }
  return true;
}

bool build_matrix(const Args& args, campaign::Matrix& matrix) {
  if (args.sections == "paper") {
    matrix.sections = campaign::paper_sections();
  } else if (args.sections == "all") {
    matrix.sections = campaign::all_sections();
  } else {
    matrix.sections = split_csv(args.sections);
  }
  if (args.scheds == "all") {
    matrix.schedulers.assign(std::begin(campaign::kAllSchedKinds),
                             std::end(campaign::kAllSchedKinds));
  } else {
    for (const std::string& name : split_csv(args.scheds)) {
      const auto kind = campaign::sched_from_name(name);
      if (!kind) {
        std::fprintf(stderr, "unknown scheduler '%s'\n", name.c_str());
        return false;
      }
      matrix.schedulers.push_back(*kind);
    }
  }
  matrix.topologies = split_csv(args.topologies);
  for (const std::string& spec : matrix.topologies) {
    // Syntax-only check: a typo aborts loudly instead of silently expanding
    // to nothing via skip_incompatible, while a well-formed spec that only
    // fits some of the swept dimensions is judged per cell at expansion.
    if (!lumi::topology_spec_parses(spec)) {
      std::fprintf(stderr, "bad topology '%s': expected %s\n", spec.c_str(),
                   lumi::topology_spec_grammar());
      return false;
    }
  }
  matrix.rows = args.rows;
  matrix.cols = args.cols;
  matrix.seeds.clear();
  for (int s = 1; s <= args.seeds; ++s) matrix.seeds.push_back(static_cast<unsigned>(s));
  matrix.options.max_steps = args.max_steps;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: %s [--sections=paper|all|4.2.1,...] [--rows=4..10:2] [--cols=4..10:2]\n"
                 "          [--topologies=SPEC,...] [--scheds=all|fsync,ssync-random,ssync-rr,"
                 "async-random,async-central,async-stress]\n"
                 "          [--seeds=N] [--threads=N] [--batch=N] [--max-steps=N]\n"
                 "          [--csv=PATH] [--json=PATH] [--metrics-out=PATH] [--trace-out=PATH]\n"
                 "          [--record-anomalies=DIR[,K]] [--progress] [--quiet] [--validate-only]\n"
                 "          [--shard=I/N] [--checkpoint=PATH] [--flush-interval=SEC]\n"
                 "          [--max-jobs=N] [--adaptive] [--adaptive-max-extra=N]\n"
                 "          [--adaptive-round=N] [--adaptive-variance=X]\n"
                 "  --topologies     each SPEC is %s\n"
                 "  --batch=N        jobs grouped per worker task: 0 = per-cell automatic,\n"
                 "                   1 = one job per task; reports are byte-identical at any N\n"
                 "  --metrics-out    telemetry counters/gauges/histograms as JSON\n"
                 "                   (docs/FORMATS.md#metrics-json)\n"
                 "  --trace-out      Chrome trace_event JSON for chrome://tracing / Perfetto\n"
                 "  --record-anomalies  dump .lumirec flight recordings of the first K\n"
                 "                   anomalous jobs (default K=8) into DIR; inspect with\n"
                 "                   run_doctor.  Result-inert: reports/checkpoints are\n"
                 "                   byte-identical with or without it\n"
                 "  --progress       live stderr meter even when stderr is not a TTY\n"
                 "  --validate-only  expand the matrix and run the rule-table analyzer on\n"
                 "                   every section, then exit without running any job\n"
                 "  --adaptive       needs whole-cell stats and excludes --shard\n",
                 argv[0], lumi::topology_spec_grammar());
    return 2;
  }

  campaign::Matrix matrix;
  if (!build_matrix(args, matrix)) return 2;

  campaign::Expansion expansion;
  try {
    expansion = campaign::expand(matrix);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad matrix: %s\n", e.what());
    return 2;
  }
  if (expansion.jobs.empty()) {
    std::fprintf(stderr, "matrix expands to zero jobs\n");
    return 1;
  }
  if (args.shard.count > 1) expansion = campaign::shard(expansion, args.shard);
  std::printf("campaign: %zu algorithms x %zu cells -> %zu jobs (shard %s)\n",
              matrix.sections.size(), expansion.cells.size(), expansion.jobs.size(),
              to_string(args.shard).c_str());
  if (args.validate_only) {
    // expand() already ran the rule-table analyzer over every section (an
    // ill-formed one aborted above with its findings), so reaching this
    // point IS the validation verdict.
    std::printf("validate-only: %zu sections well-formed, nothing run\n",
                matrix.sections.size());
    return 0;
  }

  // Fail fast on unwritable telemetry destinations: a long campaign must
  // not discover at the finish line that its outputs cannot be written.
  // The probe opens in append mode, so an existing file is left untouched.
  const auto probe_writable = [](const std::string& path, const char* flag) {
    std::ofstream probe(path, std::ios::binary | std::ios::app);
    if (!probe) {
      std::fprintf(stderr, "cannot open %s path '%s' for writing\n", flag, path.c_str());
      return false;
    }
    return true;
  };
  if (!args.metrics_path.empty() && !probe_writable(args.metrics_path, "--metrics-out")) {
    return 2;
  }
  if (!args.trace_path.empty() && !probe_writable(args.trace_path, "--trace-out")) return 2;
  if (!args.record_anomalies.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(args.record_anomalies.dir, ec);
    if (ec || !std::filesystem::is_directory(args.record_anomalies.dir)) {
      std::fprintf(stderr, "cannot create --record-anomalies directory '%s'%s%s\n",
                   args.record_anomalies.dir.c_str(), ec ? ": " : "",
                   ec ? ec.message().c_str() : "");
      return 2;
    }
  }

  // Telemetry master switch: flipped before any instrumented code runs, and
  // only when something will consume it — the meter (whose final summary now
  // prints for any non-quiet run, TTY or not), --metrics-out or --trace-out.
  // Reports are byte-identical either way (tests/test_obs_identity.cpp).
  const bool meter_wanted = !args.quiet;
  if (meter_wanted || !args.metrics_path.empty() || !args.trace_path.empty()) {
    obs::Registry::global().set_enabled(true);
  }
  std::optional<obs::TraceWriter> trace;
  if (!args.trace_path.empty()) {
    trace.emplace(args.trace_path);
    obs::TraceWriter::install(&*trace);
  }

  const bool orchestrated = args.shard.count > 1 || !args.checkpoint_path.empty() ||
                            args.adaptive.enabled || args.max_jobs != 0;
  campaign::CampaignSummary summary;
  bool complete = true;
  obs::ProgressMeter::Options meter_opts;
  meter_opts.total_jobs = expansion.jobs.size();
  meter_opts.total_cells = expansion.cells.size();
  meter_opts.force = args.progress;
  std::optional<obs::ProgressMeter> meter;
  if (meter_wanted) meter.emplace(meter_opts);
  if (orchestrated) {
    campaign::OrchestratorOptions opts;
    opts.threads = args.threads;
    opts.checkpoint_path = args.checkpoint_path;
    opts.flush_seconds = args.flush_interval;
    opts.max_jobs = args.max_jobs;
    opts.batch = args.batch;
    opts.adaptive = args.adaptive;
    opts.record_anomalies = args.record_anomalies;
    campaign::OrchestratorReport report;
    try {
      report = campaign::run_orchestrated(expansion, opts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "orchestration failed: %s\n", e.what());
      return 2;
    }
    std::printf("orchestrator: %zu skipped (checkpoint), %zu executed, "
                "%zu escalation jobs over %u rounds%s\n",
                report.jobs_skipped, report.jobs_executed, report.escalation_jobs,
                report.escalation_rounds,
                report.complete ? "" : " — INCOMPLETE (max-jobs hit), resume with --checkpoint");
    summary = std::move(report.summary);
    complete = report.complete;
  } else {
    summary = campaign::run_campaign(
        expansion, args.threads, args.batch,
        args.record_anomalies.dir.empty() ? nullptr : &args.record_anomalies);
  }
  meter.reset();  // joins the sampler and clears the status line

  if (!args.quiet) {
    std::printf("%-8s %-8s %-16s %-14s %6s %6s %6s %10s %10s\n", "section", "grid", "topo",
                "sched", "runs", "term", "expl", "instants", "moves");
    for (const campaign::CellSummary& cell : summary.cells) {
      std::printf("%-8s %3dx%-4d %-16s %-14s %6ld %6ld %6ld %10.1f %10.1f\n",
                  cell.cell.section.c_str(), cell.cell.rows, cell.cell.cols,
                  cell.cell.topo.c_str(), to_string(cell.cell.sched).c_str(), cell.acc.runs,
                  cell.acc.terminated, cell.acc.explored_all, cell.acc.instants.mean(),
                  cell.acc.moves.mean());
    }
  }

  const double rate =
      summary.wall_seconds > 0 ? static_cast<double>(summary.jobs) / summary.wall_seconds : 0.0;
  std::printf("total: %zu jobs over %zu cells on %u threads in %.2fs (%.1f jobs/s), "
              "terminated %ld/%ld, explored %ld/%ld, failures %ld\n",
              summary.jobs, summary.cells.size(), summary.threads, summary.wall_seconds, rate,
              summary.total.terminated, summary.total.runs, summary.total.explored_all,
              summary.total.runs, summary.total.failures);

  if (!args.csv_path.empty()) {
    // Span in the CLI, not in src/trace: obs-isolation keeps report
    // rendering free of obs:: symbols.
    obs::Span span("report.write", "cli");
    if (!lumi::write_text_file(args.csv_path, campaign_csv(summary))) {
      std::fprintf(stderr, "failed to write %s\n", args.csv_path.c_str());
      return 1;
    }
  }
  if (!args.json_path.empty()) {
    obs::Span span("report.write", "cli");
    if (!lumi::write_text_file(args.json_path, campaign_json(summary))) {
      std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
      return 1;
    }
  }
  if (!args.metrics_path.empty() &&
      !lumi::write_text_file(args.metrics_path,
                             obs::metrics_json(obs::Registry::global().snapshot()))) {
    std::fprintf(stderr, "failed to write %s\n", args.metrics_path.c_str());
    return 1;
  }
  if (trace && !trace->flush()) {
    std::fprintf(stderr, "failed to write %s\n", args.trace_path.c_str());
    return 1;
  }

  const bool all_ok = complete && summary.total.terminated == summary.total.runs &&
                      summary.total.explored_all == summary.total.runs &&
                      summary.total.failures == 0;
  return all_ok ? 0 : 1;
}
