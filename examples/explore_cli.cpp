// Command-line driver over the whole catalog: run any Table-1 algorithm on
// any topology (plain grid, torus, ring, holed or obstacle grid) under any
// scheduler, optionally printing the full trace.
//
//   $ ./explore_cli --section=4.3.5 --rows=4 --cols=6 --sched=async-random --seed=7 --trace
//   $ ./explore_cli --section=4.2.1 --rows=6 --cols=6 --topology=holes --trace
//   $ ./explore_cli --section=4.3.1 --rows=8 --cols=8 --topology=obstacles:15:3
//   $ ./explore_cli --section=4.3.5 --rows=4 --cols=8 --topology=torus --max-steps=2000
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "src/algorithms/registry.hpp"
#include "src/engine/runner.hpp"
#include "src/topo/topology.hpp"
#include "src/trace/ascii_render.hpp"

namespace {

struct Args {
  std::string section = "4.2.1";
  int rows = 4;
  int cols = 6;
  std::string topology = "grid";
  std::string sched = "auto";
  unsigned seed = 1;
  long max_steps = 1'000'000;
  bool trace = false;
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* key) -> const char* {
      const std::size_t len = std::strlen(key);
      return arg.compare(0, len, key) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--section=")) {
      args.section = v;
    } else if (const char* v = value("--rows=")) {
      args.rows = std::atoi(v);
    } else if (const char* v = value("--cols=")) {
      args.cols = std::atoi(v);
    } else if (const char* v = value("--topology=")) {
      args.topology = v;
    } else if (const char* v = value("--sched=")) {
      args.sched = v;
    } else if (const char* v = value("--seed=")) {
      args.seed = static_cast<unsigned>(std::atoi(v));
    } else if (const char* v = value("--max-steps=")) {
      args.max_steps = std::atol(v);
      if (args.max_steps < 1) return false;
    } else if (arg == "--trace") {
      args.trace = true;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lumi;
  Args args;
  if (!parse_args(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: %s [--section=4.2.1] [--rows=R] [--cols=C]\n"
                 "          [--topology=%s]\n"
                 "          [--sched=auto|fsync|ssync-random|ssync-rr|async-random|"
                 "async-central|async-stress]\n"
                 "          [--seed=N] [--max-steps=N] [--trace]\n",
                 argv[0], lumi::topology_spec_grammar());
    return 2;
  }

  const Algorithm alg = algorithms::entry(args.section).make();
  std::optional<Grid> built;
  try {
    built.emplace(make_topology(args.topology, args.rows, args.cols));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const Grid& grid = *built;
  RunOptions opts;
  opts.record_trace = args.trace;
  opts.max_steps = args.max_steps;

  std::string sched = args.sched;
  if (sched == "auto") sched = alg.model == Synchrony::Fsync ? "fsync" : "async-random";

  RunResult result;
  try {
    if (sched == "fsync") {
      FsyncScheduler s;
      result = run_sync(alg, grid, s, opts);
    } else if (sched == "ssync-random") {
      SsyncRandomScheduler s(args.seed);
      result = run_sync(alg, grid, s, opts);
    } else if (sched == "ssync-rr") {
      SsyncRoundRobinScheduler s;
      result = run_sync(alg, grid, s, opts);
    } else if (sched == "async-random") {
      AsyncRandomScheduler s(args.seed);
      result = run_async(alg, grid, s, opts);
    } else if (sched == "async-central") {
      AsyncCentralizedScheduler s;
      result = run_async(alg, grid, s, opts);
    } else if (sched == "async-stress") {
      AsyncStaleStressScheduler s(args.seed);
      result = run_async(alg, grid, s, opts);
    } else {
      std::fprintf(stderr, "unknown scheduler '%s'\n", sched.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    // e.g. a bounding box below the algorithm's minimum, or a topology
    // whose walls displace the initial placement.
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  if (args.trace) std::cout << render_trace(result.trace);
  std::printf("%s on %s under %s: terminated=%s explored=%d/%d instants=%ld moves=%ld "
              "color_changes=%ld%s%s\n",
              alg.name.c_str(), grid.to_string().c_str(), sched.c_str(),
              result.terminated ? "yes" : "no", result.visited_count(), grid.reachable_nodes(),
              result.stats.instants, result.stats.moves, result.stats.color_changes,
              result.failure.empty() ? "" : " failure=", result.failure.c_str());
  return result.ok() ? 0 : 1;
}
