// Authoring your own robot algorithm with the rule DSL, then validating it
// with the randomized verifier AND the exhaustive model checker — the same
// pipeline the built-in reproductions go through.
//
//   $ ./custom_algorithm
#include <cstdio>
#include <iostream>

#include "src/analysis/model_checker.hpp"
#include "src/analysis/verifier.hpp"
#include "src/dsl/dsl.hpp"
#include "src/engine/runner.hpp"
#include "src/trace/ascii_render.hpp"

namespace {

// A three-color FSYNC "snake": a variant of the paper's Algorithm 3 pair
// authored directly in the text DSL.
const char* kSnake = R"(
# two-robot boustrophedon pair, phi=1, FSYNC, common chirality
algorithm custom-snake
model fsync
phi 1
colors 3
chirality common
min-grid 2 3
init (0,0)=G (0,1)=W

# proceed east: W leads, G follows
rule R1 self=W W={G} E=empty -> W,E
rule R2 self=G E={W} -> G,E
# turn west at the east wall
rule R3 self=W W={G} E=wall S=empty -> G,S
rule R4 self=G N={G} E=wall W=empty -> B,W
rule R5 self=G S={G} E=wall -> G,S
# proceed west: B leads, G follows (N=empty pins the rotation at walls)
rule R6 self=B E={G} W=empty N=empty -> B,W
rule R7 self=G W={B} N=empty -> G,W
# turn east at the west wall
rule R8 self=B E={G} W=wall S=empty N=empty -> B,S
rule R9 self=B N={G} W=wall E=empty -> W,E
rule R10 self=G S={B} W=wall -> G,S
)";

}  // namespace

int main() {
  using namespace lumi;

  std::printf("parsing the custom algorithm from its DSL source...\n");
  const Algorithm alg = dsl::parse(kSnake);
  std::printf("parsed '%s': %zu rules, %d robots\n\n", alg.name.c_str(), alg.rules.size(),
              alg.num_robots());

  std::printf("1) randomized sweep over grids up to 7x8 (FSYNC):\n");
  SweepOptions sweep;
  sweep.max_rows = 7;
  sweep.max_cols = 8;
  const SweepReport report = verify_sweep(alg, sweep);
  std::printf("   %s\n\n", report.to_string().c_str());

  std::printf("2) exhaustive model checking on small grids (every FSYNC schedule):\n");
  bool all_ok = report.ok();
  for (const auto& [rows, cols] : {std::pair{2, 3}, {3, 4}, {4, 5}}) {
    const CheckResult r = model_check(alg, Grid(rows, cols), CheckModel::Fsync);
    std::printf("   %dx%d: %s\n", rows, cols, r.to_string().c_str());
    all_ok = all_ok && r.ok;
  }

  std::printf("\n3) one run, rendered:\n\n");
  FsyncScheduler sched;
  RunOptions opts;
  opts.record_trace = true;
  const RunResult run = run_sync(alg, Grid(3, 5), sched, opts);
  std::cout << render_visit_order(run.trace) << "\n";
  std::printf("round-trip through the serializer:\n\n%s",
              dsl::serialize(dsl::parse(dsl::serialize(alg))).c_str());
  return all_ok && run.ok() ? 0 : 1;
}
