// Quickstart: run the paper's optimal two-robot FSYNC algorithm on a small
// grid and watch the boustrophedon sweep.
//
//   $ ./quickstart
#include <cstdio>
#include <iostream>

#include "src/algorithms/algorithms.hpp"
#include "src/engine/runner.hpp"
#include "src/trace/ascii_render.hpp"

int main() {
  using namespace lumi;

  // 1. Pick an algorithm from the paper: Algorithm 1 (phi=2, two colors,
  //    common chirality, two robots — optimal for FSYNC).
  const Algorithm alg = algorithms::algorithm1();
  std::printf("algorithm: %s (paper §%s)\n", alg.name.c_str(), alg.paper_section.c_str());
  std::printf("model=%s phi=%d colors=%d chirality=%s robots=%d\n\n",
              to_string(alg.model).c_str(), alg.phi, alg.num_colors,
              to_string(alg.chirality).c_str(), alg.num_robots());

  // 2. Run it on a 4x6 grid under the fully synchronous scheduler.
  const Grid grid(4, 6);
  FsyncScheduler scheduler;
  RunOptions opts;
  opts.record_trace = true;
  const RunResult result = run_sync(alg, grid, scheduler, opts);

  // 3. Inspect the outcome.
  std::printf("terminated=%s explored=%d/%d instants=%ld moves=%ld\n\n",
              result.terminated ? "yes" : "no", result.visited_count(), grid.num_nodes(),
              result.stats.instants, result.stats.moves);

  std::printf("first instants of the execution:\n\n");
  std::cout << render_trace(result.trace, 0, 5);

  std::printf("order in which nodes were first visited (the paper's Fig. 3 route):\n\n");
  std::cout << render_visit_order(result.trace);

  std::printf("\nfinal configuration:\n\n%s",
              render(final_configuration(result)).c_str());
  return result.ok() ? 0 : 1;
}
