// ASYNC stress lab: pit the paper's ASYNC algorithms against increasingly
// hostile schedulers (random, centralized, stale-view stress) and watch the
// intermediate "recolored but not yet moved" configurations the paper's
// proofs reason about.
//
//   $ ./async_stress_lab
#include <cstdio>
#include <iostream>

#include "src/algorithms/registry.hpp"
#include "src/engine/runner.hpp"
#include "src/trace/ascii_render.hpp"

int main() {
  using namespace lumi;

  std::printf("ASYNC stress lab: 5 ASYNC algorithms x 3 scheduler families x 8 seeds\n\n");
  std::printf("%-10s %-20s %8s %8s %8s %s\n", "section", "scheduler", "events", "moves",
              "recolor", "result");

  bool all_ok = true;
  for (const char* section : {"4.3.1", "4.3.2", "4.3.3", "4.3.4", "4.3.5"}) {
    const Algorithm alg = algorithms::entry(section).make();
    const Grid grid(std::max(4, alg.min_rows), 6);
    for (int family = 0; family < 3; ++family) {
      long events = 0, moves = 0, recolors = 0;
      bool ok = true;
      const int seeds = family == 1 ? 1 : 8;  // centralized is deterministic
      for (int seed = 0; seed < seeds; ++seed) {
        RunResult r;
        RunOptions opts;
        opts.max_steps = 2'000'000;
        if (family == 0) {
          AsyncRandomScheduler s(static_cast<unsigned>(seed) * 97 + 13);
          r = run_async(alg, grid, s, opts);
        } else if (family == 1) {
          AsyncCentralizedScheduler s;
          r = run_async(alg, grid, s, opts);
        } else {
          AsyncStaleStressScheduler s(static_cast<unsigned>(seed) * 31 + 7);
          r = run_async(alg, grid, s, opts);
        }
        events += r.stats.instants;
        moves += r.stats.moves;
        recolors += r.stats.color_changes;
        ok = ok && r.ok();
      }
      const char* name = family == 0   ? "async-random"
                         : family == 1 ? "async-centralized"
                                       : "async-stale-stress";
      std::printf("%-10s %-20s %8ld %8ld %8ld %s\n", section, name, events / seeds,
                  moves / seeds, recolors / seeds, ok ? "ok" : "FAILED");
      all_ok = all_ok && ok;
    }
  }

  // Show one paper-style intermediate: Algorithm 6's G recolors to B at the
  // east wall before moving (Fig. 12(c)).
  std::printf("\nAlgorithm 6, Fig. 12(c)-style intermediate (B recolored, not yet moved):\n\n");
  const Algorithm alg6 = algorithms::entry("4.3.1").make();
  AsyncCentralizedScheduler sched;
  RunOptions opts;
  opts.record_trace = true;
  const RunResult run = run_async(alg6, Grid(3, 5), sched, opts);
  for (std::size_t i = 0; i + 1 < run.trace.size(); ++i) {
    const std::string& note = run.trace[i].note;
    if (note.find("Compute-end") != std::string::npos) {
      const Configuration& c = run.trace[i].config;
      bool has_b = false;
      for (const Robot& robot : c.robots()) has_b = has_b || robot.color == Color::B;
      if (has_b) {
        std::cout << "event " << i << " (" << note << "):\n" << render(c) << "\n";
        break;
      }
    }
  }
  return all_ok ? 0 : 1;
}
