// run_doctor: load, replay, certify, diagnose and diff `.lumirec` flight
// recordings (docs/OBSERVABILITY.md#flight-recorder).
//
//   run_doctor FILE.lumirec              full report: provenance, diagnosis,
//                                        rule fire counts, per-robot
//                                        timelines, cycle certification,
//                                        replay verification
//   run_doctor --verify FILE.lumirec     deterministic replay only; exits
//                                        non-zero unless final configuration,
//                                        stats and event tail are identical
//   run_doctor --certify FILE.lumirec    replay the recorded cycle witness
//                                        and check the configuration recurs
//   run_doctor --diff A.lumirec B.lumirec  instant-by-instant diff
//   run_doctor --record=OUT.lumirec --section=4.2.1 [--rows=N] [--cols=N]
//              [--topo=SPEC] [--sched=NAME] [--seed=N] [--max-steps=N]
//              [--capacity=N] [--table=FILE.lumi]
//                                        run one cell with a recorder and
//                                        write the recording (--table records
//                                        an ad-hoc DSL table instead of a
//                                        registry section)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/algorithms/registry.hpp"
#include "src/campaign/campaign.hpp"
#include "src/campaign/doctor.hpp"
#include "src/dsl/dsl.hpp"
#include "src/obs/recorder.hpp"
#include "src/topo/topology.hpp"

namespace {

using namespace lumi;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--verify|--certify] FILE.lumirec\n"
               "       %s --diff A.lumirec B.lumirec\n"
               "       %s --record=OUT.lumirec --section=SEC [--table=FILE.lumi]\n"
               "          [--rows=N] [--cols=N] [--topo=SPEC] [--sched=NAME] [--seed=N]\n"
               "          [--max-steps=N] [--capacity=N] [--unique-actions]\n",
               argv0, argv0, argv0);
  return 2;
}

obs::Recording load_or_die(const std::string& path) {
  const std::optional<obs::Recording> rec = obs::recording_load(path);
  if (!rec.has_value()) {
    std::fprintf(stderr, "run_doctor: cannot open '%s'\n", path.c_str());
    std::exit(1);
  }
  return *rec;
}

int verify(const obs::Recording& rec, bool quiet) {
  const campaign::ReplayCheck check = campaign::replay_recording(rec);
  if (check.identical()) {
    if (!quiet) std::printf("replay: identical (final configuration, stats, event tail)\n");
    return 0;
  }
  std::fprintf(stderr, "replay: DIVERGED — the recording does not reproduce:\n");
  for (const std::string& d : check.divergences) {
    std::fprintf(stderr, "  %s\n", d.c_str());
  }
  return 1;
}

int certify(const obs::Recording& rec) {
  std::string why;
  if (campaign::certify_cycle(rec, why)) {
    std::printf("cycle: CERTIFIED — configuration at instant %ld recurs at instant %ld "
                "(period %ld); the execution loops forever\n",
                rec.cycle->start, rec.cycle->start + rec.cycle->length, rec.cycle->length);
    return 0;
  }
  std::fprintf(stderr, "cycle: NOT certified — %s\n", why.c_str());
  return 1;
}

int report(const std::string& path) {
  const obs::Recording rec = load_or_die(path);
  std::printf("recording %s\n", path.c_str());
  std::printf("  section    %s\n",
              rec.prov.section.empty() ? "(ad-hoc table)" : rec.prov.section.c_str());
  std::printf("  world      %dx%d %s\n", rec.prov.rows, rec.prov.cols,
              rec.prov.topo_spec.c_str());
  std::printf("  scheduler  %s seed %u, budget %ld\n", rec.prov.scheduler.c_str(),
              rec.prov.seed, rec.prov.max_steps);
  std::printf("  outcome    terminated=%d explored_all=%d instants=%ld activations=%ld "
              "moves=%ld color_changes=%ld\n",
              rec.terminated ? 1 : 0, rec.explored_all ? 1 : 0, rec.instants,
              rec.activations, rec.moves, rec.color_changes);
  if (!rec.failure.empty()) std::printf("  failure    %s\n", rec.failure.c_str());
  std::printf("  diagnosis  %s\n", obs::to_string(rec.diagnosis).c_str());
  if (rec.cycle.has_value()) {
    std::printf("  witness    instant %ld recurs at %ld (period %ld, hash %016llx)\n",
                rec.cycle->start, rec.cycle->start + rec.cycle->length, rec.cycle->length,
                static_cast<unsigned long long>(rec.cycle->hash));
  }
  std::printf("  events     %lld seen, %zu kept\n\n", rec.events_seen, rec.events.size());
  std::printf("%s\n", campaign::rule_fire_counts(rec).c_str());
  std::printf("%s\n", campaign::per_robot_timeline(rec).c_str());
  int status = 0;
  if (rec.cycle.has_value()) status |= certify(rec);
  status |= verify(rec, /*quiet=*/false);
  return status;
}

int record(int argc, char** argv) {
  std::string out_path;
  std::string section;
  std::string table_path;
  std::string topo_spec = "grid";
  std::string sched_name = "fsync";
  int rows = 4;
  int cols = 5;
  unsigned seed = 1;
  long max_steps = 100000;
  std::size_t capacity = 4096;
  bool unique_actions = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* key) -> std::optional<std::string> {
      const std::size_t n = std::strlen(key);
      if (arg.compare(0, n, key) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.substr(n + 1);
      }
      return std::nullopt;
    };
    if (const auto v = value("--record")) {
      out_path = *v;
    } else if (const auto v = value("--section")) {
      section = *v;
    } else if (const auto v = value("--table")) {
      table_path = *v;
    } else if (const auto v = value("--topo")) {
      topo_spec = *v;
    } else if (const auto v = value("--sched")) {
      sched_name = *v;
    } else if (const auto v = value("--rows")) {
      rows = std::stoi(*v);
    } else if (const auto v = value("--cols")) {
      cols = std::stoi(*v);
    } else if (const auto v = value("--seed")) {
      seed = static_cast<unsigned>(std::stoul(*v));
    } else if (const auto v = value("--max-steps")) {
      max_steps = std::stol(*v);
    } else if (const auto v = value("--capacity")) {
      capacity = static_cast<std::size_t>(std::stoul(*v));
    } else if (arg == "--unique-actions") {
      unique_actions = true;
    } else {
      std::fprintf(stderr, "run_doctor: unknown --record argument '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (out_path.empty() || (section.empty() == table_path.empty())) {
    std::fprintf(stderr,
                 "run_doctor: --record needs an output path and exactly one of "
                 "--section / --table\n");
    return usage(argv[0]);
  }

  Algorithm alg;
  if (!table_path.empty()) {
    std::ifstream in(table_path);
    if (!in) {
      std::fprintf(stderr, "run_doctor: cannot open table '%s'\n", table_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    // Unvalidated on purpose: recording deliberately defective tables (the
    // livelock example in docs/OBSERVABILITY.md) is a primary use.
    alg = dsl::parse(buf.str(), {.validate = false, .strict = false});
  } else {
    alg = algorithms::entry(section).make();
  }
  const std::optional<campaign::SchedKind> kind = campaign::sched_from_name(sched_name);
  if (!kind.has_value()) {
    std::fprintf(stderr, "run_doctor: unknown scheduler '%s'\n", sched_name.c_str());
    return 1;
  }
  const Topology topo = make_topology(topo_spec, rows, cols);

  // A hash revisit only proves a loop under a deterministic memoryless
  // scheduler; arm the detector exactly there.
  obs::Recorder recorder(
      {.capacity = capacity, .detect_cycles = *kind == campaign::SchedKind::Fsync});
  recorder.set_provenance({.section = section,
                           .algorithm_text = dsl::serialize(alg),
                           .topo_spec = topo.spec(),
                           .rows = rows,
                           .cols = cols,
                           .scheduler = sched_name,
                           .seed = seed,
                           .max_steps = max_steps,
                           .require_unique_actions = unique_actions});
  RunOptions opts;
  opts.max_steps = max_steps;
  opts.require_unique_actions = unique_actions;
  opts.recorder = &recorder;
  const RunResult result = campaign::run_with_sched(alg, topo, *kind, seed, opts);
  const obs::Recording rec = obs::make_recording(recorder, result);
  if (!obs::recording_write(out_path, rec)) {
    std::fprintf(stderr, "run_doctor: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  std::printf("recorded %s: diagnosis %s (%lld events seen, %zu kept)\n", out_path.c_str(),
              obs::to_string(rec.diagnosis).c_str(), rec.events_seen, rec.events.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) return usage(argv[0]);
    for (const std::string& a : args) {
      if (a.rfind("--record=", 0) == 0) return record(argc, argv);
    }
    if (args[0] == "--verify" && args.size() == 2) {
      return verify(load_or_die(args[1]), /*quiet=*/false);
    }
    if (args[0] == "--certify" && args.size() == 2) {
      return certify(load_or_die(args[1]));
    }
    if (args[0] == "--diff" && args.size() == 3) {
      const std::string diff =
          campaign::diff_recordings(load_or_die(args[1]), load_or_die(args[2]));
      if (diff.empty()) {
        std::printf("recordings identical\n");
        return 0;
      }
      std::printf("%s", diff.c_str());
      return 1;
    }
    if (args.size() == 1 && args[0][0] != '-') return report(args[0]);
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_doctor: %s\n", e.what());
    return 1;
  }
}
