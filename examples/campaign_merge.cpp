// Folds shard checkpoints into one campaign result.  Shards produced by
// `campaign_cli --shard=i/N --checkpoint=...` over the same matrix merge into
// a summary bit-identical to the single-process run (CSV and JSON alike).
//
//   $ ./campaign_merge --out=merged.ckpt shard0.ckpt shard1.ckpt shard2.ckpt
//   $ ./campaign_merge --csv=sweep.csv --json=sweep.json shard*.ckpt
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "src/campaign/checkpoint.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace_event.hpp"
#include "src/trace/report.hpp"

int main(int argc, char** argv) {
  using namespace lumi;

  std::string out_path, csv_path, json_path, metrics_path, trace_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* key) -> const char* {
      const std::size_t len = std::strlen(key);
      return arg.compare(0, len, key) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--out=")) {
      out_path = v;
    } else if (const char* v = value("--csv=")) {
      csv_path = v;
    } else if (const char* v = value("--json=")) {
      json_path = v;
    } else if (const char* v = value("--metrics-out=")) {
      metrics_path = v;
    } else if (const char* v = value("--trace-out=")) {
      trace_path = v;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "campaign_merge: unknown option '%s'\n", arg.c_str());
      std::fprintf(stderr,
                   "usage: %s [--out=MERGED.ckpt] [--csv=PATH] [--json=PATH]\n"
                   "          [--metrics-out=PATH] [--trace-out=PATH] SHARD.ckpt...\n",
                   argv[0]);
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  // Fail fast on unwritable telemetry destinations, before any shard is
  // loaded.  Append-mode probe: an existing file is left untouched.
  const auto probe_writable = [](const std::string& path, const char* flag) {
    std::ofstream probe(path, std::ios::binary | std::ios::app);
    if (!probe) {
      std::fprintf(stderr, "campaign_merge: cannot open %s path '%s' for writing\n", flag,
                   path.c_str());
      return false;
    }
    return true;
  };
  if (!metrics_path.empty() && !probe_writable(metrics_path, "--metrics-out")) return 2;
  if (!trace_path.empty() && !probe_writable(trace_path, "--trace-out")) return 2;
  // Telemetry is opt-in and result-inert: merged checkpoints and reports are
  // byte-identical with it on or off (tests/test_obs_identity.cpp).
  if (!metrics_path.empty() || !trace_path.empty()) {
    obs::Registry::global().set_enabled(true);
  }
  std::optional<obs::TraceWriter> trace;
  if (!trace_path.empty()) {
    trace.emplace(trace_path);
    obs::TraceWriter::install(&*trace);
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "campaign_merge: no shard checkpoints given\n");
    return 2;
  }

  obs::Counter& obs_shards = obs::Registry::global().counter("merge.shards_loaded");
  campaign::Checkpoint merged;
  std::size_t loaded = 0;
  for (const std::string& path : inputs) {
    obs::Span span("merge.shard", "merge");
    std::optional<campaign::Checkpoint> shard;
    try {
      shard = campaign::checkpoint_load(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "campaign_merge: %s: %s\n", path.c_str(), e.what());
      return 2;
    }
    if (!shard) {
      std::fprintf(stderr, "campaign_merge: cannot read %s\n", path.c_str());
      return 2;
    }
    try {
      if (loaded == 0) {
        merged = std::move(*shard);
      } else {
        campaign::checkpoint_merge(merged, *shard);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "campaign_merge: merging %s: %s\n", path.c_str(), e.what());
      return 2;
    }
    ++loaded;
    obs_shards.add(1);
  }

  const campaign::CampaignSummary summary = campaign::checkpoint_summary(merged);
  std::printf("merged %zu checkpoints: %zu cells, %zu jobs done, "
              "terminated %ld/%ld, explored %ld/%ld, failures %ld\n",
              loaded, merged.cells.size(), merged.jobs_done(), summary.total.terminated,
              summary.total.runs, summary.total.explored_all, summary.total.runs,
              summary.total.failures);

  if (!out_path.empty()) {
    obs::Span span("checkpoint.flush", "merge");
    if (!campaign::checkpoint_write(out_path, merged)) {
      std::fprintf(stderr, "campaign_merge: failed to write %s\n", out_path.c_str());
      return 1;
    }
  }
  if (!csv_path.empty()) {
    obs::Span span("report.write", "cli");
    if (!write_text_file(csv_path, campaign_csv(summary))) {
      std::fprintf(stderr, "campaign_merge: failed to write %s\n", csv_path.c_str());
      return 1;
    }
  }
  if (!json_path.empty()) {
    obs::Span span("report.write", "cli");
    if (!write_text_file(json_path, campaign_json(summary))) {
      std::fprintf(stderr, "campaign_merge: failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  if (!metrics_path.empty() &&
      !write_text_file(metrics_path, obs::metrics_json(obs::Registry::global().snapshot()))) {
    std::fprintf(stderr, "campaign_merge: failed to write %s\n", metrics_path.c_str());
    return 1;
  }
  if (trace && !trace->flush()) {
    std::fprintf(stderr, "campaign_merge: failed to write %s\n", trace_path.c_str());
    return 1;
  }
  return 0;
}
