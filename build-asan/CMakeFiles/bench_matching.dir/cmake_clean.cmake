file(REMOVE_RECURSE
  "CMakeFiles/bench_matching.dir/bench/bench_matching.cpp.o"
  "CMakeFiles/bench_matching.dir/bench/bench_matching.cpp.o.d"
  "bench_matching"
  "bench_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
