file(REMOVE_RECURSE
  "CMakeFiles/bench_figures.dir/bench/bench_figures.cpp.o"
  "CMakeFiles/bench_figures.dir/bench/bench_figures.cpp.o.d"
  "bench_figures"
  "bench_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
