file(REMOVE_RECURSE
  "CMakeFiles/test_algorithms_async.dir/tests/test_algorithms_async.cpp.o"
  "CMakeFiles/test_algorithms_async.dir/tests/test_algorithms_async.cpp.o.d"
  "test_algorithms_async"
  "test_algorithms_async.pdb"
  "test_algorithms_async[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithms_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
