file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling.dir/bench/bench_scaling.cpp.o"
  "CMakeFiles/bench_scaling.dir/bench/bench_scaling.cpp.o.d"
  "bench_scaling"
  "bench_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
