file(REMOVE_RECURSE
  "CMakeFiles/test_impossibility.dir/tests/test_impossibility.cpp.o"
  "CMakeFiles/test_impossibility.dir/tests/test_impossibility.cpp.o.d"
  "test_impossibility"
  "test_impossibility.pdb"
  "test_impossibility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
