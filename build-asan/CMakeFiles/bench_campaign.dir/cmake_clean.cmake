file(REMOVE_RECURSE
  "CMakeFiles/bench_campaign.dir/bench/bench_campaign.cpp.o"
  "CMakeFiles/bench_campaign.dir/bench/bench_campaign.cpp.o.d"
  "bench_campaign"
  "bench_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
