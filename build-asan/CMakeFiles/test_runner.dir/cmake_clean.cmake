file(REMOVE_RECURSE
  "CMakeFiles/test_runner.dir/tests/test_runner.cpp.o"
  "CMakeFiles/test_runner.dir/tests/test_runner.cpp.o.d"
  "test_runner"
  "test_runner.pdb"
  "test_runner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
