file(REMOVE_RECURSE
  "CMakeFiles/test_dsl.dir/tests/test_dsl.cpp.o"
  "CMakeFiles/test_dsl.dir/tests/test_dsl.cpp.o.d"
  "test_dsl"
  "test_dsl.pdb"
  "test_dsl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
