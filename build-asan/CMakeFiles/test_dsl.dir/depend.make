# Empty dependencies file for test_dsl.
# This may be replaced when dependencies are built.
