file(REMOVE_RECURSE
  "CMakeFiles/test_grid_config.dir/tests/test_grid_config.cpp.o"
  "CMakeFiles/test_grid_config.dir/tests/test_grid_config.cpp.o.d"
  "test_grid_config"
  "test_grid_config.pdb"
  "test_grid_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
