# Empty dependencies file for test_grid_config.
# This may be replaced when dependencies are built.
