# Empty dependencies file for async_stress_lab.
# This may be replaced when dependencies are built.
