file(REMOVE_RECURSE
  "CMakeFiles/async_stress_lab.dir/examples/async_stress_lab.cpp.o"
  "CMakeFiles/async_stress_lab.dir/examples/async_stress_lab.cpp.o.d"
  "async_stress_lab"
  "async_stress_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_stress_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
