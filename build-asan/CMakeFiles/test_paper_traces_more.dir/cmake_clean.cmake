file(REMOVE_RECURSE
  "CMakeFiles/test_paper_traces_more.dir/tests/test_paper_traces_more.cpp.o"
  "CMakeFiles/test_paper_traces_more.dir/tests/test_paper_traces_more.cpp.o.d"
  "test_paper_traces_more"
  "test_paper_traces_more.pdb"
  "test_paper_traces_more[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_traces_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
