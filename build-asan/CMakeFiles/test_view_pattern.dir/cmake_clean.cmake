file(REMOVE_RECURSE
  "CMakeFiles/test_view_pattern.dir/tests/test_view_pattern.cpp.o"
  "CMakeFiles/test_view_pattern.dir/tests/test_view_pattern.cpp.o.d"
  "test_view_pattern"
  "test_view_pattern.pdb"
  "test_view_pattern[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_view_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
