# Empty dependencies file for adversary_hunt.
# This may be replaced when dependencies are built.
