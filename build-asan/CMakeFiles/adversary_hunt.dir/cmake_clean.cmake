file(REMOVE_RECURSE
  "CMakeFiles/adversary_hunt.dir/examples/adversary_hunt.cpp.o"
  "CMakeFiles/adversary_hunt.dir/examples/adversary_hunt.cpp.o.d"
  "adversary_hunt"
  "adversary_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
