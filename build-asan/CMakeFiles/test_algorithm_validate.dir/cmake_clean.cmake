file(REMOVE_RECURSE
  "CMakeFiles/test_algorithm_validate.dir/tests/test_algorithm_validate.cpp.o"
  "CMakeFiles/test_algorithm_validate.dir/tests/test_algorithm_validate.cpp.o.d"
  "test_algorithm_validate"
  "test_algorithm_validate.pdb"
  "test_algorithm_validate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithm_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
