file(REMOVE_RECURSE
  "CMakeFiles/explore_cli.dir/examples/explore_cli.cpp.o"
  "CMakeFiles/explore_cli.dir/examples/explore_cli.cpp.o.d"
  "explore_cli"
  "explore_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
