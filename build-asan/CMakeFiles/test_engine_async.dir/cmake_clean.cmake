file(REMOVE_RECURSE
  "CMakeFiles/test_engine_async.dir/tests/test_engine_async.cpp.o"
  "CMakeFiles/test_engine_async.dir/tests/test_engine_async.cpp.o.d"
  "test_engine_async"
  "test_engine_async.pdb"
  "test_engine_async[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
