file(REMOVE_RECURSE
  "CMakeFiles/test_symmetry_property.dir/tests/test_symmetry_property.cpp.o"
  "CMakeFiles/test_symmetry_property.dir/tests/test_symmetry_property.cpp.o.d"
  "test_symmetry_property"
  "test_symmetry_property.pdb"
  "test_symmetry_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symmetry_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
