file(REMOVE_RECURSE
  "CMakeFiles/custom_algorithm.dir/examples/custom_algorithm.cpp.o"
  "CMakeFiles/custom_algorithm.dir/examples/custom_algorithm.cpp.o.d"
  "custom_algorithm"
  "custom_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
