file(REMOVE_RECURSE
  "CMakeFiles/campaign_cli.dir/examples/campaign_cli.cpp.o"
  "CMakeFiles/campaign_cli.dir/examples/campaign_cli.cpp.o.d"
  "campaign_cli"
  "campaign_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
