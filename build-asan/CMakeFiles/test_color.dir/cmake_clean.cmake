file(REMOVE_RECURSE
  "CMakeFiles/test_color.dir/tests/test_color.cpp.o"
  "CMakeFiles/test_color.dir/tests/test_color.cpp.o.d"
  "test_color"
  "test_color.pdb"
  "test_color[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_color.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
