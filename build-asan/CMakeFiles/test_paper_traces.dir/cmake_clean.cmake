file(REMOVE_RECURSE
  "CMakeFiles/test_paper_traces.dir/tests/test_paper_traces.cpp.o"
  "CMakeFiles/test_paper_traces.dir/tests/test_paper_traces.cpp.o.d"
  "test_paper_traces"
  "test_paper_traces.pdb"
  "test_paper_traces[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
