file(REMOVE_RECURSE
  "CMakeFiles/test_trace_render.dir/tests/test_trace_render.cpp.o"
  "CMakeFiles/test_trace_render.dir/tests/test_trace_render.cpp.o.d"
  "test_trace_render"
  "test_trace_render.pdb"
  "test_trace_render[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
