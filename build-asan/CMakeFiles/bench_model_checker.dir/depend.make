# Empty dependencies file for bench_model_checker.
# This may be replaced when dependencies are built.
