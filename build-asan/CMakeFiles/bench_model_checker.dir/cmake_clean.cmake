file(REMOVE_RECURSE
  "CMakeFiles/bench_model_checker.dir/bench/bench_model_checker.cpp.o"
  "CMakeFiles/bench_model_checker.dir/bench/bench_model_checker.cpp.o.d"
  "bench_model_checker"
  "bench_model_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
