file(REMOVE_RECURSE
  "CMakeFiles/test_geometry.dir/tests/test_geometry.cpp.o"
  "CMakeFiles/test_geometry.dir/tests/test_geometry.cpp.o.d"
  "test_geometry"
  "test_geometry.pdb"
  "test_geometry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
