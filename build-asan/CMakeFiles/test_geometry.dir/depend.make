# Empty dependencies file for test_geometry.
# This may be replaced when dependencies are built.
