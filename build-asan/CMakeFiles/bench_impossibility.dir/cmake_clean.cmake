file(REMOVE_RECURSE
  "CMakeFiles/bench_impossibility.dir/bench/bench_impossibility.cpp.o"
  "CMakeFiles/bench_impossibility.dir/bench/bench_impossibility.cpp.o.d"
  "bench_impossibility"
  "bench_impossibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_impossibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
