# Empty dependencies file for test_transform.
# This may be replaced when dependencies are built.
