file(REMOVE_RECURSE
  "CMakeFiles/test_transform.dir/tests/test_transform.cpp.o"
  "CMakeFiles/test_transform.dir/tests/test_transform.cpp.o.d"
  "test_transform"
  "test_transform.pdb"
  "test_transform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
