file(REMOVE_RECURSE
  "CMakeFiles/test_compiled_matching.dir/tests/test_compiled_matching.cpp.o"
  "CMakeFiles/test_compiled_matching.dir/tests/test_compiled_matching.cpp.o.d"
  "test_compiled_matching"
  "test_compiled_matching.pdb"
  "test_compiled_matching[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiled_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
