# Empty dependencies file for test_compiled_matching.
# This may be replaced when dependencies are built.
