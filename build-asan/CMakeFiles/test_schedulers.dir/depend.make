# Empty dependencies file for test_schedulers.
# This may be replaced when dependencies are built.
