file(REMOVE_RECURSE
  "CMakeFiles/test_schedulers.dir/tests/test_schedulers.cpp.o"
  "CMakeFiles/test_schedulers.dir/tests/test_schedulers.cpp.o.d"
  "test_schedulers"
  "test_schedulers.pdb"
  "test_schedulers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
