
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/alg01_fsync_phi2_l2_chir_k2.cpp" "CMakeFiles/lumi.dir/src/algorithms/alg01_fsync_phi2_l2_chir_k2.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/algorithms/alg01_fsync_phi2_l2_chir_k2.cpp.o.d"
  "/root/repo/src/algorithms/alg02_fsync_phi2_l2_nochir_k3.cpp" "CMakeFiles/lumi.dir/src/algorithms/alg02_fsync_phi2_l2_nochir_k3.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/algorithms/alg02_fsync_phi2_l2_nochir_k3.cpp.o.d"
  "/root/repo/src/algorithms/alg03_fsync_phi1_l3_chir_k2.cpp" "CMakeFiles/lumi.dir/src/algorithms/alg03_fsync_phi1_l3_chir_k2.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/algorithms/alg03_fsync_phi1_l3_chir_k2.cpp.o.d"
  "/root/repo/src/algorithms/alg04_fsync_phi1_l3_nochir_k4.cpp" "CMakeFiles/lumi.dir/src/algorithms/alg04_fsync_phi1_l3_nochir_k4.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/algorithms/alg04_fsync_phi1_l3_nochir_k4.cpp.o.d"
  "/root/repo/src/algorithms/alg05_fsync_phi1_l2_chir_k3.cpp" "CMakeFiles/lumi.dir/src/algorithms/alg05_fsync_phi1_l2_chir_k3.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/algorithms/alg05_fsync_phi1_l2_chir_k3.cpp.o.d"
  "/root/repo/src/algorithms/alg06_async_phi2_l3_chir_k2.cpp" "CMakeFiles/lumi.dir/src/algorithms/alg06_async_phi2_l3_chir_k2.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/algorithms/alg06_async_phi2_l3_chir_k2.cpp.o.d"
  "/root/repo/src/algorithms/alg07_async_phi2_l3_nochir_k3.cpp" "CMakeFiles/lumi.dir/src/algorithms/alg07_async_phi2_l3_nochir_k3.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/algorithms/alg07_async_phi2_l3_nochir_k3.cpp.o.d"
  "/root/repo/src/algorithms/alg08_async_phi2_l2_chir_k3.cpp" "CMakeFiles/lumi.dir/src/algorithms/alg08_async_phi2_l2_chir_k3.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/algorithms/alg08_async_phi2_l2_chir_k3.cpp.o.d"
  "/root/repo/src/algorithms/alg09_async_phi2_l2_nochir_k4.cpp" "CMakeFiles/lumi.dir/src/algorithms/alg09_async_phi2_l2_nochir_k4.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/algorithms/alg09_async_phi2_l2_nochir_k4.cpp.o.d"
  "/root/repo/src/algorithms/alg10_async_phi1_l3_chir_k3.cpp" "CMakeFiles/lumi.dir/src/algorithms/alg10_async_phi1_l3_chir_k3.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/algorithms/alg10_async_phi1_l3_chir_k3.cpp.o.d"
  "/root/repo/src/algorithms/alg11_async_phi1_l3_nochir_k6.cpp" "CMakeFiles/lumi.dir/src/algorithms/alg11_async_phi1_l3_nochir_k6.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/algorithms/alg11_async_phi1_l3_nochir_k6.cpp.o.d"
  "/root/repo/src/algorithms/registry.cpp" "CMakeFiles/lumi.dir/src/algorithms/registry.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/algorithms/registry.cpp.o.d"
  "/root/repo/src/algorithms/transform.cpp" "CMakeFiles/lumi.dir/src/algorithms/transform.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/algorithms/transform.cpp.o.d"
  "/root/repo/src/analysis/impossibility.cpp" "CMakeFiles/lumi.dir/src/analysis/impossibility.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/analysis/impossibility.cpp.o.d"
  "/root/repo/src/analysis/model_checker.cpp" "CMakeFiles/lumi.dir/src/analysis/model_checker.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/analysis/model_checker.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "CMakeFiles/lumi.dir/src/analysis/stats.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/analysis/stats.cpp.o.d"
  "/root/repo/src/analysis/verifier.cpp" "CMakeFiles/lumi.dir/src/analysis/verifier.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/analysis/verifier.cpp.o.d"
  "/root/repo/src/campaign/aggregate.cpp" "CMakeFiles/lumi.dir/src/campaign/aggregate.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/campaign/aggregate.cpp.o.d"
  "/root/repo/src/campaign/campaign.cpp" "CMakeFiles/lumi.dir/src/campaign/campaign.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/campaign/campaign.cpp.o.d"
  "/root/repo/src/campaign/thread_pool.cpp" "CMakeFiles/lumi.dir/src/campaign/thread_pool.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/campaign/thread_pool.cpp.o.d"
  "/root/repo/src/core/algorithm.cpp" "CMakeFiles/lumi.dir/src/core/algorithm.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/core/algorithm.cpp.o.d"
  "/root/repo/src/core/color.cpp" "CMakeFiles/lumi.dir/src/core/color.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/core/color.cpp.o.d"
  "/root/repo/src/core/compiled.cpp" "CMakeFiles/lumi.dir/src/core/compiled.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/core/compiled.cpp.o.d"
  "/root/repo/src/core/configuration.cpp" "CMakeFiles/lumi.dir/src/core/configuration.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/core/configuration.cpp.o.d"
  "/root/repo/src/core/geometry.cpp" "CMakeFiles/lumi.dir/src/core/geometry.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/core/geometry.cpp.o.d"
  "/root/repo/src/core/grid.cpp" "CMakeFiles/lumi.dir/src/core/grid.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/core/grid.cpp.o.d"
  "/root/repo/src/core/matching.cpp" "CMakeFiles/lumi.dir/src/core/matching.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/core/matching.cpp.o.d"
  "/root/repo/src/core/pattern.cpp" "CMakeFiles/lumi.dir/src/core/pattern.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/core/pattern.cpp.o.d"
  "/root/repo/src/core/rule.cpp" "CMakeFiles/lumi.dir/src/core/rule.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/core/rule.cpp.o.d"
  "/root/repo/src/core/view.cpp" "CMakeFiles/lumi.dir/src/core/view.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/core/view.cpp.o.d"
  "/root/repo/src/dsl/parser.cpp" "CMakeFiles/lumi.dir/src/dsl/parser.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/dsl/parser.cpp.o.d"
  "/root/repo/src/dsl/serializer.cpp" "CMakeFiles/lumi.dir/src/dsl/serializer.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/dsl/serializer.cpp.o.d"
  "/root/repo/src/engine/async_engine.cpp" "CMakeFiles/lumi.dir/src/engine/async_engine.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/engine/async_engine.cpp.o.d"
  "/root/repo/src/engine/runner.cpp" "CMakeFiles/lumi.dir/src/engine/runner.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/engine/runner.cpp.o.d"
  "/root/repo/src/engine/sync_engine.cpp" "CMakeFiles/lumi.dir/src/engine/sync_engine.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/engine/sync_engine.cpp.o.d"
  "/root/repo/src/sched/async_schedulers.cpp" "CMakeFiles/lumi.dir/src/sched/async_schedulers.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/sched/async_schedulers.cpp.o.d"
  "/root/repo/src/sched/sync_schedulers.cpp" "CMakeFiles/lumi.dir/src/sched/sync_schedulers.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/sched/sync_schedulers.cpp.o.d"
  "/root/repo/src/trace/ascii_render.cpp" "CMakeFiles/lumi.dir/src/trace/ascii_render.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/trace/ascii_render.cpp.o.d"
  "/root/repo/src/trace/figure_printer.cpp" "CMakeFiles/lumi.dir/src/trace/figure_printer.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/trace/figure_printer.cpp.o.d"
  "/root/repo/src/trace/report.cpp" "CMakeFiles/lumi.dir/src/trace/report.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/trace/report.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "CMakeFiles/lumi.dir/src/trace/trace.cpp.o" "gcc" "CMakeFiles/lumi.dir/src/trace/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
