file(REMOVE_RECURSE
  "liblumi.a"
)
