file(REMOVE_RECURSE
  "CMakeFiles/test_model_checker.dir/tests/test_model_checker.cpp.o"
  "CMakeFiles/test_model_checker.dir/tests/test_model_checker.cpp.o.d"
  "test_model_checker"
  "test_model_checker.pdb"
  "test_model_checker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
