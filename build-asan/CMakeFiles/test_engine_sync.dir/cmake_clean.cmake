file(REMOVE_RECURSE
  "CMakeFiles/test_engine_sync.dir/tests/test_engine_sync.cpp.o"
  "CMakeFiles/test_engine_sync.dir/tests/test_engine_sync.cpp.o.d"
  "test_engine_sync"
  "test_engine_sync.pdb"
  "test_engine_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
