file(REMOVE_RECURSE
  "CMakeFiles/test_algorithms_fsync.dir/tests/test_algorithms_fsync.cpp.o"
  "CMakeFiles/test_algorithms_fsync.dir/tests/test_algorithms_fsync.cpp.o.d"
  "test_algorithms_fsync"
  "test_algorithms_fsync.pdb"
  "test_algorithms_fsync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithms_fsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
