# Empty dependencies file for test_algorithms_fsync.
# This may be replaced when dependencies are built.
