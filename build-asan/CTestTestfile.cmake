# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-asan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/test_algorithm_validate[1]_include.cmake")
include("/root/repo/build-asan/test_algorithms_async[1]_include.cmake")
include("/root/repo/build-asan/test_algorithms_fsync[1]_include.cmake")
include("/root/repo/build-asan/test_campaign[1]_include.cmake")
include("/root/repo/build-asan/test_color[1]_include.cmake")
include("/root/repo/build-asan/test_compiled_matching[1]_include.cmake")
include("/root/repo/build-asan/test_dsl[1]_include.cmake")
include("/root/repo/build-asan/test_engine_async[1]_include.cmake")
include("/root/repo/build-asan/test_engine_sync[1]_include.cmake")
include("/root/repo/build-asan/test_geometry[1]_include.cmake")
include("/root/repo/build-asan/test_grid_config[1]_include.cmake")
include("/root/repo/build-asan/test_impossibility[1]_include.cmake")
include("/root/repo/build-asan/test_matching[1]_include.cmake")
include("/root/repo/build-asan/test_model_checker[1]_include.cmake")
include("/root/repo/build-asan/test_paper_traces[1]_include.cmake")
include("/root/repo/build-asan/test_paper_traces_more[1]_include.cmake")
include("/root/repo/build-asan/test_report[1]_include.cmake")
include("/root/repo/build-asan/test_runner[1]_include.cmake")
include("/root/repo/build-asan/test_schedulers[1]_include.cmake")
include("/root/repo/build-asan/test_stats[1]_include.cmake")
include("/root/repo/build-asan/test_symmetry_property[1]_include.cmake")
include("/root/repo/build-asan/test_trace_render[1]_include.cmake")
include("/root/repo/build-asan/test_transform[1]_include.cmake")
include("/root/repo/build-asan/test_verifier[1]_include.cmake")
include("/root/repo/build-asan/test_view_pattern[1]_include.cmake")
