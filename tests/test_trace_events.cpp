#include "src/obs/trace_event.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace lumi::obs {
namespace {

std::string temp_path(const char* name) { return testing::TempDir() + name; }

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TraceEvents, NoWriterMeansNoRecording) {
  ASSERT_EQ(TraceWriter::current(), nullptr);
  {
    Span span("orphan", "test");  // must be a cheap no-op, not a crash
    span.set_arg("k", 1);
  }
  EXPECT_EQ(TraceWriter::current(), nullptr);
}

TEST(TraceEvents, WriterUninstallsItselfOnDestruction) {
  {
    TraceWriter w(temp_path("trace_uninstall.json"));
    TraceWriter::install(&w);
    EXPECT_EQ(TraceWriter::current(), &w);
  }
  EXPECT_EQ(TraceWriter::current(), nullptr);
}

TEST(TraceEvents, SpansRecordAndFlushAsJson) {
  const std::string path = temp_path("trace_flush.json");
  TraceWriter w(path);
  TraceWriter::install(&w);
  {
    Span outer("outer", "test");
    outer.set_arg("items", 3);
    {
      Span inner("inner", "test");
    }
  }
  TraceWriter::install(nullptr);
  EXPECT_EQ(w.event_count(), 2u);  // spans record on destruction
  ASSERT_TRUE(w.flush());
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"args\": {\"items\": 3}"), std::string::npos);
  // The inner span destructs first, so it serializes first.
  EXPECT_LT(text.find("\"inner\""), text.find("\"outer\""));
}

TEST(TraceEvents, ThreadIdsAreStablePerThreadAndDistinct) {
  const std::uint32_t here = TraceWriter::thread_id();
  EXPECT_EQ(TraceWriter::thread_id(), here);
  std::uint32_t there = 0;
  std::thread t([&there] { there = TraceWriter::thread_id(); });
  t.join();
  EXPECT_NE(there, here);
}

TEST(TraceEvents, FlushReportsIoFailure) {
  TraceWriter w("/no/such/dir/trace.json");
  TraceWriter::install(&w);
  { Span span("x", "test"); }
  TraceWriter::install(nullptr);
  EXPECT_FALSE(w.flush());
}

TEST(TraceEvents, EmptyWriterFlushesValidSkeleton) {
  const std::string path = temp_path("trace_empty.json");
  TraceWriter w(path);
  ASSERT_TRUE(w.flush());
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(w.event_count(), 0u);
}

}  // namespace
}  // namespace lumi::obs
