#include "src/algorithms/transform.hpp"

#include <gtest/gtest.h>

#include "src/algorithms/algorithms.hpp"
#include "src/engine/runner.hpp"

namespace lumi {
namespace {

using enum Color;

TEST(Transform, Derived423ShapeMatchesTable) {
  const Algorithm alg = algorithms::derived423();
  EXPECT_EQ(alg.num_robots(), 3);
  EXPECT_EQ(alg.num_colors, 1);  // only G remains
  EXPECT_EQ(alg.phi, 2);
  EXPECT_EQ(alg.chirality, Chirality::Common);
}

TEST(Transform, Derived424ShapeMatchesTable) {
  const Algorithm alg = algorithms::derived424();
  EXPECT_EQ(alg.num_robots(), 4);
  EXPECT_EQ(alg.num_colors, 1);
}

TEST(Transform, Derived428ShapeMatchesTable) {
  const Algorithm alg = algorithms::derived428();
  EXPECT_EQ(alg.num_robots(), 5);
  EXPECT_EQ(alg.num_colors, 2);  // G and W remain
  EXPECT_EQ(alg.phi, 1);
}

TEST(Transform, GuardMultisetsAreDoubled) {
  const Algorithm base = algorithms::algorithm1();
  const Algorithm derived = algorithms::derived423();
  // Base R1 is self=W with G at West; derived R1 is self=G, center {G,G}.
  const Rule* base_r1 = base.find_rule("R1");
  const Rule* derived_r1 = derived.find_rule("R1");
  ASSERT_NE(base_r1, nullptr);
  ASSERT_NE(derived_r1, nullptr);
  EXPECT_EQ(base_r1->self, W);
  EXPECT_EQ(derived_r1->self, G);
  EXPECT_EQ(derived_r1->pattern_at({0, 0}),
            CellPattern::exactly(ColorMultiset{G, G}));
  // The W-cell reference in base R2 becomes {G,G} in the derived guard.
  const Rule* base_r2 = base.find_rule("R2");
  const Rule* derived_r2 = derived.find_rule("R2");
  ASSERT_NE(base_r2, nullptr);
  ASSERT_NE(derived_r2, nullptr);
  EXPECT_EQ(base_r2->pattern_at({0, 1}), CellPattern::exactly(ColorMultiset{W}));
  EXPECT_EQ(derived_r2->pattern_at({0, 1}), CellPattern::exactly(ColorMultiset{G, G}));
}

TEST(Transform, TransformedExecutionShadowsBase) {
  // The derived algorithm's execution projects onto the base one: same
  // number of instants on the same grid, and the two G representatives stay
  // stacked where the W robot used to be.
  const Algorithm base = algorithms::algorithm1();
  const Algorithm derived = algorithms::derived423();
  const Grid grid(3, 4);
  FsyncScheduler s1, s2;
  RunOptions opts;
  opts.require_unique_actions = true;
  const RunResult rb = run_sync(base, grid, s1, opts);
  const RunResult rd = run_sync(derived, grid, s2, opts);
  ASSERT_TRUE(rb.ok()) << rb.failure;
  ASSERT_TRUE(rd.ok()) << rd.failure;
  EXPECT_EQ(rb.stats.instants, rd.stats.instants);
}

TEST(Transform, RejectsRecoloringAlgorithms) {
  // Algorithm 3 recolors W (rule R3: W -> G), so duplicating W is unsound.
  EXPECT_THROW(algorithms::duplicate_color(algorithms::algorithm3(), W, G, "bad", "x"),
               std::invalid_argument);
}

TEST(Transform, RejectsNonFsync) {
  EXPECT_THROW(algorithms::duplicate_color(algorithms::algorithm6(), W, G, "bad", "x"),
               std::invalid_argument);
}

}  // namespace
}  // namespace lumi
