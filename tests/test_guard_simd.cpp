// Differential test for the guard-plane prefilter kernels: the dispatching
// guard_pass_mask(), the portable scalar reference, and (when compiled in
// and the CPU supports it) the AVX2 kernel must produce bit-identical
// survivor masks for every Table-1 algorithm over randomized configurations.
// Also pins the two safety properties the matcher relies on: a lane whose
// dense guard row matches is never rejected by the prefilter, and padding
// lanes beyond the real (rule, symmetry) count always reject.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "src/algorithms/registry.hpp"
#include "src/core/compiled.hpp"
#include "src/core/matching.hpp"

namespace lumi {
namespace {

/// Reference verdict for one lane straight from the per-rule AoS planes,
/// bypassing the SoA layout entirely.
bool lane_passes_reference(std::span<const CompiledRule> rules, std::size_t nsyms,
                           std::size_t lane, SnapshotPlanes planes) {
  if (lane >= rules.size() * nsyms) return false;  // padding: always reject
  return !rules[lane / nsyms].planes_reject(lane % nsyms, planes);
}

bool dense_row_matches(const CompiledRule& rule, std::size_t s, const Snapshot& snap, int ks) {
  const CellPattern* row = rule.patterns.data() + s * static_cast<std::size_t>(ks);
  for (int w = 0; w < ks; ++w) {
    if (!row[w].matches(snap.cells[static_cast<std::size_t>(w)])) return false;
  }
  return true;
}

TEST(GuardSimd, VectorScalarAndReferenceAgreeOnAllTable1Entries) {
  std::mt19937 rng(20260808);
  const bool simd = guard_simd_available();
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    const Algorithm alg = e.make();
    const std::shared_ptr<const CompiledAlgorithm> compiled = CompiledAlgorithm::get(alg);
    const int ks = compiled->kernel_size();
    const std::size_t nsyms = compiled->symmetries().size();
    const Grid grid(alg.min_rows + 2, alg.min_cols + 2);
    std::uniform_int_distribution<int> row(0, grid.rows() - 1);
    std::uniform_int_distribution<int> col(0, grid.cols() - 1);
    std::uniform_int_distribution<int> color(0, alg.num_colors - 1);
    for (int trial = 0; trial < 80; ++trial) {
      std::vector<Robot> robots;
      for (int i = 0; i < alg.num_robots(); ++i) {
        robots.push_back(Robot{{row(rng), col(rng)}, static_cast<Color>(color(rng))});
      }
      const Configuration config(grid, std::move(robots));
      for (int r = 0; r < config.num_robots(); ++r) {
        const Snapshot snap = take_snapshot(config, r, alg.phi);
        const SnapshotPlanes planes = snapshot_planes(snap, ks);
        // The hot path reads the masks the snapshot fill accumulated; pin
        // them against this from-cells recomputation.
        ASSERT_EQ(snap.planes.occupied, planes.occupied)
            << e.section << " trial " << trial << " robot " << r;
        ASSERT_EQ(snap.planes.wall, planes.wall)
            << e.section << " trial " << trial << " robot " << r;
        const GuardGroup& group = compiled->guard_group(snap.self_color);
        const std::span<const CompiledRule> rules = compiled->rules_for(snap.self_color);
        for (std::size_t base = 0; base < group.lanes; base += kGuardLaneBlock) {
          const std::uint32_t scalar = guard_pass_mask_scalar(group, planes, base);
          const std::uint32_t dispatched = guard_pass_mask(group, planes, base);
          ASSERT_EQ(dispatched, scalar)
              << e.section << " trial " << trial << " robot " << r << " base " << base;
          if (simd) {
            ASSERT_EQ(guard_pass_mask_avx2(group, planes, base), scalar)
                << e.section << " trial " << trial << " robot " << r << " base " << base;
          }
          for (std::size_t i = 0; i < kGuardLaneBlock; ++i) {
            const bool bit = ((scalar >> i) & 1u) != 0;
            ASSERT_EQ(bit, lane_passes_reference(rules, nsyms, base + i, planes))
                << e.section << " trial " << trial << " robot " << r << " lane " << (base + i);
          }
        }
      }
    }
  }
}

TEST(GuardSimd, PrefilterNeverRejectsAMatchingRow) {
  // Soundness: the prefilter may pass rows that then fail the dense walk,
  // but must never reject a row that would match — otherwise the matcher
  // would silently drop enabled actions.
  std::mt19937 rng(424242);
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    const Algorithm alg = e.make();
    const std::shared_ptr<const CompiledAlgorithm> compiled = CompiledAlgorithm::get(alg);
    const int ks = compiled->kernel_size();
    const std::size_t nsyms = compiled->symmetries().size();
    const Grid grid(alg.min_rows, alg.min_cols);
    std::uniform_int_distribution<int> row(0, grid.rows() - 1);
    std::uniform_int_distribution<int> col(0, grid.cols() - 1);
    std::uniform_int_distribution<int> color(0, alg.num_colors - 1);
    for (int trial = 0; trial < 60; ++trial) {
      std::vector<Robot> robots;
      for (int i = 0; i < alg.num_robots(); ++i) {
        robots.push_back(Robot{{row(rng), col(rng)}, static_cast<Color>(color(rng))});
      }
      const Configuration config(grid, std::move(robots));
      for (int r = 0; r < config.num_robots(); ++r) {
        const Snapshot snap = take_snapshot(config, r, alg.phi);
        const SnapshotPlanes planes = snapshot_planes(snap, ks);
        const GuardGroup& group = compiled->guard_group(snap.self_color);
        const std::span<const CompiledRule> rules = compiled->rules_for(snap.self_color);
        for (std::size_t lane = 0; lane < rules.size() * nsyms; ++lane) {
          if (!dense_row_matches(rules[lane / nsyms], lane % nsyms, snap, ks)) continue;
          const std::size_t base = (lane / kGuardLaneBlock) * kGuardLaneBlock;
          const std::uint32_t mask = guard_pass_mask(group, planes, base);
          ASSERT_NE((mask >> (lane - base)) & 1u, 0u)
              << e.section << " trial " << trial << " robot " << r << " lane " << lane;
        }
      }
    }
  }
}

TEST(GuardSimd, PaddingLanesAlwaysReject) {
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    const Algorithm alg = e.make();
    const std::shared_ptr<const CompiledAlgorithm> compiled = CompiledAlgorithm::get(alg);
    for (int c = 0; c < alg.num_colors; ++c) {
      const GuardGroup& group = compiled->guard_group(static_cast<Color>(c));
      // Even a snapshot whose planes satisfy everything satisfiable (all
      // kernel cells occupied walls — impossible in practice, maximal for
      // the planes test) cannot light a padding lane.
      const SnapshotPlanes saturated{0x1FFF, 0x1FFF};
      for (std::size_t base = 0; base < group.need_occupied.size();
           base += kGuardLaneBlock) {
        const std::uint32_t mask = guard_pass_mask(group, saturated, base);
        for (std::size_t i = 0; i < kGuardLaneBlock; ++i) {
          if (base + i >= group.lanes) {
            EXPECT_EQ((mask >> i) & 1u, 0u) << e.section << " padding lane " << (base + i);
          }
        }
      }
    }
  }
}

TEST(GuardSimd, RequireSimdEnvPinsTheVectorLeg) {
  // The CI SIMD leg exports LUMI_REQUIRE_GUARD_SIMD=1 so a silently-scalar
  // build (missing -mavx2, wrong option) fails loudly instead of passing
  // the differential vacuously.
  const char* require = std::getenv("LUMI_REQUIRE_GUARD_SIMD");
  if (require != nullptr && require[0] == '1') {
    EXPECT_TRUE(guard_simd_available())
        << "LUMI_REQUIRE_GUARD_SIMD=1 but the AVX2 guard kernel is unavailable";
  } else {
    GTEST_SKIP() << "LUMI_REQUIRE_GUARD_SIMD not set; dispatch choice is free";
  }
}

}  // namespace
}  // namespace lumi
