// Pins the exact configurations the paper states in prose: initial
// configurations, turn waypoints, and the odd/even-m terminal
// configurations of each algorithm.  These tests are the ground truth tying
// the reconstructed guards to the paper's executions.
#include <gtest/gtest.h>

#include "src/algorithms/algorithms.hpp"
#include "src/engine/runner.hpp"

namespace lumi {
namespace {

using enum Color;
using Placements = std::vector<std::pair<Vec, std::vector<Color>>>;

/// Runs to termination under the algorithm's natural scheduler and returns
/// the recorded trace.
Trace run_trace(const Algorithm& alg, int rows, int cols) {
  const Grid grid(rows, cols);
  RunOptions opts;
  opts.record_trace = true;
  RunResult result;
  if (alg.model == Synchrony::Fsync) {
    FsyncScheduler sched;
    opts.require_unique_actions = true;
    result = run_sync(alg, grid, sched, opts);
  } else {
    AsyncCentralizedScheduler sched;
    result = run_async(alg, grid, sched, opts);
  }
  EXPECT_TRUE(result.ok()) << alg.name << " on " << grid.to_string() << ": " << result.failure
                           << " (visited " << result.visited_count() << "/" << grid.num_nodes()
                           << ")";
  return std::move(result.trace);
}

Configuration config_of(int rows, int cols, const Placements& placements) {
  return make_configuration(Grid(rows, cols), placements);
}

void expect_reaches(const Trace& trace, int rows, int cols, const Placements& placements,
                    const std::string& what) {
  const Configuration expected = config_of(rows, cols, placements);
  EXPECT_GE(trace.find_placement(expected), 0)
      << what << ": configuration " << expected.to_string() << " never reached";
}

void expect_terminal(const Trace& trace, int rows, int cols, const Placements& placements,
                     const std::string& what) {
  ASSERT_FALSE(trace.empty());
  const Configuration expected = config_of(rows, cols, placements);
  EXPECT_TRUE(trace[trace.size() - 1].config.same_placement(expected))
      << what << ": terminal is " << trace[trace.size() - 1].config.to_string() << ", expected "
      << expected.to_string();
}

// --- Algorithm 1 (§4.2.1) ---------------------------------------------------

TEST(PaperTraces, Alg1TurnWestWaypoints) {
  // Fig. 4 on a 3xn grid, n=5: (a) G(0,3) W(0,4); (b) G(1,3) W(0,4);
  // (c) G(1,2) W(1,4).
  const Trace t = run_trace(algorithms::algorithm1(), 3, 5);
  expect_reaches(t, 3, 5, {{{0, 3}, {G}}, {{0, 4}, {W}}}, "Fig 4(a)");
  expect_reaches(t, 3, 5, {{{1, 3}, {G}}, {{0, 4}, {W}}}, "Fig 4(b)");
  expect_reaches(t, 3, 5, {{{1, 2}, {G}}, {{1, 4}, {W}}}, "Fig 4(c)");
}

TEST(PaperTraces, Alg1TurnEastWaypoints) {
  // Fig. 5: (a) G(1,0) W(1,2); (b) G(2,0) W(1,1); (c) G(2,0) W(2,1).
  const Trace t = run_trace(algorithms::algorithm1(), 3, 5);
  expect_reaches(t, 3, 5, {{{1, 0}, {G}}, {{1, 2}, {W}}}, "Fig 5(a)");
  expect_reaches(t, 3, 5, {{{2, 0}, {G}}, {{1, 1}, {W}}}, "Fig 5(b)");
  expect_reaches(t, 3, 5, {{{2, 0}, {G}}, {{2, 1}, {W}}}, "Fig 5(c)");
}

TEST(PaperTraces, Alg1TerminalOddM) {
  // "Immediately after v_{m-1,n-1} is visited, the configuration is
  //  {(v_{m-1,n-2},{G}), (v_{m-1,n-1},{W})}" — odd m.
  const Trace t = run_trace(algorithms::algorithm1(), 3, 5);
  expect_terminal(t, 3, 5, {{{2, 3}, {G}}, {{2, 4}, {W}}}, "Alg1 odd-m terminal");
}

TEST(PaperTraces, Alg1TerminalEvenM) {
  // Even m: "... the configuration becomes {(v_{m-1,1},{G,W})}".
  const Trace t = run_trace(algorithms::algorithm1(), 4, 5);
  expect_reaches(t, 4, 5, {{{3, 0}, {G}}, {{3, 2}, {W}}}, "Alg1 even-m pre-merge");
  expect_terminal(t, 4, 5, {{{3, 1}, {G, W}}}, "Alg1 even-m terminal");
}

// --- Algorithm 2 (§4.2.2) ---------------------------------------------------

TEST(PaperTraces, Alg2TurnWestWaypoints) {
  // Fig. 6 with n=5: (a) G(0,3) G(0,4) W(1,3); (b) G(0,4) G(1,3) W(2,3);
  // (c) G(1,3) G(1,4) W(2,4).
  const Trace t = run_trace(algorithms::algorithm2(), 4, 5);
  expect_reaches(t, 4, 5, {{{0, 3}, {G}}, {{0, 4}, {G}}, {{1, 3}, {W}}}, "Fig 6(a)");
  expect_reaches(t, 4, 5, {{{0, 4}, {G}}, {{1, 3}, {G}}, {{2, 3}, {W}}}, "Fig 6(b)");
  expect_reaches(t, 4, 5, {{{1, 3}, {G}}, {{1, 4}, {G}}, {{2, 4}, {W}}}, "Fig 6(c)");
}

TEST(PaperTraces, Alg2TerminalOddM) {
  // Odd m: "... {(v_{m-1,0},{G}), (v_{m-2,1},{G}), (v_{m-1,1},{W})}".
  const Trace t = run_trace(algorithms::algorithm2(), 3, 5);
  expect_reaches(t, 3, 5, {{{1, 0}, {G}}, {{1, 1}, {G}}, {{2, 1}, {W}}}, "Alg2 odd-m pre-end");
  expect_terminal(t, 3, 5, {{{2, 0}, {G}}, {{1, 1}, {G}}, {{2, 1}, {W}}}, "Alg2 odd-m terminal");
}

// --- Algorithm 3 (§4.2.5) ---------------------------------------------------

TEST(PaperTraces, Alg3TurnWestWaypoints) {
  // Fig. 7 with n=5: (a) G(0,3) W(0,4); (b) G(0,4) G(1,4); (c) B(1,3) G(1,4).
  const Trace t = run_trace(algorithms::algorithm3(), 3, 5);
  expect_reaches(t, 3, 5, {{{0, 3}, {G}}, {{0, 4}, {W}}}, "Fig 7(a)");
  expect_reaches(t, 3, 5, {{{0, 4}, {G}}, {{1, 4}, {G}}}, "Fig 7(b)");
  expect_reaches(t, 3, 5, {{{1, 3}, {B}}, {{1, 4}, {G}}}, "Fig 7(c)");
}

TEST(PaperTraces, Alg3TurnEastWaypoints) {
  // Fig. 8: (a) B(1,0) G(1,1); (b) G(1,0) B(2,0); (c) G(2,0) W(2,1).
  const Trace t = run_trace(algorithms::algorithm3(), 3, 5);
  expect_reaches(t, 3, 5, {{{1, 0}, {B}}, {{1, 1}, {G}}}, "Fig 8(a)");
  expect_reaches(t, 3, 5, {{{1, 0}, {G}}, {{2, 0}, {B}}}, "Fig 8(b)");
  expect_reaches(t, 3, 5, {{{2, 0}, {G}}, {{2, 1}, {W}}}, "Fig 8(c)");
}

TEST(PaperTraces, Alg3Terminals) {
  // Odd m: {(v_{m-1,n-1},{G,W})}; even m: {(v_{m-1,0},{G,B})}.
  const Trace odd = run_trace(algorithms::algorithm3(), 3, 5);
  expect_terminal(odd, 3, 5, {{{2, 4}, {G, W}}}, "Alg3 odd-m terminal");
  const Trace even = run_trace(algorithms::algorithm3(), 4, 5);
  expect_reaches(even, 4, 5, {{{3, 0}, {B}}, {{3, 1}, {G}}}, "Alg3 even-m pre-merge");
  expect_terminal(even, 4, 5, {{{3, 0}, {G, B}}}, "Alg3 even-m terminal");
}

// --- Algorithm 4 (§4.2.6) ---------------------------------------------------

TEST(PaperTraces, Alg4TurnWestWaypoints) {
  // Fig. 9 with n=5: (a) G(0,3) W(0,4) B(1,3) W(1,4);
  // (b) G(0,4) {W,B}(1,4) W(2,4); (c) W(1,3) G(1,4) W(2,3) B(2,4).
  const Trace t = run_trace(algorithms::algorithm4(), 4, 5);
  expect_reaches(t, 4, 5, {{{0, 3}, {G}}, {{0, 4}, {W}}, {{1, 3}, {B}}, {{1, 4}, {W}}},
                 "Fig 9(a)");
  expect_reaches(t, 4, 5, {{{0, 4}, {G}}, {{1, 4}, {W, B}}, {{2, 4}, {W}}}, "Fig 9(b)");
  expect_reaches(t, 4, 5, {{{1, 3}, {W}}, {{1, 4}, {G}}, {{2, 3}, {W}}, {{2, 4}, {B}}},
                 "Fig 9(c)");
}

TEST(PaperTraces, Alg4TerminalOddM) {
  // Odd m: "... {(v_{m-2,0},{G}), (v_{m-1,0},{W,W,B})}".
  const Trace t = run_trace(algorithms::algorithm4(), 3, 5);
  expect_reaches(
      t, 3, 5, {{{1, 0}, {W}}, {{1, 1}, {G}}, {{2, 0}, {W}}, {{2, 1}, {B}}},
      "Alg4 odd-m pre-end");
  expect_terminal(t, 3, 5, {{{1, 0}, {G}}, {{2, 0}, {W, W, B}}}, "Alg4 odd-m terminal");
}

// --- Algorithm 5 (§4.2.7) ---------------------------------------------------

TEST(PaperTraces, Alg5TurnWestWaypoints) {
  // Fig. 10 with n=5: (a) G(0,3) G(0,4) W(1,3); (b) G(0,4) {G,W}(1,4);
  // (c) W(1,3) W(1,4) G(2,4).
  const Trace t = run_trace(algorithms::algorithm5(), 4, 5);
  expect_reaches(t, 4, 5, {{{0, 3}, {G}}, {{0, 4}, {G}}, {{1, 3}, {W}}}, "Fig 10(a)");
  expect_reaches(t, 4, 5, {{{0, 4}, {G}}, {{1, 4}, {G, W}}}, "Fig 10(b)");
  expect_reaches(t, 4, 5, {{{1, 3}, {W}}, {{1, 4}, {W}}, {{2, 4}, {G}}}, "Fig 10(c)");
}

TEST(PaperTraces, Alg5TurnEastWaypoints) {
  // Fig. 11: (a) W(1,0) W(1,1) G(2,1); (b) W(1,0) {G,W}(2,0);
  // (c) G(2,0) G(2,1) W(3,0).
  const Trace t = run_trace(algorithms::algorithm5(), 4, 5);
  expect_reaches(t, 4, 5, {{{1, 0}, {W}}, {{1, 1}, {W}}, {{2, 1}, {G}}}, "Fig 11(a)");
  expect_reaches(t, 4, 5, {{{1, 0}, {W}}, {{2, 0}, {G, W}}}, "Fig 11(b)");
  expect_reaches(t, 4, 5, {{{2, 0}, {G}}, {{2, 1}, {G}}, {{3, 0}, {W}}}, "Fig 11(c)");
}

TEST(PaperTraces, Alg5Terminals) {
  // Odd m: {(v_{m-1,0},{G,G,W})}; even m: {(v_{m-1,n-1},{G,W,W})}.
  const Trace odd = run_trace(algorithms::algorithm5(), 3, 5);
  expect_reaches(odd, 3, 5, {{{1, 0}, {W}}, {{2, 0}, {G, W}}}, "Alg5 odd-m pre-end");
  expect_terminal(odd, 3, 5, {{{2, 0}, {G, G, W}}}, "Alg5 odd-m terminal");
  const Trace even = run_trace(algorithms::algorithm5(), 4, 5);
  expect_reaches(even, 4, 5, {{{2, 4}, {G}}, {{3, 4}, {G, W}}}, "Alg5 even-m pre-end");
  expect_terminal(even, 4, 5, {{{3, 4}, {G, W, W}}}, "Alg5 even-m terminal");
}

// --- Algorithm 6 (§4.3.1) ---------------------------------------------------

TEST(PaperTraces, Alg6ProceedEastStretchCompact) {
  // "W moves east by R1 -> {(v00,{G}),(v02,{W})}; G moves east by R2 ->
  //  {(v01,{G}),(v02,{W})}".
  const Trace t = run_trace(algorithms::algorithm6(), 3, 5);
  expect_reaches(t, 3, 5, {{{0, 0}, {G}}, {{0, 2}, {W}}}, "Alg6 stretched");
  expect_reaches(t, 3, 5, {{{0, 1}, {G}}, {{0, 2}, {W}}}, "Alg6 compact");
}

TEST(PaperTraces, Alg6TurnWaypoints) {
  // Fig. 12 with n=5: (b) G(0,3) W(1,4); (d) B(1,3) W(1,4).
  // Fig. 13: (b) B(2,0) W(1,1); (c) G(2,0) W(1,1); (d) G(2,0) W(2,1).
  const Trace t = run_trace(algorithms::algorithm6(), 3, 5);
  expect_reaches(t, 3, 5, {{{0, 3}, {G}}, {{1, 4}, {W}}}, "Fig 12(b)");
  expect_reaches(t, 3, 5, {{{1, 3}, {B}}, {{1, 4}, {W}}}, "Fig 12(d)");
  expect_reaches(t, 3, 5, {{{2, 0}, {B}}, {{1, 1}, {W}}}, "Fig 13(b)");
  expect_reaches(t, 3, 5, {{{2, 0}, {G}}, {{1, 1}, {W}}}, "Fig 13(c)");
  expect_reaches(t, 3, 5, {{{2, 0}, {G}}, {{2, 1}, {W}}}, "Fig 13(d)");
}

TEST(PaperTraces, Alg6Terminals) {
  // Odd m: {(v_{m-1,n-2},{G}), (v_{m-1,n-1},{W})}; even m:
  // {(v_{m-1,0},{B}), (v_{m-1,1},{W})}.
  const Trace odd = run_trace(algorithms::algorithm6(), 3, 5);
  expect_terminal(odd, 3, 5, {{{2, 3}, {G}}, {{2, 4}, {W}}}, "Alg6 odd-m terminal");
  const Trace even = run_trace(algorithms::algorithm6(), 4, 5);
  expect_terminal(even, 4, 5, {{{3, 0}, {B}}, {{3, 1}, {W}}}, "Alg6 even-m terminal");
}

// --- Algorithm 7 (§4.3.2) ---------------------------------------------------

TEST(PaperTraces, Alg7ProceedEastRotation) {
  // R1 -> {G(0,0), W(0,1), B(1,1)}; R2 -> {G(0,0), W(0,2), B(1,1)};
  // R3 -> {G(0,1), W(0,2), B(1,1)}.
  const Trace t = run_trace(algorithms::algorithm7(), 3, 5);
  expect_reaches(t, 3, 5, {{{0, 0}, {G}}, {{0, 1}, {W}}, {{1, 1}, {B}}}, "Alg7 after R1");
  expect_reaches(t, 3, 5, {{{0, 0}, {G}}, {{0, 2}, {W}}, {{1, 1}, {B}}}, "Alg7 after R2");
  expect_reaches(t, 3, 5, {{{0, 1}, {G}}, {{0, 2}, {W}}, {{1, 1}, {B}}}, "Alg7 after R3");
}

TEST(PaperTraces, Alg7TurnWestWaypoints) {
  // Fig. 14 with n=5 (turn from rows 0/1 to rows 1/2):
  // (d) W(1,3) W(0,4) B(2,3); (e) W(1,3) W(0,4) B(2,4);
  // (g) W(1,3) G(1,4) B(2,4).
  const Trace t = run_trace(algorithms::algorithm7(), 3, 5);
  expect_reaches(t, 3, 5, {{{1, 3}, {W}}, {{0, 4}, {W}}, {{2, 3}, {B}}}, "Fig 14(d)");
  expect_reaches(t, 3, 5, {{{1, 3}, {W}}, {{0, 4}, {W}}, {{2, 4}, {B}}}, "Fig 14(e)");
  expect_reaches(t, 3, 5, {{{1, 3}, {W}}, {{1, 4}, {G}}, {{2, 4}, {B}}}, "Fig 14(g)");
}

TEST(PaperTraces, Alg7TerminalOddM) {
  // Odd m: {(v_{m-2,1},{G}), (v_{m-1,0},{W}), (v_{m-1,1},{B})}.
  const Trace t = run_trace(algorithms::algorithm7(), 3, 5);
  expect_reaches(t, 3, 5, {{{1, 0}, {W}}, {{1, 1}, {G}}, {{2, 1}, {B}}}, "Alg7 odd-m pre-end");
  expect_terminal(t, 3, 5, {{{1, 1}, {G}}, {{2, 0}, {W}}, {{2, 1}, {B}}},
                  "Alg7 odd-m terminal");
}

// --- Algorithm 8 (§4.3.3) ---------------------------------------------------

TEST(PaperTraces, Alg8ProceedEast) {
  // {G(0,0),W(0,2),G(1,0)} -> {G(0,1),W(0,2),G(1,0)} -> {G(0,1),W(0,2),G(1,1)}.
  const Trace t = run_trace(algorithms::algorithm8(), 3, 5);
  expect_reaches(t, 3, 5, {{{0, 0}, {G}}, {{0, 2}, {W}}, {{1, 0}, {G}}}, "Alg8 W stepped");
  expect_reaches(t, 3, 5, {{{0, 1}, {G}}, {{0, 2}, {W}}, {{1, 0}, {G}}}, "Alg8 north G stepped");
  expect_reaches(t, 3, 5, {{{0, 1}, {G}}, {{0, 2}, {W}}, {{1, 1}, {G}}}, "Alg8 south G stepped");
}

TEST(PaperTraces, Alg8TurnWestWaypoints) {
  // Fig. 15 with n=5: (b) G(0,3) G(1,3) W(1,4); (c) G(0,3) W(1,3) W(1,4);
  // (d) G(0,4) W(1,3) W(1,4); (f) W(1,3) G(1,4) W(2,4).
  const Trace t = run_trace(algorithms::algorithm8(), 4, 5);
  expect_reaches(t, 4, 5, {{{0, 3}, {G}}, {{1, 3}, {G}}, {{1, 4}, {W}}}, "Fig 15(b)");
  expect_reaches(t, 4, 5, {{{0, 3}, {G}}, {{1, 3}, {W}}, {{1, 4}, {W}}}, "Fig 15(c)");
  expect_reaches(t, 4, 5, {{{0, 4}, {G}}, {{1, 3}, {W}}, {{1, 4}, {W}}}, "Fig 15(d)");
  expect_reaches(t, 4, 5, {{{1, 3}, {W}}, {{1, 4}, {G}}, {{2, 4}, {W}}}, "Fig 15(f)");
}

TEST(PaperTraces, Alg8Terminals) {
  // Odd m: {(v_{m-2,1},{G}), (v_{m-1,0},{W}), (v_{m-1,1},{W})};
  // even m: {(v_{m-2,n-2},{G}), (v_{m-1,n-2},{G}), (v_{m-1,n-1},{W})}.
  const Trace odd = run_trace(algorithms::algorithm8(), 3, 5);
  expect_terminal(odd, 3, 5, {{{1, 1}, {G}}, {{2, 0}, {W}}, {{2, 1}, {W}}},
                  "Alg8 odd-m terminal");
  const Trace even = run_trace(algorithms::algorithm8(), 4, 5);
  expect_terminal(even, 4, 5, {{{2, 3}, {G}}, {{3, 3}, {G}}, {{3, 4}, {W}}},
                  "Alg8 even-m terminal");
}

// --- Algorithm 9 (§4.3.4) ---------------------------------------------------

TEST(PaperTraces, Alg9ProceedEast) {
  // Fig. 17: (a) -> (b) south W steps; (b) -> (c) east W steps; (c) -> (d)
  // middle W steps; then G.
  const Trace t = run_trace(algorithms::algorithm9(), 3, 6);
  expect_reaches(t, 3, 6, {{{0, 0}, {G}}, {{0, 1}, {W}}, {{0, 2}, {W}}, {{1, 1}, {W}}},
                 "Fig 17(b)");
  expect_reaches(t, 3, 6, {{{0, 0}, {G}}, {{0, 1}, {W}}, {{0, 3}, {W}}, {{1, 1}, {W}}},
                 "Fig 17(c)");
  expect_reaches(t, 3, 6, {{{0, 0}, {G}}, {{0, 2}, {W}}, {{0, 3}, {W}}, {{1, 1}, {W}}},
                 "Fig 17(d)");
}

TEST(PaperTraces, Alg9TerminalOddM) {
  // Odd m: {(v_{m-2,1},{W}), (v_{m-2,2},{G}), (v_{m-1,0},{W}), (v_{m-1,1},{W})}.
  const Trace t = run_trace(algorithms::algorithm9(), 3, 6);
  expect_reaches(
      t, 3, 6,
      {{{1, 0}, {W}}, {{1, 1}, {W}}, {{1, 2}, {G}}, {{2, 1}, {W}}},
      "Alg9 odd-m pre-end");
  expect_terminal(
      t, 3, 6,
      {{{1, 1}, {W}}, {{1, 2}, {G}}, {{2, 0}, {W}}, {{2, 1}, {W}}},
      "Alg9 odd-m terminal");
}

// --- Algorithm 10 (§4.3.5) --------------------------------------------------

TEST(PaperTraces, Alg10ProceedEastLeapfrog) {
  // Fig. 19: (b) {G,W}(0,1) W(0,2); (d) G(0,1) {G,W}(0,2); (f) G(0,1) W(0,2)
  // W(0,3).
  const Trace t = run_trace(algorithms::algorithm10(), 3, 5);
  expect_reaches(t, 3, 5, {{{0, 1}, {G, W}}, {{0, 2}, {W}}}, "Fig 19(b)");
  expect_reaches(t, 3, 5, {{{0, 1}, {G}}, {{0, 2}, {G, W}}}, "Fig 19(d)");
  expect_reaches(t, 3, 5, {{{0, 1}, {G}}, {{0, 2}, {W}}, {{0, 3}, {W}}}, "Fig 19(f)");
}

TEST(PaperTraces, Alg10TurnWestWaypoints) {
  // Fig. 20 with n=5: (a) G(0,3) {G,W}(0,4); (d) {G,W}(0,4) B(1,4);
  // (e) W(0,4) {G,B}(1,4); (g) W(0,4) B(1,3) B(1,4); (h) B(1,3) {W,B}(1,4).
  const Trace t = run_trace(algorithms::algorithm10(), 3, 5);
  expect_reaches(t, 3, 5, {{{0, 3}, {G}}, {{0, 4}, {G, W}}}, "Fig 20(a)");
  expect_reaches(t, 3, 5, {{{0, 4}, {G, W}}, {{1, 4}, {B}}}, "Fig 20(d)");
  expect_reaches(t, 3, 5, {{{0, 4}, {W}}, {{1, 4}, {G, B}}}, "Fig 20(e)");
  expect_reaches(t, 3, 5, {{{0, 4}, {W}}, {{1, 3}, {B}}, {{1, 4}, {B}}}, "Fig 20(g)");
  expect_reaches(t, 3, 5, {{{1, 3}, {B}}, {{1, 4}, {W, B}}}, "Fig 20(h)");
}

TEST(PaperTraces, Alg10TurnEastWaypoints) {
  // Fig. 21 with rows 1->2: (a) {W,B}(1,0) W(1,1); (c) B(1,0) W(1,1) G(2,0);
  // (f) B(1,0) {G,B}(2,0); (h) B(1,0) G(2,0) G(2,1); (j) G(2,0) {G,B}(2,1);
  // (k) G(2,0) {G,W}(2,1).
  const Trace t = run_trace(algorithms::algorithm10(), 4, 5);
  expect_reaches(t, 4, 5, {{{1, 0}, {W, B}}, {{1, 1}, {W}}}, "Fig 21(a)");
  expect_reaches(t, 4, 5, {{{1, 0}, {B}}, {{1, 1}, {W}}, {{2, 0}, {G}}}, "Fig 21(c)");
  expect_reaches(t, 4, 5, {{{1, 0}, {B}}, {{2, 0}, {G, B}}}, "Fig 21(f)");
  expect_reaches(t, 4, 5, {{{1, 0}, {B}}, {{2, 0}, {G}}, {{2, 1}, {G}}}, "Fig 21(h)");
  expect_reaches(t, 4, 5, {{{2, 0}, {G}}, {{2, 1}, {G, B}}}, "Fig 21(j)");
  expect_reaches(t, 4, 5, {{{2, 0}, {G}}, {{2, 1}, {G, W}}}, "Fig 21(k)");
}

TEST(PaperTraces, Alg10Terminals) {
  // Odd m: {(v_{m-1,n-2},{G}), (v_{m-1,n-1},{G,W})}; even m:
  // {(v_{m-1,0},{W,B}), (v_{m-1,1},{W})}.
  const Trace odd = run_trace(algorithms::algorithm10(), 3, 5);
  expect_terminal(odd, 3, 5, {{{2, 3}, {G}}, {{2, 4}, {G, W}}}, "Alg10 odd-m terminal");
  const Trace even = run_trace(algorithms::algorithm10(), 4, 5);
  expect_terminal(even, 4, 5, {{{3, 0}, {W, B}}, {{3, 1}, {W}}}, "Alg10 even-m terminal");
}

// --- Algorithm 11 (§4.3.6) --------------------------------------------------

TEST(PaperTraces, Alg11ProceedEastWaypoints) {
  // Fig. 22 (paper-faithful proceeding): (b) {G,W}(0,1) W(0,2) {W,B}(1,0)
  // W(1,1); (d) {G,W}(0,1) W(0,2) B(1,0) {W,B}(1,1); (h) G(0,1) {G,W}(0,2)
  // B(1,0) W(1,1) W(1,2); (m) = (a) shifted east by one.
  const Trace t = run_trace(algorithms::algorithm11(), 4, 6);
  expect_reaches(t, 4, 6, {{{0, 1}, {G, W}}, {{0, 2}, {W}}, {{1, 0}, {W, B}}, {{1, 1}, {W}}},
                 "Fig 22(b)");
  expect_reaches(t, 4, 6, {{{0, 1}, {G, W}}, {{0, 2}, {W}}, {{1, 0}, {B}}, {{1, 1}, {W, B}}},
                 "Fig 22(d)");
  expect_reaches(
      t, 4, 6,
      {{{0, 1}, {G}}, {{0, 2}, {G, W}}, {{1, 0}, {B}}, {{1, 1}, {W}}, {{1, 2}, {W}}},
      "Fig 22(h)");
  expect_reaches(
      t, 4, 6,
      {{{0, 1}, {G}}, {{0, 2}, {W}}, {{0, 3}, {W}}, {{1, 1}, {W, B}}, {{1, 2}, {W}}},
      "Fig 23(m)");
}

TEST(PaperTraces, Alg11TurnProducesMirrorCrawl) {
  // Our turn design (see DESIGN.md §1): after the east-wall turn the robots
  // re-enter the crawl's (a)-phase one row down, mirrored:
  // W(1,n-3), W(1,n-2), G(1,n-1), W(2,n-2), {W,B}(2,n-1).
  const Trace t = run_trace(algorithms::algorithm11(), 4, 6);
  expect_reaches(t, 4, 6,
                 {{{1, 3}, {W}}, {{1, 4}, {W}}, {{1, 5}, {G}}, {{2, 4}, {W}}, {{2, 5}, {W, B}}},
                 "Alg11 post-turn mirror (a)-phase");
}

}  // namespace
}  // namespace lumi
