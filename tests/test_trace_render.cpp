#include <gtest/gtest.h>

#include <sstream>

#include "src/algorithms/algorithms.hpp"
#include "src/engine/runner.hpp"
#include "src/trace/ascii_render.hpp"
#include "src/trace/figure_printer.hpp"

namespace lumi {
namespace {

using enum Color;

TEST(AsciiRender, SingleConfiguration) {
  const Grid grid(2, 3);
  const Configuration c = make_configuration(grid, {{{0, 0}, {G}}, {{1, 2}, {W, B}}});
  const std::string art = render(c);
  EXPECT_EQ(art,
            "G  .  . \n"
            ".  .  WB\n");
}

TEST(AsciiRender, SingleWidthWhenUnstacked) {
  const Grid grid(1, 3);
  const Configuration c = make_configuration(grid, {{{0, 1}, {G}}});
  EXPECT_EQ(render(c), ". G .\n");
}

TEST(AsciiRender, TraceIncludesNotesAndSteps) {
  const Algorithm alg = algorithms::algorithm1();
  const Grid grid(2, 3);
  FsyncScheduler sched;
  RunOptions opts;
  opts.record_trace = true;
  const RunResult r = run_sync(alg, grid, sched, opts);
  ASSERT_TRUE(r.ok());
  const std::string art = render_trace(r.trace);
  EXPECT_NE(art.find("step 0: initial"), std::string::npos);
  EXPECT_NE(art.find("R1"), std::string::npos);
}

TEST(AsciiRender, VisitOrderIsBoustrophedon) {
  // Fig. 3: row 0 visited left-to-right, row 1 right-to-left, ...
  const Algorithm alg = algorithms::algorithm1();
  const Grid grid(3, 4);
  FsyncScheduler sched;
  RunOptions opts;
  opts.record_trace = true;
  const RunResult r = run_sync(alg, grid, sched, opts);
  ASSERT_TRUE(r.ok());
  // First-visit instants must increase eastward on row 0 (beyond the two
  // initially occupied nodes) and westward on row 1.
  std::vector<int> first(static_cast<std::size_t>(grid.num_nodes()), -1);
  for (std::size_t t = 0; t < r.trace.size(); ++t) {
    for (const Robot& robot : r.trace[t].config.robots()) {
      int& slot = first[static_cast<std::size_t>(grid.index(robot.pos))];
      if (slot < 0) slot = static_cast<int>(t);
    }
  }
  for (int c = 0; c + 1 < grid.cols(); ++c) {
    EXPECT_LE(first[static_cast<std::size_t>(grid.index({0, c}))],
              first[static_cast<std::size_t>(grid.index({0, c + 1}))]);
  }
  // Row 1 is swept westward; the two easternmost nodes are entered during
  // the turn itself (G drops onto (1,n-2) before W drops onto (1,n-1)).
  for (int c = 0; c + 2 < grid.cols(); ++c) {
    EXPECT_GE(first[static_cast<std::size_t>(grid.index({1, c}))],
              first[static_cast<std::size_t>(grid.index({1, c + 1}))]);
  }
  const std::string art = render_visit_order(r.trace);
  EXPECT_FALSE(art.empty());
  EXPECT_EQ(art.find("-1"), std::string::npos);  // everything visited
}

TEST(FigurePrinter, AllAdvertisedFiguresPrint) {
  for (int fig : available_figures()) {
    std::ostringstream out;
    EXPECT_TRUE(print_figure(out, fig)) << "figure " << fig;
    EXPECT_FALSE(out.str().empty()) << "figure " << fig;
  }
}

TEST(FigurePrinter, UnknownFigureRejected) {
  std::ostringstream out;
  EXPECT_FALSE(print_figure(out, 99));
}

TEST(Trace, FindPlacementLocatesConfigurations) {
  const Algorithm alg = algorithms::algorithm1();
  const Grid grid(2, 3);
  FsyncScheduler sched;
  RunOptions opts;
  opts.record_trace = true;
  const RunResult r = run_sync(alg, grid, sched, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.trace.find_placement(alg.initial_configuration(grid)), 0);
  const Configuration nowhere = make_configuration(grid, {{{1, 1}, {B}}});
  EXPECT_EQ(r.trace.find_placement(nowhere), -1);
}

}  // namespace
}  // namespace lumi
