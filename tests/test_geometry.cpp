#include "src/core/geometry.hpp"

#include <gtest/gtest.h>

#include <set>

namespace lumi {
namespace {

TEST(Geometry, DirVectors) {
  EXPECT_EQ(dir_vec(Dir::North), (Vec{-1, 0}));
  EXPECT_EQ(dir_vec(Dir::East), (Vec{0, 1}));
  EXPECT_EQ(dir_vec(Dir::South), (Vec{1, 0}));
  EXPECT_EQ(dir_vec(Dir::West), (Vec{0, -1}));
}

TEST(Geometry, Opposite) {
  EXPECT_EQ(opposite(Dir::North), Dir::South);
  EXPECT_EQ(opposite(Dir::East), Dir::West);
  EXPECT_EQ(opposite(Dir::South), Dir::North);
  EXPECT_EQ(opposite(Dir::West), Dir::East);
}

TEST(Geometry, Manhattan) {
  EXPECT_EQ(manhattan({0, 0}, {0, 0}), 0);
  EXPECT_EQ(manhattan({0, 0}, {2, 3}), 5);
  EXPECT_EQ(manhattan({2, 3}, {0, 0}), 5);
  EXPECT_EQ(manhattan({-1, 1}, {1, -1}), 4);
}

TEST(Geometry, RotationCyclesDirections) {
  // One clockwise quarter turn maps N->E->S->W->N.
  EXPECT_EQ(rotate_cw(dir_vec(Dir::North), 1), dir_vec(Dir::East));
  EXPECT_EQ(rotate_cw(dir_vec(Dir::East), 1), dir_vec(Dir::South));
  EXPECT_EQ(rotate_cw(dir_vec(Dir::South), 1), dir_vec(Dir::West));
  EXPECT_EQ(rotate_cw(dir_vec(Dir::West), 1), dir_vec(Dir::North));
}

TEST(Geometry, RotationPeriodFour) {
  const Vec v{-1, 2};
  EXPECT_EQ(rotate_cw(v, 4), v);
  EXPECT_EQ(rotate_cw(rotate_cw(v, 1), 3), v);
}

TEST(Geometry, MirrorFlipsEastWest) {
  const Sym mirror{0, true};
  EXPECT_EQ(apply(mirror, dir_vec(Dir::East)), dir_vec(Dir::West));
  EXPECT_EQ(apply(mirror, dir_vec(Dir::West)), dir_vec(Dir::East));
  EXPECT_EQ(apply(mirror, dir_vec(Dir::North)), dir_vec(Dir::North));
  EXPECT_EQ(apply(mirror, dir_vec(Dir::South)), dir_vec(Dir::South));
}

TEST(Geometry, ApplyOnDirsMatchesApplyOnVecs) {
  for (Sym g : all_symmetries()) {
    for (Dir d : kAllDirs) {
      EXPECT_EQ(dir_vec(apply(g, d)), apply(g, dir_vec(d)));
    }
  }
}

TEST(Geometry, SymmetryGroupsHaveExpectedSizes) {
  EXPECT_EQ(rotations().size(), 4u);
  EXPECT_EQ(all_symmetries().size(), 8u);
}

TEST(Geometry, EightSymmetriesAreDistinctOnAProbe) {
  // A fully asymmetric probe point distinguishes all 8 group elements.
  const Vec probe{1, 2};
  std::set<std::pair<int, int>> images;
  for (Sym g : all_symmetries()) {
    const Vec image = apply(g, probe);
    images.insert({image.row, image.col});
  }
  EXPECT_EQ(images.size(), 8u);
}

TEST(Geometry, SymmetriesPreserveManhattanNorm) {
  for (Sym g : all_symmetries()) {
    for (int r = -2; r <= 2; ++r) {
      for (int c = -2; c <= 2; ++c) {
        const Vec v{r, c};
        EXPECT_EQ(manhattan({0, 0}, apply(g, v)), manhattan({0, 0}, v));
      }
    }
  }
}

}  // namespace
}  // namespace lumi
