// Batched micro-runs: grouping consecutive same-cell jobs into one worker
// task (with hoisted setup and arena-backed run scratch) is a pure perf
// change — CSV and JSON reports must be byte-identical across batch sizes
// {1, 4, 16} x thread counts, through the orchestrated path, and through a
// kill-and-resume whose legs use different batch sizes.
#include "src/campaign/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/campaign/orchestrate.hpp"
#include "src/trace/report.hpp"

namespace lumi::campaign {
namespace {

Matrix micro_matrix() {
  // Small grids with several seeds: the regime batching exists for.  Mixed
  // schedulers exercise both the sync and async engines through the batch
  // runner, and a walled topology exercises non-grid cells.
  Matrix m;
  m.sections = {"4.2.1", "4.3.1", "4.3.5"};
  m.rows = {4, 5, 1};
  m.cols = {4, 5, 1};
  m.topologies = {"grid", "torus"};
  m.schedulers = {SchedKind::Fsync, SchedKind::SsyncRandom, SchedKind::AsyncRandom};
  m.seeds = {1, 2, 3, 4, 5, 6};
  // Borderless torus cells never terminate; a tight budget keeps them cheap
  // while still producing (identical) budget-exhaustion rows in the report.
  m.options.max_steps = 600;
  return m;
}

std::string temp_path(const char* name) { return testing::TempDir() + name; }

TEST(Batching, AutoBatchSizeScalesWithCellArea) {
  const Cell tiny{"4.2.1", 4, 4, SchedKind::Fsync, "grid"};
  const Cell mid{"4.2.1", 16, 16, SchedKind::Fsync, "grid"};
  const Cell big{"4.2.1", 64, 64, SchedKind::Fsync, "grid"};
  EXPECT_EQ(auto_batch_size(tiny), 64u);
  EXPECT_EQ(auto_batch_size(mid), 4u);
  EXPECT_EQ(auto_batch_size(big), 1u);
  // Async runs weigh more per node, so they batch shallower at equal area.
  const Cell tiny_async{"4.2.1", 4, 4, SchedKind::AsyncRandom, "grid"};
  EXPECT_LT(auto_batch_size(tiny_async), auto_batch_size(tiny));
  EXPECT_GE(auto_batch_size(tiny_async), 1u);
}

TEST(Batching, ReportsAreByteIdenticalAcrossBatchSizesAndThreads) {
  const Expansion expansion = expand(micro_matrix());
  ASSERT_GT(expansion.jobs.size(), 32u);
  const CampaignSummary reference = run_campaign(expansion, 1, 1);
  const std::string ref_csv = campaign_csv(reference);
  const std::string ref_json = campaign_json(reference);
  for (const std::size_t batch : {std::size_t{0}, std::size_t{4}, std::size_t{16}}) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      const CampaignSummary summary = run_campaign(expansion, threads, batch);
      EXPECT_EQ(campaign_csv(summary), ref_csv)
          << "batch=" << batch << " threads=" << threads;
      EXPECT_EQ(campaign_json(summary), ref_json)
          << "batch=" << batch << " threads=" << threads;
    }
  }
}

TEST(Batching, OrchestratedReportsMatchAtAnyBatchSize) {
  const Expansion expansion = expand(micro_matrix());
  OrchestratorOptions per_job;
  per_job.threads = 2;
  per_job.batch = 1;
  const OrchestratorReport reference = run_orchestrated(expansion, per_job);
  for (const std::size_t batch : {std::size_t{0}, std::size_t{4}, std::size_t{16}}) {
    OrchestratorOptions opts;
    opts.threads = 2;
    opts.batch = batch;
    const OrchestratorReport report = run_orchestrated(expansion, opts);
    EXPECT_EQ(report.jobs_executed, reference.jobs_executed) << "batch=" << batch;
    EXPECT_EQ(campaign_csv(report.summary), campaign_csv(reference.summary))
        << "batch=" << batch;
    EXPECT_EQ(campaign_json(report.summary), campaign_json(reference.summary))
        << "batch=" << batch;
  }
}

TEST(Batching, ResumeAfterKillCrossesBatchSizes) {
  // A campaign killed mid-way under one batch size must resume under a
  // different one onto the exact bytes of an uninterrupted run: checkpoints
  // record per job, so batch grouping is invisible to kill/resume.
  const Expansion expansion = expand(micro_matrix());
  OrchestratorOptions direct_opts;
  direct_opts.threads = 2;
  const OrchestratorReport direct = run_orchestrated(expansion, direct_opts);

  for (const auto& [first_batch, second_batch] :
       {std::pair<std::size_t, std::size_t>{16, 1}, {1, 16}, {4, 0}}) {
    const std::string path = temp_path("batching-resume.ckpt");
    std::remove(path.c_str());

    OrchestratorOptions first;
    first.threads = 2;
    first.batch = first_batch;
    first.checkpoint_path = path;
    first.max_jobs = 7;  // not a multiple of any batch size in play
    const OrchestratorReport killed = run_orchestrated(expansion, first);
    EXPECT_FALSE(killed.complete);
    EXPECT_EQ(killed.jobs_executed, 7u);

    OrchestratorOptions second;
    second.threads = 2;
    second.batch = second_batch;
    second.checkpoint_path = path;
    const OrchestratorReport resumed = run_orchestrated(expansion, second);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.jobs_skipped, 7u);
    EXPECT_EQ(resumed.jobs_executed, expansion.jobs.size() - 7u);
    EXPECT_EQ(campaign_csv(resumed.summary), campaign_csv(direct.summary))
        << first_batch << " -> " << second_batch;
    EXPECT_EQ(campaign_json(resumed.summary), campaign_json(direct.summary))
        << first_batch << " -> " << second_batch;
    std::remove(path.c_str());
  }
}

TEST(Batching, BatchRunnerMatchesPerJobResults) {
  // Item-level check under the hood of the report identity: every result
  // the batch runner delivers equals run_cell on the same (cell, seed).
  const Cell cell{"4.3.1", 4, 4, SchedKind::SsyncRandom, "grid"};
  const RunOptions options;
  const std::vector<unsigned> seeds = {3, 1, 9, 9, 2};
  Arena arena;
  std::size_t delivered = 0;
  run_cell_batch(cell, seeds, options, nullptr, &arena,
                 [&](std::size_t item, const RunResult& result) {
                   ASSERT_EQ(item, delivered);
                   ++delivered;
                   const RunResult expected = run_cell(cell, seeds[item], options);
                   EXPECT_EQ(result.terminated, expected.terminated) << item;
                   EXPECT_EQ(result.explored_all, expected.explored_all) << item;
                   EXPECT_EQ(result.failure, expected.failure) << item;
                   EXPECT_EQ(result.stats.instants, expected.stats.instants) << item;
                   EXPECT_EQ(result.stats.moves, expected.stats.moves) << item;
                   EXPECT_EQ(result.visited, expected.visited) << item;
                 });
  EXPECT_EQ(delivered, seeds.size());
  EXPECT_GT(arena.high_water(), 0u);  // the runs actually lived on the arena
}

TEST(Batching, SetupFailureIsReportedOnEveryItem) {
  const Cell bad{"no.such.section", 4, 4, SchedKind::Fsync, "grid"};
  const std::vector<unsigned> seeds = {1, 2, 3};
  std::size_t delivered = 0;
  run_cell_batch(bad, seeds, RunOptions{}, nullptr, nullptr,
                 [&](std::size_t, const RunResult& result) {
                   ++delivered;
                   EXPECT_FALSE(result.failure.empty());
                 });
  EXPECT_EQ(delivered, seeds.size());
}

}  // namespace
}  // namespace lumi::campaign
