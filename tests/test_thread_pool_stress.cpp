// Contention stress for the work-stealing pool: many external submitters,
// tasks that fan out nested work from inside workers (the steal path), and
// shutdown racing a full queue.  These tests exist to give ThreadSanitizer
// (the `tsan` CI leg / `cmake --preset tsan`) real interleavings to chew on;
// they assert only the pool's contracts — every task runs exactly once,
// wait_idle really waits, the destructor drains — so they pass identically
// under the plain build.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/campaign/thread_pool.hpp"

namespace lumi {
namespace {

TEST(ThreadPoolStress, ConcurrentSubmittersEveryTaskRunsOnce) {
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 250;
  ThreadPool pool(4);
  std::atomic<long> ran{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &ran] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.submit([&ran] { ran.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), static_cast<long>(kSubmitters) * kTasksEach);
}

TEST(ThreadPoolStress, NestedSubmissionFromWorkersExercisesStealing) {
  // Each root task fans out children from inside a worker; children land on
  // the submitting worker's round-robin targets, so siblings must steal to
  // finish.  wait_idle must cover work submitted while it is being awaited.
  constexpr int kRoots = 64;
  constexpr int kChildren = 16;
  ThreadPool pool(4);
  std::atomic<long> ran{0};
  for (int r = 0; r < kRoots; ++r) {
    pool.submit([&pool, &ran] {
      for (int c = 0; c < kChildren; ++c) {
        pool.submit([&ran] { ran.fetch_add(1); });
      }
      ran.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), static_cast<long>(kRoots) * (kChildren + 1));
}

TEST(ThreadPoolStress, ShutdownUnderLoadDrainsEverything) {
  // Destroy the pool the moment the last task is enqueued: the destructor's
  // contract is that nothing already submitted is dropped.
  constexpr int kTasks = 500;
  std::atomic<long> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolStress, RepeatedCreateDestroyChurn) {
  // Pool lifetime churn under load: worker start/join races with submission
  // bursts.  Single-digit pools keep this fast even under TSan.
  std::atomic<long> ran{0};
  long expected = 0;
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(2);
    const int tasks = 10 + round;
    expected += tasks;
    for (int i = 0; i < tasks; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    if (round % 2 == 0) pool.wait_idle();  // alternate: destructor drains
  }
  EXPECT_EQ(ran.load(), expected);
}

TEST(ThreadPoolStress, WaitIdleFromManyThreads) {
  // wait_idle is called concurrently from several externals while workers
  // run; all must wake, and all work must be visible to each of them after
  // the wake (the acquire load pairs with the workers' acq_rel decrement).
  ThreadPool pool(4);
  std::atomic<long> ran{0};
  for (int i = 0; i < 400; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  std::vector<std::thread> waiters;
  waiters.reserve(4);
  for (int w = 0; w < 4; ++w) {
    waiters.emplace_back([&pool, &ran] {
      pool.wait_idle();
      EXPECT_GE(ran.load(), 400);
    });
  }
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(ran.load(), 400);
}

}  // namespace
}  // namespace lumi
