#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/core/configuration.hpp"
#include "src/topo/topology.hpp"

namespace lumi {
namespace {

TEST(Grid, BasicProperties) {
  const Grid g(3, 4);
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.cols(), 4);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_TRUE(g.contains({0, 0}));
  EXPECT_TRUE(g.contains({2, 3}));
  EXPECT_FALSE(g.contains({-1, 0}));
  EXPECT_FALSE(g.contains({3, 0}));
  EXPECT_FALSE(g.contains({0, 4}));
}

TEST(Grid, RejectsDegenerateDimensions) {
  EXPECT_THROW(Grid(0, 3), std::invalid_argument);
  EXPECT_THROW(Grid(3, 0), std::invalid_argument);
}

TEST(Grid, IndexRoundTrip) {
  const Grid g(5, 7);
  for (int i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(g.index(g.node(i)), i);
  }
}

TEST(Grid, EndAndInnerNodes) {
  const Grid g(9, 9);
  EXPECT_TRUE(g.is_end_node({0, 4}));    // border => degree 3
  EXPECT_TRUE(g.is_end_node({0, 0}));    // corner => degree 2
  EXPECT_FALSE(g.is_end_node({4, 4}));
  // Inner nodes are at distance >= 3 from every end node.
  EXPECT_TRUE(g.is_inner_node({4, 4}));
  EXPECT_TRUE(g.is_inner_node({3, 3}));
  EXPECT_TRUE(g.is_inner_node({5, 5}));
  EXPECT_FALSE(g.is_inner_node({2, 4}));
  EXPECT_FALSE(g.is_inner_node({4, 6}));
  // A 9x9 grid has exactly 3x3 = 9 inner nodes, matching the proof of
  // Theorem 1 ("the number of inner nodes in G is at least nine").
  int inner = 0;
  for (int i = 0; i < g.num_nodes(); ++i) inner += g.is_inner_node(g.node(i)) ? 1 : 0;
  EXPECT_EQ(inner, 9);
}

TEST(Configuration, CellAndMultiset) {
  const Grid g(2, 3);
  Configuration c = make_configuration(g, {{{0, 0}, {Color::G}}, {{0, 1}, {Color::W, Color::B}}});
  EXPECT_EQ(c.num_robots(), 3);
  EXPECT_EQ(c.multiset_at({0, 0}), (ColorMultiset{Color::G}));
  EXPECT_EQ(c.multiset_at({0, 1}), (ColorMultiset{Color::B, Color::W}));
  EXPECT_TRUE(c.multiset_at({1, 2}).empty());
  EXPECT_FALSE(c.cell({0, 0}).wall);
  EXPECT_TRUE(c.cell({-1, 0}).wall);
  EXPECT_TRUE(c.cell({0, 3}).wall);
}

TEST(Configuration, RejectsOffGridPlacement) {
  const Grid g(2, 3);
  EXPECT_THROW(Configuration(g, {Robot{{5, 5}, Color::G}}), std::invalid_argument);
}

TEST(Configuration, MoveValidatesAdjacency) {
  const Grid g(2, 3);
  Configuration c(g, {Robot{{0, 0}, Color::G}});
  c.move_robot(0, {0, 1});
  EXPECT_EQ(c.robot(0).pos, (Vec{0, 1}));
  EXPECT_THROW(c.move_robot(0, {1, 2}), std::logic_error);   // not adjacent
  EXPECT_THROW(c.move_robot(0, {-1, 1}), std::logic_error);  // off grid
}

TEST(Configuration, SteppedMoveMatchesValidatedMove) {
  // The engines apply moves through move_robot_stepped with targets produced
  // by Topology::step; this pins it to the validated move_robot — same
  // position, occupancy, and journal — on a bounded grid and across a torus
  // seam (where the canonical target differs from from+dir).
  for (const std::string& spec : {std::string("grid"), std::string("torus")}) {
    const Topology topo = make_topology(spec, 2, 3);
    Configuration a(topo, {Robot{{0, 0}, Color::G}, Robot{{1, 2}, Color::W}});
    Configuration b = a;
    a.set_journal(true);
    b.set_journal(true);
    for (const auto& [robot, dir] : std::initializer_list<std::pair<int, Dir>>{
             {0, Dir::East}, {1, Dir::East}, {0, Dir::South}, {1, Dir::North}}) {
      const std::optional<Vec> to = topo.step(a.robot(robot).pos, dir);
      if (!to) continue;  // bounded edge on the plain grid leg
      a.move_robot(robot, *to);
      b.move_robot_stepped(robot, *to);
      EXPECT_EQ(a.robot(robot).pos, b.robot(robot).pos) << spec;
      EXPECT_TRUE(a.same_placement(b)) << spec;
      ASSERT_EQ(a.journal().size(), b.journal().size()) << spec;
      for (std::size_t i = 0; i < a.journal().size(); ++i) {
        EXPECT_EQ(a.journal()[i], b.journal()[i]) << spec;
      }
    }
  }
}

TEST(Configuration, SamePlacementIgnoresRobotIdentity) {
  const Grid g(2, 3);
  Configuration a(g, {Robot{{0, 0}, Color::G}, Robot{{0, 1}, Color::W}});
  Configuration b(g, {Robot{{0, 1}, Color::W}, Robot{{0, 0}, Color::G}});
  EXPECT_TRUE(a.same_placement(b));
  EXPECT_EQ(a.canonical_hash(), b.canonical_hash());
  Configuration c(g, {Robot{{0, 0}, Color::W}, Robot{{0, 1}, Color::G}});
  EXPECT_FALSE(a.same_placement(c));
}

TEST(Configuration, ToStringSortedByNode) {
  const Grid g(2, 3);
  Configuration c = make_configuration(g, {{{1, 2}, {Color::W}}, {{0, 0}, {Color::G}}});
  EXPECT_EQ(c.to_string(), "{(0,0):{G}, (1,2):{W}}");
}

TEST(Configuration, OccupancyTracksMutationsAndStaysConsistentOnOverflow) {
  const Grid g(2, 3);
  // Fill node (0,0) to the per-color capacity, plus one robot next door.
  std::vector<Robot> robots(kMaxRobotsPerNode, Robot{{0, 0}, Color::G});
  robots.push_back(Robot{{0, 1}, Color::G});
  Configuration c(g, std::move(robots));
  const int mover = kMaxRobotsPerNode;

  // Moving onto the full stack must throw and leave the occupancy exactly as
  // it was (strong guarantee): the mover is still visible on its own node.
  EXPECT_THROW(c.move_robot(mover, {0, 0}), std::overflow_error);
  EXPECT_EQ(c.robot(mover).pos, (Vec{0, 1}));
  EXPECT_EQ(c.multiset_at({0, 1}).count(Color::G), 1);
  EXPECT_EQ(c.multiset_at({0, 0}).count(Color::G), kMaxRobotsPerNode);

  // Normal mutations keep the incremental occupancy in sync.
  c.set_color(mover, Color::W);
  EXPECT_EQ(c.multiset_at({0, 1}).count(Color::W), 1);
  EXPECT_EQ(c.multiset_at({0, 1}).count(Color::G), 0);
  c.move_robot(mover, {1, 1});
  EXPECT_TRUE(c.multiset_at({0, 1}).empty());
  EXPECT_EQ(c.multiset_at({1, 1}).count(Color::W), 1);
  // Recoloring to the current color is a no-op even on a full stack.
  EXPECT_NO_THROW(c.set_color(0, Color::G));
  EXPECT_EQ(c.multiset_at({0, 0}).count(Color::G), kMaxRobotsPerNode);
}

TEST(Configuration, StackedRobotsRender) {
  const Grid g(2, 3);
  Configuration c = make_configuration(g, {{{1, 0}, {Color::G, Color::W, Color::W}}});
  EXPECT_EQ(c.to_string(), "{(1,0):{G,W,W}}");
}

}  // namespace
}  // namespace lumi
