#include "src/core/matching.hpp"

#include <gtest/gtest.h>

namespace lumi {
namespace {

using enum Color;

Algorithm tiny_algorithm(Chirality chirality) {
  Algorithm alg;
  alg.name = "tiny";
  alg.model = Synchrony::Fsync;
  alg.phi = 1;
  alg.num_colors = 2;
  alg.chirality = chirality;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}, {{0, 1}, W}};
  // "G with a W neighbor in front steps toward it" authored facing East.
  alg.rules.push_back(
      RuleBuilder("R1", G).cell("E", {W}).moves(Dir::East).build());
  alg.validate();
  return alg;
}

TEST(Matching, RotationMapsMovementToWorldFrame) {
  const Algorithm alg = tiny_algorithm(Chirality::Common);
  const Grid grid(3, 3);
  // W is SOUTH of G: the guard matches under a 90-degree rotation and the
  // movement must come out as South in the global frame.
  Configuration c = make_configuration(grid, {{{0, 1}, {G}}, {{1, 1}, {W}}});
  const auto actions = enabled_actions(alg, c, 0);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].move, Dir::South);
  EXPECT_EQ(actions[0].new_color, G);
}

TEST(Matching, SelfColorMustMatch) {
  const Algorithm alg = tiny_algorithm(Chirality::Common);
  const Grid grid(3, 3);
  Configuration c = make_configuration(grid, {{{0, 1}, {W}}, {{1, 1}, {W}}});
  EXPECT_TRUE(enabled_actions(alg, c, 0).empty());
}

TEST(Matching, ImplicitGrayRejectsUnexpectedRobots) {
  const Algorithm alg = tiny_algorithm(Chirality::Common);
  const Grid grid(3, 3);
  // A second W behind G violates the implicit gray on the West cell.
  Configuration c =
      make_configuration(grid, {{{1, 1}, {G}}, {{1, 2}, {W}}, {{1, 0}, {W}}});
  // Two W neighbors: guard matches toward each of them?  No: whichever
  // rotation aligns E with one W leaves the other W on a gray cell.
  EXPECT_TRUE(enabled_actions(alg, c, 0).empty());
}

TEST(Matching, DistinctBehaviorsAreDeduplicated) {
  // A symmetric "move north" rule matches under several symmetries but with
  // identical behavior; enabled_actions must report it once per direction.
  Algorithm alg;
  alg.name = "sym";
  alg.model = Synchrony::Fsync;
  alg.phi = 1;
  alg.num_colors = 1;
  alg.chirality = Chirality::None;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}};
  alg.rules.push_back(RuleBuilder("R1", G).cell("N", CellPattern::empty()).moves(Dir::North).build());
  alg.validate();

  const Grid grid(3, 3);
  Configuration c = make_configuration(grid, {{{1, 1}, {G}}});
  const auto actions = enabled_actions(alg, c, 0);
  // All four neighbor cells empty: four distinct world directions.
  EXPECT_EQ(actions.size(), 4u);
}

TEST(Matching, MirrorOnlyAvailableWithoutChirality) {
  // Guard: W at East AND wall at North (chiral when combined with a
  // south-empty constraint breaking the mirror).
  Algorithm chiral;
  chiral.name = "chiral";
  chiral.model = Synchrony::Fsync;
  chiral.phi = 1;
  chiral.num_colors = 2;
  chiral.chirality = Chirality::Common;
  chiral.min_rows = 2;
  chiral.min_cols = 3;
  chiral.initial_robots = {{{0, 0}, G}, {{0, 1}, W}};
  chiral.rules.push_back(RuleBuilder("R1", G)
                             .cell("N", CellPattern::wall())
                             .cell("E", {W})
                             .cell("S", CellPattern::empty())
                             .moves(Dir::South)
                             .build());
  chiral.validate();

  const Grid grid(3, 3);
  // Mirrored situation: wall North, W at WEST.  With common chirality the
  // rule must NOT match; without chirality it must.
  Configuration c = make_configuration(grid, {{{0, 1}, {G}}, {{0, 0}, {W}}});
  EXPECT_TRUE(enabled_actions(chiral, c, 0).empty());

  Algorithm achiral = chiral;
  achiral.chirality = Chirality::None;
  const auto actions = enabled_actions(achiral, c, 0);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].move, Dir::South);  // mirror fixes South
}

TEST(Matching, CenterPatternSeesWholeStack) {
  Algorithm alg;
  alg.name = "stack";
  alg.model = Synchrony::Fsync;
  alg.phi = 1;
  alg.num_colors = 2;
  alg.chirality = Chirality::Common;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}, {{0, 0}, W}};
  alg.rules.push_back(
      RuleBuilder("R1", G).center({G, W}).cell("E", CellPattern::empty()).moves(Dir::East).build());
  alg.validate();

  const Grid grid(2, 3);
  Configuration stacked = make_configuration(grid, {{{0, 0}, {G, W}}});
  EXPECT_FALSE(enabled_actions(alg, stacked, 0).empty());  // robot 0 is the G

  Configuration alone = make_configuration(grid, {{{0, 0}, {G}}});
  EXPECT_TRUE(enabled_actions(alg, alone, 0).empty());
}

TEST(Matching, IsTerminalChecksAllRobots) {
  const Algorithm alg = tiny_algorithm(Chirality::Common);
  const Grid grid(2, 3);
  Configuration moving = make_configuration(grid, {{{0, 0}, {G}}, {{0, 1}, {W}}});
  EXPECT_FALSE(is_terminal(alg, moving));
  Configuration still = make_configuration(grid, {{{0, 0}, {G}}, {{1, 2}, {W}}});
  EXPECT_TRUE(is_terminal(alg, still));
}

}  // namespace
}  // namespace lumi
