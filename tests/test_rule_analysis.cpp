// The semantic rule-table analyzer (src/analysis/rule_analysis.hpp):
//  - the CellPattern meet is the exact intersection over cell contents,
//  - every Table 1 registry algorithm analyzes clean (the CI pin),
//  - each defect class fires on a minimally-perturbed registry algorithm,
//  - every conflict/ambiguous-move witness replays through BOTH matchers
//    (compiled and naive reference) exhibiting the two reported actions,
//  - one conflict is demonstrated engine-level: its witness is the initial
//    view of a real configuration.
#include "src/analysis/rule_analysis.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/algorithms/algorithms.hpp"
#include "src/algorithms/registry.hpp"
#include "src/campaign/campaign.hpp"
#include "src/core/matching.hpp"
#include "src/dsl/dsl.hpp"

namespace lumi {
namespace {

using analysis::AnalysisReport;
using analysis::DefectClass;
using analysis::Finding;

bool has_class(const AnalysisReport& report, DefectClass cls) {
  for (const Finding& f : report.findings) {
    if (f.cls == cls) return true;
  }
  return false;
}

const Finding& first_of(const AnalysisReport& report, DefectClass cls) {
  for (const Finding& f : report.findings) {
    if (f.cls == cls) return f;
  }
  throw std::logic_error("no finding of the requested class");
}

/// The two global-frame behaviors a conflict finding claims, recomputed from
/// the algorithm independently of the analyzer's internals.
std::pair<Action, Action> claimed_actions(const Algorithm& alg, const Finding& f) {
  Action a;
  a.new_color = alg.rules[static_cast<std::size_t>(f.rule_index)].new_color;
  if (const auto& m = alg.rules[static_cast<std::size_t>(f.rule_index)].move) {
    a.move = apply(f.sym, *m);
  }
  Action b;
  b.new_color = alg.rules[static_cast<std::size_t>(f.other_rule_index)].new_color;
  if (const auto& m = alg.rules[static_cast<std::size_t>(f.other_rule_index)].move) {
    b.move = apply(f.other_sym, *m);
  }
  return {a, b};
}

/// Replays the witness through a matcher's action list: both claimed
/// behaviors must be enabled.
bool witness_exhibits(const std::vector<Action>& actions, const std::pair<Action, Action>& ab) {
  bool saw_a = false;
  bool saw_b = false;
  for (const Action& act : actions) {
    saw_a = saw_a || act.same_behavior(ab.first);
    saw_b = saw_b || act.same_behavior(ab.second);
  }
  return saw_a && saw_b;
}

void expect_certified_both_matchers(const Algorithm& alg, const Finding& f) {
  ASSERT_TRUE(f.witness.has_value()) << f.to_string();
  EXPECT_TRUE(f.certified) << f.to_string();
  EXPECT_TRUE(analysis::certify_conflict(alg, f)) << f.to_string();
  const Snapshot snap = f.witness->to_snapshot();
  const auto ab = claimed_actions(alg, f);
  EXPECT_TRUE(witness_exhibits(enabled_actions(alg, snap), ab)) << f.to_string();
  EXPECT_TRUE(witness_exhibits(naive_enabled_actions(alg, snap), ab)) << f.to_string();
}

// --- the meet ----------------------------------------------------------------

TEST(CellPatternMeet, Algebra) {
  const CellPattern gray = CellPattern::gray();
  const CellPattern empty = CellPattern::empty();
  const CellPattern wall = CellPattern::wall();
  const CellPattern any = CellPattern::any();
  const CellPattern g1 = CellPattern::exactly(ColorMultiset{Color::G});
  const CellPattern w1 = CellPattern::exactly(ColorMultiset{Color::W});

  // Any is the identity.
  EXPECT_EQ(meet(any, g1), g1);
  EXPECT_EQ(meet(wall, any), wall);
  // Gray = empty-or-wall: narrows against either, excludes robots.
  EXPECT_EQ(meet(gray, empty), empty);
  EXPECT_EQ(meet(gray, wall), wall);
  EXPECT_EQ(meet(gray, gray), gray);
  EXPECT_EQ(meet(gray, g1), std::nullopt);
  // Distinct exact kinds are disjoint.
  EXPECT_EQ(meet(empty, wall), std::nullopt);
  EXPECT_EQ(meet(g1, w1), std::nullopt);
  EXPECT_EQ(meet(g1, empty), std::nullopt);
  EXPECT_EQ(meet(g1, g1), g1);
  // The empty multiset is the same content set as Empty.
  const CellPattern ms0 = CellPattern::exactly(ColorMultiset{});
  EXPECT_EQ(meet(ms0, empty), empty);
  EXPECT_EQ(meet(ms0, gray), empty);
  // Commutative on every pair above.
  for (const CellPattern& a : {gray, empty, wall, any, g1, w1, ms0}) {
    for (const CellPattern& b : {gray, empty, wall, any, g1, w1, ms0}) {
      EXPECT_EQ(meet(a, b), meet(b, a));
    }
  }
}

TEST(CellPatternMeet, AgreesWithMatchesOnAllContents) {
  // Exhaustive soundness/completeness over a content sample: meet(a,b)
  // matches exactly the contents both a and b match.
  std::vector<CellContent> contents;
  CellContent c;
  contents.push_back(c);  // empty node
  c.wall = true;
  contents.push_back(c);  // wall
  c.wall = false;
  c.robots = ColorMultiset{Color::G};
  contents.push_back(c);
  c.robots = ColorMultiset{Color::G, Color::W};
  contents.push_back(c);
  const std::vector<CellPattern> patterns = {
      CellPattern::gray(),  CellPattern::empty(),
      CellPattern::wall(),  CellPattern::any(),
      CellPattern::exactly(ColorMultiset{Color::G}),
      CellPattern::exactly(ColorMultiset{Color::G, Color::W}),
  };
  for (const CellPattern& a : patterns) {
    for (const CellPattern& b : patterns) {
      const auto m = meet(a, b);
      for (const CellContent& cell : contents) {
        const bool both = a.matches(cell) && b.matches(cell);
        EXPECT_EQ(m.has_value() && m->matches(cell), both);
      }
    }
  }
}

TEST(Algorithm, ReachableColors) {
  Algorithm alg;
  alg.name = "reach";
  alg.num_colors = 3;
  alg.initial_robots.emplace_back(Vec{0, 0}, Color::G);
  alg.rules.push_back(RuleBuilder("R1", Color::G).becomes(Color::W).idle().build());
  // B is declared but no chain ever lights it (the W->B rule exists, but only
  // fires once W is lit — which it is, through R1).
  alg.rules.push_back(RuleBuilder("R2", Color::W).becomes(Color::B).idle().build());
  const std::vector<Color> reached = alg.reachable_colors();
  EXPECT_EQ(reached, (std::vector<Color>{Color::G, Color::W, Color::B}));

  Algorithm isolated = alg;
  isolated.rules.erase(isolated.rules.begin());  // drop G->W: W and B unreachable
  EXPECT_EQ(isolated.reachable_colors(), std::vector<Color>{Color::G});
}

// --- the CI pin --------------------------------------------------------------

TEST(RuleAnalysis, EveryRegistryAlgorithmIsClean) {
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    const Algorithm alg = e.make();
    const AnalysisReport report = analysis::analyze(alg);
    EXPECT_TRUE(report.clean()) << e.section << ":\n" << report.to_string();
    EXPECT_NO_THROW(analysis::require_well_formed(alg)) << e.section;
  }
}

// --- one mutation per defect class, on real registry algorithms --------------

TEST(RuleAnalysis, DuplicatedRuleWithDifferentActionConflicts) {
  Algorithm alg = algorithms::algorithm1();
  Rule twin = alg.rules[0];
  twin.label += "-twin";
  // Same guard, different action: recolor to the other palette color.
  twin.new_color = twin.new_color == Color::G ? Color::W : Color::G;
  alg.rules.push_back(twin);
  const AnalysisReport report = analysis::analyze(alg);
  ASSERT_TRUE(has_class(report, DefectClass::DeterminismConflict)) << report.to_string();
  const Finding& f = first_of(report, DefectClass::DeterminismConflict);
  EXPECT_EQ(f.severity, analysis::Severity::Error);
  expect_certified_both_matchers(alg, f);
}

TEST(RuleAnalysis, SymmetricGuardWithMoveIsAmbiguous) {
  Algorithm alg = algorithms::algorithm1();
  const Color self = alg.initial_robots[0].second;
  // All-gray guard (center defaults to {self}) is invariant under every
  // rotation, yet the move is frame-dependent.
  alg.rules.push_back(RuleBuilder("AMB", self).moves(Dir::North).build());
  const AnalysisReport report = analysis::analyze(alg);
  ASSERT_TRUE(has_class(report, DefectClass::SymmetryAmbiguousMove)) << report.to_string();
  expect_certified_both_matchers(alg, first_of(report, DefectClass::SymmetryAmbiguousMove));
}

TEST(RuleAnalysis, OverBudgetCenterIsDead) {
  Algorithm alg = algorithms::algorithm1();
  Rule& r0 = alg.rules[0];
  ColorMultiset crowd;
  for (int i = 0; i <= alg.num_robots(); ++i) crowd.add(r0.self);
  for (auto& [offset, pattern] : r0.cells) {
    if (offset == Vec{0, 0}) pattern = CellPattern::exactly(crowd);
  }
  const AnalysisReport report = analysis::analyze(alg);
  ASSERT_TRUE(has_class(report, DefectClass::DeadRule)) << report.to_string();
  EXPECT_EQ(first_of(report, DefectClass::DeadRule).rule, r0.label);
}

TEST(RuleAnalysis, OverstatedPaletteIsColorFlow) {
  Algorithm alg = algorithms::algorithm1();
  ASSERT_LT(alg.num_colors, kMaxColors);
  alg.num_colors += 1;  // declares a color nothing ever uses
  const AnalysisReport report = analysis::analyze(alg);
  ASSERT_TRUE(has_class(report, DefectClass::ColorFlow)) << report.to_string();
  EXPECT_EQ(first_of(report, DefectClass::ColorFlow).severity, analysis::Severity::Warning);
}

TEST(RuleAnalysis, MoveIntoRequiredWallIsHazard) {
  Algorithm alg = algorithms::algorithm1();
  // Perturb the first moving rule: require its target cell to be a wall.
  bool mutated = false;
  for (Rule& rule : alg.rules) {
    if (!rule.move.has_value()) continue;
    const Vec target = dir_vec(*rule.move);
    bool found = false;
    for (auto& [offset, pattern] : rule.cells) {
      if (offset == target) {
        pattern = CellPattern::wall();
        found = true;
      }
    }
    if (!found) rule.cells.emplace_back(target, CellPattern::wall());
    mutated = true;
    break;
  }
  ASSERT_TRUE(mutated);
  const AnalysisReport report = analysis::analyze(alg);
  ASSERT_TRUE(has_class(report, DefectClass::WallHazard)) << report.to_string();
  EXPECT_EQ(first_of(report, DefectClass::WallHazard).severity, analysis::Severity::Error);
}

TEST(RuleAnalysis, UnpinnedMoveTargetIsHazardWarning) {
  Algorithm alg = algorithms::algorithm1();
  const Color self = alg.initial_robots[0].second;
  // Break the rotational symmetry (W=wall) so only the hazard fires.
  alg.rules.push_back(
      RuleBuilder("LOOSE", self).cell("W", CellPattern::wall()).moves(Dir::North).build());
  const AnalysisReport report = analysis::analyze(alg);
  ASSERT_TRUE(has_class(report, DefectClass::WallHazard)) << report.to_string();
  const Finding& f = first_of(report, DefectClass::WallHazard);
  EXPECT_EQ(f.severity, analysis::Severity::Warning);
  EXPECT_EQ(f.rule, "LOOSE");
}

TEST(RuleAnalysis, RequireWellFormedThrowsWithFindings) {
  Algorithm alg = algorithms::algorithm1();
  Rule twin = alg.rules[0];
  twin.label += "-twin";
  twin.new_color = twin.new_color == Color::G ? Color::W : Color::G;
  alg.rules.push_back(twin);
  try {
    analysis::require_well_formed(alg);
    FAIL() << "expected require_well_formed to throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("conflict"), std::string::npos) << what;
    EXPECT_NE(what.find(twin.label), std::string::npos) << what;
  }
}

// --- engine-level demonstration ----------------------------------------------

TEST(RuleAnalysis, ConflictWitnessManifestsOnARealConfiguration) {
  // The conflicting pair from the lint fixtures, placed so that the initial
  // configuration's robot observes exactly the analyzer's witness view: the
  // static finding predicts a real runtime ambiguity from step zero.
  const std::string text =
      "algorithm engine-conflict\nphi 1\ncolors 1\nmin-grid 3 3\ninit (1,0)=G\n"
      "rule R1 self=G N=empty E=empty S=empty W=wall -> G,N\n"
      "rule R2 self=G N=empty E=empty -> G,E\n";
  const Algorithm alg = dsl::parse(text);
  const AnalysisReport report = analysis::analyze(alg);
  ASSERT_TRUE(has_class(report, DefectClass::DeterminismConflict)) << report.to_string();
  const Finding& f = first_of(report, DefectClass::DeterminismConflict);
  expect_certified_both_matchers(alg, f);

  const Configuration config = alg.initial_configuration(Grid(3, 3));
  const Snapshot live = take_snapshot(config, 0, alg.phi);
  const auto ab = claimed_actions(alg, f);
  EXPECT_TRUE(witness_exhibits(enabled_actions(alg, live), ab));
  // And the live view IS the witness, cell for cell.
  const Snapshot synthetic = f.witness->to_snapshot();
  for (int w = 0; w < ViewKernel::get(alg.phi).size(); ++w) {
    const auto i = static_cast<std::size_t>(w);
    EXPECT_EQ(live.cells[i].wall, synthetic.cells[i].wall) << w;
    EXPECT_EQ(live.cells[i].robots, synthetic.cells[i].robots) << w;
  }
}

// --- gates -------------------------------------------------------------------

TEST(RuleAnalysis, CampaignExpansionRejectsNothingToday) {
  // The expansion gate runs the analyzer on every section; the shipped
  // registry passes it (an ill-formed table would throw with findings text —
  // covered via require_well_formed above).
  campaign::Matrix matrix;
  matrix.sections = campaign::paper_sections();
  matrix.rows = campaign::IntRange{4, 4, 1};
  matrix.cols = campaign::IntRange{4, 4, 1};
  matrix.seeds = {1};
  EXPECT_NO_THROW(campaign::expand(matrix));
}

TEST(Registry, RejectsDuplicateSectionsAndNames) {
  EXPECT_NO_THROW(algorithms::check_unique(algorithms::table1()));

  std::vector<algorithms::TableEntry> dup_section(algorithms::table1().begin(),
                                                  algorithms::table1().end());
  dup_section.push_back(dup_section.front());
  try {
    algorithms::check_unique(dup_section);
    FAIL() << "expected duplicate section to throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate Table 1 section"), std::string::npos)
        << e.what();
  }

  std::vector<algorithms::TableEntry> dup_name(algorithms::table1().begin(),
                                               algorithms::table1().end());
  dup_name.push_back(dup_name.front());
  dup_name.back().section = "9.9.9";  // unique section, same algorithm name
  try {
    algorithms::check_unique(dup_name);
    FAIL() << "expected duplicate algorithm name to throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("both register algorithm"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace lumi
