// Exhaustive model checking of the Table-1 algorithms on small grids: every
// schedule the respective model admits must terminate fully explored.
#include "src/analysis/model_checker.hpp"

#include <gtest/gtest.h>

#include "src/algorithms/registry.hpp"

namespace lumi {
namespace {

TEST(ModelChecker, FsyncAlgorithmsExhaustive) {
  for (const char* section : {"4.2.1", "4.2.2", "4.2.3", "4.2.4", "4.2.5", "4.2.6", "4.2.7",
                              "4.2.8"}) {
    const Algorithm alg = algorithms::entry(section).make();
    for (const auto& [rows, cols] : {std::pair{2, 3}, {3, 4}, {4, 4}, {3, 5}}) {
      const CheckResult r = model_check(alg, Grid(rows, cols), CheckModel::Fsync);
      EXPECT_TRUE(r.ok) << section << " on " << rows << "x" << cols << ": " << r.to_string();
    }
  }
}

TEST(ModelChecker, AsyncAlgorithmsExhaustiveUnderSsync) {
  for (const char* section : {"4.3.1", "4.3.2", "4.3.3", "4.3.4", "4.3.5", "4.3.6"}) {
    const Algorithm alg = algorithms::entry(section).make();
    const int min_rows = alg.min_rows;
    for (const auto& [rows, cols] : {std::pair{2, 3}, {3, 4}, {3, 3}, {4, 3}, {4, 4}}) {
      if (rows < min_rows) continue;
      const CheckResult r = model_check(alg, Grid(rows, cols), CheckModel::Ssync);
      EXPECT_TRUE(r.ok) << section << " SSYNC on " << rows << "x" << cols << ": "
                        << r.to_string();
    }
  }
}

TEST(ModelChecker, AsyncAlgorithmsExhaustiveUnderAsync) {
  // 4.3.6 is SSYNC-verified only; see Algorithm 11's capability note.
  for (const char* section : {"4.3.1", "4.3.2", "4.3.3", "4.3.4", "4.3.5"}) {
    const Algorithm alg = algorithms::entry(section).make();
    const int min_rows = alg.min_rows;
    for (const auto& [rows, cols] : {std::pair{2, 3}, {3, 4}}) {
      if (rows < min_rows) continue;
      const CheckResult r = model_check(alg, Grid(rows, cols), CheckModel::Async);
      EXPECT_TRUE(r.ok) << section << " ASYNC on " << rows << "x" << cols << ": "
                        << r.to_string();
    }
  }
}

TEST(ModelChecker, DetectsIncompleteCoverage) {
  // A do-nothing algorithm terminates immediately without exploring.
  Algorithm idle;
  idle.name = "idle";
  idle.model = Synchrony::Fsync;
  idle.phi = 1;
  idle.num_colors = 1;
  idle.chirality = Chirality::Common;
  idle.min_rows = 2;
  idle.min_cols = 3;
  idle.initial_robots = {{{0, 0}, Color::G}};
  idle.validate();
  const CheckResult r = model_check(idle, Grid(2, 3), CheckModel::Fsync);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("incomplete coverage"), std::string::npos) << r.failure;
}

TEST(ModelChecker, DetectsNonTermination) {
  // Two robots endlessly swapping: cycle detection must fire.
  Algorithm pingpong;
  pingpong.name = "pingpong";
  pingpong.model = Synchrony::Fsync;
  pingpong.phi = 1;
  pingpong.num_colors = 2;
  pingpong.chirality = Chirality::Common;
  pingpong.min_rows = 2;
  pingpong.min_cols = 3;
  pingpong.initial_robots = {{{0, 0}, Color::G}, {{0, 1}, Color::W}};
  pingpong.rules.push_back(
      RuleBuilder("R1", Color::G).cell("E", {Color::W}).moves(Dir::East).build());
  pingpong.rules.push_back(
      RuleBuilder("R2", Color::W).cell("W", {Color::G}).moves(Dir::West).build());
  pingpong.validate();
  const CheckResult r = model_check(pingpong, Grid(2, 3), CheckModel::Fsync);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("cycle"), std::string::npos) << r.failure;
}

TEST(ModelChecker, RejectsOversizedGrids) {
  const Algorithm alg = algorithms::entry("4.2.1").make();
  EXPECT_THROW(model_check(alg, Grid(9, 9), CheckModel::Fsync), std::invalid_argument);
}

TEST(ModelChecker, CountsStatesAndTransitions) {
  const Algorithm alg = algorithms::entry("4.2.1").make();
  const CheckResult r = model_check(alg, Grid(2, 3), CheckModel::Fsync);
  ASSERT_TRUE(r.ok) << r.to_string();
  EXPECT_GE(r.states, 5);
  EXPECT_GE(r.transitions, r.states - 1);
  EXPECT_GE(r.terminal_states, 1);
}

}  // namespace
}  // namespace lumi
