// Sweep verification of the six ASYNC Table-1 entries under FSYNC, random
// SSYNC, and several ASYNC schedulers (random, centralized, stale-stress).
#include <gtest/gtest.h>

#include "src/algorithms/registry.hpp"
#include "src/analysis/verifier.hpp"

namespace lumi {
namespace {

class AsyncAlgorithmTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AsyncAlgorithmTest, SweepExploresAndTerminates) {
  const algorithms::TableEntry& e = algorithms::entry(GetParam());
  const Algorithm alg = e.make();
  EXPECT_EQ(alg.num_robots(), e.upper_bound);

  SweepOptions opts;
  opts.max_rows = 6;
  opts.max_cols = 7;
  opts.seeds = 6;
  opts.run_fsync = true;
  opts.run_ssync = true;
  // Algorithm 11 is verified for SSYNC only (see its capability note).
  opts.run_async = alg.model == Synchrony::Async;
  const SweepReport report = verify_sweep(alg, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(Table1Async, AsyncAlgorithmTest,
                         ::testing::Values("4.3.1", "4.3.2", "4.3.3", "4.3.4", "4.3.5",
                                           "4.3.6"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return "sec" + name;
                         });

TEST(AsyncAlgorithms, LargerGridsUnderRandomAsync) {
  for (const char* section : {"4.3.1", "4.3.5"}) {
    const Algorithm alg = algorithms::entry(section).make();
    const Grid grid(9, 11);
    AsyncRandomScheduler sched(12345);
    RunOptions opts;
    opts.max_steps = 3'000'000;
    const RunResult r = run_async(alg, grid, sched, opts);
    EXPECT_TRUE(r.ok()) << section << ": " << r.failure << " visited " << r.visited_count();
  }
}

}  // namespace
}  // namespace lumi
