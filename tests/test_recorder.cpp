// Flight-recorder contracts (docs/OBSERVABILITY.md#flight-recorder):
//  - replay identity: a recording re-executed through run_with_sched is
//    byte-identical to the original, across every registry algorithm on grid
//    and torus;
//  - diagnosis soundness: a seeded livelock is diagnosed `cycle` with a
//    certified witness, and a budget-limited *terminating* run is diagnosed
//    `budget-exhausted`, never `cycle` (the FSYNC hash-revisit proof and its
//    contrapositive);
//  - format: serialize/parse round-trips, load failure modes;
//  - ring semantics: the newest `capacity` events survive;
//  - campaign capture: capture_anomaly writes a replayable file.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/algorithms/registry.hpp"
#include "src/campaign/campaign.hpp"
#include "src/campaign/doctor.hpp"
#include "src/dsl/dsl.hpp"
#include "src/engine/runner.hpp"
#include "src/obs/recorder.hpp"
#include "src/topo/topology.hpp"

#ifndef LUMI_SOURCE_DIR
#define LUMI_SOURCE_DIR "."
#endif

namespace lumi::campaign {
namespace {

std::string temp_path(const char* name) { return testing::TempDir() + name; }

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Records one run of `alg` exactly the way capture_anomaly does: cycle
/// detector armed only under FSYNC, provenance carrying everything a replay
/// needs.
obs::Recording record_run(const Algorithm& alg, const std::string& section,
                          const std::string& topo_spec, int rows, int cols, SchedKind sched,
                          unsigned seed, long max_steps, std::size_t capacity = 4096) {
  const Topology topo = make_topology(topo_spec, rows, cols);
  obs::Recorder rec({.capacity = capacity, .detect_cycles = sched == SchedKind::Fsync});
  rec.set_provenance({.section = section,
                      .algorithm_text = dsl::serialize(alg),
                      .topo_spec = topo.spec(),
                      .rows = rows,
                      .cols = cols,
                      .scheduler = to_string(sched),
                      .seed = seed,
                      .max_steps = max_steps,
                      .require_unique_actions = false});
  RunOptions opts;
  opts.max_steps = max_steps;
  opts.recorder = &rec;
  const RunResult result = run_with_sched(alg, topo, sched, seed, opts);
  return obs::make_recording(rec, result);
}

obs::Recording record_section(const std::string& section, const std::string& topo_spec,
                              SchedKind sched, unsigned seed, long max_steps) {
  const Algorithm alg = algorithms::entry(section).make();
  const int rows = std::max(alg.min_rows, 4);
  const int cols = std::max(alg.min_cols, 5);
  return record_run(alg, section, topo_spec, rows, cols, sched, seed, max_steps);
}

Algorithm blinker() {
  // A deliberately defective table (unvalidated parse: the analyzer would
  // reject it): one robot toggling G<->W in place forever under FSYNC.
  const std::string text = slurp(std::string(LUMI_SOURCE_DIR) +
                                 "/tests/fixtures/recordings/blinker.lumi");
  EXPECT_FALSE(text.empty());
  return dsl::parse(text, {.validate = false, .strict = false});
}

// --- replay identity across the whole registry ------------------------------

TEST(RecorderReplay, IdenticalAcrossRegistryOnGridAndTorus) {
  // FSYNC is the weakest adversary, so every registry entry runs under it.
  // On the torus several algorithms never terminate (they assume a border) —
  // replay identity must hold regardless, so budget-capped runs are fine.
  for (const std::string& section : all_sections()) {
    for (const char* topo : {"grid", "torus"}) {
      SCOPED_TRACE(section + " on " + topo);
      const obs::Recording rec =
          record_section(section, topo, SchedKind::Fsync, 1, 2000);
      const ReplayCheck check = replay_recording(rec);
      EXPECT_TRUE(check.identical())
          << (check.divergences.empty() ? "" : check.divergences.front());
      EXPECT_EQ(obs::recording_serialize(check.replayed), obs::recording_serialize(rec));
    }
  }
}

TEST(RecorderReplay, IdenticalUnderAsyncScheduler) {
  const obs::Recording rec =
      record_section("4.2.1", "grid", SchedKind::AsyncRandom, 9, 5000);
  const ReplayCheck check = replay_recording(rec);
  EXPECT_TRUE(check.identical())
      << (check.divergences.empty() ? "" : check.divergences.front());
}

TEST(RecorderReplay, SeedDivergenceIsReported) {
  obs::Recording rec = record_section("4.2.1", "grid", SchedKind::SsyncRandom, 3, 5000);
  rec.prov.seed = 4;  // replay under the wrong seed: must not silently pass
  const ReplayCheck check = replay_recording(rec);
  EXPECT_FALSE(check.identical());
}

// --- termination diagnosis --------------------------------------------------

TEST(RecorderDiagnosis, LivelockIsDiagnosedCycleWithCertifiedWitness) {
  const Algorithm alg = blinker();
  const obs::Recording rec =
      record_run(alg, "", "grid", alg.min_rows, alg.min_cols, SchedKind::Fsync, 1, 25);
  ASSERT_EQ(rec.diagnosis, obs::Diagnosis::Cycle);
  ASSERT_TRUE(rec.cycle.has_value());
  EXPECT_EQ(rec.cycle->start, 0);
  EXPECT_EQ(rec.cycle->length, 2);  // G -> W -> G
  std::string why;
  EXPECT_TRUE(certify_cycle(rec, why)) << why;
}

TEST(RecorderDiagnosis, BudgetLimitedTerminatingRunIsNeverCycle) {
  // 4.2.1 terminates on 4x5 given budget; starved to 5 instants it cannot
  // have revisited a configuration (contrapositive of the FSYNC cycle
  // proof), so the diagnosis must be budget-exhausted, never cycle.
  const obs::Recording rec = record_section("4.2.1", "grid", SchedKind::Fsync, 1, 5);
  EXPECT_FALSE(rec.terminated);
  EXPECT_EQ(rec.diagnosis, obs::Diagnosis::BudgetExhausted);
  EXPECT_FALSE(rec.cycle.has_value());
}

TEST(RecorderDiagnosis, CleanTerminationIsTerminated) {
  const obs::Recording rec = record_section("4.2.1", "grid", SchedKind::Fsync, 1, 100000);
  EXPECT_TRUE(rec.terminated);
  EXPECT_EQ(rec.diagnosis, obs::Diagnosis::Terminated);
}

TEST(RecorderDiagnosis, CertifyRejectsRecordingWithoutWitness) {
  const obs::Recording rec = record_section("4.2.1", "grid", SchedKind::Fsync, 1, 100000);
  std::string why;
  EXPECT_FALSE(certify_cycle(rec, why));
  EXPECT_FALSE(why.empty());
}

// --- ring-buffer semantics --------------------------------------------------

TEST(RecorderRing, KeepsNewestEventsOldestFirst) {
  const Algorithm alg = algorithms::entry("4.2.1").make();
  const obs::Recording full =
      record_run(alg, "4.2.1", "grid", 4, 5, SchedKind::Fsync, 1, 100000);
  ASSERT_GT(full.events_seen, 8);
  ASSERT_EQ(static_cast<long long>(full.events.size()), full.events_seen);

  const obs::Recording capped = record_run(alg, "4.2.1", "grid", 4, 5, SchedKind::Fsync, 1,
                                           100000, /*capacity=*/8);
  EXPECT_EQ(capped.events_seen, full.events_seen);
  ASSERT_EQ(capped.events.size(), 8u);
  // The surviving tail is exactly the newest 8 events, in order.
  const std::vector<obs::RecordedEvent> want(full.events.end() - 8, full.events.end());
  EXPECT_EQ(capped.events, want);
}

// --- format -----------------------------------------------------------------

TEST(RecorderFormat, SerializeParseRoundTripIsIdentity) {
  for (SchedKind sched : {SchedKind::Fsync, SchedKind::AsyncRandom}) {
    const obs::Recording rec = record_section("4.3.1", "grid", sched, 2, 3000);
    const std::string text = obs::recording_serialize(rec);
    const obs::Recording parsed = obs::recording_parse(text);
    EXPECT_EQ(parsed, rec);
    EXPECT_EQ(obs::recording_serialize(parsed), text);  // canonical: fixed point
  }
}

TEST(RecorderFormat, WriteThenLoadRoundTrips) {
  const obs::Recording rec = record_section("4.2.1", "grid", SchedKind::Fsync, 1, 100000);
  const std::string path = temp_path("recorder_roundtrip.lumirec");
  ASSERT_TRUE(obs::recording_write(path, rec));
  const auto loaded = obs::recording_load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, rec);
}

TEST(RecorderFormat, LoadMissingFileIsNullopt) {
  EXPECT_FALSE(obs::recording_load(temp_path("no_such_recording.lumirec")).has_value());
}

TEST(RecorderFormat, LoadMalformedFileThrows) {
  const std::string path = temp_path("recorder_malformed.lumirec");
  {
    std::ofstream out(path, std::ios::binary);
    out << "lumirec 1\ncapacity banana\n";
  }
  EXPECT_THROW((void)obs::recording_load(path), std::runtime_error);
  {
    std::ofstream out(path, std::ios::binary);
    out << "not-a-recording\n";
  }
  EXPECT_THROW((void)obs::recording_load(path), std::runtime_error);
}

// --- doctor rendering -------------------------------------------------------

TEST(RecorderDoctor, TimelineAndRuleCountsRender) {
  const obs::Recording rec = record_section("4.2.1", "grid", SchedKind::Fsync, 1, 100000);
  const std::string timeline = per_robot_timeline(rec);
  EXPECT_NE(timeline.find("robot 0"), std::string::npos);
  const std::string counts = rule_fire_counts(rec);
  EXPECT_FALSE(counts.empty());
}

TEST(RecorderDoctor, DiffIsEmptyOnIdenticalAndNamesDivergence) {
  const obs::Recording a = record_section("4.2.1", "grid", SchedKind::Fsync, 1, 100000);
  obs::Recording b = a;
  EXPECT_EQ(diff_recordings(a, b), "");
  b.prov.seed = 99;
  const std::string diff = diff_recordings(a, b);
  EXPECT_NE(diff.find("seed"), std::string::npos);
  obs::Recording c = a;
  ASSERT_FALSE(c.events.empty());
  c.events.front().robot += 1;
  EXPECT_FALSE(diff_recordings(a, c).empty());
}

// --- campaign capture -------------------------------------------------------

TEST(RecorderCapture, CaptureAnomalyWritesReplayableFile) {
  const std::string dir = testing::TempDir() + "recorder_capture";
  std::filesystem::create_directories(dir);
  Cell cell;
  cell.section = "4.2.1";
  cell.rows = 4;
  cell.cols = 5;
  cell.sched = SchedKind::Fsync;
  cell.topo = "grid";
  RunOptions base;
  base.max_steps = 5;  // starve the run so it is anomalous
  ASSERT_TRUE(capture_anomaly(cell, 0, base, {.dir = dir, .limit = 8}));
  const std::string path = dir + "/anomaly-4.2.1-4x5-grid-fsync-s0.lumirec";
  const auto rec = obs::recording_load(path);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->diagnosis, obs::Diagnosis::BudgetExhausted);
  EXPECT_TRUE(replay_recording(*rec).identical());
}

TEST(RecorderCapture, CaptureAnomalyToleratesUnwritableDir) {
  Cell cell;
  cell.section = "4.2.1";
  cell.rows = 4;
  cell.cols = 5;
  RunOptions base;
  base.max_steps = 5;
  EXPECT_FALSE(capture_anomaly(cell, 0, base, {.dir = "/nonexistent/dir", .limit = 1}));
}

}  // namespace
}  // namespace lumi::campaign
