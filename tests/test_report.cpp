// Report-writer correctness: JSON string escaping, RFC-4180 CSV quoting,
// zero-run cell rendering, and byte-identity of rendered reports across
// thread counts (not just accumulator equality).
#include "src/trace/report.hpp"

#include <gtest/gtest.h>

namespace lumi {
namespace {

using campaign::CampaignSummary;
using campaign::Cell;
using campaign::CellSummary;
using campaign::SchedKind;

CampaignSummary hostile_summary() {
  // Section name with a quote, comma and backslash — every character class
  // the writers previously passed through unescaped.
  CampaignSummary summary;
  CellSummary cell;
  cell.cell = Cell{"4.2.1 \"hostile\", a\\b", 4, 5, SchedKind::Fsync};
  RunResult run;
  run.terminated = true;
  run.explored_all = true;
  run.visited.assign(20, true);
  cell.acc.add(run);
  summary.cells.push_back(cell);
  summary.total = cell.acc;
  summary.jobs = 1;
  return summary;
}

TEST(ReportEscaping, CsvQuotesHostileSection) {
  const std::string csv = campaign_csv(hostile_summary());
  // The field is quoted, inner quotes are doubled, and the row still has the
  // same number of (unquoted) commas as the header.
  EXPECT_NE(csv.find("\"4.2.1 \"\"hostile\"\", a\\b\","), std::string::npos) << csv;
  const std::size_t header_end = csv.find('\n');
  std::size_t header_commas = 0;
  for (std::size_t i = 0; i < header_end; ++i) header_commas += csv[i] == ',' ? 1 : 0;
  std::size_t row_commas = 0;
  bool quoted = false;
  for (std::size_t i = header_end + 1; i < csv.size(); ++i) {
    if (csv[i] == '"') quoted = !quoted;
    if (csv[i] == ',' && !quoted) row_commas += 1;
  }
  EXPECT_EQ(row_commas, header_commas);
}

TEST(ReportEscaping, JsonEscapesHostileSection) {
  const std::string json = campaign_json(hostile_summary());
  EXPECT_NE(json.find("\"section\": \"4.2.1 \\\"hostile\\\", a\\\\b\""), std::string::npos)
      << json;
}

TEST(ReportEscaping, PrimitivesFollowTheirRfcs) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");

  EXPECT_EQ(csv_field("plain"), "plain");
  EXPECT_EQ(csv_field("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_field("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_field("with\nnewline"), "\"with\nnewline\"");
  EXPECT_EQ(csv_field("back\\slash"), "back\\slash");  // backslash alone needs no quoting
}

TEST(Report, ZeroRunCellRendersFiniteZeros) {
  CampaignSummary summary;
  CellSummary cell;
  cell.cell = Cell{"4.2.1", 2, 3, SchedKind::Fsync};  // no runs added
  summary.cells.push_back(cell);

  const std::string csv = campaign_csv(summary);
  EXPECT_NE(csv.find("4.2.1,2,3,grid,fsync,0,0,0,0,0,0,0,0,0"), std::string::npos) << csv;
  const std::string json = campaign_json(summary);
  EXPECT_NE(json.find("\"termination_rate\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"mean\": 0"), std::string::npos);
  for (const std::string& bad : {std::string("nan"), std::string("inf")}) {
    EXPECT_EQ(csv.find(bad), std::string::npos);
    EXPECT_EQ(json.find(bad), std::string::npos);
  }
}

TEST(Report, SingleRunCellRendersExactValuesWithoutNaN) {
  // Deterministic-scheduler cells aggregate exactly one run (n = 1): the
  // variance path degenerates and the percentile rank is 1.  The rendered
  // report must carry the sample itself — no NaN, no bucket-top artifacts
  // beyond the documented clamp.
  CampaignSummary summary;
  CellSummary cell;
  cell.cell = Cell{"4.2.1", 4, 5, SchedKind::SsyncRoundRobin};
  RunResult run;
  run.terminated = true;
  run.explored_all = true;
  run.stats.instants = 1'000'000;  // large enough to stress the exact-sums math
  run.stats.moves = 37;
  run.visited.assign(20, true);
  cell.acc.add(run);
  summary.cells.push_back(cell);
  summary.total = cell.acc;
  summary.jobs = 1;

  EXPECT_DOUBLE_EQ(cell.acc.instants.variance(), 0.0);
  const std::string csv = campaign_csv(summary);
  const std::string json = campaign_json(summary);
  // p50/p90/p99 of a single sample are the sample, in both writers, and the
  // trailing 95% CI half-widths are exactly zero for n = 1.
  EXPECT_NE(csv.find(",1000000,1000000,1000000,37,37,37,0,0\n"), std::string::npos) << csv;
  EXPECT_NE(json.find("\"p50\": 1000000, \"p90\": 1000000, \"p99\": 1000000"),
            std::string::npos)
      << json;
  for (const std::string& bad : {std::string("nan"), std::string("inf")}) {
    EXPECT_EQ(csv.find(bad), std::string::npos);
    EXPECT_EQ(json.find(bad), std::string::npos);
  }
}

TEST(Report, RenderedReportsAreByteIdenticalAcrossThreadCounts) {
  campaign::Matrix matrix;
  matrix.sections = {"4.2.1", "4.3.1", "4.3.5"};
  matrix.rows = {4, 6, 2};
  matrix.cols = {4, 6, 2};
  matrix.schedulers = {SchedKind::Fsync, SchedKind::SsyncRandom, SchedKind::AsyncRandom};
  matrix.seeds = {7, 8};
  const campaign::Expansion expansion = campaign::expand(matrix);

  // Execution-environment fields (threads, wall time) are deliberately not
  // serialized, so the rendered bytes must match outright.
  const CampaignSummary one = campaign::run_campaign(expansion, 1);
  const CampaignSummary four = campaign::run_campaign(expansion, 4);
  EXPECT_EQ(campaign_csv(one), campaign_csv(four));
  EXPECT_EQ(campaign_json(one), campaign_json(four));
}

}  // namespace
}  // namespace lumi
