// Differential test: the compiled matcher must produce exactly the same
// enabled-action sets as the naive sparse-scan reference — same behaviors,
// same order, same (rule_index, sym) witnesses — for every Table-1 algorithm
// over randomized configurations (random positions incl. stacks, random
// colors, walls in view near borders).  This pins the compiled hot path to
// the reference semantics.
#include "src/core/matching.hpp"

#include <gtest/gtest.h>

#include <random>

#include "src/algorithms/registry.hpp"

namespace lumi {
namespace {

bool same_action(const Action& a, const Action& b) {
  return a.new_color == b.new_color && a.move == b.move && a.rule_index == b.rule_index &&
         a.sym == b.sym;
}

TEST(CompiledMatcher, MatchesNaiveOnRandomConfigurations) {
  std::mt19937 rng(20260729);
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    const Algorithm alg = e.make();
    const std::shared_ptr<const CompiledAlgorithm> compiled = CompiledAlgorithm::get(alg);
    // Small grids keep walls inside most views; +2 headroom exercises
    // interior cells too.
    const Grid grid(alg.min_rows + 2, alg.min_cols + 2);
    std::uniform_int_distribution<int> row(0, grid.rows() - 1);
    std::uniform_int_distribution<int> col(0, grid.cols() - 1);
    std::uniform_int_distribution<int> color(0, alg.num_colors - 1);
    for (int trial = 0; trial < 120; ++trial) {
      std::vector<Robot> robots;
      for (int i = 0; i < alg.num_robots(); ++i) {
        robots.push_back(Robot{{row(rng), col(rng)}, static_cast<Color>(color(rng))});
      }
      const Configuration config(grid, std::move(robots));
      bool any_enabled = false;
      for (int r = 0; r < config.num_robots(); ++r) {
        const Snapshot snap = take_snapshot(config, r, alg.phi);
        const std::vector<Action> reference = naive_enabled_actions(alg, snap);
        const std::vector<Action> fast = enabled_actions(*compiled, snap);
        ASSERT_EQ(fast.size(), reference.size())
            << e.section << " trial " << trial << " robot " << r << " in " << config.to_string();
        for (std::size_t i = 0; i < reference.size(); ++i) {
          EXPECT_TRUE(same_action(fast[i], reference[i]))
              << e.section << " trial " << trial << " robot " << r << " action " << i;
        }
        // The allocation-free fast path must agree with the vector-building
        // one: same emptiness, and the same first witness.
        const std::optional<Action> first = first_enabled(*compiled, snap);
        EXPECT_EQ(first.has_value(), !reference.empty());
        if (!reference.empty()) {
          EXPECT_TRUE(same_action(*first, reference.front()))
              << e.section << " trial " << trial << " robot " << r;
        }
        EXPECT_EQ(is_enabled(*compiled, config, r), !reference.empty());
        any_enabled = any_enabled || !reference.empty();
      }
      EXPECT_EQ(is_terminal(*compiled, config), !any_enabled)
          << e.section << " trial " << trial;
    }
  }
}

TEST(CompiledMatcher, RejectsSnapshotWithMismatchedPhi) {
  // The compiled tables are dense over the algorithm's own kernel; a phi-1
  // snapshot would leave cells 5..12 unfilled but readable.
  const Algorithm alg = algorithms::entry("4.2.1").make();  // phi = 2
  ASSERT_EQ(alg.phi, 2);
  const std::shared_ptr<const CompiledAlgorithm> compiled = CompiledAlgorithm::get(alg);
  const Grid grid(alg.min_rows, alg.min_cols);
  const Configuration config = alg.initial_configuration(grid);
  const Snapshot narrow = take_snapshot(config, 0, 1);
  EXPECT_THROW(enabled_actions(*compiled, narrow), std::invalid_argument);
  EXPECT_THROW(first_enabled(*compiled, narrow), std::invalid_argument);
}

TEST(CompiledMatcher, CacheSharesCompilationsAcrossEqualAlgorithms) {
  const Algorithm a = algorithms::entry("4.3.1").make();
  const Algorithm b = algorithms::entry("4.3.1").make();  // independent copy
  EXPECT_EQ(CompiledAlgorithm::get(a), CompiledAlgorithm::get(b));
  const Algorithm other = algorithms::entry("4.2.1").make();
  EXPECT_NE(CompiledAlgorithm::get(a), CompiledAlgorithm::get(other));
}

TEST(CompiledMatcher, AlgorithmOverloadsRouteThroughCompiledPath) {
  const Algorithm alg = algorithms::entry("4.3.5").make();
  const Grid grid(alg.min_rows, alg.min_cols);
  const Configuration config = alg.initial_configuration(grid);
  for (int r = 0; r < config.num_robots(); ++r) {
    const Snapshot snap = take_snapshot(config, r, alg.phi);
    const std::vector<Action> via_algorithm = enabled_actions(alg, config, r);
    const std::vector<Action> reference = naive_enabled_actions(alg, snap);
    ASSERT_EQ(via_algorithm.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(same_action(via_algorithm[i], reference[i]));
    }
    EXPECT_EQ(is_enabled(alg, config, r), !reference.empty());
  }
}

}  // namespace
}  // namespace lumi
