#include "src/engine/sync_engine.hpp"

#include <gtest/gtest.h>

#include "src/algorithms/algorithms.hpp"

namespace lumi {
namespace {

using enum Color;

TEST(SyncEngine, AppliesColorAndMove) {
  const Grid grid(2, 3);
  Configuration c = make_configuration(grid, {{{0, 0}, {G}}});
  Action a;
  a.new_color = W;
  a.move = Dir::East;
  apply_sync_step(c, std::vector<RobotAction>{{0, a}});
  EXPECT_EQ(c.robot(0).pos, (Vec{0, 1}));
  EXPECT_EQ(c.robot(0).color, W);
}

TEST(SyncEngine, SimultaneousFollowIsAllowed) {
  // Robot 1 moves into the node robot 0 vacates in the same instant.
  const Grid grid(1, 3);
  Configuration c(grid, {Robot{{0, 1}, W}, Robot{{0, 0}, G}});
  Action east;
  east.move = Dir::East;
  east.new_color = W;
  Action follow;
  follow.move = Dir::East;
  follow.new_color = G;
  apply_sync_step(c, std::vector<RobotAction>{{0, east}, {1, follow}});
  EXPECT_EQ(c.robot(0).pos, (Vec{0, 2}));
  EXPECT_EQ(c.robot(1).pos, (Vec{0, 1}));
}

TEST(SyncEngine, SimultaneousSwapAndStackAllowed) {
  const Grid grid(1, 2);
  Configuration c(grid, {Robot{{0, 0}, G}, Robot{{0, 1}, W}});
  Action east;
  east.new_color = G;
  east.move = Dir::East;
  Action west;
  west.new_color = W;
  west.move = Dir::West;
  apply_sync_step(c, std::vector<RobotAction>{{0, east}, {1, west}});
  EXPECT_EQ(c.robot(0).pos, (Vec{0, 1}));
  EXPECT_EQ(c.robot(1).pos, (Vec{0, 0}));
}

TEST(SyncEngine, MoveOffGridThrows) {
  const Grid grid(1, 2);
  Configuration c(grid, {Robot{{0, 0}, G}});
  Action north;
  north.new_color = G;
  north.move = Dir::North;
  EXPECT_THROW(apply_sync_step(c, std::vector<RobotAction>{{0, north}}), std::logic_error);
}

TEST(SyncEngine, AllEnabledActionsShape) {
  const Algorithm alg = algorithms::algorithm1();
  const Grid grid(2, 4);
  const Configuration c = alg.initial_configuration(grid);
  const auto enabled = all_enabled_actions(alg, c);
  ASSERT_EQ(enabled.size(), 2u);
  // Both robots are enabled in the initial configuration (R2 and R1).
  EXPECT_EQ(enabled[0].size(), 1u);
  EXPECT_EQ(enabled[1].size(), 1u);
  EXPECT_EQ(enabled[0][0].move, Dir::East);
  EXPECT_EQ(enabled[1][0].move, Dir::East);
}

}  // namespace
}  // namespace lumi
