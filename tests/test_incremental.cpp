// Differential tests for the incremental dirty-tracking match engine: over
// randomized multi-instant executions of every Table-1 algorithm, the
// tracker's cached verdicts must equal — behaviors, order and (rule, sym)
// witnesses — both the compiled matcher re-run from scratch and the naive
// sparse-scan reference, and the engines must produce identical runs with
// dirty tracking on and off under FSYNC, SSYNC and ASYNC schedulers.
#include "src/core/incremental.hpp"

#include <gtest/gtest.h>

#include <random>

#include "src/algorithms/registry.hpp"
#include "src/campaign/campaign.hpp"
#include "src/core/rng.hpp"
#include "src/engine/async_engine.hpp"
#include "src/engine/runner.hpp"
#include "src/engine/sync_engine.hpp"

namespace lumi {
namespace {

bool same_action(const Action& a, const Action& b) {
  return a.new_color == b.new_color && a.move == b.move && a.rule_index == b.rule_index &&
         a.sym == b.sym;
}

/// Asserts tracker == compiled-from-scratch == naive for every robot.
void expect_tracker_matches_references(const Algorithm& alg, const CompiledAlgorithm& compiled,
                                       const Configuration& config, DirtyTracker& tracker,
                                       const char* context) {
  tracker.refresh();
  const std::vector<std::vector<Action>> fresh = all_enabled_actions(compiled, config);
  ASSERT_EQ(tracker.all_actions().size(), fresh.size()) << context;
  for (int r = 0; r < config.num_robots(); ++r) {
    const std::vector<Action>& cached = tracker.actions(r);
    const std::vector<Action>& want = fresh[static_cast<std::size_t>(r)];
    ASSERT_EQ(cached.size(), want.size()) << context << " robot " << r;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_TRUE(same_action(cached[i], want[i])) << context << " robot " << r << " action " << i;
    }
    const std::vector<Action> naive =
        naive_enabled_actions(alg, take_snapshot(config, r, alg.phi));
    ASSERT_EQ(cached.size(), naive.size()) << context << " robot " << r;
    for (std::size_t i = 0; i < naive.size(); ++i) {
      ASSERT_TRUE(same_action(cached[i], naive[i]))
          << context << " (vs naive) robot " << r << " action " << i;
    }
    EXPECT_EQ(tracker.enabled(r), !naive.empty()) << context << " robot " << r;
  }
}

TEST(DirtyTracker, MatchesCompiledAndNaiveOverRandomizedSyncRuns) {
  std::mt19937 rng(20260729);
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    const Algorithm alg = e.make();
    const std::shared_ptr<const CompiledAlgorithm> compiled = CompiledAlgorithm::get(alg);
    const Grid grid(alg.min_rows + 2, alg.min_cols + 2);
    for (int run = 0; run < 8; ++run) {
      Configuration config = alg.initial_configuration(grid);
      DirtyTracker tracker(compiled, config);
      for (int instant = 0; instant < 60; ++instant) {
        const std::string context =
            e.section + " run " + std::to_string(run) + " instant " + std::to_string(instant);
        expect_tracker_matches_references(alg, *compiled, config, tracker, context.c_str());
        // SSYNC-style adversary: activate a random nonempty subset of the
        // enabled robots with a random enabled behavior each, so successive
        // instants dirty arbitrary neighborhood combinations.
        std::vector<RobotAction> selected;
        for (int r = 0; r < config.num_robots(); ++r) {
          const std::vector<Action>& actions = tracker.actions(r);
          if (actions.empty()) continue;
          if (bounded_draw(rng, 2) == 0 && !selected.empty()) continue;
          const std::uint32_t pick = bounded_draw(rng, static_cast<std::uint32_t>(actions.size()));
          selected.push_back(RobotAction{r, actions[pick]});
        }
        if (selected.empty()) break;  // terminal configuration
        apply_sync_step(config, selected);
      }
    }
  }
}

TEST(DirtyTracker, ReusesVerdictsWhenNothingChanged) {
  const Algorithm alg = algorithms::entry("4.3.1").make();
  Configuration config = alg.initial_configuration(Grid(4, 5));
  DirtyTracker tracker(CompiledAlgorithm::get(alg), config);
  const long base = tracker.counters().recomputed;
  EXPECT_EQ(base, config.num_robots());  // initial full compute
  tracker.refresh();
  tracker.refresh();
  EXPECT_EQ(tracker.counters().recomputed, base);  // clean refreshes recompute nothing
  EXPECT_EQ(tracker.counters().reused, 2L * config.num_robots());
}

TEST(DirtyTracker, RecomputesOnlyNeighborhoodsCoveringTheChange) {
  // Two robots far apart on a long grid: recoloring one must not re-match
  // the other.
  const Algorithm alg = algorithms::entry("4.3.1").make();
  ASSERT_EQ(alg.phi, 2);
  Configuration config = make_configuration(
      Grid(4, 12), {{{0, 0}, {Color::G}}, {{0, 11}, {Color::W}}});
  DirtyTracker tracker(CompiledAlgorithm::get(alg), config);
  const long base = tracker.counters().recomputed;
  config.set_color(0, Color::B);
  tracker.refresh();
  EXPECT_EQ(tracker.counters().recomputed, base + 1);  // only robot 0 re-matched
}

TEST(DirtyTracker, JournalIsOptInAndDrained) {
  const Algorithm alg = algorithms::entry("4.3.1").make();
  Configuration config = alg.initial_configuration(Grid(4, 5));
  EXPECT_FALSE(config.journal_enabled());
  config.set_color(0, Color::B);
  EXPECT_TRUE(config.journal().empty());  // disabled: nothing recorded
  {
    DirtyTracker tracker(CompiledAlgorithm::get(alg), config);
    EXPECT_TRUE(config.journal_enabled());
    const Vec before = config.robot(0).pos;
    Vec to = before;
    for (Dir d : kAllDirs) {
      if (config.grid().contains(before + dir_vec(d))) {
        to = before + dir_vec(d);
        break;
      }
    }
    ASSERT_FALSE(to == before);
    config.move_robot(0, to);
    EXPECT_EQ(config.journal().size(), 2u);  // from + to
    tracker.refresh();
    EXPECT_TRUE(config.journal().empty());  // refresh drains the journal
  }
  EXPECT_FALSE(config.journal_enabled());  // detach restores the default
}

TEST(IncrementalEngines, AsyncEngineIdenticalWithTrackingOnAndOff) {
  std::mt19937 rng(7);
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    const Algorithm alg = e.make();
    const Grid grid(alg.min_rows + 1, alg.min_cols + 1);
    AsyncEngine inc(alg, alg.initial_configuration(grid), /*incremental=*/true);
    AsyncEngine ref(alg, alg.initial_configuration(grid), /*incremental=*/false);
    for (int event = 0; event < 240; ++event) {
      const std::vector<int> effective = inc.effective_robots();
      ASSERT_EQ(effective, ref.effective_robots()) << e.section << " event " << event;
      ASSERT_EQ(inc.terminal(), ref.terminal()) << e.section << " event " << event;
      if (effective.empty()) break;
      const int robot =
          effective[bounded_draw(rng, static_cast<std::uint32_t>(effective.size()))];
      if (inc.phase(robot) == Phase::Idle) {
        const std::vector<Action> choices = inc.look_choices(robot);
        const std::vector<Action> ref_choices = ref.look_choices(robot);
        ASSERT_EQ(choices.size(), ref_choices.size()) << e.section << " event " << event;
        for (std::size_t i = 0; i < choices.size(); ++i) {
          ASSERT_TRUE(same_action(choices[i], ref_choices[i]))
              << e.section << " event " << event << " choice " << i;
        }
        if (choices.empty()) continue;
        const std::uint32_t pick = bounded_draw(rng, static_cast<std::uint32_t>(choices.size()));
        inc.activate(robot, choices[pick]);
        ref.activate(robot, ref_choices[pick]);
      } else {
        inc.activate(robot);
        ref.activate(robot);
      }
      ASSERT_TRUE(inc.config().same_placement(ref.config()))
          << e.section << " diverged at event " << event;
    }
  }
}

TEST(IncrementalEngines, RunnersIdenticalWithTrackingOnAndOff) {
  // End-to-end: every scheduler family over representative sections; the
  // semantic result fields must be bit-identical (the reuse counters are the
  // only permitted difference).
  using campaign::Cell;
  using campaign::SchedKind;
  for (const std::string& section : {std::string("4.2.1"), std::string("4.3.1"),
                                     std::string("4.3.5")}) {
    const Algorithm alg = algorithms::entry(section).make();
    for (campaign::SchedKind kind : campaign::kAllSchedKinds) {
      if (!campaign::compatible(alg.model, kind)) continue;
      for (unsigned seed : {1u, 2u, 3u}) {
        const Cell cell{section, alg.min_rows + 1, alg.min_cols + 2, kind};
        RunOptions on;
        RunOptions off;
        off.incremental = false;
        const RunResult a = campaign::run_cell(cell, seed, on);
        const RunResult b = campaign::run_cell(cell, seed, off);
        const std::string context =
            section + " " + campaign::to_string(kind) + " seed " + std::to_string(seed);
        EXPECT_EQ(a.terminated, b.terminated) << context;
        EXPECT_EQ(a.explored_all, b.explored_all) << context;
        EXPECT_EQ(a.failure, b.failure) << context;
        EXPECT_EQ(a.visited, b.visited) << context;
        EXPECT_EQ(a.stats.instants, b.stats.instants) << context;
        EXPECT_EQ(a.stats.activations, b.stats.activations) << context;
        EXPECT_EQ(a.stats.moves, b.stats.moves) << context;
        EXPECT_EQ(a.stats.color_changes, b.stats.color_changes) << context;
        EXPECT_GT(a.stats.match_reused + a.stats.match_recomputed, 0) << context;
        EXPECT_EQ(b.stats.match_reused, 0) << context;
        EXPECT_EQ(b.stats.match_recomputed, 0) << context;
      }
    }
  }
}

TEST(IncrementalEngines, CampaignSummariesIdenticalWithTrackingOnAndOff) {
  campaign::Matrix m;
  m.sections = {"4.2.1", "4.3.1", "4.3.5"};
  m.rows = {4, 6, 2};
  m.cols = {4, 6, 2};
  m.schedulers.assign(std::begin(campaign::kAllSchedKinds), std::end(campaign::kAllSchedKinds));
  m.seeds = {7, 8};
  campaign::Expansion on = campaign::expand(m);
  campaign::Expansion off = on;
  off.options.incremental = false;
  const campaign::CampaignSummary a = campaign::run_campaign(on, 2);
  const campaign::CampaignSummary b = campaign::run_campaign(off, 2);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_TRUE(a.cells[i].cell == b.cells[i].cell);
    EXPECT_EQ(a.cells[i].acc, b.cells[i].acc) << to_string(a.cells[i].cell);
  }
  EXPECT_EQ(a.total, b.total);
}

}  // namespace
}  // namespace lumi
