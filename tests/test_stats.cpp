#include "src/analysis/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/algorithms/algorithms.hpp"
#include "src/campaign/aggregate.hpp"
#include "src/engine/runner.hpp"

namespace lumi {
namespace {

TEST(Stats, AggregateBasics) {
  const Aggregate a = aggregate({3, 1, 2});
  EXPECT_EQ(a.count, 3);
  EXPECT_EQ(a.min, 1);
  EXPECT_EQ(a.max, 3);
  EXPECT_DOUBLE_EQ(a.mean, 2.0);
  EXPECT_NE(a.to_string().find("n=3"), std::string::npos);
}

TEST(Stats, AggregateEmpty) {
  const Aggregate a = aggregate({});
  EXPECT_EQ(a.count, 0);
  EXPECT_EQ(a.min, 0);
  EXPECT_EQ(a.max, 0);
}

TEST(Stats, LinearSlopeExact) {
  EXPECT_DOUBLE_EQ(linear_slope({1, 2, 3, 4}, {2, 4, 6, 8}), 2.0);
  EXPECT_DOUBLE_EQ(linear_slope({0, 1}, {5, 5}), 0.0);
}

TEST(Stats, LinearSlopeErrors) {
  EXPECT_THROW(linear_slope({1}, {1}), std::invalid_argument);
  EXPECT_THROW(linear_slope({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(linear_slope({2, 2}, {1, 3}), std::invalid_argument);
}

// --- LongStat edge cases -----------------------------------------------------
//
// Deterministic-scheduler campaign cells aggregate exactly one run (n = 1),
// and empty cells exist transiently in fresh checkpoints; neither may ever
// render as NaN or trip UB in the report writers or the adaptive policy.

TEST(LongStatEdgeCases, EmptyStreamIsAllZeroes) {
  const campaign::LongStat s;
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_ci95_halfwidth(), 0.0);
  for (double q : {0.0, 0.5, 0.99, 1.0}) EXPECT_EQ(s.percentile(q), 0);
}

TEST(LongStatCi95, MatchesHandComputedIntervalAndIsExactMergeable) {
  // Samples {10, 14}: mean 12, unbiased sample variance 8, half-width
  // 1.96 * sqrt(8 / 2) = 3.92.
  campaign::LongStat s;
  s.add(10);
  s.add(14);
  EXPECT_NEAR(s.mean_ci95_halfwidth(), 3.92, 1e-12);
  // n <= 1 estimates no spread.
  campaign::LongStat one;
  one.add(10);
  EXPECT_DOUBLE_EQ(one.mean_ci95_halfwidth(), 0.0);
  // Merged shards answer with the identical interval: the half-width is a
  // pure function of the exact merged (count, sum, sum_squares).
  campaign::LongStat a, b;
  a.add(10);
  b.add(14);
  a.merge(b);
  EXPECT_EQ(a, s);
  EXPECT_DOUBLE_EQ(a.mean_ci95_halfwidth(), s.mean_ci95_halfwidth());
  // Constant streams have a zero-width interval, not rounding noise.
  campaign::LongStat flat;
  for (int i = 0; i < 5; ++i) flat.add(123456789L);
  EXPECT_DOUBLE_EQ(flat.mean_ci95_halfwidth(), 0.0);
}

TEST(LongStatEdgeCases, SingleSampleHasZeroVarianceAndExactPercentiles) {
  for (long sample : {0L, 1L, 7L, 1'000'000'000L, 3'037'000'499L}) {
    campaign::LongStat s;
    s.add(sample);
    // The sum-of-squares formula loses bits for samples past 2^26; a single
    // sample must report exactly zero spread regardless.
    EXPECT_DOUBLE_EQ(s.variance(), 0.0) << sample;
    for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
      EXPECT_EQ(s.percentile(q), sample) << sample << " q=" << q;
    }
  }
}

TEST(LongStatEdgeCases, VarianceIsNeverNegative) {
  // Large near-equal samples make the exact-sums formula cancel
  // catastrophically; the clamp must keep the result at >= 0 (a negative
  // variance breaks every sqrt/threshold consumer).  Samples stay small
  // enough that sum_squares itself cannot overflow.
  campaign::LongStat s;
  s.add(1'700'000'021L);
  s.add(1'700'000'022L);
  s.add(1'700'000'023L);
  EXPECT_GE(s.variance(), 0.0);
  campaign::LongStat pair;
  pair.add(1'000'000'000L);
  pair.add(1'000'000'001L);
  EXPECT_GE(pair.variance(), 0.0);
}

TEST(LongStatEdgeCases, PercentileToleratesHostileQuantiles) {
  // 7 tops its log2 bucket [4, 8) exactly; 9's bucket top (15) clamps to the
  // observed max, so the expected answers are the samples themselves.
  campaign::LongStat s;
  s.add(7);
  s.add(9);
  // Out-of-range and non-finite q degrade to the nearest bound; casting a
  // NaN-derived rank used to be UB.
  EXPECT_EQ(s.percentile(-2.0), 7);
  EXPECT_EQ(s.percentile(2.0), 9);
  EXPECT_EQ(s.percentile(std::numeric_limits<double>::quiet_NaN()), 7);
  EXPECT_EQ(s.percentile(std::numeric_limits<double>::infinity()), 9);
  EXPECT_EQ(s.percentile(-std::numeric_limits<double>::infinity()), 7);
}

TEST(Stats, MoveCountsScaleLinearlyWithArea) {
  // The headline structural claim behind the paper's sweep route: total
  // moves are Theta(m*n).  Fit a line through (area, moves) samples and
  // check the residual structure via the ratio spread.
  std::vector<double> area;
  std::vector<double> moves;
  const Algorithm alg = algorithms::algorithm1();
  for (int n = 4; n <= 12; n += 2) {
    FsyncScheduler sched;
    const RunResult r = run_sync(alg, Grid(n, n + 1), sched);
    ASSERT_TRUE(r.ok());
    area.push_back(static_cast<double>(n * (n + 1)));
    moves.push_back(static_cast<double>(r.stats.moves));
  }
  const double slope = linear_slope(area, moves);
  EXPECT_GT(slope, 1.0);   // at least one move per node
  EXPECT_LT(slope, 4.0);   // bounded constant per node
}

}  // namespace
}  // namespace lumi
