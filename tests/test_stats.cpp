#include "src/analysis/stats.hpp"

#include <gtest/gtest.h>

#include "src/algorithms/algorithms.hpp"
#include "src/engine/runner.hpp"

namespace lumi {
namespace {

TEST(Stats, AggregateBasics) {
  const Aggregate a = aggregate({3, 1, 2});
  EXPECT_EQ(a.count, 3);
  EXPECT_EQ(a.min, 1);
  EXPECT_EQ(a.max, 3);
  EXPECT_DOUBLE_EQ(a.mean, 2.0);
  EXPECT_NE(a.to_string().find("n=3"), std::string::npos);
}

TEST(Stats, AggregateEmpty) {
  const Aggregate a = aggregate({});
  EXPECT_EQ(a.count, 0);
  EXPECT_EQ(a.min, 0);
  EXPECT_EQ(a.max, 0);
}

TEST(Stats, LinearSlopeExact) {
  EXPECT_DOUBLE_EQ(linear_slope({1, 2, 3, 4}, {2, 4, 6, 8}), 2.0);
  EXPECT_DOUBLE_EQ(linear_slope({0, 1}, {5, 5}), 0.0);
}

TEST(Stats, LinearSlopeErrors) {
  EXPECT_THROW(linear_slope({1}, {1}), std::invalid_argument);
  EXPECT_THROW(linear_slope({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(linear_slope({2, 2}, {1, 3}), std::invalid_argument);
}

TEST(Stats, MoveCountsScaleLinearlyWithArea) {
  // The headline structural claim behind the paper's sweep route: total
  // moves are Theta(m*n).  Fit a line through (area, moves) samples and
  // check the residual structure via the ratio spread.
  std::vector<double> area;
  std::vector<double> moves;
  const Algorithm alg = algorithms::algorithm1();
  for (int n = 4; n <= 12; n += 2) {
    FsyncScheduler sched;
    const RunResult r = run_sync(alg, Grid(n, n + 1), sched);
    ASSERT_TRUE(r.ok());
    area.push_back(static_cast<double>(n * (n + 1)));
    moves.push_back(static_cast<double>(r.stats.moves));
  }
  const double slope = linear_slope(area, moves);
  EXPECT_GT(slope, 1.0);   // at least one move per node
  EXPECT_LT(slope, 4.0);   // bounded constant per node
}

}  // namespace
}  // namespace lumi
