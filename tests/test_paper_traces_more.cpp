// Additional pinned configurations: even-m terminal configurations (the
// paper describes these as "similar to the odd case"; here they are spelled
// out and locked), Algorithm 9's eight-step turning sequence, and the
// documented Algorithm 11 terminals of this reproduction.
#include <gtest/gtest.h>

#include "src/algorithms/algorithms.hpp"
#include "src/engine/runner.hpp"

namespace lumi {
namespace {

using enum Color;
using Placements = std::vector<std::pair<Vec, std::vector<Color>>>;

Trace run_trace(const Algorithm& alg, int rows, int cols) {
  const Grid grid(rows, cols);
  RunOptions opts;
  opts.record_trace = true;
  RunResult result;
  if (alg.model == Synchrony::Fsync) {
    FsyncScheduler sched;
    opts.require_unique_actions = true;
    result = run_sync(alg, grid, sched, opts);
  } else {
    AsyncCentralizedScheduler sched;
    result = run_async(alg, grid, sched, opts);
  }
  EXPECT_TRUE(result.ok()) << alg.name << " on " << grid.to_string() << ": " << result.failure;
  return std::move(result.trace);
}

void expect_terminal(const Trace& trace, int rows, int cols, const Placements& placements,
                     const std::string& what) {
  ASSERT_FALSE(trace.empty());
  const Configuration expected = make_configuration(Grid(rows, cols), placements);
  EXPECT_TRUE(trace[trace.size() - 1].config.same_placement(expected))
      << what << ": terminal is " << trace[trace.size() - 1].config.to_string() << ", expected "
      << expected.to_string();
}

void expect_reaches(const Trace& trace, int rows, int cols, const Placements& placements,
                    const std::string& what) {
  const Configuration expected = make_configuration(Grid(rows, cols), placements);
  EXPECT_GE(trace.find_placement(expected), 0)
      << what << ": configuration " << expected.to_string() << " never reached";
}

TEST(PaperTracesMore, Alg2TerminalEvenM) {
  // Even m mirrors the odd case at the east wall: the trailing G fills the
  // southeast corner via R8's mirror image.
  const Trace t = run_trace(algorithms::algorithm2(), 4, 5);
  expect_terminal(t, 4, 5, {{{2, 3}, {G}}, {{3, 3}, {W}}, {{3, 4}, {G}}},
                  "Alg2 even-m terminal");
}

TEST(PaperTracesMore, Alg4TerminalEvenM) {
  // Even m: three robots merge in the southeast corner, {(v_{m-1,n-1},{W,W,B})}.
  const Trace t = run_trace(algorithms::algorithm4(), 4, 5);
  expect_terminal(t, 4, 5, {{{2, 4}, {G}}, {{3, 4}, {W, W, B}}}, "Alg4 even-m terminal");
}

TEST(PaperTracesMore, Alg7TerminalEvenM) {
  const Trace t = run_trace(algorithms::algorithm7(), 4, 5);
  expect_terminal(t, 4, 5, {{{2, 3}, {G}}, {{3, 3}, {B}}, {{3, 4}, {W}}},
                  "Alg7 even-m terminal");
}

TEST(PaperTracesMore, Alg9TurnWestFullSequence) {
  // Fig. 18 on 3x6 (turn from rows 0/1 to rows 1/2):
  // (d) G(0,4) G(1,3) W(1,4) W(1,5); (f) G(0,5) W(1,3) W(1,4) W(1,5);
  // (h) W(1,3) W(1,4) G(1,5) W(2,5)  — the mirror travel form.
  const Trace t = run_trace(algorithms::algorithm9(), 3, 6);
  expect_reaches(t, 3, 6, {{{0, 4}, {G}}, {{1, 3}, {G}}, {{1, 4}, {W}}, {{1, 5}, {W}}},
                 "Fig 18(d)");
  expect_reaches(t, 3, 6, {{{0, 5}, {G}}, {{1, 3}, {W}}, {{1, 4}, {W}}, {{1, 5}, {W}}},
                 "Fig 18(f)");
  expect_reaches(t, 3, 6, {{{1, 3}, {W}}, {{1, 4}, {W}}, {{1, 5}, {G}}, {{2, 5}, {W}}},
                 "Fig 18(h)");
}

TEST(PaperTracesMore, Alg9TerminalEvenM) {
  const Trace t = run_trace(algorithms::algorithm9(), 4, 6);
  expect_terminal(t, 4, 6,
                  {{{2, 3}, {G}}, {{2, 4}, {W}}, {{3, 4}, {W}}, {{3, 5}, {W}}},
                  "Alg9 even-m terminal");
}

TEST(PaperTracesMore, Alg11Terminals) {
  // This reproduction's Algorithm 11 terminals (documented deviation from
  // the paper's, see EXPERIMENTS.md): the wall stall freezes the turn entry
  // with a three-color stack in the final corner.
  const Trace even = run_trace(algorithms::algorithm11(), 4, 6);
  expect_terminal(even, 4, 6, {{{2, 5}, {W}}, {{3, 4}, {W, B}}, {{3, 5}, {G, W, B}}},
                  "Alg11 even-m terminal");
  const Trace odd = run_trace(algorithms::algorithm11(), 5, 6);
  expect_terminal(odd, 5, 6, {{{3, 0}, {W}}, {{4, 0}, {G, W, B}}, {{4, 1}, {W, B}}},
                  "Alg11 odd-m terminal");
}

TEST(PaperTracesMore, Alg6LargeGridFullSweep) {
  // The paper's smallest running example is 3x5; check a taller/wider grid
  // retains the exact paper terminals.
  const Trace t = run_trace(algorithms::algorithm6(), 5, 8);  // odd m
  expect_terminal(t, 5, 8, {{{4, 6}, {G}}, {{4, 7}, {W}}}, "Alg6 odd-m terminal 5x8");
}

TEST(PaperTracesMore, DerivedAlgorithmsShadowTheirBases) {
  // §4.2.3/§4.2.4/§4.2.8: the duplicated-color runs visit nodes in the same
  // instants as their base algorithms.
  struct Pair {
    Algorithm base;
    Algorithm derived;
  };
  const Pair pairs[] = {
      {algorithms::algorithm1(), algorithms::derived423()},
      {algorithms::algorithm2(), algorithms::derived424()},
      {algorithms::algorithm4(), algorithms::derived428()},
  };
  for (const Pair& p : pairs) {
    for (int rows = 2; rows <= 4; ++rows) {
      FsyncScheduler s1, s2;
      RunOptions opts;
      opts.require_unique_actions = true;
      const RunResult rb = run_sync(p.base, Grid(rows, 5), s1, opts);
      const RunResult rd = run_sync(p.derived, Grid(rows, 5), s2, opts);
      ASSERT_TRUE(rb.ok()) << p.base.name;
      ASSERT_TRUE(rd.ok()) << p.derived.name;
      EXPECT_EQ(rb.stats.instants, rd.stats.instants)
          << p.base.name << " vs " << p.derived.name << " on " << rows << "x5";
    }
  }
}

}  // namespace
}  // namespace lumi
