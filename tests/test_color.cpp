#include "src/core/color.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lumi {
namespace {

TEST(Color, LettersRoundTrip) {
  for (int i = 0; i < kMaxColors; ++i) {
    const Color c = static_cast<Color>(i);
    EXPECT_EQ(color_from_letter(color_letter(c)), c);
  }
  EXPECT_THROW(color_from_letter('x'), std::invalid_argument);
}

TEST(ColorMultiset, StartsEmpty) {
  ColorMultiset ms;
  EXPECT_TRUE(ms.empty());
  EXPECT_EQ(ms.size(), 0);
  EXPECT_EQ(ms.count(Color::G), 0);
}

TEST(ColorMultiset, AddRemoveCounts) {
  ColorMultiset ms;
  ms.add(Color::G);
  ms.add(Color::G);
  ms.add(Color::W);
  EXPECT_EQ(ms.size(), 3);
  EXPECT_EQ(ms.count(Color::G), 2);
  EXPECT_EQ(ms.count(Color::W), 1);
  EXPECT_EQ(ms.count(Color::B), 0);
  ms.remove(Color::G);
  EXPECT_EQ(ms.count(Color::G), 1);
  EXPECT_EQ(ms.size(), 2);
}

TEST(ColorMultiset, RemoveMissingThrows) {
  ColorMultiset ms;
  EXPECT_THROW(ms.remove(Color::B), std::logic_error);
}

TEST(ColorMultiset, OverflowThrows) {
  ColorMultiset ms;
  for (int i = 0; i < kMaxRobotsPerNode; ++i) ms.add(Color::W);
  EXPECT_THROW(ms.add(Color::W), std::overflow_error);
}

TEST(ColorMultiset, EqualityIsOrderInsensitive) {
  ColorMultiset a{Color::G, Color::W};
  ColorMultiset b{Color::W, Color::G};
  EXPECT_EQ(a, b);
  ColorMultiset c{Color::W, Color::W};
  EXPECT_NE(a, c);
}

TEST(ColorMultiset, InitializerList) {
  ColorMultiset ms{Color::W, Color::B, Color::W};
  EXPECT_EQ(ms.count(Color::W), 2);
  EXPECT_EQ(ms.count(Color::B), 1);
}

TEST(ColorMultiset, ToStringSortsByPalette) {
  ColorMultiset ms{Color::W, Color::G, Color::B};
  EXPECT_EQ(ms.to_string(), "{G,W,B}");
  EXPECT_EQ(ColorMultiset{}.to_string(), "{}");
}

}  // namespace
}  // namespace lumi
