#include "src/analysis/verifier.hpp"

#include <gtest/gtest.h>

#include "src/algorithms/algorithms.hpp"

namespace lumi {
namespace {

using enum Color;

TEST(Verifier, ReportsCleanSweep) {
  SweepOptions opts;
  opts.max_rows = 4;
  opts.max_cols = 5;
  const SweepReport report = verify_sweep(algorithms::algorithm1(), opts);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.runs, 3 * 3);  // rows 2..4 x cols 3..5, FSYNC only
  EXPECT_GT(report.total_moves, 0);
  EXPECT_GT(report.total_instants, 0);
  EXPECT_NE(report.to_string().find("0 failures"), std::string::npos);
}

TEST(Verifier, DetectsNonExploringAlgorithm) {
  // A rule set that walks one robot east and stops: terminates without
  // exploring.
  Algorithm lazy;
  lazy.name = "lazy";
  lazy.model = Synchrony::Fsync;
  lazy.phi = 1;
  lazy.num_colors = 1;
  lazy.chirality = Chirality::Common;
  lazy.min_rows = 2;
  lazy.min_cols = 3;
  lazy.initial_robots = {{{0, 0}, G}, {{0, 1}, G}};
  lazy.rules.push_back(RuleBuilder("R1", G)
                           .cell("W", {G})
                           .cell("E", CellPattern::empty())
                           .moves(Dir::East)
                           .build());
  lazy.validate();

  SweepOptions opts;
  opts.max_rows = 3;
  opts.max_cols = 4;
  const SweepReport report = verify_sweep(lazy, opts);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].reason.find("visiting"), std::string::npos);
}

TEST(Verifier, FsyncUniquenessCheckFires) {
  // Symmetric initial view: the single robot can move in four directions.
  Algorithm wander;
  wander.name = "wander";
  wander.model = Synchrony::Fsync;
  wander.phi = 1;
  wander.num_colors = 1;
  wander.chirality = Chirality::Common;
  wander.min_rows = 3;
  wander.min_cols = 3;
  wander.initial_robots = {{{1, 1}, G}};
  wander.rules.push_back(
      RuleBuilder("R1", G).cell("E", CellPattern::empty()).moves(Dir::East).build());
  wander.validate();

  SweepOptions opts;
  opts.min_rows = 3;
  opts.max_rows = 3;
  opts.min_cols = 3;
  opts.max_cols = 3;
  const SweepReport report = verify_sweep(wander, opts);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].reason.find("multiple distinct"), std::string::npos);
}

TEST(Verifier, DefaultSweepMatchesModel) {
  const SweepOptions fsync = default_sweep_for(algorithms::algorithm1());
  EXPECT_TRUE(fsync.run_fsync);
  EXPECT_FALSE(fsync.run_ssync);
  EXPECT_FALSE(fsync.run_async);

  const SweepOptions async_opts = default_sweep_for(algorithms::algorithm6());
  EXPECT_TRUE(async_opts.run_ssync);
  EXPECT_TRUE(async_opts.run_async);

  const SweepOptions ssync_opts = default_sweep_for(algorithms::algorithm11());
  EXPECT_TRUE(ssync_opts.run_ssync);
  EXPECT_FALSE(ssync_opts.run_async);
}

TEST(Verifier, SsyncAndAsyncFamiliesRun) {
  SweepOptions opts;
  opts.max_rows = 3;
  opts.max_cols = 4;
  opts.seeds = 2;
  opts.run_fsync = false;
  opts.run_ssync = true;
  opts.run_async = true;
  const SweepReport report = verify_sweep(algorithms::algorithm6(), opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
  // rows {2,3} x cols {3,4} x (2 ssync seeds + round-robin + 2*2 async seeds
  // + centralized) = 4 * 8 runs.
  EXPECT_EQ(report.runs, 4 * 8);
}

}  // namespace
}  // namespace lumi
