#include "src/dsl/dsl.hpp"

#include <gtest/gtest.h>

#include "src/algorithms/algorithms.hpp"
#include "src/algorithms/registry.hpp"
#include "src/analysis/verifier.hpp"

namespace lumi {
namespace {

TEST(Dsl, RoundTripsEveryBuiltinAlgorithm) {
  Algorithm (*factories[])() = {
      algorithms::algorithm1,  algorithms::algorithm2,  algorithms::algorithm3,
      algorithms::algorithm4,  algorithms::algorithm5,  algorithms::algorithm6,
      algorithms::algorithm7,  algorithms::algorithm8,  algorithms::algorithm9,
      algorithms::algorithm10, algorithms::algorithm11, algorithms::derived423,
      algorithms::derived424,  algorithms::derived428,
  };
  for (auto factory : factories) {
    const Algorithm original = factory();
    const std::string text = dsl::serialize(original);
    const Algorithm parsed = dsl::parse(text);
    EXPECT_EQ(parsed.name, original.name);
    EXPECT_EQ(parsed.phi, original.phi);
    EXPECT_EQ(parsed.num_colors, original.num_colors);
    EXPECT_EQ(parsed.chirality, original.chirality);
    EXPECT_EQ(parsed.model, original.model);
    EXPECT_EQ(parsed.initial_robots, original.initial_robots);
    ASSERT_EQ(parsed.rules.size(), original.rules.size()) << original.name;
    for (std::size_t i = 0; i < parsed.rules.size(); ++i) {
      const Rule& a = parsed.rules[i];
      const Rule& b = original.rules[i];
      EXPECT_EQ(a.label, b.label);
      EXPECT_EQ(a.self, b.self);
      EXPECT_EQ(a.new_color, b.new_color);
      EXPECT_EQ(a.move, b.move);
      // Same effective pattern on every kernel cell.
      for (Vec o : ViewKernel::get(original.phi).offsets()) {
        EXPECT_EQ(a.pattern_at(o), b.pattern_at(o))
            << original.name << "/" << b.label << " cell " << offset_name(o);
      }
    }
    // Double round-trip is a fixed point.
    EXPECT_EQ(dsl::serialize(parsed), text);
  }
}

TEST(Dsl, ParsedAlgorithmStillExplores) {
  const Algorithm parsed = dsl::parse(dsl::serialize(algorithms::algorithm1()));
  SweepOptions opts;
  opts.max_rows = 4;
  opts.max_cols = 5;
  EXPECT_TRUE(verify_sweep(parsed, opts).ok());
}

TEST(Dsl, ParsesHandWrittenText) {
  const std::string text = R"(# a tiny two-robot pair
algorithm doc-example
model fsync
phi 1
colors 2
chirality common
min-grid 2 3
init (0,0)=G (0,1)=W
rule R1 self=W W={G} E=empty -> W,E
rule R2 self=G E={W} -> G,E
)";
  const Algorithm alg = dsl::parse(text);
  EXPECT_EQ(alg.name, "doc-example");
  EXPECT_EQ(alg.rules.size(), 2u);
  EXPECT_EQ(alg.rules[0].self, Color::W);
  EXPECT_EQ(alg.rules[0].pattern_at({0, -1}), CellPattern::exactly(ColorMultiset{Color::G}));
  EXPECT_EQ(alg.rules[0].pattern_at({0, 1}), CellPattern::empty());
  EXPECT_EQ(alg.rules[0].pattern_at({-1, 0}), CellPattern::gray());
  EXPECT_EQ(alg.rules[1].move, Dir::East);
}

TEST(Dsl, ErrorsCarryLineNumbers) {
  EXPECT_THROW(dsl::parse("algorithm x\nbogus declaration\n"), std::invalid_argument);
  try {
    dsl::parse("algorithm x\nmodel fsync\nrule R1 self=Q -> G,E\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(Dsl, RejectsMalformedRules) {
  const std::string prefix = "algorithm x\nmodel fsync\nphi 1\ncolors 2\nchirality common\n"
                             "min-grid 2 3\ninit (0,0)=G\n";
  EXPECT_THROW(dsl::parse(prefix + "rule R1 self=G -> G\n"), std::invalid_argument);
  EXPECT_THROW(dsl::parse(prefix + "rule R1 self=G XX={G} -> G,E\n"), std::invalid_argument);
  EXPECT_THROW(dsl::parse(prefix + "rule R1 self=G E={} -> G,E\n"), std::invalid_argument);
  EXPECT_THROW(dsl::parse(prefix + "rule R1 self=G E={G} -> G,Q\n"), std::invalid_argument);
  EXPECT_THROW(dsl::parse(prefix + "rule R1 self=G C=empty -> G,Idle\n"),
               std::invalid_argument);
}

TEST(Dsl, MissingNameRejected) {
  EXPECT_THROW(dsl::parse("model fsync\n"), std::invalid_argument);
}

TEST(Dsl, RegistryRoundTripIsIdentity) {
  // serialize -> parse -> serialize is a fixed point for every Table 1 entry,
  // through the registry (not the raw factory list) so a new row is covered
  // the day it is registered.
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    const Algorithm original = e.make();
    const std::string text = dsl::serialize(original);
    const Algorithm parsed = dsl::parse(text);
    EXPECT_EQ(dsl::serialize(parsed), text) << e.section;
  }
}

TEST(Dsl, AcceptsCrlfAndTrailingWhitespace) {
  const std::string unix_text = dsl::serialize(algorithms::algorithm1());
  // Re-author the same file with CRLF endings and trailing spaces/tabs.
  std::string dirty;
  for (char c : unix_text) {
    if (c == '\n') {
      dirty += " \t\r\n";
    } else {
      dirty += c;
    }
  }
  const Algorithm parsed = dsl::parse(dirty);
  EXPECT_EQ(dsl::serialize(parsed), unix_text);
}

TEST(Dsl, MalformedIntegersQuoteTheToken) {
  const auto expect_quoted = [](const std::string& text, const std::string& token) {
    try {
      dsl::parse(text);
      FAIL() << "expected parse error for token " << token;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("'" + token + "'"), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find("line "), std::string::npos) << e.what();
    }
  };
  expect_quoted("algorithm x\nphi two\n", "two");
  expect_quoted("algorithm x\nphi 2x\n", "2x");    // stoi alone would accept this
  expect_quoted("algorithm x\ncolors many\n", "many");
  expect_quoted("algorithm x\nmin-grid 2 wide\n", "wide");
}

TEST(Dsl, ValidateOffLoadsDefectiveTables) {
  // A movement into an unpinned cell fails Algorithm::validate(); with
  // validation off the table still loads — that is what lets the analyzer's
  // defect fixtures be analyzed at all.
  const std::string text = "algorithm broken\nphi 1\ncolors 1\ninit (0,0)=G\n"
                           "rule R1 self=G -> G,N\n";
  EXPECT_THROW(dsl::parse(text), std::invalid_argument);
  const Algorithm alg = dsl::parse(text, dsl::ParseOptions{.validate = false});
  EXPECT_EQ(alg.rules.size(), 1u);
}

TEST(Dsl, StrictModeRunsTheAnalyzer) {
  // Well-formed under validate(), but semantically conflicting: two rules
  // enabled on the same view with different actions.  Plain parse accepts;
  // strict parse rejects with the analyzer's findings.
  const std::string conflicting =
      "algorithm strict-conflict\nphi 1\ncolors 1\nmin-grid 3 3\ninit (1,0)=G\n"
      "rule R1 self=G N=empty E=empty S=empty W=wall -> G,N\n"
      "rule R2 self=G N=empty E=empty -> G,E\n";
  EXPECT_NO_THROW(dsl::parse(conflicting));
  try {
    dsl::parse(conflicting, dsl::ParseOptions{.strict = true});
    FAIL() << "expected strict parse to reject the conflicting table";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("conflict"), std::string::npos) << e.what();
  }
  // Every registry algorithm survives strict parsing of its own serialization.
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    EXPECT_NO_THROW(
        dsl::parse(dsl::serialize(e.make()), dsl::ParseOptions{.strict = true}))
        << e.section;
  }
}

}  // namespace
}  // namespace lumi
