#include "src/dsl/dsl.hpp"

#include <gtest/gtest.h>

#include "src/algorithms/algorithms.hpp"
#include "src/analysis/verifier.hpp"

namespace lumi {
namespace {

TEST(Dsl, RoundTripsEveryBuiltinAlgorithm) {
  Algorithm (*factories[])() = {
      algorithms::algorithm1,  algorithms::algorithm2,  algorithms::algorithm3,
      algorithms::algorithm4,  algorithms::algorithm5,  algorithms::algorithm6,
      algorithms::algorithm7,  algorithms::algorithm8,  algorithms::algorithm9,
      algorithms::algorithm10, algorithms::algorithm11, algorithms::derived423,
      algorithms::derived424,  algorithms::derived428,
  };
  for (auto factory : factories) {
    const Algorithm original = factory();
    const std::string text = dsl::serialize(original);
    const Algorithm parsed = dsl::parse(text);
    EXPECT_EQ(parsed.name, original.name);
    EXPECT_EQ(parsed.phi, original.phi);
    EXPECT_EQ(parsed.num_colors, original.num_colors);
    EXPECT_EQ(parsed.chirality, original.chirality);
    EXPECT_EQ(parsed.model, original.model);
    EXPECT_EQ(parsed.initial_robots, original.initial_robots);
    ASSERT_EQ(parsed.rules.size(), original.rules.size()) << original.name;
    for (std::size_t i = 0; i < parsed.rules.size(); ++i) {
      const Rule& a = parsed.rules[i];
      const Rule& b = original.rules[i];
      EXPECT_EQ(a.label, b.label);
      EXPECT_EQ(a.self, b.self);
      EXPECT_EQ(a.new_color, b.new_color);
      EXPECT_EQ(a.move, b.move);
      // Same effective pattern on every kernel cell.
      for (Vec o : ViewKernel::get(original.phi).offsets()) {
        EXPECT_EQ(a.pattern_at(o), b.pattern_at(o))
            << original.name << "/" << b.label << " cell " << offset_name(o);
      }
    }
    // Double round-trip is a fixed point.
    EXPECT_EQ(dsl::serialize(parsed), text);
  }
}

TEST(Dsl, ParsedAlgorithmStillExplores) {
  const Algorithm parsed = dsl::parse(dsl::serialize(algorithms::algorithm1()));
  SweepOptions opts;
  opts.max_rows = 4;
  opts.max_cols = 5;
  EXPECT_TRUE(verify_sweep(parsed, opts).ok());
}

TEST(Dsl, ParsesHandWrittenText) {
  const std::string text = R"(# a tiny two-robot pair
algorithm doc-example
model fsync
phi 1
colors 2
chirality common
min-grid 2 3
init (0,0)=G (0,1)=W
rule R1 self=W W={G} E=empty -> W,E
rule R2 self=G E={W} -> G,E
)";
  const Algorithm alg = dsl::parse(text);
  EXPECT_EQ(alg.name, "doc-example");
  EXPECT_EQ(alg.rules.size(), 2u);
  EXPECT_EQ(alg.rules[0].self, Color::W);
  EXPECT_EQ(alg.rules[0].pattern_at({0, -1}), CellPattern::exactly(ColorMultiset{Color::G}));
  EXPECT_EQ(alg.rules[0].pattern_at({0, 1}), CellPattern::empty());
  EXPECT_EQ(alg.rules[0].pattern_at({-1, 0}), CellPattern::gray());
  EXPECT_EQ(alg.rules[1].move, Dir::East);
}

TEST(Dsl, ErrorsCarryLineNumbers) {
  EXPECT_THROW(dsl::parse("algorithm x\nbogus declaration\n"), std::invalid_argument);
  try {
    dsl::parse("algorithm x\nmodel fsync\nrule R1 self=Q -> G,E\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(Dsl, RejectsMalformedRules) {
  const std::string prefix = "algorithm x\nmodel fsync\nphi 1\ncolors 2\nchirality common\n"
                             "min-grid 2 3\ninit (0,0)=G\n";
  EXPECT_THROW(dsl::parse(prefix + "rule R1 self=G -> G\n"), std::invalid_argument);
  EXPECT_THROW(dsl::parse(prefix + "rule R1 self=G XX={G} -> G,E\n"), std::invalid_argument);
  EXPECT_THROW(dsl::parse(prefix + "rule R1 self=G E={} -> G,E\n"), std::invalid_argument);
  EXPECT_THROW(dsl::parse(prefix + "rule R1 self=G E={G} -> G,Q\n"), std::invalid_argument);
  EXPECT_THROW(dsl::parse(prefix + "rule R1 self=G C=empty -> G,Idle\n"),
               std::invalid_argument);
}

TEST(Dsl, MissingNameRejected) {
  EXPECT_THROW(dsl::parse("model fsync\n"), std::invalid_argument);
}

}  // namespace
}  // namespace lumi
