#include <gtest/gtest.h>

#include "src/algorithms/algorithms.hpp"
#include "src/engine/runner.hpp"

namespace lumi {
namespace {

TEST(FsyncScheduler, SelectsEveryEnabledRobot) {
  const Algorithm alg = algorithms::algorithm1();
  const Grid grid(2, 4);
  const Configuration c = alg.initial_configuration(grid);
  const auto enabled = all_enabled_actions(alg, c);
  FsyncScheduler sched;
  const auto selected = sched.select(c, enabled);
  EXPECT_EQ(selected.size(), 2u);
}

TEST(SsyncRandomScheduler, SelectsNonemptySubsetOfEnabled) {
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(2, 4);
  const Configuration c = alg.initial_configuration(grid);
  const auto enabled = all_enabled_actions(alg, c);
  SsyncRandomScheduler sched(7);
  for (int i = 0; i < 20; ++i) {
    const auto selected = sched.select(c, enabled);
    ASSERT_FALSE(selected.empty());
    for (const RobotAction& ra : selected) {
      EXPECT_FALSE(enabled[static_cast<std::size_t>(ra.robot)].empty());
    }
  }
}

TEST(SsyncRoundRobin, RotatesThroughRobots) {
  const Algorithm alg = algorithms::algorithm1();
  const Grid grid(2, 4);
  const Configuration c = alg.initial_configuration(grid);
  const auto enabled = all_enabled_actions(alg, c);
  SsyncRoundRobinScheduler sched;
  const auto first = sched.select(c, enabled);
  const auto second = sched.select(c, enabled);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(first[0].robot, second[0].robot);
}

TEST(AsyncCentralized, FinishesStartedCyclesFirst) {
  const Algorithm alg = algorithms::algorithm10();
  const Grid grid(2, 4);
  AsyncEngine engine(alg, alg.initial_configuration(grid));
  AsyncCentralizedScheduler sched;
  const auto effective = engine.effective_robots();
  ASSERT_FALSE(effective.empty());
  const int first = sched.pick_robot(engine, effective);
  engine.activate(first, engine.look_choices(first).front());
  // With robot `first` mid-cycle, the scheduler must keep picking it.
  const auto effective2 = engine.effective_robots();
  EXPECT_EQ(sched.pick_robot(engine, effective2), first);
}

TEST(AsyncSchedulers, RunnersProduceDeterministicResultsPerSeed) {
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(3, 4);
  RunOptions opts;
  AsyncRandomScheduler a(42), b(42);
  const RunResult ra = run_async(alg, grid, a, opts);
  const RunResult rb = run_async(alg, grid, b, opts);
  EXPECT_EQ(ra.stats.instants, rb.stats.instants);
  EXPECT_EQ(ra.stats.moves, rb.stats.moves);
  EXPECT_TRUE(ra.ok());
}

}  // namespace
}  // namespace lumi
