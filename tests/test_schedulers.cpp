#include <gtest/gtest.h>

#include "src/algorithms/algorithms.hpp"
#include "src/campaign/campaign.hpp"
#include "src/core/rng.hpp"
#include "src/engine/runner.hpp"

namespace lumi {
namespace {

TEST(FsyncScheduler, SelectsEveryEnabledRobot) {
  const Algorithm alg = algorithms::algorithm1();
  const Grid grid(2, 4);
  const Configuration c = alg.initial_configuration(grid);
  const auto enabled = all_enabled_actions(alg, c);
  FsyncScheduler sched;
  const auto selected = sched.select(c, enabled);
  EXPECT_EQ(selected.size(), 2u);
}

TEST(SsyncRandomScheduler, SelectsNonemptySubsetOfEnabled) {
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(2, 4);
  const Configuration c = alg.initial_configuration(grid);
  const auto enabled = all_enabled_actions(alg, c);
  SsyncRandomScheduler sched(7);
  for (int i = 0; i < 20; ++i) {
    const auto selected = sched.select(c, enabled);
    ASSERT_FALSE(selected.empty());
    for (const RobotAction& ra : selected) {
      EXPECT_FALSE(enabled[static_cast<std::size_t>(ra.robot)].empty());
    }
  }
}

TEST(SsyncRoundRobin, RotatesThroughRobots) {
  const Algorithm alg = algorithms::algorithm1();
  const Grid grid(2, 4);
  const Configuration c = alg.initial_configuration(grid);
  const auto enabled = all_enabled_actions(alg, c);
  SsyncRoundRobinScheduler sched;
  const auto first = sched.select(c, enabled);
  const auto second = sched.select(c, enabled);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(first[0].robot, second[0].robot);
}

TEST(AsyncCentralized, FinishesStartedCyclesFirst) {
  const Algorithm alg = algorithms::algorithm10();
  const Grid grid(2, 4);
  AsyncEngine engine(alg, alg.initial_configuration(grid));
  AsyncCentralizedScheduler sched;
  const auto effective = engine.effective_robots();
  ASSERT_FALSE(effective.empty());
  const int first = sched.pick_robot(engine, effective);
  engine.activate(first, engine.look_choices(first).front());
  // With robot `first` mid-cycle, the scheduler must keep picking it.
  const auto effective2 = engine.effective_robots();
  EXPECT_EQ(sched.pick_robot(engine, effective2), first);
}

// --- cross-platform determinism ---------------------------------------------
//
// Scheduler randomness goes through the in-repo Lemire bounded draw over
// std::mt19937 (whose output stream the standard pins down exactly), never
// through std::uniform_int_distribution / std::shuffle, whose algorithms
// differ between libstdc++ and libc++.  The golden sequences below therefore
// hold on every compiler and platform; a failure means scheduler decisions —
// and with them campaign reports and checkpoints — stopped being portable.

TEST(PortableRng, BoundedDrawGoldenSequences) {
  std::mt19937 a(42);
  const std::uint32_t want_a[] = {3, 7, 9, 1, 7, 7, 5, 5};
  for (std::uint32_t want : want_a) EXPECT_EQ(bounded_draw(a, 10), want);

  std::mt19937 b(7);
  const std::uint32_t want_b[] = {0, 0, 2, 0, 1, 2, 2, 1};
  for (std::uint32_t want : want_b) EXPECT_EQ(bounded_draw(b, 3), want);

  // n = 1 never consumes entropy-rejection retries and always yields 0.
  std::mt19937 c(1);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(bounded_draw(c, 1), 0u);
}

TEST(PortableRng, BoundedDrawStaysInRange) {
  std::mt19937 rng(2026);
  for (std::uint32_t n : {1u, 2u, 3u, 5u, 7u, 1000u}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(bounded_draw(rng, n), n);
  }
}

TEST(PortableRng, FisherYatesGoldenPermutation) {
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::mt19937 rng(7);
  fisher_yates(v, rng);
  const std::vector<int> want{9, 3, 1, 5, 4, 7, 8, 6, 2, 0};
  EXPECT_EQ(v, want);

  std::vector<int> tiny{1};
  std::mt19937 rng2(7);
  fisher_yates(tiny, rng2);  // size <= 1: no draws, no out-of-range access
  EXPECT_EQ(tiny, std::vector<int>{1});
}

TEST(SsyncRandomScheduler, GoldenDecisionSequence) {
  // 4 robots, one enabled behavior each: the selection is exactly the coin
  // pattern of seed 9 (resampling empty rounds), independent of platform.
  const std::vector<std::vector<Action>> enabled(4, std::vector<Action>{Action{}});
  const Algorithm alg = algorithms::algorithm6();
  const Configuration c = alg.initial_configuration(Grid(2, 4));
  SsyncRandomScheduler sched(9);
  const std::vector<std::vector<int>> want = {{2}, {3}, {2}, {0, 1, 3}};
  for (const std::vector<int>& round : want) {
    const auto selected = sched.select(c, enabled);
    ASSERT_EQ(selected.size(), round.size());
    for (std::size_t i = 0; i < round.size(); ++i) EXPECT_EQ(selected[i].robot, round[i]);
  }
}

TEST(AsyncRandomScheduler, GoldenRobotSequence) {
  const Algorithm alg = algorithms::algorithm6();
  AsyncEngine engine(alg, alg.initial_configuration(Grid(2, 4)));
  AsyncRandomScheduler sched(5);
  const std::vector<int> effective{0, 1, 2, 3, 4};
  const int want[] = {1, 0, 4, 4, 1, 1, 4, 4, 2, 0};
  for (const int w : want) EXPECT_EQ(sched.pick_robot(engine, effective), w);
}

TEST(Schedulers, GoldenEndToEndRunStats) {
  // One pinned run per randomized scheduler family: identical numbers are
  // expected from any compiler/platform building this repo.
  using campaign::Cell;
  using campaign::SchedKind;
  const RunResult ssync = run_cell(Cell{"4.3.1", 4, 5, SchedKind::SsyncRandom}, 42, RunOptions{});
  EXPECT_TRUE(ssync.ok());
  EXPECT_EQ(ssync.stats.instants, 31);
  EXPECT_EQ(ssync.stats.moves, 30);
  EXPECT_EQ(ssync.stats.color_changes, 3);
  const RunResult async =
      run_cell(Cell{"4.3.1", 4, 5, SchedKind::AsyncRandom}, 42, RunOptions{});
  EXPECT_TRUE(async.ok());
  EXPECT_EQ(async.stats.instants, 93);
  EXPECT_EQ(async.stats.moves, 30);
}

TEST(AsyncSchedulers, RunnersProduceDeterministicResultsPerSeed) {
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(3, 4);
  RunOptions opts;
  AsyncRandomScheduler a(42), b(42);
  const RunResult ra = run_async(alg, grid, a, opts);
  const RunResult rb = run_async(alg, grid, b, opts);
  EXPECT_EQ(ra.stats.instants, rb.stats.instants);
  EXPECT_EQ(ra.stats.moves, rb.stats.moves);
  EXPECT_TRUE(ra.ok());
}

}  // namespace
}  // namespace lumi
