// Arena allocator: bump semantics, reset/reuse, pmr container integration.
#include "src/core/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory_resource>
#include <vector>

namespace lumi {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);
  void* a = arena.allocate(24, 8);
  void* b = arena.allocate(1, 1);
  void* c = arena.allocate(16, 16);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 16, 0u);
  EXPECT_EQ(arena.bytes_in_use(), 24u + 1u + 16u);
}

TEST(Arena, ResetRewindsAndReusesTheSameMemory) {
  Arena arena(1024);
  void* first = arena.allocate(64, 8);
  (void)arena.allocate(128, 8);
  const std::size_t chunks = arena.chunk_count();
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.chunk_count(), chunks);  // memory retained, not freed
  void* again = arena.allocate(64, 8);
  EXPECT_EQ(first, again);  // warm chunk rewound to its start
}

TEST(Arena, OversizedAllocationGetsItsOwnChunk) {
  Arena arena(64);
  (void)arena.allocate(16, 8);
  void* big = arena.allocate(1000, 8);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.chunk_count(), 2u);
  // The small chunk still serves small allocations after the spill.
  (void)arena.allocate(16, 8);
  EXPECT_EQ(arena.bytes_in_use(), 16u + 1000u + 16u);
}

TEST(Arena, HighWaterSurvivesReset) {
  Arena arena(4096);
  (void)arena.allocate(300, 8);
  arena.reset();
  (void)arena.allocate(10, 8);
  EXPECT_GE(arena.high_water(), 300u);
  EXPECT_EQ(arena.bytes_in_use(), 10u);
}

TEST(Arena, ReleaseDropsChunks) {
  Arena arena(128);
  (void)arena.allocate(100, 8);
  arena.release();
  EXPECT_EQ(arena.chunk_count(), 0u);
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_NE(arena.allocate(8, 8), nullptr);
}

TEST(Arena, BacksPmrContainers) {
  Arena arena(4096);
  {
    std::pmr::vector<int> v(&arena);
    for (int i = 0; i < 100; ++i) v.push_back(i);
    EXPECT_EQ(v[99], 99);
    EXPECT_GT(arena.bytes_in_use(), 0u);
  }
  // Vector destruction deallocates nothing (no-op); reset reclaims.
  arena.reset();
  std::pmr::vector<std::pmr::vector<int>> nested(&arena);
  nested.emplace_back();  // inner vector inherits the arena via pmr
  nested.back().resize(50, 7);
  EXPECT_EQ(nested.back()[49], 7);
}

TEST(Arena, IsEqualOnlyToItself) {
  Arena a;
  Arena b;
  EXPECT_TRUE(a.is_equal(a));
  EXPECT_FALSE(a.is_equal(b));
  EXPECT_FALSE(a.is_equal(*std::pmr::new_delete_resource()));
}

}  // namespace
}  // namespace lumi
