// Sweep verification of the eight FSYNC Table-1 entries: every grid size in
// range must be fully explored with termination, under the FSYNC scheduler,
// with per-robot action uniqueness (the algorithms are deterministic).
#include <gtest/gtest.h>

#include "src/algorithms/algorithms.hpp"
#include "src/algorithms/registry.hpp"
#include "src/analysis/verifier.hpp"

namespace lumi {
namespace {

class FsyncAlgorithmTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FsyncAlgorithmTest, SweepExploresAndTerminates) {
  const algorithms::TableEntry& e = algorithms::entry(GetParam());
  const Algorithm alg = e.make();
  EXPECT_EQ(alg.num_robots(), e.upper_bound);
  EXPECT_EQ(alg.phi, e.phi);
  EXPECT_EQ(alg.num_colors, e.num_colors);
  EXPECT_EQ(alg.chirality, e.chirality);

  SweepOptions opts;
  opts.max_rows = 8;
  opts.max_cols = 9;
  opts.run_fsync = true;
  const SweepReport report = verify_sweep(alg, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(Table1Fsync, FsyncAlgorithmTest,
                         ::testing::Values("4.2.1", "4.2.2", "4.2.3", "4.2.4", "4.2.5",
                                           "4.2.6", "4.2.7", "4.2.8"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return "sec" + name;
                         });

TEST(FsyncAlgorithms, MoveCountGrowsLinearlyInArea) {
  // The sweep route visits every node a bounded number of times, so total
  // moves must be Theta(m*n); sanity-check the ratio stays bounded.
  const Algorithm alg = algorithms::algorithm1();
  for (int rows = 3; rows <= 8; ++rows) {
    const Grid grid(rows, rows + 1);
    FsyncScheduler sched;
    const RunResult r = run_sync(alg, grid, sched);
    ASSERT_TRUE(r.ok());
    const double ratio =
        static_cast<double>(r.stats.moves) / static_cast<double>(grid.num_nodes());
    EXPECT_LT(ratio, 4.0) << grid.to_string();
    EXPECT_GT(ratio, 0.5) << grid.to_string();
  }
}

}  // namespace
}  // namespace lumi
