// Contract tests for Algorithm::validate and the RuleBuilder: the static
// checks that keep hand-written rule sets honest.
#include <gtest/gtest.h>

#include "src/algorithms/registry.hpp"
#include "src/algorithms/algorithms.hpp"

namespace lumi {
namespace {

using enum Color;

Algorithm skeleton() {
  Algorithm alg;
  alg.name = "skeleton";
  alg.model = Synchrony::Fsync;
  alg.phi = 1;
  alg.num_colors = 2;
  alg.chirality = Chirality::Common;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}};
  return alg;
}

TEST(Validate, AcceptsMinimalAlgorithm) {
  Algorithm alg = skeleton();
  alg.rules.push_back(
      RuleBuilder("R1", G).cell("E", CellPattern::empty()).moves(Dir::East).build());
  EXPECT_NO_THROW(alg.validate());
}

TEST(Validate, RejectsColorOutsidePalette) {
  Algorithm alg = skeleton();
  alg.rules.push_back(RuleBuilder("R1", B).cell("E", CellPattern::empty()).moves(Dir::East).build());
  EXPECT_THROW(alg.validate(), std::invalid_argument);  // B with num_colors=2
}

TEST(Validate, RejectsGuardColorOutsidePalette) {
  Algorithm alg = skeleton();
  alg.rules.push_back(RuleBuilder("R1", G).cell("E", {B}).moves(Dir::East).build());
  EXPECT_THROW(alg.validate(), std::invalid_argument);
}

TEST(Validate, RejectsGuardCellBeyondPhi) {
  Algorithm alg = skeleton();  // phi = 1
  alg.rules.push_back(
      RuleBuilder("R1", G).cell("EE", CellPattern::empty()).moves(Dir::East).build());
  EXPECT_THROW(alg.validate(), std::invalid_argument);
}

TEST(Validate, RejectsMoveOntoPossiblyWallCell) {
  Algorithm alg = skeleton();
  // Moving east with the east cell left gray: a wall could be there.
  Rule rule = RuleBuilder("R1", G).moves(Dir::East).build();
  alg.rules.push_back(rule);
  EXPECT_THROW(alg.validate(), std::invalid_argument);
}

TEST(Validate, MoveOntoRobotCellIsAllowed) {
  Algorithm alg = skeleton();
  alg.num_colors = 2;
  alg.initial_robots = {{{0, 0}, G}, {{0, 1}, W}};
  alg.rules.push_back(RuleBuilder("R1", G).cell("E", {W}).moves(Dir::East).build());
  EXPECT_NO_THROW(alg.validate());
}

TEST(Validate, RejectsEmptyRobotSet) {
  Algorithm alg = skeleton();
  alg.initial_robots.clear();
  EXPECT_THROW(alg.validate(), std::invalid_argument);
}

TEST(Validate, RejectsInitialRobotOutsideMinimalGrid) {
  Algorithm alg = skeleton();
  alg.initial_robots = {{{0, 5}, G}};  // min_cols = 3
  EXPECT_THROW(alg.validate(), std::invalid_argument);
}

TEST(Validate, InitialConfigurationRespectsMinima) {
  Algorithm alg = skeleton();
  alg.rules.push_back(
      RuleBuilder("R1", G).cell("E", CellPattern::empty()).moves(Dir::East).build());
  alg.validate();
  EXPECT_THROW(alg.initial_configuration(Grid(1, 3)), std::invalid_argument);
  EXPECT_THROW(alg.initial_configuration(Grid(2, 2)), std::invalid_argument);
  EXPECT_NO_THROW(alg.initial_configuration(Grid(2, 3)));
}

TEST(RuleBuilderContract, CenterMustContainSelf) {
  EXPECT_THROW(RuleBuilder("R1", G).center({W}), std::invalid_argument);
  EXPECT_NO_THROW(RuleBuilder("R1", G).center({G, W}));
}

TEST(RuleBuilderContract, DuplicateCellRejected) {
  RuleBuilder b("R1", G);
  b.cell("E", CellPattern::empty());
  EXPECT_THROW(b.cell("E", CellPattern::wall()), std::invalid_argument);
}

TEST(RuleBuilderContract, CenterViaCellRejected) {
  RuleBuilder b("R1", G);
  EXPECT_THROW(b.cell("C", CellPattern::empty()), std::invalid_argument);
}

TEST(RuleBuilderContract, SingleActionOnly) {
  RuleBuilder b("R1", G);
  b.moves(Dir::East);
  EXPECT_THROW(b.idle(), std::invalid_argument);
}

TEST(RuleBuilderContract, DefaultCenterIsSelfSingleton) {
  const Rule r = RuleBuilder("R1", W).cell("E", CellPattern::empty()).moves(Dir::East).build();
  EXPECT_EQ(r.pattern_at({0, 0}), CellPattern::exactly(ColorMultiset{W}));
}

TEST(RuleBuilderContract, ToStringMentionsGuardAndAction) {
  const Rule r =
      RuleBuilder("R9", B).cell("N", {G}).cell("W", CellPattern::wall()).becomes(W).moves(
          Dir::East).build();
  const std::string s = r.to_string();
  EXPECT_NE(s.find("R9"), std::string::npos);
  EXPECT_NE(s.find("N={G}"), std::string::npos);
  EXPECT_NE(s.find("W,E"), std::string::npos);
}

TEST(RegistryContract, AllFourteenRowsPresentAndConsistent) {
  int optimal = 0;
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    const Algorithm alg = e.make();
    EXPECT_EQ(alg.paper_section, e.section);
    EXPECT_EQ(alg.phi, e.phi);
    EXPECT_EQ(alg.num_colors, e.num_colors);
    EXPECT_EQ(alg.chirality, e.chirality);
    EXPECT_EQ(alg.num_robots(), e.upper_bound);
    EXPECT_GE(e.upper_bound, e.lower_bound);
    EXPECT_EQ(e.optimal, e.upper_bound == e.lower_bound);
    optimal += e.optimal ? 1 : 0;
    EXPECT_NO_THROW(alg.validate());
  }
  EXPECT_EQ(algorithms::table1().size(), 14u);
  EXPECT_EQ(optimal, 6);  // "six proposed algorithms are optimal"
  EXPECT_THROW(algorithms::entry("9.9.9"), std::out_of_range);
}

}  // namespace
}  // namespace lumi
