#include "src/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace lumi::obs {
namespace {

/// Enables the global registry for one test and restores the disabled
/// default (plus zeroed slots) on the way out, so tests cannot leak counts
/// into each other.
struct EnabledRegistry {
  EnabledRegistry() {
    Registry::global().reset();
    Registry::global().set_enabled(true);
  }
  ~EnabledRegistry() {
    Registry::global().set_enabled(false);
    Registry::global().reset();
  }
  Registry& operator*() { return Registry::global(); }
  Registry* operator->() { return &Registry::global(); }
};

// --- correctness under concurrency ------------------------------------------

TEST(Metrics, ConcurrentIncrementsSumExactly) {
  EnabledRegistry reg;
  Counter& c = reg->counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  // Relaxed per-slot adds still sum exactly once all writers joined: every
  // increment lands in some slot, and value() reads them all.
  EXPECT_EQ(c.value(), static_cast<long long>(kThreads) * kPerThread);
}

TEST(Metrics, ConcurrentHistogramCountsSumExactly) {
  EnabledRegistry reg;
  Histogram& h = reg->histogram("test.hist.concurrent", {10, 100});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(i % 3 == 0 ? 5 : 50);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<long long>(kThreads) * kPerThread);
  const std::vector<long long> counts = h.counts();
  ASSERT_EQ(counts.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(counts[0] + counts[1] + counts[2], h.count());
  EXPECT_EQ(counts[2], 0);  // nothing past the last bound
}

TEST(Metrics, ConcurrentRecordMaxConverges) {
  EnabledRegistry reg;
  Gauge& g = reg->gauge("test.max");
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&g, t] {
      for (int i = 0; i < 5'000; ++i) g.record_max(t * 10'000 + i);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(g.value(), 5 * 10'000 + 4'999);
}

// --- disabled registry is observably inert -----------------------------------

TEST(Metrics, DisabledRegistryRecordsNothing) {
  Registry& reg = Registry::global();
  reg.reset();
  ASSERT_FALSE(reg.enabled());  // the default, restored by every test above
  Counter& c = reg.counter("test.disabled.counter");
  Gauge& g = reg.gauge("test.disabled.gauge");
  Histogram& h = reg.histogram("test.disabled.hist", {5});
  c.add(42);
  g.set(7);
  g.record_max(9);
  h.record(3);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  const MetricsSnapshot s = reg.snapshot();
  EXPECT_EQ(s.counter_or("test.disabled.counter", -1), 0);  // registered, zero
  reg.reset();
}

// --- histogram semantics ------------------------------------------------------

TEST(Metrics, HistogramBucketBoundsAreUpperInclusive) {
  EnabledRegistry reg;
  Histogram& h = reg->histogram("test.hist.bounds", {10, 20});
  for (long long sample : {-3, 10, 11, 20, 21, 1'000'000}) h.record(sample);
  const std::vector<long long> counts = h.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2);  // -3, 10
  EXPECT_EQ(counts[1], 2);  // 11, 20
  EXPECT_EQ(counts[2], 2);  // 21, 1e6 overflow
  EXPECT_EQ(h.sum(), -3 + 10 + 11 + 20 + 21 + 1'000'000);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  EnabledRegistry reg;
  EXPECT_THROW(reg->histogram("test.hist.empty", {}), std::invalid_argument);
  EXPECT_THROW(reg->histogram("test.hist.unsorted", {5, 3}), std::invalid_argument);
  EXPECT_THROW(reg->histogram("test.hist.dup", {5, 5}), std::invalid_argument);
}

// --- registry handles and snapshots ------------------------------------------

TEST(Metrics, HandlesAreStablePerName) {
  EnabledRegistry reg;
  Counter& a = reg->counter("test.same");
  Counter& b = reg->counter("test.same");
  EXPECT_EQ(&a, &b);
  // Second histogram registration keeps the first bounds.
  Histogram& h1 = reg->histogram("test.hist.first", {1, 2});
  Histogram& h2 = reg->histogram("test.hist.first", {99});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<long long>{1, 2}));
}

TEST(Metrics, SnapshotHelpersAndPrefixSum) {
  EnabledRegistry reg;
  reg->counter("pool.worker.0.stolen").add(3);
  reg->counter("pool.worker.1.stolen").add(4);
  reg->counter("pool.worker.1.executed").add(9);
  reg->gauge("test.g").set(17);
  const MetricsSnapshot s = reg->snapshot();
  EXPECT_EQ(s.counter_or("pool.worker.0.stolen"), 3);
  EXPECT_EQ(s.counter_or("absent", -5), -5);
  EXPECT_EQ(s.gauge_or("test.g"), 17);
  EXPECT_EQ(s.counter_prefix_sum("pool.worker.", ".stolen"), 7);
  EXPECT_EQ(s.counter_prefix_sum("pool.worker.", ".executed"), 9);
  EXPECT_EQ(s.counter_prefix_sum("nope.", ".stolen"), 0);
}

TEST(Metrics, ResetZeroesButKeepsRegistrations) {
  EnabledRegistry reg;
  Counter& c = reg->counter("test.reset");
  c.add(5);
  reg->reset();
  EXPECT_EQ(c.value(), 0);
  const MetricsSnapshot s = reg->snapshot();
  EXPECT_EQ(s.counter_or("test.reset", -1), 0);  // still present, zero
}

TEST(Metrics, JsonSchemaShape) {
  EnabledRegistry reg;
  reg->counter("b.count").add(2);
  reg->counter("a.count").add(1);
  reg->gauge("g.max").set(3);
  reg->histogram("h.ms", {1, 10}).record(4);
  const std::string json = metrics_json(reg->snapshot());
  EXPECT_NE(json.find("\"lumi_metrics\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"b.count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"g.max\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\": [1, 10]"), std::string::npos);
  EXPECT_LT(json.find("\"a.count\""), json.find("\"b.count\""));  // sorted keys
}

}  // namespace
}  // namespace lumi::obs
