#include "src/engine/async_engine.hpp"

#include <gtest/gtest.h>

#include "src/algorithms/algorithms.hpp"

namespace lumi {
namespace {

using enum Color;

TEST(AsyncEngine, PhasesAdvanceLookColorMove) {
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(2, 4);
  AsyncEngine engine(alg, alg.initial_configuration(grid));

  // Initially only W (robot 1) is enabled (rule R1).
  const auto effective = engine.effective_robots();
  ASSERT_EQ(effective.size(), 1u);
  EXPECT_EQ(effective[0], 1);
  EXPECT_EQ(engine.phase(1), Phase::Idle);

  engine.activate(1);  // Look: decision latched, nothing observable yet
  EXPECT_EQ(engine.phase(1), Phase::Decided);
  EXPECT_EQ(engine.config().robot(1).pos, (Vec{0, 1}));

  engine.activate(1);  // Compute-end: color applied (W keeps W here)
  EXPECT_EQ(engine.phase(1), Phase::Colored);
  EXPECT_EQ(engine.config().robot(1).color, W);

  engine.activate(1);  // Move
  EXPECT_EQ(engine.phase(1), Phase::Idle);
  EXPECT_EQ(engine.config().robot(1).pos, (Vec{0, 2}));
}

TEST(AsyncEngine, StaleDecisionExecutesAfterWorldChanged) {
  // Algorithm 6 alternation makes robots enabled one at a time, so fabricate
  // staleness with Algorithm 10 where R5/R6-style overlaps occur; here we
  // simply check that a latched decision survives other robots' events.
  const Algorithm alg = algorithms::algorithm10();
  const Grid grid(2, 4);
  AsyncEngine engine(alg, alg.initial_configuration(grid));
  // Robot 0 (G at (0,0)) is enabled by R1 (move onto the W at (0,1)).
  auto choices = engine.look_choices(0);
  ASSERT_FALSE(choices.empty());
  engine.activate(0, choices.front());
  EXPECT_EQ(engine.phase(0), Phase::Decided);
  // Drain its cycle; the decision executes relative to its own position.
  engine.activate(0);
  engine.activate(0);
  EXPECT_EQ(engine.config().robot(0).pos, (Vec{0, 1}));
  EXPECT_EQ(engine.config().multiset_at({0, 1}).size(), 2);
}

TEST(AsyncEngine, DisabledLookIsVacuous) {
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(2, 4);
  AsyncEngine engine(alg, alg.initial_configuration(grid));
  // Robot 0 (G) is disabled initially: activating it changes nothing.
  engine.activate(0);
  EXPECT_EQ(engine.phase(0), Phase::Idle);
  EXPECT_EQ(engine.config().robot(0).pos, (Vec{0, 0}));
}

TEST(AsyncEngine, ChoiceValidation) {
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(2, 4);
  AsyncEngine engine(alg, alg.initial_configuration(grid));
  Action bogus;
  bogus.new_color = B;
  bogus.move = Dir::North;
  EXPECT_THROW(engine.activate(1, bogus), std::logic_error);
}

TEST(AsyncEngine, ChoiceValidationRejectsInconsistentWitness) {
  // Regression: activate accepted any rule_index/sym as long as the behavior
  // matched some choice.  A witness that does not itself derive the claimed
  // behavior must be rejected.
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(2, 4);
  {
    AsyncEngine engine(alg, alg.initial_configuration(grid));
    auto choices = engine.look_choices(1);
    ASSERT_FALSE(choices.empty());
    Action forged = choices.front();
    forged.rule_index = static_cast<int>(alg.rules.size());  // nonexistent rule
    EXPECT_THROW(engine.activate(1, forged), std::logic_error);
  }
  {
    AsyncEngine engine(alg, alg.initial_configuration(grid));
    auto choices = engine.look_choices(1);
    ASSERT_FALSE(choices.empty());
    Action skewed = choices.front();
    skewed.sym.rot = static_cast<std::uint8_t>((skewed.sym.rot + 1) % 4);  // wrong frame
    EXPECT_THROW(engine.activate(1, skewed), std::logic_error);
  }
  {
    // An inadmissible frame: algorithm 6 has common chirality, so a mirrored
    // symmetry can never be a legitimate witness even if the guard happens to
    // be mirror-symmetric.
    AsyncEngine engine(alg, alg.initial_configuration(grid));
    auto choices = engine.look_choices(1);
    ASSERT_FALSE(choices.empty());
    Action mirrored = choices.front();
    mirrored.sym.mirror = true;
    EXPECT_THROW(engine.activate(1, mirrored), std::logic_error);
  }
  {
    // A witness-free action (rule_index = -1) with a valid behavior is fine.
    AsyncEngine engine(alg, alg.initial_configuration(grid));
    auto choices = engine.look_choices(1);
    ASSERT_FALSE(choices.empty());
    Action anonymous = choices.front();
    anonymous.rule_index = -1;
    EXPECT_NO_THROW(engine.activate(1, anonymous));
    EXPECT_EQ(engine.phase(1), Phase::Decided);
  }
}

TEST(AsyncEngine, TerminalRequiresIdleAndDisabled) {
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(2, 4);
  AsyncEngine engine(alg, alg.initial_configuration(grid));
  EXPECT_FALSE(engine.terminal());
  engine.activate(1);
  EXPECT_FALSE(engine.terminal());  // mid-cycle robot keeps the run alive
}

TEST(AsyncEngine, PendingAccessorGuards) {
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(2, 4);
  AsyncEngine engine(alg, alg.initial_configuration(grid));
  EXPECT_THROW(engine.pending(0), std::logic_error);
  engine.activate(1);
  EXPECT_NO_THROW(engine.pending(1));
  EXPECT_THROW(engine.activate(1, Action{}), std::logic_error);  // choice only at Look
}

}  // namespace
}  // namespace lumi
