#include "src/engine/async_engine.hpp"

#include <gtest/gtest.h>

#include "src/algorithms/algorithms.hpp"

namespace lumi {
namespace {

using enum Color;

TEST(AsyncEngine, PhasesAdvanceLookColorMove) {
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(2, 4);
  AsyncEngine engine(alg, alg.initial_configuration(grid));

  // Initially only W (robot 1) is enabled (rule R1).
  const auto effective = engine.effective_robots();
  ASSERT_EQ(effective.size(), 1u);
  EXPECT_EQ(effective[0], 1);
  EXPECT_EQ(engine.phase(1), Phase::Idle);

  engine.activate(1);  // Look: decision latched, nothing observable yet
  EXPECT_EQ(engine.phase(1), Phase::Decided);
  EXPECT_EQ(engine.config().robot(1).pos, (Vec{0, 1}));

  engine.activate(1);  // Compute-end: color applied (W keeps W here)
  EXPECT_EQ(engine.phase(1), Phase::Colored);
  EXPECT_EQ(engine.config().robot(1).color, W);

  engine.activate(1);  // Move
  EXPECT_EQ(engine.phase(1), Phase::Idle);
  EXPECT_EQ(engine.config().robot(1).pos, (Vec{0, 2}));
}

TEST(AsyncEngine, StaleDecisionExecutesAfterWorldChanged) {
  // Algorithm 6 alternation makes robots enabled one at a time, so fabricate
  // staleness with Algorithm 10 where R5/R6-style overlaps occur; here we
  // simply check that a latched decision survives other robots' events.
  const Algorithm alg = algorithms::algorithm10();
  const Grid grid(2, 4);
  AsyncEngine engine(alg, alg.initial_configuration(grid));
  // Robot 0 (G at (0,0)) is enabled by R1 (move onto the W at (0,1)).
  auto choices = engine.look_choices(0);
  ASSERT_FALSE(choices.empty());
  engine.activate(0, choices.front());
  EXPECT_EQ(engine.phase(0), Phase::Decided);
  // Drain its cycle; the decision executes relative to its own position.
  engine.activate(0);
  engine.activate(0);
  EXPECT_EQ(engine.config().robot(0).pos, (Vec{0, 1}));
  EXPECT_EQ(engine.config().multiset_at({0, 1}).size(), 2);
}

TEST(AsyncEngine, DisabledLookIsVacuous) {
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(2, 4);
  AsyncEngine engine(alg, alg.initial_configuration(grid));
  // Robot 0 (G) is disabled initially: activating it changes nothing.
  engine.activate(0);
  EXPECT_EQ(engine.phase(0), Phase::Idle);
  EXPECT_EQ(engine.config().robot(0).pos, (Vec{0, 0}));
}

TEST(AsyncEngine, ChoiceValidation) {
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(2, 4);
  AsyncEngine engine(alg, alg.initial_configuration(grid));
  Action bogus;
  bogus.new_color = B;
  bogus.move = Dir::North;
  EXPECT_THROW(engine.activate(1, bogus), std::logic_error);
}

TEST(AsyncEngine, TerminalRequiresIdleAndDisabled) {
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(2, 4);
  AsyncEngine engine(alg, alg.initial_configuration(grid));
  EXPECT_FALSE(engine.terminal());
  engine.activate(1);
  EXPECT_FALSE(engine.terminal());  // mid-cycle robot keeps the run alive
}

TEST(AsyncEngine, PendingAccessorGuards) {
  const Algorithm alg = algorithms::algorithm6();
  const Grid grid(2, 4);
  AsyncEngine engine(alg, alg.initial_configuration(grid));
  EXPECT_THROW(engine.pending(0), std::logic_error);
  engine.activate(1);
  EXPECT_NO_THROW(engine.pending(1));
  EXPECT_THROW(engine.activate(1, Action{}), std::logic_error);  // choice only at Look
}

}  // namespace
}  // namespace lumi
