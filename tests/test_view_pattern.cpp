#include <gtest/gtest.h>

#include <stdexcept>

#include "src/core/pattern.hpp"
#include "src/core/view.hpp"

namespace lumi {
namespace {

TEST(ViewKernel, Sizes) {
  EXPECT_EQ(ViewKernel::get(1).size(), 5);
  EXPECT_EQ(ViewKernel::get(2).size(), 13);
  EXPECT_THROW(ViewKernel(3), std::invalid_argument);
}

TEST(ViewKernel, ContainsExpectedOffsets) {
  const ViewKernel& k1 = ViewKernel::get(1);
  EXPECT_GE(k1.index_of({0, 0}), 0);
  EXPECT_GE(k1.index_of({-1, 0}), 0);
  EXPECT_GE(k1.index_of({0, 1}), 0);
  EXPECT_EQ(k1.index_of({-1, 1}), -1);  // diagonal invisible at phi=1
  const ViewKernel& k2 = ViewKernel::get(2);
  EXPECT_GE(k2.index_of({-1, 1}), 0);
  EXPECT_GE(k2.index_of({0, 2}), 0);
  EXPECT_EQ(k2.index_of({2, 2}), -1);  // Chebyshev corner not in L1 ball
}

TEST(ViewKernel, ClosedUnderSymmetry) {
  for (int phi = 1; phi <= 2; ++phi) {
    const ViewKernel& k = ViewKernel::get(phi);
    for (Sym g : all_symmetries()) {
      for (Vec o : k.offsets()) {
        EXPECT_GE(k.index_of(apply(g, o)), 0);
      }
    }
  }
}

TEST(Snapshot, CapturesWallsAndRobots) {
  const Grid grid(2, 3);
  Configuration c = make_configuration(grid, {{{0, 0}, {Color::G}}, {{0, 1}, {Color::W}}});
  const Snapshot snap = take_snapshot(c, 0, 1);
  EXPECT_EQ(snap.origin, (Vec{0, 0}));
  EXPECT_EQ(snap.self_color, Color::G);
  EXPECT_TRUE(snap.at({-1, 0}).wall);                       // north of row 0
  EXPECT_TRUE(snap.at({0, -1}).wall);                       // west of col 0
  EXPECT_EQ(snap.at({0, 1}).robots, (ColorMultiset{Color::W}));
  EXPECT_TRUE(snap.at({1, 0}).robots.empty());
  EXPECT_EQ(snap.at({0, 0}).robots, (ColorMultiset{Color::G}));  // includes self
}

TEST(Snapshot, Phi2SeesDistanceTwo) {
  const Grid grid(3, 5);
  Configuration c = make_configuration(
      grid, {{{1, 1}, {Color::G}}, {{1, 3}, {Color::B}}, {{0, 2}, {Color::W}}});
  const Snapshot snap = take_snapshot(c, 0, 2);
  // The B robot two columns east and the W robot on the NE diagonal are
  // both at Manhattan distance 2 and therefore visible.
  EXPECT_EQ(snap.at({0, 2}).robots, (ColorMultiset{Color::B}));
  EXPECT_EQ(snap.at({-1, 1}).robots, (ColorMultiset{Color::W}));
  EXPECT_TRUE(snap.at({0, -1}).robots.empty());
  EXPECT_TRUE(snap.at({-1, -1}).robots.empty());
  EXPECT_TRUE(snap.at({1, 1}).robots.empty());   // two rows south is a wall...
  EXPECT_FALSE(snap.at({1, 1}).wall);
  EXPECT_TRUE(snap.at({2, 0}).wall);             // (3,1) is outside the 3x5 grid
  EXPECT_FALSE(snap.at({0, 2}).wall);
}

TEST(Snapshot, OffsetOutsideKernelThrows) {
  const Grid grid(3, 3);
  Configuration c = make_configuration(grid, {{{1, 1}, {Color::G}}});
  const Snapshot snap = take_snapshot(c, 0, 1);
  EXPECT_THROW(snap.at({2, 0}), std::out_of_range);
}

TEST(CellPattern, MatchingSemantics) {
  const CellContent wall{.wall = true, .robots = {}};
  const CellContent empty{.wall = false, .robots = {}};
  const CellContent gw{.wall = false, .robots = ColorMultiset{Color::G, Color::W}};

  EXPECT_TRUE(CellPattern::gray().matches(wall));
  EXPECT_TRUE(CellPattern::gray().matches(empty));
  EXPECT_FALSE(CellPattern::gray().matches(gw));

  EXPECT_FALSE(CellPattern::empty().matches(wall));
  EXPECT_TRUE(CellPattern::empty().matches(empty));
  EXPECT_FALSE(CellPattern::empty().matches(gw));

  EXPECT_TRUE(CellPattern::wall().matches(wall));
  EXPECT_FALSE(CellPattern::wall().matches(empty));

  const CellPattern ms = CellPattern::exactly(ColorMultiset{Color::G, Color::W});
  EXPECT_TRUE(ms.matches(gw));
  EXPECT_FALSE(ms.matches(empty));
  EXPECT_FALSE(ms.matches(wall));
  EXPECT_FALSE(ms.matches(CellContent{false, ColorMultiset{Color::G}}));  // exact, not subset

  EXPECT_TRUE(CellPattern::any().matches(wall));
  EXPECT_TRUE(CellPattern::any().matches(gw));
}

TEST(CellPattern, MoveSafety) {
  EXPECT_TRUE(CellPattern::empty().guarantees_node_exists());
  EXPECT_TRUE(CellPattern::exactly(ColorMultiset{Color::G}).guarantees_node_exists());
  EXPECT_FALSE(CellPattern::gray().guarantees_node_exists());
  EXPECT_FALSE(CellPattern::wall().guarantees_node_exists());
  EXPECT_FALSE(CellPattern::any().guarantees_node_exists());
}

}  // namespace
}  // namespace lumi
