#include "src/engine/runner.hpp"

#include <gtest/gtest.h>

#include "src/algorithms/registry.hpp"
#include "src/algorithms/algorithms.hpp"

namespace lumi {
namespace {

using enum Color;

TEST(Runner, BudgetExhaustionReported) {
  // A two-robot ping-pong never terminates; the runner must stop at the
  // budget and say so rather than spin.
  Algorithm pingpong;
  pingpong.name = "pingpong";
  pingpong.model = Synchrony::Fsync;
  pingpong.phi = 1;
  pingpong.num_colors = 2;
  pingpong.chirality = Chirality::Common;
  pingpong.min_rows = 2;
  pingpong.min_cols = 3;
  pingpong.initial_robots = {{{0, 0}, G}, {{0, 1}, W}};
  pingpong.rules.push_back(RuleBuilder("R1", G).cell("E", {W}).moves(Dir::East).build());
  pingpong.rules.push_back(RuleBuilder("R2", W).cell("W", {G}).moves(Dir::West).build());
  pingpong.validate();

  FsyncScheduler sched;
  RunOptions opts;
  opts.max_steps = 50;
  const RunResult r = run_sync(pingpong, Grid(2, 3), sched, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.terminated);
  EXPECT_NE(r.failure.find("budget"), std::string::npos);
  EXPECT_EQ(r.stats.instants, 50);
}

TEST(Runner, AsyncBudgetExhaustionReported) {
  Algorithm pingpong;
  pingpong.name = "pingpong";
  pingpong.model = Synchrony::Async;
  pingpong.phi = 1;
  pingpong.num_colors = 2;
  pingpong.chirality = Chirality::Common;
  pingpong.min_rows = 2;
  pingpong.min_cols = 3;
  pingpong.initial_robots = {{{0, 0}, G}, {{0, 1}, W}};
  pingpong.rules.push_back(RuleBuilder("R1", G).cell("E", {W}).moves(Dir::East).build());
  pingpong.rules.push_back(RuleBuilder("R2", W).cell("W", {G}).moves(Dir::West).build());
  pingpong.validate();

  AsyncRandomScheduler sched(3);
  RunOptions opts;
  opts.max_steps = 100;
  const RunResult r = run_async(pingpong, Grid(2, 3), sched, opts);
  // Under ASYNC the swap may also collapse both robots onto one node (stale
  // decisions), which terminates without coverage; either way not ok().
  EXPECT_FALSE(r.ok());
  if (!r.terminated) {
    EXPECT_NE(r.failure.find("budget"), std::string::npos);
  } else {
    EXPECT_FALSE(r.explored_all);
  }
}

TEST(Runner, TraceRecordsInitialAndEveryInstant) {
  const Algorithm alg = algorithms::algorithm1();
  FsyncScheduler sched;
  RunOptions opts;
  opts.record_trace = true;
  const RunResult r = run_sync(alg, Grid(2, 4), sched, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<long>(r.trace.size()), r.stats.instants + 1);
  EXPECT_EQ(r.trace[0].note, "initial");
  EXPECT_TRUE(
      r.trace[0].config.same_placement(alg.initial_configuration(Grid(2, 4))));
}

TEST(Runner, StatsCountMovesAndColorChanges) {
  // Algorithm 3 recolors twice per full turn pair (W->G->B and B->W).
  const Algorithm alg = algorithms::algorithm3();
  FsyncScheduler sched;
  const RunResult r = run_sync(alg, Grid(3, 4), sched);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.stats.color_changes, 0);
  EXPECT_GT(r.stats.moves, 0);
  EXPECT_GE(r.stats.activations, r.stats.moves);
}

TEST(Runner, VisitedVectorMatchesCoverage) {
  const Algorithm alg = algorithms::algorithm1();
  FsyncScheduler sched;
  const Grid grid(3, 5);
  const RunResult r = run_sync(alg, grid, sched);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.visited_count(), grid.num_nodes());
  EXPECT_EQ(static_cast<int>(r.visited.size()), grid.num_nodes());
}

TEST(Runner, FinalConfigurationRequiresTrace) {
  const Algorithm alg = algorithms::algorithm1();
  FsyncScheduler sched;
  const RunResult r = run_sync(alg, Grid(2, 3), sched);
  EXPECT_THROW(final_configuration(r), std::logic_error);
}

TEST(Runner, GridBelowAlgorithmMinimumThrows) {
  const Algorithm alg = algorithms::algorithm11();  // needs m >= 3
  SsyncRoundRobinScheduler sched;
  EXPECT_THROW(run_sync(alg, Grid(2, 3), sched), std::invalid_argument);
}

TEST(Runner, SsyncRoundRobinCompletesEveryAsyncAlgorithm) {
  // The most sequential fair scheduler must work for all SSYNC/ASYNC rows.
  for (const char* section : {"4.3.1", "4.3.2", "4.3.3", "4.3.4", "4.3.5", "4.3.6"}) {
    const Algorithm alg = algorithms::entry(section).make();
    SsyncRoundRobinScheduler sched;
    const Grid grid(std::max(3, alg.min_rows), 5);
    const RunResult r = run_sync(alg, grid, sched);
    EXPECT_TRUE(r.ok()) << section << ": " << r.failure;
  }
}

}  // namespace
}  // namespace lumi
