#include "src/campaign/campaign.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "src/algorithms/registry.hpp"
#include "src/campaign/thread_pool.hpp"
#include "src/trace/report.hpp"

namespace lumi::campaign {
namespace {

// --- thread pool ------------------------------------------------------------

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, WorkerIndexIsStableAndBounded) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_index(), -1);  // caller is not a pool worker
  std::atomic<int> bad{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&pool, &bad] {
      const int w = pool.worker_index();
      if (w < 0 || w >= static_cast<int>(pool.size())) bad.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  // Regression: shutdown used to drop still-queued tasks (workers exited on
  // stop_ before re-checking the deques), leaving pending_ nonzero.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    std::atomic<bool> release{false};
    // Park both workers so the remaining submissions pile up queued.
    for (unsigned i = 0; i < pool.size(); ++i) {
      pool.submit([&release] {
        while (!release.load()) std::this_thread::yield();
      });
    }
    for (int i = 0; i < 200; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
    release.store(true);
    // No wait_idle(): the destructor itself must run everything.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  pool.wait_idle();  // no tasks: returns immediately
  std::atomic<int> n{0};
  pool.submit([&n] { n.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&n] { n.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(n.load(), 2);
}

// --- aggregation ------------------------------------------------------------

TEST(Aggregate, LongStatMergeIsOrderIndependent) {
  const std::vector<long> samples = {0, 1, 5, 9, 1024, 3, 3, 77};
  LongStat all;
  for (long s : samples) all.add(s);

  LongStat left, right;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (i % 2 == 0 ? left : right).add(samples[i]);
  }
  LongStat merged = right;  // merge in the "wrong" order on purpose
  merged.merge(left);

  EXPECT_EQ(merged, all);
  EXPECT_EQ(merged.count, 8);
  EXPECT_EQ(merged.min, 0);
  EXPECT_EQ(merged.max, 1024);
  EXPECT_EQ(merged.sum, std::accumulate(samples.begin(), samples.end(), 0LL));
}

TEST(Aggregate, LongStatRejectsNegativeSamples) {
  LongStat s;
  EXPECT_THROW(s.add(-1), std::invalid_argument);
}

TEST(Aggregate, VarianceFromExactSums) {
  LongStat s;
  EXPECT_EQ(s.variance(), 0.0);  // empty stream
  for (long v : {2, 4, 4, 4, 5, 5, 7, 9}) s.add(v);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // the classic population-variance example
  LongStat constant;
  for (int i = 0; i < 5; ++i) constant.add(6);
  EXPECT_DOUBLE_EQ(constant.variance(), 0.0);
}

TEST(Aggregate, PercentileBoundsFollowTheHistogram) {
  LongStat zeros;
  for (int i = 0; i < 10; ++i) zeros.add(0);
  EXPECT_EQ(zeros.percentile(0.5), 0);
  EXPECT_EQ(zeros.percentile(0.99), 0);

  // 99 samples of 1 and one of 1000: p50/p90 sit in the ones bucket, p99+
  // reaches the outlier's bucket (clamped to the true max).
  LongStat skew;
  for (int i = 0; i < 99; ++i) skew.add(1);
  skew.add(1000);
  EXPECT_EQ(skew.percentile(0.50), 1);
  EXPECT_EQ(skew.percentile(0.90), 1);
  EXPECT_EQ(skew.percentile(1.00), 1000);
  EXPECT_GE(skew.percentile(0.995), 512);   // outlier bucket [512, 1024)
  EXPECT_LE(skew.percentile(0.995), 1000);  // never past the observed max

  EXPECT_EQ(LongStat{}.percentile(0.5), 0);  // empty stream
}

TEST(Aggregate, PercentilesAgreeAcrossMergeSplits) {
  const std::vector<long> samples = {0, 1, 5, 9, 1024, 3, 3, 77, 12, 12, 200};
  LongStat all;
  for (long s : samples) all.add(s);
  LongStat left, right;
  for (std::size_t i = 0; i < samples.size(); ++i) (i % 3 == 0 ? left : right).add(samples[i]);
  LongStat merged = right;
  merged.merge(left);
  for (double q : {0.5, 0.9, 0.99}) EXPECT_EQ(merged.percentile(q), all.percentile(q)) << q;
  EXPECT_EQ(merged.sum_squares, all.sum_squares);
}

TEST(Aggregate, MergeRequiresMatchingCellCounts) {
  CampaignAccumulator a(2), b(3);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// --- scheduler taxonomy -----------------------------------------------------

TEST(SchedKindTaxonomy, NamesRoundTrip) {
  for (SchedKind kind : kAllSchedKinds) {
    const auto parsed = sched_from_name(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(sched_from_name("no-such-sched").has_value());
}

TEST(SchedKindTaxonomy, CompatibilityFollowsSynchronyOrder) {
  // FSYNC algorithms only tolerate the FSYNC scheduler...
  EXPECT_TRUE(compatible(Synchrony::Fsync, SchedKind::Fsync));
  EXPECT_FALSE(compatible(Synchrony::Fsync, SchedKind::SsyncRandom));
  EXPECT_FALSE(compatible(Synchrony::Fsync, SchedKind::AsyncRandom));
  // ...SSYNC ones everything synchronous...
  EXPECT_TRUE(compatible(Synchrony::Ssync, SchedKind::Fsync));
  EXPECT_TRUE(compatible(Synchrony::Ssync, SchedKind::SsyncRoundRobin));
  EXPECT_FALSE(compatible(Synchrony::Ssync, SchedKind::AsyncCentralized));
  // ...and ASYNC ones every scheduler.
  for (SchedKind kind : kAllSchedKinds) EXPECT_TRUE(compatible(Synchrony::Async, kind));
}

// --- range parsing ----------------------------------------------------------

TEST(IntRangeParsing, AcceptsTheCliGrammar) {
  const auto single = range_from_string("8");
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->from, 8);
  EXPECT_EQ(single->to, 8);
  EXPECT_EQ(single->step, 1);

  const auto plain = range_from_string("4..64");
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->from, 4);
  EXPECT_EQ(plain->to, 64);
  EXPECT_EQ(plain->step, 1);

  const auto stepped = range_from_string("4..64:12");
  ASSERT_TRUE(stepped.has_value());
  EXPECT_EQ(stepped->from, 4);
  EXPECT_EQ(stepped->to, 64);
  EXPECT_EQ(stepped->step, 12);

  // An inverted range is empty, not an error (matches IntRange semantics).
  const auto inverted = range_from_string("6..4");
  ASSERT_TRUE(inverted.has_value());
  EXPECT_TRUE(inverted->values().empty());
}

TEST(IntRangeParsing, RejectsZeroAndNegativeSteps) {
  // Regression: a zero step used to slip into the sweep loop and spin (or a
  // negative one overshoot); the parser must refuse both outright.
  for (const char* bad : {"4..64:0", "4..64:-3", "4..64:-1"}) {
    EXPECT_FALSE(range_from_string(bad).has_value()) << bad;
  }
}

TEST(IntRangeParsing, RejectsMalformedText) {
  for (const char* bad :
       {"", "x", "0", "-4", "4..", "..8", "4..y", "4..8:", "4..8:x", "1e3", "4..8:2:3",
        "99999999999", "4..99999999999"}) {
    EXPECT_FALSE(range_from_string(bad).has_value()) << bad;
  }
}

TEST(IntRangeValues, UpperEndpointIsAlwaysIncluded) {
  // Aligned and misaligned steps both cover `to`: a sweep asked to reach 64
  // columns must actually measure the 64-column edge.
  EXPECT_EQ((IntRange{4, 10, 2}.values()), (std::vector<int>{4, 6, 8, 10}));
  EXPECT_EQ((IntRange{4, 10, 3}.values()), (std::vector<int>{4, 7, 10}));
  EXPECT_EQ((IntRange{4, 64, 12}.values()),
            (std::vector<int>{4, 16, 28, 40, 52, 64}));
  EXPECT_EQ((IntRange{4, 9, 4}.values()), (std::vector<int>{4, 8, 9}));
  EXPECT_EQ((IntRange{5, 5, 7}.values()), (std::vector<int>{5}));
  EXPECT_TRUE((IntRange{6, 4, 1}.values().empty()));
}

TEST(IntRangeValues, NonPositiveStepThrowsInsteadOfSpinning) {
  EXPECT_THROW((IntRange{4, 8, 0}.values()), std::invalid_argument);
  EXPECT_THROW((IntRange{4, 8, -2}.values()), std::invalid_argument);
  // A step far larger than the span must terminate with both endpoints, not
  // overflow the loop variable.
  EXPECT_EQ((IntRange{1, 2, std::numeric_limits<int>::max()}.values()),
            (std::vector<int>{1, 2}));
}

// --- expansion --------------------------------------------------------------

TEST(Expansion, CountsCellsAndJobs) {
  Matrix m;
  m.sections = {"4.3.1"};  // ASYNC algorithm: compatible with everything
  m.rows = {4, 6, 2};      // {4, 6}
  m.cols = {5, 5, 1};      // {5}
  m.schedulers = {SchedKind::Fsync, SchedKind::AsyncRandom};
  m.seeds = {1, 2, 3};
  const Expansion e = expand(m);
  // 2 grids x 2 schedulers = 4 cells; fsync is deterministic (1 job per
  // cell), async-random takes all 3 seeds.
  EXPECT_EQ(e.cells.size(), 4u);
  EXPECT_EQ(e.jobs.size(), 2u * (1 + 3));
}

TEST(Expansion, SkipsIncompatibleSchedulers) {
  Matrix m;
  m.sections = {"4.2.1"};  // FSYNC-only algorithm
  m.rows = {4, 4, 1};
  m.cols = {5, 5, 1};
  m.schedulers = {SchedKind::Fsync, SchedKind::SsyncRandom, SchedKind::AsyncRandom};
  const Expansion e = expand(m);
  ASSERT_EQ(e.cells.size(), 1u);
  EXPECT_EQ(e.cells[0].sched, SchedKind::Fsync);

  m.skip_incompatible = false;
  EXPECT_THROW(expand(m), std::invalid_argument);
}

TEST(Expansion, SkipsGridsBelowAlgorithmMinimum) {
  const Algorithm alg = algorithms::entry("4.2.1").make();
  Matrix m;
  m.sections = {"4.2.1"};
  m.rows = {1, alg.min_rows, 1};       // everything below min_rows is dropped
  m.cols = {alg.min_cols, alg.min_cols, 1};
  m.schedulers = {SchedKind::Fsync};
  const Expansion e = expand(m);
  ASSERT_EQ(e.cells.size(), 1u);
  EXPECT_EQ(e.cells[0].rows, alg.min_rows);

  m.skip_incompatible = false;
  EXPECT_THROW(expand(m), std::invalid_argument);
}

TEST(Expansion, EmptyAndDegenerateMatrices) {
  EXPECT_TRUE(expand(Matrix{}).jobs.empty());

  Matrix no_grids;
  no_grids.sections = {"4.3.1"};
  no_grids.schedulers = {SchedKind::Fsync};
  no_grids.rows = {6, 4, 1};  // from > to: empty range
  no_grids.cols = {4, 6, 1};
  EXPECT_TRUE(expand(no_grids).cells.empty());

  Matrix bad_step = no_grids;
  bad_step.rows = {4, 6, 0};
  EXPECT_THROW(expand(bad_step), std::invalid_argument);

  Matrix unknown;
  unknown.sections = {"9.9.9"};
  EXPECT_THROW(expand(unknown), std::out_of_range);
}

TEST(Expansion, PaperSectionListsMatchTable) {
  EXPECT_EQ(paper_sections().size(), 11u);
  EXPECT_EQ(all_sections().size(), 14u);
}

// --- end-to-end campaigns ---------------------------------------------------

Matrix small_campaign() {
  Matrix m;
  m.sections = {"4.2.1", "4.3.1", "4.3.5"};
  m.rows = {4, 6, 2};
  m.cols = {4, 6, 2};
  m.schedulers = {SchedKind::Fsync, SchedKind::SsyncRandom, SchedKind::AsyncRandom};
  m.seeds = {7, 8};
  return m;
}

TEST(Campaign, RunsAndTerminatesEverywhere) {
  const CampaignSummary s = run_campaign(small_campaign(), 2);
  ASSERT_FALSE(s.cells.empty());
  EXPECT_GT(s.total.runs, 0);
  EXPECT_EQ(s.total.terminated, s.total.runs);
  EXPECT_EQ(s.total.explored_all, s.total.runs);
  EXPECT_EQ(s.total.failures, 0);
  for (const CellSummary& cell : s.cells) {
    EXPECT_EQ(cell.acc.visited.min, cell.cell.rows * cell.cell.cols) << to_string(cell.cell);
  }
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  const Expansion e = expand(small_campaign());
  const CampaignSummary one = run_campaign(e, 1);
  const CampaignSummary four = run_campaign(e, 4);
  ASSERT_EQ(one.cells.size(), four.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    EXPECT_TRUE(one.cells[i].cell == four.cells[i].cell);
    EXPECT_EQ(one.cells[i].acc, four.cells[i].acc) << to_string(one.cells[i].cell);
  }
  EXPECT_EQ(one.total, four.total);
}

TEST(Campaign, BudgetExhaustionCountsAsFailureNotCrash) {
  Matrix m = small_campaign();
  m.options.max_steps = 1;  // nothing terminates in one instant
  const CampaignSummary s = run_campaign(m, 2);
  EXPECT_EQ(s.total.terminated, 0);
  EXPECT_EQ(s.total.failures, s.total.runs);
}

TEST(Campaign, RunCellMatchesDirectRun) {
  const Cell cell{"4.3.1", 4, 5, SchedKind::AsyncRandom};
  const RunResult r = run_cell(cell, 42, RunOptions{});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.visited_count(), 20);
}

// --- report writers ---------------------------------------------------------

TEST(Report, CsvHasHeaderAndOneRowPerCell) {
  const CampaignSummary s = run_campaign(small_campaign(), 2);
  const std::string csv = campaign_csv(s);
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, s.cells.size() + 1);
  EXPECT_NE(csv.find("section,rows,cols,topo,sched"), std::string::npos);
  EXPECT_NE(csv.find("4.3.1"), std::string::npos);
}

TEST(Report, JsonMentionsEveryCellAndTotals) {
  const CampaignSummary s = run_campaign(small_campaign(), 2);
  const std::string json = campaign_json(s);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
  EXPECT_NE(json.find("\"total\""), std::string::npos);
  EXPECT_NE(json.find("\"termination_rate\""), std::string::npos);
  std::size_t sections = 0;
  for (std::size_t pos = json.find("\"section\""); pos != std::string::npos;
       pos = json.find("\"section\"", pos + 1)) {
    ++sections;
  }
  EXPECT_EQ(sections, s.cells.size());
}

}  // namespace
}  // namespace lumi::campaign
