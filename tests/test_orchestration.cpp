// Orchestration subsystem: deterministic sharding, checkpoint round-trips,
// shard-union == full-run byte identity, resume-after-kill, and adaptive
// seed escalation.
#include "src/campaign/orchestrate.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <stdexcept>

#include "src/campaign/checkpoint.hpp"
#include "src/campaign/shard.hpp"
#include "src/trace/report.hpp"

namespace lumi::campaign {
namespace {

Matrix small_matrix() {
  Matrix m;
  m.sections = {"4.2.1", "4.3.1", "4.3.5"};
  m.rows = {4, 6, 2};
  m.cols = {4, 6, 2};
  m.schedulers = {SchedKind::Fsync, SchedKind::SsyncRandom, SchedKind::AsyncRandom};
  m.seeds = {7, 8};
  return m;
}

std::string temp_path(const char* name) { return testing::TempDir() + name; }

// --- sharding ---------------------------------------------------------------

TEST(Shard, SpecParsingRoundTrips) {
  const auto spec = shard_from_string("2/7");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->index, 2u);
  EXPECT_EQ(spec->count, 7u);
  EXPECT_EQ(to_string(*spec), "2/7");

  for (const char* bad : {"", "3", "/3", "2/", "3/3", "4/3", "a/b", "1/2/3", "-1/3"}) {
    EXPECT_FALSE(shard_from_string(bad).has_value()) << bad;
  }
}

TEST(Shard, PartitionIsExactAndDisjoint) {
  const Expansion full = expand(small_matrix());
  ASSERT_GT(full.jobs.size(), 7u);
  for (unsigned n : {1u, 2u, 3u, 7u}) {
    std::set<std::pair<std::size_t, unsigned>> seen;
    std::size_t total = 0;
    for (unsigned i = 0; i < n; ++i) {
      const Expansion piece = shard(full, {i, n});
      EXPECT_EQ(piece.cells.size(), full.cells.size());  // cells always align
      for (const Job& job : piece.jobs) {
        EXPECT_TRUE(seen.insert({job.cell, job.seed}).second) << "overlap at n=" << n;
      }
      total += piece.jobs.size();
    }
    EXPECT_EQ(total, full.jobs.size()) << "union incomplete at n=" << n;
  }
}

TEST(Shard, InvalidSpecsThrow) {
  const Expansion full = expand(small_matrix());
  EXPECT_THROW(shard(full, {0, 0}), std::invalid_argument);
  EXPECT_THROW(shard(full, {3, 3}), std::invalid_argument);
}

// --- checkpoint format ------------------------------------------------------

TEST(Checkpoint, SerializeParseSerializeIsByteIdentical) {
  const Expansion e = expand(small_matrix());
  const OrchestratorReport run = run_orchestrated(e, {});
  const std::string first = checkpoint_serialize(run.checkpoint);
  const Checkpoint parsed = checkpoint_parse(first);
  EXPECT_EQ(parsed, run.checkpoint);
  EXPECT_EQ(checkpoint_serialize(parsed), first);
}

TEST(Checkpoint, HostileSectionNamesSurviveTheRoundTrip) {
  Checkpoint ck;
  ck.fingerprint = 0xdeadbeefcafef00dULL;
  CheckpointCell cell;
  cell.cell = Cell{"4.2.1 \"hostile\", 100% a\\b\nnewline", 4, 5, SchedKind::Fsync};
  cell.seeds_done = {0, 3, 9};
  ck.cells.push_back(cell);
  const std::string text = checkpoint_serialize(ck);
  // The encoded section must not break the line-oriented format.
  const Checkpoint parsed = checkpoint_parse(text);
  EXPECT_EQ(parsed, ck);
  EXPECT_EQ(checkpoint_serialize(parsed), text);
}

TEST(Checkpoint, MalformedInputsThrow) {
  const Expansion e = expand(small_matrix());
  const std::string good = checkpoint_serialize(make_checkpoint(e));
  EXPECT_THROW(checkpoint_parse(""), std::runtime_error);
  EXPECT_THROW(checkpoint_parse("not a checkpoint\n"), std::runtime_error);
  EXPECT_THROW(checkpoint_parse(good.substr(0, good.size() / 2)), std::runtime_error);
  std::string wrong_version = good;
  wrong_version.replace(wrong_version.find(" v2"), 3, " v9");
  EXPECT_THROW(checkpoint_parse(wrong_version), std::runtime_error);
}

TEST(Checkpoint, NonHexEscapesAreRejected) {
  Checkpoint ck;
  CheckpointCell cell;
  cell.cell = Cell{"name\nwith newline", 4, 5, SchedKind::Fsync};
  ck.cells.push_back(cell);
  std::string text = checkpoint_serialize(ck);
  const std::size_t escape = text.find("%0a");
  ASSERT_NE(escape, std::string::npos);
  // strtol would happily parse "-1"; the parser must reject it instead of
  // decoding a wrong byte.
  text.replace(escape, 3, "%-1");
  EXPECT_THROW(checkpoint_parse(text), std::runtime_error);
}

TEST(Checkpoint, WriteThenLoadRoundTrips) {
  const std::string path = temp_path("roundtrip.ckpt");
  const Expansion e = expand(small_matrix());
  const Checkpoint ck = make_checkpoint(e);
  ASSERT_TRUE(checkpoint_write(path, ck));
  const auto loaded = checkpoint_load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, ck);
  std::remove(path.c_str());
  EXPECT_FALSE(checkpoint_load(path).has_value());
}

TEST(Checkpoint, FingerprintSeparatesMatrices) {
  const Expansion a = expand(small_matrix());
  Matrix other = small_matrix();
  other.options.max_steps += 1;
  EXPECT_NE(expansion_fingerprint(a), expansion_fingerprint(expand(other)));
  Matrix fewer = small_matrix();
  fewer.sections.pop_back();
  EXPECT_NE(expansion_fingerprint(a), expansion_fingerprint(expand(fewer)));
  // Shards of one matrix share the fingerprint: only cells + options count.
  EXPECT_EQ(expansion_fingerprint(a), expansion_fingerprint(shard(a, {0, 3})));
}

// --- shard merge == single-process run --------------------------------------

TEST(Merge, AnyShardingReproducesTheSingleProcessRunByteForByte) {
  const Expansion full = expand(small_matrix());
  const CampaignSummary direct = run_campaign(full, 1);
  const std::string want_csv = campaign_csv(direct);
  const std::string want_json = campaign_json(direct);

  for (unsigned n : {1u, 2u, 3u, 7u}) {
    Checkpoint merged;
    // Fold the shards in reverse order on purpose: merge order must not
    // matter either.
    for (unsigned i = n; i-- > 0;) {
      const OrchestratorReport piece = run_orchestrated(shard(full, {i, n}), {});
      if (i + 1 == n) {
        merged = piece.checkpoint;
      } else {
        checkpoint_merge(merged, piece.checkpoint);
      }
    }
    const CampaignSummary summary = checkpoint_summary(merged);
    EXPECT_EQ(campaign_csv(summary), want_csv) << "n=" << n;
    EXPECT_EQ(campaign_json(summary), want_json) << "n=" << n;
  }
}

TEST(Merge, OverlappingShardsAreRejected) {
  const Expansion full = expand(small_matrix());
  const OrchestratorReport a = run_orchestrated(shard(full, {0, 2}), {});
  Checkpoint merged = a.checkpoint;
  EXPECT_THROW(checkpoint_merge(merged, a.checkpoint), std::invalid_argument);
}

TEST(Merge, DifferentMatricesAreRejected) {
  Matrix other = small_matrix();
  other.options.max_steps += 1;
  Checkpoint a = make_checkpoint(expand(small_matrix()));
  const Checkpoint b = make_checkpoint(expand(other));
  EXPECT_THROW(checkpoint_merge(a, b), std::invalid_argument);
}

// --- resume -----------------------------------------------------------------

TEST(Resume, KilledCampaignResumesWithoutRerunningCompletedJobs) {
  const std::string path = temp_path("resume.ckpt");
  std::remove(path.c_str());
  const Expansion full = expand(small_matrix());

  // "Kill" the campaign mid-run: cap this invocation at 5 jobs.  The final
  // flush persists exactly the completed slice.
  OrchestratorOptions first;
  first.checkpoint_path = path;
  first.max_jobs = 5;
  const OrchestratorReport killed = run_orchestrated(full, first);
  EXPECT_FALSE(killed.complete);
  EXPECT_EQ(killed.jobs_executed, 5u);
  ASSERT_TRUE(checkpoint_load(path).has_value());

  // The resume must run only the remainder and land on the exact bytes of
  // the uninterrupted single-process run.
  OrchestratorOptions second;
  second.checkpoint_path = path;
  const OrchestratorReport resumed = run_orchestrated(full, second);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.jobs_skipped, 5u);
  EXPECT_EQ(resumed.jobs_executed, full.jobs.size() - 5u);

  const CampaignSummary direct = run_campaign(full, 1);
  EXPECT_EQ(campaign_csv(resumed.summary), campaign_csv(direct));
  EXPECT_EQ(campaign_json(resumed.summary), campaign_json(direct));
  std::remove(path.c_str());
}

TEST(Resume, KilledAdaptiveCampaignResumesIdenticallyWithTrackingOnAndOff) {
  // The incremental engine must be invisible to checkpoint/resume: a
  // killed-and-resumed adaptive campaign lands on reports byte-identical to
  // the fresh uninterrupted run, for every combination of dirty tracking
  // during the first (killed) leg and during the resume — including mixed
  // legs, since the checkpoint format carries no trace of the engine mode.
  Matrix m = small_matrix();
  m.options.max_steps = 40;  // some runs exhaust the budget: escalation fires
  const Expansion fresh_expansion = expand(m);
  OrchestratorOptions adaptive;
  adaptive.adaptive.enabled = true;
  adaptive.adaptive.seeds_per_round = 1;
  adaptive.adaptive.max_extra_seeds = 2;
  const OrchestratorReport fresh = run_orchestrated(fresh_expansion, adaptive);
  const std::string want_csv = campaign_csv(fresh.summary);
  const std::string want_json = campaign_json(fresh.summary);

  for (const bool first_incremental : {true, false}) {
    for (const bool resume_incremental : {true, false}) {
      const std::string path = temp_path("resume-incremental.ckpt");
      std::remove(path.c_str());
      Expansion killed_leg = fresh_expansion;
      killed_leg.options.incremental = first_incremental;
      OrchestratorOptions first = adaptive;
      first.checkpoint_path = path;
      first.max_jobs = 7;
      const OrchestratorReport killed = run_orchestrated(killed_leg, first);
      EXPECT_FALSE(killed.complete);

      Expansion resume_leg = fresh_expansion;
      resume_leg.options.incremental = resume_incremental;
      OrchestratorOptions second = adaptive;
      second.checkpoint_path = path;
      const OrchestratorReport resumed = run_orchestrated(resume_leg, second);
      EXPECT_TRUE(resumed.complete);
      const std::string context = std::string("first=") + (first_incremental ? "inc" : "rec") +
                                  " resume=" + (resume_incremental ? "inc" : "rec");
      EXPECT_EQ(campaign_csv(resumed.summary), want_csv) << context;
      EXPECT_EQ(campaign_json(resumed.summary), want_json) << context;
      std::remove(path.c_str());
    }
  }
}

TEST(Resume, UnwritableCheckpointPathFailsLoudly) {
  // Flush failures must not end with "progress persisted" signaling: a path
  // that can never be written (missing directory) has to surface as an
  // error, not a silent no-op.
  OrchestratorOptions opts;
  opts.checkpoint_path = temp_path("no-such-dir/x.ckpt");
  EXPECT_THROW(run_orchestrated(expand(small_matrix()), opts), std::runtime_error);
}

TEST(Resume, ForeignCheckpointIsRefused) {
  const std::string path = temp_path("foreign.ckpt");
  Matrix other = small_matrix();
  other.options.max_steps += 1;
  ASSERT_TRUE(checkpoint_write(path, make_checkpoint(expand(other))));
  OrchestratorOptions opts;
  opts.checkpoint_path = path;
  EXPECT_THROW(run_orchestrated(expand(small_matrix()), opts), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Resume, CompletedCampaignRerunExecutesNothing) {
  const std::string path = temp_path("noop.ckpt");
  std::remove(path.c_str());
  const Expansion full = expand(small_matrix());
  OrchestratorOptions opts;
  opts.checkpoint_path = path;
  const OrchestratorReport first = run_orchestrated(full, opts);
  EXPECT_EQ(first.jobs_executed, full.jobs.size());
  const OrchestratorReport again = run_orchestrated(full, opts);
  EXPECT_EQ(again.jobs_executed, 0u);
  EXPECT_EQ(again.jobs_skipped, full.jobs.size());
  EXPECT_EQ(again.summary.total, first.summary.total);
  std::remove(path.c_str());
}

// --- adaptive seed escalation -----------------------------------------------

TEST(Adaptive, HealthyCampaignNeverEscalates) {
  OrchestratorOptions opts;
  opts.adaptive.enabled = true;
  const OrchestratorReport report = run_orchestrated(expand(small_matrix()), opts);
  EXPECT_EQ(report.escalation_jobs, 0u);
  EXPECT_EQ(report.escalation_rounds, 0u);
}

TEST(Adaptive, FailingCellsReceiveExtraSeedsUpToTheBudget) {
  Matrix m;
  m.sections = {"4.3.1"};
  m.rows = {4, 4, 1};
  m.cols = {4, 4, 1};
  m.schedulers = {SchedKind::Fsync, SchedKind::AsyncRandom};
  m.seeds = {1, 2};
  m.options.max_steps = 3;  // nothing terminates: every cell is unhealthy

  OrchestratorOptions opts;
  opts.adaptive.enabled = true;
  opts.adaptive.seeds_per_round = 2;
  opts.adaptive.max_extra_seeds = 5;
  const OrchestratorReport report = run_orchestrated(expand(m), opts);

  // Only the async-random cell escalates (fsync is deterministic); rounds of
  // 2 against a budget of 5 take 2+2+1 extra seeds over 3 rounds.
  EXPECT_EQ(report.escalation_jobs, 5u);
  EXPECT_EQ(report.escalation_rounds, 3u);
  for (const CellSummary& cell : report.summary.cells) {
    if (cell.cell.sched == SchedKind::AsyncRandom) {
      EXPECT_EQ(cell.acc.runs, 2 + 5);  // base seeds + escalations
    } else {
      EXPECT_EQ(cell.acc.runs, 1);  // deterministic: single job, no escalation
    }
  }
}

TEST(Adaptive, CellsOwnedByOtherShardsNeverEscalate) {
  // A shard sees every cell but only its own jobs; cells with zero local
  // base jobs have empty (hence "unhealthy"-looking) stats and must be
  // excluded from escalation — otherwise two shards would inject the same
  // extra seeds and their checkpoints could no longer merge.
  Matrix m;
  m.sections = {"4.3.1"};
  m.rows = {4, 6, 2};  // two cells
  m.cols = {4, 4, 1};
  m.schedulers = {SchedKind::AsyncRandom};
  m.seeds = {1};
  m.options.max_steps = 3;  // nothing terminates: every owned cell escalates

  const Expansion full = expand(m);
  ASSERT_EQ(full.jobs.size(), 2u);
  OrchestratorOptions opts;
  opts.adaptive.enabled = true;
  opts.adaptive.seeds_per_round = 2;
  opts.adaptive.max_extra_seeds = 2;
  const OrchestratorReport report = run_orchestrated(shard(full, {0, 2}), opts);
  ASSERT_EQ(report.checkpoint.cells.size(), 2u);
  EXPECT_EQ(report.checkpoint.cells[0].seeds_done.size(), 3u);  // 1 base + 2 extra
  EXPECT_TRUE(report.checkpoint.cells[1].seeds_done.empty());   // other shard's cell
}

TEST(Adaptive, EscalationSeedsContinuePastTheBaseSet) {
  Matrix m;
  m.sections = {"4.3.1"};
  m.rows = {4, 4, 1};
  m.cols = {4, 4, 1};
  m.schedulers = {SchedKind::AsyncRandom};
  m.seeds = {10, 20};
  m.options.max_steps = 3;

  OrchestratorOptions opts;
  opts.adaptive.enabled = true;
  opts.adaptive.seeds_per_round = 3;
  opts.adaptive.max_extra_seeds = 3;
  const OrchestratorReport report = run_orchestrated(expand(m), opts);
  ASSERT_EQ(report.checkpoint.cells.size(), 1u);
  const std::vector<unsigned> want = {10, 20, 21, 22, 23};  // continues after max base seed
  EXPECT_EQ(report.checkpoint.cells[0].seeds_done, want);
}

}  // namespace
}  // namespace lumi::campaign
