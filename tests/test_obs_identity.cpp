// The telemetry determinism fence, as a differential test: campaign reports
// and checkpoints must be byte-identical with telemetry fully enabled
// (metrics registry + trace spans + progress meter) and fully disabled,
// across thread counts.  This is what lets --metrics-out/--trace-out ship
// default-off yet provably result-inert (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/campaign/campaign.hpp"
#include "src/campaign/orchestrate.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/progress.hpp"
#include "src/obs/trace_event.hpp"
#include "src/trace/report.hpp"

namespace lumi::campaign {
namespace {

Matrix small_matrix() {
  Matrix m;
  m.sections = {"4.2.1", "4.3.1"};
  m.rows = {4, 6, 2};
  m.cols = {4, 6, 2};
  m.schedulers = {SchedKind::Fsync, SchedKind::SsyncRandom};
  m.seeds = {7, 8};
  return m;
}

std::string temp_path(const char* name) { return testing::TempDir() + name; }

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Turns the whole telemetry stack on for one scope: metrics registry,
/// installed trace writer, and a forced progress meter sampling into a
/// discarded temp stream.
class FullTelemetry {
 public:
  FullTelemetry(std::size_t jobs, std::size_t cells)
      : trace_(testing::TempDir() + "obs_identity_trace.json"), sink_(std::tmpfile()) {
    obs::Registry::global().reset();
    obs::Registry::global().set_enabled(true);
    obs::TraceWriter::install(&trace_);
    obs::ProgressMeter::Options opts;
    opts.total_jobs = jobs;
    opts.total_cells = cells;
    opts.interval_seconds = 0.01;  // sample aggressively while the run lasts
    opts.force = true;
    opts.out = sink_;
    meter_.emplace(opts);
  }
  ~FullTelemetry() {
    meter_.reset();
    obs::TraceWriter::install(nullptr);
    obs::Registry::global().set_enabled(false);
    obs::Registry::global().reset();
    if (sink_ != nullptr) std::fclose(sink_);
  }

 private:
  obs::TraceWriter trace_;
  std::FILE* sink_;
  std::optional<obs::ProgressMeter> meter_;
};

TEST(ObsIdentity, CampaignReportBytesMatchAcrossTelemetryAndThreads) {
  const Expansion expansion = expand(small_matrix());
  ASSERT_FALSE(obs::Registry::global().enabled());
  const std::string want_csv = campaign_csv(run_campaign(expansion, 1, 0));
  const std::string want_json = campaign_json(run_campaign(expansion, 1, 0));
  for (unsigned threads : {1u, 2u, 4u}) {
    FullTelemetry telemetry(expansion.jobs.size(), expansion.cells.size());
    const CampaignSummary summary = run_campaign(expansion, threads, 0);
    EXPECT_EQ(campaign_csv(summary), want_csv) << "threads=" << threads;
    EXPECT_EQ(campaign_json(summary), want_json) << "threads=" << threads;
    // Telemetry actually ran — this differential is not vacuous.
    const obs::MetricsSnapshot s = obs::Registry::global().snapshot();
    EXPECT_EQ(s.counter_or("campaign.jobs_done"),
              static_cast<long long>(expansion.jobs.size()));
    EXPECT_EQ(s.counter_or("campaign.cells_done"),
              static_cast<long long>(expansion.cells.size()));
  }
}

TEST(ObsIdentity, CheckpointBytesMatchAcrossTelemetryAndThreads) {
  const Expansion expansion = expand(small_matrix());

  OrchestratorOptions base;
  base.flush_seconds = 60.0;  // final flush only: a stable bytes-on-disk target

  const std::string off_path = temp_path("obs_identity_off.ckpt");
  std::remove(off_path.c_str());
  base.checkpoint_path = off_path;
  base.threads = 1;
  ASSERT_FALSE(obs::Registry::global().enabled());
  const OrchestratorReport want = run_orchestrated(expansion, base);
  const std::string want_bytes = slurp(off_path);
  const std::string want_json = campaign_json(want.summary);
  ASSERT_FALSE(want_bytes.empty());

  for (unsigned threads : {1u, 3u}) {
    const std::string on_path = temp_path("obs_identity_on.ckpt");
    std::remove(on_path.c_str());
    OrchestratorOptions opts = base;
    opts.checkpoint_path = on_path;
    opts.threads = threads;
    FullTelemetry telemetry(expansion.jobs.size(), expansion.cells.size());
    const OrchestratorReport got = run_orchestrated(expansion, opts);
    EXPECT_EQ(slurp(on_path), want_bytes) << "threads=" << threads;
    EXPECT_EQ(campaign_json(got.summary), want_json) << "threads=" << threads;
    EXPECT_GT(obs::Registry::global().snapshot().counter_or("orchestrate.checkpoint_flushes"),
              0);
  }
}

TEST(ObsIdentity, AnomalyCaptureLeavesReportBytesUntouched) {
  // Starve the budget so (nearly) every job is anomalous: capture fires for
  // real, yet CSV/JSON must stay byte-identical to the capture-off run at
  // every thread count — the flight recorder is result-inert by design.
  Matrix m = small_matrix();
  m.options.max_steps = 5;
  const Expansion expansion = expand(m);
  ASSERT_FALSE(obs::Registry::global().enabled());
  const CampaignSummary off = run_campaign(expansion, 1, 0);
  ASSERT_GT(off.total.failures, 0);  // the differential is not vacuous
  const std::string want_csv = campaign_csv(off);
  const std::string want_json = campaign_json(off);

  for (unsigned threads : {1u, 2u, 4u}) {
    const std::string dir = testing::TempDir() + "obs_identity_capture_" +
                            std::to_string(threads);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const AnomalyCapture capture{dir, 4};
    FullTelemetry telemetry(expansion.jobs.size(), expansion.cells.size());
    const CampaignSummary summary = run_campaign(expansion, threads, 0, &capture);
    EXPECT_EQ(campaign_csv(summary), want_csv) << "threads=" << threads;
    EXPECT_EQ(campaign_json(summary), want_json) << "threads=" << threads;
    // Capture actually happened, and honored the limit.
    std::size_t files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      EXPECT_EQ(entry.path().extension(), ".lumirec");
      ++files;
    }
    EXPECT_GT(files, 0u) << "threads=" << threads;
    EXPECT_LE(files, 4u) << "threads=" << threads;
  }
}

TEST(ObsIdentity, AnomalyCaptureLeavesCheckpointBytesUntouched) {
  Matrix m = small_matrix();
  m.options.max_steps = 5;
  const Expansion expansion = expand(m);

  OrchestratorOptions base;
  base.flush_seconds = 60.0;
  const std::string off_path = temp_path("obs_identity_capture_off.ckpt");
  std::remove(off_path.c_str());
  base.checkpoint_path = off_path;
  base.threads = 1;
  const std::string want_bytes = slurp((run_orchestrated(expansion, base), off_path));
  ASSERT_FALSE(want_bytes.empty());

  for (unsigned threads : {1u, 3u}) {
    const std::string on_path = temp_path("obs_identity_capture_on.ckpt");
    std::remove(on_path.c_str());
    const std::string dir = testing::TempDir() + "obs_identity_orch_capture";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    OrchestratorOptions opts = base;
    opts.checkpoint_path = on_path;
    opts.threads = threads;
    opts.record_anomalies = {dir, 2};
    run_orchestrated(expansion, opts);
    EXPECT_EQ(slurp(on_path), want_bytes) << "threads=" << threads;
    EXPECT_FALSE(std::filesystem::is_empty(dir)) << "threads=" << threads;
  }
}

TEST(ObsIdentity, ResumeSkipsSurfaceInMetricsNotInReports) {
  const Expansion expansion = expand(small_matrix());
  const std::string path = temp_path("obs_identity_resume.ckpt");
  std::remove(path.c_str());
  OrchestratorOptions opts;
  opts.checkpoint_path = path;
  opts.threads = 2;
  opts.flush_seconds = 60.0;
  const std::string want_json = campaign_json(run_orchestrated(expansion, opts).summary);

  FullTelemetry telemetry(expansion.jobs.size(), expansion.cells.size());
  const OrchestratorReport resumed = run_orchestrated(expansion, opts);
  EXPECT_EQ(resumed.jobs_skipped, expansion.jobs.size());
  EXPECT_EQ(campaign_json(resumed.summary), want_json);
  const obs::MetricsSnapshot s = obs::Registry::global().snapshot();
  EXPECT_EQ(s.counter_or("orchestrate.resume_skips"),
            static_cast<long long>(expansion.jobs.size()));
  EXPECT_EQ(s.counter_or("campaign.jobs_done"), 0);  // nothing re-ran
  EXPECT_EQ(s.counter_or("campaign.cells_done"),
            static_cast<long long>(expansion.cells.size()));
}

}  // namespace
}  // namespace lumi::campaign
