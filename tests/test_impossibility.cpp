// Theorem 1 demonstrations: a fair SSYNC adversary defeats two-robot phi=1
// algorithms, while the paper's three-robot phi=1 algorithm withstands every
// fair SSYNC schedule on the same grids.
#include "src/analysis/impossibility.hpp"

#include <gtest/gtest.h>

#include "src/algorithms/algorithms.hpp"

namespace lumi {
namespace {

using enum Color;

TEST(Impossibility, TwoRobotPhi1PairLosesInSsync) {
  // Algorithm 3 solves the task under FSYNC with k=2, phi=1; Theorem 1 says
  // no such algorithm survives the SSYNC adversary.
  const Algorithm alg = algorithms::algorithm3();
  const AdversaryResult r = find_ssync_adversary(alg, Grid(4, 4));
  EXPECT_TRUE(r.adversary_wins) << r.summary;
}

TEST(Impossibility, NaiveSweepPairLosesInSsync) {
  // A hand-rolled two-robot phi=1 sweeping pair (W leads, G chases).
  Algorithm naive;
  naive.name = "naive-sweep-k2";
  naive.model = Synchrony::Ssync;
  naive.phi = 1;
  naive.num_colors = 2;
  naive.chirality = Chirality::Common;
  naive.min_rows = 2;
  naive.min_cols = 3;
  naive.initial_robots = {{{0, 0}, G}, {{0, 1}, W}};
  naive.rules.push_back(
      RuleBuilder("R1", W).cell("W", {G}).cell("E", CellPattern::empty()).moves(Dir::East).build());
  naive.rules.push_back(RuleBuilder("R2", G).cell("E", {W}).moves(Dir::East).build());
  naive.rules.push_back(RuleBuilder("R3", W)
                            .cell("W", {G})
                            .cell("E", CellPattern::wall())
                            .cell("S", CellPattern::empty())
                            .moves(Dir::South)
                            .build());
  naive.validate();
  const AdversaryResult r = find_ssync_adversary(naive, Grid(4, 4));
  EXPECT_TRUE(r.adversary_wins) << r.summary;
}

TEST(Impossibility, ThreeRobotPhi1AlgorithmSurvives) {
  // Algorithm 10 (k=3, phi=1) is SSYNC-correct: no node can be defended.
  const Algorithm alg = algorithms::algorithm10();
  const AdversaryResult r = find_ssync_adversary(alg, Grid(3, 3));
  EXPECT_FALSE(r.adversary_wins) << "node (" << r.protected_node.row << ","
                                 << r.protected_node.col << "): " << r.summary;
}

TEST(Impossibility, SingleNodeQuery) {
  const Algorithm alg = algorithms::algorithm3();
  // The adversary can certainly defend some node of a 5x5 grid; ask for the
  // center explicitly.
  const AdversaryResult r = check_protected_node(alg, Grid(5, 5), {2, 2});
  EXPECT_TRUE(r.adversary_wins) << r.summary;
  EXPECT_TRUE(r.via_terminal || r.via_fair_cycle);
}

TEST(Impossibility, InitialOccupationIsNotDefendable) {
  const Algorithm alg = algorithms::algorithm3();
  const AdversaryResult r = check_protected_node(alg, Grid(4, 4), {0, 0});
  EXPECT_FALSE(r.adversary_wins);
  EXPECT_NE(r.summary.find("initial configuration"), std::string::npos);
}

}  // namespace
}  // namespace lumi
