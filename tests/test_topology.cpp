// Topology subsystem: ring/torus wraparound neighbor tables, hole and
// obstacle wall masks, the seeded mask generator's properties (connectivity,
// determinism, rejection of disconnected masks), spec round-trips, the
// plain-grid-through-Topology differential, and the campaign-level contract
// (expansion axis, checkpoint round-trip, shard/merge byte-identity, warm
// start identity).
#include "src/topo/topology.hpp"

#include <gtest/gtest.h>

#include <set>

#include "src/algorithms/algorithms.hpp"
#include "src/algorithms/registry.hpp"
#include "src/campaign/campaign.hpp"
#include "src/campaign/checkpoint.hpp"
#include "src/campaign/orchestrate.hpp"
#include "src/campaign/shard.hpp"
#include "src/engine/runner.hpp"
#include "src/trace/report.hpp"

namespace lumi {
namespace {

using enum Color;

// --- neighbor tables: ring --------------------------------------------------

TEST(Ring, WrapsEastWestOnly) {
  const Topology ring = Topology::ring(5);
  EXPECT_EQ(ring.rows(), 1);
  EXPECT_EQ(ring.cols(), 5);
  EXPECT_EQ(ring.reachable_nodes(), 5);
  EXPECT_EQ(ring.family(), Topology::Family::Ring);

  // The seam is a real edge, in both directions.
  EXPECT_EQ(ring.step({0, 4}, Dir::East), (std::optional<Vec>{{0, 0}}));
  EXPECT_EQ(ring.step({0, 0}, Dir::West), (std::optional<Vec>{{0, 4}}));
  // No vertical neighbors: a 1 x n ring is the classic cycle.
  EXPECT_EQ(ring.step({0, 2}, Dir::North), std::nullopt);
  EXPECT_EQ(ring.step({0, 2}, Dir::South), std::nullopt);
  // Every node has exactly two neighbors.
  for (int c = 0; c < 5; ++c) {
    int degree = 0;
    for (Dir d : kAllDirs) degree += ring.step({0, c}, d).has_value() ? 1 : 0;
    EXPECT_EQ(degree, 2);
  }
  // Out-of-box column coordinates designate wrapped nodes.
  EXPECT_TRUE(ring.contains({0, 7}));
  EXPECT_EQ(ring.canonical_index({0, 7}), 2);
  EXPECT_EQ(ring.canonical_index({0, -1}), 4);
  EXPECT_FALSE(ring.contains({1, 0}));
  EXPECT_TRUE(ring.are_adjacent({0, 0}, {0, 4}));
  EXPECT_FALSE(ring.are_adjacent({0, 0}, {0, 2}));
}

// --- neighbor tables: torus -------------------------------------------------

TEST(Torus, WrapsBothAxes) {
  const Topology torus = Topology::torus(3, 4);
  EXPECT_EQ(torus.reachable_nodes(), 12);
  // Every coordinate designates a node; there is no border and no end node.
  EXPECT_TRUE(torus.contains({-1, -1}));
  EXPECT_EQ(torus.canonicalize({-1, -1}), (Vec{2, 3}));
  EXPECT_EQ(torus.canonicalize({3, 4}), (Vec{0, 0}));
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_FALSE(torus.is_end_node({r, c}));
      int degree = 0;
      for (Dir d : kAllDirs) degree += torus.step({r, c}, d).has_value() ? 1 : 0;
      EXPECT_EQ(degree, 4);
    }
  }
  EXPECT_EQ(torus.step({0, 0}, Dir::North), (std::optional<Vec>{{2, 0}}));
  EXPECT_EQ(torus.step({2, 0}, Dir::South), (std::optional<Vec>{{0, 0}}));
  EXPECT_EQ(torus.step({0, 3}, Dir::East), (std::optional<Vec>{{0, 0}}));
  EXPECT_TRUE(torus.are_adjacent({0, 0}, {2, 0}));  // seam edge
}

// --- holes ------------------------------------------------------------------

TEST(Holes, CenteredHoleIsWalledAndCounted) {
  const Topology holes = Topology::with_hole(6, 6);  // 2x2 hole at (2,2)
  EXPECT_EQ(holes.spec(), "holes:2x2@2x2");
  EXPECT_EQ(holes.reachable_nodes(), 32);
  EXPECT_TRUE(holes.has_walls());
  for (const Vec v : {Vec{2, 2}, Vec{2, 3}, Vec{3, 2}, Vec{3, 3}}) {
    EXPECT_FALSE(holes.contains(v)) << v.row << "," << v.col;
    EXPECT_EQ(holes.canonical_index(v), -1);
  }
  EXPECT_TRUE(holes.contains({1, 2}));
  // Stepping into the hole fails like stepping off the border does.
  EXPECT_EQ(holes.step({1, 2}, Dir::South), std::nullopt);
  EXPECT_EQ(holes.step({1, 2}, Dir::North), (std::optional<Vec>{{0, 2}}));
  EXPECT_FALSE(holes.is_node_index(holes.index({2, 2})));
}

TEST(Holes, MustBeStrictlyInterior) {
  EXPECT_THROW(Topology::with_hole(4, 4, 0, 1, 1, 1), std::invalid_argument);  // touches top
  EXPECT_THROW(Topology::with_hole(4, 4, 1, 1, 3, 1), std::invalid_argument);  // reaches bottom
  EXPECT_THROW(Topology::with_hole(2, 5), std::invalid_argument);  // no interior
  EXPECT_NO_THROW(Topology::with_hole(3, 3, 1, 1, 1, 1));
}

// --- obstacle generator properties -----------------------------------------

TEST(Obstacles, GeneratedWorldsAreAlwaysConnected) {
  for (unsigned seed = 1; seed <= 20; ++seed) {
    const Topology topo = Topology::obstacles(8, 8, 15, seed);
    // Reconstruct the free-node set through the public API and BFS it.
    std::set<int> free;
    for (int i = 0; i < topo.num_nodes(); ++i) {
      if (topo.is_node_index(i)) free.insert(i);
    }
    ASSERT_EQ(static_cast<int>(free.size()), topo.reachable_nodes());
    std::vector<int> stack = {*free.begin()};
    std::set<int> seen = {*free.begin()};
    while (!stack.empty()) {
      const Vec v = topo.node(stack.back());
      stack.pop_back();
      for (Dir d : kAllDirs) {
        const std::optional<Vec> n = topo.step(v, d);
        if (n && seen.insert(topo.index(*n)).second) stack.push_back(topo.index(*n));
      }
    }
    EXPECT_EQ(seen, free) << "disconnected world escaped the validator, seed " << seed;
  }
}

TEST(Obstacles, DeterministicInSeedAndDistinctAcrossSeeds) {
  const Topology a = Topology::obstacles(8, 8, 15, 7);
  const Topology b = Topology::obstacles(8, 8, 15, 7);
  EXPECT_EQ(a, b);  // same seed, same mask, bit for bit
  bool any_differ = false;
  for (unsigned seed = 1; seed <= 8; ++seed) {
    any_differ = any_differ || !(Topology::obstacles(8, 8, 15, seed) == a);
  }
  EXPECT_TRUE(any_differ);  // the seed actually drives the mask
}

TEST(Obstacles, AnchorRegionStaysClearAndDensityHonored) {
  const Topology topo = Topology::obstacles(8, 8, 15, 3);
  // The NW 3x3 anchor (where Table-1 initial placements live) is never
  // walled, so every paper algorithm can start on any generated world.
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_TRUE(topo.contains({r, c}));
  }
  // 15% of the 64 - 9 eligible cells, rounded down.
  EXPECT_EQ(topo.reachable_nodes(), 64 - (64 - 9) * 15 / 100);
}

TEST(Obstacles, ValidatorRejectsDisconnectedMasks) {
  // A full-height wall column splits a 4x5 grid: the validator must say no.
  std::vector<std::uint8_t> split(20, 0);
  for (int r = 0; r < 4; ++r) split[static_cast<std::size_t>(r * 5 + 2)] = 1;
  EXPECT_FALSE(mask_connected(4, 5, split, false, false));
  // With east-west wraparound the same wall column is bypassed around the
  // seam, so the free nodes reconnect.
  EXPECT_TRUE(mask_connected(4, 5, split, false, true));
  // All-wall masks have no free node to explore.
  EXPECT_FALSE(mask_connected(2, 2, {1, 1, 1, 1}, false, false));
  EXPECT_TRUE(mask_connected(2, 2, {0, 0, 0, 0}, false, false));
}

TEST(Obstacles, PercentOutOfRangeThrows) {
  EXPECT_THROW(Topology::obstacles(8, 8, -1, 1), std::invalid_argument);
  EXPECT_THROW(Topology::obstacles(8, 8, 91, 1), std::invalid_argument);
  EXPECT_NO_THROW(Topology::obstacles(8, 8, 0, 1));
}

// --- spec grammar -----------------------------------------------------------

TEST(TopologySpec, RoundTripsForEveryFamily) {
  for (const char* spec : {"grid", "ring", "torus", "holes", "holes:2x3@1x2",
                           "obstacles:15:7"}) {
    const Topology t = make_topology(spec, 6, 7);
    EXPECT_EQ(make_topology(t.spec(), 6, 7), t) << spec;
  }
  // The auto-hole canonicalizes to its explicit spelling.
  EXPECT_EQ(make_topology("holes", 6, 7).spec(), "holes:2x2@2x2");
}

TEST(TopologySpec, MalformedSpecsThrow) {
  for (const char* spec : {"", "gridd", "obstacles", "obstacles:abc:1", "obstacles:15",
                           "holes:2", "holes:2x", "holes:2x3@9", "torus:1"}) {
    EXPECT_THROW(make_topology(spec, 6, 6), std::invalid_argument) << spec;
    EXPECT_FALSE(topology_spec_ok(spec, 6, 6)) << spec;
  }
  EXPECT_TRUE(topology_spec_ok("torus", 6, 6));
}

// --- wraparound end to end --------------------------------------------------

/// Single-robot walker usable on 1-row worlds: moves toward an empty
/// guard-frame East cell.  Never terminates; tests cap the budget and check
/// coverage, which pins the seam edges end to end.
Algorithm ring_walker() {
  Algorithm alg;
  alg.name = "ring-walker";
  alg.model = Synchrony::Fsync;
  alg.phi = 1;
  alg.num_colors = 1;
  alg.chirality = Chirality::Common;
  alg.min_rows = 1;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}};
  alg.rules.push_back(RuleBuilder("Walk", G).cell("E", CellPattern::empty()).moves(Dir::East).build());
  alg.validate();
  return alg;
}

TEST(RingRun, WalkerCoversTheWholeCycle) {
  const Algorithm alg = ring_walker();
  FsyncScheduler sched;
  RunOptions opts;
  opts.max_steps = 16;  // ring length 7: one lap plus change
  const RunResult r = run_sync(alg, Topology::ring(7), sched, opts);
  // The walker never disables, so the budget ends the run — but by then the
  // seam has been crossed and every ring node visited.
  EXPECT_FALSE(r.terminated);
  EXPECT_EQ(r.visited_count(), 7);
  EXPECT_TRUE(r.explored_all == false);  // explored_all only set on termination
}

TEST(TorusRun, WalkerLapsItsRow) {
  const Algorithm alg = ring_walker();
  FsyncScheduler sched;
  RunOptions opts;
  opts.max_steps = 10;
  const RunResult r = run_sync(alg, Topology::torus(3, 5), sched, opts);
  // On a borderless world the first-listed behavior is the guard-frame East
  // under the identity rotation, every instant: the robot laps row 0.
  EXPECT_EQ(r.visited_count(), 5);
}

TEST(HolesRun, PaperAlgorithmTerminatesWithReachableCoverage) {
  // Algorithm 1 (FSYNC, phi=2) on a holed world: termination is not
  // guaranteed by the paper's proof (the hole adds interior walls), so only
  // the coverage bookkeeping is pinned: visited counts reachable nodes and
  // never wall cells.
  const Algorithm alg = algorithms::algorithm1();
  FsyncScheduler sched;
  RunOptions opts;
  opts.max_steps = 5'000;
  const Topology topo = Topology::with_hole(6, 6);
  const RunResult r = run_sync(alg, topo, sched, opts);
  EXPECT_LE(r.visited_count(), topo.reachable_nodes());
  for (const Vec v : {Vec{2, 2}, Vec{2, 3}, Vec{3, 2}, Vec{3, 3}}) {
    EXPECT_FALSE(r.visited[static_cast<std::size_t>(topo.index(v))]);
  }
}

// --- plain-grid differential ------------------------------------------------

TEST(PlainGridDifferential, TopologySpecMatchesSeedGridForAllTableEntries) {
  // The seed Grid constructor and the "grid" spec must drive identical runs
  // for every Table-1 entry — the plain path through Topology *is* the seed
  // path (golden traces elsewhere pin its absolute behavior).
  for (const std::string& section : campaign::all_sections()) {
    const Algorithm alg = algorithms::entry(section).make();
    const int rows = alg.min_rows + 2;
    const int cols = alg.min_cols + 2;
    FsyncScheduler s1, s2;
    const RunResult a = run_sync(alg, Grid(rows, cols), s1);
    const RunResult b = run_sync(alg, make_topology("grid", rows, cols), s2);
    EXPECT_EQ(a.terminated, b.terminated) << section;
    EXPECT_EQ(a.explored_all, b.explored_all) << section;
    EXPECT_EQ(a.visited, b.visited) << section;
    EXPECT_EQ(a.stats.instants, b.stats.instants) << section;
    EXPECT_EQ(a.stats.moves, b.stats.moves) << section;
    EXPECT_EQ(a.stats.color_changes, b.stats.color_changes) << section;
  }
}

TEST(PlainGridDifferential, ZeroDensityObstaclesRunLikeThePlainGrid) {
  // obstacles:0:S has an empty mask: runs must be decision-identical to the
  // plain grid even though the family (and spec) differ.
  const Algorithm alg = algorithms::entry("4.3.5").make();
  SsyncRandomScheduler s1(11), s2(11);
  const RunResult a = run_sync(alg, Grid(5, 6), s1);
  const RunResult b = run_sync(alg, Topology::obstacles(5, 6, 0, 1), s2);
  EXPECT_EQ(a.terminated, b.terminated);
  EXPECT_EQ(a.visited, b.visited);
  EXPECT_EQ(a.stats.instants, b.stats.instants);
  EXPECT_EQ(a.stats.moves, b.stats.moves);
}

// --- campaign integration ---------------------------------------------------

TEST(TopologyCampaign, ExpansionSweepsTheTopologyAxis) {
  campaign::Matrix m;
  m.sections = {"4.2.1"};
  m.rows = {6, 6, 1};
  m.cols = {6, 6, 1};
  m.topologies = {"grid", "torus", "holes"};
  m.schedulers = {campaign::SchedKind::Fsync};
  const campaign::Expansion e = campaign::expand(m);
  ASSERT_EQ(e.cells.size(), 3u);
  EXPECT_EQ(e.cells[0].topo, "grid");
  EXPECT_EQ(e.cells[1].topo, "torus");
  EXPECT_EQ(e.cells[2].topo, "holes:2x2@2x2");  // canonicalized at expansion
  EXPECT_EQ(e.jobs.size(), 3u);
}

TEST(TopologyCampaign, IncompatibleTopologiesAreSkippedOrThrow) {
  campaign::Matrix m;
  m.sections = {"4.2.1"};
  m.rows = {2, 2, 1};  // no interior for a hole at 2 rows
  m.cols = {6, 6, 1};
  m.topologies = {"holes"};
  m.schedulers = {campaign::SchedKind::Fsync};
  EXPECT_TRUE(campaign::expand(m).cells.empty());
  m.skip_incompatible = false;
  EXPECT_THROW(campaign::expand(m), std::invalid_argument);
}

TEST(TopologyCampaign, WalledInitialPlacementIsSkipped) {
  // Section 4.2.6 (Algorithm 4) starts a robot on (1,1); a hole there must
  // drop the combination rather than crash the job.
  campaign::Matrix m;
  m.sections = {"4.2.6"};
  m.rows = {6, 6, 1};
  m.cols = {6, 6, 1};
  m.topologies = {"holes:1x1@1x1", "grid"};
  m.schedulers = {campaign::SchedKind::Fsync};
  const campaign::Expansion e = campaign::expand(m);
  for (const campaign::Cell& cell : e.cells) EXPECT_NE(cell.topo, "holes:1x1@1x1");
  ASSERT_FALSE(e.cells.empty());
}

TEST(TopologyCampaign, CheckpointRoundTripsTopologyCells) {
  campaign::Matrix m;
  m.sections = {"4.3.1"};
  m.rows = {4, 4, 1};
  m.cols = {5, 5, 1};
  m.topologies = {"torus", "obstacles:10:3"};
  m.schedulers = {campaign::SchedKind::SsyncRandom};
  m.seeds = {1, 2};
  m.options.max_steps = 300;
  const campaign::Expansion e = campaign::expand(m);
  ASSERT_EQ(e.cells.size(), 2u);
  campaign::Checkpoint ck = campaign::make_checkpoint(e);
  ck.cells[0].acc.add(campaign::run_cell(e.cells[0], 1, e.options));
  ck.cells[0].seeds_done = {1};
  const std::string text = campaign::checkpoint_serialize(ck);
  const campaign::Checkpoint back = campaign::checkpoint_parse(text);
  EXPECT_EQ(back, ck);
  EXPECT_EQ(back.cells[0].cell.topo, "torus");
  EXPECT_EQ(campaign::checkpoint_serialize(back), text);  // canonical

  // The topology axis is part of the fingerprint: the same matrix over the
  // plain grid is a different campaign.
  campaign::Matrix plain = m;
  plain.topologies = {"grid", "obstacles:10:3"};
  EXPECT_NE(campaign::expansion_fingerprint(e),
            campaign::expansion_fingerprint(campaign::expand(plain)));
}

TEST(TopologyCampaign, ShardMergeByteIdentityAcrossTopologies) {
  campaign::Matrix m;
  m.sections = {"4.2.1", "4.3.1"};
  m.rows = {4, 6, 2};
  m.cols = {5, 5, 1};
  m.topologies = {"grid", "torus", "holes"};
  m.schedulers = {campaign::SchedKind::Fsync, campaign::SchedKind::SsyncRandom};
  m.seeds = {1, 2};
  m.options.max_steps = 400;  // tori never terminate; keep the jobs bounded
  const campaign::Expansion e = campaign::expand(m);
  ASSERT_GT(e.jobs.size(), 4u);

  const campaign::CampaignSummary direct = campaign::run_campaign(e, 1);
  const std::string want_csv = campaign_csv(direct);
  const std::string want_json = campaign_json(direct);
  EXPECT_NE(want_csv.find("torus"), std::string::npos);

  constexpr unsigned kShards = 3;
  campaign::Checkpoint merged;
  for (unsigned i = 0; i < kShards; ++i) {
    campaign::Checkpoint piece =
        campaign::run_orchestrated(campaign::shard(e, {i, kShards}), {}).checkpoint;
    if (i == 0) {
      merged = std::move(piece);
    } else {
      campaign::checkpoint_merge(merged, piece);
    }
  }
  EXPECT_EQ(campaign_csv(campaign::checkpoint_summary(merged)), want_csv);
  EXPECT_EQ(campaign_json(campaign::checkpoint_summary(merged)), want_json);
}

TEST(TopologyCampaign, WarmStartHashDistinguishesPermutedRobots) {
  // The warm-start table is keyed by robot index, so two configurations
  // holding the same anonymous placement with permuted robot indices are the
  // same placement (equal canonical hashes) but different warm identities —
  // adopting across them would hand robot i robot j's verdicts.
  const Grid g(3, 4);
  Configuration a(g, {Robot{{0, 0}, Color::G}, Robot{{0, 1}, Color::W}});
  Configuration b(g, {Robot{{0, 1}, Color::W}, Robot{{0, 0}, Color::G}});
  EXPECT_EQ(a.canonical_hash(), b.canonical_hash());
  EXPECT_NE(indexed_placement_hash(a), indexed_placement_hash(b));
  EXPECT_EQ(indexed_placement_hash(a), indexed_placement_hash(a));
}

TEST(TopologyCampaign, WarmStartDoesNotChangeResultsAndCountsReuse) {
  const campaign::Cell cell{"4.3.1", 5, 6, campaign::SchedKind::SsyncRandom};
  RunOptions opts;
  WarmStartSlot slot;
  const RunResult cold1 = campaign::run_cell(cell, 1, opts);
  const RunResult cold2 = campaign::run_cell(cell, 2, opts);
  const RunResult warm1 = campaign::run_cell(cell, 1, opts, &slot);  // publishes
  const RunResult warm2 = campaign::run_cell(cell, 2, opts, &slot);  // adopts
  EXPECT_EQ(warm1.stats.match_warm_reused, 0);
  EXPECT_GT(warm2.stats.match_warm_reused, 0);
  // Identical results either way; only the diagnostics counters differ.
  EXPECT_EQ(cold1.visited, warm1.visited);
  EXPECT_EQ(cold2.visited, warm2.visited);
  EXPECT_EQ(cold1.stats.instants, warm1.stats.instants);
  EXPECT_EQ(cold2.stats.instants, warm2.stats.instants);
  EXPECT_EQ(cold2.stats.moves, warm2.stats.moves);
  EXPECT_EQ(cold2.terminated, warm2.terminated);
  // An async cell exercises the AsyncEngine warm path too.
  const campaign::Cell acell{"4.3.5", 4, 5, campaign::SchedKind::AsyncRandom};
  WarmStartSlot aslot;
  const RunResult acold = campaign::run_cell(acell, 3, opts);
  (void)campaign::run_cell(acell, 1, opts, &aslot);
  const RunResult awarm = campaign::run_cell(acell, 3, opts, &aslot);
  EXPECT_GT(awarm.stats.match_warm_reused, 0);
  EXPECT_EQ(acold.visited, awarm.visited);
  EXPECT_EQ(acold.stats.instants, awarm.stats.instants);
}

}  // namespace
}  // namespace lumi
