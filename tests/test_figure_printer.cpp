// Golden-fixture pin of the paper-figure printer: every available figure's
// ASCII rendering must match tests/fixtures/figures/figNN.txt byte for byte.
// The figures are documentation artifacts (README points readers at them),
// so silent drift — a changed excerpt window, a renumbered step, a different
// caption — is a regression even when the underlying run is still correct.
// To regenerate after an intentional change: write each print_figure output
// to tests/fixtures/figures/fig%02d.txt and review the diff.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/trace/figure_printer.hpp"

#ifndef LUMI_SOURCE_DIR
#define LUMI_SOURCE_DIR "."
#endif

namespace lumi {
namespace {

std::string golden_path(int figure) {
  char name[32];
  std::snprintf(name, sizeof(name), "/fig%02d.txt", figure);
  return std::string(LUMI_SOURCE_DIR) + "/tests/fixtures/figures" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FigurePrinter, AvailableFiguresAreThePaperRange) {
  const std::vector<int> figs = available_figures();
  ASSERT_FALSE(figs.empty());
  EXPECT_TRUE(std::is_sorted(figs.begin(), figs.end()));
  EXPECT_EQ(std::adjacent_find(figs.begin(), figs.end()), figs.end());  // unique
  EXPECT_EQ(figs.front(), 1);
  EXPECT_EQ(figs.back(), 25);
}

TEST(FigurePrinter, EveryFigureMatchesItsGolden) {
  for (int fig : available_figures()) {
    SCOPED_TRACE("figure " + std::to_string(fig));
    const std::string want = slurp(golden_path(fig));
    ASSERT_FALSE(want.empty()) << "missing golden " << golden_path(fig);
    std::ostringstream out;
    ASSERT_TRUE(print_figure(out, fig));
    EXPECT_EQ(out.str(), want);
  }
}

TEST(FigurePrinter, UnknownIdReturnsFalseAndWritesNothing) {
  for (int fig : {0, -1, 26, 99}) {
    std::ostringstream out;
    EXPECT_FALSE(print_figure(out, fig)) << "figure " << fig;
    EXPECT_TRUE(out.str().empty()) << "figure " << fig;
  }
}

TEST(FigurePrinter, RenderingIsDeterministic) {
  for (int fig : {4, 17, 25}) {
    std::ostringstream a, b;
    ASSERT_TRUE(print_figure(a, fig));
    ASSERT_TRUE(print_figure(b, fig));
    EXPECT_EQ(a.str(), b.str()) << "figure " << fig;
  }
}

}  // namespace
}  // namespace lumi
