// Property tests for the core model-theoretic invariant: robots have no
// global compass, so *everything* must commute with the dihedral symmetries
// of the grid.  If a configuration is transformed by a grid symmetry g (a
// rotation for chirality-aware algorithms, any of the 8 for chirality-free
// ones), every robot's set of enabled behaviors must be exactly the
// g-image of its behaviors in the original configuration.
//
// This invariant is what the hand-written reconstructions lean on when they
// argue "this guard cannot match in the rotated frame"; checking it
// mechanically over random configurations guards the matching engine
// against frame-handling regressions.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "src/algorithms/registry.hpp"
#include "src/core/matching.hpp"

namespace lumi {
namespace {

/// Applies a grid symmetry to a node of a rows x cols grid.  The symmetry
/// acts about the grid center; for rotations by 90/270 degrees the grid
/// dimensions swap.
Vec transform_node(Vec v, Sym g, int rows, int cols) {
  // Work in doubled coordinates so the center is integral.
  const int cr = rows - 1;
  const int cc = cols - 1;
  Vec d{2 * v.row - cr, 2 * v.col - cc};  // relative to center, doubled
  d = apply(g, d);
  const bool swapped = g.rot % 2 == 1;
  const int nr = swapped ? cols : rows;
  const int nc = swapped ? rows : cols;
  return {(d.row + nr - 1) / 2, (d.col + nc - 1) / 2};
}

Grid transform_grid(const Grid& grid, Sym g) {
  return g.rot % 2 == 1 ? Grid(grid.cols(), grid.rows()) : grid;
}

Configuration transform_config(const Configuration& config, Sym g) {
  std::vector<Robot> robots;
  for (const Robot& r : config.robots()) {
    robots.push_back(Robot{transform_node(r.pos, g, config.grid().rows(), config.grid().cols()),
                           r.color});
  }
  return Configuration(transform_grid(config.grid(), g), std::move(robots));
}

/// Canonical multiset of behaviors: sorted (color, move) pairs.
std::vector<std::pair<int, int>> behavior_set(const std::vector<Action>& actions) {
  std::vector<std::pair<int, int>> out;
  for (const Action& a : actions) {
    out.emplace_back(static_cast<int>(a.new_color),
                     a.move.has_value() ? static_cast<int>(*a.move) : -1);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<int, int>> transformed_behavior_set(const std::vector<Action>& actions,
                                                          Sym g) {
  std::vector<std::pair<int, int>> out;
  for (const Action& a : actions) {
    out.emplace_back(static_cast<int>(a.new_color),
                     a.move.has_value() ? static_cast<int>(apply(g, *a.move)) : -1);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Configuration random_config(const Grid& grid, int robots, int colors, std::mt19937& rng) {
  std::uniform_int_distribution<int> node(0, grid.num_nodes() - 1);
  std::uniform_int_distribution<int> color(0, colors - 1);
  std::vector<Robot> placed;
  for (int i = 0; i < robots; ++i) {
    placed.push_back(Robot{grid.node(node(rng)), static_cast<Color>(color(rng))});
  }
  return Configuration(grid, std::move(placed));
}

class EquivarianceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EquivarianceTest, MatchingCommutesWithGridSymmetries) {
  const Algorithm alg = algorithms::entry(GetParam()).make();
  std::mt19937 rng(0xC0FFEE ^ std::hash<std::string>{}(GetParam()));
  const Grid grid(5, 6);
  // With common chirality only rotations are symmetries of the *model*;
  // without chirality all eight are.
  const auto syms = alg.symmetries();

  for (int trial = 0; trial < 60; ++trial) {
    const Configuration config = random_config(grid, alg.num_robots(), alg.num_colors, rng);
    for (Sym g : syms) {
      const Configuration image = transform_config(config, g);
      for (int robot = 0; robot < config.num_robots(); ++robot) {
        const auto original = enabled_actions(alg, config, robot);
        const auto mapped = enabled_actions(alg, image, robot);
        EXPECT_EQ(transformed_behavior_set(original, g), behavior_set(mapped))
            << "robot " << robot << " in " << config.to_string() << " under sym rot="
            << int(g.rot) << " mirror=" << g.mirror;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTable1, EquivarianceTest,
                         ::testing::Values("4.2.1", "4.2.2", "4.2.5", "4.2.6", "4.2.7",
                                           "4.3.1", "4.3.2", "4.3.3", "4.3.4", "4.3.5",
                                           "4.3.6"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return "sec" + name;
                         });

TEST(EquivarianceHelpers, NodeTransformRoundTrips) {
  const Grid grid(4, 7);
  for (Sym g : all_symmetries()) {
    const Grid image = transform_grid(grid, g);
    std::vector<bool> seen(static_cast<std::size_t>(grid.num_nodes()), false);
    for (int i = 0; i < grid.num_nodes(); ++i) {
      const Vec v = transform_node(grid.node(i), g, grid.rows(), grid.cols());
      ASSERT_TRUE(image.contains(v)) << "sym maps node off-grid";
      ASSERT_FALSE(seen[static_cast<std::size_t>(image.index(v))]) << "sym not injective";
      seen[static_cast<std::size_t>(image.index(v))] = true;
    }
  }
}

TEST(EquivarianceHelpers, AdjacencyPreserved) {
  const Grid grid(5, 5);
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> node(0, grid.num_nodes() - 1);
  for (int trial = 0; trial < 100; ++trial) {
    const Vec a = grid.node(node(rng));
    const Vec b = grid.node(node(rng));
    for (Sym g : all_symmetries()) {
      EXPECT_EQ(manhattan(a, b),
                manhattan(transform_node(a, g, 5, 5), transform_node(b, g, 5, 5)));
    }
  }
}

}  // namespace
}  // namespace lumi
