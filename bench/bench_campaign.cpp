// Measures campaign throughput (jobs/sec) single-threaded vs. all cores on a
// fixed matrix, and reports the speedup.  Exits nonzero if the parallel run
// produces a different merged summary than the single-threaded one (the
// determinism contract).
//
// Usage: bench_campaign [--large] [--json PATH]
// --json writes the measured rates as machine-readable JSON (the campaign
// companion to BENCH_matching.json).
#include <cstdio>
#include <string>
#include <thread>

#include "src/campaign/campaign.hpp"
#include "src/trace/report.hpp"

namespace {

bool same_summary(const lumi::campaign::CampaignSummary& a,
                  const lumi::campaign::CampaignSummary& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (!(a.cells[i].cell == b.cells[i].cell)) return false;
    if (!(a.cells[i].acc == b.cells[i].acc)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lumi::campaign;

  Matrix matrix;
  matrix.sections = paper_sections();
  matrix.rows = {4, 8, 2};
  matrix.cols = {4, 8, 2};
  matrix.schedulers.assign(std::begin(kAllSchedKinds), std::end(kAllSchedKinds));
  matrix.seeds = {1, 2};
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--large") {
      matrix.rows = {4, 16, 4};
      matrix.cols = {4, 16, 4};
      matrix.seeds = {1, 2, 3, 4};
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: bench_campaign [--large] [--json PATH]\n");
      return 2;
    }
  }

  const Expansion expansion = expand(matrix);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("bench_campaign: %zu cells, %zu jobs, hardware_concurrency=%u\n",
              expansion.cells.size(), expansion.jobs.size(), hw);

  const CampaignSummary single = run_campaign(expansion, 1);
  const double single_rate = static_cast<double>(single.jobs) / single.wall_seconds;
  std::printf("  threads=1:  %.2fs  %8.1f jobs/s\n", single.wall_seconds, single_rate);

  const CampaignSummary parallel = run_campaign(expansion, 0);
  const double parallel_rate = static_cast<double>(parallel.jobs) / parallel.wall_seconds;
  std::printf("  threads=%-2u: %.2fs  %8.1f jobs/s\n", parallel.threads, parallel.wall_seconds,
              parallel_rate);
  std::printf("  speedup: %.2fx on %u threads\n", parallel_rate / single_rate, parallel.threads);

  if (!same_summary(single, parallel)) {
    std::printf("FAIL: single- and multi-threaded summaries differ\n");
    return 1;
  }
  std::printf("summaries identical across thread counts: yes\n");

  if (!json_path.empty()) {
    char json[512];
    std::snprintf(json, sizeof(json),
                  "{\n"
                  "  \"jobs\": %zu,\n"
                  "  \"threads\": %u,\n"
                  "  \"single_jobs_per_sec\": %.1f,\n"
                  "  \"parallel_jobs_per_sec\": %.1f,\n"
                  "  \"parallel_speedup\": %.2f\n"
                  "}\n",
                  parallel.jobs, parallel.threads, single_rate, parallel_rate,
                  parallel_rate / single_rate);
    if (!lumi::write_text_file(json_path, json)) {
      std::printf("FAIL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
