// Measures campaign throughput (jobs/sec) single-threaded vs. all cores on a
// fixed matrix, plus the orchestration overheads (checkpoint serialization +
// atomic write, 7-way shard merge), and reports the speedup.  Exits nonzero
// if the parallel run produces a different merged summary than the
// single-threaded one (the determinism contract), or if the shard merge is
// not byte-identical to the direct run.
//
// Usage: bench_campaign [--large] [--json PATH]
// --json writes the measured rates as machine-readable JSON (the campaign
// companion to BENCH_matching.json).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/campaign/campaign.hpp"
#include "src/campaign/checkpoint.hpp"
#include "src/campaign/orchestrate.hpp"
#include "src/campaign/shard.hpp"
#include "src/trace/report.hpp"

namespace {

bool same_summary(const lumi::campaign::CampaignSummary& a,
                  const lumi::campaign::CampaignSummary& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (!(a.cells[i].cell == b.cells[i].cell)) return false;
    if (!(a.cells[i].acc == b.cells[i].acc)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lumi::campaign;

  Matrix matrix;
  matrix.sections = paper_sections();
  matrix.rows = {4, 8, 2};
  matrix.cols = {4, 8, 2};
  matrix.schedulers.assign(std::begin(kAllSchedKinds), std::end(kAllSchedKinds));
  matrix.seeds = {1, 2};
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--large") {
      matrix.rows = {4, 16, 4};
      matrix.cols = {4, 16, 4};
      matrix.seeds = {1, 2, 3, 4};
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: bench_campaign [--large] [--json PATH]\n");
      return 2;
    }
  }

  const Expansion expansion = expand(matrix);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("bench_campaign: %zu cells, %zu jobs, hardware_concurrency=%u\n",
              expansion.cells.size(), expansion.jobs.size(), hw);

  // Warm the shared compilation cache so neither timed pass pays the
  // one-time CompiledAlgorithm builds.
  run_campaign(expansion, 0);

  // The default sweep finishes in tens of milliseconds, so each
  // single-threaded mode takes the best of three passes to keep the
  // incremental-vs-recompute ratio out of timer-noise territory.
  const auto best_of_three = [](const Expansion& e) {
    CampaignSummary best = run_campaign(e, 1);
    for (int pass = 1; pass < 3; ++pass) {
      CampaignSummary again = run_campaign(e, 1);
      if (again.wall_seconds < best.wall_seconds) best = std::move(again);
    }
    return best;
  };

  // Recompute-everything baseline (the pre-incremental engine): same jobs,
  // dirty tracking off.  The summaries must be identical — the incremental
  // engine is a pure optimization.
  Expansion recompute_expansion = expansion;
  recompute_expansion.options.incremental = false;
  const CampaignSummary recompute = best_of_three(recompute_expansion);
  const double recompute_rate = static_cast<double>(recompute.jobs) / recompute.wall_seconds;
  std::printf("  threads=1 (recompute):   %.2fs  %8.1f jobs/s\n", recompute.wall_seconds,
              recompute_rate);

  const CampaignSummary single = best_of_three(expansion);
  const double single_rate = static_cast<double>(single.jobs) / single.wall_seconds;
  const double incremental_speedup = single_rate / recompute_rate;
  std::printf("  threads=1 (incremental): %.2fs  %8.1f jobs/s  (%.2fx over recompute)\n",
              single.wall_seconds, single_rate, incremental_speedup);

  if (!same_summary(single, recompute)) {
    std::printf("FAIL: incremental and recompute summaries differ\n");
    return 1;
  }
  std::printf("summaries identical with dirty tracking on and off: yes\n");

  const CampaignSummary parallel = run_campaign(expansion, 0);
  const double parallel_rate = static_cast<double>(parallel.jobs) / parallel.wall_seconds;
  std::printf("  threads=%-2u: %.2fs  %8.1f jobs/s\n", parallel.threads, parallel.wall_seconds,
              parallel_rate);
  std::printf("  speedup: %.2fx on %u threads\n", parallel_rate / single_rate, parallel.threads);

  if (!same_summary(single, parallel)) {
    std::printf("FAIL: single- and multi-threaded summaries differ\n");
    return 1;
  }
  std::printf("summaries identical across thread counts: yes\n");

  // --- orchestration overheads ----------------------------------------------
  using clock = std::chrono::steady_clock;
  const auto ms_since = [](clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  };

  // Checkpoint write: serialize + atomic-rename of the full final state,
  // i.e. the cost one periodic flush adds to a running campaign.
  const OrchestratorReport base = run_orchestrated(expansion, {});
  const std::string ckpt_path = "bench_campaign.ckpt";
  constexpr int kWriteIters = 20;
  const auto write_start = clock::now();
  for (int i = 0; i < kWriteIters; ++i) {
    if (!checkpoint_write(ckpt_path, base.checkpoint)) {
      std::printf("FAIL: cannot write %s\n", ckpt_path.c_str());
      return 1;
    }
  }
  const double checkpoint_write_ms = ms_since(write_start) / kWriteIters;
  std::remove(ckpt_path.c_str());
  std::printf("  checkpoint write: %.3f ms for %zu cells\n", checkpoint_write_ms,
              base.checkpoint.cells.size());

  // Shard merge: fold a 7-way sharding back into one summary, then verify the
  // orchestration contract end to end (byte-identical reports).
  constexpr unsigned kShards = 7;
  std::vector<Checkpoint> pieces;
  for (unsigned i = 0; i < kShards; ++i) {
    pieces.push_back(run_orchestrated(shard(expansion, {i, kShards}), {}).checkpoint);
  }
  const auto merge_start = clock::now();
  Checkpoint merged = pieces[0];
  for (unsigned i = 1; i < kShards; ++i) checkpoint_merge(merged, pieces[i]);
  const double shard_merge_ms = ms_since(merge_start);
  std::printf("  %u-way shard merge: %.3f ms\n", kShards, shard_merge_ms);
  if (lumi::campaign_csv(checkpoint_summary(merged)) != lumi::campaign_csv(single) ||
      lumi::campaign_json(checkpoint_summary(merged)) != lumi::campaign_json(single)) {
    std::printf("FAIL: merged shard reports differ from the single-process run\n");
    return 1;
  }
  std::printf("merged shard reports byte-identical to direct run: yes\n");

  if (!json_path.empty()) {
    char json[768];
    std::snprintf(json, sizeof(json),
                  "{\n"
                  "  \"jobs\": %zu,\n"
                  "  \"threads\": %u,\n"
                  "  \"recompute_jobs_per_sec\": %.1f,\n"
                  "  \"single_jobs_per_sec\": %.1f,\n"
                  "  \"incremental_speedup\": %.2f,\n"
                  "  \"parallel_jobs_per_sec\": %.1f,\n"
                  "  \"parallel_speedup\": %.2f,\n"
                  "  \"checkpoint_cells\": %zu,\n"
                  "  \"checkpoint_write_ms\": %.3f,\n"
                  "  \"shard_merge_ways\": %u,\n"
                  "  \"shard_merge_ms\": %.3f\n"
                  "}\n",
                  parallel.jobs, parallel.threads, recompute_rate, single_rate,
                  incremental_speedup, parallel_rate, parallel_rate / single_rate,
                  base.checkpoint.cells.size(), checkpoint_write_ms, kShards, shard_merge_ms);
    if (!lumi::write_text_file(json_path, json)) {
      std::printf("FAIL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
