// Measures campaign throughput (jobs/sec) single-threaded vs. all cores on a
// fixed matrix, plus the orchestration overheads (checkpoint serialization +
// atomic write, 7-way shard merge), a topology-family sweep (grid, torus,
// holes, obstacles) and the plain-grid Topology-abstraction overhead against
// a seed-grid replica.  Exits nonzero if the parallel run produces a
// different merged summary than the single-threaded one (the determinism
// contract), if the shard merge is not byte-identical to the direct run, if
// the plain-grid snapshot path costs more than 20% over the seed replica
// (a per-cell topology dispatch regression reads 2-3x; the budget leaves
// room for the fixed per-call dispatch the replica doesn't pay), if
// running with telemetry fully enabled (metrics registry + trace spans)
// costs more than 3% of jobs/s over the disabled default, or if arming
// anomaly capture (--record-anomalies) on an all-terminating matrix — where
// nothing ever records — costs more than 3% over a plain run.
//
// Usage: bench_campaign [--large] [--json PATH]
// --json writes the measured rates as machine-readable JSON (the campaign
// companion to BENCH_matching.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/algorithms/registry.hpp"
#include "src/campaign/campaign.hpp"
#include "src/campaign/checkpoint.hpp"
#include "src/campaign/orchestrate.hpp"
#include "src/campaign/shard.hpp"
#include "src/campaign/thread_pool.hpp"
#include "src/core/view.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace_event.hpp"
#include "src/topo/topology.hpp"
#include "src/trace/report.hpp"

namespace {

/// The pre-batching per-job dispatch, replicated as the baseline the batch
/// gate compares against: one single-threaded pool task per job through
/// run_cell_guarded — per-job algorithm construction, topology parse,
/// compile-cache lookup and heap-backed run tables — with the per-cell
/// warm-start slots the campaign layer has always had.  Accumulation is
/// identical to run_campaign's, so the summary must match the batched one.
lumi::campaign::CampaignSummary run_per_job(const lumi::campaign::Expansion& expansion) {
  using namespace lumi::campaign;
  const auto start = std::chrono::steady_clock::now();
  lumi::ThreadPool pool(1);
  std::vector<CampaignAccumulator> per_worker(pool.size(),
                                              CampaignAccumulator(expansion.cells.size()));
  std::vector<lumi::WarmStartSlot> warm(expansion.cells.size());
  for (const Job& job : expansion.jobs) {
    pool.submit([&expansion, &per_worker, &pool, &warm, job] {
      const std::size_t w = static_cast<std::size_t>(pool.worker_index());
      per_worker[w].add(job.cell, run_cell_guarded(expansion.cells[job.cell], job.seed,
                                                   expansion.options, &warm[job.cell]));
    });
  }
  pool.wait_idle();
  CampaignAccumulator merged(expansion.cells.size());
  for (const CampaignAccumulator& acc : per_worker) merged.merge(acc);
  CampaignSummary summary;
  summary.jobs = expansion.jobs.size();
  summary.threads = pool.size();
  summary.cells.reserve(expansion.cells.size());
  for (std::size_t i = 0; i < expansion.cells.size(); ++i) {
    summary.cells.push_back({expansion.cells[i], merged.cells()[i]});
    summary.total.merge(merged.cells()[i]);
  }
  summary.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return summary;
}

bool same_summary(const lumi::campaign::CampaignSummary& a,
                  const lumi::campaign::CampaignSummary& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (!(a.cells[i].cell == b.cells[i].cell)) return false;
    if (!(a.cells[i].acc == b.cells[i].acc)) return false;
  }
  return true;
}

/// Seed-replica world: the pre-topology Grid + Configuration data layout —
/// dimensions, a row-major occupancy array and a robot list.
struct SeedWorld {
  int rows = 0;
  int cols = 0;
  std::vector<lumi::ColorMultiset> occupancy;
  std::vector<lumi::Robot> robots;
};

/// The seed take_snapshot_into, replicated line for line: bounds check +
/// row-major occupancy lookup per kernel cell.  noinline so it sits behind a
/// call boundary exactly like the real take_snapshot_into (which lives in
/// another translation unit) — otherwise the comparison measures compiler
/// visibility, not abstraction cost.  `phi` is a runtime parameter exactly
/// as in the seed function (the measurement loop keeps it opaque): a
/// constant-phi replica would be specialized in a way the seed never was,
/// and the ratio would then charge the phi dispatch to the topology layer.
[[gnu::noinline]] void seed_take_snapshot_into(const SeedWorld& w, int robot, int phi,
                                               lumi::Snapshot& out) {
  using namespace lumi;
  const ViewKernel& kernel = ViewKernel::get(phi);
  const Robot& r = w.robots[static_cast<std::size_t>(robot)];
  out.origin = r.pos;
  out.self_color = r.color;
  out.phi = phi;
  const std::span<const Vec> offsets = kernel.offsets();
  std::uint16_t occupied = 0;
  std::uint16_t wall = 0;
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    const Vec v = r.pos + offsets[i];
    if (v.row >= 0 && v.row < w.rows && v.col >= 0 && v.col < w.cols) {
      out.cells[i] = CellContent{
          .wall = false,
          .robots = w.occupancy[static_cast<std::size_t>(v.row * w.cols + v.col)]};
      if (!out.cells[i].robots.empty()) occupied |= static_cast<std::uint16_t>(1u << i);
    } else {
      out.cells[i] = CellContent{.wall = true, .robots = {}};
      wall |= static_cast<std::uint16_t>(1u << i);
    }
  }
  out.planes = lumi::SnapshotPlanes{occupied, wall};
}

/// ns per snapshot through the Topology-backed path vs. the seed replica
/// above.  Both fill the same inline Snapshot over the same phi-2 kernel, so
/// the ratio isolates what the topology abstraction costs the plain-grid
/// hot path.  Min over several passes.
struct SnapshotOverhead {
  double topology_ns = 0.0;
  double reference_ns = 0.0;
  double ratio() const { return reference_ns > 0 ? topology_ns / reference_ns : 0.0; }
};

SnapshotOverhead measure_snapshot_overhead() {
  using namespace lumi;
  const Algorithm alg = algorithms::entry("4.2.1").make();  // phi = 2: the deep kernel
  const Grid grid(8, 8);
  const Configuration config = alg.initial_configuration(grid);

  SeedWorld world;
  world.rows = grid.rows();
  world.cols = grid.cols();
  world.occupancy.resize(static_cast<std::size_t>(grid.num_nodes()));
  world.robots.assign(config.robots().begin(), config.robots().end());
  for (const Robot& r : world.robots) {
    world.occupancy[static_cast<std::size_t>(r.pos.row * world.cols + r.pos.col)].add(r.color);
  }

  constexpr long kReps = 400'000;
  constexpr int kPasses = 5;
  const auto ns_per_rep = [](std::chrono::steady_clock::time_point start, long reps) {
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start)
               .count() /
           static_cast<double>(reps);
  };

  SnapshotOverhead out;
  Snapshot snap;
  long sink = 0;
  // Opaque to the optimizer: the replica lives in this translation unit, and
  // a compile-time-constant phi would let the compiler specialize it — a
  // luxury the real take_snapshot_into (called across the library boundary)
  // never gets for its own runtime phi argument.
  volatile int seed_phi = 2;
  for (int pass = 0; pass < kPasses; ++pass) {
    const auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < kReps; ++i) {
      take_snapshot_into(config, static_cast<int>(i & 1), 2, snap);
      sink += snap.cells[0].wall ? 1 : 0;
    }
    const double topo_ns = ns_per_rep(t0, kReps);
    if (pass == 0 || topo_ns < out.topology_ns) out.topology_ns = topo_ns;

    const auto t1 = std::chrono::steady_clock::now();
    for (long i = 0; i < kReps; ++i) {
      seed_take_snapshot_into(world, static_cast<int>(i & 1), seed_phi, snap);
      sink += snap.cells[0].wall ? 1 : 0;
    }
    const double ref_ns = ns_per_rep(t1, kReps);
    if (pass == 0 || ref_ns < out.reference_ns) out.reference_ns = ref_ns;
  }
  if (sink < 0) std::printf("impossible\n");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lumi::campaign;
  namespace obs = lumi::obs;

  Matrix matrix;
  matrix.sections = paper_sections();
  matrix.rows = {4, 8, 2};
  matrix.cols = {4, 8, 2};
  matrix.schedulers.assign(std::begin(kAllSchedKinds), std::end(kAllSchedKinds));
  matrix.seeds = {1, 2};
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--large") {
      matrix.rows = {4, 16, 4};
      matrix.cols = {4, 16, 4};
      matrix.seeds = {1, 2, 3, 4};
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: bench_campaign [--large] [--json PATH]\n");
      return 2;
    }
  }

  const Expansion expansion = expand(matrix);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("bench_campaign: %zu cells, %zu jobs, hardware_concurrency=%u\n",
              expansion.cells.size(), expansion.jobs.size(), hw);

  // Warm the shared compilation cache so neither timed pass pays the
  // one-time CompiledAlgorithm builds.
  run_campaign(expansion, 0);

  // The default sweep finishes in tens of milliseconds, so each
  // single-threaded mode takes the best of three passes to keep the
  // incremental-vs-recompute ratio out of timer-noise territory.
  const auto best_of_three = [](const Expansion& e) {
    CampaignSummary best = run_campaign(e, 1);
    for (int pass = 1; pass < 3; ++pass) {
      CampaignSummary again = run_campaign(e, 1);
      if (again.wall_seconds < best.wall_seconds) best = std::move(again);
    }
    return best;
  };

  // Recompute-everything baseline (the pre-incremental engine): same jobs,
  // dirty tracking off.  The summaries must be identical — the incremental
  // engine is a pure optimization.
  Expansion recompute_expansion = expansion;
  recompute_expansion.options.incremental = false;
  const CampaignSummary recompute = best_of_three(recompute_expansion);
  const double recompute_rate = static_cast<double>(recompute.jobs) / recompute.wall_seconds;
  std::printf("  threads=1 (recompute):   %.2fs  %8.1f jobs/s\n", recompute.wall_seconds,
              recompute_rate);

  const CampaignSummary single = best_of_three(expansion);
  const double single_rate = static_cast<double>(single.jobs) / single.wall_seconds;
  const double incremental_speedup = single_rate / recompute_rate;
  std::printf("  threads=1 (incremental): %.2fs  %8.1f jobs/s  (%.2fx over recompute)\n",
              single.wall_seconds, single_rate, incremental_speedup);

  if (!same_summary(single, recompute)) {
    std::printf("FAIL: incremental and recompute summaries differ\n");
    return 1;
  }
  std::printf("summaries identical with dirty tracking on and off: yes\n");

  const CampaignSummary parallel = run_campaign(expansion, 0);
  const double parallel_rate = static_cast<double>(parallel.jobs) / parallel.wall_seconds;
  std::printf("  threads=%-2u: %.2fs  %8.1f jobs/s\n", parallel.threads, parallel.wall_seconds,
              parallel_rate);
  std::printf("  speedup: %.2fx on %u threads\n", parallel_rate / single_rate, parallel.threads);

  if (!same_summary(single, parallel)) {
    std::printf("FAIL: single- and multi-threaded summaries differ\n");
    return 1;
  }
  std::printf("summaries identical across thread counts: yes\n");

  // --- orchestration overheads ----------------------------------------------
  using clock = std::chrono::steady_clock;
  const auto ms_since = [](clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  };

  // Checkpoint write: serialize + atomic-rename of the full final state,
  // i.e. the cost one periodic flush adds to a running campaign.
  const OrchestratorReport base = run_orchestrated(expansion, {});
  const std::string ckpt_path = "bench_campaign.ckpt";
  constexpr int kWriteIters = 20;
  const auto write_start = clock::now();
  for (int i = 0; i < kWriteIters; ++i) {
    if (!checkpoint_write(ckpt_path, base.checkpoint)) {
      std::printf("FAIL: cannot write %s\n", ckpt_path.c_str());
      return 1;
    }
  }
  const double checkpoint_write_ms = ms_since(write_start) / kWriteIters;
  std::remove(ckpt_path.c_str());
  std::printf("  checkpoint write: %.3f ms for %zu cells\n", checkpoint_write_ms,
              base.checkpoint.cells.size());

  // Shard merge: fold a 7-way sharding back into one summary, then verify the
  // orchestration contract end to end (byte-identical reports).
  constexpr unsigned kShards = 7;
  std::vector<Checkpoint> pieces;
  for (unsigned i = 0; i < kShards; ++i) {
    pieces.push_back(run_orchestrated(shard(expansion, {i, kShards}), {}).checkpoint);
  }
  const auto merge_start = clock::now();
  Checkpoint merged = pieces[0];
  for (unsigned i = 1; i < kShards; ++i) checkpoint_merge(merged, pieces[i]);
  const double shard_merge_ms = ms_since(merge_start);
  std::printf("  %u-way shard merge: %.3f ms\n", kShards, shard_merge_ms);
  if (lumi::campaign_csv(checkpoint_summary(merged)) != lumi::campaign_csv(single) ||
      lumi::campaign_json(checkpoint_summary(merged)) != lumi::campaign_json(single)) {
    std::printf("FAIL: merged shard reports differ from the single-process run\n");
    return 1;
  }
  std::printf("merged shard reports byte-identical to direct run: yes\n");

  // --- topology-family sweep ------------------------------------------------
  // One campaign per family over the same sections and dimensions.  Tori have
  // no border, so the paper algorithms never see a wall and run to the step
  // budget; the budget is kept small so the sweep measures throughput, not
  // patience.  Jobs/s across families tracks what walls, wraparound and the
  // connectivity-validated obstacle masks cost end to end.
  struct TopoRate {
    const char* name;
    const char* spec;
    double jobs_per_sec = 0.0;
    std::size_t jobs = 0;
  };
  TopoRate topo_rates[] = {{"grid", "grid"},
                           {"torus", "torus"},
                           {"holes", "holes"},
                           {"obstacles", "obstacles:15:1"}};
  for (TopoRate& t : topo_rates) {
    Matrix topo_matrix;
    topo_matrix.sections = {"4.2.1", "4.3.1"};
    topo_matrix.rows = {6, 8, 2};
    topo_matrix.cols = {6, 8, 2};
    topo_matrix.topologies = {t.spec};
    topo_matrix.schedulers.assign(std::begin(kAllSchedKinds), std::end(kAllSchedKinds));
    topo_matrix.seeds = {1, 2};
    topo_matrix.options.max_steps = 2'000;
    const CampaignSummary s = run_campaign(topo_matrix, 0);
    t.jobs = s.jobs;
    t.jobs_per_sec = s.wall_seconds > 0 ? static_cast<double>(s.jobs) / s.wall_seconds : 0.0;
    std::printf("  topology %-10s %8.1f jobs/s (%zu jobs)\n", t.name, t.jobs_per_sec, t.jobs);
  }

  // --- batched micro-runs ---------------------------------------------------
  // A 4x4 FSYNC micro-matrix with 64 replicas per cell: the regime batching
  // exists for, where per-job setup (algorithm construction, topology parse,
  // compile-cache lookup) rivals the runs themselves.  FSYNC expands to one
  // job per cell, so the replicas are added by hand — the scheduler ignores
  // the seed, making them genuine micro-run repeats.  Batched (automatic
  // sizing, hoisted setup, arena-backed) vs the per-job dispatch baseline
  // (run_per_job above — one task per job, everything per job), single
  // thread, median of nine paired passes; summaries must stay identical.
  Matrix micro;
  micro.sections = paper_sections();
  micro.rows = {4, 4, 1};
  micro.cols = {4, 4, 1};
  micro.schedulers = {SchedKind::Fsync};
  Expansion micro_expansion = expand(micro);
  {
    std::vector<Job> replicated;
    replicated.reserve(micro_expansion.jobs.size() * 64);
    for (const Job& job : micro_expansion.jobs) {
      for (unsigned s = 1; s <= 64; ++s) replicated.push_back({job.cell, s});
    }
    micro_expansion.jobs = std::move(replicated);
  }
  // Paired passes: each pass runs the per-job leg immediately followed by
  // the batched leg, so both see the same machine conditions (hosts switch
  // frequency regimes on a seconds scale; a pass pair takes milliseconds).
  // An attempt takes the median per-pass ratio: a pair that straddles a
  // regime flip lands at an extreme — in either direction — and the median
  // discards it, where a fastest-run-per-leg rule inherits the skew whenever
  // only one leg happens to sample the fast regime.  An attempt whose median
  // still misses the floor is re-measured (twice at most): the gate is a
  // regression detector, not a measurement — broken setup hoisting reads
  // ~1.0x and fails every attempt, while co-tenant interference depressing
  // one whole attempt does not survive a retry.
  struct MicroPass {
    CampaignSummary per_job;
    CampaignSummary batched;
    double ratio = 0.0;  // batched jobs/s over per-job jobs/s (same job count)
  };
  MicroPass micro_median;  // best attempt's median pair
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::vector<MicroPass> micro_passes(9);
    for (MicroPass& p : micro_passes) {
      p.per_job = run_per_job(micro_expansion);
      p.batched = run_campaign(micro_expansion, 1, 0);
      p.ratio = p.per_job.wall_seconds / p.batched.wall_seconds;
    }
    std::sort(micro_passes.begin(), micro_passes.end(),
              [](const MicroPass& x, const MicroPass& y) { return x.ratio < y.ratio; });
    MicroPass& median = micro_passes[micro_passes.size() / 2];
    if (median.ratio > micro_median.ratio) micro_median = std::move(median);
    if (micro_median.ratio >= 1.5) break;
    std::printf("  micro median %.2fx below the floor; re-measuring\n", micro_median.ratio);
  }
  const CampaignSummary& micro_per_job = micro_median.per_job;
  const CampaignSummary& micro_batched = micro_median.batched;
  const double micro_per_job_rate =
      static_cast<double>(micro_per_job.jobs) / micro_per_job.wall_seconds;
  const double micro_batched_rate =
      static_cast<double>(micro_batched.jobs) / micro_batched.wall_seconds;
  const double batch_speedup = micro_median.ratio;
  std::printf("  micro 4x4 fsync per-job: %8.1f jobs/s\n", micro_per_job_rate);
  std::printf("  micro 4x4 fsync batched: %8.1f jobs/s  (%.2fx)\n", micro_batched_rate,
              batch_speedup);
  if (!same_summary(micro_per_job, micro_batched)) {
    std::printf("FAIL: batched and per-job micro summaries differ\n");
    return 1;
  }
  std::printf("batched and per-job summaries identical: yes\n");

  // Arena footprint of one micro-run: how much scratch a batch item bumps
  // before the inter-item rewind (steady-state batches do no heap traffic).
  lumi::Arena arena;
  run_cell_batch(micro_expansion.cells[0], std::vector<unsigned>{1, 2, 3, 4},
                 micro_expansion.options, nullptr, &arena,
                 [](std::size_t, const lumi::RunResult&) {});
  const std::size_t arena_high_water = arena.high_water();
  std::printf("  arena high water: %zu bytes/run, %zu chunks retained\n", arena_high_water,
              arena.chunk_count());

  // --- plain-grid abstraction overhead --------------------------------------
  const SnapshotOverhead overhead = measure_snapshot_overhead();
  std::printf("  snapshot: topology %.1f ns vs seed replica %.1f ns (%.3fx)\n",
              overhead.topology_ns, overhead.reference_ns, overhead.ratio());

  // --- telemetry overhead and observed summaries ----------------------------
  // The metrics registry and trace spans are compiled into the hot paths
  // (disabled = a relaxed load plus branch per record, a thread_local null
  // check per span), so leaving them ENABLED must stay near-free too.  Same
  // paired methodology as the batch gate: each pass runs the disabled leg
  // immediately followed by the fully-enabled leg (registry on + a trace
  // writer installed, buffering in memory) on the micro matrix; an attempt
  // takes the median per-pass ratio, and an attempt below the floor is
  // re-measured (twice at most).  The floor pins telemetry-enabled jobs/s
  // within 3% of disabled.  Summaries must stay identical — telemetry
  // observes results, never feeds them (the obs-isolation lint fences the
  // report/checkpoint serializers themselves).
  obs::Registry& registry = obs::Registry::global();
  double telemetry_ratio = 0.0;
  bool telemetry_summaries_match = true;
  for (int attempt = 0; attempt < 3 && telemetry_ratio < 0.97; ++attempt) {
    std::vector<double> ratios;
    ratios.reserve(9);
    for (int pass = 0; pass < 9; ++pass) {
      registry.set_enabled(false);
      const CampaignSummary off = run_campaign(micro_expansion, 1, 0);
      registry.reset();
      registry.set_enabled(true);
      {
        lumi::obs::TraceWriter trace("bench_campaign.trace.json");  // never flushed
        lumi::obs::TraceWriter::install(&trace);
        const CampaignSummary on = run_campaign(micro_expansion, 1, 0);
        lumi::obs::TraceWriter::install(nullptr);
        telemetry_summaries_match = telemetry_summaries_match && same_summary(off, on);
        ratios.push_back(off.wall_seconds / on.wall_seconds);
      }
      registry.set_enabled(false);
    }
    std::sort(ratios.begin(), ratios.end());
    const double median = ratios[ratios.size() / 2];
    if (median > telemetry_ratio) telemetry_ratio = median;
    if (telemetry_ratio < 0.97) {
      std::printf("  telemetry median %.3fx below the floor; re-measuring\n", telemetry_ratio);
    }
  }
  registry.reset();
  std::printf("  telemetry-enabled micro throughput: %.3fx of disabled\n", telemetry_ratio);
  if (!telemetry_summaries_match) {
    std::printf("FAIL: summaries differ with telemetry on vs off\n");
    return 1;
  }
  std::printf("summaries identical with telemetry on and off: yes\n");

  // --- flight-recorder off-path overhead ------------------------------------
  // The recorder hooks in the engines are a null-pointer test per instant
  // when no recorder is attached; --record-anomalies additionally checks each
  // finished job's failure string in the campaign sink.  Both must stay
  // near-free for the common case: every job of the micro matrix terminates,
  // so a capture-armed pass records nothing and measures pure hook cost.
  // Same paired-median methodology as the gates above.
  double recorder_ratio = 0.0;
  bool recorder_summaries_match = true;
  const AnomalyCapture bench_capture{"bench_campaign.recordings", 8};
  for (int attempt = 0; attempt < 3 && recorder_ratio < 0.97; ++attempt) {
    std::vector<double> ratios;
    ratios.reserve(9);
    for (int pass = 0; pass < 9; ++pass) {
      const CampaignSummary off = run_campaign(micro_expansion, 1, 0);
      const CampaignSummary armed = run_campaign(micro_expansion, 1, 0, &bench_capture);
      recorder_summaries_match = recorder_summaries_match && same_summary(off, armed);
      ratios.push_back(off.wall_seconds / armed.wall_seconds);
    }
    std::sort(ratios.begin(), ratios.end());
    const double median = ratios[ratios.size() / 2];
    if (median > recorder_ratio) recorder_ratio = median;
    if (recorder_ratio < 0.97) {
      std::printf("  recorder median %.3fx below the floor; re-measuring\n", recorder_ratio);
    }
  }
  std::printf("  capture-armed micro throughput: %.3fx of plain\n", recorder_ratio);
  if (!recorder_summaries_match) {
    std::printf("FAIL: summaries differ with anomaly capture armed vs off\n");
    return 1;
  }
  std::printf("summaries identical with anomaly capture armed and off: yes\n");

  // Observed telemetry for the JSON artifact: one parallel campaign for the
  // work-stealing picture, one orchestrated run at the fastest flush
  // interval for checkpoint-flush latency as the flusher actually sees it.
  registry.set_enabled(true);
  run_campaign(expansion, 0);
  const obs::MetricsSnapshot pool_snap = registry.snapshot();
  const long long pool_executed = pool_snap.counter_prefix_sum("pool.worker.", ".executed");
  const long long pool_stolen = pool_snap.counter_prefix_sum("pool.worker.", ".stolen");
  const double pool_steal_share =
      pool_executed > 0 ? static_cast<double>(pool_stolen) / static_cast<double>(pool_executed)
                        : 0.0;
  registry.reset();

  OrchestratorOptions obs_opts;
  obs_opts.checkpoint_path = "bench_campaign.obs.ckpt";
  obs_opts.flush_seconds = 0.01;  // the flusher's clamp floor: flush eagerly
  run_orchestrated(expansion, obs_opts);
  std::remove(obs_opts.checkpoint_path.c_str());
  const obs::MetricsSnapshot flush_snap = registry.snapshot();
  const long long flush_count = flush_snap.counter_or("orchestrate.checkpoint_flushes");
  long long flush_ms_sum = 0;
  for (const obs::HistogramValue& h : flush_snap.histograms) {
    if (h.name == "orchestrate.flush_ms") flush_ms_sum = h.sum;
  }
  const double flush_ms_mean =
      flush_count > 0 ? static_cast<double>(flush_ms_sum) / static_cast<double>(flush_count)
                      : 0.0;
  registry.set_enabled(false);
  registry.reset();
  std::printf("  pool steals: %lld of %lld tasks (%.1f%%)\n", pool_stolen, pool_executed,
              100.0 * pool_steal_share);
  std::printf("  checkpoint flushes: %lld, mean %.1f ms\n", flush_count, flush_ms_mean);

  if (!json_path.empty()) {
    char json[3072];
    std::snprintf(json, sizeof(json),
                  "{\n"
                  "  \"jobs\": %zu,\n"
                  "  \"threads\": %u,\n"
                  "  \"micro_per_job_jobs_per_sec\": %.1f,\n"
                  "  \"micro_batched_jobs_per_sec\": %.1f,\n"
                  "  \"batch_speedup\": %.2f,\n"
                  "  \"arena_high_water_bytes\": %zu,\n"
                  "  \"recompute_jobs_per_sec\": %.1f,\n"
                  "  \"single_jobs_per_sec\": %.1f,\n"
                  "  \"incremental_speedup\": %.2f,\n"
                  "  \"parallel_jobs_per_sec\": %.1f,\n"
                  "  \"parallel_speedup\": %.2f,\n"
                  "  \"checkpoint_cells\": %zu,\n"
                  "  \"checkpoint_write_ms\": %.3f,\n"
                  "  \"shard_merge_ways\": %u,\n"
                  "  \"shard_merge_ms\": %.3f,\n"
                  "  \"topo_grid_jobs_per_sec\": %.1f,\n"
                  "  \"topo_torus_jobs_per_sec\": %.1f,\n"
                  "  \"topo_holes_jobs_per_sec\": %.1f,\n"
                  "  \"topo_obstacles_jobs_per_sec\": %.1f,\n"
                  "  \"grid_topology_snapshot_ns\": %.1f,\n"
                  "  \"grid_reference_snapshot_ns\": %.1f,\n"
                  "  \"grid_topology_overhead\": %.3f,\n"
                  "  \"telemetry_enabled_ratio\": %.3f,\n"
                  "  \"recorder_off_ratio\": %.3f,\n"
                  "  \"pool_tasks_executed\": %lld,\n"
                  "  \"pool_tasks_stolen\": %lld,\n"
                  "  \"pool_steal_share\": %.3f,\n"
                  "  \"checkpoint_flush_count\": %lld,\n"
                  "  \"checkpoint_flush_ms_mean\": %.3f\n"
                  "}\n",
                  parallel.jobs, parallel.threads, micro_per_job_rate, micro_batched_rate,
                  batch_speedup, arena_high_water, recompute_rate, single_rate,
                  incremental_speedup, parallel_rate, parallel_rate / single_rate,
                  base.checkpoint.cells.size(), checkpoint_write_ms, kShards, shard_merge_ms,
                  topo_rates[0].jobs_per_sec, topo_rates[1].jobs_per_sec,
                  topo_rates[2].jobs_per_sec, topo_rates[3].jobs_per_sec,
                  overhead.topology_ns, overhead.reference_ns, overhead.ratio(),
                  telemetry_ratio, recorder_ratio, pool_executed, pool_stolen, pool_steal_share,
                  flush_count, flush_ms_mean);
    if (!lumi::write_text_file(json_path, json)) {
      std::printf("FAIL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Gate last, after the JSON artifact exists for diagnosis.
  if (batch_speedup < 1.5) {
    std::printf("FAIL: batched 4x4 FSYNC micro-runs below the 1.5x jobs/s floor over the "
                "per-job baseline (%.2fx)\n",
                batch_speedup);
    return 1;
  }
  std::printf("batched micro-run throughput above the 1.5x floor: yes\n");
  // Budget history: the gate shipped at 1.05x when the snapshot fill took
  // ~20ns.  The phi-specialized fills cut that to ~15ns, which shrank the
  // denominator under the fixed per-call dispatch the library pays and the
  // single-purpose replica doesn't (plain/phi branch, runtime-phi kernel
  // lookup: ~1.5-2ns, now ~10% of a snapshot instead of ~7%).  1.2x keeps
  // catching what the gate exists for — a reintroduced per-CELL topology
  // dispatch reads 2-3x — without failing on the fixed per-call overhead
  // that faster fills can only magnify.
  if (overhead.ratio() > 1.2) {
    std::printf("FAIL: plain-grid Topology snapshot path exceeds the 20%% overhead budget "
                "(%.3fx over the seed replica)\n",
                overhead.ratio());
    return 1;
  }
  std::printf("plain-grid Topology overhead within the 20%% budget: yes\n");
  if (telemetry_ratio < 0.97) {
    std::printf("FAIL: telemetry-enabled micro throughput below 97%% of disabled (%.3fx)\n",
                telemetry_ratio);
    return 1;
  }
  std::printf("telemetry-enabled throughput within the 3%% budget: yes\n");
  if (recorder_ratio < 0.97) {
    std::printf("FAIL: capture-armed micro throughput below 97%% of plain (%.3fx)\n",
                recorder_ratio);
    return 1;
  }
  std::printf("recorder off-path overhead within the 3%% budget: yes\n");
  return 0;
}
