// Measures campaign throughput (jobs/sec) single-threaded vs. all cores on a
// fixed matrix, and reports the speedup.  Exits nonzero if the parallel run
// produces a different merged summary than the single-threaded one (the
// determinism contract).
#include <cstdio>
#include <thread>

#include "src/campaign/campaign.hpp"

namespace {

bool same_summary(const lumi::campaign::CampaignSummary& a,
                  const lumi::campaign::CampaignSummary& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    if (!(a.cells[i].cell == b.cells[i].cell)) return false;
    if (!(a.cells[i].acc == b.cells[i].acc)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lumi::campaign;

  Matrix matrix;
  matrix.sections = paper_sections();
  matrix.rows = {4, 8, 2};
  matrix.cols = {4, 8, 2};
  matrix.schedulers.assign(std::begin(kAllSchedKinds), std::end(kAllSchedKinds));
  matrix.seeds = {1, 2};
  if (argc > 1 && std::string(argv[1]) == "--large") {
    matrix.rows = {4, 16, 4};
    matrix.cols = {4, 16, 4};
    matrix.seeds = {1, 2, 3, 4};
  }

  const Expansion expansion = expand(matrix);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("bench_campaign: %zu cells, %zu jobs, hardware_concurrency=%u\n",
              expansion.cells.size(), expansion.jobs.size(), hw);

  const CampaignSummary single = run_campaign(expansion, 1);
  const double single_rate = static_cast<double>(single.jobs) / single.wall_seconds;
  std::printf("  threads=1:  %.2fs  %8.1f jobs/s\n", single.wall_seconds, single_rate);

  const CampaignSummary parallel = run_campaign(expansion, 0);
  const double parallel_rate = static_cast<double>(parallel.jobs) / parallel.wall_seconds;
  std::printf("  threads=%-2u: %.2fs  %8.1f jobs/s\n", parallel.threads, parallel.wall_seconds,
              parallel_rate);
  std::printf("  speedup: %.2fx on %u threads\n", parallel_rate / single_rate, parallel.threads);

  if (!same_summary(single, parallel)) {
    std::printf("FAIL: single- and multi-threaded summaries differ\n");
    return 1;
  }
  std::printf("summaries identical across thread counts: yes\n");
  return 0;
}
