// Theorem 1 (Section 3) demonstration: synthesizes fair SSYNC adversaries
// against two-robot phi=1 algorithms and shows the paper's three-robot
// phi=1 algorithm withstands every fair SSYNC schedule on the same grids.
#include <cstdio>

#include "src/algorithms/algorithms.hpp"
#include "src/analysis/impossibility.hpp"

namespace {

using namespace lumi;

Algorithm naive_sweep_pair() {
  using enum Color;
  Algorithm alg;
  alg.name = "naive-sweep-k2-phi1";
  alg.model = Synchrony::Ssync;
  alg.phi = 1;
  alg.num_colors = 2;
  alg.chirality = Chirality::Common;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}, {{0, 1}, W}};
  alg.rules.push_back(
      RuleBuilder("R1", W).cell("W", {G}).cell("E", CellPattern::empty()).moves(Dir::East).build());
  alg.rules.push_back(RuleBuilder("R2", G).cell("E", {W}).moves(Dir::East).build());
  alg.rules.push_back(RuleBuilder("R3", W)
                          .cell("W", {G})
                          .cell("E", CellPattern::wall())
                          .cell("S", CellPattern::empty())
                          .moves(Dir::South)
                          .build());
  alg.validate();
  return alg;
}

int report(const Algorithm& alg, const Grid& grid, bool expect_win) {
  const AdversaryResult r = find_ssync_adversary(alg, grid);
  std::printf("%-28s grid %-6s k=%d phi=%d : ", alg.name.c_str(), grid.to_string().c_str(),
              alg.num_robots(), alg.phi);
  if (r.adversary_wins) {
    std::printf("adversary WINS, keeps (%d,%d) unvisited (%s; %ld states)\n",
                r.protected_node.row, r.protected_node.col,
                r.via_terminal ? "stuck terminal" : "fair cycle", r.states);
  } else {
    std::printf("adversary loses: %s (%ld states)\n", r.summary.c_str(), r.states);
  }
  return r.adversary_wins == expect_win ? 0 : 1;
}

}  // namespace

int main() {
  using lumi::algorithms::algorithm10;
  using lumi::algorithms::algorithm3;
  std::printf("Theorem 1: with phi=1 and k=2, no algorithm solves terminating grid\n");
  std::printf("exploration under SSYNC.  Constructive check on candidate algorithms:\n\n");
  int failures = 0;
  failures += report(algorithm3(), lumi::Grid(4, 4), /*expect_win=*/true);
  failures += report(algorithm3(), lumi::Grid(4, 5), /*expect_win=*/true);
  failures += report(naive_sweep_pair(), lumi::Grid(4, 4), /*expect_win=*/true);
  failures += report(naive_sweep_pair(), lumi::Grid(5, 5), /*expect_win=*/true);
  std::printf("\nControl (k=3 matches the Section 3 lower bound; Algorithm 10):\n\n");
  failures += report(algorithm10(), lumi::Grid(3, 3), /*expect_win=*/false);
  failures += report(algorithm10(), lumi::Grid(3, 4), /*expect_win=*/false);
  std::printf("\n%s\n", failures == 0 ? "All impossibility demonstrations as expected."
                                      : "FAILURE: unexpected outcome(s).");
  return failures == 0 ? 0 : 1;
}
