// Regenerates the paper's Table 1: for every row, reports the bounds and
// *measures* the upper bound by running the implementing algorithm across a
// verification sweep (FSYNC for the FSYNC block; FSYNC+SSYNC+ASYNC for the
// ASYNC block).  Exits nonzero if any row fails verification.
#include <cstdio>

#include "src/algorithms/registry.hpp"
#include "src/analysis/verifier.hpp"

namespace {

const char* check_mark(bool ok) { return ok ? "yes" : "NO"; }

}  // namespace

int main() {
  using namespace lumi;
  std::printf("Table 1: Terminating grid exploration with myopic robots\n");
  std::printf("(lower bounds from [5] and the paper's Section 3; upper bounds measured by\n");
  std::printf(" running this library's reconstruction across a grid sweep)\n\n");
  std::printf("%-8s %-6s %-4s %-3s %-10s %-7s %-7s %-8s %-9s %-9s %s\n", "section", "model",
              "phi", "l", "chirality", "lower", "upper", "optimal", "runs", "avgmoves",
              "verified");

  bool all_ok = true;
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    const Algorithm alg = e.make();
    SweepOptions opts = default_sweep_for(alg);
    opts.max_rows = 6;
    opts.max_cols = 7;
    opts.seeds = 4;
    const SweepReport report = verify_sweep(alg, opts);
    all_ok = all_ok && report.ok();
    const double avg_moves =
        report.runs > 0 ? static_cast<double>(report.total_moves) / report.runs : 0.0;
    std::printf("%-8s %-6s %-4d %-3d %-10s %-2d %-4s %-7d %-8s %-9ld %-9.1f %s\n",
                e.section.c_str(), to_string(e.synchrony).c_str(), e.phi, e.num_colors,
                to_string(e.chirality).c_str(), e.lower_bound, e.lower_bound_source.c_str(),
                e.upper_bound, e.optimal ? "yes(*)" : "no", report.runs, avg_moves,
                check_mark(report.ok()));
    if (!report.ok()) std::printf("  !! %s\n", report.to_string().c_str());
  }
  std::printf("\n%s\n", all_ok ? "All 14 Table-1 rows verified."
                               : "FAILURE: some rows did not verify.");
  return all_ok ? 0 : 1;
}
