// Hot-path benchmark: guard matching (naive sparse scan vs. compiled dense
// tables) and snapshotting over every Table-1 algorithm, plus a small
// campaign for end-to-end jobs/sec and an incremental-vs-recompute engine
// comparison (single-threaded, with verdict reuse counters).  Emits
// machine-readable BENCH_matching.json so the perf trajectory is tracked
// across PRs, and exits nonzero if the compiled matcher is less than 2x the
// naive one.  With --incremental it additionally fails below a 1.3x jobs/s
// floor of the dirty-tracking engine over the recompute-everything baseline
// (the acceptance floor for the incremental optimization).
//
// Usage: bench_matching [--incremental] [output.json]
// (default output: BENCH_matching.json)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/algorithms/registry.hpp"
#include "src/campaign/campaign.hpp"
#include "src/core/matching.hpp"
#include "src/trace/report.hpp"

namespace {

using namespace lumi;

struct Workload {
  Algorithm alg;
  std::shared_ptr<const CompiledAlgorithm> compiled;
  Configuration config;
  std::vector<Snapshot> snapshots;  ///< one per robot, pre-taken
};

std::vector<Workload> build_workloads() {
  std::vector<Workload> out;
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    Algorithm alg = e.make();
    const Grid grid(alg.min_rows + 2, alg.min_cols + 2);
    Configuration config = alg.initial_configuration(grid);
    Workload w{std::move(alg), nullptr, std::move(config), {}};
    w.compiled = CompiledAlgorithm::get(w.alg);
    for (int r = 0; r < w.config.num_robots(); ++r) {
      w.snapshots.push_back(take_snapshot(w.config, r, w.alg.phi));
    }
    out.push_back(std::move(w));
  }
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// ns per enabled_actions evaluation over all workloads and robots.
template <typename MatchFn>
double measure_ns_per_match(const std::vector<Workload>& workloads, long iterations,
                            MatchFn&& match) {
  long matches = 0;
  long sink = 0;  // data dependency so the calls cannot be optimized away
  const auto start = std::chrono::steady_clock::now();
  for (long it = 0; it < iterations; ++it) {
    for (const Workload& w : workloads) {
      for (const Snapshot& snap : w.snapshots) {
        sink += match(w, snap);
        matches += 1;
      }
    }
  }
  const double elapsed = seconds_since(start);
  if (sink < 0) std::printf("impossible\n");
  return elapsed * 1e9 / static_cast<double>(matches);
}

/// ns per whole guard-plane group sweep (every self-color lane block of
/// every workload snapshot) through `mask_fn` — the prefilter's share of a
/// match, isolated from the dense row walks it guards.
template <typename MaskFn>
double measure_ns_per_guard_sweep(const std::vector<Workload>& workloads, long iterations,
                                  MaskFn&& mask_fn) {
  long sweeps = 0;
  long sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (long it = 0; it < iterations; ++it) {
    for (const Workload& w : workloads) {
      for (const Snapshot& snap : w.snapshots) {
        const SnapshotPlanes planes = snapshot_planes(snap, w.compiled->kernel_size());
        const GuardGroup& group = w.compiled->guard_group(snap.self_color);
        for (std::size_t base = 0; base < group.lanes; base += kGuardLaneBlock) {
          sink += static_cast<long>(mask_fn(group, planes, base));
        }
        sweeps += 1;
      }
    }
  }
  const double elapsed = seconds_since(start);
  if (sink < 0) std::printf("impossible\n");
  return elapsed * 1e9 / static_cast<double>(sweeps);
}

/// Single-threaded sweep of every expansion job; returns jobs/s plus the
/// summed dirty-tracker counters (zero when `incremental` is off).  With
/// `warm_start`, each cell shares one WarmStartSlot across its seeds (the
/// campaign runner's wiring), so only the first run of a cell pays the
/// tracker's initial full compute.
struct EngineMeasure {
  double jobs_per_sec = 0.0;
  long reused = 0;
  long recomputed = 0;
  long warm_reused = 0;
};

EngineMeasure measure_engine(const campaign::Expansion& expansion, bool incremental,
                             bool warm_start = false) {
  RunOptions options = expansion.options;
  options.incremental = incremental;
  std::vector<WarmStartSlot> slots(warm_start ? expansion.cells.size() : 0);
  EngineMeasure out;
  const auto start = std::chrono::steady_clock::now();
  for (const campaign::Job& job : expansion.jobs) {
    const RunResult r = campaign::run_cell(expansion.cells[job.cell], job.seed, options,
                                           warm_start ? &slots[job.cell] : nullptr);
    out.reused += r.stats.match_reused;
    out.recomputed += r.stats.match_recomputed;
    out.warm_reused += r.stats.match_warm_reused;
  }
  out.jobs_per_sec = static_cast<double>(expansion.jobs.size()) / seconds_since(start);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool gate_incremental = false;
  std::string out_path = "BENCH_matching.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--incremental") {
      gate_incremental = true;
    } else if (arg.rfind("--", 0) == 0) {
      // A typoed flag must not be mistaken for the output path: that would
      // silently skip the CI perf gate.
      std::printf("usage: bench_matching [--incremental] [output.json]\n");
      return 2;
    } else {
      out_path = arg;
    }
  }
  const std::vector<Workload> workloads = build_workloads();
  const long iterations = 4000;

  const double naive_ns = measure_ns_per_match(
      workloads, iterations, [](const Workload& w, const Snapshot& snap) {
        return static_cast<long>(naive_enabled_actions(w.alg, snap).size());
      });
  const double compiled_ns = measure_ns_per_match(
      workloads, iterations, [](const Workload& w, const Snapshot& snap) {
        return static_cast<long>(enabled_actions(*w.compiled, snap).size());
      });
  const double first_enabled_ns = measure_ns_per_match(
      workloads, iterations, [](const Workload& w, const Snapshot& snap) {
        return first_enabled(*w.compiled, snap).has_value() ? 1L : 0L;
      });
  const double speedup = naive_ns / compiled_ns;

  // Guard-plane prefilter: scalar reference vs the build/CPU-selected kernel
  // (AVX2 when compiled in and supported; otherwise the two coincide).
  const long guard_iterations = iterations * 8;
  const double guard_scalar_ns =
      measure_ns_per_guard_sweep(workloads, guard_iterations, guard_pass_mask_scalar);
  const double guard_dispatch_ns =
      measure_ns_per_guard_sweep(workloads, guard_iterations, guard_pass_mask);
  const bool guard_simd = guard_simd_available();

  // Snapshot cost (phi = 2 dominates real campaigns).
  const Workload& snap_load = workloads.front();
  long snap_sink = 0;
  const long snapshot_reps = 2'000'000;
  const auto snap_start = std::chrono::steady_clock::now();
  for (long i = 0; i < snapshot_reps; ++i) {
    snap_sink += take_snapshot(snap_load.config, 0, 2).cells[0].wall ? 1 : 0;
  }
  const double snapshot_ns = seconds_since(snap_start) * 1e9 / snapshot_reps;
  if (snap_sink < 0) std::printf("impossible\n");

  // End-to-end: a small campaign on all cores.
  campaign::Matrix matrix;
  matrix.sections = campaign::paper_sections();
  matrix.rows = {4, 6, 2};
  matrix.cols = {4, 6, 2};
  matrix.schedulers.assign(std::begin(campaign::kAllSchedKinds),
                           std::end(campaign::kAllSchedKinds));
  matrix.seeds = {1, 2};
  const campaign::CampaignSummary summary = campaign::run_campaign(matrix, 0);
  const double jobs_per_sec = static_cast<double>(summary.jobs) / summary.wall_seconds;

  // Incremental engine vs. recompute-everything baseline, single-threaded so
  // the ratio is not polluted by scheduling noise.  Larger grids than the
  // end-to-end campaign above: dirty tracking pays off in the long quiescent
  // phases of big-grid exploration, and the bigger workload keeps the
  // measured ratio out of timer-noise territory.  Best of two passes per
  // mode (the first also warms the compilation cache).
  campaign::Matrix inc_matrix = matrix;
  inc_matrix.rows = {6, 12, 3};
  inc_matrix.cols = {6, 12, 3};
  const campaign::Expansion expansion = campaign::expand(inc_matrix);
  const auto best_of_two = [&expansion](bool incremental) {
    EngineMeasure best = measure_engine(expansion, incremental);
    const EngineMeasure again = measure_engine(expansion, incremental);
    if (again.jobs_per_sec > best.jobs_per_sec) best.jobs_per_sec = again.jobs_per_sec;
    return best;
  };
  const EngineMeasure recompute = best_of_two(/*incremental=*/false);
  const EngineMeasure incremental = best_of_two(/*incremental=*/true);
  const double incremental_speedup = incremental.jobs_per_sec / recompute.jobs_per_sec;
  const double reuse_fraction =
      incremental.reused + incremental.recomputed == 0
          ? 0.0
          : static_cast<double>(incremental.reused) /
                static_cast<double>(incremental.reused + incremental.recomputed);

  // Per-cell warm start on top of dirty tracking: the campaign runner's
  // production wiring.  Same jobs, one shared verdict table per cell.
  const EngineMeasure warm_a = measure_engine(expansion, /*incremental=*/true,
                                              /*warm_start=*/true);
  const EngineMeasure warm_b = measure_engine(expansion, /*incremental=*/true,
                                              /*warm_start=*/true);
  const EngineMeasure warm = warm_a.jobs_per_sec >= warm_b.jobs_per_sec ? warm_a : warm_b;
  const double warm_speedup = warm.jobs_per_sec / incremental.jobs_per_sec;

  std::printf("bench_matching (%zu algorithms)\n", workloads.size());
  std::printf("  naive:         %8.1f ns/match\n", naive_ns);
  std::printf("  compiled:      %8.1f ns/match  (%.2fx)\n", compiled_ns, speedup);
  std::printf("  first_enabled: %8.1f ns/match\n", first_enabled_ns);
  std::printf("  guard sweep:   %8.1f ns scalar, %8.1f ns dispatched (simd %s)\n",
              guard_scalar_ns, guard_dispatch_ns, guard_simd ? "on" : "off");
  std::printf("  snapshot:      %8.1f ns (phi=2)\n", snapshot_ns);
  std::printf("  campaign:      %8.1f jobs/s (%zu jobs, %u threads)\n", jobs_per_sec,
              summary.jobs, summary.threads);
  std::printf("  recompute:     %8.1f jobs/s (1 thread)\n", recompute.jobs_per_sec);
  std::printf("  incremental:   %8.1f jobs/s (1 thread, %.2fx, %.1f%% verdicts reused)\n",
              incremental.jobs_per_sec, incremental_speedup, 100.0 * reuse_fraction);
  std::printf("  warm start:    %8.1f jobs/s (1 thread, %.2fx over incremental, "
              "%ld verdicts warm-reused)\n",
              warm.jobs_per_sec, warm_speedup, warm.warm_reused);

  char json[2048];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"naive_ns_per_match\": %.1f,\n"
                "  \"compiled_ns_per_match\": %.1f,\n"
                "  \"first_enabled_ns_per_match\": %.1f,\n"
                "  \"speedup\": %.2f,\n"
                "  \"guard_scalar_ns_per_sweep\": %.1f,\n"
                "  \"guard_dispatch_ns_per_sweep\": %.1f,\n"
                "  \"guard_simd_active\": %s,\n"
                "  \"snapshot_ns\": %.1f,\n"
                "  \"campaign_jobs\": %zu,\n"
                "  \"campaign_threads\": %u,\n"
                "  \"campaign_jobs_per_sec\": %.1f,\n"
                "  \"recompute_jobs_per_sec\": %.1f,\n"
                "  \"incremental_jobs_per_sec\": %.1f,\n"
                "  \"incremental_speedup\": %.2f,\n"
                "  \"incremental_verdicts_reused\": %ld,\n"
                "  \"incremental_verdicts_recomputed\": %ld,\n"
                "  \"incremental_reuse_fraction\": %.4f,\n"
                "  \"warm_jobs_per_sec\": %.1f,\n"
                "  \"warm_speedup_over_incremental\": %.3f,\n"
                "  \"warm_verdicts_reused\": %ld\n"
                "}\n",
                naive_ns, compiled_ns, first_enabled_ns, speedup, guard_scalar_ns,
                guard_dispatch_ns, guard_simd ? "true" : "false", snapshot_ns, summary.jobs,
                summary.threads, jobs_per_sec, recompute.jobs_per_sec,
                incremental.jobs_per_sec, incremental_speedup, incremental.reused,
                incremental.recomputed, reuse_fraction, warm.jobs_per_sec, warm_speedup,
                warm.warm_reused);
  if (!write_text_file(out_path, json)) {
    std::printf("FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (speedup < 2.0) {
    std::printf("FAIL: compiled matcher below the 2x acceptance floor\n");
    return 1;
  }
  if (gate_incremental && incremental_speedup < 1.3) {
    std::printf("FAIL: incremental engine below the 1.3x jobs/s floor over the compiled "
                "recompute baseline\n");
    return 1;
  }
  return 0;
}
