// Microbenchmarks of the hot path: snapshotting and guard matching under
// rotations/reflections.
#include <benchmark/benchmark.h>

#include "src/algorithms/algorithms.hpp"
#include "src/core/matching.hpp"

namespace {

using namespace lumi;

void BM_TakeSnapshot(benchmark::State& state) {
  const int phi = static_cast<int>(state.range(0));
  const Grid grid(5, 5);
  const Configuration c = make_configuration(
      grid, {{{2, 2}, {Color::G}}, {{2, 3}, {Color::W}}, {{3, 2}, {Color::B}}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(take_snapshot(c, 0, phi));
  }
}
BENCHMARK(BM_TakeSnapshot)->Arg(1)->Arg(2);

void BM_EnabledActions(benchmark::State& state, Algorithm (*factory)()) {
  const Algorithm alg = factory();
  const Grid grid(4, 5);
  const Configuration c = alg.initial_configuration(grid);
  for (auto _ : state) {
    for (int i = 0; i < c.num_robots(); ++i) {
      benchmark::DoNotOptimize(enabled_actions(alg, c, i));
    }
  }
}
BENCHMARK_CAPTURE(BM_EnabledActions, alg1_phi2_chir, algorithms::algorithm1);
BENCHMARK_CAPTURE(BM_EnabledActions, alg9_phi2_nochir, algorithms::algorithm9);
BENCHMARK_CAPTURE(BM_EnabledActions, alg10_phi1_chir, algorithms::algorithm10);
BENCHMARK_CAPTURE(BM_EnabledActions, alg11_phi1_nochir, algorithms::algorithm11);

void BM_IsTerminal(benchmark::State& state) {
  const Algorithm alg = algorithms::algorithm10();
  const Grid grid(4, 5);
  const Configuration c = alg.initial_configuration(grid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_terminal(alg, c));
  }
}
BENCHMARK(BM_IsTerminal);

}  // namespace
