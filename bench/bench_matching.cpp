// Hot-path benchmark: guard matching (naive sparse scan vs. compiled dense
// tables) and snapshotting over every Table-1 algorithm, plus a small
// campaign for end-to-end jobs/sec.  Emits machine-readable
// BENCH_matching.json so the perf trajectory is tracked across PRs, and
// exits nonzero if the compiled matcher is less than 2x the naive one (the
// acceptance floor for this optimization).
//
// Usage: bench_matching [output.json]   (default: BENCH_matching.json)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/algorithms/registry.hpp"
#include "src/campaign/campaign.hpp"
#include "src/core/matching.hpp"
#include "src/trace/report.hpp"

namespace {

using namespace lumi;

struct Workload {
  Algorithm alg;
  std::shared_ptr<const CompiledAlgorithm> compiled;
  Configuration config;
  std::vector<Snapshot> snapshots;  ///< one per robot, pre-taken
};

std::vector<Workload> build_workloads() {
  std::vector<Workload> out;
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    Algorithm alg = e.make();
    const Grid grid(alg.min_rows + 2, alg.min_cols + 2);
    Configuration config = alg.initial_configuration(grid);
    Workload w{std::move(alg), nullptr, std::move(config), {}};
    w.compiled = CompiledAlgorithm::get(w.alg);
    for (int r = 0; r < w.config.num_robots(); ++r) {
      w.snapshots.push_back(take_snapshot(w.config, r, w.alg.phi));
    }
    out.push_back(std::move(w));
  }
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// ns per enabled_actions evaluation over all workloads and robots.
template <typename MatchFn>
double measure_ns_per_match(const std::vector<Workload>& workloads, long iterations,
                            MatchFn&& match) {
  long matches = 0;
  long sink = 0;  // data dependency so the calls cannot be optimized away
  const auto start = std::chrono::steady_clock::now();
  for (long it = 0; it < iterations; ++it) {
    for (const Workload& w : workloads) {
      for (const Snapshot& snap : w.snapshots) {
        sink += match(w, snap);
        matches += 1;
      }
    }
  }
  const double elapsed = seconds_since(start);
  if (sink < 0) std::printf("impossible\n");
  return elapsed * 1e9 / static_cast<double>(matches);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_matching.json";
  const std::vector<Workload> workloads = build_workloads();
  const long iterations = 4000;

  const double naive_ns = measure_ns_per_match(
      workloads, iterations, [](const Workload& w, const Snapshot& snap) {
        return static_cast<long>(naive_enabled_actions(w.alg, snap).size());
      });
  const double compiled_ns = measure_ns_per_match(
      workloads, iterations, [](const Workload& w, const Snapshot& snap) {
        return static_cast<long>(enabled_actions(*w.compiled, snap).size());
      });
  const double first_enabled_ns = measure_ns_per_match(
      workloads, iterations, [](const Workload& w, const Snapshot& snap) {
        return first_enabled(*w.compiled, snap).has_value() ? 1L : 0L;
      });
  const double speedup = naive_ns / compiled_ns;

  // Snapshot cost (phi = 2 dominates real campaigns).
  const Workload& snap_load = workloads.front();
  long snap_sink = 0;
  const long snapshot_reps = 2'000'000;
  const auto snap_start = std::chrono::steady_clock::now();
  for (long i = 0; i < snapshot_reps; ++i) {
    snap_sink += take_snapshot(snap_load.config, 0, 2).cells[0].wall ? 1 : 0;
  }
  const double snapshot_ns = seconds_since(snap_start) * 1e9 / snapshot_reps;
  if (snap_sink < 0) std::printf("impossible\n");

  // End-to-end: a small campaign on all cores.
  campaign::Matrix matrix;
  matrix.sections = campaign::paper_sections();
  matrix.rows = {4, 6, 2};
  matrix.cols = {4, 6, 2};
  matrix.schedulers.assign(std::begin(campaign::kAllSchedKinds),
                           std::end(campaign::kAllSchedKinds));
  matrix.seeds = {1, 2};
  const campaign::CampaignSummary summary = campaign::run_campaign(matrix, 0);
  const double jobs_per_sec = static_cast<double>(summary.jobs) / summary.wall_seconds;

  std::printf("bench_matching (%zu algorithms)\n", workloads.size());
  std::printf("  naive:         %8.1f ns/match\n", naive_ns);
  std::printf("  compiled:      %8.1f ns/match  (%.2fx)\n", compiled_ns, speedup);
  std::printf("  first_enabled: %8.1f ns/match\n", first_enabled_ns);
  std::printf("  snapshot:      %8.1f ns (phi=2)\n", snapshot_ns);
  std::printf("  campaign:      %8.1f jobs/s (%zu jobs, %u threads)\n", jobs_per_sec,
              summary.jobs, summary.threads);

  char json[1024];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"naive_ns_per_match\": %.1f,\n"
                "  \"compiled_ns_per_match\": %.1f,\n"
                "  \"first_enabled_ns_per_match\": %.1f,\n"
                "  \"speedup\": %.2f,\n"
                "  \"snapshot_ns\": %.1f,\n"
                "  \"campaign_jobs\": %zu,\n"
                "  \"campaign_threads\": %u,\n"
                "  \"campaign_jobs_per_sec\": %.1f\n"
                "}\n",
                naive_ns, compiled_ns, first_enabled_ns, speedup, snapshot_ns, summary.jobs,
                summary.threads, jobs_per_sec);
  if (!write_text_file(out_path, json)) {
    std::printf("FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (speedup < 2.0) {
    std::printf("FAIL: compiled matcher below the 2x acceptance floor\n");
    return 1;
  }
  return 0;
}
