// Performance scaling: simulation cost of a full exploration as a function
// of grid area, per algorithm family and scheduler (google-benchmark).
#include <benchmark/benchmark.h>

#include "src/algorithms/registry.hpp"
#include "src/engine/runner.hpp"

namespace {

using namespace lumi;

void run_fsync_once(const Algorithm& alg, int rows, int cols) {
  FsyncScheduler sched;
  const RunResult r = run_sync(alg, Grid(rows, cols), sched);
  if (!r.ok()) throw std::runtime_error(alg.name + " failed: " + r.failure);
  benchmark::DoNotOptimize(r.stats.moves);
}

void run_async_once(const Algorithm& alg, int rows, int cols, unsigned seed) {
  AsyncRandomScheduler sched(seed);
  RunOptions opts;
  opts.max_steps = 10'000'000;
  const RunResult r = run_async(alg, Grid(rows, cols), sched, opts);
  if (!r.ok()) throw std::runtime_error(alg.name + " failed: " + r.failure);
  benchmark::DoNotOptimize(r.stats.moves);
}

void run_ssync_once(const Algorithm& alg, int rows, int cols, unsigned seed) {
  SsyncRandomScheduler sched(seed);
  RunOptions opts;
  opts.max_steps = 10'000'000;
  const RunResult r = run_sync(alg, Grid(rows, cols), sched, opts);
  if (!r.ok()) throw std::runtime_error(alg.name + " failed: " + r.failure);
  benchmark::DoNotOptimize(r.stats.moves);
}

void BM_FsyncExploration(benchmark::State& state, const char* section) {
  const Algorithm alg = algorithms::entry(section).make();
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) run_fsync_once(alg, n, n + 1);
  state.SetComplexityN(static_cast<long>(n) * (n + 1));
}

void BM_AsyncExploration(benchmark::State& state, const char* section) {
  const Algorithm alg = algorithms::entry(section).make();
  const int n = static_cast<int>(state.range(0));
  unsigned seed = 1;
  for (auto _ : state) run_async_once(alg, n, n + 1, seed++);
  state.SetComplexityN(static_cast<long>(n) * (n + 1));
}

void BM_SsyncExploration(benchmark::State& state, const char* section) {
  const Algorithm alg = algorithms::entry(section).make();
  const int n = static_cast<int>(state.range(0));
  unsigned seed = 1;
  for (auto _ : state) run_ssync_once(alg, n, n + 1, seed++);
  state.SetComplexityN(static_cast<long>(n) * (n + 1));
}

}  // namespace

BENCHMARK_CAPTURE(BM_FsyncExploration, alg1_phi2, "4.2.1")
    ->DenseRange(4, 16, 4)
    ->Complexity(benchmark::oN);
BENCHMARK_CAPTURE(BM_FsyncExploration, alg3_phi1, "4.2.5")
    ->DenseRange(4, 16, 4)
    ->Complexity(benchmark::oN);
BENCHMARK_CAPTURE(BM_FsyncExploration, alg5_k3, "4.2.7")
    ->DenseRange(4, 16, 4)
    ->Complexity(benchmark::oN);
BENCHMARK_CAPTURE(BM_AsyncExploration, alg6_k2, "4.3.1")
    ->DenseRange(4, 12, 4)
    ->Complexity(benchmark::oN);
BENCHMARK_CAPTURE(BM_AsyncExploration, alg10_train, "4.3.5")
    ->DenseRange(4, 12, 4)
    ->Complexity(benchmark::oN);
// Algorithm 11 is SSYNC-verified (see its capability note).
BENCHMARK_CAPTURE(BM_SsyncExploration, alg11_k6, "4.3.6")
    ->DenseRange(4, 12, 4)
    ->Complexity(benchmark::oN);
