// Exhaustive-verification cost: states/transitions the model checker visits
// per algorithm, grid and model — the "how strong is the guarantee" table.
#include <chrono>
#include <cstdio>

#include "src/algorithms/registry.hpp"
#include "src/analysis/model_checker.hpp"

int main() {
  using namespace lumi;
  std::printf("Exhaustive model checking of the Table-1 algorithms (all schedules):\n\n");
  std::printf("%-8s %-7s %-6s %10s %12s %10s %8s %s\n", "section", "model", "grid", "states",
              "transitions", "terminals", "ms", "result");
  bool all_ok = true;
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    const Algorithm alg = e.make();
    struct Job {
      CheckModel model;
      const char* name;
    };
    std::vector<Job> jobs;
    jobs.push_back({CheckModel::Fsync, "FSYNC"});
    if (e.synchrony != Synchrony::Fsync) jobs.push_back({CheckModel::Ssync, "SSYNC"});
    if (e.synchrony == Synchrony::Async) jobs.push_back({CheckModel::Async, "ASYNC"});
    for (const Job& job : jobs) {
      const Grid grid(std::max(3, alg.min_rows), 4);
      const auto start = std::chrono::steady_clock::now();
      const CheckResult r = model_check(alg, grid, job.model);
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      all_ok = all_ok && r.ok;
      std::printf("%-8s %-7s %-6s %10ld %12ld %10ld %8lld %s\n", e.section.c_str(), job.name,
                  grid.to_string().c_str(), r.states, r.transitions, r.terminal_states,
                  static_cast<long long>(ms), r.ok ? "OK" : r.failure.c_str());
    }
  }
  std::printf("\n%s\n", all_ok ? "All exhaustive checks passed." : "FAILURE.");
  return all_ok ? 0 : 1;
}
