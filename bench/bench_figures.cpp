// Regenerates the paper's figures (1-25) as ASCII traces; `--fig=N` prints a
// single figure, no arguments prints all.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "src/trace/figure_printer.hpp"

int main(int argc, char** argv) {
  int only = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fig=", 6) == 0) {
      only = std::atoi(argv[i] + 6);
    } else {
      std::fprintf(stderr, "usage: %s [--fig=N]\n", argv[0]);
      return 2;
    }
  }
  if (only >= 0) {
    if (!lumi::print_figure(std::cout, only)) {
      std::fprintf(stderr, "unknown figure %d\n", only);
      return 2;
    }
    return 0;
  }
  bool first = true;
  for (int fig : lumi::available_figures()) {
    if (!first) std::cout << "\n" << std::string(72, '=') << "\n\n";
    first = false;
    if (!lumi::print_figure(std::cout, fig)) return 1;
  }
  return 0;
}
