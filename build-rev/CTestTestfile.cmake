# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-rev
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-rev/test_algorithm_validate[1]_include.cmake")
include("/root/repo/build-rev/test_algorithms_async[1]_include.cmake")
include("/root/repo/build-rev/test_algorithms_fsync[1]_include.cmake")
include("/root/repo/build-rev/test_campaign[1]_include.cmake")
include("/root/repo/build-rev/test_color[1]_include.cmake")
include("/root/repo/build-rev/test_compiled_matching[1]_include.cmake")
include("/root/repo/build-rev/test_dsl[1]_include.cmake")
include("/root/repo/build-rev/test_engine_async[1]_include.cmake")
include("/root/repo/build-rev/test_engine_sync[1]_include.cmake")
include("/root/repo/build-rev/test_geometry[1]_include.cmake")
include("/root/repo/build-rev/test_grid_config[1]_include.cmake")
include("/root/repo/build-rev/test_impossibility[1]_include.cmake")
include("/root/repo/build-rev/test_matching[1]_include.cmake")
include("/root/repo/build-rev/test_model_checker[1]_include.cmake")
include("/root/repo/build-rev/test_paper_traces[1]_include.cmake")
include("/root/repo/build-rev/test_paper_traces_more[1]_include.cmake")
include("/root/repo/build-rev/test_report[1]_include.cmake")
include("/root/repo/build-rev/test_runner[1]_include.cmake")
include("/root/repo/build-rev/test_schedulers[1]_include.cmake")
include("/root/repo/build-rev/test_stats[1]_include.cmake")
include("/root/repo/build-rev/test_symmetry_property[1]_include.cmake")
include("/root/repo/build-rev/test_trace_render[1]_include.cmake")
include("/root/repo/build-rev/test_transform[1]_include.cmake")
include("/root/repo/build-rev/test_verifier[1]_include.cmake")
include("/root/repo/build-rev/test_view_pattern[1]_include.cmake")
