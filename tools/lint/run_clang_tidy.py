#!/usr/bin/env python3
"""Runs the repo's curated clang-tidy baseline (.clang-tidy) over src/.

CI keeps the tree tidy-clean: any finding fails the `lint` job, so the
finding count is pinned at zero and can never regress.  Local containers do
not always ship clang-tidy — `--allow-missing` turns an absent binary into
a skip (exit 0, with a notice) instead of a failure, which is what the
developer-facing ctest entry would want; CI omits the flag so a runner
without clang-tidy fails loudly rather than silently skipping the gate.

Needs build/compile_commands.json (CMakeLists.txt exports it on every
configure).  Stdlib only.

Usage: run_clang_tidy.py [--build-dir DIR] [--allow-missing] [-j N] [paths...]
Exit status: 0 clean/skipped, 1 findings, 2 setup error.
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent


def find_clang_tidy() -> str | None:
    explicit = os.environ.get("CLANG_TIDY")
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("clang-tidy", "clang-tidy-19", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        if shutil.which(name):
            return name
    return None


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="run_clang_tidy.py")
    ap.add_argument("--build-dir", default="build", help="dir holding compile_commands.json")
    ap.add_argument("--allow-missing", action="store_true",
                    help="exit 0 (skip) when clang-tidy is not installed")
    ap.add_argument("-j", type=int, default=os.cpu_count() or 1)
    ap.add_argument("paths", nargs="*", help="sources (default: src/**/*.cpp)")
    args = ap.parse_args(argv)

    tidy = find_clang_tidy()
    if tidy is None:
        if args.allow_missing:
            print("run_clang_tidy: clang-tidy not installed — skipping (allowed)")
            return 0
        print("run_clang_tidy: clang-tidy not found (set CLANG_TIDY or install it)",
              file=sys.stderr)
        return 2

    build = (ROOT / args.build_dir).resolve()
    if not (build / "compile_commands.json").is_file():
        print(f"run_clang_tidy: {build}/compile_commands.json missing — configure first "
              "(cmake -B build -S . exports it)", file=sys.stderr)
        return 2

    sources = ([Path(p).resolve() for p in args.paths]
               if args.paths else sorted((ROOT / "src").rglob("*.cpp")))
    if not sources:
        print("run_clang_tidy: no sources", file=sys.stderr)
        return 2

    # clang-tidy is single-file; fan out one process per source, -j at a time.
    failures: list[str] = []
    pending = [str(s) for s in sources]
    running: list[tuple[str, subprocess.Popen]] = []

    def reap(block: bool) -> None:
        for src, proc in running[:]:
            if block or proc.poll() is not None:
                out, _ = proc.communicate()
                if proc.returncode != 0:
                    failures.append(src)
                    sys.stderr.write(out)
                running.remove((src, proc))

    while pending or running:
        while pending and len(running) < max(1, args.j):
            src = pending.pop(0)
            running.append((src, subprocess.Popen(
                [tidy, "-p", str(build), "--quiet", src],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)))
        reap(block=len(running) >= max(1, args.j) or not pending)

    print(f"run_clang_tidy: {len(sources)} files, {len(failures)} with findings")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
