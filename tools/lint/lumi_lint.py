#!/usr/bin/env python3
"""lumi-lint: repo-specific determinism and concurrency invariants as lint.

The campaign engine's headline guarantee — byte-identical reports across
thread counts, shards, batch sizes and platforms — rests on conventions no
compiler checks: random decisions must flow through src/core/rng.hpp,
report/checkpoint code must never iterate unordered containers, mergeable
accumulators must sum exact integers, and the threaded core must not grow
ad-hoc synchronization.  This tool turns those conventions into machine
checks (docs/DETERMINISM.md catalogues the invariant behind each rule).

Mechanics: every C++ source file is split into code and comment channels by
a small tokenizer (line/block comments, string/char literals and raw
strings are blanked out of the code channel), rules match the code channel
only, and a comment `// lumi-lint: allow(<rule>)` on the same or the
immediately preceding line suppresses that rule there (use sparingly; say
why on the same comment).  Each rule carries its own path scope and
allowlist, so e.g. wall-clock reads are legal in bench/ but not in src/.

Usage:
  lumi_lint.py [--root DIR] [--json FILE] [paths...]   lint the tree (or files)
  lumi_lint.py --list-rules                            describe every rule
  lumi_lint.py --self-test                             run the fixture suite

Exit status: 0 clean, 1 findings (or a failed self-test), 2 usage/internal
error.  Stdlib only; no third-party dependencies.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

DEFAULT_SCAN = ["src", "tests", "examples", "bench", "tools"]
CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx", ".hxx"}

ALLOW = re.compile(r"lumi-lint:\s*allow\(([^)]*)\)")


@dataclass
class Rule:
    name: str
    summary: str
    pattern: re.Pattern
    include: list[str]           # fnmatch globs relative to root; empty = everywhere
    exempt: list[str] = field(default_factory=list)  # per-rule allowlist
    message: str = ""

    def applies_to(self, rel: str) -> bool:
        if self.include and not any(fnmatch.fnmatch(rel, g) for g in self.include):
            return False
        return not any(fnmatch.fnmatch(rel, g) for g in self.exempt)


# Paths whose iteration order or arithmetic lands in reports, checkpoints or
# fingerprints — the merge-identity surface (docs/DETERMINISM.md).
REPORT_PATHS = [
    "src/trace/*",
    "src/campaign/checkpoint.*",
    "src/campaign/aggregate.*",
]

RULES = [
    Rule(
        name="banned-rng",
        summary="raw RNG primitives outside src/core/rng.hpp",
        pattern=re.compile(
            r"std::uniform_int_distribution|std::uniform_real_distribution"
            r"|std::shuffle\b|std::random_device|std::mt19937(?:_64)?\b"
            r"|\b(?:s)?rand\s*\("
        ),
        include=["src/*"],
        exempt=["src/core/rng.hpp"],
        message=(
            "random decisions must flow through src/core/rng.hpp (rng::Engine, "
            "bounded_draw, fisher_yates): std::uniform_int_distribution and "
            "friends are implementation-defined, so direct use breaks "
            "cross-platform byte-identity (see docs/DETERMINISM.md#rng-discipline)"
        ),
    ),
    Rule(
        name="unordered-in-report",
        summary="unordered containers in report/checkpoint/accumulator code",
        pattern=re.compile(r"\bunordered_(?:multi)?(?:map|set)\b"),
        include=REPORT_PATHS,
        message=(
            "iteration order of unordered containers is hash-seed and "
            "platform dependent; anything feeding reports, checkpoints or "
            "fingerprints must use ordered or index-keyed containers.  The "
            "rule bans the container outright in these files because a "
            "tokenizer cannot prove no iteration; a keyed-lookup-only use "
            "needs an allow comment explaining why it never iterates"
        ),
    ),
    Rule(
        name="wall-clock",
        summary="wall-clock reads in result-affecting code",
        pattern=re.compile(
            r"std::chrono::(?:steady_clock|system_clock|high_resolution_clock)::now"
        ),
        include=["src/*"],
        # src/obs/ is telemetry by definition: spans and the progress meter
        # exist to read the clock, and the obs-isolation rule fences them out
        # of every result path, so per-call allow comments would be noise.
        exempt=["src/obs/*"],
        message=(
            "clock reads in src/ risk leaking execution time into results "
            "(merge identity forbids it).  Wall-time diagnostics that never "
            "reach checkpoints or merged reports (e.g. CampaignSummary::"
            "wall_seconds) carry an allow comment saying so; benches and "
            "tests are out of scope by path"
        ),
    ),
    Rule(
        name="float-accumulator",
        summary="floating-point fields in mergeable accumulators",
        pattern=re.compile(r"^\s*(?:float|double)\s+\w+(?:\s*=[^;()]*)?;"),
        include=["src/campaign/aggregate.*", "src/campaign/checkpoint.*"],
        message=(
            "mergeable accumulator state must be exact integers: float "
            "addition is not associative, so per-thread partial sums would "
            "merge to different bytes depending on stealing order.  Derive "
            "floating-point statistics at render time from the exact sums "
            "(LongStat::mean/variance are member functions, not fields)"
        ),
    ),
    Rule(
        name="thread-detach",
        summary="detached threads",
        pattern=re.compile(r"(?:\.|->)detach\s*\("),
        include=["src/*", "tests/*", "examples/*"],
        message=(
            "a detached thread outlives scoped ownership and cannot be "
            "joined before results are read — every thread in this codebase "
            "is joined (ThreadPool drains on destruction, CheckpointFlusher "
            "joins in finish())"
        ),
    ),
    Rule(
        name="volatile-sync",
        summary="volatile used where synchronization is meant",
        pattern=re.compile(r"\bvolatile\b"),
        include=["src/*"],
        message=(
            "volatile is not a synchronization primitive in C++ (no "
            "atomicity, no ordering); use std::atomic or a mutex.  Benches "
            "may use it as an optimizer barrier, which is why the rule "
            "scopes to src/"
        ),
    ),
    Rule(
        name="obs-isolation",
        summary="telemetry (obs::) in report rendering or checkpoint serialization",
        # Matches obs:: symbol uses, src/obs/ includes (include paths are
        # re-injected into the code channel by lint_file — as string-literal
        # contents they are otherwise blanked by the tokenizer), and the
        # flight-recorder entry points by bare name: `using namespace` or ADL
        # would otherwise let a serializer call them without the obs:: prefix.
        pattern=re.compile(
            r"\bobs::|\bsrc/obs/"
            r"|\b(?:recording_write|recording_serialize|make_recording)\s*\("
        ),
        include=REPORT_PATHS,
        message=(
            "telemetry must observe results, never feed them: report "
            "rendering, checkpoint serialization and mergeable accumulators "
            "stay free of obs:: symbols so metrics/tracing can be toggled "
            "without any risk to byte-identity (the on/off differential is "
            "pinned by tests/test_obs_identity.cpp).  Instrument the callers "
            "— CLIs, orchestrator, pool — not these files"
        ),
    ),
    Rule(
        name="relaxed-atomic",
        summary="memory_order_relaxed without an allow comment",
        pattern=re.compile(r"\bmemory_order_relaxed\b"),
        include=["src/*", "tests/*", "examples/*"],
        message=(
            "relaxed atomics are correct only with a proof that no other "
            "memory depends on their ordering; each use must carry "
            "'// lumi-lint: allow(relaxed-atomic)' plus that proof in the "
            "surrounding comment"
        ),
    ),
]


def split_channels(text: str) -> list[tuple[str, str]]:
    """Per line: (code with comments/literals blanked, comment text).

    Handles // and /* */ comments, "..." / '...' literals with escapes, and
    raw strings R"delim(...)delim".  Literal contents are blanked from the
    code channel (quotes kept) so rule patterns cannot match inside them.
    """
    out: list[tuple[list[str], list[str]]] = [([], [])]
    code, comment = out[0]
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_end = ""
    quote = ""
    while i < n:
        c = text[i]
        if c == "\n":
            out.append(([], []))
            code, comment = out[-1]
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            nxt = text[i + 1] if i + 1 < n else ""
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == "R" and nxt == '"' and (i == 0 or not (text[i - 1].isalnum() or text[i - 1] == "_")):
                m = re.match(r'R"([^()\\ \n]{0,16})\(', text[i:])
                if m:
                    raw_end = ")" + m.group(1) + '"'
                    code.append('R"' + m.group(1) + "(")
                    state = "raw"
                    i += len(m.group(0))
                    continue
            if c in "\"'":
                quote = c
                state = "string" if c == '"' else "char"
                code.append(c)
                i += 1
                continue
            code.append(c)
            i += 1
            continue
        if state == "line_comment":
            comment.append(c)
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                state = "code"
                i += 2
                continue
            comment.append(c)
            i += 1
            continue
        if state in ("string", "char"):
            if c == "\\" and i + 1 < n:
                i += 2
                continue
            if c == quote:
                code.append(c)
                state = "code"
            i += 1
            continue
        # raw string
        if text.startswith(raw_end, i):
            code.append(raw_end)
            state = "code"
            i += len(raw_end)
            continue
        i += 1
    return [("".join(c), "".join(m)) for c, m in out]


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    snippet: str
    message: str


def allowed_rules(comment: str) -> set[str]:
    names: set[str] = set()
    for m in ALLOW.finditer(comment):
        names.update(p.strip() for p in m.group(1).split(",") if p.strip())
    return names


def lint_file(path: Path, rel: str, rules: list[Rule]) -> list[Finding]:
    active = [r for r in rules if r.applies_to(rel)]
    if not active:
        return []
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [Finding("io-error", rel, 0, "", f"unreadable: {err}")]
    lines = split_channels(text)
    # Re-inject #include paths into the code channel: the tokenizer blanks
    # string-literal contents, which would hide `#include "src/obs/..."` from
    # path-sensitive rules like obs-isolation.
    raw_lines = text.split("\n")
    include_re = re.compile(r'^\s*#\s*include\s*["<]([^">]+)[">]')
    lines = [
        (code + " " + m.group(1) if (m := include_re.match(raw)) else code, comment)
        for (code, comment), raw in zip(lines, raw_lines)
    ]
    findings: list[Finding] = []
    prev_allow: set[str] = set()
    for lineno, (code, comment) in enumerate(lines, start=1):
        here_allow = allowed_rules(comment)
        suppress = here_allow | prev_allow
        # A standalone allow comment covers the next line; a trailing allow
        # comment covers its own.  Code on the line consumes the carry.
        prev_allow = here_allow if not code.strip() else set()
        for rule in active:
            if rule.name in suppress:
                continue
            if rule.pattern.search(code):
                findings.append(
                    Finding(rule.name, rel, lineno, code.strip()[:120], rule.message)
                )
    return findings


def iter_sources(root: Path, paths: list[str]) -> list[Path]:
    out: list[Path] = []
    bases = [root / p for p in paths] if paths else [root / p for p in DEFAULT_SCAN]
    for base in bases:
        if base.is_file():
            out.append(base)
        elif base.is_dir():
            out.extend(p for p in sorted(base.rglob("*")) if p.suffix in CPP_SUFFIXES)
    return out


def run_lint(root: Path, paths: list[str], json_path: str | None) -> int:
    files = iter_sources(root, paths)
    findings: list[Finding] = []
    for f in files:
        rel = f.relative_to(root).as_posix()
        findings.extend(lint_file(f, rel, RULES))
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.snippet}", file=sys.stderr)
    report = {
        "tool": "lumi-lint",
        "version": 1,
        "files_scanned": len(files),
        "rules": [{"name": r.name, "summary": r.summary} for r in RULES],
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "snippet": f.snippet,
                "message": f.message,
            }
            for f in findings
        ],
    }
    if json_path:
        Path(json_path).write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"lumi-lint: {len(files)} files, {len(findings)} findings")
    return 1 if findings else 0


def run_self_test(fixtures: Path) -> int:
    """Each fixtures/<rule>/ holds bad/ (≥1 finding, all of <rule>) and
    clean/ (0 findings) mini-trees; every shipped rule must have both."""
    failures: list[str] = []
    cases = sorted(p for p in fixtures.iterdir() if p.is_dir()) if fixtures.is_dir() else []
    fixture_rules = {p.name for p in cases}
    for rule in RULES:
        if rule.name not in fixture_rules:
            failures.append(f"rule '{rule.name}' has no fixture directory")
    for case in cases:
        if case.name not in {r.name for r in RULES}:
            failures.append(f"fixture '{case.name}' names no shipped rule")
            continue
        for leg, expect_bad in (("bad", True), ("clean", False)):
            tree = case / leg
            if not tree.is_dir():
                failures.append(f"{case.name}: missing {leg}/ tree")
                continue
            found: list[Finding] = []
            for f in iter_sources(tree, []):
                rel = f.relative_to(tree).as_posix()
                found.extend(lint_file(f, rel, RULES))
            if expect_bad:
                if not found:
                    failures.append(f"{case.name}/bad: expected ≥1 finding, got none")
                for f in found:
                    if f.rule != case.name:
                        failures.append(
                            f"{case.name}/bad: stray finding [{f.rule}] at {f.path}:{f.line}"
                        )
            elif found:
                for f in found:
                    failures.append(
                        f"{case.name}/clean: unexpected [{f.rule}] at {f.path}:{f.line}"
                    )
    for msg in failures:
        print(f"self-test: {msg}", file=sys.stderr)
    print(f"lumi-lint self-test: {len(cases)} fixtures, {len(failures)} failures")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="lumi_lint.py", description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None, help="repo root (default: two dirs above this file)")
    ap.add_argument("--json", default=None, metavar="FILE", help="write machine-readable report")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--self-test", action="store_true", help="run the fixture suite and exit")
    ap.add_argument("paths", nargs="*", help="files or directories relative to root")
    args = ap.parse_args(argv)

    here = Path(__file__).resolve()
    root = Path(args.root).resolve() if args.root else here.parent.parent.parent

    if args.list_rules:
        for r in RULES:
            scope = ", ".join(r.include) or "(everywhere)"
            exempt = f"  exempt: {', '.join(r.exempt)}" if r.exempt else ""
            print(f"{r.name}: {r.summary}\n  scope: {scope}{exempt}")
        return 0
    if args.self_test:
        return run_self_test(here.parent / "fixtures")
    return run_lint(root, args.paths, args.json)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
