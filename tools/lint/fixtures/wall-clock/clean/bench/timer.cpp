// Fixture: benches time things; the rule scopes to src/ by path.
#include <chrono>
long tick() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
