// Fixture: wall-time diagnostic that never reaches checkpoints or merged
// reports, carrying the required justification.
#include <chrono>
double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  // Execution-environment diagnostic only (dropped from merged output).
  // lumi-lint: allow(wall-clock)
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}
