// Fixture: a clock read in an engine — time must never shape results.
#include <chrono>
long stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
