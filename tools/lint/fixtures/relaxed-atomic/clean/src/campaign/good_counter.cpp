// Fixture: relaxed ordering carrying its proof.
#include <atomic>
std::atomic<long> g_hits{0};
void hit() {
  // Pure statistics counter: no other memory is published under this
  // increment, so ordering is irrelevant.  lumi-lint: allow(relaxed-atomic)
  g_hits.fetch_add(1, std::memory_order_relaxed);
}
