// Fixture: relaxed ordering with no justification comment.
#include <atomic>
std::atomic<long> g_hits{0};
void hit() { g_hits.fetch_add(1, std::memory_order_relaxed); }
