// Fixture: exact-integer state; floating-point statistics are derived at
// render time from the exact sums (functions, not fields).
#pragma once
struct CellAccumulator {
  long runs = 0;
  long long sum = 0;
  double mean() const { return runs == 0 ? 0.0 : static_cast<double>(sum) / runs; }
};
