// Fixture: a float field in a mergeable accumulator — partial sums would
// merge to different bytes depending on stealing order.
#pragma once
struct CellAccumulator {
  long runs = 0;
  double mean_cache = 0.0;
};
