// Fixture: report rendering dumping a flight recording by bare name (no
// obs:: prefix, as `using namespace lumi::obs` would allow) — the recorder
// entry points must be fenced out of serializers just like obs:: symbols.
#include <string>

using namespace lumi::obs;

std::string render_and_dump(const Recording& rec) {
  recording_write("report.lumirec", rec);
  return recording_serialize(rec);
}
