// Fixture: report rendering reaching into telemetry — both the include and
// the symbol use must be flagged.
#include "src/obs/metrics.hpp"

#include <string>

std::string render() {
  long long jobs = lumi::obs::Registry::global().snapshot().counter_or("campaign.jobs_done");
  return std::to_string(jobs);
}
