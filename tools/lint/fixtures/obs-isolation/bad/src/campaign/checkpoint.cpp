// Fixture: checkpoint serialization timing itself with a telemetry span —
// obs:: must stay out of the bytes-on-disk path entirely.
namespace lumi::obs {
class Span;
}

void checkpoint_write_all() {
  lumi::obs::Span* span = nullptr;
  (void)span;
}
