// Fixture: report rendering with no telemetry dependence — the word "obs"
// in prose or identifiers like observations must not trip the rule.
#include <string>

std::string render(long observations) { return std::to_string(observations); }
