// Fixture: the orchestrator is a legal instrumentation point — obs:: is
// banned only in REPORT_PATHS (src/trace/, checkpoint.*, aggregate.*).
#include "src/obs/metrics.hpp"

void tick() { lumi::obs::Registry::global().counter("orchestrate.ticks").add(1); }
