// Fixture: a real synchronization primitive.
#include <atomic>
std::atomic<bool> g_stop{false};
void request_stop() { g_stop.store(true); }
bool stopping() { return g_stop.load(); }
