// Fixture: optimizer barrier in a bench — out of the rule's src/ scope.
volatile int sink = 0;
void consume(int v) { sink = v; }
