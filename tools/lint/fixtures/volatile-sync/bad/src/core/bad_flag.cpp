// Fixture: volatile provides neither atomicity nor ordering.
volatile bool g_stop = false;
void request_stop() { g_stop = true; }
bool stopping() { return g_stop; }
