// Fixture: ordered container — iteration order is the key order everywhere.
#include <map>
#include <string>
std::string render(const std::map<std::string, long>& cells) {
  std::string out;
  for (const auto& [k, v] : cells) out += k + "=" + std::to_string(v) + "\n";
  return out;
}
