// Fixture: keyed-lookup-only use, documented and allowed explicitly.
#include <string>
#include <unordered_map>  // lumi-lint: allow(unordered-in-report)
// Pure point lookups; nothing iterates this map, so report bytes cannot
// depend on its hash order.  lumi-lint: allow(unordered-in-report)
long lookup(const std::unordered_map<std::string, long>& idx, const std::string& k) {
  auto it = idx.find(k);
  return it == idx.end() ? -1 : it->second;
}
