// Fixture: hash-order iteration feeding a report — bytes differ per platform.
#include <string>
#include <unordered_map>
std::string render(const std::unordered_map<std::string, long>& cells) {
  std::string out;
  for (const auto& [k, v] : cells) out += k + "=" + std::to_string(v) + "\n";
  return out;
}
