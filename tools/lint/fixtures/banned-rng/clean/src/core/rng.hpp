// Fixture: the one file allowed to name the raw engine.
#pragma once
#include <random>
namespace lumi::rng { using Engine = std::mt19937; }
