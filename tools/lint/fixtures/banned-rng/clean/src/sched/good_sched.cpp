// Fixture: decisions drawn through the in-repo helpers; the engine type is
// referenced via the rng.hpp alias, never spelled raw here.
#include "src/core/rng.hpp"
unsigned pick(lumi::rng::Engine& rng, unsigned n) { return lumi::bounded_draw(rng, n); }
