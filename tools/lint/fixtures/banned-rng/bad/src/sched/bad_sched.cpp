// Fixture: raw distribution in a scheduler — the exact bug PR 4 banished.
#include <random>
int pick(std::mt19937& rng, int n) {
  std::uniform_int_distribution<int> d(0, n - 1);
  return d(rng);
}
