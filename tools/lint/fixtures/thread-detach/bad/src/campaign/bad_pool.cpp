// Fixture: a detached thread can outlive the state it touches.
#include <thread>
void fire_and_forget(void (*fn)()) {
  std::thread t(fn);
  t.detach();
}
