// Fixture: scoped ownership; the thread is always joined.
#include <thread>
void run_joined(void (*fn)()) {
  std::thread t(fn);
  t.join();
}
