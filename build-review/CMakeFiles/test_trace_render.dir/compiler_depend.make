# Empty compiler generated dependencies file for test_trace_render.
# This may be replaced when dependencies are built.
