# Empty compiler generated dependencies file for bench_campaign.
# This may be replaced when dependencies are built.
