# Empty compiler generated dependencies file for bench_impossibility.
# This may be replaced when dependencies are built.
