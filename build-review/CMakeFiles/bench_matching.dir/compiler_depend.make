# Empty compiler generated dependencies file for bench_matching.
# This may be replaced when dependencies are built.
