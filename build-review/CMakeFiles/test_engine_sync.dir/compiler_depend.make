# Empty compiler generated dependencies file for test_engine_sync.
# This may be replaced when dependencies are built.
