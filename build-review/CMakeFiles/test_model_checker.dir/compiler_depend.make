# Empty compiler generated dependencies file for test_model_checker.
# This may be replaced when dependencies are built.
