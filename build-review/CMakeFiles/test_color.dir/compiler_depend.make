# Empty compiler generated dependencies file for test_color.
# This may be replaced when dependencies are built.
