# Empty compiler generated dependencies file for custom_algorithm.
# This may be replaced when dependencies are built.
