# Empty compiler generated dependencies file for test_engine_async.
# This may be replaced when dependencies are built.
