# Empty compiler generated dependencies file for test_paper_traces_more.
# This may be replaced when dependencies are built.
