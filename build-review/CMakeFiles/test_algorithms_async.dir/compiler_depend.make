# Empty compiler generated dependencies file for test_algorithms_async.
# This may be replaced when dependencies are built.
