# Empty compiler generated dependencies file for campaign_cli.
# This may be replaced when dependencies are built.
