# Empty compiler generated dependencies file for test_algorithm_validate.
# This may be replaced when dependencies are built.
