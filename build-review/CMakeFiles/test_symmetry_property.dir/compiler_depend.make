# Empty compiler generated dependencies file for test_symmetry_property.
# This may be replaced when dependencies are built.
