# Empty compiler generated dependencies file for lumi.
# This may be replaced when dependencies are built.
