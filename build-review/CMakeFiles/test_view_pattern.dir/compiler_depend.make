# Empty compiler generated dependencies file for test_view_pattern.
# This may be replaced when dependencies are built.
