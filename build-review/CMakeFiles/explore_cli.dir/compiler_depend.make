# Empty compiler generated dependencies file for explore_cli.
# This may be replaced when dependencies are built.
