# Empty compiler generated dependencies file for test_impossibility.
# This may be replaced when dependencies are built.
