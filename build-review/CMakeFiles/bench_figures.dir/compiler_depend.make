# Empty compiler generated dependencies file for bench_figures.
# This may be replaced when dependencies are built.
