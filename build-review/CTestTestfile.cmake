# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/test_algorithm_validate[1]_include.cmake")
include("/root/repo/build-review/test_algorithms_async[1]_include.cmake")
include("/root/repo/build-review/test_algorithms_fsync[1]_include.cmake")
include("/root/repo/build-review/test_campaign[1]_include.cmake")
include("/root/repo/build-review/test_color[1]_include.cmake")
include("/root/repo/build-review/test_compiled_matching[1]_include.cmake")
include("/root/repo/build-review/test_dsl[1]_include.cmake")
include("/root/repo/build-review/test_engine_async[1]_include.cmake")
include("/root/repo/build-review/test_engine_sync[1]_include.cmake")
include("/root/repo/build-review/test_geometry[1]_include.cmake")
include("/root/repo/build-review/test_grid_config[1]_include.cmake")
include("/root/repo/build-review/test_impossibility[1]_include.cmake")
include("/root/repo/build-review/test_matching[1]_include.cmake")
include("/root/repo/build-review/test_model_checker[1]_include.cmake")
include("/root/repo/build-review/test_paper_traces[1]_include.cmake")
include("/root/repo/build-review/test_paper_traces_more[1]_include.cmake")
include("/root/repo/build-review/test_report[1]_include.cmake")
include("/root/repo/build-review/test_runner[1]_include.cmake")
include("/root/repo/build-review/test_schedulers[1]_include.cmake")
include("/root/repo/build-review/test_stats[1]_include.cmake")
include("/root/repo/build-review/test_symmetry_property[1]_include.cmake")
include("/root/repo/build-review/test_trace_render[1]_include.cmake")
include("/root/repo/build-review/test_transform[1]_include.cmake")
include("/root/repo/build-review/test_verifier[1]_include.cmake")
include("/root/repo/build-review/test_view_pattern[1]_include.cmake")
