// Rules: (label, guard, action) triples, as in the paper's Section 2.4.
//
// A guard constrains the cells of the robot's view in the *guard frame*; the
// rule fires if the view matches under some admissible symmetry, and the
// action's movement is interpreted through that same symmetry.  Guard cells
// not listed explicitly default to gray (no robot there, wall or empty) —
// this mirrors the paper's diagrams, where every drawn cell is constrained.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/geometry.hpp"
#include "src/core/pattern.hpp"

namespace lumi {

/// Symbolic names for view offsets in the guard frame: "C", "N", "E", "S",
/// "W", "NN", "EE", "SS", "WW", "NE", "SE", "SW", "NW".
Vec offset_from_name(const std::string& name);
std::string offset_name(Vec offset);

struct Rule {
  std::string label;                ///< e.g. "R1"
  Color self = Color::G;            ///< color required of the acting robot
  Color new_color = Color::G;       ///< light color after the Compute phase
  std::optional<Dir> move;          ///< guard-frame movement; nullopt = Idle
  std::vector<std::pair<Vec, CellPattern>> cells;  ///< sparse guard

  /// Pattern for `offset`; gray when unspecified.  The center cell (0,0)
  /// pattern is matched against the full multiset on the robot's own node
  /// (which includes the robot itself).
  CellPattern pattern_at(Vec offset) const;

  /// How many guard entries name `offset`.  pattern_at honors only the
  /// first, so a count above one means later entries are silently shadowed
  /// at match time — the rule-table analyzer flags them.
  int count_cells_at(Vec offset) const;

  std::string to_string() const;
};

/// Fluent builder used by the algorithm definitions.
///
///   Rule r = RuleBuilder("R1", Color::W)
///                .cell("W", {Color::G})
///                .cell("E", CellPattern::empty())
///                .moves(Dir::East)
///                .build();
///
/// The center pattern defaults to exactly {self}; use `center(...)` for
/// rules about stacked robots (the multiset must still contain `self`).
class RuleBuilder {
 public:
  RuleBuilder(std::string label, Color self);

  RuleBuilder& cell(const std::string& offset, CellPattern pattern);
  RuleBuilder& cell(const std::string& offset, std::initializer_list<Color> multiset);
  RuleBuilder& center(std::initializer_list<Color> multiset);
  RuleBuilder& becomes(Color new_color);
  RuleBuilder& moves(Dir guard_frame_dir);
  RuleBuilder& idle();

  Rule build() const;

 private:
  Rule rule_;
  bool center_set_ = false;
  bool action_set_ = false;
};

}  // namespace lumi
