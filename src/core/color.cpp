#include "src/core/color.hpp"

#include <stdexcept>

namespace lumi {

char color_letter(Color c) {
  switch (c) {
    case Color::G: return 'G';
    case Color::W: return 'W';
    case Color::B: return 'B';
    case Color::R: return 'R';
  }
  return '?';
}

std::string to_string(Color c) { return std::string(1, color_letter(c)); }

Color color_from_letter(char letter) {
  switch (letter) {
    case 'G': return Color::G;
    case 'W': return Color::W;
    case 'B': return Color::B;
    case 'R': return Color::R;
    default: throw std::invalid_argument(std::string("unknown color letter: ") + letter);
  }
}

void ColorMultiset::add(Color c) {
  if (count(c) >= kMaxRobotsPerNode) throw std::overflow_error("ColorMultiset counter overflow");
  bits_ = static_cast<std::uint16_t>(bits_ + (1u << shift(c)));
}

void ColorMultiset::remove(Color c) {
  if (count(c) == 0) throw std::logic_error("ColorMultiset::remove: color not present");
  bits_ = static_cast<std::uint16_t>(bits_ - (1u << shift(c)));
}

std::string ColorMultiset::to_string() const {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < kMaxColors; ++i) {
    const Color c = static_cast<Color>(i);
    for (int n = 0; n < count(c); ++n) {
      if (!first) out += ',';
      out += color_letter(c);
      first = false;
    }
  }
  out += '}';
  return out;
}

}  // namespace lumi
