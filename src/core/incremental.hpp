// Incremental dirty-tracking match layer on top of the compiled matcher.
//
// The paper's algorithms move at most a handful of robots per instant, so
// between instants most robots observe an unchanged neighborhood and their
// match verdict — including the (rule, sym) witness — cannot have changed.
// The tracker drains the Configuration's change journal, maps each changed
// node to the robots whose ViewKernel footprint covers it (the kernel is
// symmetric, so robot r sees node d iff r sits on d + o for some kernel
// offset o), and re-runs the compiled matcher only for those dirty robots.
// Clean robots reuse the cached verdict verbatim, which keeps the engines'
// per-instant cost proportional to the activity, not the robot count.
#pragma once

#include <memory>
#include <vector>

#include "src/core/compiled.hpp"
#include "src/core/matching.hpp"

namespace lumi {

class DirtyTracker {
 public:
  /// How many per-robot verdicts each refresh() served from cache vs.
  /// re-matched (the incremental-vs-recompute ratio the benches report).
  struct Counters {
    long reused = 0;
    long recomputed = 0;
  };

  /// Attaches to `config` — enabling its change journal — and computes the
  /// initial verdict of every robot.  The configuration must outlive the
  /// tracker, stay at the same address, and only be mutated through
  /// set_color/move_robot while attached (so every change is journaled).
  DirtyTracker(std::shared_ptr<const CompiledAlgorithm> alg, Configuration& config);
  ~DirtyTracker();

  DirtyTracker(const DirtyTracker&) = delete;
  DirtyTracker& operator=(const DirtyTracker&) = delete;

  /// Brings every cached verdict up to date with the configuration by
  /// re-matching exactly the robots whose view covers a journaled node,
  /// then clears the journal.  All snapshots of one refresh share a single
  /// inline buffer.
  void refresh();

  /// Distinct enabled behaviors of robot `i`, identical (order, witnesses)
  /// to enabled_actions on a fresh snapshot.  Valid until the next mutation.
  const std::vector<Action>& actions(int i) const {
    return actions_[static_cast<std::size_t>(i)];
  }
  bool enabled(int i) const { return !actions(i).empty(); }
  /// The full per-robot verdict table (the sync schedulers' input shape).
  const std::vector<std::vector<Action>>& all_actions() const { return actions_; }
  bool any_enabled() const;

  const Counters& counters() const { return counters_; }

 private:
  void recompute(int robot);

  void list_insert(int node, int robot) {
    next_[static_cast<std::size_t>(robot)] = head_[static_cast<std::size_t>(node)];
    head_[static_cast<std::size_t>(node)] = robot;
  }
  void list_remove(int node, int robot);

  std::shared_ptr<const CompiledAlgorithm> alg_;
  Configuration* config_;
  std::vector<std::vector<Action>> actions_;  ///< cached verdict per robot
  std::vector<Vec> positions_;                ///< robot positions at last refresh
  /// Node -> robots-there reverse map (per positions_) as intrusive singly
  /// linked lists: head_[node] is the first robot on the node (-1 = none),
  /// next_[robot] the next one.  Allocation-free to build and update.
  std::vector<int> head_;
  std::vector<int> next_;
  std::vector<std::uint8_t> dirty_;  ///< per-refresh scratch
  Snapshot scratch_;                 ///< shared inline snapshot buffer
  Counters counters_;
};

}  // namespace lumi
