// Incremental dirty-tracking match layer on top of the compiled matcher.
//
// The paper's algorithms move at most a handful of robots per instant, so
// between instants most robots observe an unchanged neighborhood and their
// match verdict — including the (rule, sym) witness — cannot have changed.
// The tracker drains the Configuration's change journal, maps each changed
// node to the robots whose ViewKernel footprint covers it (the kernel is
// symmetric, so robot r sees node d iff r sits on d + o for some kernel
// offset o), and re-runs the compiled matcher only for those dirty robots.
// Clean robots reuse the cached verdict verbatim, which keeps the engines'
// per-instant cost proportional to the activity, not the robot count.
#pragma once

#include <cstdint>
#include <memory>
#include <memory_resource>
#include <mutex>
#include <vector>

#include "src/core/compiled.hpp"
#include "src/core/matching.hpp"

namespace lumi {

/// The initial per-robot verdict table of one configuration, shareable
/// across runs that start from the same placement: every seed of a campaign
/// cell begins from the identical initial configuration, so the tracker's
/// initial full compute can be done once per cell and reused by the rest.
/// `config_hash` guards against mismatched reuse — a non-matching hash
/// silently falls back to the full compute.  The hash covers the robots in
/// *index* order (indexed_placement_hash), because the table is keyed by
/// robot index: two configurations with permuted robots are the same
/// anonymous placement but must not adopt each other's tables.
struct TrackerWarmStart {
  std::uint64_t config_hash = 0;
  std::vector<std::vector<Action>> actions;
};

/// FNV-1a over the world shape and the index-ordered robot listing — the
/// identity a TrackerWarmStart is valid for.
std::uint64_t indexed_placement_hash(const Configuration& config);

/// Thread-safe write-once slot the campaign layer keeps per cell: the first
/// finisher publishes, later jobs of the cell read.  Results are identical
/// with or without the warm start (the verdicts are a pure function of the
/// initial configuration); only the reuse counters differ.
class WarmStartSlot {
 public:
  std::shared_ptr<const TrackerWarmStart> get() const {
    std::lock_guard lock(mu_);
    return value_;
  }
  void set(std::shared_ptr<const TrackerWarmStart> v) {
    std::lock_guard lock(mu_);
    if (!value_) value_ = std::move(v);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const TrackerWarmStart> value_;
};

class DirtyTracker {
 public:
  /// How many per-robot verdicts each refresh() served from cache vs.
  /// re-matched (the incremental-vs-recompute ratio the benches report),
  /// plus verdicts adopted from a cross-run warm start at construction.
  struct Counters {
    long reused = 0;
    long recomputed = 0;
    long warm_reused = 0;
  };

  /// Attaches to `config` — enabling its change journal — and computes the
  /// initial verdict of every robot (or adopts `warm`'s table when its hash
  /// matches the configuration).  The configuration must outlive the
  /// tracker, stay at the same address, and only be mutated through
  /// set_color/move_robot while attached (so every change is journaled).
  /// `mem` (optional) backs the internal position/reverse-map/dirty tables —
  /// batch workers pass their per-item Arena; null selects the heap.  The
  /// verdict table itself stays on the heap: it is handed to schedulers and
  /// exported as warm starts, both of which outlive a batch item.
  DirtyTracker(std::shared_ptr<const CompiledAlgorithm> alg, Configuration& config,
               const TrackerWarmStart* warm = nullptr,
               std::pmr::memory_resource* mem = nullptr);
  ~DirtyTracker();

  DirtyTracker(const DirtyTracker&) = delete;
  DirtyTracker& operator=(const DirtyTracker&) = delete;

  /// Brings every cached verdict up to date with the configuration by
  /// re-matching exactly the robots whose view covers a journaled node,
  /// then clears the journal.  All snapshots of one refresh share a single
  /// inline buffer.
  void refresh();

  /// Distinct enabled behaviors of robot `i`, identical (order, witnesses)
  /// to enabled_actions on a fresh snapshot.  Valid until the next mutation.
  const std::vector<Action>& actions(int i) const {
    return actions_[static_cast<std::size_t>(i)];
  }
  bool enabled(int i) const { return !actions(i).empty(); }
  /// The full per-robot verdict table (the sync schedulers' input shape).
  const std::vector<std::vector<Action>>& all_actions() const { return actions_; }
  bool any_enabled() const;

  const Counters& counters() const { return counters_; }
  bool warm_started() const { return counters_.warm_reused > 0; }

  /// Shareable copy of the current verdict table keyed by the current
  /// configuration's indexed_placement_hash.  Meaningful right after
  /// construction (before any mutation), which is when the campaign layer
  /// publishes it for the cell's remaining jobs.
  std::shared_ptr<const TrackerWarmStart> export_warm() const {
    auto out = std::make_shared<TrackerWarmStart>();
    out->config_hash = indexed_placement_hash(*config_);
    out->actions = actions_;
    return out;
  }

 private:
  void recompute(int robot);

  void list_insert(int node, int robot) {
    next_[static_cast<std::size_t>(robot)] = head_[static_cast<std::size_t>(node)];
    head_[static_cast<std::size_t>(node)] = robot;
  }
  void list_remove(int node, int robot);

  std::shared_ptr<const CompiledAlgorithm> alg_;
  Configuration* config_;
  std::vector<std::vector<Action>> actions_;  ///< cached verdict per robot
  std::pmr::vector<Vec> positions_;           ///< robot positions at last refresh
  /// Node -> robots-there reverse map (per positions_) as intrusive singly
  /// linked lists: head_[node] is the first robot on the node (-1 = none),
  /// next_[robot] the next one.  Allocation-free to build and update.
  std::pmr::vector<int> head_;
  std::pmr::vector<int> next_;
  std::pmr::vector<std::uint8_t> dirty_;  ///< per-refresh scratch
  Snapshot scratch_;                 ///< shared inline snapshot buffer
  Counters counters_;
};

}  // namespace lumi
