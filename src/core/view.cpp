#include "src/core/view.hpp"

#include <stdexcept>

namespace lumi {

ViewKernel::ViewKernel(int phi) : phi_(phi), dim_(2 * phi + 1) {
  if (phi < 1 || phi > kMaxPhi) throw std::invalid_argument("ViewKernel: phi must be 1 or 2");
  dense_.fill(-1);
  for (int dr = -phi; dr <= phi; ++dr) {
    for (int dc = -phi; dc <= phi; ++dc) {
      if (std::abs(dr) + std::abs(dc) > phi) continue;
      dense_[static_cast<std::size_t>((dr + phi) * dim_ + (dc + phi))] =
          static_cast<std::int8_t>(offsets_.size());
      offsets_.push_back(Vec{dr, dc});
    }
  }
  for (Sym g : all_symmetries()) {
    auto& row = perm_[static_cast<std::size_t>(sym_slot(g))];
    for (int i = 0; i < size(); ++i) {
      row[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(index_of(apply(g, offsets_[static_cast<std::size_t>(i)])));
    }
  }
}

const ViewKernel& ViewKernel::get(int phi) {
  static const ViewKernel kernel1(1);
  static const ViewKernel kernel2(2);
  if (phi == 1) return kernel1;
  if (phi == 2) return kernel2;
  throw std::invalid_argument("ViewKernel::get: phi must be 1 or 2");
}

const CellContent& Snapshot::at(Vec offset) const {
  const int idx = ViewKernel::get(phi).index_of(offset);
  if (idx < 0) throw std::out_of_range("Snapshot::at: offset outside view kernel");
  return cells[static_cast<std::size_t>(idx)];
}

Snapshot take_snapshot(const Configuration& config, int robot, int phi) {
  Snapshot snap;
  take_snapshot_into(config, robot, phi, snap);
  return snap;
}

namespace {

/// Cell fills specialized on phi: the kernel size becomes a compile-time
/// trip count (5 for phi 1, 13 for phi 2), so the loop — the innermost code
/// of the simulator — carries no end-of-kernel recomputation per cell.  The
/// guard-plane masks are accumulated in the same pass that fills the cells:
/// the matcher needs them for every Look, and rebuilding them there would
/// walk every cell a second time.
///
/// Plain grids — the paper's world and the bulk of every campaign — get
/// their own fill: the seed bounds-check + row-major lookup per cell,
/// written in place (the mask bit falls out of the same branch, no re-test
/// of the filled cell), with the table pointer and dimensions in locals so
/// the stores into the snapshot cannot force per-cell reloads.
template <int Phi>
void fill_plain(const Configuration& config, Vec origin, const Vec* offsets, Snapshot& out) {
  constexpr std::size_t kCells = Phi == 1 ? 5 : 13;
  std::uint16_t occupied = 0;
  std::uint16_t wall = 0;
  const int rows = config.topology().rows();
  const int cols = config.topology().cols();
  const ColorMultiset* occ = config.occupancy().data();
  for (std::size_t i = 0; i < kCells; ++i) {
    const Vec v = origin + offsets[i];
    CellContent& cell = out.cells[i];
    if (v.row >= 0 && v.row < rows && v.col >= 0 && v.col < cols) {
      const ColorMultiset m = occ[static_cast<std::size_t>(v.row * cols + v.col)];
      cell.wall = false;
      cell.robots = m;
      if (!m.empty()) occupied |= static_cast<std::uint16_t>(1u << i);
    } else {
      cell.wall = true;
      cell.robots = ColorMultiset{};
      wall |= static_cast<std::uint16_t>(1u << i);
    }
  }
  out.planes = SnapshotPlanes{occupied, wall};
}

template <int Phi>
void fill_general(const Configuration& config, Vec origin, const Vec* offsets, Snapshot& out) {
  constexpr std::size_t kCells = Phi == 1 ? 5 : 13;
  std::uint16_t occupied = 0;
  std::uint16_t wall = 0;
  for (std::size_t i = 0; i < kCells; ++i) {
    const CellContent& cell = out.cells[i] = config.cell(origin + offsets[i]);
    if (cell.wall) {
      wall |= static_cast<std::uint16_t>(1u << i);
    } else if (!cell.robots.empty()) {
      occupied |= static_cast<std::uint16_t>(1u << i);
    }
  }
  out.planes = SnapshotPlanes{occupied, wall};
}

}  // namespace

void take_snapshot_into(const Configuration& config, int robot, int phi, Snapshot& out) {
  const ViewKernel& kernel = ViewKernel::get(phi);
  // Unchecked robot access: every caller iterates robot indices it got from
  // this very configuration, and this function runs once per Look — the
  // innermost call of the simulator (ViewKernel::get above throws on a phi
  // outside {1, 2} before anything is read).
  const Robot& r = config.robots()[static_cast<std::size_t>(robot)];
  out.origin = r.pos;
  out.self_color = r.color;
  out.phi = phi;
  const Vec* offsets = kernel.offsets().data();
  // Plain phi-2 is the hot combination (every Table-1 campaign cell on the
  // default topology); it falls straight through to its fill.
  if (config.topology().plain() && phi == 2) [[likely]] {
    fill_plain<2>(config, r.pos, offsets, out);
  } else if (config.topology().plain()) {
    fill_plain<1>(config, r.pos, offsets, out);
  } else if (phi == 2) {
    fill_general<2>(config, r.pos, offsets, out);
  } else {
    fill_general<1>(config, r.pos, offsets, out);
  }
}

}  // namespace lumi
