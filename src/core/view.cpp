#include "src/core/view.hpp"

#include <stdexcept>

namespace lumi {

ViewKernel::ViewKernel(int phi) : phi_(phi) {
  if (phi < 1 || phi > kMaxPhi) throw std::invalid_argument("ViewKernel: phi must be 1 or 2");
  for (int dr = -phi; dr <= phi; ++dr) {
    for (int dc = -phi; dc <= phi; ++dc) {
      if (std::abs(dr) + std::abs(dc) <= phi) offsets_.push_back(Vec{dr, dc});
    }
  }
}

int ViewKernel::index_of(Vec offset) const {
  for (int i = 0; i < size(); ++i) {
    if (offsets_[static_cast<std::size_t>(i)] == offset) return i;
  }
  return -1;
}

const ViewKernel& ViewKernel::get(int phi) {
  static const ViewKernel kernel1(1);
  static const ViewKernel kernel2(2);
  if (phi == 1) return kernel1;
  if (phi == 2) return kernel2;
  throw std::invalid_argument("ViewKernel::get: phi must be 1 or 2");
}

const CellContent& Snapshot::at(Vec offset) const {
  const int idx = ViewKernel::get(phi).index_of(offset);
  if (idx < 0) throw std::out_of_range("Snapshot::at: offset outside view kernel");
  return cells[static_cast<std::size_t>(idx)];
}

Snapshot take_snapshot(const Configuration& config, int robot, int phi) {
  const ViewKernel& kernel = ViewKernel::get(phi);
  const Robot& r = config.robot(robot);
  Snapshot snap;
  snap.origin = r.pos;
  snap.self_color = r.color;
  snap.phi = phi;
  snap.cells.reserve(static_cast<std::size_t>(kernel.size()));
  for (Vec offset : kernel.offsets()) snap.cells.push_back(config.cell(r.pos + offset));
  return snap;
}

}  // namespace lumi
