#include "src/core/view.hpp"

#include <stdexcept>

namespace lumi {

ViewKernel::ViewKernel(int phi) : phi_(phi), dim_(2 * phi + 1) {
  if (phi < 1 || phi > kMaxPhi) throw std::invalid_argument("ViewKernel: phi must be 1 or 2");
  dense_.fill(-1);
  for (int dr = -phi; dr <= phi; ++dr) {
    for (int dc = -phi; dc <= phi; ++dc) {
      if (std::abs(dr) + std::abs(dc) > phi) continue;
      dense_[static_cast<std::size_t>((dr + phi) * dim_ + (dc + phi))] =
          static_cast<std::int8_t>(offsets_.size());
      offsets_.push_back(Vec{dr, dc});
    }
  }
  for (Sym g : all_symmetries()) {
    auto& row = perm_[static_cast<std::size_t>(sym_slot(g))];
    for (int i = 0; i < size(); ++i) {
      row[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(index_of(apply(g, offsets_[static_cast<std::size_t>(i)])));
    }
  }
}

const ViewKernel& ViewKernel::get(int phi) {
  static const ViewKernel kernel1(1);
  static const ViewKernel kernel2(2);
  if (phi == 1) return kernel1;
  if (phi == 2) return kernel2;
  throw std::invalid_argument("ViewKernel::get: phi must be 1 or 2");
}

const CellContent& Snapshot::at(Vec offset) const {
  const int idx = ViewKernel::get(phi).index_of(offset);
  if (idx < 0) throw std::out_of_range("Snapshot::at: offset outside view kernel");
  return cells[static_cast<std::size_t>(idx)];
}

Snapshot take_snapshot(const Configuration& config, int robot, int phi) {
  Snapshot snap;
  take_snapshot_into(config, robot, phi, snap);
  return snap;
}

void take_snapshot_into(const Configuration& config, int robot, int phi, Snapshot& out) {
  const ViewKernel& kernel = ViewKernel::get(phi);
  const Robot& r = config.robot(robot);
  out.origin = r.pos;
  out.self_color = r.color;
  out.phi = phi;
  const std::span<const Vec> offsets = kernel.offsets();
  if (config.topology().plain()) {
    // Plain grids — the paper's world and the bulk of every campaign — skip
    // the per-cell topology dispatch: one branch per snapshot, then the seed
    // bounds-check + row-major lookup per cell.
    for (std::size_t i = 0; i < offsets.size(); ++i) {
      out.cells[i] = config.cell_plain(r.pos + offsets[i]);
    }
  } else {
    for (std::size_t i = 0; i < offsets.size(); ++i) {
      out.cells[i] = config.cell(r.pos + offsets[i]);
    }
  }
}

}  // namespace lumi
