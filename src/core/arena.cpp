#include "src/core/arena.hpp"

#include <cstdint>
#include <memory>
#include <new>

namespace lumi {

namespace {

std::size_t align_up(std::size_t v, std::size_t alignment) {
  return (v + alignment - 1) & ~(alignment - 1);
}

}  // namespace

Arena::Arena(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes) {}

void Arena::reset() {
  for (Chunk& c : chunks_) c.used = 0;
  active_ = 0;
  bytes_in_use_ = 0;
}

void Arena::release() {
  chunks_.clear();
  active_ = 0;
  bytes_in_use_ = 0;
}

void* Arena::do_allocate(std::size_t bytes, std::size_t alignment) {
  if (alignment > alignof(std::max_align_t) || (alignment & (alignment - 1)) != 0) {
    // Over-aligned requests are not worth special casing in a bump pointer;
    // pmr containers never issue them for ordinary element types.
    throw std::bad_alloc();
  }
  // First fit over the chunks that may still have room.  `active_` only
  // advances when a chunk cannot even satisfy a fresh chunk-sized request,
  // so the scan stays O(1) amortized.
  for (std::size_t i = active_; i < chunks_.size(); ++i) {
    Chunk& c = chunks_[i];
    const std::size_t at = align_up(c.used, alignment);
    if (at + bytes <= c.size) {
      c.used = at + bytes;
      bytes_in_use_ += bytes;
      if (bytes_in_use_ > high_water_) high_water_ = bytes_in_use_;
      return c.data.get() + at;
    }
    if (i == active_ && c.size - c.used < alignof(std::max_align_t)) ++active_;
  }
  Chunk fresh;
  fresh.size = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
  fresh.data = std::make_unique<std::byte[]>(fresh.size);
  fresh.used = bytes;
  chunks_.push_back(std::move(fresh));
  bytes_in_use_ += bytes;
  if (bytes_in_use_ > high_water_) high_water_ = bytes_in_use_;
  return chunks_.back().data.get();
}

void Arena::do_deallocate(void* /*p*/, std::size_t /*bytes*/, std::size_t /*alignment*/) {
  // Bulk reclamation via reset(); individual frees are no-ops by design.
}

bool Arena::do_is_equal(const std::pmr::memory_resource& other) const noexcept {
  return this == &other;
}

}  // namespace lumi
