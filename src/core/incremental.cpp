#include "src/core/incremental.hpp"

#include <algorithm>
#include <cstdlib>

namespace lumi {

std::uint64_t indexed_placement_hash(const Configuration& config) {
  // Unlike Configuration::canonical_hash, robots are mixed in *index* order:
  // the warm-start table is indexed by robot, so a permutation of the same
  // anonymous placement is a different identity here.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  const Topology& topo = config.topology();
  mix(static_cast<std::uint64_t>(topo.rows()));
  mix(static_cast<std::uint64_t>(topo.cols()));
  for (const char c : topo.spec()) mix(static_cast<unsigned char>(c));
  for (const Robot& r : config.robots()) {
    mix(static_cast<std::uint64_t>(topo.index(r.pos)));
    mix(static_cast<std::uint64_t>(r.color));
  }
  return h;
}

DirtyTracker::DirtyTracker(std::shared_ptr<const CompiledAlgorithm> alg, Configuration& config,
                           const TrackerWarmStart* warm, std::pmr::memory_resource* mem)
    : alg_(std::move(alg)),
      config_(&config),
      actions_(static_cast<std::size_t>(config.num_robots())),
      positions_(static_cast<std::size_t>(config.num_robots()),
                 mem != nullptr ? mem : std::pmr::get_default_resource()),
      head_(static_cast<std::size_t>(config.grid().num_nodes()), -1,
            mem != nullptr ? mem : std::pmr::get_default_resource()),
      next_(static_cast<std::size_t>(config.num_robots()), -1,
            mem != nullptr ? mem : std::pmr::get_default_resource()),
      dirty_(static_cast<std::size_t>(config.num_robots()), 0,
             mem != nullptr ? mem : std::pmr::get_default_resource()) {
  config.set_journal(true);
  // A warm start replaces the initial full compute when it provably belongs
  // to this configuration; anything else falls back to computing.
  const bool warm_hit = warm != nullptr &&
                        warm->actions.size() == actions_.size() &&
                        warm->config_hash == indexed_placement_hash(config);
  if (warm_hit) actions_ = warm->actions;
  for (int r = 0; r < config.num_robots(); ++r) {
    const Vec pos = config.robot(r).pos;
    positions_[static_cast<std::size_t>(r)] = pos;
    list_insert(config.grid().index(pos), r);
    if (!warm_hit) recompute(r);
  }
  if (warm_hit) {
    counters_.warm_reused += config.num_robots();
  } else {
    counters_.recomputed += config.num_robots();
  }
}

DirtyTracker::~DirtyTracker() { config_->set_journal(false); }

void DirtyTracker::list_remove(int node, int robot) {
  int* link = &head_[static_cast<std::size_t>(node)];
  while (*link != robot) link = &next_[static_cast<std::size_t>(*link)];
  *link = next_[static_cast<std::size_t>(robot)];
}

void DirtyTracker::recompute(int robot) {
  take_snapshot_into(*config_, robot, alg_->phi(), scratch_);
  enabled_actions_into(*alg_, scratch_, actions_[static_cast<std::size_t>(robot)]);
}

void DirtyTracker::refresh() {
  const int n = config_->num_robots();
  const std::span<const int> journal = config_->journal();
  if (journal.empty()) {
    counters_.reused += n;
    return;
  }
  const Topology& grid = config_->topology();
  const ViewKernel& kernel = ViewKernel::get(alg_->phi());
  std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{0});
  int marked = 0;
  if (grid.plain()) {
    // No wraparound: robot r (at its last-refresh position — the identity
    // the reverse map also uses) sees journaled node v iff their L1
    // distance is within phi.  A direct robot-against-journal sweep beats
    // expanding each node's kernel footprint through canonical_index when
    // the robot count is a handful, which it is for every Table-1
    // algorithm.  Same dirty set, same counters.
    const int phi = alg_->phi();
    for (const int node : journal) {
      if (marked == n) break;  // everyone is dirty; further marking is a no-op
      const Vec v = grid.node(node);
      for (int r = 0; r < n; ++r) {
        if (dirty_[static_cast<std::size_t>(r)] != 0) continue;
        const Vec p = positions_[static_cast<std::size_t>(r)];
        if (std::abs(p.row - v.row) + std::abs(p.col - v.col) <= phi) {
          dirty_[static_cast<std::size_t>(r)] = 1;
          ++marked;
        }
      }
    }
  } else {
    for (const int node : journal) {
      if (marked == n) break;  // everyone is dirty; further marking is a no-op
      const Vec v = grid.node(node);
      for (const Vec o : kernel.offsets()) {
        // The kernel is symmetric, so robot r sees node v iff r sits on the
        // node v + o designates for some offset o — including across a
        // wraparound seam, which canonical_index folds in (a node reachable
        // through several offsets is just marked twice).
        const int pi = grid.canonical_index(v + o);
        if (pi < 0) continue;
        for (int r = head_[static_cast<std::size_t>(pi)]; r >= 0;
             r = next_[static_cast<std::size_t>(r)]) {
          if (dirty_[static_cast<std::size_t>(r)] == 0) {
            dirty_[static_cast<std::size_t>(r)] = 1;
            ++marked;
          }
        }
      }
    }
  }
  long recomputed = 0;
  for (int r = 0; r < n; ++r) {
    if (!dirty_[static_cast<std::size_t>(r)]) continue;
    // A robot that moved is always dirty (its old node is in the journal and
    // still maps to it here), so only dirty robots can need a map update.
    const Vec now = config_->robot(r).pos;
    Vec& cached = positions_[static_cast<std::size_t>(r)];
    if (!(now == cached)) {
      list_remove(grid.index(cached), r);
      list_insert(grid.index(now), r);
      cached = now;
    }
    recompute(r);
    ++recomputed;
  }
  counters_.recomputed += recomputed;
  counters_.reused += n - recomputed;
  config_->clear_journal();
}

bool DirtyTracker::any_enabled() const {
  for (const std::vector<Action>& a : actions_) {
    if (!a.empty()) return true;
  }
  return false;
}

}  // namespace lumi
