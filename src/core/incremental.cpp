#include "src/core/incremental.hpp"

#include <algorithm>

namespace lumi {

DirtyTracker::DirtyTracker(std::shared_ptr<const CompiledAlgorithm> alg, Configuration& config)
    : alg_(std::move(alg)),
      config_(&config),
      actions_(static_cast<std::size_t>(config.num_robots())),
      positions_(static_cast<std::size_t>(config.num_robots())),
      head_(static_cast<std::size_t>(config.grid().num_nodes()), -1),
      next_(static_cast<std::size_t>(config.num_robots()), -1),
      dirty_(static_cast<std::size_t>(config.num_robots()), 0) {
  config.set_journal(true);
  for (int r = 0; r < config.num_robots(); ++r) {
    const Vec pos = config.robot(r).pos;
    positions_[static_cast<std::size_t>(r)] = pos;
    list_insert(config.grid().index(pos), r);
    recompute(r);
  }
  counters_.recomputed += config.num_robots();
}

DirtyTracker::~DirtyTracker() { config_->set_journal(false); }

void DirtyTracker::list_remove(int node, int robot) {
  int* link = &head_[static_cast<std::size_t>(node)];
  while (*link != robot) link = &next_[static_cast<std::size_t>(*link)];
  *link = next_[static_cast<std::size_t>(robot)];
}

void DirtyTracker::recompute(int robot) {
  take_snapshot_into(*config_, robot, alg_->phi(), scratch_);
  enabled_actions_into(*alg_, scratch_, actions_[static_cast<std::size_t>(robot)]);
}

void DirtyTracker::refresh() {
  const int n = config_->num_robots();
  const std::span<const int> journal = config_->journal();
  if (journal.empty()) {
    counters_.reused += n;
    return;
  }
  const Grid& grid = config_->grid();
  const ViewKernel& kernel = ViewKernel::get(alg_->phi());
  std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{0});
  for (const int node : journal) {
    const Vec v = grid.node(node);
    for (const Vec o : kernel.offsets()) {
      const Vec p = v + o;
      if (!grid.contains(p)) continue;
      for (int r = head_[static_cast<std::size_t>(grid.index(p))]; r >= 0;
           r = next_[static_cast<std::size_t>(r)]) {
        dirty_[static_cast<std::size_t>(r)] = 1;
      }
    }
  }
  long recomputed = 0;
  for (int r = 0; r < n; ++r) {
    if (!dirty_[static_cast<std::size_t>(r)]) continue;
    // A robot that moved is always dirty (its old node is in the journal and
    // still maps to it here), so only dirty robots can need a map update.
    const Vec now = config_->robot(r).pos;
    Vec& cached = positions_[static_cast<std::size_t>(r)];
    if (!(now == cached)) {
      list_remove(grid.index(cached), r);
      list_insert(grid.index(now), r);
      cached = now;
    }
    recompute(r);
    ++recomputed;
  }
  counters_.recomputed += recomputed;
  counters_.reused += n - recomputed;
  config_->clear_journal();
}

bool DirtyTracker::any_enabled() const {
  for (const std::vector<Action>& a : actions_) {
    if (!a.empty()) return true;
  }
  return false;
}

}  // namespace lumi
