#include "src/core/algorithm.hpp"

#include <array>
#include <stdexcept>

#include "src/core/view.hpp"

namespace lumi {

std::string to_string(Synchrony s) {
  switch (s) {
    case Synchrony::Fsync: return "FSYNC";
    case Synchrony::Ssync: return "SSYNC";
    case Synchrony::Async: return "ASYNC";
  }
  return "?";
}

std::string to_string(Chirality c) {
  return c == Chirality::Common ? "common" : "none";
}

std::span<const Sym> Algorithm::symmetries() const {
  return chirality == Chirality::Common ? rotations() : all_symmetries();
}

Configuration Algorithm::initial_configuration(const Grid& grid,
                                               std::pmr::memory_resource* mem) const {
  if (grid.rows() < min_rows || grid.cols() < min_cols) {
    throw std::invalid_argument(name + ": grid " + grid.to_string() + " below minimum " +
                                std::to_string(min_rows) + "x" + std::to_string(min_cols));
  }
  std::vector<Robot> robots;
  robots.reserve(initial_robots.size());
  for (const auto& [pos, color] : initial_robots) robots.push_back(Robot{pos, color});
  return Configuration(grid, std::move(robots), mem);
}

std::vector<Color> Algorithm::reachable_colors() const {
  std::array<bool, kMaxColors> lit{};
  for (const auto& [pos, color] : initial_robots) {
    (void)pos;
    lit[static_cast<std::size_t>(color)] = true;
  }
  // Fixed point of the recoloring graph: at most kMaxColors rounds.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : rules) {
      if (lit[static_cast<std::size_t>(rule.self)] &&
          !lit[static_cast<std::size_t>(rule.new_color)]) {
        lit[static_cast<std::size_t>(rule.new_color)] = true;
        changed = true;
      }
    }
  }
  std::vector<Color> out;
  for (int i = 0; i < kMaxColors; ++i) {
    if (lit[static_cast<std::size_t>(i)]) out.push_back(static_cast<Color>(i));
  }
  return out;
}

const Rule* Algorithm::find_rule(const std::string& label) const {
  for (const Rule& r : rules) {
    if (r.label == label) return &r;
  }
  return nullptr;
}

void Algorithm::validate() const {
  auto color_ok = [this](Color c) { return static_cast<int>(c) < num_colors; };
  if (phi < 1 || phi > kMaxPhi) throw std::invalid_argument(name + ": phi out of range");
  if (num_colors < 1 || num_colors > kMaxColors) {
    throw std::invalid_argument(name + ": num_colors out of range");
  }
  if (initial_robots.empty()) throw std::invalid_argument(name + ": no robots");
  for (const auto& [pos, color] : initial_robots) {
    if (!color_ok(color)) throw std::invalid_argument(name + ": initial color out of palette");
    if (pos.row < 0 || pos.col < 0 || pos.row >= min_rows || pos.col >= min_cols) {
      throw std::invalid_argument(name + ": initial robot outside the minimal grid");
    }
  }
  const ViewKernel& kernel = ViewKernel::get(phi);
  for (const Rule& rule : rules) {
    if (!color_ok(rule.self) || !color_ok(rule.new_color)) {
      throw std::invalid_argument(name + "/" + rule.label + ": rule color out of palette");
    }
    for (const auto& [offset, pattern] : rule.cells) {
      if (kernel.index_of(offset) < 0) {
        throw std::invalid_argument(name + "/" + rule.label + ": guard cell " +
                                    offset_name(offset) + " outside phi=" + std::to_string(phi));
      }
      if (pattern.kind() == CellPattern::Kind::Multiset) {
        const ColorMultiset& ms = pattern.multiset();
        for (int i = 0; i < kMaxColors; ++i) {
          const Color c = static_cast<Color>(i);
          if (ms.count(c) > 0 && !color_ok(c)) {
            throw std::invalid_argument(name + "/" + rule.label + ": guard color out of palette");
          }
        }
      }
    }
    const CellPattern center = rule.pattern_at({0, 0});
    if (center.kind() != CellPattern::Kind::Multiset ||
        center.multiset().count(rule.self) == 0) {
      throw std::invalid_argument(name + "/" + rule.label +
                                  ": center must be a multiset containing the robot");
    }
    if (rule.move.has_value()) {
      const CellPattern target = rule.pattern_at(dir_vec(*rule.move));
      if (!target.guarantees_node_exists()) {
        throw std::invalid_argument(name + "/" + rule.label +
                                    ": movement target cell may be a wall; guard must pin it");
      }
    }
  }
}

}  // namespace lumi
