#include "src/core/geometry.hpp"

namespace lumi {

std::string to_string(Dir d) {
  switch (d) {
    case Dir::North: return "N";
    case Dir::East: return "E";
    case Dir::South: return "S";
    case Dir::West: return "W";
  }
  return "?";
}

namespace {
constexpr std::array<Sym, 4> kRotations = {
    Sym{0, false}, Sym{1, false}, Sym{2, false}, Sym{3, false}};
constexpr std::array<Sym, 8> kAllSyms = {
    Sym{0, false}, Sym{1, false}, Sym{2, false}, Sym{3, false},
    Sym{0, true},  Sym{1, true},  Sym{2, true},  Sym{3, true}};
}  // namespace

std::span<const Sym> rotations() { return kRotations; }
std::span<const Sym> all_symmetries() { return kAllSyms; }

}  // namespace lumi
