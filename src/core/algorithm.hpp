// Algorithm descriptor: a rule set plus the model assumptions it was
// designed for (synchrony, phi, number of colors, chirality) and its initial
// configuration, anchored at the grid's northwest corner.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/core/configuration.hpp"
#include "src/core/rule.hpp"

namespace lumi {

enum class Synchrony : std::uint8_t { Fsync, Ssync, Async };
enum class Chirality : std::uint8_t { Common, None };

std::string to_string(Synchrony s);
std::string to_string(Chirality c);

struct Algorithm {
  std::string name;           ///< e.g. "alg06"
  std::string paper_section;  ///< e.g. "4.3.1"
  Synchrony model = Synchrony::Fsync;  ///< weakest model the algorithm tolerates
  int phi = 1;
  int num_colors = 1;
  Chirality chirality = Chirality::Common;
  int min_rows = 2;
  int min_cols = 3;
  std::vector<Rule> rules;
  /// Initial robot placements (positions are absolute grid coordinates,
  /// near the northwest corner).
  std::vector<std::pair<Vec, Color>> initial_robots;

  int num_robots() const { return static_cast<int>(initial_robots.size()); }

  /// The symmetries a view may be observed through: 4 rotations with common
  /// chirality, 8 rotations+mirrors without.
  std::span<const Sym> symmetries() const;

  /// `mem` (optional) backs the configuration's tables — see the
  /// Configuration constructor; null selects the heap.
  Configuration initial_configuration(const Grid& grid,
                                      std::pmr::memory_resource* mem = nullptr) const;

  const Rule* find_rule(const std::string& label) const;

  /// Colors reachable from the initial lights through the rules'
  /// `self -> new_color` recoloring graph, ascending.  A declared color
  /// outside this set can never be lit by any execution — the rule-table
  /// analyzer (src/analysis/rule_analysis.hpp) reports such colors and the
  /// rules keyed on them as dead.
  std::vector<Color> reachable_colors() const;

  /// Structural sanity checks; throws std::invalid_argument on violation:
  /// colors within num_colors, guard offsets within phi, movement targets
  /// statically on-grid (pattern Empty or Multiset), grid minima sane.
  /// The deeper semantic contracts (guard disjointness, symmetry-unambiguous
  /// moves, color reachability) are the rule-table analyzer's job:
  /// analysis::analyze in src/analysis/rule_analysis.hpp.
  void validate() const;
};

}  // namespace lumi
