// Configurations: positions and light colors of all robots on a topology
// (plain grid, ring, torus, holed/obstacle grid — src/topo/topology.hpp).
//
// Robots are anonymous in the model, but the simulator tracks them by index
// so that the ASYNC engine can attribute pending phases.  Canonical listing /
// hashing treat robots as interchangeable.
//
// The configuration keeps a bounding-box-indexed occupancy array
// incrementally up to date in move_robot/set_color, so cell() and
// multiset_at() — the snapshot hot path — are O(1) lookups instead of
// O(robots) scans.  Membership and wraparound funnel through
// Topology::canonical_index, so a view across a torus seam or into an
// obstacle wall needs no special casing here.
//
// An opt-in change journal records the node indices whose content changed
// (a recolor touches one node, a move two); the incremental match layer
// (DirtyTracker) drains it to decide which robots' neighborhoods must be
// re-matched between instants.
#pragma once

#include <cstdint>
#include <memory_resource>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/color.hpp"
#include "src/core/grid.hpp"

namespace lumi {

struct Robot {
  Vec pos;
  Color color;

  friend bool operator==(const Robot&, const Robot&) = default;
};

/// Wall-or-multiset content of one grid cell as seen in a view.
struct CellContent {
  bool wall = false;
  ColorMultiset robots;

  friend bool operator==(const CellContent&, const CellContent&) = default;
};

class Configuration {
 public:
  /// Robots must sit on real nodes; on wrapped topologies out-of-box
  /// placements are canonicalized, on bounded ones they throw (the seed
  /// Grid behavior).  `mem` (optional) backs the robot list, occupancy
  /// array and journal — batched campaign workers pass a per-worker Arena
  /// so run-local tables are pointer bumps instead of heap traffic; null
  /// selects the global heap.  Copies always go to the default resource
  /// (pmr copy semantics), so traces recorded from an arena-backed run are
  /// safe to outlive it.
  Configuration(Topology topo, std::vector<Robot> robots,
                std::pmr::memory_resource* mem = nullptr);

  /// Alloc-extended copy: a clone of `other` whose robot/occupancy/journal
  /// tables live on `mem` (null = heap).  Skips placement validation and the
  /// occupancy rebuild — the batch runner constructs a cell's initial
  /// configuration once and stamps per-item arena-backed copies from it.
  Configuration(const Configuration& other, std::pmr::memory_resource* mem);

  const Topology& topology() const { return grid_; }
  /// Historical spelling; the world has been a Topology since the topology
  /// subsystem landed (plain grids are one family of it).
  const Topology& grid() const { return grid_; }
  int num_robots() const { return static_cast<int>(robots_.size()); }
  const Robot& robot(int i) const { return robots_.at(static_cast<std::size_t>(i)); }
  std::span<const Robot> robots() const { return robots_; }

  void set_color(int i, Color c) {
    Robot& r = robots_.at(static_cast<std::size_t>(i));
    if (c == r.color) return;
    const int node_index = grid_.index(r.pos);
    ColorMultiset& node = occupancy_[static_cast<std::size_t>(node_index)];
    // Add before remove: add can throw (per-color counter overflow) and must
    // do so before any state changed; removing a present color cannot throw.
    node.add(c);
    node.remove(r.color);
    r.color = c;
    if (journal_enabled_) journal_.push_back(node_index);
  }
  /// Moves robot `i` to `to`; throws std::logic_error if `to` is off-world
  /// (outside a bounded axis, or a wall) or not joined to the robot's
  /// current node by an edge (robots move along edges; wraparound seam
  /// edges count).  The stored position is canonical.
  void move_robot(int i, Vec to);

  /// Engine fast path: moves robot `i` along an edge Topology::step already
  /// validated.  Precondition: `to` is the canonical neighbor step() just
  /// returned for the robot's current position — anything else corrupts the
  /// occupancy table.  Skips move_robot's re-validation (a second
  /// canonical_index walk, the adjacency probe, and a second node()
  /// decode — a measurable share of every micro-run instant, paid per
  /// applied move); the occupancy and journal updates are identical.
  void move_robot_stepped(int i, Vec to) {
    Robot& r = robots_[static_cast<std::size_t>(i)];
    const int to_index = grid_.index(to);
    const int from_index = grid_.index(r.pos);
    // Add before remove: add can throw (destination stack overflow) and must
    // do so before any state changed; removing a present color cannot throw.
    occupancy_[static_cast<std::size_t>(to_index)].add(r.color);
    occupancy_[static_cast<std::size_t>(from_index)].remove(r.color);
    r.pos = to;
    if (journal_enabled_) {
      journal_.push_back(from_index);
      journal_.push_back(to_index);
    }
  }

  /// Multiset of colors on the node `v` designates (empty when unoccupied).
  const ColorMultiset& multiset_at(Vec v) const {
    static constexpr ColorMultiset kEmpty;
    const int idx = grid_.canonical_index(v);
    if (idx < 0) return kEmpty;
    return occupancy_[static_cast<std::size_t>(idx)];
  }
  /// Cell content; wall = true for off-world or wall-masked v.
  CellContent cell(Vec v) const {
    const int idx = grid_.canonical_index(v);
    if (idx < 0) return CellContent{.wall = true, .robots = {}};
    return CellContent{.wall = false, .robots = occupancy_[static_cast<std::size_t>(idx)]};
  }
  /// Seed-grid cell lookup: bounds check + row-major occupancy, no topology
  /// dispatch.  Precondition: topology().plain().  The snapshot loop — the
  /// innermost code of the simulator — branches on plain() once and calls
  /// this per cell, so plain grids pay nothing for the topology abstraction
  /// (bench_campaign gates this at 20%).
  CellContent cell_plain(Vec v) const {
    if (v.row < 0 || v.row >= grid_.rows() || v.col < 0 || v.col >= grid_.cols()) {
      return CellContent{.wall = true, .robots = {}};
    }
    return CellContent{.wall = false,
                       .robots = occupancy_[static_cast<std::size_t>(grid_.index(v))]};
  }
  /// The node-indexed occupancy table itself (row-major on plain grids).
  /// The snapshot fill reads it through a local pointer so its stores into
  /// the snapshot cannot force per-cell reloads of the table address.
  std::span<const ColorMultiset> occupancy() const { return occupancy_; }
  bool occupied(Vec v) const { return !multiset_at(v).empty(); }

  /// Robots sorted by (pos, color): configurations that are equal as
  /// multisets of (position, color) pairs produce identical listings.
  std::vector<Robot> canonical_robots() const;
  std::uint64_t canonical_hash() const;
  /// True when both configurations describe the same anonymous placement.
  bool same_placement(const Configuration& other) const;

  /// Paper-style rendering: "{(0,0):{G}, (0,1):{W}}" sorted by node.
  std::string to_string() const;

  /// Enables (or disables) the change journal, clearing any recorded
  /// entries.  While enabled, every set_color/move_robot appends the node
  /// indices it touched (duplicates possible; readers deduplicate).
  void set_journal(bool enabled) {
    journal_enabled_ = enabled;
    journal_.clear();
  }
  bool journal_enabled() const { return journal_enabled_; }
  /// Node indices whose occupancy/color content changed since the last
  /// clear_journal(); empty when journaling is disabled.
  std::span<const int> journal() const { return journal_; }
  void clear_journal() { journal_.clear(); }

 private:
  Topology grid_;
  std::pmr::vector<Robot> robots_;
  /// Node-indexed color multisets, maintained incrementally.
  std::pmr::vector<ColorMultiset> occupancy_;
  bool journal_enabled_ = false;
  std::pmr::vector<int> journal_;
};

/// Convenience: builds a configuration from (node, colors...) placements.
Configuration make_configuration(
    Topology topo, const std::vector<std::pair<Vec, std::vector<Color>>>& placements);

}  // namespace lumi
