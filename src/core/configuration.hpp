// Configurations: positions and light colors of all robots on a grid.
//
// Robots are anonymous in the model, but the simulator tracks them by index
// so that the ASYNC engine can attribute pending phases.  Canonical listing /
// hashing treat robots as interchangeable.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/color.hpp"
#include "src/core/grid.hpp"

namespace lumi {

struct Robot {
  Vec pos;
  Color color;

  friend bool operator==(const Robot&, const Robot&) = default;
};

/// Wall-or-multiset content of one grid cell as seen in a view.
struct CellContent {
  bool wall = false;
  ColorMultiset robots;

  friend bool operator==(const CellContent&, const CellContent&) = default;
};

class Configuration {
 public:
  Configuration(Grid grid, std::vector<Robot> robots);

  const Grid& grid() const { return grid_; }
  int num_robots() const { return static_cast<int>(robots_.size()); }
  const Robot& robot(int i) const { return robots_.at(static_cast<std::size_t>(i)); }
  const std::vector<Robot>& robots() const { return robots_; }

  void set_color(int i, Color c) { robots_.at(static_cast<std::size_t>(i)).color = c; }
  /// Moves robot `i` to `to`; throws std::logic_error if `to` is off-grid or
  /// not adjacent to the robot's current node (robots move along edges).
  void move_robot(int i, Vec to);

  /// Multiset of colors on node v (empty when unoccupied).
  ColorMultiset multiset_at(Vec v) const;
  /// Cell content including walls for off-grid v.
  CellContent cell(Vec v) const;
  bool occupied(Vec v) const { return !multiset_at(v).empty(); }

  /// Robots sorted by (pos, color): configurations that are equal as
  /// multisets of (position, color) pairs produce identical listings.
  std::vector<Robot> canonical_robots() const;
  std::uint64_t canonical_hash() const;
  /// True when both configurations describe the same anonymous placement.
  bool same_placement(const Configuration& other) const;

  /// Paper-style rendering: "{(0,0):{G}, (0,1):{W}}" sorted by node.
  std::string to_string() const;

 private:
  Grid grid_;
  std::vector<Robot> robots_;
};

/// Convenience: builds a configuration from (node, colors...) placements.
Configuration make_configuration(
    Grid grid, const std::vector<std::pair<Vec, std::vector<Color>>>& placements);

}  // namespace lumi
