#include "src/core/compiled.hpp"

#include <mutex>
#include <string>
#include <unordered_map>

namespace lumi {

namespace {

/// Exact structural key of everything matching semantics depend on.  Binary
/// serialization (not to_string) so distinct rule sets can never collide.
std::string matcher_fingerprint(const Algorithm& alg) {
  std::string fp;
  fp.reserve(16 + alg.rules.size() * 64);
  auto byte = [&fp](int v) { fp.push_back(static_cast<char>(v)); };
  auto word = [&fp](std::uint16_t v) {
    fp.push_back(static_cast<char>(v & 0xFF));
    fp.push_back(static_cast<char>(v >> 8));
  };
  byte(alg.phi);
  byte(static_cast<int>(alg.chirality));
  for (const Rule& rule : alg.rules) {
    byte(static_cast<int>(rule.self));
    byte(static_cast<int>(rule.new_color));
    byte(rule.move.has_value() ? 1 + static_cast<int>(*rule.move) : 0);
    byte(static_cast<int>(rule.cells.size()));
    for (const auto& [offset, pattern] : rule.cells) {
      byte(offset.row + kMaxPhi);
      byte(offset.col + kMaxPhi);
      byte(static_cast<int>(pattern.kind()));
      word(pattern.multiset().raw());
    }
  }
  return fp;
}

/// Folds one guard cell's pattern into the row's prefilter planes.  Only
/// constraints that are *implied* by a match are recorded (the planes must
/// never reject a matching snapshot); the dense walk still decides exact
/// multiset equality.
void fold_into_planes(CompiledRule& rule, std::size_t s, std::size_t w,
                      const CellPattern& pattern) {
  const auto bit = static_cast<std::uint16_t>(1u << w);
  switch (pattern.kind()) {
    case CellPattern::Kind::Empty:
      rule.forbid_occupied[s] |= bit;
      rule.forbid_wall[s] |= bit;
      break;
    case CellPattern::Kind::Wall:
      rule.need_wall[s] |= bit;
      break;
    case CellPattern::Kind::EmptyOrWall:
      rule.forbid_occupied[s] |= bit;
      break;
    case CellPattern::Kind::Multiset:
      rule.forbid_wall[s] |= bit;
      if (pattern.multiset().empty()) {
        rule.forbid_occupied[s] |= bit;
      } else {
        rule.need_occupied[s] |= bit;
      }
      break;
    case CellPattern::Kind::Any: break;
  }
}

}  // namespace

SnapshotPlanes snapshot_planes(const Snapshot& snap, int kernel_size) {
  SnapshotPlanes planes;
  for (int w = 0; w < kernel_size; ++w) {
    const CellContent& cell = snap.cells[static_cast<std::size_t>(w)];
    if (cell.wall) {
      planes.wall |= static_cast<std::uint16_t>(1u << w);
    } else if (!cell.robots.empty()) {
      planes.occupied |= static_cast<std::uint16_t>(1u << w);
    }
  }
  return planes;
}

CompiledAlgorithm::CompiledAlgorithm(const Algorithm& alg)
    : phi_(alg.phi),
      kernel_size_(ViewKernel::get(alg.phi).size()),
      syms_(alg.symmetries()) {
  const ViewKernel& kernel = ViewKernel::get(phi_);
  const std::span<const Vec> offsets = kernel.offsets();
  const std::size_t ks = static_cast<std::size_t>(kernel_size_);
  for (std::size_t ri = 0; ri < alg.rules.size(); ++ri) {
    const Rule& rule = alg.rules[ri];
    CompiledRule compiled;
    compiled.rule_index = static_cast<int>(ri);
    compiled.new_color = rule.new_color;
    compiled.patterns.resize(syms_.size() * ks);  // default: implicit gray
    for (std::size_t s = 0; s < syms_.size(); ++s) {
      const Sym sym = syms_[s];
      const std::span<const std::uint8_t> perm = kernel.permutation(sym);
      // The naive matcher checks pattern_at(offsets[i]) against the cell at
      // index_of(apply(sym, offsets[i])); the permutation is a bijection, so
      // scattering each pattern to its world slot yields the dense row.
      for (std::size_t i = 0; i < ks; ++i) {
        compiled.patterns[s * ks + perm[i]] = rule.pattern_at(offsets[i]);
      }
      for (std::size_t w = 0; w < ks; ++w) {
        fold_into_planes(compiled, s, w, compiled.patterns[s * ks + w]);
      }
      compiled.move_by_sym[s] =
          rule.move.has_value() ? static_cast<std::int8_t>(apply(sym, *rule.move))
                                : static_cast<std::int8_t>(-1);
    }
    by_color_[static_cast<std::size_t>(rule.self)].push_back(std::move(compiled));
  }
  // Scatter each group's per-rule planes into the padded SoA lane arrays the
  // block kernels sweep.  Padding lanes are all-ones sentinels: the kernel
  // has at most kMaxKernelSize (13) cells, so need bits 13..15 can never be
  // met and a sentinel lane always rejects.
  for (std::size_t color = 0; color < kMaxColors; ++color) {
    const std::vector<CompiledRule>& rules = by_color_[color];
    GuardGroup& group = groups_[color];
    group.lanes = rules.size() * syms_.size();
    const std::size_t padded =
        (group.lanes + kGuardLaneBlock - 1) / kGuardLaneBlock * kGuardLaneBlock;
    group.need_occupied.assign(padded, 0xFFFF);
    group.forbid_occupied.assign(padded, 0xFFFF);
    group.need_wall.assign(padded, 0xFFFF);
    group.forbid_wall.assign(padded, 0xFFFF);
    for (std::size_t ri = 0; ri < rules.size(); ++ri) {
      for (std::size_t s = 0; s < syms_.size(); ++s) {
        const std::size_t lane = ri * syms_.size() + s;
        group.need_occupied[lane] = rules[ri].need_occupied[s];
        group.forbid_occupied[lane] = rules[ri].forbid_occupied[s];
        group.need_wall[lane] = rules[ri].need_wall[s];
        group.forbid_wall[lane] = rules[ri].forbid_wall[s];
      }
    }
  }
}

std::uint32_t guard_pass_mask_scalar(const GuardGroup& group, SnapshotPlanes planes,
                                     std::size_t base) {
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < kGuardLaneBlock; ++i) {
    const std::size_t lane = base + i;
    const std::uint32_t reject =
        (group.need_occupied[lane] & static_cast<std::uint16_t>(~planes.occupied)) |
        (group.forbid_occupied[lane] & planes.occupied) |
        (group.need_wall[lane] & static_cast<std::uint16_t>(~planes.wall)) |
        (group.forbid_wall[lane] & planes.wall);
    if (reject == 0) mask |= 1u << i;
  }
  return mask;
}

std::uint32_t guard_pass_mask(const GuardGroup& group, SnapshotPlanes planes, std::size_t base) {
  // One-time probe; afterwards a perfectly predicted branch.  The AVX2 TU is
  // compiled with vector flags, so this baseline-ISA TU owns the dispatch.
  static const bool simd = guard_simd_available();
  if (simd) return guard_pass_mask_avx2(group, planes, base);
  return guard_pass_mask_scalar(group, planes, base);
}

std::shared_ptr<const CompiledAlgorithm> CompiledAlgorithm::get(const Algorithm& alg) {
  static std::mutex mu;
  static std::unordered_map<std::string, std::shared_ptr<const CompiledAlgorithm>> cache;
  const std::string key = matcher_fingerprint(alg);
  std::lock_guard lock(mu);
  std::shared_ptr<const CompiledAlgorithm>& slot = cache[key];
  if (!slot) slot = std::make_shared<const CompiledAlgorithm>(alg);
  return slot;
}

}  // namespace lumi
