#include "src/core/matching.hpp"

namespace lumi {

bool guard_matches(const Rule& rule, const Snapshot& snap, Sym sym) {
  if (rule.self != snap.self_color) return false;
  const ViewKernel& kernel = ViewKernel::get(snap.phi);
  // Every kernel cell is constrained: explicitly listed cells by their
  // pattern, all others by the implicit gray (no robot there).
  for (Vec offset : kernel.offsets()) {
    const CellPattern pattern = rule.pattern_at(offset);
    const int world_index = kernel.index_of(apply(sym, offset));
    const CellContent& cell = snap.cells[static_cast<std::size_t>(world_index)];
    if (!pattern.matches(cell)) return false;
  }
  // Guard cells outside the kernel would be caught by Algorithm::validate().
  return true;
}

std::vector<Action> enabled_actions(const Algorithm& alg, const Snapshot& snap) {
  std::vector<Action> out;
  for (std::size_t ri = 0; ri < alg.rules.size(); ++ri) {
    const Rule& rule = alg.rules[ri];
    if (rule.self != snap.self_color) continue;
    for (Sym sym : alg.symmetries()) {
      if (!guard_matches(rule, snap, sym)) continue;
      Action act;
      act.new_color = rule.new_color;
      act.move = rule.move.has_value() ? std::optional<Dir>(apply(sym, *rule.move))
                                       : std::nullopt;
      act.rule_index = static_cast<int>(ri);
      act.sym = sym;
      bool duplicate = false;
      for (const Action& existing : out) {
        if (existing.same_behavior(act)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) out.push_back(act);
    }
  }
  return out;
}

std::vector<Action> enabled_actions(const Algorithm& alg, const Configuration& config,
                                    int robot) {
  return enabled_actions(alg, take_snapshot(config, robot, alg.phi));
}

bool is_enabled(const Algorithm& alg, const Configuration& config, int robot) {
  return !enabled_actions(alg, config, robot).empty();
}

bool is_terminal(const Algorithm& alg, const Configuration& config) {
  for (int i = 0; i < config.num_robots(); ++i) {
    if (is_enabled(alg, config, i)) return false;
  }
  return true;
}

}  // namespace lumi
