#include "src/core/matching.hpp"

#include <bit>
#include <stdexcept>

namespace lumi {

namespace {

/// The compiled tables are dense over the algorithm's own kernel; a snapshot
/// taken at a different phi would leave unfilled cells readable.
void check_phi(const CompiledAlgorithm& alg, const Snapshot& snap) {
  if (snap.phi != alg.phi()) {
    throw std::invalid_argument("matching: snapshot phi differs from the algorithm's phi");
  }
}

/// Sweeps one dense guard row against the snapshot cells.
bool row_matches(const CellPattern* row, const Snapshot& snap, int kernel_size) {
  for (int w = 0; w < kernel_size; ++w) {
    if (!row[w].matches(snap.cells[static_cast<std::size_t>(w)])) return false;
  }
  return true;
}

Action make_action(const CompiledRule& rule, std::span<const Sym> syms, std::size_t s) {
  Action act;
  act.new_color = rule.new_color;
  act.move = rule.move_by_sym[s] >= 0
                 ? std::optional<Dir>(static_cast<Dir>(rule.move_by_sym[s]))
                 : std::nullopt;
  act.rule_index = rule.rule_index;
  act.sym = syms[s];
  return act;
}

}  // namespace

// --- compiled fast path ------------------------------------------------------

std::vector<Action> enabled_actions(const CompiledAlgorithm& alg, const Snapshot& snap) {
  std::vector<Action> out;
  enabled_actions_into(alg, snap, out);
  return out;
}

void enabled_actions_into(const CompiledAlgorithm& alg, const Snapshot& snap,
                          std::vector<Action>& out) {
  check_phi(alg, snap);
  out.clear();
  const int ks = alg.kernel_size();
  // take_snapshot_into filled the planes while touching each cell; reusing
  // them here saves the matcher a second 13-cell sweep per Look.
  const SnapshotPlanes planes = snap.planes;
  const std::span<const Sym> syms = alg.symmetries();
  const std::span<const CompiledRule> rules = alg.rules_for(snap.self_color);
  const GuardGroup& group = alg.guard_group(snap.self_color);
  const std::size_t nsyms = syms.size();
  // The whole self-color group is judged a block of 16 (rule, symmetry)
  // lanes at a time; only surviving lanes pay the dense row walk.  Lanes
  // ascend in rule-then-symmetry order, so witnesses come out identical to
  // the per-rule reference loop.
  for (std::size_t base = 0; base < group.lanes; base += kGuardLaneBlock) {
    std::uint32_t mask = guard_pass_mask(group, planes, base);
    while (mask != 0) {
      const std::size_t lane = base + static_cast<std::size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      const CompiledRule& rule = rules[lane / nsyms];
      const std::size_t s = lane % nsyms;
      const CellPattern* row = rule.patterns.data() + s * static_cast<std::size_t>(ks);
      if (!row_matches(row, snap, ks)) continue;
      const Action act = make_action(rule, syms, s);
      bool duplicate = false;
      for (const Action& existing : out) {
        if (existing.same_behavior(act)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) out.push_back(act);
    }
  }
}

std::vector<Action> enabled_actions(const CompiledAlgorithm& alg, const Configuration& config,
                                    int robot) {
  return enabled_actions(alg, take_snapshot(config, robot, alg.phi()));
}

std::optional<Action> first_enabled(const CompiledAlgorithm& alg, const Snapshot& snap) {
  check_phi(alg, snap);
  const int ks = alg.kernel_size();
  // take_snapshot_into filled the planes while touching each cell; reusing
  // them here saves the matcher a second 13-cell sweep per Look.
  const SnapshotPlanes planes = snap.planes;
  const std::span<const Sym> syms = alg.symmetries();
  const std::span<const CompiledRule> rules = alg.rules_for(snap.self_color);
  const GuardGroup& group = alg.guard_group(snap.self_color);
  const std::size_t nsyms = syms.size();
  for (std::size_t base = 0; base < group.lanes; base += kGuardLaneBlock) {
    std::uint32_t mask = guard_pass_mask(group, planes, base);
    while (mask != 0) {
      const std::size_t lane = base + static_cast<std::size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      const CompiledRule& rule = rules[lane / nsyms];
      const std::size_t s = lane % nsyms;
      const CellPattern* row = rule.patterns.data() + s * static_cast<std::size_t>(ks);
      if (row_matches(row, snap, ks)) return make_action(rule, syms, s);
    }
  }
  return std::nullopt;
}

std::optional<Action> first_enabled(const CompiledAlgorithm& alg, const Configuration& config,
                                    int robot) {
  return first_enabled(alg, take_snapshot(config, robot, alg.phi()));
}

bool is_enabled(const CompiledAlgorithm& alg, const Configuration& config, int robot) {
  return first_enabled(alg, take_snapshot(config, robot, alg.phi())).has_value();
}

bool is_terminal(const CompiledAlgorithm& alg, const Configuration& config) {
  for (int i = 0; i < config.num_robots(); ++i) {
    if (is_enabled(alg, config, i)) return false;
  }
  return true;
}

// --- naive reference matcher -------------------------------------------------

bool guard_matches(const Rule& rule, const Snapshot& snap, Sym sym) {
  if (rule.self != snap.self_color) return false;
  const ViewKernel& kernel = ViewKernel::get(snap.phi);
  // Every kernel cell is constrained: explicitly listed cells by their
  // pattern, all others by the implicit gray (no robot there).
  for (Vec offset : kernel.offsets()) {
    const CellPattern pattern = rule.pattern_at(offset);
    const int world_index = kernel.index_of(apply(sym, offset));
    const CellContent& cell = snap.cells[static_cast<std::size_t>(world_index)];
    if (!pattern.matches(cell)) return false;
  }
  // Guard cells outside the kernel would be caught by Algorithm::validate().
  return true;
}

std::vector<Action> naive_enabled_actions(const Algorithm& alg, const Snapshot& snap) {
  std::vector<Action> out;
  for (std::size_t ri = 0; ri < alg.rules.size(); ++ri) {
    const Rule& rule = alg.rules[ri];
    if (rule.self != snap.self_color) continue;
    for (Sym sym : alg.symmetries()) {
      if (!guard_matches(rule, snap, sym)) continue;
      Action act;
      act.new_color = rule.new_color;
      act.move = rule.move.has_value() ? std::optional<Dir>(apply(sym, *rule.move))
                                       : std::nullopt;
      act.rule_index = static_cast<int>(ri);
      act.sym = sym;
      bool duplicate = false;
      for (const Action& existing : out) {
        if (existing.same_behavior(act)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) out.push_back(act);
    }
  }
  return out;
}

// --- Algorithm-level conveniences --------------------------------------------

std::vector<Action> enabled_actions(const Algorithm& alg, const Snapshot& snap) {
  return enabled_actions(*CompiledAlgorithm::get(alg), snap);
}

std::vector<Action> enabled_actions(const Algorithm& alg, const Configuration& config,
                                    int robot) {
  return enabled_actions(alg, take_snapshot(config, robot, alg.phi));
}

bool is_enabled(const Algorithm& alg, const Configuration& config, int robot) {
  return is_enabled(*CompiledAlgorithm::get(alg), config, robot);
}

bool is_terminal(const Algorithm& alg, const Configuration& config) {
  return is_terminal(*CompiledAlgorithm::get(alg), config);
}

}  // namespace lumi
