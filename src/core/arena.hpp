// Arena (bump) allocator for per-worker run scratch.
//
// A campaign worker executing a batch of micro-runs constructs and destroys
// the same short-lived tables for every item: the configuration's robot
// list, occupancy array and change journal, and the dirty tracker's
// node->robot maps and per-refresh scratch.  At 4x4-grid scale those
// allocations rival the simulation itself.  The Arena turns them into
// pointer bumps inside a few retained chunks: the batch runner calls
// reset() between items, which rewinds every chunk without returning memory
// to the heap, so steady-state batch execution performs no heap traffic at
// all for run-local state.
//
// The arena is a std::pmr::memory_resource, so any std::pmr container can
// live on it; deallocate() is a no-op by design (memory is reclaimed in
// bulk by reset()).  It is single-threaded by contract — each pool worker
// owns one — matching ROOT-Sim's per-LP slab design rather than a shared
// locked heap.
#pragma once

#include <cstddef>
#include <memory>
#include <memory_resource>
#include <vector>

namespace lumi {

class Arena : public std::pmr::memory_resource {
 public:
  /// `chunk_bytes` is the granularity of heap requests; oversized
  /// allocations get a dedicated chunk of exactly their size.
  explicit Arena(std::size_t chunk_bytes = 64 * 1024);
  ~Arena() override = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Rewinds every chunk to empty without releasing it: the next item's
  /// allocations reuse the warm memory.  Anything allocated from the arena
  /// must be dead by now (pmr containers must have been destroyed).
  void reset();

  /// Releases every chunk back to the heap (reset to a fresh arena).
  void release();

  /// Bytes handed out since the last reset().
  std::size_t bytes_in_use() const { return bytes_in_use_; }
  /// Largest bytes_in_use() ever observed (across resets) — how much memory
  /// one batch item actually needs.
  std::size_t high_water() const { return high_water_; }
  /// Heap chunks currently retained.
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* do_allocate(std::size_t bytes, std::size_t alignment) override;
  void do_deallocate(void* p, std::size_t bytes, std::size_t alignment) override;
  bool do_is_equal(const std::pmr::memory_resource& other) const noexcept override;

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< chunks_[active_..] may have free space
  std::size_t bytes_in_use_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace lumi
