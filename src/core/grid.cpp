#include "src/core/grid.hpp"

// Header-only for now; this translation unit anchors the type for the build.
