#include "src/core/grid.hpp"

// Grid is an alias of Topology (src/topo/topology.cpp holds the
// implementation); this translation unit anchors the historical name.
