// Guard cell patterns, following the paper's figure conventions:
//   explicit multiset  -> the cell hosts exactly that multiset of colors,
//   white (Empty)      -> the node exists and hosts no robot,
//   black (Wall)       -> the node does not exist (outside the grid),
//   gray  (EmptyOrWall)-> either of the two above; never hosts a robot.
// `Any` is an extension for user-defined algorithms (matches anything) and is
// not used by the fourteen paper reproductions.
#pragma once

#include <optional>
#include <string>

#include "src/core/configuration.hpp"

namespace lumi {

class CellPattern {
 public:
  enum class Kind : std::uint8_t { EmptyOrWall, Empty, Wall, Multiset, Any };

  constexpr CellPattern() = default;  // gray

  static CellPattern gray() { return CellPattern(Kind::EmptyOrWall, {}); }
  static CellPattern empty() { return CellPattern(Kind::Empty, {}); }
  static CellPattern wall() { return CellPattern(Kind::Wall, {}); }
  static CellPattern any() { return CellPattern(Kind::Any, {}); }
  static CellPattern exactly(ColorMultiset ms) { return CellPattern(Kind::Multiset, ms); }

  Kind kind() const { return kind_; }
  const ColorMultiset& multiset() const { return ms_; }

  bool matches(const CellContent& cell) const {
    switch (kind_) {
      case Kind::EmptyOrWall: return cell.wall || cell.robots.empty();
      case Kind::Empty: return !cell.wall && cell.robots.empty();
      case Kind::Wall: return cell.wall;
      case Kind::Multiset: return !cell.wall && cell.robots == ms_;
      case Kind::Any: return true;
    }
    return false;
  }

  /// True when a robot moving onto this cell is statically safe (the pattern
  /// can only match an existing node).
  bool guarantees_node_exists() const {
    return kind_ == Kind::Empty || kind_ == Kind::Multiset;
  }

  friend bool operator==(const CellPattern&, const CellPattern&) = default;

  std::string to_string() const;

 private:
  constexpr CellPattern(Kind kind, ColorMultiset ms) : kind_(kind), ms_(ms) {}

  Kind kind_ = Kind::EmptyOrWall;
  ColorMultiset ms_;
};

/// Exact intersection of two patterns over cell contents: the pattern matched
/// by precisely the contents both operands match, or nullopt when no content
/// satisfies both.  An explicit empty multiset is normalized to Empty first,
/// so `meet` never distinguishes the two spellings of "node with no robot".
/// This is the decision procedure behind the rule-table analyzer
/// (src/analysis/rule_analysis.hpp): guard domains are finite, so pairwise
/// satisfiability reduces to a per-cell meet.
std::optional<CellPattern> meet(const CellPattern& a, const CellPattern& b);

}  // namespace lumi
