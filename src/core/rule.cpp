#include "src/core/rule.hpp"

#include <stdexcept>

namespace lumi {

Vec offset_from_name(const std::string& name) {
  if (name == "C") return {0, 0};
  if (name == "N") return {-1, 0};
  if (name == "E") return {0, 1};
  if (name == "S") return {1, 0};
  if (name == "W") return {0, -1};
  if (name == "NN") return {-2, 0};
  if (name == "EE") return {0, 2};
  if (name == "SS") return {2, 0};
  if (name == "WW") return {0, -2};
  if (name == "NE") return {-1, 1};
  if (name == "SE") return {1, 1};
  if (name == "SW") return {1, -1};
  if (name == "NW") return {-1, -1};
  throw std::invalid_argument("unknown view offset name: " + name);
}

std::string offset_name(Vec offset) {
  std::string out;
  for (int i = 0; i < -offset.row; ++i) out += 'N';
  for (int i = 0; i < offset.row; ++i) out += 'S';
  std::string ew;
  for (int i = 0; i < -offset.col; ++i) ew += 'W';
  for (int i = 0; i < offset.col; ++i) ew += 'E';
  // Diagonals are named row-part first: NE, SW, ...
  out += ew;
  if (out.empty()) out.push_back('C');  // push_back: gcc-12 flags `= "C"` (-Wrestrict, PR105329)
  return out;
}

CellPattern Rule::pattern_at(Vec offset) const {
  for (const auto& [o, p] : cells) {
    if (o == offset) return p;
  }
  return CellPattern::gray();
}

int Rule::count_cells_at(Vec offset) const {
  int n = 0;
  for (const auto& [o, p] : cells) {
    if (o == offset) n += 1;
  }
  return n;
}

std::string Rule::to_string() const {
  // Sequential appends rather than operator+ chains: gcc-12's inliner raises
  // a spurious -Wrestrict (PR105329) on the chained form.
  std::string out = label;
  out += ": self=";
  out += lumi::to_string(self);
  for (const auto& [o, p] : cells) {
    out += ' ';
    out += offset_name(o);
    out += '=';
    out += p.to_string();
  }
  out += " -> ";
  out += lumi::to_string(new_color);
  out += ',';
  out += move.has_value() ? lumi::to_string(*move) : std::string("Idle");
  return out;
}

RuleBuilder::RuleBuilder(std::string label, Color self) {
  rule_.label = std::move(label);
  rule_.self = self;
  rule_.new_color = self;
}

RuleBuilder& RuleBuilder::cell(const std::string& offset, CellPattern pattern) {
  const Vec o = offset_from_name(offset);
  if (o == Vec{0, 0}) throw std::invalid_argument("use center(...) for the center cell");
  for (const auto& [existing, p] : rule_.cells) {
    if (existing == o) throw std::invalid_argument(rule_.label + ": duplicate guard cell " + offset);
  }
  rule_.cells.emplace_back(o, pattern);
  return *this;
}

RuleBuilder& RuleBuilder::cell(const std::string& offset, std::initializer_list<Color> multiset) {
  return cell(offset, CellPattern::exactly(ColorMultiset(multiset)));
}

RuleBuilder& RuleBuilder::center(std::initializer_list<Color> multiset) {
  ColorMultiset ms(multiset);
  if (ms.count(rule_.self) == 0) {
    throw std::invalid_argument(rule_.label + ": center multiset must contain the robot itself");
  }
  for (const auto& [existing, p] : rule_.cells) {
    if (existing == Vec{0, 0}) throw std::invalid_argument(rule_.label + ": duplicate center");
  }
  rule_.cells.emplace_back(Vec{0, 0}, CellPattern::exactly(ms));
  center_set_ = true;
  return *this;
}

RuleBuilder& RuleBuilder::becomes(Color new_color) {
  rule_.new_color = new_color;
  return *this;
}

RuleBuilder& RuleBuilder::moves(Dir guard_frame_dir) {
  if (action_set_) throw std::invalid_argument(rule_.label + ": movement already set");
  rule_.move = guard_frame_dir;
  action_set_ = true;
  return *this;
}

RuleBuilder& RuleBuilder::idle() {
  if (action_set_) throw std::invalid_argument(rule_.label + ": movement already set");
  rule_.move = std::nullopt;
  action_set_ = true;
  return *this;
}

Rule RuleBuilder::build() const {
  Rule out = rule_;
  if (!center_set_) {
    out.cells.emplace_back(Vec{0, 0}, CellPattern::exactly(ColorMultiset{out.self}));
  }
  return out;
}

}  // namespace lumi
