// Finite m x n grid graph (the paper's G = (V, E)).
#pragma once

#include <stdexcept>
#include <string>

#include "src/core/geometry.hpp"

namespace lumi {

/// Finite grid of `rows x cols` nodes; nodes are addressed by Vec{row, col}
/// with 0 <= row < rows and 0 <= col < cols.  Edges connect nodes at
/// Manhattan distance 1 (implicit; the class only answers membership and
/// indexing queries).
class Grid {
 public:
  Grid(int rows, int cols) : rows_(rows), cols_(cols) {
    if (rows < 1 || cols < 1) throw std::invalid_argument("Grid dimensions must be positive");
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int num_nodes() const { return rows_ * cols_; }

  bool contains(Vec v) const {
    return v.row >= 0 && v.row < rows_ && v.col >= 0 && v.col < cols_;
  }

  /// Row-major node index; precondition: contains(v).
  int index(Vec v) const { return v.row * cols_ + v.col; }
  Vec node(int index) const { return {index / cols_, index % cols_}; }

  /// Degree-based classification used in Theorem 1's proof.
  bool is_end_node(Vec v) const {
    int degree = 0;
    for (Dir d : kAllDirs) degree += contains(v + dir_vec(d)) ? 1 : 0;
    return degree < 4;
  }
  /// Inner node: at distance >= 3 from every end node, i.e. at least 3 away
  /// from every border.
  bool is_inner_node(Vec v) const {
    return v.row >= 3 && v.row < rows_ - 3 && v.col >= 3 && v.col < cols_ - 3;
  }

  friend bool operator==(const Grid&, const Grid&) = default;

  std::string to_string() const {
    return std::to_string(rows_) + "x" + std::to_string(cols_);
  }

 private:
  int rows_;
  int cols_;
};

}  // namespace lumi
