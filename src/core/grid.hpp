// Finite m x n grid graph (the paper's G = (V, E)).
//
// Since the topology subsystem landed, the plain grid is one family of
// src/topo/topology.hpp's Topology, and `Grid` is an alias of that class:
// Grid(rows, cols) constructs the plain family with the seed semantics
// (bounds-checked membership, row-major indexing, walls outside the box),
// so every pre-topology call site — and every golden trace — is the
// plain-grid-through-Topology path.
#pragma once

#include "src/topo/topology.hpp"

namespace lumi {

using Grid = Topology;

}  // namespace lumi
