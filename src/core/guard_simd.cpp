// AVX2 guard-plane kernel.  This is the only translation unit compiled with
// vector flags (-mavx2, added by CMake when the compiler supports it and
// LUMI_FORCE_SCALAR_GUARDS is off), so nothing here may be called unless
// guard_simd_available() — which also probes the CPU at runtime — is true.
// The portable scalar path lives in compiled.cpp and is selected at build
// time by omitting LUMI_GUARD_SIMD; the two are differentially pinned by
// tests/test_guard_simd.cpp.
#include "src/core/compiled.hpp"

#if defined(LUMI_GUARD_SIMD)
#include <immintrin.h>
#endif

namespace lumi {

#if defined(LUMI_GUARD_SIMD)

bool guard_simd_available() { return __builtin_cpu_supports("avx2") != 0; }

std::uint32_t guard_pass_mask_avx2(const GuardGroup& group, SnapshotPlanes planes,
                                   std::size_t base) {
  // A lane survives iff
  //   (need_occ & ~occ) | (forbid_occ & occ) | (need_wall & ~wall) | (forbid_wall & wall) == 0
  // evaluated for 16 u16 lanes at once against the broadcast snapshot planes.
  const __m256i occ = _mm256_set1_epi16(static_cast<short>(planes.occupied));
  const __m256i wall = _mm256_set1_epi16(static_cast<short>(planes.wall));
  const __m256i need_occ =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(group.need_occupied.data() + base));
  const __m256i forbid_occ =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(group.forbid_occupied.data() + base));
  const __m256i need_wall =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(group.need_wall.data() + base));
  const __m256i forbid_wall =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(group.forbid_wall.data() + base));
  const __m256i reject = _mm256_or_si256(
      _mm256_or_si256(_mm256_andnot_si256(occ, need_occ), _mm256_and_si256(forbid_occ, occ)),
      _mm256_or_si256(_mm256_andnot_si256(wall, need_wall), _mm256_and_si256(forbid_wall, wall)));
  const __m256i pass = _mm256_cmpeq_epi16(reject, _mm256_setzero_si256());
  // packs squeezes the 16 pass words to bytes within each 128-bit half:
  // movemask bits 0..7 are lanes 0..7 and bits 16..23 are lanes 8..15.
  const __m256i packed = _mm256_packs_epi16(pass, _mm256_setzero_si256());
  const std::uint32_t m = static_cast<std::uint32_t>(_mm256_movemask_epi8(packed));
  return (m & 0xFFu) | ((m >> 8) & 0xFF00u);
}

#else  // scalar-only build (LUMI_FORCE_SCALAR_GUARDS, or no AVX2 compiler support)

bool guard_simd_available() { return false; }

std::uint32_t guard_pass_mask_avx2(const GuardGroup& group, SnapshotPlanes planes,
                                   std::size_t base) {
  // Keeps the symbol linkable in scalar builds; never reached through
  // guard_pass_mask (guard_simd_available() is false).
  return guard_pass_mask_scalar(group, planes, base);
}

#endif

}  // namespace lumi
