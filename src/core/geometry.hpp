// Grid geometry: offsets, cardinal directions and the dihedral symmetry
// group D4 used to model disoriented robots.
//
// Coordinates follow the paper's v_{i,j} convention: `row` (i) grows toward
// global South and `col` (j) grows toward global East.  Robots never see
// these global directions; symmetries below describe the possible local
// frames a robot's snapshot may be expressed in.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace lumi {

/// Offset (or absolute position) on the grid.
struct Vec {
  int row = 0;
  int col = 0;

  friend constexpr Vec operator+(Vec a, Vec b) { return {a.row + b.row, a.col + b.col}; }
  friend constexpr Vec operator-(Vec a, Vec b) { return {a.row - b.row, a.col - b.col}; }
  friend constexpr bool operator==(Vec, Vec) = default;
  /// Lexicographic order (row-major) used for canonical listings.
  friend constexpr bool operator<(Vec a, Vec b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  }
};

/// Manhattan (hop) distance between grid nodes.
constexpr int manhattan(Vec a, Vec b) {
  const int dr = a.row - b.row;
  const int dc = a.col - b.col;
  return (dr < 0 ? -dr : dr) + (dc < 0 ? -dc : dc);
}

/// Cardinal direction in some frame (global or a robot's local frame).
enum class Dir : std::uint8_t { North = 0, East = 1, South = 2, West = 3 };

constexpr std::array<Dir, 4> kAllDirs = {Dir::North, Dir::East, Dir::South, Dir::West};

/// Unit offset for a direction (North decreases the row index).
constexpr Vec dir_vec(Dir d) {
  switch (d) {
    case Dir::North: return {-1, 0};
    case Dir::East: return {0, 1};
    case Dir::South: return {1, 0};
    case Dir::West: return {0, -1};
  }
  return {0, 0};
}

constexpr Dir opposite(Dir d) { return static_cast<Dir>((static_cast<int>(d) + 2) % 4); }

std::string to_string(Dir d);

/// Element of the dihedral group D4 acting on offsets.
///
/// `apply(g, v)` first mirrors (col -> -col) when `g.mirror` is set, then
/// rotates clockwise by `g.rot` quarter turns.  Robots with common chirality
/// may observe their view in any of the 4 rotations; without chirality all 8
/// elements are possible.
struct Sym {
  std::uint8_t rot = 0;     ///< quarter turns clockwise, 0..3
  bool mirror = false;      ///< east-west flip applied before rotating

  friend constexpr bool operator==(Sym, Sym) = default;
};

constexpr Vec rotate_cw(Vec v, int quarter_turns) {
  for (int t = 0; t < (quarter_turns & 3); ++t) v = Vec{v.col, -v.row};
  return v;
}

constexpr Vec apply(Sym g, Vec v) {
  if (g.mirror) v.col = -v.col;
  return rotate_cw(v, g.rot);
}

constexpr Dir apply(Sym g, Dir d) {
  const Vec v = apply(g, dir_vec(d));
  for (Dir cand : kAllDirs) {
    if (dir_vec(cand) == v) return cand;
  }
  return d;  // unreachable: unit vectors map to unit vectors
}

/// The four orientation-preserving symmetries (common chirality).
std::span<const Sym> rotations();
/// All eight symmetries (no common chirality).
std::span<const Sym> all_symmetries();

}  // namespace lumi
