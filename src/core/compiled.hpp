// Compiled matcher: an Algorithm's sparse guards flattened, once, into dense
// kernel-indexed pattern tables so the match inner loop is a straight sweep
// over snapshot cells — no index_of scans, no Rule::pattern_at lookups, no
// per-symmetry offset mapping at match time.
//
// For each rule and each admissible symmetry s the compiler stores a row of
// kernel_size() CellPatterns such that
//
//   guard matches under s  <=>  row[w].matches(snapshot.cells[w]) for all w,
//
// together with the rule's movement premapped into the global frame through
// s.  Rules are grouped by their required self color so matching touches
// only candidates that can possibly fire.  Compilations are cached by a
// structural fingerprint (phi, chirality, rules) and shared read-only across
// threads, so every campaign job running the same algorithm reuses one
// compilation.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/core/algorithm.hpp"
#include "src/core/view.hpp"

namespace lumi {

/// Recomputes SnapshotPlanes (see view.hpp) from a snapshot's cells.  The
/// hot path reads the masks Snapshot carries instead — take_snapshot_into
/// fills them while touching each cell anyway — so this is the reference
/// builder the differential tests pin that fused fill against.
SnapshotPlanes snapshot_planes(const Snapshot& snap, int kernel_size);

/// One rule compiled against the view kernel.  Field order mirrors Action
/// construction in the matcher.
struct CompiledRule {
  int rule_index = -1;      ///< index into the source Algorithm::rules
  Color new_color = Color::G;
  /// Dense guard rows: patterns[s * kernel_size + w] constrains snapshot
  /// cell w under the s-th admissible symmetry.
  std::vector<CellPattern> patterns;
  /// Movement premapped to the global frame per symmetry; -1 = stay.
  std::array<std::int8_t, 8> move_by_sym{};
  /// Guard-row prefilter planes, derived from each cell's pattern kind and
  /// multiset: cells the guard requires occupied / forbids occupied, and
  /// requires / forbids to be walls, per symmetry.  A snapshot whose
  /// SnapshotPlanes violate any of them cannot match the row, so the dense
  /// pattern walk is skipped entirely.
  std::array<std::uint16_t, 8> need_occupied{};
  std::array<std::uint16_t, 8> forbid_occupied{};
  std::array<std::uint16_t, 8> need_wall{};
  std::array<std::uint16_t, 8> forbid_wall{};

  /// True when the planes alone rule out a match under symmetry slot `s`.
  bool planes_reject(std::size_t s, SnapshotPlanes planes) const {
    return ((need_occupied[s] & static_cast<std::uint16_t>(~planes.occupied)) |
            (forbid_occupied[s] & planes.occupied) |
            (need_wall[s] & static_cast<std::uint16_t>(~planes.wall)) |
            (forbid_wall[s] & planes.wall)) != 0;
  }
};

/// Lanes per guard-plane block: 16 u16 planes fill one 256-bit register, so
/// the vector kernel judges 16 (rule, symmetry) slots per compare sequence.
inline constexpr std::size_t kGuardLaneBlock = 16;

/// Structure-of-arrays guard-plane prefilter over one self-color rule group.
/// Lane `r * num_symmetries + s` holds the planes of the group's r-th rule
/// under its s-th admissible symmetry — the same rule-then-symmetry order the
/// matcher reports witnesses in.  The arrays are padded to a multiple of
/// kGuardLaneBlock with always-reject sentinels (all planes 0xFFFF: the
/// kernel has at most 13 cells, so a sentinel's high need-bits can never be
/// satisfied), letting the kernels sweep whole blocks unconditionally.
struct GuardGroup {
  std::size_t lanes = 0;  ///< real lanes (rules * symmetries), before padding
  std::vector<std::uint16_t> need_occupied;
  std::vector<std::uint16_t> forbid_occupied;
  std::vector<std::uint16_t> need_wall;
  std::vector<std::uint16_t> forbid_wall;
};

/// Bitmask (bit i set = lane base+i survives) of the planes prefilter over
/// one block of kGuardLaneBlock lanes.  `base` must be block-aligned and
/// within the padded arrays.  A set bit means the snapshot *may* match the
/// lane's dense row; a clear bit proves it cannot.  The scalar reference and
/// the dispatching entry point are differentially pinned against each other
/// (tests/test_guard_simd.cpp).
std::uint32_t guard_pass_mask_scalar(const GuardGroup& group, SnapshotPlanes planes,
                                     std::size_t base);
/// AVX2 kernel; defined as a scalar delegate when the build excludes SIMD
/// (so the symbol always links).  Call only when guard_simd_available().
std::uint32_t guard_pass_mask_avx2(const GuardGroup& group, SnapshotPlanes planes,
                                   std::size_t base);
/// True when the vector kernel is compiled in AND the CPU supports it; the
/// build-time switch is -DLUMI_FORCE_SCALAR_GUARDS (CMake option of the same
/// name), which pins the portable scalar path.
bool guard_simd_available();
/// Build-time-selected entry point: the AVX2 kernel when available, the
/// scalar reference otherwise.  Verdicts are bit-identical either way.
std::uint32_t guard_pass_mask(const GuardGroup& group, SnapshotPlanes planes, std::size_t base);

class CompiledAlgorithm {
 public:
  explicit CompiledAlgorithm(const Algorithm& alg);

  /// Compiles `alg` or returns the shared cached compilation.  Two
  /// algorithms with identical matching semantics (same phi, chirality and
  /// rule list) share one entry; the cache is thread-safe and the returned
  /// object immutable.
  static std::shared_ptr<const CompiledAlgorithm> get(const Algorithm& alg);

  int phi() const { return phi_; }
  int kernel_size() const { return kernel_size_; }
  /// The admissible symmetries, in the same order as Algorithm::symmetries().
  std::span<const Sym> symmetries() const { return syms_; }
  /// Rules whose self color is `self`, preserving source rule order.
  std::span<const CompiledRule> rules_for(Color self) const {
    return by_color_[static_cast<std::size_t>(self)];
  }
  /// The SoA guard-plane prefilter for the `self` rule group (lane order
  /// matches rules_for: rule-major, symmetry-minor).
  const GuardGroup& guard_group(Color self) const {
    return groups_[static_cast<std::size_t>(self)];
  }

 private:
  int phi_;
  int kernel_size_;
  std::span<const Sym> syms_;
  std::array<std::vector<CompiledRule>, kMaxColors> by_color_;
  std::array<GuardGroup, kMaxColors> groups_;
};

}  // namespace lumi
