// Compiled matcher: an Algorithm's sparse guards flattened, once, into dense
// kernel-indexed pattern tables so the match inner loop is a straight sweep
// over snapshot cells — no index_of scans, no Rule::pattern_at lookups, no
// per-symmetry offset mapping at match time.
//
// For each rule and each admissible symmetry s the compiler stores a row of
// kernel_size() CellPatterns such that
//
//   guard matches under s  <=>  row[w].matches(snapshot.cells[w]) for all w,
//
// together with the rule's movement premapped into the global frame through
// s.  Rules are grouped by their required self color so matching touches
// only candidates that can possibly fire.  Compilations are cached by a
// structural fingerprint (phi, chirality, rules) and shared read-only across
// threads, so every campaign job running the same algorithm reuses one
// compilation.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/core/algorithm.hpp"
#include "src/core/view.hpp"

namespace lumi {

/// One rule compiled against the view kernel.  Field order mirrors Action
/// construction in the matcher.
struct CompiledRule {
  int rule_index = -1;      ///< index into the source Algorithm::rules
  Color new_color = Color::G;
  /// Dense guard rows: patterns[s * kernel_size + w] constrains snapshot
  /// cell w under the s-th admissible symmetry.
  std::vector<CellPattern> patterns;
  /// Movement premapped to the global frame per symmetry; -1 = stay.
  std::array<std::int8_t, 8> move_by_sym{};
};

class CompiledAlgorithm {
 public:
  explicit CompiledAlgorithm(const Algorithm& alg);

  /// Compiles `alg` or returns the shared cached compilation.  Two
  /// algorithms with identical matching semantics (same phi, chirality and
  /// rule list) share one entry; the cache is thread-safe and the returned
  /// object immutable.
  static std::shared_ptr<const CompiledAlgorithm> get(const Algorithm& alg);

  int phi() const { return phi_; }
  int kernel_size() const { return kernel_size_; }
  /// The admissible symmetries, in the same order as Algorithm::symmetries().
  std::span<const Sym> symmetries() const { return syms_; }
  /// Rules whose self color is `self`, preserving source rule order.
  std::span<const CompiledRule> rules_for(Color self) const {
    return by_color_[static_cast<std::size_t>(self)];
  }

 private:
  int phi_;
  int kernel_size_;
  std::span<const Sym> syms_;
  std::array<std::vector<CompiledRule>, kMaxColors> by_color_;
};

}  // namespace lumi
