// Compiled matcher: an Algorithm's sparse guards flattened, once, into dense
// kernel-indexed pattern tables so the match inner loop is a straight sweep
// over snapshot cells — no index_of scans, no Rule::pattern_at lookups, no
// per-symmetry offset mapping at match time.
//
// For each rule and each admissible symmetry s the compiler stores a row of
// kernel_size() CellPatterns such that
//
//   guard matches under s  <=>  row[w].matches(snapshot.cells[w]) for all w,
//
// together with the rule's movement premapped into the global frame through
// s.  Rules are grouped by their required self color so matching touches
// only candidates that can possibly fire.  Compilations are cached by a
// structural fingerprint (phi, chirality, rules) and shared read-only across
// threads, so every campaign job running the same algorithm reuses one
// compilation.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/core/algorithm.hpp"
#include "src/core/view.hpp"

namespace lumi {

/// Bitset planes over the kernel cells of one snapshot (bit w = cell w):
/// which cells are occupied by at least one robot, and which are walls.
/// kMaxKernelSize = 13 bits fit one u16 each.
struct SnapshotPlanes {
  std::uint16_t occupied = 0;
  std::uint16_t wall = 0;
};

SnapshotPlanes snapshot_planes(const Snapshot& snap, int kernel_size);

/// One rule compiled against the view kernel.  Field order mirrors Action
/// construction in the matcher.
struct CompiledRule {
  int rule_index = -1;      ///< index into the source Algorithm::rules
  Color new_color = Color::G;
  /// Dense guard rows: patterns[s * kernel_size + w] constrains snapshot
  /// cell w under the s-th admissible symmetry.
  std::vector<CellPattern> patterns;
  /// Movement premapped to the global frame per symmetry; -1 = stay.
  std::array<std::int8_t, 8> move_by_sym{};
  /// Guard-row prefilter planes, derived from each cell's pattern kind and
  /// multiset: cells the guard requires occupied / forbids occupied, and
  /// requires / forbids to be walls, per symmetry.  A snapshot whose
  /// SnapshotPlanes violate any of them cannot match the row, so the dense
  /// pattern walk is skipped entirely.
  std::array<std::uint16_t, 8> need_occupied{};
  std::array<std::uint16_t, 8> forbid_occupied{};
  std::array<std::uint16_t, 8> need_wall{};
  std::array<std::uint16_t, 8> forbid_wall{};

  /// True when the planes alone rule out a match under symmetry slot `s`.
  bool planes_reject(std::size_t s, SnapshotPlanes planes) const {
    return ((need_occupied[s] & static_cast<std::uint16_t>(~planes.occupied)) |
            (forbid_occupied[s] & planes.occupied) |
            (need_wall[s] & static_cast<std::uint16_t>(~planes.wall)) |
            (forbid_wall[s] & planes.wall)) != 0;
  }
};

class CompiledAlgorithm {
 public:
  explicit CompiledAlgorithm(const Algorithm& alg);

  /// Compiles `alg` or returns the shared cached compilation.  Two
  /// algorithms with identical matching semantics (same phi, chirality and
  /// rule list) share one entry; the cache is thread-safe and the returned
  /// object immutable.
  static std::shared_ptr<const CompiledAlgorithm> get(const Algorithm& alg);

  int phi() const { return phi_; }
  int kernel_size() const { return kernel_size_; }
  /// The admissible symmetries, in the same order as Algorithm::symmetries().
  std::span<const Sym> symmetries() const { return syms_; }
  /// Rules whose self color is `self`, preserving source rule order.
  std::span<const CompiledRule> rules_for(Color self) const {
    return by_color_[static_cast<std::size_t>(self)];
  }

 private:
  int phi_;
  int kernel_size_;
  std::span<const Sym> syms_;
  std::array<std::vector<CompiledRule>, kMaxColors> by_color_;
};

}  // namespace lumi
