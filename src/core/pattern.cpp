#include "src/core/pattern.hpp"

namespace lumi {

std::string CellPattern::to_string() const {
  switch (kind_) {
    case Kind::EmptyOrWall: return "gray";
    case Kind::Empty: return "empty";
    case Kind::Wall: return "wall";
    case Kind::Multiset: return ms_.to_string();
    case Kind::Any: return "any";
  }
  return "?";
}

}  // namespace lumi
