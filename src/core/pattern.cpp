#include "src/core/pattern.hpp"

namespace lumi {

std::string CellPattern::to_string() const {
  switch (kind_) {
    case Kind::EmptyOrWall: return "gray";
    case Kind::Empty: return "empty";
    case Kind::Wall: return "wall";
    case Kind::Multiset: return ms_.to_string();
    case Kind::Any: return "any";
  }
  return "?";
}

std::optional<CellPattern> meet(const CellPattern& a, const CellPattern& b) {
  using Kind = CellPattern::Kind;
  // Normalize Multiset{} to Empty so the case analysis below can assume
  // every Multiset requires at least one robot.
  const auto canonical = [](const CellPattern& p) {
    return p.kind() == Kind::Multiset && p.multiset().empty() ? CellPattern::empty() : p;
  };
  const CellPattern x = canonical(a);
  const CellPattern y = canonical(b);
  if (x.kind() == Kind::Any) return y;
  if (y.kind() == Kind::Any) return x;
  // Gray admits {empty, wall} and nothing hosting a robot, so it refines to
  // whichever robot-free kind the other side pins — and clashes with any
  // (now guaranteed nonempty) multiset.
  if (x.kind() == Kind::EmptyOrWall) {
    return y.kind() == Kind::Multiset ? std::nullopt : std::optional<CellPattern>(y);
  }
  if (y.kind() == Kind::EmptyOrWall) {
    return x.kind() == Kind::Multiset ? std::nullopt : std::optional<CellPattern>(x);
  }
  if (x.kind() != y.kind()) return std::nullopt;  // Empty/Wall/Multiset are pairwise disjoint
  if (x.kind() == Kind::Multiset && !(x.multiset() == y.multiset())) return std::nullopt;
  return x;
}

}  // namespace lumi
