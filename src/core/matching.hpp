// Rule matching: which rules a robot can execute, under which symmetries.
//
// A robot observes its snapshot in an unknown local frame.  With common
// chirality the frame is one of 4 rotations of the global frame; without, it
// is one of 8 rotations/reflections.  A rule is enabled if the snapshot read
// through some admissible symmetry matches the guard; the resulting action
// carries the movement mapped back into the global frame.  When several
// (view, rule) combinations match, the scheduler picks one (Section 2.2 of
// the paper) — callers receive all distinct behaviors.
//
// Two implementations coexist: the CompiledAlgorithm fast path (dense
// kernel-indexed tables, used by the engines/runner/checkers) and the naive
// sparse-scan reference the fast path is differentially tested against.
// The Algorithm-level overloads route through the compiled cache, so every
// caller gets the fast path; hot loops should obtain the CompiledAlgorithm
// once via CompiledAlgorithm::get and use it directly.
#pragma once

#include <optional>
#include <vector>

#include "src/core/algorithm.hpp"
#include "src/core/compiled.hpp"
#include "src/core/view.hpp"

namespace lumi {

/// A concrete action a robot may take, expressed in the global frame.
struct Action {
  Color new_color = Color::G;
  std::optional<Dir> move;  ///< global frame; nullopt = stay
  int rule_index = -1;      ///< index into Algorithm::rules
  Sym sym;                  ///< symmetry the guard matched under

  /// Two actions are behaviorally identical when they recolor and move the
  /// robot the same way, regardless of which rule/symmetry produced them.
  bool same_behavior(const Action& other) const {
    return new_color == other.new_color && move == other.move;
  }
};

// --- compiled fast path ------------------------------------------------------

/// All behaviorally distinct actions enabled for the snapshot (at most one
/// per (new_color, move) pair; `rule_index`/`sym` identify the first witness
/// in rule-then-symmetry order, identical to the naive reference).
std::vector<Action> enabled_actions(const CompiledAlgorithm& alg, const Snapshot& snap);
std::vector<Action> enabled_actions(const CompiledAlgorithm& alg, const Configuration& config,
                                    int robot);
/// In-place variant reusing `out`'s capacity (the incremental tracker's
/// recompute loop calls this once per dirty robot).
void enabled_actions_into(const CompiledAlgorithm& alg, const Snapshot& snap,
                          std::vector<Action>& out);

/// First enabled action in rule-then-symmetry order, or nullopt when the
/// robot is disabled.  Allocation-free: no action vector is built.
std::optional<Action> first_enabled(const CompiledAlgorithm& alg, const Snapshot& snap);
std::optional<Action> first_enabled(const CompiledAlgorithm& alg, const Configuration& config,
                                    int robot);

bool is_enabled(const CompiledAlgorithm& alg, const Configuration& config, int robot);

/// True when no robot is enabled (a terminal configuration for FSYNC/SSYNC).
bool is_terminal(const CompiledAlgorithm& alg, const Configuration& config);

// --- naive reference matcher -------------------------------------------------

/// True if the snapshot matches `rule` through symmetry `sym` (sparse scan;
/// the reference semantics the compiled matcher is tested against).
bool guard_matches(const Rule& rule, const Snapshot& snap, Sym sym);

/// Reference implementation of enabled_actions via guard_matches.
std::vector<Action> naive_enabled_actions(const Algorithm& alg, const Snapshot& snap);

// --- Algorithm-level conveniences (routed through the compiled cache) --------

std::vector<Action> enabled_actions(const Algorithm& alg, const Snapshot& snap);

/// Convenience overload snapshotting the live configuration.
std::vector<Action> enabled_actions(const Algorithm& alg, const Configuration& config, int robot);

bool is_enabled(const Algorithm& alg, const Configuration& config, int robot);

/// True when no robot is enabled (a terminal configuration for FSYNC/SSYNC).
bool is_terminal(const Algorithm& alg, const Configuration& config);

}  // namespace lumi
