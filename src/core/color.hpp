// Light colors and per-node color multisets.
//
// The paper's algorithms use at most three colors (G, W, B); a fourth slot is
// available for user-defined algorithms.  A node can host several robots, so
// its content is a multiset of colors; we pack the four counters into a
// single 16-bit word (4 bits each) which makes multisets trivially
// comparable and hashable.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>

namespace lumi {

enum class Color : std::uint8_t { G = 0, W = 1, B = 2, R = 3 };

inline constexpr int kMaxColors = 4;
inline constexpr int kMaxRobotsPerNode = 15;  // 4-bit counter per color

char color_letter(Color c);
std::string to_string(Color c);
/// Parses a single-letter color name; throws std::invalid_argument otherwise.
Color color_from_letter(char letter);

/// Multiset of robot colors present on one node.
class ColorMultiset {
 public:
  constexpr ColorMultiset() = default;
  ColorMultiset(std::initializer_list<Color> colors) {
    for (Color c : colors) add(c);
  }

  constexpr int count(Color c) const {
    return static_cast<int>((bits_ >> shift(c)) & 0xF);
  }
  constexpr int size() const {
    int total = 0;
    for (int i = 0; i < kMaxColors; ++i) total += static_cast<int>((bits_ >> (4 * i)) & 0xF);
    return total;
  }
  constexpr bool empty() const { return bits_ == 0; }

  void add(Color c);     ///< throws std::overflow_error beyond kMaxRobotsPerNode
  void remove(Color c);  ///< throws std::logic_error if absent

  constexpr std::uint16_t raw() const { return bits_; }

  friend constexpr bool operator==(ColorMultiset, ColorMultiset) = default;

  /// Renders like the paper: "{G,W}"; empty multiset renders as "{}".
  std::string to_string() const;

 private:
  static constexpr int shift(Color c) { return 4 * static_cast<int>(c); }
  std::uint16_t bits_ = 0;
};

}  // namespace lumi
