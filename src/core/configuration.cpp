#include "src/core/configuration.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace lumi {

Configuration::Configuration(Grid grid, std::vector<Robot> robots)
    : grid_(grid),
      robots_(std::move(robots)),
      occupancy_(static_cast<std::size_t>(grid_.num_nodes())) {
  for (const Robot& r : robots_) {
    if (!grid_.contains(r.pos)) throw std::invalid_argument("robot placed outside the grid");
    occupancy_[static_cast<std::size_t>(grid_.index(r.pos))].add(r.color);
  }
}

void Configuration::move_robot(int i, Vec to) {
  Robot& r = robots_.at(static_cast<std::size_t>(i));
  if (!grid_.contains(to)) throw std::logic_error("move_robot: target outside the grid");
  if (manhattan(r.pos, to) != 1) throw std::logic_error("move_robot: target not adjacent");
  const int to_index = grid_.index(to);
  const int from_index = grid_.index(r.pos);
  // Add before remove: add can throw (destination stack overflow) and must
  // do so before any state changed; removing a present color cannot throw.
  occupancy_[static_cast<std::size_t>(to_index)].add(r.color);
  occupancy_[static_cast<std::size_t>(from_index)].remove(r.color);
  r.pos = to;
  if (journal_enabled_) {
    journal_.push_back(from_index);
    journal_.push_back(to_index);
  }
}

std::vector<Robot> Configuration::canonical_robots() const {
  std::vector<Robot> sorted = robots_;
  std::sort(sorted.begin(), sorted.end(), [](const Robot& a, const Robot& b) {
    if (a.pos != b.pos) return a.pos < b.pos;
    return a.color < b.color;
  });
  return sorted;
}

std::uint64_t Configuration::canonical_hash() const {
  // FNV-1a over the canonical robot listing plus grid dimensions.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(grid_.rows()));
  mix(static_cast<std::uint64_t>(grid_.cols()));
  for (const Robot& r : canonical_robots()) {
    mix(static_cast<std::uint64_t>(grid_.index(r.pos)));
    mix(static_cast<std::uint64_t>(r.color));
  }
  return h;
}

bool Configuration::same_placement(const Configuration& other) const {
  return grid_ == other.grid_ && canonical_robots() == other.canonical_robots();
}

std::string Configuration::to_string() const {
  std::map<std::pair<int, int>, ColorMultiset> by_node;
  for (const Robot& r : robots_) {
    auto [it, inserted] = by_node.try_emplace({r.pos.row, r.pos.col});
    it->second.add(r.color);
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [node, ms] : by_node) {
    if (!first) out += ", ";
    first = false;
    // Sequential appends: the chained operator+ form trips gcc-12's spurious
    // -Wrestrict (PR105329).
    out += '(';
    out += std::to_string(node.first);
    out += ',';
    out += std::to_string(node.second);
    out += "):";
    out += ms.to_string();
  }
  out += "}";
  return out;
}

Configuration make_configuration(
    Grid grid, const std::vector<std::pair<Vec, std::vector<Color>>>& placements) {
  std::vector<Robot> robots;
  for (const auto& [pos, colors] : placements) {
    for (Color c : colors) robots.push_back(Robot{pos, c});
  }
  return Configuration(grid, std::move(robots));
}

}  // namespace lumi
