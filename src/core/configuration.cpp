#include "src/core/configuration.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace lumi {

Configuration::Configuration(Topology topo, std::vector<Robot> robots,
                             std::pmr::memory_resource* mem)
    : grid_(std::move(topo)),
      robots_(robots.begin(), robots.end(),
              mem != nullptr ? mem : std::pmr::get_default_resource()),
      occupancy_(static_cast<std::size_t>(grid_.num_nodes()),
                 mem != nullptr ? mem : std::pmr::get_default_resource()),
      journal_(mem != nullptr ? mem : std::pmr::get_default_resource()) {
  for (Robot& r : robots_) {
    const int idx = grid_.canonical_index(r.pos);
    if (idx < 0) throw std::invalid_argument("robot placed outside the grid");
    r.pos = grid_.node(idx);  // canonical storage (wrapped placements fold in)
    occupancy_[static_cast<std::size_t>(idx)].add(r.color);
  }
}

Configuration::Configuration(const Configuration& other, std::pmr::memory_resource* mem)
    : grid_(other.grid_),
      robots_(other.robots_.begin(), other.robots_.end(),
              mem != nullptr ? mem : std::pmr::get_default_resource()),
      occupancy_(other.occupancy_.begin(), other.occupancy_.end(),
                 mem != nullptr ? mem : std::pmr::get_default_resource()),
      journal_enabled_(other.journal_enabled_),
      journal_(other.journal_.begin(), other.journal_.end(),
               mem != nullptr ? mem : std::pmr::get_default_resource()) {}

void Configuration::move_robot(int i, Vec to) {
  Robot& r = robots_.at(static_cast<std::size_t>(i));
  const int to_index = grid_.canonical_index(to);
  if (to_index < 0) throw std::logic_error("move_robot: target outside the grid");
  if (!grid_.are_adjacent(r.pos, to)) throw std::logic_error("move_robot: target not adjacent");
  const int from_index = grid_.index(r.pos);
  // Add before remove: add can throw (destination stack overflow) and must
  // do so before any state changed; removing a present color cannot throw.
  occupancy_[static_cast<std::size_t>(to_index)].add(r.color);
  occupancy_[static_cast<std::size_t>(from_index)].remove(r.color);
  r.pos = grid_.node(to_index);
  if (journal_enabled_) {
    journal_.push_back(from_index);
    journal_.push_back(to_index);
  }
}

std::vector<Robot> Configuration::canonical_robots() const {
  std::vector<Robot> sorted(robots_.begin(), robots_.end());
  std::sort(sorted.begin(), sorted.end(), [](const Robot& a, const Robot& b) {
    if (a.pos != b.pos) return a.pos < b.pos;
    return a.color < b.color;
  });
  return sorted;
}

std::uint64_t Configuration::canonical_hash() const {
  // FNV-1a over the canonical robot listing plus the world shape (dimensions
  // for a plain grid — the seed hash — plus the spec for other families).
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(static_cast<std::uint64_t>(grid_.rows()));
  mix(static_cast<std::uint64_t>(grid_.cols()));
  if (grid_.family() != Topology::Family::Grid) {
    for (const char c : grid_.spec()) mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  for (const Robot& r : canonical_robots()) {
    mix(static_cast<std::uint64_t>(grid_.index(r.pos)));
    mix(static_cast<std::uint64_t>(r.color));
  }
  return h;
}

bool Configuration::same_placement(const Configuration& other) const {
  return grid_ == other.grid_ && canonical_robots() == other.canonical_robots();
}

std::string Configuration::to_string() const {
  std::map<std::pair<int, int>, ColorMultiset> by_node;
  for (const Robot& r : robots_) {
    auto [it, inserted] = by_node.try_emplace({r.pos.row, r.pos.col});
    it->second.add(r.color);
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [node, ms] : by_node) {
    if (!first) out += ", ";
    first = false;
    // Sequential appends: the chained operator+ form trips gcc-12's spurious
    // -Wrestrict (PR105329).
    out += '(';
    out += std::to_string(node.first);
    out += ',';
    out += std::to_string(node.second);
    out += "):";
    out += ms.to_string();
  }
  out += "}";
  return out;
}

Configuration make_configuration(
    Topology topo, const std::vector<std::pair<Vec, std::vector<Color>>>& placements) {
  std::vector<Robot> robots;
  for (const auto& [pos, colors] : placements) {
    for (Color c : colors) robots.push_back(Robot{pos, c});
  }
  return Configuration(std::move(topo), std::move(robots));
}

}  // namespace lumi
