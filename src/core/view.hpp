// Views (snapshots): what a myopic robot observes during its Look phase.
//
// A snapshot stores, in the *global* frame, the content of every cell within
// Manhattan distance phi of the robot.  Rule matching later re-reads the
// snapshot through candidate symmetries, which models the robot not knowing
// which of the 4 (or 8) possible local frames its view is expressed in.
#pragma once

#include <span>
#include <vector>

#include "src/core/configuration.hpp"
#include "src/core/geometry.hpp"

namespace lumi {

inline constexpr int kMaxPhi = 2;

/// Canonical, symmetric set of offsets at Manhattan distance <= phi,
/// row-major sorted.  phi=1 -> 5 cells, phi=2 -> 13 cells.
class ViewKernel {
 public:
  explicit ViewKernel(int phi);

  int phi() const { return phi_; }
  std::span<const Vec> offsets() const { return offsets_; }
  int size() const { return static_cast<int>(offsets_.size()); }
  /// Index of `offset` in offsets(); -1 when outside the kernel.
  int index_of(Vec offset) const;

  /// Shared immutable kernels (phi in {1, 2}).
  static const ViewKernel& get(int phi);

 private:
  int phi_;
  std::vector<Vec> offsets_;
};

/// Immutable snapshot around one robot, taken in the global frame.
struct Snapshot {
  Vec origin;                       ///< robot position when the Look happened
  Color self_color = Color::G;     ///< robot's own light at Look time
  int phi = 1;
  std::vector<CellContent> cells;  ///< kernel order for ViewKernel::get(phi)

  /// Content at `offset` from origin (kernel coordinates, global frame).
  const CellContent& at(Vec offset) const;
};

Snapshot take_snapshot(const Configuration& config, int robot, int phi);

}  // namespace lumi
