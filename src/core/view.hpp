// Views (snapshots): what a myopic robot observes during its Look phase.
//
// A snapshot stores, in the *global* frame, the content of every cell within
// Manhattan distance phi of the robot.  Rule matching later re-reads the
// snapshot through candidate symmetries, which models the robot not knowing
// which of the 4 (or 8) possible local frames its view is expressed in.
//
// This is the innermost data structure of the simulator: campaign sweeps
// take and match millions of snapshots, so the kernel precomputes an O(1)
// offset->index map and per-symmetry permutation tables, and snapshots live
// entirely in a fixed-capacity inline buffer (no heap allocation).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/configuration.hpp"
#include "src/core/geometry.hpp"

namespace lumi {

inline constexpr int kMaxPhi = 2;
/// Largest view kernel: the L1 ball of radius kMaxPhi has 13 cells.
inline constexpr int kMaxKernelSize = 13;

/// Canonical, symmetric set of offsets at Manhattan distance <= phi,
/// row-major sorted.  phi=1 -> 5 cells, phi=2 -> 13 cells.
class ViewKernel {
 public:
  explicit ViewKernel(int phi);

  int phi() const { return phi_; }
  std::span<const Vec> offsets() const { return offsets_; }
  int size() const { return static_cast<int>(offsets_.size()); }

  /// Index of `offset` in offsets(); -1 when outside the kernel.  O(1): a
  /// dense (2*phi+1)^2 table lookup instead of a scan.
  int index_of(Vec offset) const {
    if (offset.row < -phi_ || offset.row > phi_ || offset.col < -phi_ || offset.col > phi_) {
      return -1;
    }
    return dense_[static_cast<std::size_t>((offset.row + phi_) * dim_ + (offset.col + phi_))];
  }

  /// Stable slot of a symmetry in [0, 8) used to address permutation tables.
  static constexpr int sym_slot(Sym g) { return g.rot + (g.mirror ? 4 : 0); }

  /// Precomputed permutation of kernel indices under `g`:
  /// permutation(g)[i] == index_of(apply(g, offsets()[i])).  The kernel is
  /// closed under D4, so every entry is a valid index.
  std::span<const std::uint8_t> permutation(Sym g) const {
    return {perm_[static_cast<std::size_t>(sym_slot(g))].data(), offsets_.size()};
  }

  /// Shared immutable kernels (phi in {1, 2}).
  static const ViewKernel& get(int phi);

 private:
  int phi_;
  int dim_;  ///< 2*phi + 1, the side of the dense offset table
  std::vector<Vec> offsets_;
  std::array<std::int8_t, (2 * kMaxPhi + 1) * (2 * kMaxPhi + 1)> dense_{};
  std::array<std::array<std::uint8_t, kMaxKernelSize>, 8> perm_{};
};

/// Bitset planes over the kernel cells of one snapshot (bit w = cell w):
/// which cells are occupied by at least one robot, and which are walls.
/// kMaxKernelSize = 13 bits fit one u16 each.
struct SnapshotPlanes {
  std::uint16_t occupied = 0;
  std::uint16_t wall = 0;
};

/// Immutable snapshot around one robot, taken in the global frame.  Cells
/// live inline (kernel size <= kMaxKernelSize): snapshots are stack objects
/// with zero heap traffic.
struct Snapshot {
  Vec origin;                      ///< robot position when the Look happened
  Color self_color = Color::G;     ///< robot's own light at Look time
  int phi = 1;
  std::array<CellContent, kMaxKernelSize> cells{};  ///< kernel order for ViewKernel::get(phi)
  /// Guard-prefilter planes over `cells`, accumulated during the same pass
  /// that fills them (the matcher would otherwise re-scan all 13 cells per
  /// Look just to rebuild two bitmasks).  snapshot_planes() recomputes the
  /// same masks from `cells` and serves as the differential reference.
  SnapshotPlanes planes{};

  /// Content at `offset` from origin (kernel coordinates, global frame).
  const CellContent& at(Vec offset) const;
};

Snapshot take_snapshot(const Configuration& config, int robot, int phi);

/// Fills `out` in place instead of returning a fresh Snapshot, so callers
/// that take many snapshots (the engines' robot loops, the incremental
/// tracker) can reuse one inline buffer for the whole loop.
void take_snapshot_into(const Configuration& config, int robot, int phi, Snapshot& out);

}  // namespace lumi
