// Portable scheduler randomness.
//
// std::mt19937's output stream is fully specified by the standard, but the
// algorithms std::uniform_int_distribution and std::shuffle layer on top of
// it are implementation-defined, so libstdc++ and libc++ draw different
// values from identical seeds.  Schedulers draw through this in-repo Lemire
// bounded draw and Fisher-Yates shuffle instead, which makes every scheduler
// decision — and therefore campaign reports and checkpoints — byte-identical
// across compilers and platforms, not just across thread counts.
// tests/test_schedulers.cpp pins golden sequences.
#pragma once

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

namespace lumi {

namespace rng {
/// The one deterministic engine of the codebase.  std::mt19937 is spelled
/// here and nowhere else: its output stream is standard-pinned, and every
/// decision layered on top goes through bounded_draw / fisher_yates below.
/// lumi-lint's banned-rng rule enforces that src/ names this alias instead
/// of the raw engine (docs/DETERMINISM.md#rng-discipline).
using Engine = std::mt19937;
}  // namespace rng

/// Unbiased draw from [0, n) using Lemire's nearly-divisionless method
/// (https://arxiv.org/abs/1805.10941).  Precondition: n >= 1.
inline std::uint32_t bounded_draw(rng::Engine& rng, std::uint32_t n) {
  std::uint64_t m = static_cast<std::uint64_t>(rng()) * n;
  auto low = static_cast<std::uint32_t>(m);
  if (low < n) {
    const std::uint32_t threshold = (0u - n) % n;  // 2^32 mod n
    while (low < threshold) {
      m = static_cast<std::uint64_t>(rng()) * n;
      low = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32);
}

/// In-place Fisher-Yates shuffle driven by bounded_draw (the portable
/// std::shuffle replacement).
template <typename T>
void fisher_yates(std::vector<T>& items, rng::Engine& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    using std::swap;
    swap(items[i - 1], items[bounded_draw(rng, static_cast<std::uint32_t>(i))]);
  }
}

}  // namespace lumi
