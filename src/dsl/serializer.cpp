#include "src/dsl/dsl.hpp"

namespace lumi::dsl {

namespace {

std::string pattern_text(const CellPattern& p) {
  switch (p.kind()) {
    case CellPattern::Kind::Empty: return "empty";
    case CellPattern::Kind::Wall: return "wall";
    case CellPattern::Kind::EmptyOrWall: return "gray";
    case CellPattern::Kind::Any: return "any";
    case CellPattern::Kind::Multiset: {
      std::string out = "{";
      bool first = true;
      for (int i = 0; i < kMaxColors; ++i) {
        const Color c = static_cast<Color>(i);
        for (int n = 0; n < p.multiset().count(c); ++n) {
          if (!first) out += ',';
          out += color_letter(c);
          first = false;
        }
      }
      return out + "}";
    }
  }
  return "gray";
}

}  // namespace

std::string serialize(const Algorithm& alg) {
  std::string out;
  out += "algorithm " + alg.name + "\n";
  if (!alg.paper_section.empty()) out += "section " + alg.paper_section + "\n";
  out += "model ";
  switch (alg.model) {
    case Synchrony::Fsync: out += "fsync"; break;
    case Synchrony::Ssync: out += "ssync"; break;
    case Synchrony::Async: out += "async"; break;
  }
  out += "\n";
  out += "phi " + std::to_string(alg.phi) + "\n";
  out += "colors " + std::to_string(alg.num_colors) + "\n";
  out += std::string("chirality ") + (alg.chirality == Chirality::Common ? "common" : "none") +
         "\n";
  out += "min-grid " + std::to_string(alg.min_rows) + " " + std::to_string(alg.min_cols) + "\n";
  out += "init";
  for (const auto& [pos, color] : alg.initial_robots) {
    out += " (" + std::to_string(pos.row) + "," + std::to_string(pos.col) + ")=" +
           color_letter(color);
  }
  out += "\n";
  for (const Rule& rule : alg.rules) {
    out += "rule " + rule.label + " self=" + color_letter(rule.self);
    // Emit the center first (when not the default singleton), then cells in
    // the order they were declared.
    for (const auto& [offset, pattern] : rule.cells) {
      if (offset == Vec{0, 0}) {
        const ColorMultiset self_only{rule.self};
        if (pattern == CellPattern::exactly(self_only)) continue;  // default center
      }
      // Sequential appends: the chained operator+ form trips gcc-12's
      // spurious -Wrestrict (PR105329).
      out += ' ';
      out += offset_name(offset);
      out += '=';
      out += pattern_text(pattern);
    }
    out += " -> ";
    out += color_letter(rule.new_color);
    out += ",";
    out += rule.move.has_value() ? to_string(*rule.move) : std::string("Idle");
    out += "\n";
  }
  return out;
}

}  // namespace lumi::dsl
