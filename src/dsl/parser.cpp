#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/analysis/rule_analysis.hpp"
#include "src/dsl/dsl.hpp"

namespace lumi::dsl {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("dsl parse error (line " + std::to_string(line) + "): " + what);
}

/// Strict integer parse: the whole token must be a number.  std::stoi alone
/// would accept "2x" (silently dropping the suffix) and, worse, throw a bare
/// std::invalid_argument with no line or token context on "two".
int parse_int(const std::string& s, int line, const std::string& what) {
  std::size_t used = 0;
  int value = 0;
  try {
    value = std::stoi(s, &used);
  } catch (const std::exception&) {
    fail(line, what + " expects an integer, got '" + s + "'");
  }
  if (used != s.size()) fail(line, what + " expects an integer, got '" + s + "'");
  return value;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok.starts_with("#")) break;
    tokens.push_back(tok);
  }
  return tokens;
}

Color parse_color(const std::string& s, int line) {
  if (s.size() != 1) fail(line, "expected a single-letter color, got '" + s + "'");
  try {
    return color_from_letter(s[0]);
  } catch (const std::invalid_argument&) {
    fail(line, "unknown color '" + s + "'");
  }
}

CellPattern parse_pattern(const std::string& s, int line) {
  if (s == "empty") return CellPattern::empty();
  if (s == "wall") return CellPattern::wall();
  if (s == "gray") return CellPattern::gray();
  if (s == "any") return CellPattern::any();
  if (s.size() >= 2 && s.front() == '{' && s.back() == '}') {
    ColorMultiset ms;
    std::string inner = s.substr(1, s.size() - 2);
    std::istringstream in(inner);
    std::string item;
    while (std::getline(in, item, ',')) {
      if (item.empty()) fail(line, "empty color in multiset '" + s + "'");
      ms.add(parse_color(item, line));
    }
    if (ms.empty()) fail(line, "empty multiset '" + s + "'; use 'empty' instead");
    return CellPattern::exactly(ms);
  }
  fail(line, "unknown cell pattern '" + s + "'");
}

Vec parse_position(const std::string& s, int line) {
  // "(row,col)"
  if (s.size() < 5 || s.front() != '(' || s.back() != ')') fail(line, "bad position '" + s + "'");
  const std::string inner = s.substr(1, s.size() - 2);
  const std::size_t comma = inner.find(',');
  if (comma == std::string::npos) fail(line, "bad position '" + s + "'");
  try {
    return Vec{std::stoi(inner.substr(0, comma)), std::stoi(inner.substr(comma + 1))};
  } catch (const std::exception&) {
    fail(line, "bad position '" + s + "'");
  }
}

void parse_rule(const std::vector<std::string>& tokens, int line, Algorithm& alg) {
  // rule <label> self=<color> [<cell>=<pattern> ...] -> <color>,<move>
  if (tokens.size() < 5) fail(line, "rule needs a label, self=, -> and an action");
  Rule rule;
  rule.label = tokens[1];
  std::size_t i = 2;
  if (!tokens[i].starts_with("self=")) fail(line, "expected self=<color>");
  rule.self = parse_color(tokens[i].substr(5), line);
  rule.new_color = rule.self;
  i += 1;
  bool saw_center = false;
  for (; i < tokens.size() && tokens[i] != "->"; ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) fail(line, "expected <cell>=<pattern>, got '" + tokens[i] + "'");
    Vec offset;
    try {
      offset = offset_from_name(tokens[i].substr(0, eq));
    } catch (const std::invalid_argument& e) {
      fail(line, e.what());
    }
    const CellPattern pattern = parse_pattern(tokens[i].substr(eq + 1), line);
    if (offset == Vec{0, 0}) {
      if (pattern.kind() != CellPattern::Kind::Multiset) {
        fail(line, "center cell C must be a multiset");
      }
      saw_center = true;
    }
    rule.cells.emplace_back(offset, pattern);
  }
  if (i + 1 >= tokens.size() || tokens[i] != "->") fail(line, "missing '->' action");
  const std::string& action = tokens[i + 1];
  const std::size_t comma = action.find(',');
  if (comma == std::string::npos) fail(line, "action must be <color>,<move>");
  rule.new_color = parse_color(action.substr(0, comma), line);
  const std::string move = action.substr(comma + 1);
  if (move == "Idle") {
    rule.move = std::nullopt;
  } else if (move == "N") {
    rule.move = Dir::North;
  } else if (move == "E") {
    rule.move = Dir::East;
  } else if (move == "S") {
    rule.move = Dir::South;
  } else if (move == "W") {
    rule.move = Dir::West;
  } else {
    fail(line, "unknown movement '" + move + "'");
  }
  if (!saw_center) {
    rule.cells.emplace_back(Vec{0, 0}, CellPattern::exactly(ColorMultiset{rule.self}));
  }
  alg.rules.push_back(std::move(rule));
}

}  // namespace

Algorithm parse(const std::string& text, const ParseOptions& opts) {
  Algorithm alg;
  alg.min_rows = 2;
  alg.min_cols = 3;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  bool got_name = false;
  while (std::getline(in, raw)) {
    line_no += 1;
    // Accept CRLF line endings and trailing whitespace: files authored on
    // other platforms or touched by editors must parse identically.
    while (!raw.empty() && (raw.back() == '\r' || raw.back() == ' ' || raw.back() == '\t')) {
      raw.pop_back();
    }
    const std::vector<std::string> tokens = tokenize(raw);
    if (tokens.empty()) continue;
    const std::string& head = tokens[0];
    if (head == "algorithm") {
      if (tokens.size() != 2) fail(line_no, "algorithm expects one name");
      alg.name = tokens[1];
      got_name = true;
    } else if (head == "section") {
      if (tokens.size() != 2) fail(line_no, "section expects one value");
      alg.paper_section = tokens[1];
    } else if (head == "model") {
      if (tokens.size() != 2) fail(line_no, "model expects one value");
      if (tokens[1] == "fsync") {
        alg.model = Synchrony::Fsync;
      } else if (tokens[1] == "ssync") {
        alg.model = Synchrony::Ssync;
      } else if (tokens[1] == "async") {
        alg.model = Synchrony::Async;
      } else {
        fail(line_no, "unknown model '" + tokens[1] + "'");
      }
    } else if (head == "phi") {
      if (tokens.size() != 2) fail(line_no, "phi expects one value");
      alg.phi = parse_int(tokens[1], line_no, "phi");
    } else if (head == "colors") {
      if (tokens.size() != 2) fail(line_no, "colors expects one value");
      alg.num_colors = parse_int(tokens[1], line_no, "colors");
    } else if (head == "chirality") {
      if (tokens.size() != 2) fail(line_no, "chirality expects one value");
      if (tokens[1] == "common") {
        alg.chirality = Chirality::Common;
      } else if (tokens[1] == "none") {
        alg.chirality = Chirality::None;
      } else {
        fail(line_no, "unknown chirality '" + tokens[1] + "'");
      }
    } else if (head == "min-grid") {
      if (tokens.size() != 3) fail(line_no, "min-grid expects rows and cols");
      alg.min_rows = parse_int(tokens[1], line_no, "min-grid rows");
      alg.min_cols = parse_int(tokens[2], line_no, "min-grid cols");
    } else if (head == "init") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::size_t eq = tokens[i].rfind('=');
        if (eq == std::string::npos) fail(line_no, "init entries look like (r,c)=C");
        const Vec pos = parse_position(tokens[i].substr(0, eq), line_no);
        alg.initial_robots.emplace_back(pos, parse_color(tokens[i].substr(eq + 1), line_no));
      }
    } else if (head == "rule") {
      parse_rule(tokens, line_no, alg);
    } else {
      fail(line_no, "unknown declaration '" + head + "'");
    }
  }
  if (!got_name) throw std::invalid_argument("dsl parse error: missing 'algorithm <name>'");
  if (opts.validate) alg.validate();
  if (opts.strict) analysis::require_well_formed(alg);
  return alg;
}

Algorithm parse(const std::string& text) { return parse(text, ParseOptions{}); }

}  // namespace lumi::dsl
