// Human-readable text format for algorithms, so rule sets can be authored,
// versioned and diffed outside C++.  Grammar (one declaration per line, `#`
// comments):
//
//   algorithm <name>
//   section <paper-section>
//   model fsync|ssync|async
//   phi 1|2
//   colors <count>
//   chirality common|none
//   min-grid <rows> <cols>
//   init (<row>,<col>)=<color> ...
//   rule <label> self=<color> [<cell>=<pattern> ...] -> <color>,<move>
//
// with <cell> in {C,N,E,S,W,NN,EE,SS,WW,NE,SE,SW,NW}, <pattern> in
// {empty, wall, gray, any, {G,W,...}}, <move> in {N,E,S,W,Idle}.  Cells not
// listed default to gray (no robot there); C accepts only a multiset.
#pragma once

#include <string>

#include "src/core/algorithm.hpp"

namespace lumi::dsl {

std::string serialize(const Algorithm& alg);

struct ParseOptions {
  /// Run Algorithm::validate() on the result (shallow structural checks).
  /// Off is what lets deliberately defective rule tables — the analyzer's
  /// lint fixtures — be loaded and handed to analysis::analyze at all.
  bool validate = true;
  /// Additionally require the parsed table to pass the semantic rule-table
  /// analyzer (analysis::require_well_formed): no determinism conflicts,
  /// ambiguous moves, dead rules, color-flow errors or wall hazards.
  bool strict = false;
};

/// Parses the format above; throws std::invalid_argument naming the line and
/// quoting the offending token on malformed input.  Lines may end in CRLF or
/// trailing whitespace.  Checks applied to the result follow `opts`.
Algorithm parse(const std::string& text, const ParseOptions& opts);

/// parse(text, ParseOptions{}) — validated, non-strict.
Algorithm parse(const std::string& text);

}  // namespace lumi::dsl
