// Human-readable text format for algorithms, so rule sets can be authored,
// versioned and diffed outside C++.  Grammar (one declaration per line, `#`
// comments):
//
//   algorithm <name>
//   section <paper-section>
//   model fsync|ssync|async
//   phi 1|2
//   colors <count>
//   chirality common|none
//   min-grid <rows> <cols>
//   init (<row>,<col>)=<color> ...
//   rule <label> self=<color> [<cell>=<pattern> ...] -> <color>,<move>
//
// with <cell> in {C,N,E,S,W,NN,EE,SS,WW,NE,SE,SW,NW}, <pattern> in
// {empty, wall, gray, any, {G,W,...}}, <move> in {N,E,S,W,Idle}.  Cells not
// listed default to gray (no robot there); C accepts only a multiset.
#pragma once

#include <string>

#include "src/core/algorithm.hpp"

namespace lumi::dsl {

std::string serialize(const Algorithm& alg);

/// Parses the format above; throws std::invalid_argument with a line number
/// on malformed input.  The result is validated (Algorithm::validate).
Algorithm parse(const std::string& text);

}  // namespace lumi::dsl
