// Campaign report writers: render a CampaignSummary as CSV (one row per
// scenario cell) or JSON (cells plus campaign totals) for downstream
// analysis pipelines.
#pragma once

#include <string>

#include "src/campaign/campaign.hpp"

namespace lumi {

/// Escapes `s` for embedding inside a JSON string literal (RFC 8259):
/// quote, backslash and control characters.
std::string json_escape(const std::string& s);

/// Renders `s` as an RFC-4180 CSV field: quoted (with inner quotes doubled)
/// iff it contains a comma, quote, CR or LF; returned verbatim otherwise.
std::string csv_field(const std::string& s);

/// CSV with a header row and one row per cell.
std::string campaign_csv(const campaign::CampaignSummary& summary);

/// Pretty-printed JSON object: campaign metadata, per-cell summaries, totals.
std::string campaign_json(const campaign::CampaignSummary& summary);

/// Writes `content` to `path`; false (with no throw) on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace lumi
