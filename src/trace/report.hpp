// Campaign report writers: render a CampaignSummary as CSV (one row per
// scenario cell) or JSON (cells plus campaign totals) for downstream
// analysis pipelines.
#pragma once

#include <string>

#include "src/campaign/campaign.hpp"

namespace lumi {

/// CSV with a header row and one row per cell.
std::string campaign_csv(const campaign::CampaignSummary& summary);

/// Pretty-printed JSON object: campaign metadata, per-cell summaries, totals.
std::string campaign_json(const campaign::CampaignSummary& summary);

/// Writes `content` to `path`; false (with no throw) on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace lumi
