#include "src/trace/trace.hpp"

namespace lumi {

void Trace::push(Configuration config, std::string note) {
  entries_.push_back(TraceEntry{std::move(config), std::move(note)});
}

int Trace::find_placement(const Configuration& c) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].config.same_placement(c)) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace lumi
