// Execution traces: the sequence of configurations an execution passes
// through, annotated with the event that produced each of them.
#pragma once

#include <string>
#include <vector>

#include "src/core/configuration.hpp"

namespace lumi {

struct TraceEntry {
  Configuration config;
  std::string note;  ///< e.g. "R4 fired by robot 1 (move S)" or "initial"
};

class Trace {
 public:
  void push(Configuration config, std::string note);
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const TraceEntry& operator[](std::size_t i) const { return entries_.at(i); }
  const std::vector<TraceEntry>& entries() const { return entries_; }

  /// First index whose configuration equals `c` as an anonymous placement;
  /// -1 when absent.
  int find_placement(const Configuration& c) const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace lumi
