#include "src/trace/figure_printer.hpp"

#include <numeric>

#include "src/algorithms/algorithms.hpp"
#include "src/dsl/dsl.hpp"
#include "src/engine/runner.hpp"
#include "src/trace/ascii_render.hpp"

namespace lumi {

namespace {

struct FigureSpec {
  int figure;
  const char* caption;
  Algorithm (*make)();  ///< nullptr for the non-execution figures 1-3
};

constexpr int kRows = 4;
constexpr int kCols = 5;

const FigureSpec kSpecs[] = {
    {4, "Turning west in an execution of Algorithm 1", algorithms::algorithm1},
    {5, "Turning east in an execution of Algorithm 1", algorithms::algorithm1},
    {6, "Turning west in an execution of Algorithm 2", algorithms::algorithm2},
    {7, "Turning west in an execution of Algorithm 3", algorithms::algorithm3},
    {8, "Turning east in an execution of Algorithm 3", algorithms::algorithm3},
    {9, "Turning west in an execution of Algorithm 4", algorithms::algorithm4},
    {10, "Turning west in an execution of Algorithm 5", algorithms::algorithm5},
    {11, "Turning east in an execution of Algorithm 5", algorithms::algorithm5},
    {12, "Turning west in an execution of Algorithm 6", algorithms::algorithm6},
    {13, "Turning east in an execution of Algorithm 6", algorithms::algorithm6},
    {14, "Turning west in an execution of Algorithm 7", algorithms::algorithm7},
    {15, "Turning west in an execution of Algorithm 8", algorithms::algorithm8},
    {16, "Turning east in an execution of Algorithm 8", algorithms::algorithm8},
    {17, "Proceeding east in an execution of Algorithm 9", algorithms::algorithm9},
    {18, "Turning west in an execution of Algorithm 9", algorithms::algorithm9},
    {19, "Proceeding east in an execution of Algorithm 10", algorithms::algorithm10},
    {20, "Turning west in an execution of Algorithm 10", algorithms::algorithm10},
    {21, "Turning east in an execution of Algorithm 10", algorithms::algorithm10},
    {22, "Proceeding east in executions of Algorithm 11 (I)", algorithms::algorithm11},
    {23, "Proceeding east in executions of Algorithm 11 (II)", algorithms::algorithm11},
    {24, "Turning west in an execution of Algorithm 11 (I)", algorithms::algorithm11},
    {25, "Turning west in an execution of Algorithm 11 (II)", algorithms::algorithm11},
};

Trace run_with_trace(const Algorithm& alg) {
  const Grid grid(kRows, kCols);
  RunOptions opts;
  opts.record_trace = true;
  RunResult result;
  if (alg.model == Synchrony::Fsync) {
    FsyncScheduler sched;
    result = run_sync(alg, grid, sched, opts);
  } else {
    AsyncCentralizedScheduler sched;
    result = run_async(alg, grid, sched, opts);
  }
  return std::move(result.trace);
}

/// Steps whose note mentions a South movement delimit the turning phases; we
/// print a window around the requested turn occurrence.
void print_turn_window(std::ostream& out, const Trace& trace, int occurrence) {
  int seen = 0;
  std::size_t anchor = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].note.find("move S") != std::string::npos) {
      if (seen == occurrence) {
        anchor = i;
        break;
      }
      // Skip the rest of this turn: advance until a non-South step.
      while (i + 1 < trace.size() &&
             trace[i + 1].note.find("move S") != std::string::npos) {
        i += 1;
      }
      seen += 1;
    }
  }
  const std::size_t from = anchor > 1 ? anchor - 2 : 0;
  const std::size_t to = std::min(trace.size(), anchor + 7);
  out << render_trace(trace, from, to);
}

void print_fig1(std::ostream& out) {
  out << "Figure 1: global directions on a grid (rows grow South, columns grow East)\n\n";
  out << "            North\n";
  out << "              ^\n";
  out << "  West <-- v[i,j] --> East      v[i,j] ~ (row i, column j)\n";
  out << "              v\n";
  out << "            South\n";
  out << "\nRobots never see these labels; views come in 4 rotations (common\n";
  out << "chirality) or 8 rotations+reflections (no chirality).\n";
}

void print_fig2(std::ostream& out) {
  out << "Figure 2: rule description convention.  A rule is guard -> action;\n";
  out << "guard cells are multisets, 'empty' (white), 'wall' (black) or 'gray'.\n\n";
  out << "Example, Algorithm 1 rendered in the rule DSL (phi = 2):\n\n";
  out << dsl::serialize(algorithms::algorithm1());
}

void print_fig3(std::ostream& out) {
  out << "Figure 3: route of grid exploration (boustrophedon).  Cells show the\n";
  out << "instant of first visit in an execution of Algorithm 1 on " << kRows << "x" << kCols
      << ":\n\n";
  const Trace trace = run_with_trace(algorithms::algorithm1());
  out << render_visit_order(trace);
}

}  // namespace

std::vector<int> available_figures() {
  std::vector<int> out = {1, 2, 3};
  for (const FigureSpec& spec : kSpecs) out.push_back(spec.figure);
  return out;
}

bool print_figure(std::ostream& out, int figure) {
  if (figure == 1) {
    print_fig1(out);
    return true;
  }
  if (figure == 2) {
    print_fig2(out);
    return true;
  }
  if (figure == 3) {
    print_fig3(out);
    return true;
  }
  for (const FigureSpec& spec : kSpecs) {
    if (spec.figure != figure) continue;
    const Algorithm alg = spec.make();
    out << "Figure " << figure << ": " << spec.caption << "\n";
    out << "(algorithm " << alg.name << " on a " << kRows << "x" << kCols
        << " grid; excerpt around the relevant phase)\n\n";
    const Trace trace = run_with_trace(alg);
    const bool proceeding = std::string(spec.caption).find("Proceeding") != std::string::npos;
    if (proceeding) {
      out << render_trace(trace, 0, std::min<std::size_t>(trace.size(), 8));
    } else {
      const bool east_turn = std::string(spec.caption).find("east") != std::string::npos;
      print_turn_window(out, trace, east_turn ? 1 : 0);
    }
    return true;
  }
  return false;
}

}  // namespace lumi
