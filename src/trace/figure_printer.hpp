// Regenerates the paper's figures as ASCII traces (see DESIGN.md §4 for the
// figure -> algorithm mapping).  Figures 1-2 show model conventions, Fig. 3
// the exploration route, Figs. 4-25 algorithm execution fragments.
#pragma once

#include <ostream>
#include <vector>

namespace lumi {

std::vector<int> available_figures();

/// Prints figure `figure` to `out`; returns false for unknown ids.
bool print_figure(std::ostream& out, int figure);

}  // namespace lumi
