// ASCII rendering of configurations and traces, in the style of the paper's
// figures (one cell per node, multisets like "GW", "." for empty).
#pragma once

#include <string>

#include "src/core/configuration.hpp"
#include "src/trace/trace.hpp"

namespace lumi {

std::string render(const Configuration& config);

/// Renders trace entries `[from, to)` with their notes, side by side with
/// step numbers; `to == 0` means "to the end".
std::string render_trace(const Trace& trace, std::size_t from = 0, std::size_t to = 0);

/// Renders the order in which nodes were first visited (the paper's Fig. 3
/// route): each cell shows the zero-based instant of its first visit.
std::string render_visit_order(const Trace& trace);

}  // namespace lumi
