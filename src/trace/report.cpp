#include "src/trace/report.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace lumi {

namespace {

using campaign::CellAccumulator;
using campaign::CellSummary;
using campaign::LongStat;

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void csv_stat_columns(std::ostringstream& out, const LongStat& stat) {
  out << ',' << fmt_double(stat.mean()) << ',' << stat.min << ',' << stat.max;
}

void csv_percentile_columns(std::ostringstream& out, const LongStat& stat) {
  out << ',' << stat.percentile(0.50) << ',' << stat.percentile(0.90) << ','
      << stat.percentile(0.99);
}

void json_stat(std::ostringstream& out, const char* name, const LongStat& stat,
               const char* indent) {
  out << indent << "\"" << name << "\": {\"mean\": " << fmt_double(stat.mean())
      << ", \"ci95\": " << fmt_double(stat.mean_ci95_halfwidth()) << ", \"min\": " << stat.min
      << ", \"max\": " << stat.max << ", \"sum\": " << stat.sum
      << ", \"p50\": " << stat.percentile(0.50) << ", \"p90\": " << stat.percentile(0.90)
      << ", \"p99\": " << stat.percentile(0.99) << "}";
}

void json_accumulator(std::ostringstream& out, const CellAccumulator& acc, const char* indent) {
  const std::string inner = std::string(indent) + "  ";
  out << "{\n";
  out << inner << "\"runs\": " << acc.runs << ",\n";
  out << inner << "\"terminated\": " << acc.terminated << ",\n";
  out << inner << "\"explored_all\": " << acc.explored_all << ",\n";
  out << inner << "\"failures\": " << acc.failures << ",\n";
  out << inner << "\"termination_rate\": " << fmt_double(acc.termination_rate()) << ",\n";
  out << inner << "\"exploration_rate\": " << fmt_double(acc.exploration_rate()) << ",\n";
  json_stat(out, "instants", acc.instants, inner.c_str());
  out << ",\n";
  json_stat(out, "activations", acc.activations, inner.c_str());
  out << ",\n";
  json_stat(out, "moves", acc.moves, inner.c_str());
  out << ",\n";
  json_stat(out, "color_changes", acc.color_changes, inner.c_str());
  out << ",\n";
  json_stat(out, "visited", acc.visited, inner.c_str());
  out << "\n" << indent << "}";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);
        }
    }
  }
  return out;
}

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out += '"';
  return out;
}

std::string campaign_csv(const campaign::CampaignSummary& summary) {
  std::ostringstream out;
  out << "section,rows,cols,topo,sched,runs,terminated,explored_all,failures,"
         "termination_rate,exploration_rate,"
         "instants_mean,instants_min,instants_max,"
         "activations_mean,activations_min,activations_max,"
         "moves_mean,moves_min,moves_max,"
         "color_changes_mean,color_changes_min,color_changes_max,"
         "visited_mean,visited_min,visited_max,"
         "instants_p50,instants_p90,instants_p99,"
         "moves_p50,moves_p90,moves_p99,"
         "instants_ci95,moves_ci95\n";
  for (const CellSummary& cell : summary.cells) {
    const CellAccumulator& a = cell.acc;
    out << csv_field(cell.cell.section) << ',' << cell.cell.rows << ',' << cell.cell.cols << ','
        << csv_field(cell.cell.topo) << ',' << csv_field(to_string(cell.cell.sched)) << ','
        << a.runs << ',' << a.terminated << ',' << a.explored_all << ',' << a.failures << ','
        << fmt_double(a.termination_rate()) << ',' << fmt_double(a.exploration_rate());
    csv_stat_columns(out, a.instants);
    csv_stat_columns(out, a.activations);
    csv_stat_columns(out, a.moves);
    csv_stat_columns(out, a.color_changes);
    csv_stat_columns(out, a.visited);
    csv_percentile_columns(out, a.instants);
    csv_percentile_columns(out, a.moves);
    out << ',' << fmt_double(a.instants.mean_ci95_halfwidth()) << ','
        << fmt_double(a.moves.mean_ci95_halfwidth());
    out << '\n';
  }
  return out.str();
}

std::string campaign_json(const campaign::CampaignSummary& summary) {
  std::ostringstream out;
  // No threads/wall_seconds here: reports describe the campaign's *result*,
  // which is identical across thread counts, shardings and resumes — the
  // byte-identity contract campaign_merge relies on.  Execution environment
  // goes to stdout instead.
  out << "{\n";
  out << "  \"jobs\": " << summary.jobs << ",\n";
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < summary.cells.size(); ++i) {
    const CellSummary& cell = summary.cells[i];
    out << "    {\n";
    out << "      \"section\": \"" << json_escape(cell.cell.section) << "\",\n";
    out << "      \"rows\": " << cell.cell.rows << ",\n";
    out << "      \"cols\": " << cell.cell.cols << ",\n";
    out << "      \"topo\": \"" << json_escape(cell.cell.topo) << "\",\n";
    out << "      \"sched\": \"" << json_escape(to_string(cell.cell.sched)) << "\",\n";
    out << "      \"summary\": ";
    json_accumulator(out, cell.acc, "      ");
    out << "\n    }" << (i + 1 < summary.cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"total\": ";
  json_accumulator(out, summary.total, "  ");
  out << "\n}\n";
  return out.str();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace lumi
