#include "src/trace/ascii_render.hpp"

#include <algorithm>

namespace lumi {

std::string render(const Configuration& config) {
  const Grid& grid = config.grid();
  // Cell width: widest multiset in this configuration.
  int width = 1;
  for (int r = 0; r < grid.rows(); ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      width = std::max(width, config.multiset_at({r, c}).size());
    }
  }
  std::string out;
  for (int r = 0; r < grid.rows(); ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      const ColorMultiset ms = config.multiset_at({r, c});
      std::string cell;
      for (int i = 0; i < kMaxColors; ++i) {
        const Color col = static_cast<Color>(i);
        cell.append(static_cast<std::size_t>(ms.count(col)), color_letter(col));
      }
      if (cell.empty()) {
        // '.' = empty node, '#' = wall cell of the bounding box (holed /
        // obstacle topologies; plain grids have none).
        cell.push_back(grid.contains({r, c}) ? '.' : '#');
      }
      cell.resize(static_cast<std::size_t>(width), ' ');
      out += cell;
      if (c + 1 < grid.cols()) out += ' ';
    }
    out += '\n';
  }
  return out;
}

std::string render_trace(const Trace& trace, std::size_t from, std::size_t to) {
  if (to == 0 || to > trace.size()) to = trace.size();
  std::string out;
  for (std::size_t i = from; i < to; ++i) {
    out += "step " + std::to_string(i) + ": " + trace[i].note + "\n";
    out += render(trace[i].config);
    out += "\n";
  }
  return out;
}

std::string render_visit_order(const Trace& trace) {
  if (trace.empty()) return "";
  const Grid& grid = trace[0].config.grid();
  std::vector<int> first(static_cast<std::size_t>(grid.num_nodes()), -1);
  for (std::size_t t = 0; t < trace.size(); ++t) {
    for (const Robot& r : trace[t].config.robots()) {
      int& slot = first[static_cast<std::size_t>(grid.index(r.pos))];
      if (slot < 0) slot = static_cast<int>(t);
    }
  }
  int width = 2;
  for (int v : first) width = std::max(width, static_cast<int>(std::to_string(v).size()));
  std::string out;
  for (int r = 0; r < grid.rows(); ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      std::string cell = grid.contains({r, c})
                             ? std::to_string(first[static_cast<std::size_t>(grid.index({r, c}))])
                             : std::string("#");
      while (static_cast<int>(cell.size()) < width) cell.insert(cell.begin(), ' ');
      out += cell;
      if (c + 1 < grid.cols()) out += ' ';
    }
    out += '\n';
  }
  return out;
}

}  // namespace lumi
