#include "src/analysis/model_checker.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "src/core/matching.hpp"
#include "src/engine/sync_engine.hpp"

namespace lumi {

namespace {

/// Robot phase in the ASYNC checker (sync models keep everything Idle).
enum class McPhase : std::uint8_t { Idle = 0, Decided = 1, Colored = 2 };

struct McRobot {
  Vec pos;
  Color color = Color::G;
  McPhase phase = McPhase::Idle;
  Color pending_color = Color::G;
  std::int8_t pending_move = -1;  ///< -1 idle, else Dir

  friend bool operator==(const McRobot&, const McRobot&) = default;
};

struct McState {
  std::vector<McRobot> robots;
  std::uint64_t visited = 0;
};

std::string encode(const Grid& grid, const McState& s) {
  std::vector<std::uint32_t> keys;
  keys.reserve(s.robots.size());
  for (const McRobot& r : s.robots) {
    std::uint32_t k = static_cast<std::uint32_t>(grid.index(r.pos));
    k = (k << 2) | static_cast<std::uint32_t>(r.color);
    k = (k << 2) | static_cast<std::uint32_t>(r.phase);
    k = (k << 2) | static_cast<std::uint32_t>(r.pending_color);
    k = (k << 3) | static_cast<std::uint32_t>(r.pending_move + 1);
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  std::string out;
  out.reserve(keys.size() * 4 + 8);
  for (std::uint32_t k : keys) {
    for (int b = 0; b < 4; ++b) out.push_back(static_cast<char>((k >> (8 * b)) & 0xFF));
  }
  for (int b = 0; b < 8; ++b) out.push_back(static_cast<char>((s.visited >> (8 * b)) & 0xFF));
  return out;
}

Configuration to_config(const Grid& grid, const McState& s) {
  std::vector<Robot> robots;
  robots.reserve(s.robots.size());
  for (const McRobot& r : s.robots) robots.push_back(Robot{r.pos, r.color});
  return Configuration(grid, std::move(robots));
}

std::string render(const Grid& grid, const McState& s) {
  std::string out = to_config(grid, s).to_string();
  for (std::size_t i = 0; i < s.robots.size(); ++i) {
    const McRobot& r = s.robots[i];
    if (r.phase == McPhase::Idle) continue;
    out += " [robot@(" + std::to_string(r.pos.row) + "," + std::to_string(r.pos.col) + ") " +
           (r.phase == McPhase::Decided ? "decided" : "colored") + "]";
  }
  return out;
}

void mark_visited(const Grid& grid, McState& s) {
  for (const McRobot& r : s.robots) s.visited |= 1ULL << grid.index(r.pos);
}

class Checker {
 public:
  Checker(const Algorithm& alg, const Grid& grid, CheckModel model, const CheckOptions& opts)
      : alg_(alg), compiled_(CompiledAlgorithm::get(alg)), grid_(grid), model_(model),
        opts_(opts) {
    if (grid.num_nodes() > 64) throw std::invalid_argument("model_check: grid too large (>64)");
  }

  CheckResult run() {
    McState init;
    for (const auto& [pos, color] : alg_.initial_robots) {
      init.robots.push_back(McRobot{pos, color, McPhase::Idle, color, -1});
    }
    if (grid_.rows() < alg_.min_rows || grid_.cols() < alg_.min_cols) {
      throw std::invalid_argument("model_check: grid below the algorithm's minimum");
    }
    mark_visited(grid_, init);
    dfs(init);
    if (result_.failure.empty()) result_.ok = true;
    return result_;
  }

 private:
  // Iterative DFS with tri-color marking: a back edge (successor on the
  // current stack) is a reachable cycle -> failure.
  void dfs(const McState& root) {
    struct Frame {
      McState state;
      std::string key;
      std::vector<McState> succ;
      std::size_t next = 0;
    };
    std::vector<Frame> stack;
    auto push = [&](McState s) -> bool {
      std::string key = encode(grid_, s);
      auto it = color_.find(key);
      if (it != color_.end()) {
        if (it->second == 1) {
          fail("cycle: a schedule revisits a configuration (non-terminating execution)",
               stack, &s);
        }
        return false;  // black: fully explored before
      }
      color_.emplace(key, 1);
      result_.states += 1;
      if (result_.states > opts_.max_states) {
        fail("state budget exhausted (" + std::to_string(opts_.max_states) + ")", stack, &s);
        return false;
      }
      Frame f;
      f.state = std::move(s);
      f.key = std::move(key);
      try {
        f.succ = successors(f.state);
      } catch (const std::exception& e) {
        fail(std::string("engine error: ") + e.what(), stack, &f.state);
        return false;
      }
      if (f.succ.empty()) {
        result_.terminal_states += 1;
        if (f.state.visited != full_mask()) {
          fail("terminal configuration with incomplete coverage (" +
                   std::to_string(__builtin_popcountll(f.state.visited)) + "/" +
                   std::to_string(grid_.reachable_nodes()) + " nodes)",
               stack, &f.state);
        }
      }
      stack.push_back(std::move(f));
      return true;
    };

    push(root);
    while (!stack.empty() && result_.failure.empty()) {
      Frame& top = stack.back();
      if (top.next >= top.succ.size()) {
        color_[top.key] = 2;
        stack.pop_back();
        continue;
      }
      McState next = std::move(top.succ[top.next]);
      top.next += 1;
      result_.transitions += 1;
      push(std::move(next));
    }
  }

  template <typename Stack>
  void fail(const std::string& reason, const Stack& stack, const McState* offending) {
    if (!result_.failure.empty()) return;
    result_.failure = reason;
    if (opts_.want_witness) {
      for (const auto& frame : stack) result_.witness.push_back(render(grid_, frame.state));
      if (offending != nullptr) result_.witness.push_back(render(grid_, *offending));
      // Keep witnesses reviewable.
      if (result_.witness.size() > 40) {
        result_.witness.erase(result_.witness.begin(),
                              result_.witness.end() - 40);
      }
    }
  }

  /// Coverage target: one bit per *reachable* node of the bounding box
  /// (wall cells are never visited and never required; on a plain grid this
  /// is the full box).  Computed once — terminal states compare against it
  /// on every DFS leaf.
  std::uint64_t full_mask() const {
    if (full_mask_ == 0) {
      for (int i = 0; i < grid_.num_nodes(); ++i) {
        if (grid_.is_node_index(i)) full_mask_ |= 1ULL << i;
      }
    }
    return full_mask_;
  }

  std::vector<McState> successors(const McState& s) {
    return model_ == CheckModel::Async ? async_successors(s) : sync_successors(s);
  }

  // --- FSYNC / SSYNC -------------------------------------------------------
  std::vector<McState> sync_successors(const McState& s) {
    const Configuration config = to_config(grid_, s);
    std::vector<int> enabled;
    std::vector<std::vector<Action>> actions(s.robots.size());
    for (int i = 0; i < static_cast<int>(s.robots.size()); ++i) {
      actions[static_cast<std::size_t>(i)] = enabled_actions(*compiled_, config, i);
      if (!actions[static_cast<std::size_t>(i)].empty()) enabled.push_back(i);
    }
    std::vector<McState> out;
    if (enabled.empty()) return out;

    if (model_ == CheckModel::Fsync) {
      emit_selections(s, actions, enabled, out);  // the full set, all choice products
    } else {
      // SSYNC: every nonempty subset of the enabled robots.
      const std::size_t n = enabled.size();
      for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
        std::vector<int> subset;
        for (std::size_t b = 0; b < n; ++b) {
          if (mask & (1ULL << b)) subset.push_back(enabled[b]);
        }
        emit_selections(s, actions, subset, out);
      }
    }
    return out;
  }

  /// Emits one successor per combination of action choices for `subset`.
  void emit_selections(const McState& s, const std::vector<std::vector<Action>>& actions,
                       const std::vector<int>& subset, std::vector<McState>& out) {
    std::vector<std::size_t> choice(subset.size(), 0);
    while (true) {
      McState next = s;
      // Simultaneous application: all moves relative to the current state.
      for (std::size_t i = 0; i < subset.size(); ++i) {
        const int robot = subset[i];
        const Action& a = actions[static_cast<std::size_t>(robot)][choice[i]];
        McRobot& r = next.robots[static_cast<std::size_t>(robot)];
        r.color = a.new_color;
        r.pending_color = a.new_color;
        if (a.move.has_value()) {
          const std::optional<Vec> to = grid_.step(r.pos, *a.move);
          if (!to) throw std::logic_error("robot would leave the grid");
          r.pos = *to;
        }
      }
      mark_visited(grid_, next);
      out.push_back(std::move(next));
      // Next choice vector (mixed-radix increment).
      std::size_t d = 0;
      while (d < subset.size()) {
        choice[d] += 1;
        if (choice[d] < actions[static_cast<std::size_t>(subset[d])].size()) break;
        choice[d] = 0;
        d += 1;
      }
      if (d == subset.size()) break;
    }
  }

  // --- ASYNC ---------------------------------------------------------------
  std::vector<McState> async_successors(const McState& s) {
    const Configuration config = to_config(grid_, s);
    std::vector<McState> out;
    for (std::size_t i = 0; i < s.robots.size(); ++i) {
      const McRobot& r = s.robots[i];
      switch (r.phase) {
        case McPhase::Idle: {
          // Look: one successor per distinct enabled behavior (stale-view
          // decisions are modeled by the delay before the later phases).
          for (const Action& a :
               enabled_actions(*compiled_, config, static_cast<int>(i))) {
            McState next = s;
            McRobot& nr = next.robots[i];
            nr.phase = McPhase::Decided;
            nr.pending_color = a.new_color;
            nr.pending_move = a.move.has_value() ? static_cast<std::int8_t>(*a.move) : -1;
            out.push_back(std::move(next));
          }
          break;
        }
        case McPhase::Decided: {  // Compute-end: color becomes visible.
          McState next = s;
          McRobot& nr = next.robots[i];
          nr.color = nr.pending_color;
          nr.phase = McPhase::Colored;
          out.push_back(std::move(next));
          break;
        }
        case McPhase::Colored: {  // Move.
          McState next = s;
          McRobot& nr = next.robots[i];
          if (nr.pending_move >= 0) {
            const std::optional<Vec> to = grid_.step(nr.pos, static_cast<Dir>(nr.pending_move));
            if (!to) throw std::logic_error("robot would leave the grid");
            nr.pos = *to;
          }
          nr.phase = McPhase::Idle;
          nr.pending_move = -1;
          nr.pending_color = nr.color;
          mark_visited(grid_, next);
          out.push_back(std::move(next));
          break;
        }
      }
    }
    return out;
  }

  const Algorithm& alg_;
  std::shared_ptr<const CompiledAlgorithm> compiled_;
  const Grid& grid_;
  CheckModel model_;
  CheckOptions opts_;
  mutable std::uint64_t full_mask_ = 0;  ///< lazily cached coverage target
  CheckResult result_;
  std::unordered_map<std::string, std::uint8_t> color_;  // 1 gray, 2 black
};

}  // namespace

CheckResult model_check(const Algorithm& alg, const Grid& grid, CheckModel model,
                        const CheckOptions& opts) {
  Checker checker(alg, grid, model, opts);
  return checker.run();
}

std::string CheckResult::to_string() const {
  std::string out = ok ? "OK" : ("FAIL: " + failure);
  out += " (" + std::to_string(states) + " states, " + std::to_string(transitions) +
         " transitions, " + std::to_string(terminal_states) + " terminal)";
  if (!ok && !witness.empty()) {
    out += "\n  witness tail:";
    for (const std::string& w : witness) out += "\n    " + w;
  }
  return out;
}

}  // namespace lumi
