#include "src/analysis/rule_analysis.hpp"

#include <stdexcept>
#include <utility>

#include "src/core/compiled.hpp"
#include "src/core/matching.hpp"

namespace lumi::analysis {

namespace {

/// Behavior of one (rule, symmetry) lane in the global frame.
struct LaneAction {
  Color new_color = Color::G;
  std::optional<Dir> move;

  friend bool operator==(const LaneAction&, const LaneAction&) = default;
};

LaneAction lane_action(const Rule& rule, Sym sym) {
  LaneAction act;
  act.new_color = rule.new_color;
  if (rule.move.has_value()) act.move = apply(sym, *rule.move);
  return act;
}

/// Dense world-frame guard row of `rule` under `sym`, mirroring the compiled
/// matcher's table construction: row[w] constrains snapshot cell w, with
/// row[perm[i]] = pattern_at(offsets[i]) (perm is a bijection of the kernel).
std::array<CellPattern, kMaxKernelSize> world_row(const Rule& rule, const ViewKernel& kernel,
                                                  Sym sym) {
  std::array<CellPattern, kMaxKernelSize> row{};
  const std::span<const Vec> offsets = kernel.offsets();
  const std::span<const std::uint8_t> perm = kernel.permutation(sym);
  for (int i = 0; i < kernel.size(); ++i) {
    row[perm[static_cast<std::size_t>(i)]] = rule.pattern_at(offsets[static_cast<std::size_t>(i)]);
  }
  return row;
}

/// Whether the center cell of a (met) row can host the acting robot: the
/// robot itself sits there, so only Any or a multiset containing `self`
/// admits any content.
bool center_admits_self(const CellPattern& center, Color self) {
  if (center.kind() == CellPattern::Kind::Any) return true;
  return center.kind() == CellPattern::Kind::Multiset && center.multiset().count(self) > 0;
}

/// Robots a row pins into the view: the sum of its multiset sizes, plus the
/// acting robot itself when the center is underconstrained (a real snapshot
/// always shows the robot on its own cell).  A view demanding more than the
/// algorithm owns is unreachable in any execution.
int robots_required(const std::array<CellPattern, kMaxKernelSize>& row, const ViewKernel& kernel) {
  int total = 0;
  for (int w = 0; w < kernel.size(); ++w) {
    const CellPattern& p = row[static_cast<std::size_t>(w)];
    if (p.kind() == CellPattern::Kind::Multiset) total += p.multiset().size();
  }
  const CellPattern& center = row[static_cast<std::size_t>(kernel.index_of({0, 0}))];
  if (center.kind() != CellPattern::Kind::Multiset) total += 1;
  return total;
}

/// A concrete cell content satisfying `pattern` (robot-free choices for the
/// underconstrained kinds).  Only called on satisfiable patterns.
CellContent realize(const CellPattern& pattern) {
  CellContent cell;
  switch (pattern.kind()) {
    case CellPattern::Kind::Wall: cell.wall = true; break;
    case CellPattern::Kind::Multiset: cell.robots = pattern.multiset(); break;
    case CellPattern::Kind::Empty:
    case CellPattern::Kind::EmptyOrWall:
    case CellPattern::Kind::Any: break;  // an existing, robot-free node
  }
  return cell;
}

WitnessView make_witness(const std::array<CellPattern, kMaxKernelSize>& row,
                         const ViewKernel& kernel, Color self) {
  WitnessView w;
  w.phi = kernel.phi();
  w.self = self;
  for (int i = 0; i < kernel.size(); ++i) {
    w.cells[static_cast<std::size_t>(i)] = realize(row[static_cast<std::size_t>(i)]);
  }
  // A snapshot's center always contains the acting robot; an Any center left
  // the choice open, so realize it as the robot standing alone.
  CellContent& center = w.cells[static_cast<std::size_t>(kernel.index_of({0, 0}))];
  if (!center.wall && center.robots.empty()) center.robots.add(self);
  return w;
}

bool color_in_palette(Color c, int num_colors) { return static_cast<int>(c) < num_colors; }

std::string rule_ref(const Algorithm& alg, int index) {
  return alg.name + "/" + alg.rules[static_cast<std::size_t>(index)].label;
}

std::string sym_text(Sym g) {
  return "rot" + std::to_string(g.rot) + (g.mirror ? "+mirror" : "");
}

/// Emits the axis-bound check: walls required on both sides of an axis imply
/// a grid strictly smaller than the declared minimum.
void check_opposite_walls(const Algorithm& alg, int ri, const ViewKernel& kernel,
                          std::vector<Finding>& out) {
  const Rule& rule = alg.rules[static_cast<std::size_t>(ri)];
  for (const bool rows_axis : {true, false}) {
    int neg = 0;  // most negative on-axis wall offset
    int pos = 0;  // most positive on-axis wall offset
    for (Vec offset : kernel.offsets()) {
      const int along = rows_axis ? offset.row : offset.col;
      const int across = rows_axis ? offset.col : offset.row;
      if (across != 0) continue;  // diagonal walls are disjunctive; skip
      if (rule.pattern_at(offset).kind() != CellPattern::Kind::Wall) continue;
      neg = std::min(neg, along);
      pos = std::max(pos, along);
    }
    if (neg == 0 || pos == 0) continue;
    // Walls at `neg` and `pos` squeeze the axis to at most pos-neg-1 nodes.
    const int implied = pos - neg - 1;
    const int minimum = rows_axis ? alg.min_rows : alg.min_cols;
    if (implied >= minimum) continue;
    Finding f;
    f.cls = DefectClass::DeadRule;
    f.severity = Severity::Warning;
    f.rule_index = ri;
    f.rule = rule.label;
    f.message = rule_ref(alg, ri) + ": guard walls both sides of the " +
                (rows_axis ? std::string("row") : std::string("column")) + " axis, implying at most " +
                std::to_string(implied) + " " + (rows_axis ? "rows" : "cols") +
                " — below the declared minimum " + std::to_string(alg.min_rows) + "x" +
                std::to_string(alg.min_cols) + "; satisfiable only amid interior obstacles";
    out.push_back(std::move(f));
  }
}

}  // namespace

std::string to_string(DefectClass cls) {
  switch (cls) {
    case DefectClass::DeterminismConflict: return "conflict";
    case DefectClass::SymmetryAmbiguousMove: return "ambiguous-move";
    case DefectClass::DeadRule: return "dead-rule";
    case DefectClass::ColorFlow: return "color-flow";
    case DefectClass::WallHazard: return "wall-hazard";
  }
  return "?";
}

std::string to_string(Severity sev) { return sev == Severity::Error ? "error" : "warning"; }

std::optional<DefectClass> defect_from_string(const std::string& slug) {
  for (DefectClass cls :
       {DefectClass::DeterminismConflict, DefectClass::SymmetryAmbiguousMove,
        DefectClass::DeadRule, DefectClass::ColorFlow, DefectClass::WallHazard}) {
    if (to_string(cls) == slug) return cls;
  }
  return std::nullopt;
}

Snapshot WitnessView::to_snapshot() const {
  Snapshot snap;
  snap.origin = {0, 0};
  snap.self_color = self;
  snap.phi = phi;
  snap.cells = cells;
  snap.planes = snapshot_planes(snap, ViewKernel::get(phi).size());
  return snap;
}

std::string WitnessView::to_string() const {
  const ViewKernel& kernel = ViewKernel::get(phi);
  std::string out = "self=";
  out += color_letter(self);
  for (int i = 0; i < kernel.size(); ++i) {
    const CellContent& cell = cells[static_cast<std::size_t>(i)];
    out += ' ';
    out += offset_name(kernel.offsets()[static_cast<std::size_t>(i)]);
    out += '=';
    if (cell.wall) {
      out += "wall";
    } else if (cell.robots.empty()) {
      out += "empty";
    } else {
      out += cell.robots.to_string();
    }
  }
  return out;
}

std::string Finding::to_string() const {
  // Sequential appends rather than operator+ chains: gcc-12's inliner raises
  // a spurious -Wrestrict (PR105329) on the chained form.
  std::string out = "[";
  out += analysis::to_string(severity);
  out += '/';
  out += analysis::to_string(cls);
  out += "] ";
  out += message;
  if (witness.has_value()) {
    out += " | witness: ";
    out += witness->to_string();
    out += certified ? " (matcher-certified)" : " (UNCERTIFIED)";
  }
  return out;
}

int AnalysisReport::errors() const {
  int n = 0;
  for (const Finding& f : findings) n += f.severity == Severity::Error ? 1 : 0;
  return n;
}

int AnalysisReport::warnings() const {
  int n = 0;
  for (const Finding& f : findings) n += f.severity == Severity::Warning ? 1 : 0;
  return n;
}

std::string AnalysisReport::to_string() const {
  std::string out;
  for (const Finding& f : findings) {
    if (!out.empty()) out += '\n';
    out += f.to_string();
  }
  return out;
}

bool certify_conflict(const Algorithm& alg, const Finding& finding) {
  if (!finding.witness.has_value()) return false;
  if (finding.rule_index < 0 || finding.other_rule_index < 0) return false;
  if (finding.rule_index >= static_cast<int>(alg.rules.size()) ||
      finding.other_rule_index >= static_cast<int>(alg.rules.size())) {
    return false;
  }
  const LaneAction a =
      lane_action(alg.rules[static_cast<std::size_t>(finding.rule_index)], finding.sym);
  const LaneAction b =
      lane_action(alg.rules[static_cast<std::size_t>(finding.other_rule_index)],
                  finding.other_sym);
  if (a == b) return false;  // not a behavioral conflict at all
  const Snapshot snap = finding.witness->to_snapshot();
  // The compiled matcher is exactly what the engines and the model checker
  // execute; the witness must light up both behaviors there.
  const std::vector<Action> enabled = enabled_actions(alg, snap);
  bool saw_a = false;
  bool saw_b = false;
  for (const Action& act : enabled) {
    if (act.new_color == a.new_color && act.move == a.move) saw_a = true;
    if (act.new_color == b.new_color && act.move == b.move) saw_b = true;
  }
  return saw_a && saw_b;
}

AnalysisReport analyze(const Algorithm& alg) {
  AnalysisReport report;
  const auto add = [&report](Finding f) { report.findings.push_back(std::move(f)); };

  // The kernel everything below indexes through; a phi outside the supported
  // range leaves no sound way to interpret the guards at all.
  if (alg.phi < 1 || alg.phi > kMaxPhi) {
    Finding f;
    f.cls = DefectClass::DeadRule;
    f.message = alg.name + ": phi " + std::to_string(alg.phi) + " outside [1, " +
                std::to_string(kMaxPhi) + "]; guards are uninterpretable";
    add(std::move(f));
    return report;
  }
  const ViewKernel& kernel = ViewKernel::get(alg.phi);
  const int ks = kernel.size();
  const std::span<const Sym> syms = alg.symmetries();
  const int num_colors = std::min(alg.num_colors, kMaxColors);
  const int num_rules = static_cast<int>(alg.rules.size());

  // --- per-rule structural + semantic pass ----------------------------------
  // satisfiable[ri]: the rule's effective row admits at least one view, so it
  // participates in the pairwise conflict scan.
  std::vector<char> satisfiable(static_cast<std::size_t>(num_rules), 1);
  for (int ri = 0; ri < num_rules; ++ri) {
    const Rule& rule = alg.rules[static_cast<std::size_t>(ri)];
    const auto rule_finding = [&](DefectClass cls, Severity sev, std::string message) {
      Finding f;
      f.cls = cls;
      f.severity = sev;
      f.rule_index = ri;
      f.rule = rule.label;
      f.message = std::move(message);
      add(std::move(f));
    };

    // Palette discipline: colors beyond num_colors can never be lit, so a
    // guard or action naming one is dead weight or an unfulfillable claim.
    if (!color_in_palette(rule.self, num_colors)) {
      rule_finding(DefectClass::ColorFlow, Severity::Error,
                   rule_ref(alg, ri) + ": self color " + lumi::to_string(rule.self) +
                       " outside the declared palette of " + std::to_string(alg.num_colors));
      satisfiable[static_cast<std::size_t>(ri)] = 0;
    }
    if (!color_in_palette(rule.new_color, num_colors)) {
      rule_finding(DefectClass::ColorFlow, Severity::Error,
                   rule_ref(alg, ri) + ": action color " + lumi::to_string(rule.new_color) +
                       " outside the declared palette of " + std::to_string(alg.num_colors));
    }

    // Guard-cell structure: offsets must live in the kernel (the matcher
    // never reads others), duplicates are shadowed, guard colors must be
    // producible.
    for (const auto& [offset, pattern] : rule.cells) {
      if (kernel.index_of(offset) < 0) {
        rule_finding(DefectClass::DeadRule, Severity::Error,
                     rule_ref(alg, ri) + ": guard cell " + offset_name(offset) +
                         " outside the phi=" + std::to_string(alg.phi) +
                         " kernel is never checked by the matcher");
        continue;
      }
      if (pattern.kind() == CellPattern::Kind::Multiset) {
        for (int c = 0; c < kMaxColors; ++c) {
          const Color color = static_cast<Color>(c);
          if (pattern.multiset().count(color) > 0 && !color_in_palette(color, num_colors)) {
            rule_finding(DefectClass::ColorFlow, Severity::Error,
                         rule_ref(alg, ri) + ": guard cell " + offset_name(offset) +
                             " requires color " + lumi::to_string(color) +
                             " outside the declared palette of " + std::to_string(alg.num_colors));
            satisfiable[static_cast<std::size_t>(ri)] = 0;
          }
        }
      }
    }
    for (std::size_t a = 0; a < rule.cells.size(); ++a) {
      const auto& [offset, first] = rule.cells[a];
      bool is_first = true;
      for (std::size_t b = 0; b < a; ++b) {
        if (rule.cells[b].first == offset) {
          is_first = false;
          break;
        }
      }
      if (!is_first || rule.count_cells_at(offset) < 2) continue;
      // Compare every shadowed entry against the one the matcher honors.
      for (std::size_t b = a + 1; b < rule.cells.size(); ++b) {
        if (!(rule.cells[b].first == offset)) continue;
        const CellPattern& shadowed = rule.cells[b].second;
        if (shadowed == first) {
          rule_finding(DefectClass::DeadRule, Severity::Warning,
                       rule_ref(alg, ri) + ": guard cell " + offset_name(offset) +
                           " declared twice with the same pattern (redundant)");
        } else {
          rule_finding(DefectClass::DeadRule, Severity::Error,
                       rule_ref(alg, ri) + ": guard cell " + offset_name(offset) +
                           " declared twice with contradictory patterns '" + first.to_string() +
                           "' vs '" + shadowed.to_string() +
                           "'; the matcher honors only the first");
        }
      }
    }

    // Center satisfiability: the acting robot stands on its own center cell,
    // so the pattern must admit a multiset containing `self`.
    if (!center_admits_self(rule.pattern_at({0, 0}), rule.self)) {
      rule_finding(DefectClass::DeadRule, Severity::Error,
                   rule_ref(alg, ri) + ": center pattern '" +
                       rule.pattern_at({0, 0}).to_string() +
                       "' cannot contain the acting robot (" +
                       lumi::to_string(rule.self) + "); the guard matches no view");
      satisfiable[static_cast<std::size_t>(ri)] = 0;
    }

    // Robot budget: the view cannot show more robots than exist.
    const std::array<CellPattern, kMaxKernelSize> row = world_row(rule, kernel, Sym{});
    const int need = robots_required(row, kernel);
    if (need > alg.num_robots()) {
      rule_finding(DefectClass::DeadRule, Severity::Error,
                   rule_ref(alg, ri) + ": guard pins " + std::to_string(need) +
                       " robots into the view but the algorithm has only " +
                       std::to_string(alg.num_robots()));
      satisfiable[static_cast<std::size_t>(ri)] = 0;
    }

    check_opposite_walls(alg, ri, kernel, report.findings);

    // Wall hazards: the guard-frame movement target must be pinned to an
    // existing node; symmetries map guard and move together, so checking the
    // guard frame covers every lane.
    if (rule.move.has_value()) {
      const CellPattern target = rule.pattern_at(dir_vec(*rule.move));
      const std::string target_name = offset_name(dir_vec(*rule.move));
      if (target.kind() == CellPattern::Kind::Wall) {
        rule_finding(DefectClass::WallHazard, Severity::Error,
                     rule_ref(alg, ri) + ": moves " + lumi::to_string(*rule.move) +
                         " into cell " + target_name + " the guard requires to be a wall");
      } else if (!target.guarantees_node_exists()) {
        rule_finding(DefectClass::WallHazard, Severity::Warning,
                     rule_ref(alg, ri) + ": moves " + lumi::to_string(*rule.move) +
                         " into cell " + target_name + " the guard leaves unconstrained ('" +
                         target.to_string() +
                         "') — even at the minimal " + std::to_string(alg.min_rows) + "x" +
                         std::to_string(alg.min_cols) +
                         " grid the robot can stand at the boundary; pin it with empty or a "
                         "multiset");
      }
    }
  }

  // --- color-flow pass ------------------------------------------------------
  {
    std::array<bool, kMaxColors> reachable{};
    for (Color c : alg.reachable_colors()) reachable[static_cast<std::size_t>(c)] = true;
    std::array<bool, kMaxColors> used{};
    for (const auto& [pos, color] : alg.initial_robots) {
      (void)pos;
      if (color_in_palette(color, kMaxColors)) used[static_cast<std::size_t>(color)] = true;
    }
    for (const Rule& rule : alg.rules) {
      used[static_cast<std::size_t>(rule.self)] = true;
      used[static_cast<std::size_t>(rule.new_color)] = true;
      for (const auto& [offset, pattern] : rule.cells) {
        (void)offset;
        if (pattern.kind() != CellPattern::Kind::Multiset) continue;
        for (int c = 0; c < kMaxColors; ++c) {
          if (pattern.multiset().count(static_cast<Color>(c)) > 0) {
            used[static_cast<std::size_t>(c)] = true;
          }
        }
      }
    }
    for (int c = 0; c < num_colors; ++c) {
      const Color color = static_cast<Color>(c);
      Finding f;
      f.cls = DefectClass::ColorFlow;
      f.severity = Severity::Warning;
      if (!used[static_cast<std::size_t>(c)]) {
        f.message = alg.name + ": declared palette of " + std::to_string(alg.num_colors) +
                    " overstates — color " + lumi::to_string(color) +
                    " appears in no light, guard or action";
        add(std::move(f));
      } else if (!reachable[static_cast<std::size_t>(c)]) {
        f.message = alg.name + ": color " + lumi::to_string(color) +
                    " is never lit — unreachable from the initial lights through the "
                    "self -> new_color graph";
        add(std::move(f));
      }
    }
    for (int ri = 0; ri < num_rules; ++ri) {
      const Rule& rule = alg.rules[static_cast<std::size_t>(ri)];
      if (!color_in_palette(rule.self, num_colors)) continue;  // already an error above
      if (reachable[static_cast<std::size_t>(rule.self)]) continue;
      Finding f;
      f.cls = DefectClass::DeadRule;
      f.severity = Severity::Warning;
      f.rule_index = ri;
      f.rule = rule.label;
      f.message = rule_ref(alg, ri) + ": can never fire — self color " +
                  lumi::to_string(rule.self) + " is never lit";
      add(std::move(f));
    }
  }

  // --- pairwise determinism pass --------------------------------------------
  // Two lanes (rule, symmetry) of *distinct* rules with the same self color
  // conflict when the cellwise meet of their world-frame rows is satisfiable
  // by a view the algorithm can actually show (center admits the robot, robot
  // budget holds) and their global-frame actions differ.  Lanes ascend in
  // rule-then-symmetry order, the same order the matcher reports witnesses
  // in.
  //
  // One rule overlapping *itself* under two symmetries is deliberately not a
  // conflict: for lanes (r, s1), (r, s2) the second is the t = s2*s1^-1 image
  // of the first — guard and move transported together — so the divergence is
  // exactly the adversary's choice of local frame, which disoriented
  // algorithms tolerate by construction (every chirality-free table in the
  // paper overlaps itself this way on symmetric views).  The defect is the
  // degenerate case where the guard cannot distinguish the frames at all
  // (identical rows) yet the move depends on them: ambiguous-move, above.
  const int nsyms = static_cast<int>(syms.size());
  for (int ri = 0; ri < num_rules; ++ri) {
    if (satisfiable[static_cast<std::size_t>(ri)] == 0) continue;
    const Rule& rule_a = alg.rules[static_cast<std::size_t>(ri)];
    std::vector<std::array<CellPattern, kMaxKernelSize>> rows_a;
    rows_a.reserve(static_cast<std::size_t>(nsyms));
    for (int s = 0; s < nsyms; ++s) {
      rows_a.push_back(world_row(rule_a, kernel, syms[static_cast<std::size_t>(s)]));
    }

    // (b) symmetry-ambiguous moves: the guard read through two admissible
    // symmetries is the *same* constraint, yet the move maps differently.
    bool ambiguous_reported = false;
    for (int s1 = 0; s1 < nsyms && !ambiguous_reported; ++s1) {
      for (int s2 = s1 + 1; s2 < nsyms && !ambiguous_reported; ++s2) {
        if (rows_a[static_cast<std::size_t>(s1)] != rows_a[static_cast<std::size_t>(s2)]) continue;
        const LaneAction a1 = lane_action(rule_a, syms[static_cast<std::size_t>(s1)]);
        const LaneAction a2 = lane_action(rule_a, syms[static_cast<std::size_t>(s2)]);
        if (a1 == a2) continue;
        Finding f;
        f.cls = DefectClass::SymmetryAmbiguousMove;
        f.rule_index = ri;
        f.other_rule_index = ri;
        f.rule = rule_a.label;
        f.other_rule = rule_a.label;
        f.sym = syms[static_cast<std::size_t>(s1)];
        f.other_sym = syms[static_cast<std::size_t>(s2)];
        f.message = rule_ref(alg, ri) + ": guard is invariant under " +
                    sym_text(f.other_sym) + " which maps the move to " +
                    (a2.move.has_value() ? lumi::to_string(*a2.move) : std::string("Idle")) +
                    " instead of " +
                    (a1.move.has_value() ? lumi::to_string(*a1.move) : std::string("Idle")) +
                    "; the adversary picks the frame";
        f.witness = make_witness(rows_a[static_cast<std::size_t>(s1)], kernel, rule_a.self);
        if (!certify_conflict(alg, f)) {
          throw std::logic_error("rule analysis drift: matcher rejects ambiguous-move witness "
                                 "for " + rule_ref(alg, ri));
        }
        f.certified = true;
        add(std::move(f));
        ambiguous_reported = true;
      }
    }

    for (int rj = ri + 1; rj < num_rules; ++rj) {
      if (satisfiable[static_cast<std::size_t>(rj)] == 0) continue;
      const Rule& rule_b = alg.rules[static_cast<std::size_t>(rj)];
      if (rule_b.self != rule_a.self) continue;
      bool conflict_reported = false;
      for (int s1 = 0; s1 < nsyms && !conflict_reported; ++s1) {
        for (int s2 = 0; s2 < nsyms && !conflict_reported; ++s2) {
          const LaneAction a1 = lane_action(rule_a, syms[static_cast<std::size_t>(s1)]);
          const LaneAction a2 = lane_action(rule_b, syms[static_cast<std::size_t>(s2)]);
          if (a1 == a2) continue;  // same behavior: overlap is harmless
          // Cellwise meet of the two world-frame rows.
          const std::array<CellPattern, kMaxKernelSize> row_b =
              world_row(rule_b, kernel, syms[static_cast<std::size_t>(s2)]);
          std::array<CellPattern, kMaxKernelSize> met{};
          bool sat = true;
          for (int w = 0; w < ks && sat; ++w) {
            const std::optional<CellPattern> m =
                meet(rows_a[static_cast<std::size_t>(s1)][static_cast<std::size_t>(w)],
                     row_b[static_cast<std::size_t>(w)]);
            if (!m.has_value()) {
              sat = false;
            } else {
              met[static_cast<std::size_t>(w)] = *m;
            }
          }
          if (!sat) continue;
          if (!center_admits_self(met[static_cast<std::size_t>(kernel.index_of({0, 0}))],
                                  rule_a.self)) {
            continue;
          }
          if (robots_required(met, kernel) > alg.num_robots()) continue;
          Finding f;
          f.cls = DefectClass::DeterminismConflict;
          f.rule_index = ri;
          f.other_rule_index = rj;
          f.rule = rule_a.label;
          f.other_rule = rule_b.label;
          f.sym = syms[static_cast<std::size_t>(s1)];
          f.other_sym = syms[static_cast<std::size_t>(s2)];
          f.message = rule_ref(alg, ri) + " (" + sym_text(f.sym) + ") and " +
                      rule_ref(alg, rj) + " (" + sym_text(f.other_sym) +
                      ") are satisfiable on the same view with different actions: " +
                      lumi::to_string(a1.new_color) + "," +
                      (a1.move.has_value() ? lumi::to_string(*a1.move) : std::string("Idle")) +
                      " vs " + lumi::to_string(a2.new_color) + "," +
                      (a2.move.has_value() ? lumi::to_string(*a2.move) : std::string("Idle"));
          f.witness = make_witness(met, kernel, rule_a.self);
          if (!certify_conflict(alg, f)) {
            throw std::logic_error("rule analysis drift: matcher rejects conflict witness for " +
                                   rule_ref(alg, ri) + " vs " + rule_ref(alg, rj));
          }
          f.certified = true;
          add(std::move(f));
          conflict_reported = true;
        }
      }
    }
  }

  return report;
}

void require_well_formed(const Algorithm& alg) {
  const AnalysisReport report = analyze(alg);
  if (report.ok()) return;
  throw std::invalid_argument(alg.name + ": rule table ill-formed (" +
                              std::to_string(report.errors()) + " errors):\n" +
                              report.to_string());
}

}  // namespace lumi::analysis
