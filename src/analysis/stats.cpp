#include "src/analysis/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace lumi {

Aggregate aggregate(const std::vector<long>& samples) {
  Aggregate a;
  if (samples.empty()) return a;
  a.count = static_cast<long>(samples.size());
  a.min = *std::min_element(samples.begin(), samples.end());
  a.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (long s : samples) sum += static_cast<double>(s);
  a.mean = sum / static_cast<double>(a.count);
  return a;
}

double linear_slope(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("linear_slope: need two equally sized samples");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument("linear_slope: degenerate x");
  return (n * sxy - sx * sy) / denom;
}

std::string Aggregate::to_string() const {
  return "n=" + std::to_string(count) + " mean=" + std::to_string(mean) +
         " min=" + std::to_string(min) + " max=" + std::to_string(max);
}

}  // namespace lumi
