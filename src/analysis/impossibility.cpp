#include "src/analysis/impossibility.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "src/core/matching.hpp"
#include "src/engine/sync_engine.hpp"

namespace lumi {

namespace {

/// Identity-preserving state: (pos, color) per robot.  Identities matter for
/// the per-robot fairness bookkeeping, so no canonicalization here.
struct GameState {
  std::vector<Robot> robots;
};

std::string encode(const Grid& grid, const GameState& s) {
  std::string out;
  out.reserve(s.robots.size() * 2);
  for (const Robot& r : s.robots) {
    out.push_back(static_cast<char>(grid.index(r.pos)));
    out.push_back(static_cast<char>(r.color));
  }
  return out;
}

struct Edge {
  int to = -1;
  std::uint32_t activated = 0;  ///< bitmask of robots acting on this edge
};

struct Node {
  GameState state;
  std::vector<Edge> edges;
  std::uint32_t enabled_mask = 0;  ///< robots enabled in this configuration
  bool terminal = false;
};

class Game {
 public:
  Game(const Algorithm& alg, const Grid& grid, Vec target, long max_states)
      : alg_(alg), compiled_(CompiledAlgorithm::get(alg)), grid_(grid), target_(target),
        max_states_(max_states) {}

  AdversaryResult solve() {
    AdversaryResult result;
    result.protected_node = target_;

    GameState init;
    for (const auto& [pos, color] : alg_.initial_robots) init.robots.push_back(Robot{pos, color});
    if (occupies_target(init)) {
      result.summary = "initial configuration already occupies the target";
      return result;
    }
    const int root = intern(init);
    // BFS expansion of the restricted graph (successors that keep the
    // target node unoccupied).
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (static_cast<long>(nodes_.size()) > max_states_) {
        result.summary = "state budget exhausted";
        result.states = static_cast<long>(nodes_.size());
        return result;
      }
      expand(static_cast<int>(i));
    }
    result.states = static_cast<long>(nodes_.size());

    // (a) reachable terminal configuration?
    for (const Node& n : nodes_) {
      if (n.terminal) {
        result.adversary_wins = true;
        result.via_terminal = true;
        result.summary = "terminal configuration reachable while avoiding the target";
        return result;
      }
    }
    // (b) SCC with a fair cycle?
    if (fair_scc_exists(root)) {
      result.adversary_wins = true;
      result.via_fair_cycle = true;
      result.summary = "fair non-terminating schedule avoids the target forever";
      return result;
    }
    result.summary = "every fair SSYNC schedule eventually visits the target";
    return result;
  }

 private:
  bool occupies_target(const GameState& s) const {
    for (const Robot& r : s.robots) {
      if (r.pos == target_) return true;
    }
    return false;
  }

  int intern(const GameState& s) {
    const std::string key = encode(grid_, s);
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    const int id = static_cast<int>(nodes_.size());
    index_.emplace(key, id);
    Node n;
    n.state = s;
    nodes_.push_back(std::move(n));
    return id;
  }

  void expand(int id) {
    // note: nodes_ may reallocate while emitting; copy what we need first.
    const GameState state = nodes_[static_cast<std::size_t>(id)].state;
    Configuration config(grid_, state.robots);
    std::vector<std::vector<Action>> actions(state.robots.size());
    std::uint32_t enabled_mask = 0;
    std::vector<int> enabled;
    for (int r = 0; r < static_cast<int>(state.robots.size()); ++r) {
      actions[static_cast<std::size_t>(r)] = enabled_actions(*compiled_, config, r);
      if (!actions[static_cast<std::size_t>(r)].empty()) {
        enabled_mask |= 1u << r;
        enabled.push_back(r);
      }
    }
    nodes_[static_cast<std::size_t>(id)].enabled_mask = enabled_mask;
    if (enabled.empty()) {
      nodes_[static_cast<std::size_t>(id)].terminal = true;
      return;
    }
    // Every nonempty subset x every action-choice combination.
    const std::size_t n = enabled.size();
    std::vector<Edge> edges;
    for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
      std::vector<int> subset;
      for (std::size_t b = 0; b < n; ++b) {
        if (mask & (1ULL << b)) subset.push_back(enabled[b]);
      }
      std::vector<std::size_t> choice(subset.size(), 0);
      while (true) {
        GameState next = state;
        std::uint32_t activated = 0;
        bool legal = true;
        for (std::size_t i = 0; i < subset.size() && legal; ++i) {
          const int robot = subset[i];
          const Action& a = actions[static_cast<std::size_t>(robot)][choice[i]];
          Robot& r = next.robots[static_cast<std::size_t>(robot)];
          r.color = a.new_color;
          if (a.move.has_value()) {
            const std::optional<Vec> to = grid_.step(r.pos, *a.move);
            if (!to) {
              legal = false;
            } else {
              r.pos = *to;
            }
          }
          activated |= 1u << robot;
        }
        if (legal && !occupies_target(next)) {
          edges.push_back(Edge{intern(next), activated});
        }
        std::size_t d = 0;
        while (d < subset.size()) {
          choice[d] += 1;
          if (choice[d] < actions[static_cast<std::size_t>(subset[d])].size()) break;
          choice[d] = 0;
          d += 1;
        }
        if (d == subset.size()) break;
      }
    }
    nodes_[static_cast<std::size_t>(id)].edges = std::move(edges);
  }

  /// Tarjan SCCs over the restricted graph; a component admits a fair cycle
  /// iff it contains an edge (cycle exists) and every robot is activated on
  /// some internal edge or disabled in some member configuration.
  bool fair_scc_exists(int root) {
    const int n = static_cast<int>(nodes_.size());
    std::vector<int> index(static_cast<std::size_t>(n), -1);
    std::vector<int> low(static_cast<std::size_t>(n), 0);
    std::vector<int> comp(static_cast<std::size_t>(n), -1);
    std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
    std::vector<int> scc_stack;
    int next_index = 0;
    int next_comp = 0;

    struct Frame {
      int v;
      std::size_t edge = 0;
    };
    std::vector<Frame> call;
    call.push_back({root});
    index[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] = next_index++;
    scc_stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;

    std::vector<std::vector<int>> components;
    while (!call.empty()) {
      Frame& f = call.back();
      const auto& edges = nodes_[static_cast<std::size_t>(f.v)].edges;
      if (f.edge < edges.size()) {
        const int w = edges[f.edge].to;
        f.edge += 1;
        if (index[static_cast<std::size_t>(w)] < 0) {
          index[static_cast<std::size_t>(w)] = low[static_cast<std::size_t>(w)] = next_index++;
          scc_stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          call.push_back({w});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)], index[static_cast<std::size_t>(w)]);
        }
      } else {
        if (low[static_cast<std::size_t>(f.v)] == index[static_cast<std::size_t>(f.v)]) {
          components.emplace_back();
          while (true) {
            const int w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            comp[static_cast<std::size_t>(w)] = next_comp;
            components.back().push_back(w);
            if (w == f.v) break;
          }
          next_comp += 1;
        }
        const int v = f.v;
        call.pop_back();
        if (!call.empty()) {
          low[static_cast<std::size_t>(call.back().v)] = std::min(
              low[static_cast<std::size_t>(call.back().v)], low[static_cast<std::size_t>(v)]);
        }
      }
    }

    const std::uint32_t all_robots =
        (1u << alg_.initial_robots.size()) - 1u;
    for (const std::vector<int>& members : components) {
      std::uint32_t activated = 0;
      std::uint32_t disabled_somewhere = 0;
      bool has_internal_edge = false;
      for (int v : members) {
        disabled_somewhere |= ~nodes_[static_cast<std::size_t>(v)].enabled_mask & all_robots;
        for (const Edge& e : nodes_[static_cast<std::size_t>(v)].edges) {
          if (comp[static_cast<std::size_t>(e.to)] == comp[static_cast<std::size_t>(v)]) {
            has_internal_edge = true;
            activated |= e.activated;
          }
        }
      }
      if (has_internal_edge && ((activated | disabled_somewhere) & all_robots) == all_robots) {
        return true;
      }
    }
    return false;
  }

  const Algorithm& alg_;
  std::shared_ptr<const CompiledAlgorithm> compiled_;
  const Grid& grid_;
  Vec target_;
  long max_states_;
  std::vector<Node> nodes_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace

AdversaryResult check_protected_node(const Algorithm& alg, const Grid& grid, Vec target,
                                     const AdversaryOptions& opts) {
  if (alg.num_robots() > 30) throw std::invalid_argument("too many robots for the game solver");
  Game game(alg, grid, target, opts.max_states);
  return game.solve();
}

AdversaryResult find_ssync_adversary(const Algorithm& alg, const Grid& grid,
                                     const AdversaryOptions& opts) {
  AdversaryResult overall;
  for (int idx = 0; idx < grid.num_nodes(); ++idx) {
    if (!grid.is_node_index(idx)) continue;  // walls are not defensible nodes
    AdversaryResult r = check_protected_node(alg, grid, grid.node(idx), opts);
    overall.states += r.states;
    if (r.adversary_wins) {
      r.states = overall.states;
      return r;
    }
  }
  overall.adversary_wins = false;
  overall.summary = "no node can be defended: every fair SSYNC schedule explores the grid";
  return overall;
}

}  // namespace lumi
