// Exhaustive model checking of terminating exploration on small grids.
//
// For a given algorithm, grid and synchrony model, the checker enumerates
// *every* schedule the model admits (all FSYNC choice resolutions, all
// nonempty SSYNC activation subsets, all ASYNC Look/Compute/Move
// interleavings including stale-snapshot decisions) and verifies that every
// maximal execution terminates in a fully-explored configuration:
//   * no reachable cycle (a cycle would admit a fair non-terminating
//     schedule for these algorithms, where every enabled robot keeps acting),
//   * every terminal state has all nodes visited,
//   * no robot ever steps off the grid (engine-level exception).
// States carry the visited-node bitmask, so coverage is exact per path
// prefix; anonymous robots are canonicalized to collapse symmetric states.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/algorithm.hpp"
#include "src/core/grid.hpp"

namespace lumi {

enum class CheckModel : std::uint8_t { Fsync, Ssync, Async };

struct CheckOptions {
  long max_states = 4'000'000;
  /// Collect a witness path (state renderings) on failure.
  bool want_witness = true;
};

struct CheckResult {
  bool ok = false;
  long states = 0;            ///< distinct states visited
  long transitions = 0;
  long terminal_states = 0;
  std::string failure;        ///< empty when ok
  std::vector<std::string> witness;  ///< path to the failure, oldest first

  std::string to_string() const;
};

CheckResult model_check(const Algorithm& alg, const Grid& grid, CheckModel model,
                        const CheckOptions& opts = {});

}  // namespace lumi
