// Semantic rule-table analyzer: proves an Algorithm's rule set well-formed
// statically, before any engine runs it.
//
// The paper's correctness arguments assume well-formed tables — no two
// guards simultaneously satisfiable with conflicting actions, moves never
// directed into cells the guard admits as walls, every declared light color
// actually reachable.  Algorithm::validate() checks only shallow structure;
// this pass decides the semantic properties exactly.  Guards are sparse
// constraints over at most kMaxKernelSize view offsets with small finite
// per-cell domains, so pairwise guard intersection is decidable by a direct
// per-cell CellPattern meet (src/core/pattern.hpp) — no solver dependency.
//
// Defect classes (docs/ANALYSIS.md maps each to the paper assumption it
// protects):
//   conflict        two distinct rules satisfiable on the same view with
//                   different actions (the paper's tables are meant to be
//                   mutually exclusive across rules)
//   ambiguous-move  a guard invariant under an admissible symmetry that maps
//                   its move to a different direction — the same-rule
//                   specialization of a conflict.  A rule overlapping itself
//                   under two symmetries with *distinguishable* guards is NOT
//                   a defect: the divergence is the adversary's frame choice,
//                   which disoriented algorithms tolerate by construction.
//   dead-rule       guards no view can satisfy (contradictory or shadowed
//                   cells, center without the robot itself, more robots
//                   required than the algorithm has) or that can never fire
//                   (self color never lit)
//   color-flow      colors unreachable from the initial lights through the
//                   self -> new_color graph, or a palette num_colors
//                   overstates
//   wall-hazard     moves into cells the guard admits as walls
//
// Every conflict/ambiguous-move finding carries a witness view and is
// *certified* at analysis time: the witness is replayed through the compiled
// matcher — the same code the engines and the model checker execute — and
// must exhibit both reported actions.  The analyzer can therefore never
// drift from engine semantics; a certification failure throws.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "src/core/algorithm.hpp"
#include "src/core/view.hpp"

namespace lumi::analysis {

enum class Severity : std::uint8_t { Warning, Error };
enum class DefectClass : std::uint8_t {
  DeterminismConflict,
  SymmetryAmbiguousMove,
  DeadRule,
  ColorFlow,
  WallHazard,
};

/// Stable machine-readable slugs: "conflict", "ambiguous-move", "dead-rule",
/// "color-flow", "wall-hazard" (fixture `# expect:` headers use these).
std::string to_string(DefectClass cls);
std::string to_string(Severity sev);
/// Inverse of to_string(DefectClass); nullopt for unknown slugs.
std::optional<DefectClass> defect_from_string(const std::string& slug);

/// A concrete view (global frame, kernel order) witnessing a finding.
/// Feeding it to the matcher reproduces the reported behaviors.
struct WitnessView {
  int phi = 1;
  Color self = Color::G;
  std::array<CellContent, kMaxKernelSize> cells{};

  /// The witness as a matcher-ready snapshot (planes filled).
  Snapshot to_snapshot() const;
  /// Renders like "self=G C={G} N=empty ... SE=wall" over the whole kernel.
  std::string to_string() const;
};

struct Finding {
  DefectClass cls = DefectClass::DeadRule;
  Severity severity = Severity::Error;
  int rule_index = -1;        ///< index into Algorithm::rules; -1 = whole table
  int other_rule_index = -1;  ///< second rule of a conflict pair
  std::string rule;           ///< label of rule_index ("" = whole table)
  std::string other_rule;     ///< label of other_rule_index
  Sym sym{};                  ///< admissible symmetry of `rule`'s lane
  Sym other_sym{};            ///< admissible symmetry of `other_rule`'s lane
  std::string message;
  std::optional<WitnessView> witness;  ///< present on conflict/ambiguous-move
  bool certified = false;  ///< witness replayed through the compiled matcher

  std::string to_string() const;
};

struct AnalysisReport {
  std::vector<Finding> findings;

  int errors() const;
  int warnings() const;
  /// No findings at all — the bar the registry algorithms are pinned at.
  bool clean() const { return findings.empty(); }
  /// No error-severity findings (warnings tolerated).
  bool ok() const { return errors() == 0; }
  /// One line per finding, deterministic order; "" when clean.
  std::string to_string() const;
};

/// Analyzes the rule table exactly; deterministic, allocation-light, and
/// fast enough to run at every campaign expansion.  The input need not pass
/// Algorithm::validate() — structural violations surface as findings instead
/// of exceptions (that is what lets defect fixtures be analyzed at all).
AnalysisReport analyze(const Algorithm& alg);

/// Throws std::invalid_argument carrying the findings text when `analyze`
/// reports any error-severity finding.  The gate dsl::parse (strict mode)
/// and campaign matrix expansion apply.
void require_well_formed(const Algorithm& alg);

/// Replays a conflict/ambiguous-move finding's witness through the compiled
/// matcher and checks both reported lanes' actions are enabled and
/// behaviorally distinct.  analyze() already does this (and throws
/// std::logic_error on mismatch); exposed so test harnesses and algo_lint
/// can re-certify independently.
bool certify_conflict(const Algorithm& alg, const Finding& finding);

}  // namespace lumi::analysis
