// Small aggregation helpers for run statistics (used by benches and
// examples to report move/instant counts across seeds and grid sizes).
#pragma once

#include <string>
#include <vector>

namespace lumi {

struct Aggregate {
  long count = 0;
  double mean = 0.0;
  long min = 0;
  long max = 0;

  std::string to_string() const;
};

Aggregate aggregate(const std::vector<long>& samples);

/// Least-squares slope of y against x (used to confirm O(m*n) move counts).
double linear_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace lumi
