#include "src/analysis/verifier.hpp"

#include <memory>

namespace lumi {

namespace {

std::string describe_run(const RunResult& r, const Grid& grid) {
  if (!r.failure.empty()) return r.failure;
  if (!r.terminated) return "did not terminate";
  if (!r.explored_all) {
    // Coverage is measured against the reachable (non-wall) nodes, not the
    // bounding box — on a plain grid the two coincide.
    return "terminated after visiting " + std::to_string(r.visited_count()) + "/" +
           std::to_string(grid.reachable_nodes()) + " nodes";
  }
  return "";
}

void record(SweepReport& report, const RunResult& result, const Grid& grid, int rows, int cols,
            const std::string& sched, unsigned seed) {
  report.runs += 1;
  report.total_instants += result.stats.instants;
  report.total_moves += result.stats.moves;
  const std::string reason = describe_run(result, grid);
  if (!reason.empty()) {
    report.failures.push_back(SweepFailure{rows, cols, sched, seed, reason});
  }
}

}  // namespace

SweepReport verify_sweep(const Algorithm& alg, const SweepOptions& opts) {
  SweepReport report;
  const int min_rows = opts.min_rows > 0 ? opts.min_rows : alg.min_rows;
  const int min_cols = opts.min_cols > 0 ? opts.min_cols : alg.min_cols;
  for (int rows = min_rows; rows <= opts.max_rows; ++rows) {
    for (int cols = min_cols; cols <= opts.max_cols; ++cols) {
      const Grid grid(rows, cols);
      RunOptions run_opts;
      run_opts.max_steps = opts.max_steps;

      if (opts.run_fsync) {
        FsyncScheduler sched;
        RunOptions fsync_opts = run_opts;
        fsync_opts.require_unique_actions = true;
        record(report, run_sync(alg, grid, sched, fsync_opts), grid, rows, cols, sched.name(), 0);
      }
      if (opts.run_ssync) {
        for (int s = 0; s < opts.seeds; ++s) {
          const unsigned seed = static_cast<unsigned>(1000 * rows + 10 * cols + s);
          SsyncRandomScheduler sched(seed);
          record(report, run_sync(alg, grid, sched, run_opts), grid, rows, cols, sched.name(),
                 seed);
        }
        SsyncRoundRobinScheduler rr;
        record(report, run_sync(alg, grid, rr, run_opts), grid, rows, cols, rr.name(), 0);
      }
      if (opts.run_async) {
        for (int s = 0; s < opts.seeds; ++s) {
          const unsigned seed = static_cast<unsigned>(2000 * rows + 20 * cols + s);
          AsyncRandomScheduler sched(seed);
          record(report, run_async(alg, grid, sched, run_opts), grid, rows, cols, sched.name(),
                 seed);
          AsyncStaleStressScheduler stress(seed);
          record(report, run_async(alg, grid, stress, run_opts), grid, rows, cols, stress.name(),
                 seed);
        }
        AsyncCentralizedScheduler central;
        record(report, run_async(alg, grid, central, run_opts), grid, rows, cols, central.name(),
               0);
      }
    }
  }
  return report;
}

SweepOptions default_sweep_for(const Algorithm& alg) {
  SweepOptions opts;
  opts.run_fsync = true;
  opts.run_ssync = alg.model != Synchrony::Fsync;
  opts.run_async = alg.model == Synchrony::Async;
  return opts;
}

std::string SweepReport::to_string() const {
  std::string out = std::to_string(runs) + " runs, " + std::to_string(failures.size()) +
                    " failures";
  for (std::size_t i = 0; i < failures.size() && i < 5; ++i) {
    const SweepFailure& f = failures[i];
    out += "\n  " + std::to_string(f.rows) + "x" + std::to_string(f.cols) + " [" + f.scheduler +
           " seed " + std::to_string(f.seed) + "]: " + f.reason;
  }
  if (failures.size() > 5) out += "\n  ...";
  return out;
}

}  // namespace lumi
