// Randomized verification harness: runs an algorithm over sweeps of grid
// sizes, schedulers and seeds, checking terminating exploration each time.
#pragma once

#include <string>
#include <vector>

#include "src/core/algorithm.hpp"
#include "src/engine/runner.hpp"

namespace lumi {

struct SweepOptions {
  int min_rows = 0;   ///< 0 = use the algorithm's minimum
  int max_rows = 7;
  int min_cols = 0;
  int max_cols = 8;
  int seeds = 10;           ///< random schedulers per (m, n, kind)
  long max_steps = 500'000;
  /// Scheduler families to exercise.  FSYNC-only algorithms are only sound
  /// under the FSYNC scheduler; ASYNC algorithms are exercised under all.
  bool run_fsync = true;
  bool run_ssync = false;
  bool run_async = false;
};

struct SweepFailure {
  int rows = 0;
  int cols = 0;
  std::string scheduler;
  unsigned seed = 0;
  std::string reason;
};

struct SweepReport {
  long runs = 0;
  long total_instants = 0;
  long total_moves = 0;
  std::vector<SweepFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string to_string() const;
};

/// Exercises `alg` across the sweep; every run must terminate with full
/// coverage.  FSYNC runs additionally require action uniqueness (the
/// paper's algorithms are deterministic under FSYNC).
SweepReport verify_sweep(const Algorithm& alg, const SweepOptions& opts = {});

/// Picks the scheduler families appropriate for `alg.model`.
SweepOptions default_sweep_for(const Algorithm& alg);

}  // namespace lumi
