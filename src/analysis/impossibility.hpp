// Adversary synthesis for Theorem 1: in the SSYNC model, can a *fair*
// scheduler prevent a given algorithm's robots from ever visiting some node?
//
// The scheduler controls everything (activation subsets and ambiguous
// rule/view choices), so the question is a reachability/fair-cycle analysis
// of the configuration graph restricted to configurations avoiding the
// protected node: the adversary wins iff it can reach
//   (a) a terminal configuration (no robot enabled), or
//   (b) a strongly connected component supporting a fair cycle — one where
//       every robot is either activated inside the component or disabled in
//       some of its configurations (so activating it there is a no-op and
//       fairness is satisfied vacuously).
// Theorem 1 states that for k=2, phi=1 *every* algorithm loses against such
// an adversary; this module demonstrates it constructively per algorithm.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/core/algorithm.hpp"
#include "src/core/grid.hpp"

namespace lumi {

struct AdversaryOptions {
  long max_states = 2'000'000;
};

struct AdversaryResult {
  bool adversary_wins = false;
  Vec protected_node;        ///< node the adversary keeps unvisited (if wins)
  bool via_terminal = false; ///< won by reaching a terminal configuration
  bool via_fair_cycle = false;
  long states = 0;           ///< states explored across all candidate nodes
  std::string summary;
};

/// Tries every node as the protected target and reports the first the
/// adversary can defend forever (fairly).  `adversary_wins == false` means
/// every fair SSYNC schedule eventually visits every node — evidence the
/// algorithm explores under any fair SSYNC adversary on this grid.
AdversaryResult find_ssync_adversary(const Algorithm& alg, const Grid& grid,
                                     const AdversaryOptions& opts = {});

/// Checks a single protected node.
AdversaryResult check_protected_node(const Algorithm& alg, const Grid& grid, Vec target,
                                     const AdversaryOptions& opts = {});

}  // namespace lumi
