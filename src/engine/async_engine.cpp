#include "src/engine/async_engine.hpp"

#include <stdexcept>

namespace lumi {

AsyncEngine::AsyncEngine(const Algorithm& alg, Configuration initial)
    : alg_(&alg),
      config_(std::move(initial)),
      phases_(static_cast<std::size_t>(config_.num_robots()), Phase::Idle),
      pending_(static_cast<std::size_t>(config_.num_robots())) {}

const Action& AsyncEngine::pending(int robot) const {
  if (phase(robot) == Phase::Idle) throw std::logic_error("pending: robot has no pending action");
  return pending_.at(static_cast<std::size_t>(robot));
}

std::vector<int> AsyncEngine::effective_robots() const {
  std::vector<int> out;
  for (int i = 0; i < config_.num_robots(); ++i) {
    if (phase(i) != Phase::Idle || is_enabled(*alg_, config_, i)) out.push_back(i);
  }
  return out;
}

std::vector<Action> AsyncEngine::look_choices(int robot) const {
  if (phase(robot) != Phase::Idle) throw std::logic_error("look_choices: robot mid-cycle");
  return enabled_actions(*alg_, config_, robot);
}

void AsyncEngine::activate(int robot, std::optional<Action> chosen) {
  auto& phase = phases_.at(static_cast<std::size_t>(robot));
  switch (phase) {
    case Phase::Idle: {
      const std::vector<Action> choices = look_choices(robot);
      if (choices.empty()) return;  // vacuous cycle, unobservable
      Action decision = chosen.value_or(choices.front());
      bool valid = false;
      for (const Action& c : choices) valid = valid || c.same_behavior(decision);
      if (!valid) throw std::logic_error("activate: chosen action is not enabled");
      pending_[static_cast<std::size_t>(robot)] = decision;
      phase = Phase::Decided;
      return;
    }
    case Phase::Decided: {
      if (chosen.has_value()) throw std::logic_error("activate: choice only valid at Look");
      config_.set_color(robot, pending_[static_cast<std::size_t>(robot)].new_color);
      phase = Phase::Colored;
      return;
    }
    case Phase::Colored: {
      if (chosen.has_value()) throw std::logic_error("activate: choice only valid at Look");
      const Action& act = pending_[static_cast<std::size_t>(robot)];
      if (act.move.has_value()) {
        const Vec to = config_.robot(robot).pos + dir_vec(*act.move);
        if (!config_.grid().contains(to)) {
          throw std::logic_error("AsyncEngine: robot would leave the grid");
        }
        config_.move_robot(robot, to);
      }
      phase = Phase::Idle;
      return;
    }
  }
}

bool AsyncEngine::terminal() const {
  for (int i = 0; i < config_.num_robots(); ++i) {
    if (phase(i) != Phase::Idle) return false;
  }
  return is_terminal(*alg_, config_);
}

}  // namespace lumi
