#include "src/engine/async_engine.hpp"

#include <stdexcept>

namespace lumi {

AsyncEngine::AsyncEngine(const Algorithm& alg, Configuration initial, bool incremental,
                         WarmStartSlot* warm,
                         std::shared_ptr<const CompiledAlgorithm> precompiled,
                         std::pmr::memory_resource* mem, const TrackerWarmStart* warm_adopt)
    : alg_(&alg),
      compiled_(precompiled != nullptr ? std::move(precompiled) : CompiledAlgorithm::get(alg)),
      config_(std::move(initial)),
      phases_(static_cast<std::size_t>(config_.num_robots()), Phase::Idle),
      pending_(static_cast<std::size_t>(config_.num_robots())) {
  if (incremental) {
    std::shared_ptr<const TrackerWarmStart> held;
    const TrackerWarmStart* table = warm_adopt;
    if (table == nullptr && warm != nullptr) {
      held = warm->get();
      table = held.get();
    }
    tracker_ = std::make_unique<DirtyTracker>(compiled_, config_, table, mem);
    if (warm_adopt == nullptr && warm != nullptr && !tracker_->warm_started()) {
      warm->set(tracker_->export_warm());
    }
  }
}

const Action& AsyncEngine::pending(int robot) const {
  if (phase(robot) == Phase::Idle) throw std::logic_error("pending: robot has no pending action");
  return pending_.at(static_cast<std::size_t>(robot));
}

std::vector<int> AsyncEngine::effective_robots() const {
  std::vector<int> out;
  for (int i = 0; i < config_.num_robots(); ++i) {
    const bool idle_enabled =
        tracker_ ? tracker_->enabled(i) : is_enabled(*compiled_, config_, i);
    if (phase(i) != Phase::Idle || idle_enabled) out.push_back(i);
  }
  return out;
}

std::vector<Action> AsyncEngine::look_choices(int robot) const {
  if (phase(robot) != Phase::Idle) throw std::logic_error("look_choices: robot mid-cycle");
  if (tracker_) return tracker_->actions(robot);
  return enabled_actions(*compiled_, config_, robot);
}

void AsyncEngine::activate(int robot, std::optional<Action> chosen) {
  auto& phase = phases_.at(static_cast<std::size_t>(robot));
  switch (phase) {
    case Phase::Idle: {
      const std::vector<Action> choices = look_choices(robot);
      if (choices.empty()) return;  // vacuous cycle, unobservable
      const Action decision = chosen.value_or(choices.front());
      // Choices are deduplicated by behavior, so at most one can match.
      bool valid = false;
      bool canonical_witness = false;
      for (const Action& c : choices) {
        if (c.same_behavior(decision)) {
          valid = true;
          canonical_witness = c.rule_index == decision.rule_index && c.sym == decision.sym;
          break;
        }
      }
      if (!valid) throw std::logic_error("activate: chosen action is not enabled");
      // A caller-supplied witness must itself derive the behavior it claims:
      // the rule must exist, its symmetry must be admissible, its guard must
      // match under that symmetry, and the rule's action mapped through it
      // must reproduce the decision.  Actions taken verbatim from
      // look_choices carry the canonical witness and skip this re-check, so
      // the scheduler-driven hot path pays nothing for it.
      if (chosen.has_value() && chosen->rule_index >= 0 && !canonical_witness) {
        if (static_cast<std::size_t>(chosen->rule_index) >= alg_->rules.size()) {
          throw std::logic_error("activate: chosen action names a nonexistent rule");
        }
        const Rule& rule = alg_->rules[static_cast<std::size_t>(chosen->rule_index)];
        bool admissible = false;
        for (Sym sym : alg_->symmetries()) {
          if (sym == chosen->sym) {
            admissible = true;
            break;
          }
        }
        if (!admissible) {
          throw std::logic_error("activate: chosen action's symmetry is not admissible");
        }
        const Snapshot snap = take_snapshot(config_, robot, alg_->phi);
        const std::optional<Dir> mapped_move =
            rule.move.has_value() ? std::optional<Dir>(apply(chosen->sym, *rule.move))
                                  : std::nullopt;
        if (!guard_matches(rule, snap, chosen->sym) || rule.new_color != chosen->new_color ||
            mapped_move != chosen->move) {
          throw std::logic_error("activate: chosen action's rule/sym witness is inconsistent");
        }
      }
      pending_[static_cast<std::size_t>(robot)] = decision;
      phase = Phase::Decided;
      return;
    }
    case Phase::Decided: {
      if (chosen.has_value()) throw std::logic_error("activate: choice only valid at Look");
      config_.set_color(robot, pending_[static_cast<std::size_t>(robot)].new_color);
      phase = Phase::Colored;
      if (tracker_) tracker_->refresh();
      return;
    }
    case Phase::Colored: {
      if (chosen.has_value()) throw std::logic_error("activate: choice only valid at Look");
      const Action& act = pending_[static_cast<std::size_t>(robot)];
      if (act.move.has_value()) {
        const std::optional<Vec> to =
            config_.topology().step(config_.robot(robot).pos, *act.move);
        if (!to) throw std::logic_error("AsyncEngine: robot would leave the grid");
        // *to came out of Topology::step, so the edge is already proven; the
        // stepped fast path skips move_robot's re-validation.
        config_.move_robot_stepped(robot, *to);
      }
      phase = Phase::Idle;
      if (tracker_) tracker_->refresh();
      return;
    }
  }
}

bool AsyncEngine::terminal() const {
  for (int i = 0; i < config_.num_robots(); ++i) {
    if (phase(i) != Phase::Idle) return false;
  }
  if (tracker_) return !tracker_->any_enabled();
  return is_terminal(*compiled_, config_);
}

}  // namespace lumi
