// Execution driver: runs an algorithm on a topology (plain grid, ring,
// torus, obstacle grid) under a scheduler, tracking node coverage,
// termination, statistics and (optionally) the full trace.  Full
// exploration means covering every *reachable* node — the topology's
// non-wall nodes — not the whole bounding box.
#pragma once

#include <memory>
#include <memory_resource>
#include <string>
#include <vector>

#include "src/core/algorithm.hpp"
#include "src/core/incremental.hpp"
#include "src/sched/async_schedulers.hpp"
#include "src/sched/sync_schedulers.hpp"
#include "src/trace/trace.hpp"

namespace lumi {

namespace obs {
class Recorder;  // src/obs/recorder.hpp
}

struct RunOptions {
  long max_steps = 1'000'000;        ///< instants (sync) or events (async)
  bool record_trace = false;
  /// FSYNC determinism check: fail if any robot ever has two distinct
  /// enabled behaviors (the paper's algorithms are deterministic).
  bool require_unique_actions = false;
  /// Drive the engines through the DirtyTracker: robots whose neighborhood
  /// is unchanged since the last instant reuse their cached match verdict.
  /// Results are identical either way (pinned by tests/test_incremental.cpp);
  /// off is the recompute-everything reference path.
  bool incremental = true;
  /// Optional cross-run verdict cache (campaigns pass the cell's slot): the
  /// first run publishes the initial verdict table, later runs of the same
  /// initial configuration skip the tracker's initial full compute.  Pure
  /// perf — results are identical; not part of checkpoint fingerprints.
  WarmStartSlot* warm_start = nullptr;
  /// Optional directly-adopted warm start, taking precedence over
  /// `warm_start`: the batch runner fetches the cell's published table once
  /// and hands every later item the raw pointer, skipping the slot's mutex
  /// and shared_ptr traffic per item (and the publish-back attempt — the
  /// table is already published).  Must outlive the run; the tracker's hash
  /// check still guards adoption.  Pure perf.
  const TrackerWarmStart* warm_adopt = nullptr;
  /// Optional pre-resolved compilation of the algorithm being run (the
  /// batch runner hoists CompiledAlgorithm::get out of the per-item loop).
  /// Must come from an algorithm with identical matching semantics; null =
  /// resolve through the shared cache per run.  Pure perf.
  std::shared_ptr<const CompiledAlgorithm> precompiled;
  /// Optional pre-built initial configuration (the batch runner hoists
  /// Algorithm::initial_configuration out of the per-item loop): the run
  /// starts from an alloc-extended copy of it instead of rebuilding —
  /// validation, canonicalization and the occupancy build happen once per
  /// batch.  Must be exactly initial_configuration(topo) for the algorithm
  /// and topology being run, and must outlive the run.  Null = build per
  /// run.  Pure perf.
  const Configuration* initial = nullptr;
  /// Optional flight recorder (src/obs/recorder.hpp): when non-null, the
  /// engines feed it per-instant structured events and the configuration
  /// entering each instant.  Strictly an observer — attaching one never
  /// changes control flow, results or stats (pinned by
  /// tests/test_obs_identity.cpp); null (the default) costs one pointer test
  /// per instant, gated at 3% by bench_campaign.
  obs::Recorder* recorder = nullptr;
  /// Optional run-scratch memory resource (batched campaigns pass the
  /// worker's Arena): backs the configuration's robot/occupancy/journal
  /// tables and the tracker's internal maps for the duration of the run.
  /// The caller owns it and may only reset it after the RunResult has been
  /// consumed into longer-lived storage (traces copy out on record, so the
  /// result itself never points into the arena).  Null = global heap.
  std::pmr::memory_resource* arena = nullptr;
};

struct RunStats {
  long instants = 0;       ///< sync instants or async phase events
  long activations = 0;    ///< robot cycles started
  long moves = 0;
  long color_changes = 0;  ///< cycles whose new color differs from the old
  /// Incremental-engine counters (zero on the recompute path): per-robot
  /// match verdicts served from the dirty-tracker cache vs. re-matched,
  /// plus verdicts adopted from a per-cell warm start at construction.
  /// Diagnostics only — campaign accumulators and checkpoints ignore them.
  long match_reused = 0;
  long match_recomputed = 0;
  long match_warm_reused = 0;
};

struct RunResult {
  bool terminated = false;
  bool explored_all = false;  ///< every reachable (non-wall) node visited
  RunStats stats;
  std::vector<bool> visited;  ///< per bounding-box node index
  std::string failure;        ///< nonempty on budget exhaustion / violations
  Trace trace;

  bool ok() const { return terminated && explored_all && failure.empty(); }
  int visited_count() const {
    int n = 0;
    for (bool v : visited) n += v ? 1 : 0;
    return n;
  }
};

/// Runs under FSYNC/SSYNC semantics (full atomic cycles per instant).
RunResult run_sync(const Algorithm& alg, const Topology& topo, SyncScheduler& sched,
                   const RunOptions& opts = {});

/// Runs under ASYNC semantics (interleaved Look/Compute/Move events).
RunResult run_async(const Algorithm& alg, const Topology& topo, AsyncScheduler& sched,
                    const RunOptions& opts = {});

/// Final configuration of a recorded trace (requires record_trace).
const Configuration& final_configuration(const RunResult& result);

}  // namespace lumi
