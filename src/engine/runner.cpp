#include "src/engine/runner.hpp"

#include <optional>
#include <stdexcept>

#include "src/core/incremental.hpp"
#include "src/obs/recorder.hpp"

namespace lumi {

namespace {

void mark_visited(std::vector<bool>& visited, const Topology& topo, const Configuration& config) {
  for (const Robot& r : config.robots()) {
    visited[static_cast<std::size_t>(topo.index(r.pos))] = true;
  }
}

/// Full exploration covers every reachable node; wall cells of the bounding
/// box are never visited and never required.  Robots only ever stand on real
/// nodes, so comparing counts is exact.
bool all_explored(const std::vector<bool>& visited, const Topology& topo) {
  int n = 0;
  for (bool v : visited) n += v ? 1 : 0;
  return n == topo.reachable_nodes();
}

std::string describe(const Algorithm& alg, const RobotAction& ra) {
  const Rule& rule = alg.rules.at(static_cast<std::size_t>(ra.action.rule_index));
  std::string note = rule.label + " by robot " + std::to_string(ra.robot);
  if (ra.action.move.has_value()) note += " move " + to_string(*ra.action.move);
  if (rule.new_color != rule.self) note += " color->" + to_string(rule.new_color);
  return note;
}

}  // namespace

RunResult run_sync(const Algorithm& alg, const Topology& topo, SyncScheduler& sched,
                   const RunOptions& opts) {
  // Compile the matcher once per run (or adopt the batch-hoisted
  // compilation); every instant reuses the shared tables.
  const std::shared_ptr<const CompiledAlgorithm> compiled =
      opts.precompiled != nullptr ? opts.precompiled : CompiledAlgorithm::get(alg);
  Configuration config = opts.initial != nullptr
                             ? Configuration(*opts.initial, opts.arena)
                             : alg.initial_configuration(topo, opts.arena);
  // With dirty tracking, each instant re-matches only the robots whose view
  // covers a cell the previous instant changed; everyone else keeps the
  // cached verdict.  `tracker` outlives the loop so verdicts carry across
  // instants.  (Declared after `config`: it holds a pointer into it.)
  std::optional<DirtyTracker> tracker;
  if (opts.incremental) {
    // Per-cell warm start: adopt the cached initial verdict table when one
    // is published for this initial configuration; publish ours otherwise.
    std::shared_ptr<const TrackerWarmStart> warm;
    const TrackerWarmStart* table = opts.warm_adopt;
    if (table == nullptr && opts.warm_start != nullptr) {
      warm = opts.warm_start->get();
      table = warm.get();
    }
    tracker.emplace(compiled, config, table, opts.arena);
    if (opts.warm_adopt == nullptr && opts.warm_start != nullptr && !tracker->warm_started()) {
      opts.warm_start->set(tracker->export_warm());
    }
  }
  std::vector<std::vector<Action>> scratch;
  const auto copy_counters = [&](RunResult& r) {
    if (!tracker) return;
    r.stats.match_reused = tracker->counters().reused;
    r.stats.match_recomputed = tracker->counters().recomputed;
    r.stats.match_warm_reused = tracker->counters().warm_reused;
  };
  RunResult result;
  result.visited.assign(static_cast<std::size_t>(topo.num_nodes()), false);
  mark_visited(result.visited, topo, config);
  if (opts.record_trace) result.trace.push(config, "initial");
  if (opts.recorder != nullptr) opts.recorder->begin_run(config);

  std::vector<RobotAction> selected;  // reused across instants via select_into
  for (long step = 0; step < opts.max_steps; ++step) {
    const std::vector<std::vector<Action>>& enabled = [&]() -> const auto& {
      if (tracker) {
        tracker->refresh();
        return tracker->all_actions();
      }
      scratch = all_enabled_actions(*compiled, config);
      return scratch;
    }();
    if (opts.require_unique_actions) {
      for (const auto& actions : enabled) {
        if (actions.size() > 1) {
          result.failure = "robot has multiple distinct enabled behaviors at instant " +
                           std::to_string(step) + " in " + config.to_string();
          copy_counters(result);
          return result;
        }
      }
    }
    // Termination is detected from the selection: the scheduler contract
    // (sync_schedulers.hpp) returns empty exactly when no robot is enabled,
    // so the hot loop carries no per-instant any-enabled scan — that scan
    // was a measurable share of a whole micro-run.  The scan below runs once
    // per run, to tell a terminal configuration from a scheduler bug.
    sched.select_into(config, enabled, selected);
    if (selected.empty()) {
      bool any_enabled = false;
      for (const auto& actions : enabled) any_enabled = any_enabled || !actions.empty();
      if (!any_enabled) {
        result.terminated = true;
        result.explored_all = all_explored(result.visited, topo);
        copy_counters(result);
        return result;
      }
      result.failure = "scheduler returned an empty selection";
      copy_counters(result);
      return result;
    }
    if (opts.recorder != nullptr) opts.recorder->record_sync_instant(step, config, selected);
    std::string note;
    for (const RobotAction& ra : selected) {
      result.stats.activations += 1;
      if (ra.action.move.has_value()) result.stats.moves += 1;
      if (ra.action.new_color != config.robot(ra.robot).color) result.stats.color_changes += 1;
      // Notes only exist to annotate recorded traces; skip the string work
      // (significant at micro-run scale) when nothing records them.
      if (opts.record_trace) {
        if (!note.empty()) note += "; ";
        note += describe(alg, ra);
      }
    }
    apply_sync_step(config, selected);
    result.stats.instants += 1;
    // Coverage only grows where a robot landed; the full-configuration sweep
    // at entry marked the starting nodes, so per instant it suffices to mark
    // the movers' new positions.
    for (const RobotAction& ra : selected) {
      if (ra.action.move.has_value()) {
        result.visited[static_cast<std::size_t>(topo.index(config.robot(ra.robot).pos))] = true;
      }
    }
    if (opts.record_trace) result.trace.push(config, note);
    if (opts.recorder != nullptr) opts.recorder->record_configuration(step + 1, config);
  }
  result.failure = "step budget exhausted (" + std::to_string(opts.max_steps) + " instants)";
  copy_counters(result);
  return result;
}

RunResult run_async(const Algorithm& alg, const Topology& topo, AsyncScheduler& sched,
                    const RunOptions& opts) {
  AsyncEngine engine(alg,
                     opts.initial != nullptr ? Configuration(*opts.initial, opts.arena)
                                             : alg.initial_configuration(topo, opts.arena),
                     opts.incremental, opts.warm_start, opts.precompiled, opts.arena,
                     opts.warm_adopt);
  RunResult result;
  result.visited.assign(static_cast<std::size_t>(topo.num_nodes()), false);
  mark_visited(result.visited, topo, engine.config());
  if (opts.record_trace) result.trace.push(engine.config(), "initial");
  if (opts.recorder != nullptr) opts.recorder->begin_run(engine.config());
  const auto copy_counters = [&engine](RunResult& r) {
    r.stats.match_reused = engine.match_counters().reused;
    r.stats.match_recomputed = engine.match_counters().recomputed;
    r.stats.match_warm_reused = engine.match_counters().warm_reused;
  };

  for (long event = 0; event < opts.max_steps; ++event) {
    const std::vector<int> effective = engine.effective_robots();
    if (effective.empty()) {
      result.terminated = true;
      result.explored_all = all_explored(result.visited, topo);
      copy_counters(result);
      return result;
    }
    const int robot = sched.pick_robot(engine, effective);
    const Phase before = engine.phase(robot);
    std::string note;
    if (before == Phase::Idle) {
      const std::vector<Action> choices = engine.look_choices(robot);
      if (choices.empty()) {
        // The scheduler picked a robot that became disabled; vacuous cycle.
        continue;
      }
      Action decision = choices.size() == 1 ? choices.front()
                                            : sched.pick_action(engine, robot, choices);
      result.stats.activations += 1;
      if (decision.new_color != engine.config().robot(robot).color) {
        result.stats.color_changes += 1;
      }
      if (decision.move.has_value()) result.stats.moves += 1;
      // Trace notes are only consumed by recorded traces; skip the string
      // work (significant at micro-run scale) when nothing records them.
      if (opts.record_trace) note = "Look: " + describe(alg, RobotAction{robot, decision});
      if (opts.recorder != nullptr) {
        opts.recorder->record_async_event(event, obs::EventKind::Look, robot,
                                          engine.config().robot(robot).color, &decision);
      }
      engine.activate(robot, decision);
    } else {
      if (opts.record_trace) {
        note = (before == Phase::Decided ? "Compute-end: robot " : "Move: robot ") +
               std::to_string(robot);
      }
      if (opts.recorder != nullptr) {
        opts.recorder->record_async_event(
            event, before == Phase::Decided ? obs::EventKind::ComputeEnd : obs::EventKind::Move,
            robot, engine.config().robot(robot).color, nullptr);
      }
      engine.activate(robot);
    }
    result.stats.instants += 1;
    // Only the activated robot can have changed position this event; the
    // full sweep before the loop covered everyone's starting node.
    result.visited[static_cast<std::size_t>(topo.index(engine.config().robot(robot).pos))] =
        true;
    if (opts.record_trace) result.trace.push(engine.config(), note);
    if (opts.recorder != nullptr) opts.recorder->record_configuration(event + 1, engine.config());
  }
  result.failure = "event budget exhausted (" + std::to_string(opts.max_steps) + " events)";
  copy_counters(result);
  return result;
}

const Configuration& final_configuration(const RunResult& result) {
  if (result.trace.empty()) throw std::logic_error("final_configuration: trace not recorded");
  return result.trace[result.trace.size() - 1].config;
}

}  // namespace lumi
