// ASYNC execution engine.
//
// Each robot cycles through three scheduler-visible events:
//   Look        — snapshot the environment and fix the decision,
//   Compute-end — the decided color change becomes visible to others,
//   Move        — the decided movement is applied.
// Arbitrary time may pass between events of one robot while other robots'
// events interleave, so decisions execute against stale views and other
// robots can observe "recolored but not yet moved" intermediates — the
// situations the paper's ASYNC correctness arguments revolve around.
//
// A robot whose Look finds no enabled rule completes a vacuous cycle; the
// engine collapses such cycles into no-ops (they are unobservable).
#pragma once

#include <memory>
#include <memory_resource>
#include <optional>
#include <vector>

#include "src/core/incremental.hpp"
#include "src/core/matching.hpp"

namespace lumi {

enum class Phase : std::uint8_t {
  Idle,     ///< between cycles; next event is a Look
  Decided,  ///< Look done, decision latched; next event publishes the color
  Colored,  ///< color applied; next event performs the movement
};

class AsyncEngine {
 public:
  /// With `incremental` (the default) enablement queries are answered from
  /// the dirty tracker, re-matching only robots whose view covers a cell the
  /// last event changed — Look events change nothing, so two of every three
  /// events refresh for free.  Off = recompute-per-query reference path;
  /// observable behavior is identical either way.  `warm` (optional, used
  /// with `incremental`) is a per-cell cache of initial verdict tables: a
  /// published table matching the initial configuration skips the tracker's
  /// initial full compute; otherwise this engine publishes its own.
  /// `precompiled` (optional) is a batch-hoisted compilation of `alg`;
  /// `mem` (optional) backs the tracker's internal tables; `warm_adopt`
  /// (optional) adopts a table directly, bypassing the slot — all pure perf,
  /// see RunOptions.
  explicit AsyncEngine(const Algorithm& alg, Configuration initial, bool incremental = true,
                       WarmStartSlot* warm = nullptr,
                       std::shared_ptr<const CompiledAlgorithm> precompiled = nullptr,
                       std::pmr::memory_resource* mem = nullptr,
                       const TrackerWarmStart* warm_adopt = nullptr);

  // The tracker holds a pointer into config_, so the engine must not move.
  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;

  const Algorithm& algorithm() const { return *alg_; }
  const Configuration& config() const { return config_; }
  Phase phase(int robot) const { return phases_.at(static_cast<std::size_t>(robot)); }
  const Action& pending(int robot) const;

  /// Robots whose activation would change observable state: robots mid-cycle
  /// plus Idle robots that are currently enabled.
  std::vector<int> effective_robots() const;

  /// Choices available to an Idle robot's Look (distinct enabled behaviors).
  std::vector<Action> look_choices(int robot) const;

  /// Activates one event of `robot`.  For an Idle robot, `chosen` must match
  /// one of look_choices(robot) behaviorally (defaults to the first), and a
  /// non-negative `rule_index`/`sym` witness must consistently derive that
  /// behavior.  For robots mid-cycle `chosen` must be empty.
  void activate(int robot, std::optional<Action> chosen = std::nullopt);

  /// Terminal: every robot Idle and none enabled — the execution is maximal.
  bool terminal() const;

  /// Dirty-tracker reuse/recompute totals; zero on the recompute path.
  DirtyTracker::Counters match_counters() const {
    return tracker_ ? tracker_->counters() : DirtyTracker::Counters{};
  }

 private:
  const Algorithm* alg_;
  std::shared_ptr<const CompiledAlgorithm> compiled_;
  Configuration config_;
  std::vector<Phase> phases_;
  std::vector<Action> pending_;
  std::unique_ptr<DirtyTracker> tracker_;  ///< null when incremental is off
};

}  // namespace lumi
