#include "src/engine/sync_engine.hpp"

#include <array>
#include <stdexcept>

namespace lumi {

void apply_sync_step(Configuration& config, std::span<const RobotAction> actions) {
  // Compute all targets first so each movement is relative to the
  // configuration at the beginning of the instant.
  struct Update {
    int robot;
    Color color;
    Vec from;
    bool moved;
    Vec to;
  };
  // Selections are at most the robot count — single digits for every
  // Table-1 algorithm — so the per-instant staging buffer lives on the
  // stack in the common case instead of costing a heap round-trip.
  constexpr std::size_t kInline = 16;
  std::array<Update, kInline> small;
  std::vector<Update> big;
  Update* updates = small.data();
  if (actions.size() > kInline) {
    big.resize(actions.size());
    updates = big.data();
  }
  std::size_t count = 0;
  for (const RobotAction& ra : actions) {
    const Robot& r = config.robot(ra.robot);
    Update u{ra.robot, ra.action.new_color, r.pos, false, r.pos};
    if (ra.action.move.has_value()) {
      // Topology-mediated step: on wrapped axes the seam edge is a real
      // edge, on bounded ones stepping out (or into a wall) is the error
      // the guards are supposed to prevent.
      const std::optional<Vec> to = config.topology().step(r.pos, *ra.action.move);
      if (!to) throw std::logic_error("apply_sync_step: robot would leave the grid");
      u.moved = true;
      u.to = *to;
    }
    updates[count++] = u;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const Update& u = updates[i];
    config.set_color(u.robot, u.color);
    // u.to came out of Topology::step above, so the edge is already proven;
    // the stepped fast path skips move_robot's re-validation.
    if (u.moved) config.move_robot_stepped(u.robot, u.to);
  }
}

std::vector<std::vector<Action>> all_enabled_actions(const CompiledAlgorithm& alg,
                                                     const Configuration& config) {
  std::vector<std::vector<Action>> out(static_cast<std::size_t>(config.num_robots()));
  Snapshot snap;  // one inline buffer shared across the whole robot loop
  for (int i = 0; i < config.num_robots(); ++i) {
    take_snapshot_into(config, i, alg.phi(), snap);
    enabled_actions_into(alg, snap, out[static_cast<std::size_t>(i)]);
  }
  return out;
}

std::vector<std::vector<Action>> all_enabled_actions(const Algorithm& alg,
                                                     const Configuration& config) {
  return all_enabled_actions(*CompiledAlgorithm::get(alg), config);
}

}  // namespace lumi
