// Synchronous step semantics shared by FSYNC and SSYNC: all activated robots
// execute a full Look-Compute-Move cycle atomically and concurrently within
// one instant.
#pragma once

#include <span>
#include <vector>

#include "src/core/matching.hpp"

namespace lumi {

struct RobotAction {
  int robot = -1;
  Action action;
};

/// Applies one synchronous instant: every listed robot simultaneously takes
/// its color and (optional) movement.  Movements are computed from the
/// configuration at the start of the instant, so robots may swap, follow one
/// another, or land on a common node.  Throws std::logic_error on an attempt
/// to move outside the grid (guards are supposed to prevent this).
void apply_sync_step(Configuration& config, std::span<const RobotAction> actions);

/// Distinct enabled behaviors for every robot (empty vector = disabled).
std::vector<std::vector<Action>> all_enabled_actions(const CompiledAlgorithm& alg,
                                                     const Configuration& config);
std::vector<std::vector<Action>> all_enabled_actions(const Algorithm& alg,
                                                     const Configuration& config);

}  // namespace lumi
