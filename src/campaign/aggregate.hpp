// Mergeable result accumulators for campaign runs.
//
// Every statistic here is order-independent (exact integer sums, min/max,
// log2 histograms), so merging per-worker accumulators at join yields
// bit-identical campaign summaries regardless of thread count or stealing
// order — the property tests/test_campaign.cpp pins down.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "src/engine/runner.hpp"

namespace lumi::campaign {

/// Summary of a stream of non-negative long samples: count, exact sum, exact
/// sum of squares, min/max and a log2 histogram (bucket b counts samples
/// whose bit width is b, i.e. values in [2^(b-1), 2^b)); bucket 0 counts
/// zeros.
struct LongStat {
  long count = 0;
  long long sum = 0;
  long long sum_squares = 0;  ///< exact; overflows past ~9e6 samples of 1e6
  long min = 0;
  long max = 0;
  std::array<long, 32> histogram{};

  void add(long sample);
  void merge(const LongStat& other);
  double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
  /// Population variance, from the exact sums (order-independent).
  double variance() const;
  /// Half-width of the normal-approximation 95% confidence interval on the
  /// mean: 1.96 * sqrt(s^2 / n) with the unbiased sample variance s^2.
  /// Computed from the exact merged sums, so any disjoint sharding of the
  /// stream reports the identical interval (exact-mergeable, like every
  /// other statistic here); 0 for n <= 1, where no spread is estimable.
  double mean_ci95_halfwidth() const;
  /// Upper-bound estimate of the q-quantile (q in [0,1]) from the log2
  /// histogram: the top of the bucket holding the ceil(q*count)-th smallest
  /// sample, clamped to [min, max].  Exact for 0/1-valued streams; within a
  /// factor of 2 otherwise.  Order-independent, so merged shards agree.
  long percentile(double q) const;

  std::string to_string() const;

  friend bool operator==(const LongStat&, const LongStat&) = default;
};

/// Accumulator for one scenario cell (algorithm x grid x scheduler); each
/// added run contributes its outcome flags and statistic streams.
struct CellAccumulator {
  long runs = 0;
  long terminated = 0;
  long explored_all = 0;
  long failures = 0;  ///< runs with a nonempty failure string
  LongStat instants;
  LongStat activations;
  LongStat moves;
  LongStat color_changes;
  LongStat visited;  ///< nodes covered per run

  void add(const RunResult& result);
  void merge(const CellAccumulator& other);
  double termination_rate() const { return runs == 0 ? 0.0 : static_cast<double>(terminated) / runs; }
  double exploration_rate() const {
    return runs == 0 ? 0.0 : static_cast<double>(explored_all) / runs;
  }

  friend bool operator==(const CellAccumulator&, const CellAccumulator&) = default;
};

/// Per-worker campaign accumulator: a dense cell vector indexed by the job's
/// cell id, so the hot path is a plain array write with no locks; workers'
/// accumulators are merged once at pool join.
class CampaignAccumulator {
 public:
  explicit CampaignAccumulator(std::size_t num_cells) : cells_(num_cells) {}

  void add(std::size_t cell, const RunResult& result) { cells_.at(cell).add(result); }
  void merge(const CampaignAccumulator& other);

  const std::vector<CellAccumulator>& cells() const { return cells_; }

 private:
  std::vector<CellAccumulator> cells_;
};

}  // namespace lumi::campaign
