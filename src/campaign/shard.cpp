#include "src/campaign/shard.hpp"

#include <cstdlib>
#include <stdexcept>

namespace lumi::campaign {

std::optional<ShardSpec> shard_from_string(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) return std::nullopt;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (i != slash && (text[i] < '0' || text[i] > '9')) return std::nullopt;
  }
  ShardSpec spec;
  spec.index = static_cast<unsigned>(std::atol(text.substr(0, slash).c_str()));
  spec.count = static_cast<unsigned>(std::atol(text.substr(slash + 1).c_str()));
  if (spec.count == 0 || spec.index >= spec.count) return std::nullopt;
  return spec;
}

std::string to_string(const ShardSpec& spec) {
  return std::to_string(spec.index) + "/" + std::to_string(spec.count);
}

Expansion shard(const Expansion& full, const ShardSpec& spec) {
  if (spec.count == 0) throw std::invalid_argument("shard: count must be positive");
  if (spec.index >= spec.count) throw std::invalid_argument("shard: index out of range");
  Expansion out;
  out.cells = full.cells;
  out.options = full.options;
  for (std::size_t j = spec.index; j < full.jobs.size(); j += spec.count) {
    out.jobs.push_back(full.jobs[j]);
  }
  return out;
}

}  // namespace lumi::campaign
