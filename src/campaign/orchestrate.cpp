#include "src/campaign/orchestrate.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/campaign/thread_pool.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace_event.hpp"

namespace lumi::campaign {

namespace {

bool seed_done(const CheckpointCell& cell, unsigned seed) {
  return std::binary_search(cell.seeds_done.begin(), cell.seeds_done.end(), seed);
}

void record_seed(CheckpointCell& cell, unsigned seed) {
  cell.seeds_done.insert(
      std::lower_bound(cell.seeds_done.begin(), cell.seeds_done.end(), seed), seed);
}

/// Snapshots and atomically writes the checkpoint; serialization happens
/// outside the state lock so workers keep running during I/O.  `version` is
/// bumped (under the state lock) on every result added; a failed periodic
/// write leaves the flushed version behind, so the next tick retries.
class CheckpointFlusher {
 public:
  CheckpointFlusher(const std::string& path, double interval_seconds, std::mutex& state_mu,
                    const Checkpoint& state, const std::uint64_t& version)
      : path_(path), state_mu_(state_mu), state_(state), version_(version) {
    if (path_.empty()) return;
    thread_ = std::thread([this, interval_seconds] {
      std::unique_lock lock(mu_);
      const auto interval = std::chrono::duration<double>(std::max(interval_seconds, 0.01));
      while (!stop_) {
        cv_.wait_for(lock, interval);
        if (stop_) return;
        flush();
      }
    });
  }

  /// Stops the periodic thread and writes the final state; false when that
  /// write fails (the checkpoint on disk is then stale — the caller must not
  /// pretend the campaign is safely persisted).  True when no persistence
  /// was configured.  Idempotent; also run by the destructor for exception
  /// paths.
  bool finish() {
    if (!thread_.joinable()) return path_.empty() || flush();
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    return flush();
  }

  ~CheckpointFlusher() { finish(); }

 private:
  bool flush() {
    Checkpoint snapshot;
    std::uint64_t version;
    {
      std::lock_guard lock(state_mu_);
      version = version_;
      if (wrote_once_ && version == flushed_version_) return true;
      snapshot = state_;
    }
    // Flush count and latency are telemetry about the write, taken entirely
    // outside the serialized state — they can never leak into the checkpoint
    // bytes (obs-isolation bans obs:: from checkpoint.* itself).
    static obs::Counter& obs_flushes =
        obs::Registry::global().counter("orchestrate.checkpoint_flushes");
    static obs::Histogram& obs_flush_ms = obs::Registry::global().histogram(
        "orchestrate.flush_ms", {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
    obs::Span span("checkpoint.flush", "orchestrate");
    span.set_arg("version", static_cast<long long>(version));
    // Telemetry-only latency read.  lumi-lint: allow(wall-clock)
    const auto t0 = std::chrono::steady_clock::now();
    if (!checkpoint_write(path_, snapshot)) return false;
    // lumi-lint: allow(wall-clock) — telemetry latency, as above
    const auto dur = std::chrono::steady_clock::now() - t0;
    obs_flushes.add(1);
    obs_flush_ms.record(std::chrono::duration_cast<std::chrono::milliseconds>(dur).count());
    flushed_version_ = version;
    wrote_once_ = true;
    return true;
  }

  const std::string path_;
  std::mutex& state_mu_;
  const Checkpoint& state_;
  const std::uint64_t& version_;

  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  // Touched only by the flusher thread, or after it is joined.
  bool wrote_once_ = false;
  std::uint64_t flushed_version_ = 0;
};

/// How many expansion jobs target each cell (= the cell's base seed count).
std::vector<std::size_t> base_jobs_per_cell(const Expansion& expansion) {
  std::vector<std::size_t> out(expansion.cells.size(), 0);
  for (const Job& job : expansion.jobs) ++out[job.cell];
  return out;
}

std::vector<Job> escalation_round(const Checkpoint& ck, const std::vector<std::size_t>& base,
                                  const AdaptivePolicy& policy) {
  std::vector<Job> out;
  for (std::size_t i = 0; i < ck.cells.size(); ++i) {
    const CheckpointCell& c = ck.cells[i];
    if (sched_is_deterministic(c.cell.sched)) continue;
    // A cell with no local base jobs belongs to another shard: its stats here
    // are partial (or empty) and must not drive escalation.
    if (base[i] == 0) continue;
    if (c.seeds_done.size() < base[i]) continue;  // base pass incomplete here
    const std::size_t extra_used = c.seeds_done.size() - base[i];
    if (extra_used >= policy.max_extra_seeds) continue;
    const bool unhealthy =
        c.acc.termination_rate() < policy.min_termination_rate ||
        (policy.instants_variance_threshold >= 0.0 &&
         c.acc.instants.variance() > policy.instants_variance_threshold);
    if (!unhealthy) continue;
    const std::size_t budget =
        std::min<std::size_t>(policy.seeds_per_round, policy.max_extra_seeds - extra_used);
    unsigned next = c.seeds_done.empty() ? 1 : c.seeds_done.back() + 1;
    for (std::size_t k = 0; k < budget; ++k) out.push_back({i, next++});
  }
  return out;
}

}  // namespace

OrchestratorReport run_orchestrated(const Expansion& expansion,
                                    const OrchestratorOptions& options) {
  // wall_seconds is an execution-environment diagnostic: it never reaches
  // checkpoints or the merged JSON report.  lumi-lint: allow(wall-clock)
  const auto start = std::chrono::steady_clock::now();

  // Telemetry handles (result-inert; docs/OBSERVABILITY.md has the catalog).
  obs::Registry& obs_reg = obs::Registry::global();
  obs::Counter& obs_resume_skips = obs_reg.counter("orchestrate.resume_skips");
  obs::Counter& obs_seeds_escalated = obs_reg.counter("orchestrate.seeds_escalated");
  obs::Counter& obs_cells_done = obs_reg.counter("campaign.cells_done");
  // Base (pre-escalation) job count per cell: drives escalation eligibility
  // and the cells_done completion tick.
  const std::vector<std::size_t> base = base_jobs_per_cell(expansion);

  Checkpoint ck = make_checkpoint(expansion);
  if (!options.checkpoint_path.empty()) {
    if (std::optional<Checkpoint> loaded = checkpoint_load(options.checkpoint_path)) {
      if (loaded->fingerprint != ck.fingerprint) {
        throw std::runtime_error("run_orchestrated: checkpoint '" + options.checkpoint_path +
                                 "' belongs to a different matrix (fingerprint mismatch)");
      }
      if (loaded->cells.size() != ck.cells.size()) {
        throw std::runtime_error("run_orchestrated: checkpoint cell count mismatch");
      }
      for (std::size_t i = 0; i < ck.cells.size(); ++i) {
        if (!(loaded->cells[i].cell == ck.cells[i].cell)) {
          throw std::runtime_error("run_orchestrated: checkpoint cell list mismatch");
        }
      }
      ck = std::move(*loaded);
      // Cells this resume starts with already complete (their base pass done
      // in an earlier invocation) count toward the progress meter's total.
      for (std::size_t i = 0; i < ck.cells.size(); ++i) {
        if (base[i] > 0 && ck.cells[i].seeds_done.size() >= base[i]) obs_cells_done.add(1);
      }
    }
  }

  OrchestratorReport report;
  std::mutex state_mu;
  std::uint64_t version = 0;

  {
    ThreadPool pool(options.threads);
    report.summary.threads = pool.size();
    CheckpointFlusher flusher(options.checkpoint_path, options.flush_seconds, state_mu, ck,
                              version);
    // Per-cell warm-start slots shared by base and escalation jobs: only the
    // first run of a cell pays the tracker's initial full compute.  Pure
    // perf — checkpoints and summaries are identical either way, so resumed
    // and sharded legs merge byte-identically regardless of which run warmed
    // which cell.
    std::vector<WarmStartSlot> warm(expansion.cells.size());
    // One run-scratch arena per worker, rewound between batch items.
    std::vector<std::unique_ptr<Arena>> arenas;
    arenas.reserve(pool.size());
    for (unsigned w = 0; w < pool.size(); ++w) arenas.push_back(std::make_unique<Arena>());
    // Anomaly-capture claim counter (see run_campaign): telemetry-side only.
    // lumi-lint: allow(relaxed-atomic)
    std::atomic<std::size_t> capture_claims{0};

    // Submits every job not already covered by the checkpoint, honoring the
    // per-invocation cap.  Consecutive same-cell jobs are grouped into one
    // pool task of at most `options.batch` items (0 = automatic); each item
    // is still recorded in the checkpoint individually, so the cap, the
    // flusher and kill/resume see single jobs exactly as before.  Returns
    // false once the cap cut submission short.
    const auto run_jobs = [&](const std::vector<Job>& jobs, bool base_pass) {
      bool capped = false;
      std::size_t i = 0;
      while (i < jobs.size() && !capped) {
        const std::size_t cell_index = jobs[i].cell;
        const std::size_t cap = options.batch != 0
                                    ? options.batch
                                    : auto_batch_size(expansion.cells[cell_index]);
        std::vector<unsigned> seeds;
        while (i < jobs.size() && jobs[i].cell == cell_index && seeds.size() < cap) {
          const Job job = jobs[i];
          {
            std::lock_guard lock(state_mu);
            if (seed_done(ck.cells[job.cell], job.seed)) {
              if (base_pass) {
                ++report.jobs_skipped;
                obs_resume_skips.add(1);
              }
              ++i;
              continue;
            }
          }
          if (options.max_jobs != 0 && report.jobs_executed >= options.max_jobs) {
            capped = true;
            break;
          }
          ++report.jobs_executed;
          if (!base_pass) {
            ++report.escalation_jobs;
            obs_seeds_escalated.add(1);
          }
          seeds.push_back(job.seed);
          ++i;
        }
        if (seeds.empty()) continue;
        pool.submit([&expansion, &ck, &state_mu, &version, &warm, &arenas, &pool, &base,
                     &obs_cells_done, &options, &capture_claims, cell_index,
                     seeds = std::move(seeds)] {
          const std::size_t w = static_cast<std::size_t>(pool.worker_index());
          run_cell_batch(expansion.cells[cell_index], seeds, expansion.options,
                         &warm[cell_index], arenas[w].get(),
                         [&](std::size_t item, const RunResult& result) {
                           {
                             std::lock_guard lock(state_mu);
                             CheckpointCell& cell = ck.cells[cell_index];
                             cell.acc.add(result);
                             record_seed(cell, seeds[item]);
                             ++version;
                             // Completion tick for the progress meter: fires
                             // exactly once, when the base pass crosses done.
                             if (cell.seeds_done.size() == base[cell_index]) {
                               obs_cells_done.add(1);
                             }
                           }
                           // Anomaly capture runs outside the state lock —
                           // it re-executes the job, which must not stall
                           // the checkpoint funnel.  Result-inert.
                           if (!options.record_anomalies.dir.empty() &&
                               !result.failure.empty() &&
                               // lumi-lint: allow(relaxed-atomic)
                               capture_claims.fetch_add(1, std::memory_order_relaxed) <
                                   options.record_anomalies.limit) {
                             capture_anomaly(expansion.cells[cell_index], seeds[item],
                                             expansion.options, options.record_anomalies);
                           }
                         });
        });
      }
      return !capped;
    };

    report.complete = run_jobs(expansion.jobs, /*base_pass=*/true);
    pool.wait_idle();

    if (report.complete && options.adaptive.enabled) {
      for (unsigned round = 0; round < options.adaptive.max_rounds; ++round) {
        std::vector<Job> jobs;
        {
          std::lock_guard lock(state_mu);
          jobs = escalation_round(ck, base, options.adaptive);
        }
        if (jobs.empty()) break;
        ++report.escalation_rounds;
        report.complete = run_jobs(jobs, /*base_pass=*/false);
        pool.wait_idle();
        if (!report.complete) break;
      }
    }
    if (!flusher.finish()) {
      throw std::runtime_error("run_orchestrated: failed to write checkpoint '" +
                               options.checkpoint_path + "' — progress is NOT persisted");
    }
  }

  const unsigned threads = report.summary.threads;
  report.summary = checkpoint_summary(ck);
  report.summary.threads = threads;
  report.summary.wall_seconds =  // diagnostic, as above
      // lumi-lint: allow(wall-clock)
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  // Same env-diagnostic promotion as run_campaign: metrics snapshot only,
  // never the JSON report or the checkpoint.
  obs_reg.gauge("campaign.wall_ms")
      .set(static_cast<long long>(report.summary.wall_seconds * 1000.0));
  obs_reg.gauge("campaign.threads").set(report.summary.threads);
  report.checkpoint = std::move(ck);
  return report;
}

}  // namespace lumi::campaign
