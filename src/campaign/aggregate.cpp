#include "src/campaign/aggregate.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace lumi::campaign {

void LongStat::add(long sample) {
  if (sample < 0) throw std::invalid_argument("LongStat::add: negative sample");
  if (count == 0) {
    min = max = sample;
  } else {
    min = std::min(min, sample);
    max = std::max(max, sample);
  }
  ++count;
  sum += sample;
  sum_squares += static_cast<long long>(sample) * sample;
  const int bucket = std::bit_width(static_cast<unsigned long>(sample));
  ++histogram[std::min<std::size_t>(bucket, histogram.size() - 1)];
}

void LongStat::merge(const LongStat& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  sum_squares += other.sum_squares;
  for (std::size_t b = 0; b < histogram.size(); ++b) histogram[b] += other.histogram[b];
}

double LongStat::variance() const {
  // A single-sample cell (every deterministic-scheduler cell has n = 1) has
  // zero spread by definition; the sum-of-squares formula would answer with
  // double-rounding noise — possibly negative — for large samples.
  if (count <= 1) return 0.0;
  const double m = mean();
  // Clamp: catastrophic cancellation can push the exact-sums formula a few
  // ulps below zero, and a negative variance breaks sqrt/threshold callers.
  return std::max(0.0, static_cast<double>(sum_squares) / count - m * m);
}

double LongStat::mean_ci95_halfwidth() const {
  if (count <= 1) return 0.0;
  const double n = static_cast<double>(count);
  // Unbiased sample variance from the exact sums; the sum*sum product is
  // formed in double (it can exceed 64 bits) and clamped against the few
  // ulps of cancellation noise large samples can produce.
  const double centered =
      static_cast<double>(sum_squares) - static_cast<double>(sum) * static_cast<double>(sum) / n;
  const double sample_variance = std::max(0.0, centered / (n - 1.0));
  return 1.96 * std::sqrt(sample_variance / n);
}

long LongStat::percentile(double q) const {
  if (count == 0) return 0;
  // NaN-safe clamp (std::clamp passes NaN through, and casting a NaN rank to
  // long is UB): any non-finite or out-of-range q degrades to the nearest
  // bound.
  if (!(q > 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the wanted sample among the sorted stream, 1-based.
  const long rank = std::max<long>(1, static_cast<long>(std::ceil(q * count)));
  long seen = 0;
  for (std::size_t b = 0; b < histogram.size(); ++b) {
    seen += histogram[b];
    if (seen >= rank) {
      // Bucket b holds values in [2^(b-1), 2^b); report its inclusive top.
      const long top = b == 0 ? 0 : static_cast<long>((1UL << b) - 1);
      return std::clamp(top, min, max);
    }
  }
  return max;
}

std::string LongStat::to_string() const {
  return "n=" + std::to_string(count) + " mean=" + std::to_string(mean()) +
         " min=" + std::to_string(min) + " max=" + std::to_string(max);
}

void CellAccumulator::add(const RunResult& result) {
  ++runs;
  terminated += result.terminated ? 1 : 0;
  explored_all += result.explored_all ? 1 : 0;
  failures += result.failure.empty() ? 0 : 1;
  instants.add(result.stats.instants);
  activations.add(result.stats.activations);
  moves.add(result.stats.moves);
  color_changes.add(result.stats.color_changes);
  visited.add(result.visited_count());
}

void CellAccumulator::merge(const CellAccumulator& other) {
  runs += other.runs;
  terminated += other.terminated;
  explored_all += other.explored_all;
  failures += other.failures;
  instants.merge(other.instants);
  activations.merge(other.activations);
  moves.merge(other.moves);
  color_changes.merge(other.color_changes);
  visited.merge(other.visited);
}

void CampaignAccumulator::merge(const CampaignAccumulator& other) {
  if (other.cells_.size() != cells_.size()) {
    throw std::invalid_argument("CampaignAccumulator::merge: cell count mismatch");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i].merge(other.cells_[i]);
}

}  // namespace lumi::campaign
