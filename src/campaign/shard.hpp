// Deterministic job sharding: `shard(expansion, {i, N})` keeps every cell of
// the expansion (so cell indices — and therefore checkpoints — line up across
// shards) but only the jobs whose expansion index is congruent to i mod N.
// The N shards are pairwise disjoint and their union is exactly the full job
// list, so merging shard checkpoints reproduces the single-process campaign
// bit for bit.
#pragma once

#include <optional>
#include <string>

#include "src/campaign/campaign.hpp"

namespace lumi::campaign {

/// Shard i of N (0-based index, index < count).
struct ShardSpec {
  unsigned index = 0;
  unsigned count = 1;

  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

/// Parses the CLI spelling "i/N" (e.g. "2/7"); std::nullopt on malformed
/// input or an out-of-range index.
std::optional<ShardSpec> shard_from_string(const std::string& text);

std::string to_string(const ShardSpec& spec);

/// The slice of `full` owned by `spec`: identical cells and options, jobs
/// taken round-robin by expansion index.  Throws std::invalid_argument when
/// spec.count == 0 or spec.index >= spec.count.
Expansion shard(const Expansion& full, const ShardSpec& spec);

}  // namespace lumi::campaign
