#include "src/campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/algorithms/registry.hpp"
#include "src/analysis/rule_analysis.hpp"
#include "src/campaign/thread_pool.hpp"
#include "src/dsl/dsl.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/recorder.hpp"
#include "src/obs/trace_event.hpp"
#include "src/sched/async_schedulers.hpp"
#include "src/sched/sync_schedulers.hpp"
#include "src/topo/topology.hpp"

namespace lumi::campaign {

std::string to_string(SchedKind kind) {
  switch (kind) {
    case SchedKind::Fsync: return "fsync";
    case SchedKind::SsyncRandom: return "ssync-random";
    case SchedKind::SsyncRoundRobin: return "ssync-rr";
    case SchedKind::AsyncRandom: return "async-random";
    case SchedKind::AsyncCentralized: return "async-central";
    case SchedKind::AsyncStaleStress: return "async-stress";
  }
  throw std::invalid_argument("to_string: bad SchedKind");
}

std::optional<SchedKind> sched_from_name(const std::string& name) {
  for (SchedKind kind : kAllSchedKinds) {
    if (to_string(kind) == name) return kind;
  }
  return std::nullopt;
}

bool sched_is_deterministic(SchedKind kind) {
  switch (kind) {
    case SchedKind::Fsync:
    case SchedKind::SsyncRoundRobin:
    case SchedKind::AsyncCentralized: return true;
    case SchedKind::SsyncRandom:
    case SchedKind::AsyncRandom:
    case SchedKind::AsyncStaleStress: return false;
  }
  throw std::invalid_argument("sched_is_deterministic: bad SchedKind");
}

Synchrony sched_synchrony(SchedKind kind) {
  switch (kind) {
    case SchedKind::Fsync: return Synchrony::Fsync;
    case SchedKind::SsyncRandom:
    case SchedKind::SsyncRoundRobin: return Synchrony::Ssync;
    case SchedKind::AsyncRandom:
    case SchedKind::AsyncCentralized:
    case SchedKind::AsyncStaleStress: return Synchrony::Async;
  }
  throw std::invalid_argument("sched_synchrony: bad SchedKind");
}

bool compatible(Synchrony model, SchedKind kind) {
  // Synchrony is declared in weakness order Fsync < Ssync < Async; an
  // algorithm tolerating `model` also tolerates every weaker scheduler.
  return static_cast<int>(sched_synchrony(kind)) <= static_cast<int>(model);
}

std::vector<int> IntRange::values() const {
  std::vector<int> out;
  if (step <= 0) {
    throw std::invalid_argument("IntRange: step must be positive, got " + std::to_string(step));
  }
  // The loop variable is widened to 64 bits so `v += step` cannot overflow
  // (and so a huge step can never spin or overshoot past `to`); `to` itself
  // is always emitted, aligned with `step` or not.
  for (std::int64_t v = from; v < to; v += step) out.push_back(static_cast<int>(v));
  if (from <= to) out.push_back(to);
  return out;
}

std::optional<IntRange> range_from_string(const std::string& text) {
  // Strict base-10 integer: no sign-only/empty/trailing-garbage inputs.
  // 64-bit accumulator: the overflow check must hold even where long is
  // 32 bits (LLP64).
  const auto parse_int = [](const std::string& s, int& out) {
    if (s.empty()) return false;
    std::int64_t v = 0;
    std::size_t i = s[0] == '-' ? 1 : 0;
    if (i == s.size()) return false;
    for (; i < s.size(); ++i) {
      if (s[i] < '0' || s[i] > '9') return false;
      v = v * 10 + (s[i] - '0');
      if (v > std::numeric_limits<int>::max()) return false;
    }
    out = static_cast<int>(s[0] == '-' ? -v : v);
    return true;
  };
  IntRange out{0, 0, 1};
  const std::size_t dots = text.find("..");
  if (dots == std::string::npos) {
    if (!parse_int(text, out.from) || out.from <= 0) return std::nullopt;
    out.to = out.from;
    return out;
  }
  std::string rest = text.substr(dots + 2);
  const std::size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    if (!parse_int(rest.substr(colon + 1), out.step) || out.step <= 0) return std::nullopt;
    rest = rest.substr(0, colon);
  }
  if (!parse_int(text.substr(0, dots), out.from) || !parse_int(rest, out.to)) {
    return std::nullopt;
  }
  if (out.from <= 0) return std::nullopt;
  return out;
}

std::string to_string(const Cell& cell) {
  return cell.section + " " + std::to_string(cell.rows) + "x" + std::to_string(cell.cols) +
         (cell.topo == "grid" ? "" : "/" + cell.topo) + " " + to_string(cell.sched);
}

Expansion expand(const Matrix& matrix) {
  Expansion out;
  out.options = matrix.options;
  const std::vector<int> rows = matrix.rows.values();
  const std::vector<int> cols = matrix.cols.values();
  for (const std::string& section : matrix.sections) {
    const algorithms::TableEntry& e = algorithms::entry(section);  // throws if unknown
    const Algorithm alg = e.make();
    // Static gate before any job runs: an ill-formed rule table (determinism
    // conflict, wall hazard, dead rule, ...) would silently skew every sweep
    // cell built from it.  The throw carries the analyzer's findings text.
    analysis::require_well_formed(alg);
    for (int r : rows) {
      for (int c : cols) {
        if (r < alg.min_rows || c < alg.min_cols) {
          if (matrix.skip_incompatible) continue;
          throw std::invalid_argument("expand: grid " + std::to_string(r) + "x" +
                                      std::to_string(c) + " below minimum of " + section);
        }
        for (const std::string& spec : matrix.topologies) {
          // Build once at expansion: canonicalizes the spec (e.g. "holes" ->
          // "holes:2x2@3x3" at these dimensions), rejects families that
          // cannot exist here, and checks the algorithm's initial placement
          // survives the wall mask.
          std::string canonical;
          bool placement_ok = true;
          try {
            const Topology topo = make_topology(spec, r, c);
            canonical = topo.spec();
            for (const auto& [pos, color] : alg.initial_robots) {
              (void)color;
              placement_ok = placement_ok && topo.contains(pos);
            }
          } catch (const std::exception& err) {
            if (matrix.skip_incompatible) continue;
            throw std::invalid_argument("expand: topology '" + spec + "' at " +
                                        std::to_string(r) + "x" + std::to_string(c) + ": " +
                                        err.what());
          }
          if (!placement_ok) {
            if (matrix.skip_incompatible) continue;
            throw std::invalid_argument("expand: topology '" + spec +
                                        "' walls the initial placement of " + section);
          }
          for (SchedKind kind : matrix.schedulers) {
            if (!compatible(alg.model, kind)) {
              if (matrix.skip_incompatible) continue;
              throw std::invalid_argument("expand: scheduler " + to_string(kind) +
                                          " incompatible with " + section);
            }
            const std::size_t cell = out.cells.size();
            out.cells.push_back({section, r, c, kind, canonical});
            if (sched_is_deterministic(kind)) {
              out.jobs.push_back({cell, 0});
            } else {
              for (unsigned seed : matrix.seeds) out.jobs.push_back({cell, seed});
            }
          }
        }
      }
    }
  }
  return out;
}

/// The per-item tail of a job once the expensive setup — registry make(),
/// topology parse, compile-cache lookup — has been done (per job in
/// run_cell, once per batch in run_cell_batch).  Scheduler construction is
/// trivial and stays per item so every seed gets a fresh one.  Public: the
/// doctor replays recordings through this same funnel.
RunResult run_with_sched(const Algorithm& alg, const Topology& topo, SchedKind kind,
                         unsigned seed, const RunOptions& opts) {
  switch (kind) {
    case SchedKind::Fsync: {
      FsyncScheduler s(seed);
      return run_sync(alg, topo, s, opts);
    }
    case SchedKind::SsyncRandom: {
      SsyncRandomScheduler s(seed);
      return run_sync(alg, topo, s, opts);
    }
    case SchedKind::SsyncRoundRobin: {
      SsyncRoundRobinScheduler s;
      return run_sync(alg, topo, s, opts);
    }
    case SchedKind::AsyncRandom: {
      AsyncRandomScheduler s(seed);
      return run_async(alg, topo, s, opts);
    }
    case SchedKind::AsyncCentralized: {
      AsyncCentralizedScheduler s;
      return run_async(alg, topo, s, opts);
    }
    case SchedKind::AsyncStaleStress: {
      AsyncStaleStressScheduler s(seed);
      return run_async(alg, topo, s, opts);
    }
  }
  throw std::invalid_argument("run_with_sched: bad SchedKind");
}

namespace {

RunResult failure_result(const std::exception& e) {
  RunResult r;
  r.failure = std::string("exception: ") + e.what();
  return r;
}

/// Filesystem-safe token for recording filenames ("obstacles:15:7" ->
/// "obstacles-15-7").
std::string sanitize_for_filename(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '-';
  }
  return out;
}

}  // namespace

bool capture_anomaly(const Cell& cell, unsigned seed, const RunOptions& base,
                     const AnomalyCapture& capture) {
  try {
    const Algorithm alg = algorithms::entry(cell.section).make();
    const Topology topo = make_topology(cell.topo, cell.rows, cell.cols);
    // A hash revisit only proves non-termination when the scheduler is a
    // pure function of the configuration: FSYNC's first-behavior adversary
    // is; round-robin and the async engines carry private state, so their
    // runs record without the cycle detector.
    obs::Recorder rec({.capacity = 4096, .detect_cycles = cell.sched == SchedKind::Fsync});
    rec.set_provenance({.section = cell.section,
                        .algorithm_text = dsl::serialize(alg),
                        .topo_spec = topo.spec(),
                        .rows = cell.rows,
                        .cols = cell.cols,
                        .scheduler = to_string(cell.sched),
                        .seed = seed,
                        .max_steps = base.max_steps,
                        .require_unique_actions = base.require_unique_actions});
    // Fresh options: the warm/arena/precompiled plumbing is pure perf and
    // tied to the worker that owned the original run; the result-bearing
    // knobs (budget, verifier) carry over so the re-run reproduces the
    // anomaly exactly.
    RunOptions opts;
    opts.max_steps = base.max_steps;
    opts.require_unique_actions = base.require_unique_actions;
    opts.recorder = &rec;
    const RunResult result = run_with_sched(alg, topo, cell.sched, seed, opts);
    const std::string name = "anomaly-" + sanitize_for_filename(cell.section) + "-" +
                             std::to_string(cell.rows) + "x" + std::to_string(cell.cols) + "-" +
                             sanitize_for_filename(cell.topo) + "-" + to_string(cell.sched) +
                             "-s" + std::to_string(seed) + ".lumirec";
    return obs::recording_write(capture.dir + "/" + name, obs::make_recording(rec, result));
  } catch (const std::exception&) {
    return false;  // capture must never kill the campaign it observes
  }
}

RunResult run_cell(const Cell& cell, unsigned seed, const RunOptions& options,
                   WarmStartSlot* warm) {
  const Algorithm alg = algorithms::entry(cell.section).make();
  const Topology topo = make_topology(cell.topo, cell.rows, cell.cols);
  RunOptions opts = options;
  opts.warm_start = warm;
  return run_with_sched(alg, topo, cell.sched, seed, opts);
}

RunResult run_cell_guarded(const Cell& cell, unsigned seed, const RunOptions& options,
                           WarmStartSlot* warm) {
  try {
    return run_cell(cell, seed, options, warm);
  } catch (const std::exception& e) {
    return failure_result(e);
  }
}

std::size_t auto_batch_size(const Cell& cell) {
  // ~1024 bounding-box nodes of sync work per task: a 4x4 grid batches 64
  // micro-runs, 16x16 batches 4, 32x32 runs singly.  Async runs take ~3-4
  // events per cycle at equal area, so they batch a quarter as deep.
  const long area = static_cast<long>(cell.rows) * static_cast<long>(cell.cols);
  const long weight = sched_synchrony(cell.sched) == Synchrony::Async ? 4 : 1;
  const long batch = 1024 / std::max<long>(1, area * weight);
  return static_cast<std::size_t>(std::clamp<long>(batch, 1, 64));
}

void run_cell_batch(const Cell& cell, std::span<const unsigned> seeds,
                    const RunOptions& options, WarmStartSlot* warm, Arena* arena,
                    const std::function<void(std::size_t, const RunResult&)>& sink) {
  // Telemetry handles, resolved once per process (cold, locked).  Recording
  // is a relaxed load + branch while the registry is disabled; the counters
  // observe the batch, they never feed results (obs-isolation).
  static obs::Histogram& obs_batch_items =
      obs::Registry::global().histogram("campaign.batch_items", {1, 2, 4, 8, 16, 32, 64});
  static obs::Counter& obs_jobs_done = obs::Registry::global().counter("campaign.jobs_done");
  static obs::Counter& obs_match_reused =
      obs::Registry::global().counter("campaign.match.reused");
  static obs::Counter& obs_match_recomputed =
      obs::Registry::global().counter("campaign.match.recomputed");
  static obs::Counter& obs_match_warm =
      obs::Registry::global().counter("campaign.match.warm_reused");
  static obs::Gauge& obs_arena_hw =
      obs::Registry::global().gauge("campaign.arena_high_water.max");
  obs_batch_items.record(static_cast<long long>(seeds.size()));
  obs::Span span("campaign.batch", "campaign");
  span.set_arg("items", static_cast<long long>(seeds.size()));

  std::optional<Algorithm> alg;
  std::optional<Topology> topo;
  std::optional<Configuration> initial;
  RunOptions opts = options;
  opts.warm_start = warm;
  try {
    alg.emplace(algorithms::entry(cell.section).make());
    topo.emplace(make_topology(cell.topo, cell.rows, cell.cols));
    opts.precompiled = CompiledAlgorithm::get(*alg);
    // Validation, placement canonicalization and the occupancy build happen
    // once here; each item starts from an arena-backed copy.
    initial.emplace(alg->initial_configuration(*topo));
    opts.initial = &*initial;
  } catch (const std::exception& e) {
    const RunResult r = failure_result(e);
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      obs_jobs_done.add(1);
      sink(i, r);
    }
    return;
  }
  // After the first item has published the cell's warm start, hold one
  // reference for the whole batch and hand items the raw pointer: the
  // slot's mutex and shared_ptr traffic drop out of the per-item loop.
  std::shared_ptr<const TrackerWarmStart> adopted;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (arena != nullptr) {
      // Everything the previous item bump-allocated is dead (its result was
      // consumed by sink, and results never point into the arena), so the
      // chunks rewind and this item reuses the warm memory.
      arena->reset();
      opts.arena = arena;
    }
    if (warm != nullptr && adopted == nullptr) {
      adopted = warm->get();
      opts.warm_adopt = adopted.get();
    }
    try {
      const RunResult& r = run_with_sched(*alg, *topo, cell.sched, seeds[i], opts);
      obs_match_reused.add(r.stats.match_reused);
      obs_match_recomputed.add(r.stats.match_recomputed);
      obs_match_warm.add(r.stats.match_warm_reused);
      obs_jobs_done.add(1);
      sink(i, r);
    } catch (const std::exception& e) {
      obs_jobs_done.add(1);
      sink(i, failure_result(e));
    }
  }
  if (arena != nullptr) obs_arena_hw.record_max(static_cast<long long>(arena->high_water()));
}

CampaignSummary run_campaign(const Expansion& expansion, unsigned threads, std::size_t batch,
                             const AnomalyCapture* capture) {
  // wall_seconds is an execution-environment diagnostic: it never reaches
  // checkpoints or the merged JSON report.  lumi-lint: allow(wall-clock)
  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(threads);

  // One accumulator per worker: the hot path writes thread-private state;
  // the merge at join is order-independent, so the summary is identical for
  // any worker count.
  std::vector<CampaignAccumulator> per_worker(pool.size(),
                                              CampaignAccumulator(expansion.cells.size()));
  // One run-scratch arena per worker: each batch item's configuration and
  // tracker tables are pointer bumps into it, rewound between items.
  std::vector<std::unique_ptr<Arena>> arenas;
  arenas.reserve(pool.size());
  for (unsigned w = 0; w < pool.size(); ++w) arenas.push_back(std::make_unique<Arena>());
  // One warm-start slot per cell: the first job of a cell publishes its
  // initial verdict table, the cell's other seeds skip the initial full
  // compute (pure perf — summaries are identical either way).
  std::vector<WarmStartSlot> warm(expansion.cells.size());
  // Telemetry-only countdown backing the campaign.cells_done counter for the
  // live progress meter; results never read it.
  static obs::Counter& obs_cells_done = obs::Registry::global().counter("campaign.cells_done");
  auto remaining = std::make_unique<std::atomic<long long>[]>(expansion.cells.size());
  for (std::size_t c = 0; c < expansion.cells.size(); ++c)
    remaining[c].store(0, std::memory_order_relaxed);  // lumi-lint: allow(relaxed-atomic)
  for (const Job& job : expansion.jobs)
    // lumi-lint: allow(relaxed-atomic) — telemetry countdown, pre-pool setup
    remaining[job.cell].fetch_add(1, std::memory_order_relaxed);
  // Anomaly-capture claim counter: workers race fetch_add for the K capture
  // slots.  Telemetry-side only — which jobs win affects which .lumirec
  // files appear, never the summary (each file's content is deterministic).
  // lumi-lint: allow(relaxed-atomic)
  std::atomic<std::size_t> capture_claims{0};
  const bool capturing = capture != nullptr && !capture->dir.empty();
  // Consecutive same-cell jobs are grouped into one pool task of at most
  // `batch` items (0 = per-cell automatic) so tiny runs amortize their
  // setup; the accumulator adds are exact commutative integer updates, so
  // the summary is byte-identical at any grouping.
  std::size_t i = 0;
  while (i < expansion.jobs.size()) {
    const std::size_t cell = expansion.jobs[i].cell;
    const std::size_t cap = batch != 0 ? batch : auto_batch_size(expansion.cells[cell]);
    std::vector<unsigned> seeds;
    while (i < expansion.jobs.size() && expansion.jobs[i].cell == cell && seeds.size() < cap) {
      seeds.push_back(expansion.jobs[i].seed);
      ++i;
    }
    pool.submit([&expansion, &per_worker, &pool, &warm, &arenas, &remaining, &capture_claims,
                 capture, capturing, cell, seeds = std::move(seeds)] {
      const std::size_t w = static_cast<std::size_t>(pool.worker_index());
      run_cell_batch(expansion.cells[cell], seeds, expansion.options, &warm[cell],
                     arenas[w].get(),
                     [&expansion, &per_worker, &remaining, &capture_claims, &seeds, capture,
                      capturing, w, cell](std::size_t item, const RunResult& r) {
                       per_worker[w].add(cell, r);
                       // Anomalous job: claim a capture slot and re-run it
                       // with a recorder.  Entirely outside the accumulator
                       // path — the summary bytes cannot see it.
                       if (capturing && !r.failure.empty() &&
                           // lumi-lint: allow(relaxed-atomic)
                           capture_claims.fetch_add(1, std::memory_order_relaxed) <
                               capture->limit) {
                         capture_anomaly(expansion.cells[cell], seeds[item], expansion.options,
                                         *capture);
                       }
                       // Cell-completion tick for the progress meter only.
                       // lumi-lint: allow(relaxed-atomic)
                       if (remaining[cell].fetch_sub(1, std::memory_order_relaxed) == 1) {
                         obs_cells_done.add(1);
                       }
                     });
    });
  }
  pool.wait_idle();

  CampaignAccumulator merged(expansion.cells.size());
  for (const CampaignAccumulator& acc : per_worker) merged.merge(acc);

  CampaignSummary summary;
  summary.jobs = expansion.jobs.size();
  summary.threads = pool.size();
  summary.cells.reserve(expansion.cells.size());
  for (std::size_t i = 0; i < expansion.cells.size(); ++i) {
    summary.cells.push_back({expansion.cells[i], merged.cells()[i]});
    summary.total.merge(merged.cells()[i]);
  }
  // lumi-lint: allow(wall-clock) — same diagnostic as the matching read above
  summary.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                             .count();
  // Execution-environment diagnostics promoted into the metrics snapshot:
  // the JSON *report* stays env-free, metrics are the separate channel.
  obs::Registry::global().gauge("campaign.wall_ms").set(
      static_cast<long long>(summary.wall_seconds * 1000.0));
  obs::Registry::global().gauge("campaign.threads").set(summary.threads);
  return summary;
}

CampaignSummary run_campaign(const Matrix& matrix, unsigned threads, std::size_t batch) {
  return run_campaign(expand(matrix), threads, batch);
}

std::vector<std::string> paper_sections() {
  // Table 1 minus the three color-duplication rows (4.2.3, 4.2.4, 4.2.8),
  // which are derived from Algorithms 1, 2 and 4 rather than given directly.
  std::vector<std::string> out;
  for (const algorithms::TableEntry& e : algorithms::table1()) {
    if (e.section == "4.2.3" || e.section == "4.2.4" || e.section == "4.2.8") continue;
    out.push_back(e.section);
  }
  return out;
}

std::vector<std::string> all_sections() {
  std::vector<std::string> out;
  for (const algorithms::TableEntry& e : algorithms::table1()) out.push_back(e.section);
  return out;
}

}  // namespace lumi::campaign
