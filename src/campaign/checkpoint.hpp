// Versioned on-disk campaign checkpoints.
//
// A checkpoint persists, per scenario cell, the full CellAccumulator state
// (exact sums, min/max, log2 histograms) plus the set of seeds already
// consumed, under a fingerprint of the expansion that produced it.  The
// serialization is canonical — fields in fixed order, seeds sorted — so
// serialize(parse(serialize(x))) is byte-identical, and every statistic is
// an exact integer, so merging any disjoint sharding of a campaign's
// checkpoints reproduces the single-process summary bit for bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/campaign/campaign.hpp"

namespace lumi::campaign {

/// State of one cell: its aggregate plus which (cell, seed) jobs are done.
struct CheckpointCell {
  Cell cell;
  CellAccumulator acc;
  std::vector<unsigned> seeds_done;  ///< sorted ascending, unique

  friend bool operator==(const CheckpointCell&, const CheckpointCell&) = default;
};

struct Checkpoint {
  std::uint64_t fingerprint = 0;  ///< expansion_fingerprint of the matrix
  std::vector<CheckpointCell> cells;

  std::size_t jobs_done() const;

  friend bool operator==(const Checkpoint&, const Checkpoint&) = default;
};

/// FNV-1a hash of the expansion's cells and run options (not its job list,
/// so shards of one matrix — and adaptive seed extensions of it — share the
/// fingerprint and can be resumed/merged against each other).
std::uint64_t expansion_fingerprint(const Expansion& expansion);

/// Fresh checkpoint for the expansion: every cell present, zero runs.
Checkpoint make_checkpoint(const Expansion& expansion);

/// Canonical v1 text rendering.
std::string checkpoint_serialize(const Checkpoint& checkpoint);
/// Parses a v1 rendering; throws std::runtime_error on malformed input.
Checkpoint checkpoint_parse(const std::string& text);

/// Serializes to `path + ".tmp"` then atomically renames over `path`, so a
/// reader (or a resume after a kill) never sees a torn file.  False on I/O
/// failure.
bool checkpoint_write(const std::string& path, const Checkpoint& checkpoint);
/// std::nullopt when `path` does not exist; throws on malformed content.
std::optional<Checkpoint> checkpoint_load(const std::string& path);

/// Folds `other` into `into`.  Both must carry the same fingerprint and cell
/// list; a seed appearing in the same cell of both (overlapping shards)
/// throws std::invalid_argument — shards must be disjoint.
void checkpoint_merge(Checkpoint& into, const Checkpoint& other);

/// The CampaignSummary a single-process run over the same completed jobs
/// would produce (threads/wall_seconds are left zero: they describe an
/// execution, not a result).
CampaignSummary checkpoint_summary(const Checkpoint& checkpoint);

}  // namespace lumi::campaign
