// Declarative scenario campaigns: a matrix of algorithms (registry sections)
// x bounding-box dimensions x topologies x schedulers x seeds is expanded
// into jobs, executed on a work-stealing thread pool, and aggregated into
// per-cell and per-campaign summaries.  For fixed seeds the summary is
// identical for any worker count.  Topology specs ("grid", "torus",
// "holes", "obstacles:15:7", ... — src/topo/topology.hpp) are a first-class
// cell axis: they shard, checkpoint, resume and merge exactly like grids.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/campaign/aggregate.hpp"
#include "src/core/arena.hpp"
#include "src/engine/runner.hpp"

namespace lumi::campaign {

/// The scheduler families a campaign can sweep (mirrors src/sched).
enum class SchedKind : std::uint8_t {
  Fsync,
  SsyncRandom,
  SsyncRoundRobin,
  AsyncRandom,
  AsyncCentralized,
  AsyncStaleStress,
};

inline constexpr SchedKind kAllSchedKinds[] = {
    SchedKind::Fsync,           SchedKind::SsyncRandom,      SchedKind::SsyncRoundRobin,
    SchedKind::AsyncRandom,     SchedKind::AsyncCentralized, SchedKind::AsyncStaleStress,
};

std::string to_string(SchedKind kind);
/// Parses the names printed by to_string (the explore_cli spellings);
/// std::nullopt for unknown names.
std::optional<SchedKind> sched_from_name(const std::string& name);
/// True for schedulers whose behavior ignores the seed (a single job per
/// cell suffices).
bool sched_is_deterministic(SchedKind kind);
/// The synchrony class the scheduler exercises (Fsync < Ssync < Async).
Synchrony sched_synchrony(SchedKind kind);
/// Whether an algorithm designed for `model` is guaranteed correct under the
/// scheduler: the scheduler's class must be no more asynchronous than the
/// model the algorithm tolerates.
bool compatible(Synchrony model, SchedKind kind);

/// Inclusive integer range `from..to` advancing by `step`.  Both endpoints
/// are always emitted: `to` appears even when `to - from` is not a multiple
/// of `step` (so "4..64:12" covers the 64-column edge it names).
struct IntRange {
  int from = 0;
  int to = -1;  ///< default-constructed range is empty
  int step = 1;

  /// Throws std::invalid_argument on a non-positive step.
  std::vector<int> values() const;
};

/// Parses the campaign CLI range grammar — "8", "4..64" or "4..64:12" —
/// into an inclusive stepped range.  std::nullopt (with nothing written
/// anywhere) on malformed text, a non-positive lower bound, or a
/// zero/negative step; an empty range ("6..4") parses fine and simply
/// expands to nothing.
std::optional<IntRange> range_from_string(const std::string& text);

/// Declarative scenario matrix.  Sections name Table-1 rows in the registry;
/// unknown sections throw at expansion time.
struct Matrix {
  std::vector<std::string> sections;
  IntRange rows;
  IntRange cols;
  /// Topology specs to sweep at every (rows, cols) point; "grid" is the
  /// seed behavior.  Canonicalized at expansion (e.g. "holes" becomes the
  /// explicit "holes:HxW@RxC" for the cell's dimensions).
  std::vector<std::string> topologies = {"grid"};
  std::vector<SchedKind> schedulers;
  /// Seeds for randomized schedulers; deterministic ones always contribute
  /// exactly one job per cell.
  std::vector<unsigned> seeds = {1};
  RunOptions options;
  /// Skip (rather than fail) combinations the model forbids: grids below the
  /// algorithm's minimum, topologies that cannot be built at the cell's
  /// dimensions (or whose walls displace the initial placement), and
  /// schedulers more asynchronous than the algorithm's model.
  bool skip_incompatible = true;
};

/// One scenario cell: a point of the matrix whose runs are aggregated
/// together (seeds are replicas within the cell).
struct Cell {
  std::string section;
  int rows = 0;
  int cols = 0;
  SchedKind sched = SchedKind::Fsync;
  std::string topo = "grid";  ///< canonical topology spec

  friend bool operator==(const Cell&, const Cell&) = default;
};

std::string to_string(const Cell& cell);

/// One unit of work: a cell replica under a concrete seed.
struct Job {
  std::size_t cell = 0;  ///< index into Expansion::cells
  unsigned seed = 0;
};

struct Expansion {
  std::vector<Cell> cells;
  std::vector<Job> jobs;
  RunOptions options;
};

/// Expands the matrix in deterministic order (section-major, then rows, cols,
/// scheduler, seed).  Throws std::out_of_range on unknown sections and
/// std::invalid_argument (carrying the analyzer's findings) when a section's
/// rule table fails the semantic analyzer — ill-formed algorithms are
/// rejected before a single job runs.
Expansion expand(const Matrix& matrix);

/// Runs `alg` on `topo` under a freshly constructed scheduler of kind `kind`
/// seeded with `seed` — the per-job tail of run_cell once the expensive
/// setup is done, exposed for the replay/doctor tooling
/// (src/campaign/doctor.hpp): a recording names (algorithm, topology,
/// scheduler kind, seed), and re-running through this exact funnel is what
/// makes replays byte-identical.
RunResult run_with_sched(const Algorithm& alg, const Topology& topo, SchedKind kind,
                         unsigned seed, const RunOptions& opts);

/// Executes one job (used by the runner; exposed for tests/benches).
/// `warm`, when given, is the cell's shared initial-verdict slot (see
/// WarmStartSlot): runs after the first skip the tracker's initial full
/// compute.  Results are identical with or without it.
RunResult run_cell(const Cell& cell, unsigned seed, const RunOptions& options,
                   WarmStartSlot* warm = nullptr);

/// Like run_cell, but converts an escaping exception into a RunResult whose
/// failure string records it (campaigns never abort on a single bad job).
RunResult run_cell_guarded(const Cell& cell, unsigned seed, const RunOptions& options,
                           WarmStartSlot* warm = nullptr);

/// How many same-cell jobs one pool task should execute back-to-back when
/// the batch size is left automatic: sized so per-task work stays roughly
/// constant — tiny worlds (where per-job setup of algorithm construction,
/// topology parsing and compile-cache lookup rivals the simulation) get
/// large batches, big worlds run singly.  Async schedulers spend ~3 events
/// per robot cycle, so their runs weigh more at equal area.  Derived from
/// the cell's bounding box only (walled topologies just finish early), so
/// the grouping — unlike the results, which are identical at any batch
/// size — is cheap and deterministic.
std::size_t auto_batch_size(const Cell& cell);

/// Executes `seeds.size()` jobs of `cell` as one unit: per-job setup is
/// hoisted out of the item loop (the algorithm is built, the topology
/// parsed, and the matcher compilation resolved once per batch), and each
/// item's run-local tables live on `arena` (reset between items; null =
/// heap).  `sink(item, result)` is invoked in seed order before the next
/// item's reset; results never point into the arena.  Each item is guarded
/// like run_cell_guarded; a failure of the hoisted setup itself is reported
/// on every item.  Summaries are byte-identical to running the seeds
/// through run_cell one by one.
void run_cell_batch(const Cell& cell, std::span<const unsigned> seeds,
                    const RunOptions& options, WarmStartSlot* warm, Arena* arena,
                    const std::function<void(std::size_t, const RunResult&)>& sink);

struct CellSummary {
  Cell cell;
  CellAccumulator acc;
};

/// Result-inert anomaly capture (the `--record-anomalies` flag): when armed,
/// the first `limit` anomalous jobs (nonempty failure — budget exhaustion,
/// verifier failure, escaped exception) are *re-run* with a flight recorder
/// attached and dumped as `.lumirec` files into `dir`.  Every scheduler is
/// deterministic given its seed, so the re-run reproduces the anomalous
/// execution exactly; it happens entirely outside the accumulator path, so
/// reports and checkpoints are byte-identical with capture on or off
/// (tests/test_obs_identity.cpp).  Which K anomalies win the claim race
/// under threads is timing-dependent; the file a given job produces is not.
struct AnomalyCapture {
  std::string dir;        ///< existing directory; empty = capture off
  std::size_t limit = 8;  ///< max recordings per campaign (per shard)
};

/// Re-runs one anomalous job with a recorder (cycle detection armed for
/// deterministic memoryless schedulers) and writes
/// `dir/anomaly-<cell>-s<seed>.lumirec`.  Never throws — a capture failure
/// must not kill the campaign; returns whether a file was written.
bool capture_anomaly(const Cell& cell, unsigned seed, const RunOptions& base,
                     const AnomalyCapture& capture);

struct CampaignSummary {
  std::vector<CellSummary> cells;
  CellAccumulator total;
  std::size_t jobs = 0;
  unsigned threads = 1;
  double wall_seconds = 0.0;
};

/// Runs every job of the expansion on `threads` workers (0 = all hardware
/// threads).  Exceptions escaping a job are recorded as that run's failure.
/// `batch` is the number of consecutive same-cell jobs one worker task
/// executes (0 = automatic per cell via auto_batch_size, 1 = the per-job
/// reference path).  Summaries are byte-identical for any batch size and
/// any worker count (tests/test_batching.cpp pins this).  `capture`, when
/// non-null with a nonempty dir, records the first anomalous jobs (see
/// AnomalyCapture) without affecting the summary.
CampaignSummary run_campaign(const Expansion& expansion, unsigned threads = 0,
                             std::size_t batch = 0, const AnomalyCapture* capture = nullptr);
CampaignSummary run_campaign(const Matrix& matrix, unsigned threads = 0, std::size_t batch = 0);

/// Sections of the eleven directly implemented paper algorithms (Algorithms
/// 1-11), in Table-1 order.
std::vector<std::string> paper_sections();
/// All fourteen Table-1 sections, including the three derived rows.
std::vector<std::string> all_sections();

}  // namespace lumi::campaign
