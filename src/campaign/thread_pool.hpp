// Work-stealing thread pool backing the campaign engine: each worker owns a
// deque of tasks and steals from siblings when its own runs dry, so large
// fan-outs of uneven jobs keep every core busy without a single contended
// queue.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lumi {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

class ThreadPool {
 public:
  /// `threads == 0` sizes the pool to std::thread::hardware_concurrency()
  /// (never fewer than one worker).
  explicit ThreadPool(unsigned threads = 0);
  /// Drains: every task already submitted runs to completion before the
  /// workers exit.  Tasks are never silently dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task; distributed round-robin across worker deques.  Throws
  /// std::logic_error once shutdown has begun (fail loudly, never drop).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait_idle();

  /// Index of the calling pool worker in [0, size()), or -1 when called from
  /// a thread that does not belong to this pool.
  int worker_index() const;

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  /// Pops from the worker's own deque, else steals from a sibling; `stolen`
  /// reports which of the two happened.
  bool try_get_task(unsigned self, std::function<void()>& out, bool& stolen);
  void worker_loop(unsigned self);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  // Telemetry (src/obs/metrics.hpp): per-worker task/steal counters and a
  // pending-task high-water gauge.  Handles are registry-owned and live for
  // the process; recording is a no-op while the registry is disabled.
  // Telemetry observes the pool, it never steers it (obs-isolation).
  std::vector<obs::Counter*> obs_executed_;
  std::vector<obs::Counter*> obs_stolen_;
  std::vector<obs::Counter*> obs_steal_failed_;
  obs::Gauge* obs_pending_max_ = nullptr;

  std::mutex mu_;  ///< guards stop_ and both condition variables
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};
  bool stop_ = false;
};

}  // namespace lumi
