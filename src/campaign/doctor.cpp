#include "src/campaign/doctor.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/dsl/dsl.hpp"
#include "src/topo/topology.hpp"

namespace lumi::campaign {
namespace {

/// Rebuilds the algorithm a recording embeds.  Unvalidated, non-strict: the
/// doctor's whole purpose includes replaying *defective* tables (a livelock
/// recording embeds a table no registry gate would admit).
Algorithm algorithm_of(const obs::Recording& rec) {
  return dsl::parse(rec.prov.algorithm_text, {.validate = false, .strict = false});
}

SchedKind sched_of(const obs::Recording& rec) {
  const std::optional<SchedKind> kind = sched_from_name(rec.prov.scheduler);
  if (!kind.has_value()) {
    throw std::runtime_error("replay: unknown scheduler '" + rec.prov.scheduler + "'");
  }
  return *kind;
}

std::string robot_to_string(std::size_t i, const Robot& r) {
  std::ostringstream out;
  out << "robot " << i << " (" << r.pos.row << "," << r.pos.col << ")="
      << color_letter(r.color);
  return out.str();
}

std::string event_to_string(const obs::RecordedEvent& ev) {
  std::ostringstream out;
  out << "instant " << ev.instant << ' ' << obs::to_string(ev.kind) << " robot " << ev.robot
      << " rule " << ev.rule_index << ' ' << color_letter(ev.color_before) << "->"
      << color_letter(ev.color_after) << " move ";
  if (ev.move.has_value()) {
    out << to_string(*ev.move);
  } else {
    out << "none";
  }
  return out.str();
}

void diff_robots(const char* what, const std::vector<Robot>& want,
                 const std::vector<Robot>& got, std::vector<std::string>& out) {
  if (want.size() != got.size()) {
    out.push_back(std::string(what) + ": robot count " + std::to_string(got.size()) +
                  " != recorded " + std::to_string(want.size()));
    return;
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (want[i] != got[i]) {
      out.push_back(std::string(what) + ": replay " + robot_to_string(i, got[i]) +
                    " != recorded " + robot_to_string(i, want[i]));
    }
  }
}

char timeline_char(const obs::RecordedEvent& ev) {
  switch (ev.kind) {
    case obs::EventKind::Look: return 'o';
    case obs::EventKind::ComputeEnd: return 'c';
    case obs::EventKind::Move: return 'm';
    case obs::EventKind::SyncAct: break;
  }
  const bool recolors = ev.color_after != ev.color_before;
  if (ev.move.has_value()) {
    if (recolors) return '*';
    switch (*ev.move) {
      case Dir::North: return '^';
      case Dir::East: return '>';
      case Dir::South: return 'v';
      case Dir::West: return '<';
    }
  }
  return recolors ? color_letter(ev.color_after) : 'i';
}

}  // namespace

ReplayCheck replay_recording(const obs::Recording& rec) {
  const Algorithm alg = algorithm_of(rec);
  const Topology topo = make_topology(rec.prov.topo_spec, rec.prov.rows, rec.prov.cols);
  const SchedKind kind = sched_of(rec);

  obs::Recorder recorder(rec.options);
  recorder.set_provenance(rec.prov);
  RunOptions opts;
  opts.max_steps = rec.prov.max_steps;
  opts.require_unique_actions = rec.prov.require_unique_actions;
  opts.recorder = &recorder;

  ReplayCheck check;
  check.result = run_with_sched(alg, topo, kind, rec.prov.seed, opts);
  check.replayed = obs::make_recording(recorder, check.result);

  std::vector<std::string>& d = check.divergences;
  diff_robots("initial configuration", rec.initial, check.replayed.initial, d);
  diff_robots("final configuration", rec.final_robots, check.replayed.final_robots, d);
  if (check.replayed.terminated != rec.terminated || check.replayed.explored_all != rec.explored_all) {
    d.push_back("outcome: replay terminated=" + std::to_string(check.replayed.terminated) +
                " explored=" + std::to_string(check.replayed.explored_all) +
                " != recorded terminated=" + std::to_string(rec.terminated) +
                " explored=" + std::to_string(rec.explored_all));
  }
  const auto stat = [&d](const char* name, long got, long want) {
    if (got != want) {
      d.push_back(std::string("stats.") + name + ": replay " + std::to_string(got) +
                  " != recorded " + std::to_string(want));
    }
  };
  stat("instants", check.replayed.instants, rec.instants);
  stat("activations", check.replayed.activations, rec.activations);
  stat("moves", check.replayed.moves, rec.moves);
  stat("color_changes", check.replayed.color_changes, rec.color_changes);
  if (check.replayed.failure != rec.failure) {
    d.push_back("failure: replay '" + check.replayed.failure + "' != recorded '" + rec.failure +
                "'");
  }
  if (check.replayed.diagnosis != rec.diagnosis) {
    d.push_back("diagnosis: replay " + obs::to_string(check.replayed.diagnosis) +
                " != recorded " + obs::to_string(rec.diagnosis));
  }
  if (check.replayed.cycle != rec.cycle) {
    d.push_back("cycle witness: replay and recording disagree");
  }
  if (check.replayed.events_seen != rec.events_seen) {
    d.push_back("events-seen: replay " + std::to_string(check.replayed.events_seen) +
                " != recorded " + std::to_string(rec.events_seen));
  }
  if (check.replayed.events != rec.events) {
    std::string detail = "event tail differs";
    const std::size_t n = std::min(check.replayed.events.size(), rec.events.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!(check.replayed.events[i] == rec.events[i])) {
        detail += ": first divergence at tail index " + std::to_string(i) + " — replay [" +
                  event_to_string(check.replayed.events[i]) + "] != recorded [" +
                  event_to_string(rec.events[i]) + "]";
        break;
      }
    }
    d.push_back(detail);
  }
  // Catch-all: the serialized bytes are the contract; any residual
  // difference the field checks missed still fails the replay.
  if (d.empty() &&
      obs::recording_serialize(check.replayed) != obs::recording_serialize(rec)) {
    d.push_back("serialized recordings differ");
  }
  return check;
}

bool certify_cycle(const obs::Recording& rec, std::string& why) {
  if (!rec.cycle.has_value()) {
    why = "recording carries no cycle witness";
    return false;
  }
  const long start = rec.cycle->start;
  const long length = rec.cycle->length;
  if (start < 0 || length <= 0) {
    why = "witness (" + std::to_string(start) + "," + std::to_string(length) +
          ") is malformed";
    return false;
  }
  const Algorithm alg = algorithm_of(rec);
  const Topology topo = make_topology(rec.prov.topo_spec, rec.prov.rows, rec.prov.cols);
  RunOptions opts;
  opts.record_trace = true;
  opts.max_steps = start + length;
  const RunResult replay = run_with_sched(alg, topo, sched_of(rec), rec.prov.seed, opts);
  // trace[i] is the configuration entering instant i (trace[0] = initial);
  // the witness claims trace[start] recurs at trace[start + length].
  if (replay.trace.size() <= static_cast<std::size_t>(start + length)) {
    why = "execution ended after " + std::to_string(replay.stats.instants) +
          " instants, before the witness cycle completed";
    return false;
  }
  if (!replay.trace[static_cast<std::size_t>(start)].config.same_placement(
          replay.trace[static_cast<std::size_t>(start + length)].config)) {
    why = "configurations at instants " + std::to_string(start) + " and " +
          std::to_string(start + length) +
          " differ — the recorded witness is a hash collision";
    return false;
  }
  why.clear();
  return true;
}

std::string per_robot_timeline(const obs::Recording& rec, int max_instants) {
  std::ostringstream out;
  if (rec.events.empty() || rec.initial.empty() || max_instants <= 0) {
    return "(no recorded events)\n";
  }
  long lo = rec.events.front().instant;
  long hi = rec.events.front().instant;
  for (const obs::RecordedEvent& ev : rec.events) {
    lo = std::min(lo, ev.instant);
    hi = std::max(hi, ev.instant);
  }
  if (hi - lo + 1 > max_instants) lo = hi - max_instants + 1;  // newest window
  const std::size_t width = static_cast<std::size_t>(hi - lo + 1);
  std::vector<std::string> rows(rec.initial.size(), std::string(width, '.'));
  for (const obs::RecordedEvent& ev : rec.events) {
    if (ev.instant < lo || ev.robot < 0 ||
        static_cast<std::size_t>(ev.robot) >= rows.size()) {
      continue;
    }
    rows[static_cast<std::size_t>(ev.robot)][static_cast<std::size_t>(ev.instant - lo)] =
        timeline_char(ev);
  }
  out << "timeline instants " << lo << ".." << hi
      << "  (^>v< move, G/W/B/R recolor, * both, i idle act, o/c/m async "
         "look/compute/move, . inactive)\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out << "robot " << r << " |" << rows[r] << "|\n";
  }
  return out.str();
}

std::string rule_fire_counts(const obs::Recording& rec) {
  const Algorithm alg = algorithm_of(rec);
  std::vector<long long> counts;
  for (const obs::RecordedEvent& ev : rec.events) {
    if (ev.rule_index < 0) continue;
    if (static_cast<std::size_t>(ev.rule_index) >= counts.size()) {
      counts.resize(static_cast<std::size_t>(ev.rule_index) + 1, 0);
    }
    counts[static_cast<std::size_t>(ev.rule_index)] += 1;
  }
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&counts](std::size_t a, std::size_t b) {
    return counts[a] != counts[b] ? counts[a] > counts[b] : a < b;
  });
  std::ostringstream out;
  if (order.empty()) return "(no rule firings in the recorded tail)\n";
  out << "rule firings over the recorded tail (" << rec.events.size() << " events):\n";
  for (std::size_t i : order) {
    const std::string label = i < alg.rules.size() ? alg.rules[i].label
                                                   : "rule#" + std::to_string(i);
    out << "  " << label << ": " << counts[i] << '\n';
  }
  return out.str();
}

std::string diff_recordings(const obs::Recording& a, const obs::Recording& b,
                            int max_report) {
  if (obs::recording_serialize(a) == obs::recording_serialize(b)) return "";
  std::ostringstream out;
  const auto field = [&out](const char* name, const std::string& va, const std::string& vb) {
    if (va != vb) out << name << ": '" << va << "' vs '" << vb << "'\n";
  };
  field("section", a.prov.section, b.prov.section);
  field("scheduler", a.prov.scheduler, b.prov.scheduler);
  field("seed", std::to_string(a.prov.seed), std::to_string(b.prov.seed));
  field("dims", std::to_string(a.prov.rows) + "x" + std::to_string(a.prov.cols),
        std::to_string(b.prov.rows) + "x" + std::to_string(b.prov.cols));
  field("topology", a.prov.topo_spec, b.prov.topo_spec);
  field("max-steps", std::to_string(a.prov.max_steps), std::to_string(b.prov.max_steps));
  if (a.prov.algorithm_text != b.prov.algorithm_text) out << "algorithm text differs\n";
  field("diagnosis", obs::to_string(a.diagnosis), obs::to_string(b.diagnosis));
  if (a.events.size() != b.events.size()) {
    out << "event tail: " << a.events.size() << " vs " << b.events.size() << " events\n";
  }
  int reported = 0;
  const std::size_t n = std::min(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < n && reported < max_report; ++i) {
    if (!(a.events[i] == b.events[i])) {
      out << "event[" << i << "]: [" << event_to_string(a.events[i]) << "] vs ["
          << event_to_string(b.events[i]) << "]\n";
      ++reported;
    }
  }
  if (reported == max_report) out << "(further event divergences elided)\n";
  field("outcome",
        std::to_string(a.terminated) + "/" + std::to_string(a.explored_all),
        std::to_string(b.terminated) + "/" + std::to_string(b.explored_all));
  field("stats",
        std::to_string(a.instants) + " " + std::to_string(a.activations) + " " +
            std::to_string(a.moves) + " " + std::to_string(a.color_changes),
        std::to_string(b.instants) + " " + std::to_string(b.activations) + " " +
            std::to_string(b.moves) + " " + std::to_string(b.color_changes));
  field("failure", a.failure, b.failure);
  std::vector<std::string> robot_diffs;
  diff_robots("final configuration", a.final_robots, b.final_robots, robot_diffs);
  for (const std::string& line : robot_diffs) out << line << '\n';
  if (out.str().empty()) out << "recordings differ only in serialized detail\n";
  return out.str();
}

}  // namespace lumi::campaign
