#include "src/campaign/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace lumi {

namespace {

// Identifies the current thread's pool and worker slot for worker_index().
thread_local const ThreadPool* tl_pool = nullptr;
thread_local int tl_worker = -1;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  queues_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  // Round-robin placement hint only: no memory is published under this
  // counter, any interleaving just spreads tasks differently.
  // lumi-lint: allow(relaxed-atomic)
  const std::size_t target = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  // The stop_ check, push and notify all happen under mu_: the destructor
  // sets stop_ under the same lock, so a task can never slip into the queues
  // after shutdown started (it would be silently dropped), and a worker
  // between its (mu_-protected) empty re-scan and work_cv_.wait() cannot
  // miss both the push and the notify and sleep forever.
  std::lock_guard lock(mu_);
  if (stop_) throw std::logic_error("ThreadPool::submit: pool is shutting down");
  // The increment happens under mu_ before the task is visible in any deque;
  // the release side of the counter is the acq_rel fetch_sub in worker_loop.
  // lumi-lint: allow(relaxed-atomic)
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard qlock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

int ThreadPool::worker_index() const { return tl_pool == this ? tl_worker : -1; }

bool ThreadPool::try_get_task(unsigned self, std::function<void()>& out) {
  // Own deque first (LIFO for locality), then steal FIFO from siblings.
  {
    Queue& q = *queues_[self];
    std::lock_guard lock(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    Queue& q = *queues_[(self + i) % queues_.size()];
    std::lock_guard lock(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(unsigned self) {
  tl_pool = this;
  tl_worker = static_cast<int>(self);
  for (;;) {
    std::function<void()> task;
    if (try_get_task(self, task)) {
      task();
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task done: take mu_ so the notify cannot race a waiter that
        // has checked the predicate but not yet gone to sleep.
        std::lock_guard lock(mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock lock(mu_);
    // Re-check the deques under mu_: a submit between our scan and this lock
    // would otherwise be missed and its notify lost.
    bool queues_empty = true;
    for (const auto& q : queues_) {
      std::lock_guard qlock(q->mu);
      if (!q->tasks.empty()) {
        queues_empty = false;
        break;
      }
    }
    if (!queues_empty) continue;
    // Check stop_ only once every deque is drained: shutdown must run all
    // queued work (and bring pending_ to zero), not drop it.
    if (stop_) return;
    work_cv_.wait(lock);
  }
}

}  // namespace lumi
