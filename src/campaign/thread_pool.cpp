#include "src/campaign/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/obs/metrics.hpp"
#include "src/obs/trace_event.hpp"

namespace lumi {

namespace {

// Identifies the current thread's pool and worker slot for worker_index().
thread_local const ThreadPool* tl_pool = nullptr;
thread_local int tl_worker = -1;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  queues_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) queues_.push_back(std::make_unique<Queue>());
  // Registry handles are resolved once here (cold, locked); the hot path
  // below only ever does an enabled-check + relaxed add on its own worker's
  // counter.  Names are stable across pools: a process's pools accumulate
  // into the same per-worker-index series.
  obs::Registry& registry = obs::Registry::global();
  obs_executed_.reserve(threads);
  obs_stolen_.reserve(threads);
  obs_steal_failed_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    const std::string prefix = "pool.worker." + std::to_string(i);
    obs_executed_.push_back(&registry.counter(prefix + ".executed"));
    obs_stolen_.push_back(&registry.counter(prefix + ".stolen"));
    obs_steal_failed_.push_back(&registry.counter(prefix + ".steal_failures"));
  }
  obs_pending_max_ = &registry.gauge("pool.pending_tasks.max");
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  // Round-robin placement hint only: no memory is published under this
  // counter, any interleaving just spreads tasks differently.
  // lumi-lint: allow(relaxed-atomic)
  const std::size_t target = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  // The stop_ check, push and notify all happen under mu_: the destructor
  // sets stop_ under the same lock, so a task can never slip into the queues
  // after shutdown started (it would be silently dropped), and a worker
  // between its (mu_-protected) empty re-scan and work_cv_.wait() cannot
  // miss both the push and the notify and sleep forever.
  std::lock_guard lock(mu_);
  if (stop_) throw std::logic_error("ThreadPool::submit: pool is shutting down");
  // The increment happens under mu_ before the task is visible in any deque;
  // the release side of the counter is the acq_rel fetch_sub in worker_loop.
  // lumi-lint: allow(relaxed-atomic)
  const std::size_t pending = pending_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs_pending_max_->record_max(static_cast<long long>(pending));
  {
    std::lock_guard qlock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

int ThreadPool::worker_index() const { return tl_pool == this ? tl_worker : -1; }

bool ThreadPool::try_get_task(unsigned self, std::function<void()>& out, bool& stolen) {
  // Own deque first (LIFO for locality), then steal FIFO from siblings.
  stolen = false;
  {
    Queue& q = *queues_[self];
    std::lock_guard lock(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    Queue& q = *queues_[(self + i) % queues_.size()];
    std::lock_guard lock(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      stolen = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(unsigned self) {
  tl_pool = this;
  tl_worker = static_cast<int>(self);
  for (;;) {
    std::function<void()> task;
    bool stolen = false;
    if (try_get_task(self, task, stolen)) {
      obs_executed_[self]->add(1);
      if (stolen) obs_stolen_[self]->add(1);
      {
        obs::Span span("pool.task", "pool");
        task();
      }
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task done: take mu_ so the notify cannot race a waiter that
        // has checked the predicate but not yet gone to sleep.
        std::lock_guard lock(mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    obs_steal_failed_[self]->add(1);
    std::unique_lock lock(mu_);
    // Re-check the deques under mu_: a submit between our scan and this lock
    // would otherwise be missed and its notify lost.
    bool queues_empty = true;
    for (const auto& q : queues_) {
      std::lock_guard qlock(q->mu);
      if (!q->tasks.empty()) {
        queues_empty = false;
        break;
      }
    }
    if (!queues_empty) continue;
    // Check stop_ only once every deque is drained: shutdown must run all
    // queued work (and bring pending_ to zero), not drop it.
    if (stop_) return;
    work_cv_.wait(lock);
  }
}

}  // namespace lumi
