// Campaign orchestration: resumable, checkpointed, adaptively escalating
// execution of an expansion (or a shard of one).
//
// Results funnel into a Checkpoint under one lock (job execution dominates,
// so contention is negligible); an aggregation thread periodically snapshots
// it and writes the file via atomic rename, so a campaign killed at any
// instant resumes from its last flush without re-running completed jobs.
// Because every accumulator operation is an exact commutative integer
// update, the final state is identical no matter how jobs interleave, shard
// or resume.
#pragma once

#include <cstddef>
#include <string>

#include "src/campaign/campaign.hpp"
#include "src/campaign/checkpoint.hpp"

namespace lumi::campaign {

/// After the base pass, cells that misbehave — termination rate below
/// `min_termination_rate` or instants variance above
/// `instants_variance_threshold` — receive `seeds_per_round` fresh seeds per
/// round (continuing past the highest seed consumed) until they recover or
/// the `max_extra_seeds` per-cell budget runs out.  Cells under
/// deterministic schedulers never escalate (the seed is ignored there).
struct AdaptivePolicy {
  bool enabled = false;
  double min_termination_rate = 1.0;
  double instants_variance_threshold = -1.0;  ///< negative: variance never escalates
  unsigned seeds_per_round = 4;
  unsigned max_extra_seeds = 16;
  unsigned max_rounds = 8;
};

struct OrchestratorOptions {
  unsigned threads = 0;            ///< 0 = all hardware threads
  std::string checkpoint_path;     ///< empty: no persistence (in-memory only)
  double flush_seconds = 5.0;      ///< periodic checkpoint flush interval
  std::size_t max_jobs = 0;        ///< stop after N new jobs this invocation (0 = no cap)
  /// Same-cell jobs per worker task (0 = automatic per cell, 1 = per-job).
  /// Checkpoints record per job, so kill/resume and max_jobs semantics are
  /// unchanged at any batch size, and reports are byte-identical.
  std::size_t batch = 0;
  AdaptivePolicy adaptive;
  /// Anomaly capture (campaign.hpp): empty dir = off.  The limit applies per
  /// invocation, i.e. per shard when a campaign is sharded.  Result-inert —
  /// checkpoints and reports are byte-identical with capture on or off.
  AnomalyCapture record_anomalies;
};

struct OrchestratorReport {
  CampaignSummary summary;
  Checkpoint checkpoint;           ///< final state (what the last flush wrote)
  std::size_t jobs_skipped = 0;    ///< base jobs already done in the loaded checkpoint
  std::size_t jobs_executed = 0;   ///< jobs newly run this invocation
  std::size_t escalation_jobs = 0;
  unsigned escalation_rounds = 0;
  bool complete = true;            ///< false when max_jobs cut the run short
};

/// Runs the expansion's jobs that the checkpoint at
/// `options.checkpoint_path` (if any) does not already cover, then any
/// adaptive escalation rounds.  Throws std::runtime_error when an existing
/// checkpoint belongs to a different matrix (fingerprint or cell mismatch).
OrchestratorReport run_orchestrated(const Expansion& expansion,
                                    const OrchestratorOptions& options);

}  // namespace lumi::campaign
