#include "src/campaign/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lumi::campaign {

namespace {

constexpr const char* kMagic = "lumi-campaign-checkpoint";
// v2: the cell record carries the topology spec token (between the
// scheduler and section fields); v1 files predate the topology axis and are
// rejected rather than guessed at.
constexpr int kVersion = 2;
constexpr const char* kStatNames[] = {"instants", "activations", "moves", "color_changes",
                                      "visited"};

LongStat* stat_by_name(CellAccumulator& acc, const std::string& name) {
  LongStat* stats[] = {&acc.instants, &acc.activations, &acc.moves, &acc.color_changes,
                       &acc.visited};
  for (std::size_t i = 0; i < std::size(kStatNames); ++i) {
    if (name == kStatNames[i]) return stats[i];
  }
  return nullptr;
}

/// Sections may contain arbitrary bytes; encode them into a single
/// whitespace-free token ('%XX' for '%' and anything outside 0x21..0x7e).
std::string encode_token(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (c == '%' || c < 0x21 || c > 0x7e) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", c);
      out += buf;
    } else {
      out.push_back(raw);
    }
  }
  return out;
}

std::string decode_token(const std::string& s) {
  const auto hex_digit = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) throw std::runtime_error("checkpoint: truncated %-escape");
    const int hi = hex_digit(s[i + 1]);
    const int lo = hex_digit(s[i + 2]);
    if (hi < 0 || lo < 0) {
      throw std::runtime_error("checkpoint: bad %-escape '" + s.substr(i, 3) + "'");
    }
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

void serialize_stat(std::ostringstream& out, const char* name, const LongStat& s) {
  out << "stat " << name << ' ' << s.count << ' ' << s.sum << ' ' << s.sum_squares << ' ' << s.min
      << ' ' << s.max;
  for (long h : s.histogram) out << ' ' << h;
  out << '\n';
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("checkpoint: line " + std::to_string(line) + ": " + what);
}

}  // namespace

std::size_t Checkpoint::jobs_done() const {
  std::size_t n = 0;
  for (const CheckpointCell& c : cells) n += c.seeds_done.size();
  return n;
}

std::uint64_t expansion_fingerprint(const Expansion& expansion) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a 64 offset basis
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
  };
  mix("v2|" + std::to_string(expansion.options.max_steps) + '|' +
      std::to_string(expansion.options.record_trace) + '|' +
      std::to_string(expansion.options.require_unique_actions) + '|' +
      std::to_string(expansion.cells.size()));
  for (const Cell& cell : expansion.cells) {
    mix('|' + cell.section + '|' + std::to_string(cell.rows) + 'x' + std::to_string(cell.cols) +
        '|' + cell.topo + '|' + to_string(cell.sched));
  }
  return h;
}

Checkpoint make_checkpoint(const Expansion& expansion) {
  Checkpoint out;
  out.fingerprint = expansion_fingerprint(expansion);
  out.cells.reserve(expansion.cells.size());
  for (const Cell& cell : expansion.cells) out.cells.push_back({cell, {}, {}});
  return out;
}

std::string checkpoint_serialize(const Checkpoint& checkpoint) {
  std::ostringstream out;
  out << kMagic << " v" << kVersion << '\n';
  char fp[24];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(checkpoint.fingerprint));
  out << "fingerprint " << fp << '\n';
  out << "cells " << checkpoint.cells.size() << '\n';
  for (std::size_t i = 0; i < checkpoint.cells.size(); ++i) {
    const CheckpointCell& c = checkpoint.cells[i];
    out << "cell " << i << ' ' << c.cell.rows << ' ' << c.cell.cols << ' '
        << to_string(c.cell.sched) << ' ' << encode_token(c.cell.topo) << ' '
        << encode_token(c.cell.section) << '\n';
    out << "acc " << c.acc.runs << ' ' << c.acc.terminated << ' ' << c.acc.explored_all << ' '
        << c.acc.failures << '\n';
    const LongStat* stats[] = {&c.acc.instants, &c.acc.activations, &c.acc.moves,
                               &c.acc.color_changes, &c.acc.visited};
    for (std::size_t s = 0; s < std::size(kStatNames); ++s) {
      serialize_stat(out, kStatNames[s], *stats[s]);
    }
    out << "seeds " << c.seeds_done.size();
    for (unsigned seed : c.seeds_done) out << ' ' << seed;
    out << '\n';
  }
  out << "end\n";
  return out.str();
}

Checkpoint checkpoint_parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  const auto next_line = [&]() -> std::istringstream {
    if (!std::getline(in, line)) fail(lineno, "unexpected end of file");
    ++lineno;
    return std::istringstream(line);
  };
  const auto expect_keyword = [&](std::istringstream& ls, const char* want) {
    std::string got;
    if (!(ls >> got) || got != want) fail(lineno, std::string("expected '") + want + "'");
  };

  Checkpoint out;
  {
    std::istringstream ls = next_line();
    expect_keyword(ls, kMagic);
    std::string want = "v";
    want += std::to_string(kVersion);
    std::string version;
    if (!(ls >> version) || version != want) {
      fail(lineno, "unsupported version '" + version + "'");
    }
  }
  {
    std::istringstream ls = next_line();
    expect_keyword(ls, "fingerprint");
    std::string hex;
    if (!(ls >> hex) || hex.size() != 16) fail(lineno, "bad fingerprint");
    out.fingerprint = std::strtoull(hex.c_str(), nullptr, 16);
  }
  std::size_t num_cells = 0;
  {
    std::istringstream ls = next_line();
    expect_keyword(ls, "cells");
    if (!(ls >> num_cells)) fail(lineno, "bad cell count");
  }
  out.cells.reserve(num_cells);
  for (std::size_t i = 0; i < num_cells; ++i) {
    CheckpointCell c;
    {
      std::istringstream ls = next_line();
      expect_keyword(ls, "cell");
      std::size_t index = 0;
      std::string sched, topo, section;
      if (!(ls >> index >> c.cell.rows >> c.cell.cols >> sched >> topo >> section) ||
          index != i) {
        fail(lineno, "bad cell record");
      }
      const auto kind = sched_from_name(sched);
      if (!kind) fail(lineno, "unknown scheduler '" + sched + "'");
      c.cell.sched = *kind;
      c.cell.topo = decode_token(topo);
      c.cell.section = decode_token(section);
    }
    {
      std::istringstream ls = next_line();
      expect_keyword(ls, "acc");
      if (!(ls >> c.acc.runs >> c.acc.terminated >> c.acc.explored_all >> c.acc.failures)) {
        fail(lineno, "bad accumulator record");
      }
    }
    for (const char* name : kStatNames) {
      std::istringstream ls = next_line();
      expect_keyword(ls, "stat");
      std::string got;
      if (!(ls >> got) || got != name) fail(lineno, std::string("expected stat ") + name);
      LongStat* stat = stat_by_name(c.acc, got);
      if (!(ls >> stat->count >> stat->sum >> stat->sum_squares >> stat->min >> stat->max)) {
        fail(lineno, "bad stat record");
      }
      for (long& h : stat->histogram) {
        if (!(ls >> h)) fail(lineno, "bad histogram");
      }
    }
    {
      std::istringstream ls = next_line();
      expect_keyword(ls, "seeds");
      std::size_t k = 0;
      if (!(ls >> k)) fail(lineno, "bad seed count");
      c.seeds_done.resize(k);
      for (unsigned& seed : c.seeds_done) {
        if (!(ls >> seed)) fail(lineno, "bad seed list");
      }
      for (std::size_t s = 1; s < c.seeds_done.size(); ++s) {
        if (c.seeds_done[s - 1] >= c.seeds_done[s]) fail(lineno, "seeds not strictly ascending");
      }
    }
    out.cells.push_back(std::move(c));
  }
  {
    std::istringstream ls = next_line();
    expect_keyword(ls, "end");
  }
  return out;
}

bool checkpoint_write(const std::string& path, const Checkpoint& checkpoint) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << checkpoint_serialize(checkpoint);
    out.flush();
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<Checkpoint> checkpoint_load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Distinguish "no checkpoint yet" from "checkpoint present but
    // unreadable": restarting from scratch over a real checkpoint (and then
    // overwriting it) must never happen silently.
    std::error_code ec;
    if (std::filesystem::exists(path, ec) && !ec) {
      throw std::runtime_error("checkpoint_load: '" + path + "' exists but cannot be read");
    }
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return checkpoint_parse(buf.str());
}

void checkpoint_merge(Checkpoint& into, const Checkpoint& other) {
  if (into.fingerprint != other.fingerprint) {
    throw std::invalid_argument("checkpoint_merge: fingerprints differ (different matrices)");
  }
  if (into.cells.size() != other.cells.size()) {
    throw std::invalid_argument("checkpoint_merge: cell count mismatch");
  }
  for (std::size_t i = 0; i < into.cells.size(); ++i) {
    CheckpointCell& a = into.cells[i];
    const CheckpointCell& b = other.cells[i];
    if (!(a.cell == b.cell)) throw std::invalid_argument("checkpoint_merge: cell list mismatch");
    std::vector<unsigned> merged;
    merged.reserve(a.seeds_done.size() + b.seeds_done.size());
    std::size_t x = 0, y = 0;
    while (x < a.seeds_done.size() || y < b.seeds_done.size()) {
      if (y == b.seeds_done.size() ||
          (x < a.seeds_done.size() && a.seeds_done[x] < b.seeds_done[y])) {
        merged.push_back(a.seeds_done[x++]);
      } else if (x == a.seeds_done.size() || b.seeds_done[y] < a.seeds_done[x]) {
        merged.push_back(b.seeds_done[y++]);
      } else {
        throw std::invalid_argument("checkpoint_merge: overlapping shards (cell " +
                                    to_string(a.cell) + " seed " +
                                    std::to_string(a.seeds_done[x]) + " in both)");
      }
    }
    a.seeds_done = std::move(merged);
    a.acc.merge(b.acc);
  }
}

CampaignSummary checkpoint_summary(const Checkpoint& checkpoint) {
  CampaignSummary summary;
  summary.cells.reserve(checkpoint.cells.size());
  for (const CheckpointCell& c : checkpoint.cells) {
    summary.cells.push_back({c.cell, c.acc});
    summary.total.merge(c.acc);
  }
  summary.jobs = static_cast<std::size_t>(summary.total.runs);
  summary.threads = 0;
  summary.wall_seconds = 0.0;
  return summary;
}

}  // namespace lumi::campaign
