// Recording doctor: deterministic replay, loop-witness certification and
// human-readable diagnosis of `.lumirec` flight recordings
// (src/obs/recorder.hpp, format in docs/FORMATS.md).
//
// Lives in the campaign layer (not obs) because replay needs the scheduler
// funnel: a recording names (algorithm text, topology spec, scheduler kind,
// seed), and run_with_sched re-executes exactly that.  Every scheduler is
// deterministic given its seed, so a replay either reproduces the recorded
// run byte-for-byte or the recording (or the simulator) is wrong — there is
// no in-between, and replay_recording treats any divergence as a hard error
// for its caller to surface.
#pragma once

#include <string>
#include <vector>

#include "src/campaign/campaign.hpp"
#include "src/obs/recorder.hpp"

namespace lumi::campaign {

/// Replay result: the re-run's outcome, the re-recorded recording (same
/// capacity/provenance as the original, so byte-identity with the original
/// file is meaningful), and every divergence found.  An empty `divergences`
/// certifies the recording: same final configuration, same stats, same
/// events, same serialized bytes.
struct ReplayCheck {
  RunResult result;
  obs::Recording replayed;
  std::vector<std::string> divergences;

  bool identical() const { return divergences.empty(); }
};

/// Re-executes the recording and compares everything result-bearing.
/// Throws std::runtime_error when the recording cannot be replayed at all
/// (unknown scheduler name, malformed algorithm text or topology spec).
ReplayCheck replay_recording(const obs::Recording& rec);

/// Certifies a cycle witness by replaying the run to instant
/// `start + length` with a full trace and checking the configuration at
/// `start` recurs (same placement, not just same hash — a hash collision
/// cannot be certified).  `why` explains a false verdict.  False when the
/// recording carries no witness.
bool certify_cycle(const obs::Recording& rec, std::string& why);

/// Per-robot ASCII timelines over the recorded event tail: one row per
/// robot, one column per instant; movement arrows (^>v<), recolor letters,
/// '*' recolor+move, async o/c/m for Look/ComputeEnd/Move, '.' idle.  At
/// most `max_instants` newest instants (the tail is what explains an
/// anomaly).
std::string per_robot_timeline(const obs::Recording& rec, int max_instants = 96);

/// Per-rule fire counts over the event tail, labeled via the recording's own
/// algorithm text, most-fired first (ties by rule index).
std::string rule_fire_counts(const obs::Recording& rec);

/// Instant-by-instant diff of two recordings: provenance fields, then the
/// first `max_report` event divergences, then outcome/stats/final robots.
/// Empty string when the recordings are identical.
std::string diff_recordings(const obs::Recording& a, const obs::Recording& b,
                            int max_report = 10);

}  // namespace lumi::campaign
