// Span tracing in the Chrome trace_event format: RAII Span objects record
// (name, category, start, duration, thread) tuples into an installed
// TraceWriter, which renders them as the JSON object format
// ({"traceEvents":[{"ph":"X",...}]}) that chrome://tracing and Perfetto
// open directly.
//
// Like the metrics registry (metrics.hpp), tracing is result-inert by
// construction: spans read the clock and buffer telemetry, they never feed
// results (enforced by the `obs-isolation` lint rule and pinned by
// tests/test_obs_identity.cpp).  With no writer installed — the default —
// constructing a Span is a single relaxed atomic load.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lumi::obs {

/// Collects trace events and writes them as one JSON document.  Thread-safe:
/// events append under a mutex (span granularity is pool tasks and batches,
/// not per-instant work, so contention is negligible next to the runs the
/// spans measure).
class TraceWriter {
 public:
  explicit TraceWriter(std::string path);
  /// Uninstalls itself if still installed (spans in flight must have ended:
  /// callers flush after joining their pool).
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Records one complete ("ph":"X") event.  Start and end are steady-clock
  /// points; both are rebased to the writer's epoch and floored to whole
  /// microseconds at flush — flooring the two endpoints (rather than start
  /// and duration independently) keeps parent/child nesting exact in the
  /// rendered integers.
  void add_complete(const char* name, const char* cat,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end, std::uint32_t tid,
                    const char* arg_key, long long arg_value);

  /// Serializes every buffered event to `path` as trace-event JSON; false on
  /// I/O failure.  Call after all spans have ended (pool joined).
  bool flush();

  std::size_t event_count() const;

  /// Installs `w` as the process-wide span sink (nullptr uninstalls).  Flip
  /// only while no spans are live — CLIs install before starting the pool
  /// and uninstall after joining it.
  static void install(TraceWriter* w);
  static TraceWriter* current();

  /// Small dense id of the calling thread (for the trace "tid" field).
  static std::uint32_t thread_id();

 private:
  struct Event {
    const char* name;
    const char* cat;
    std::chrono::steady_clock::time_point start;
    std::chrono::steady_clock::time_point end;
    std::uint32_t tid;
    const char* arg_key;  ///< nullptr: no args object
    long long arg_value;
  };

  const std::string path_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// RAII span: records a complete event covering its own lifetime into the
/// installed TraceWriter, or does nothing when none is installed.  `name`
/// and `cat` must be string literals (or otherwise outlive the writer's
/// flush) — spans never copy them.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "lumi") noexcept
      : writer_(TraceWriter::current()), name_(name), cat_(cat) {
    if (writer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  /// Attaches one integer argument rendered as {"args":{key:value}}.  The
  /// key must be a string literal.
  void set_arg(const char* key, long long value) noexcept {
    arg_key_ = key;
    arg_value_ = value;
  }

  ~Span() {
    if (writer_ == nullptr) return;
    writer_->add_complete(name_, cat_, start_, std::chrono::steady_clock::now(),
                          TraceWriter::thread_id(), arg_key_, arg_value_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceWriter* writer_;
  const char* name_;
  const char* cat_;
  const char* arg_key_ = nullptr;
  long long arg_value_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lumi::obs
