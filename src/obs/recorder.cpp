#include "src/obs/recorder.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/engine/runner.hpp"

namespace lumi::obs {
namespace {

// Token escaping for single-space-separated fields, same scheme as the
// checkpoint format (duplicated rather than shared: obs must not depend on
// campaign).  '%' and anything outside printable-ASCII-minus-space becomes
// %XX.  An empty string serializes as a bare "%", which the escaper never
// emits otherwise ('%' itself encodes as "%25").
std::string encode_token(const std::string& s) {
  if (s.empty()) return "%";
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c != '%' && c > 0x20 && c < 0x7f) {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X", c);
      out.append(buf);
    }
  }
  return out;
}

std::string decode_token(const std::string& s) {
  if (s == "%") return "";
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) throw std::runtime_error("truncated %-escape in token");
    const auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      throw std::runtime_error("bad hex digit in %-escape");
    };
    out.push_back(static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2])));
    i += 2;
  }
  return out;
}

char move_char(const std::optional<Dir>& move) {
  if (!move) return '-';
  switch (*move) {
    case Dir::North: return 'N';
    case Dir::East: return 'E';
    case Dir::South: return 'S';
    case Dir::West: return 'W';
  }
  return '-';
}

std::optional<Dir> move_from_char(char c) {
  switch (c) {
    case '-': return std::nullopt;
    case 'N': return Dir::North;
    case 'E': return Dir::East;
    case 'S': return Dir::South;
    case 'W': return Dir::West;
    default: throw std::runtime_error(std::string("bad move letter '") + c + "'");
  }
}

/// Line-oriented reader with keyword-anchored parse errors.
class Reader {
 public:
  explicit Reader(const std::string& text) : in_(text) {}

  /// Next line, which must start with `key` followed by a space (or be
  /// exactly `key`); returns the remainder after the space.
  std::string expect(const std::string& key) {
    std::string line = next_line(key);
    if (line == key) return "";
    if (line.size() > key.size() && line.compare(0, key.size(), key) == 0 &&
        line[key.size()] == ' ') {
      return line.substr(key.size() + 1);
    }
    throw std::runtime_error("lumirec line " + std::to_string(lineno_) + ": expected '" +
                             key + " ...', got '" + line + "'");
  }

  /// Peeks whether the next line starts with `key`.
  bool peek_is(const std::string& key) {
    if (!peeked_) {
      if (!std::getline(in_, peek_line_)) return false;
      if (!peek_line_.empty() && peek_line_.back() == '\r') peek_line_.pop_back();
      peeked_ = true;
    }
    return peek_line_ == key ||
           (peek_line_.size() > key.size() && peek_line_.compare(0, key.size(), key) == 0 &&
            peek_line_[key.size()] == ' ');
  }

  std::string raw_line() { return next_line("<line>"); }

  int lineno() const { return lineno_; }

 private:
  std::string next_line(const std::string& wanted) {
    ++lineno_;
    if (peeked_) {
      peeked_ = false;
      return peek_line_;
    }
    std::string line;
    if (!std::getline(in_, line)) {
      throw std::runtime_error("lumirec: unexpected end of file, wanted '" + wanted + "'");
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  }

  std::istringstream in_;
  std::string peek_line_;
  bool peeked_ = false;
  int lineno_ = 0;
};

/// Splits `rest` on single spaces into exactly `n` fields.
std::vector<std::string> fields(const std::string& rest, std::size_t n, const char* what) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= rest.size()) {
    const std::size_t space = rest.find(' ', start);
    if (space == std::string::npos) {
      out.push_back(rest.substr(start));
      break;
    }
    out.push_back(rest.substr(start, space - start));
    start = space + 1;
  }
  if (out.size() != n) {
    throw std::runtime_error(std::string("lumirec: '") + what + "' wants " +
                             std::to_string(n) + " fields, got " + std::to_string(out.size()));
  }
  return out;
}

long long to_ll(const std::string& s, const char* what) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("lumirec: bad integer '") + s + "' in " + what);
  }
}

bool to_bool(const std::string& s, const char* what) {
  if (s == "0") return false;
  if (s == "1") return true;
  throw std::runtime_error(std::string("lumirec: bad flag '") + s + "' in " + what);
}

char single_char(const std::string& s, const char* what) {
  if (s.size() != 1) {
    throw std::runtime_error(std::string("lumirec: '") + s + "' in " + what +
                             " is not a single character");
  }
  return s[0];
}

void serialize_robots(std::ostringstream& out, const std::vector<Robot>& robots) {
  for (std::size_t i = 0; i < robots.size(); ++i) {
    out << "robot " << i << ' ' << robots[i].pos.row << ' ' << robots[i].pos.col << ' '
        << color_letter(robots[i].color) << '\n';
  }
}

std::vector<Robot> parse_robots(Reader& in, long long n, const char* what) {
  std::vector<Robot> robots;
  robots.reserve(static_cast<std::size_t>(n));
  for (long long i = 0; i < n; ++i) {
    const auto f = fields(in.expect("robot"), 4, "robot");
    if (to_ll(f[0], what) != i) {
      throw std::runtime_error(std::string("lumirec: ") + what + " robots out of order");
    }
    robots.push_back(Robot{.pos = {static_cast<int>(to_ll(f[1], what)),
                                   static_cast<int>(to_ll(f[2], what))},
                           .color = color_from_letter(single_char(f[3], what))});
  }
  return robots;
}

}  // namespace

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::SyncAct: return "sync";
    case EventKind::Look: return "look";
    case EventKind::ComputeEnd: return "compute";
    case EventKind::Move: return "move";
  }
  return "sync";
}

EventKind event_kind_from_name(const std::string& name) {
  if (name == "sync") return EventKind::SyncAct;
  if (name == "look") return EventKind::Look;
  if (name == "compute") return EventKind::ComputeEnd;
  if (name == "move") return EventKind::Move;
  throw std::invalid_argument("unknown event kind '" + name + "'");
}

Recorder::Recorder() : Recorder(Options{}) {}

Recorder::Recorder(Options options) : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  ring_.reserve(options_.capacity);
}

void Recorder::begin_run(const Configuration& initial) {
  initial_.assign(initial.robots().begin(), initial.robots().end());
  last_ = initial_;
  ring_.clear();
  next_ = 0;
  seen_ = 0;
  first_seen_.clear();
  cycle_.reset();
  if (options_.detect_cycles) first_seen_.emplace(initial.canonical_hash(), 0);
}

void Recorder::push(const RecordedEvent& event) {
  if (ring_.size() < options_.capacity) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % options_.capacity;
  }
  ++seen_;
}

void Recorder::record_sync_instant(long instant, const Configuration& before,
                                   std::span<const RobotAction> selected) {
  for (const RobotAction& ra : selected) {
    push(RecordedEvent{.instant = instant,
                       .kind = EventKind::SyncAct,
                       .robot = ra.robot,
                       .rule_index = ra.action.rule_index,
                       .sym = ra.action.sym,
                       .color_before = before.robot(ra.robot).color,
                       .color_after = ra.action.new_color,
                       .move = ra.action.move});
  }
}

void Recorder::record_async_event(long event, EventKind kind, int robot, Color color_before,
                                  const Action* decision) {
  RecordedEvent ev{.instant = event,
                   .kind = kind,
                   .robot = robot,
                   .rule_index = -1,
                   .sym = {},
                   .color_before = color_before,
                   .color_after = color_before,
                   .move = std::nullopt};
  if (decision != nullptr) {
    ev.rule_index = decision->rule_index;
    ev.sym = decision->sym;
    ev.color_after = decision->new_color;
    ev.move = decision->move;
  }
  push(ev);
}

void Recorder::record_configuration(long instant, const Configuration& config) {
  last_.assign(config.robots().begin(), config.robots().end());
  if (!options_.detect_cycles || cycle_.has_value()) return;
  const std::uint64_t h = config.canonical_hash();
  const auto [it, inserted] = first_seen_.try_emplace(h, instant);
  if (!inserted) {
    cycle_ = CycleWitness{.start = it->second, .length = instant - it->second, .hash = h};
  }
}

std::vector<RecordedEvent> Recorder::tail() const {
  std::vector<RecordedEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < options_.capacity) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

std::string to_string(Diagnosis d) {
  switch (d) {
    case Diagnosis::Terminated: return "terminated";
    case Diagnosis::Cycle: return "cycle";
    case Diagnosis::BudgetExhausted: return "budget-exhausted";
    case Diagnosis::VerifierFailure: return "verifier-failure";
  }
  return "verifier-failure";
}

Diagnosis diagnosis_from_name(const std::string& name) {
  if (name == "terminated") return Diagnosis::Terminated;
  if (name == "cycle") return Diagnosis::Cycle;
  if (name == "budget-exhausted") return Diagnosis::BudgetExhausted;
  if (name == "verifier-failure") return Diagnosis::VerifierFailure;
  throw std::invalid_argument("unknown diagnosis '" + name + "'");
}

Diagnosis diagnose(const Recorder& rec, const RunResult& result) {
  // A witness wins over everything: the budget exhaustion that usually
  // accompanies it is a *consequence* of the loop.  Under the deterministic
  // memoryless schedulers the witness is armed for, a terminating run never
  // revisits a configuration, so Cycle and Terminated cannot both hold.
  if (rec.cycle().has_value()) return Diagnosis::Cycle;
  if (result.terminated && result.failure.empty()) return Diagnosis::Terminated;
  if (result.failure.starts_with("step budget exhausted") ||
      result.failure.starts_with("event budget exhausted")) {
    return Diagnosis::BudgetExhausted;
  }
  return Diagnosis::VerifierFailure;
}

Recording make_recording(const Recorder& rec, const RunResult& result) {
  Recording out;
  out.options = rec.options();
  out.prov = rec.provenance();
  out.initial = rec.initial_robots();
  out.diagnosis = diagnose(rec, result);
  out.cycle = rec.cycle();
  out.events_seen = rec.events_seen();
  out.events = rec.tail();
  out.terminated = result.terminated;
  out.explored_all = result.explored_all;
  out.instants = result.stats.instants;
  out.activations = result.stats.activations;
  out.moves = result.stats.moves;
  out.color_changes = result.stats.color_changes;
  out.failure = result.failure;
  out.final_robots = rec.last_robots();
  return out;
}

std::string recording_serialize(const Recording& rec) {
  std::ostringstream out;
  out << "lumirec " << rec.version << '\n';
  out << "capacity " << rec.options.capacity << '\n';
  out << "detect-cycles " << (rec.options.detect_cycles ? 1 : 0) << '\n';
  out << "section " << encode_token(rec.prov.section) << '\n';
  out << "scheduler " << encode_token(rec.prov.scheduler) << ' ' << rec.prov.seed << '\n';
  out << "dims " << rec.prov.rows << ' ' << rec.prov.cols << '\n';
  out << "topology " << encode_token(rec.prov.topo_spec) << '\n';
  out << "max-steps " << rec.prov.max_steps << '\n';
  out << "unique-actions " << (rec.prov.require_unique_actions ? 1 : 0) << '\n';
  // The algorithm text rides along verbatim (dsl lines never need escaping);
  // the line count frames it so the parser needs no sentinel.
  std::vector<std::string> alg_lines;
  {
    std::istringstream alg(rec.prov.algorithm_text);
    std::string line;
    while (std::getline(alg, line)) alg_lines.push_back(line);
  }
  out << "algorithm " << alg_lines.size() << '\n';
  for (const std::string& line : alg_lines) out << line << '\n';
  out << "init " << rec.initial.size() << '\n';
  serialize_robots(out, rec.initial);
  out << "diagnosis " << to_string(rec.diagnosis) << '\n';
  if (rec.cycle.has_value()) {
    char hex[24];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(rec.cycle->hash));
    out << "cycle " << rec.cycle->start << ' ' << rec.cycle->length << ' ' << hex << '\n';
  }
  out << "events-seen " << rec.events_seen << '\n';
  out << "events " << rec.events.size() << '\n';
  for (const RecordedEvent& ev : rec.events) {
    out << "ev " << ev.instant << ' ' << to_string(ev.kind) << ' ' << ev.robot << ' '
        << ev.rule_index << ' ' << int(ev.sym.rot) << ' ' << (ev.sym.mirror ? 1 : 0) << ' '
        << color_letter(ev.color_before) << ' ' << color_letter(ev.color_after) << ' '
        << move_char(ev.move) << '\n';
  }
  out << "outcome " << (rec.terminated ? 1 : 0) << ' ' << (rec.explored_all ? 1 : 0) << '\n';
  out << "stats " << rec.instants << ' ' << rec.activations << ' ' << rec.moves << ' '
      << rec.color_changes << '\n';
  if (rec.failure.empty()) {
    out << "failure ok\n";
  } else {
    out << "failure err " << encode_token(rec.failure) << '\n';
  }
  out << "final " << rec.final_robots.size() << '\n';
  serialize_robots(out, rec.final_robots);
  out << "end\n";
  return out.str();
}

Recording recording_parse(const std::string& text) {
  Reader in(text);
  Recording rec;
  rec.version = static_cast<int>(to_ll(in.expect("lumirec"), "lumirec"));
  if (rec.version != 1) {
    throw std::runtime_error("unsupported lumirec version " + std::to_string(rec.version));
  }
  rec.options.capacity = static_cast<std::size_t>(to_ll(in.expect("capacity"), "capacity"));
  if (rec.options.capacity == 0) throw std::runtime_error("lumirec: capacity must be >= 1");
  rec.options.detect_cycles = to_bool(in.expect("detect-cycles"), "detect-cycles");
  rec.prov.section = decode_token(in.expect("section"));
  {
    const auto f = fields(in.expect("scheduler"), 2, "scheduler");
    rec.prov.scheduler = decode_token(f[0]);
    rec.prov.seed = static_cast<unsigned>(to_ll(f[1], "scheduler seed"));
  }
  {
    const auto f = fields(in.expect("dims"), 2, "dims");
    rec.prov.rows = static_cast<int>(to_ll(f[0], "dims"));
    rec.prov.cols = static_cast<int>(to_ll(f[1], "dims"));
  }
  rec.prov.topo_spec = decode_token(in.expect("topology"));
  rec.prov.max_steps = static_cast<long>(to_ll(in.expect("max-steps"), "max-steps"));
  rec.prov.require_unique_actions = to_bool(in.expect("unique-actions"), "unique-actions");
  {
    const long long n = to_ll(in.expect("algorithm"), "algorithm");
    std::string text_out;
    for (long long i = 0; i < n; ++i) {
      text_out += in.raw_line();
      text_out += '\n';
    }
    rec.prov.algorithm_text = std::move(text_out);
  }
  rec.initial = parse_robots(in, to_ll(in.expect("init"), "init"), "init");
  rec.diagnosis = diagnosis_from_name(in.expect("diagnosis"));
  if (in.peek_is("cycle")) {
    const auto f = fields(in.expect("cycle"), 3, "cycle");
    Recorder::CycleWitness w;
    w.start = static_cast<long>(to_ll(f[0], "cycle"));
    w.length = static_cast<long>(to_ll(f[1], "cycle"));
    w.hash = std::stoull(f[2], nullptr, 16);
    rec.cycle = w;
  }
  rec.events_seen = to_ll(in.expect("events-seen"), "events-seen");
  const long long kept = to_ll(in.expect("events"), "events");
  rec.events.reserve(static_cast<std::size_t>(kept));
  for (long long i = 0; i < kept; ++i) {
    const auto f = fields(in.expect("ev"), 9, "ev");
    RecordedEvent ev;
    ev.instant = static_cast<long>(to_ll(f[0], "ev"));
    ev.kind = event_kind_from_name(f[1]);
    ev.robot = static_cast<int>(to_ll(f[2], "ev"));
    ev.rule_index = static_cast<int>(to_ll(f[3], "ev"));
    ev.sym.rot = static_cast<std::uint8_t>(to_ll(f[4], "ev"));
    ev.sym.mirror = to_bool(f[5], "ev");
    ev.color_before = color_from_letter(single_char(f[6], "ev"));
    ev.color_after = color_from_letter(single_char(f[7], "ev"));
    ev.move = move_from_char(single_char(f[8], "ev"));
    rec.events.push_back(ev);
  }
  {
    const auto f = fields(in.expect("outcome"), 2, "outcome");
    rec.terminated = to_bool(f[0], "outcome");
    rec.explored_all = to_bool(f[1], "outcome");
  }
  {
    const auto f = fields(in.expect("stats"), 4, "stats");
    rec.instants = static_cast<long>(to_ll(f[0], "stats"));
    rec.activations = static_cast<long>(to_ll(f[1], "stats"));
    rec.moves = static_cast<long>(to_ll(f[2], "stats"));
    rec.color_changes = static_cast<long>(to_ll(f[3], "stats"));
  }
  {
    const std::string rest = in.expect("failure");
    if (rest == "ok") {
      rec.failure.clear();
    } else if (rest.starts_with("err ")) {
      rec.failure = decode_token(rest.substr(4));
      if (rec.failure.empty()) throw std::runtime_error("lumirec: empty 'failure err'");
    } else {
      throw std::runtime_error("lumirec: bad failure line '" + rest + "'");
    }
  }
  rec.final_robots = parse_robots(in, to_ll(in.expect("final"), "final"), "final");
  if (!in.expect("end").empty()) throw std::runtime_error("lumirec: malformed end marker");
  return rec;
}

bool recording_write(const std::string& path, const Recording& rec) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << recording_serialize(rec);
    out.flush();
    if (!out.good()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<Recording> recording_load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return recording_parse(buf.str());
}

}  // namespace lumi::obs
