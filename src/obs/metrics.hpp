// Campaign telemetry: a process-wide metrics registry of named counters,
// gauges and fixed-bucket histograms.
//
// Design constraints (docs/OBSERVABILITY.md, docs/DETERMINISM.md):
//  - Result-inert by construction: metrics *observe* execution, they never
//    feed results.  The lumi-lint rule `obs-isolation` bans obs:: symbols
//    from report rendering and checkpoint serialization, and the telemetry
//    on/off byte-identity of reports is pinned by tests/test_obs_identity.cpp.
//  - No hot-path locks: counters and histograms write per-thread sharded,
//    cache-line-padded atomic slots with relaxed ordering; aggregation
//    happens only at snapshot() time.  Gauges are a single atomic (their
//    writers are rare).
//  - Near-zero when disabled: every recording operation is a relaxed bool
//    load and a predicted branch when the registry is disabled (the
//    default).  Handle lookup (by name, under a mutex) is a cold path done
//    once per call site via a function-local static.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lumi::obs {

/// Per-thread slot count for sharded metrics.  Threads hash onto slots via a
/// process-wide thread index, so up to kMetricShards writers proceed with no
/// cache-line contention at all; beyond that they share slots (still correct,
/// just contended).
inline constexpr std::size_t kMetricShards = 16;

namespace detail {
/// Slot index of the calling thread (assigned once per thread, round-robin).
std::size_t shard_index() noexcept;

struct alignas(64) Slot {
  std::atomic<long long> v{0};
};
}  // namespace detail

/// Monotonic counter.  add() is wait-free: one relaxed fetch_add on the
/// calling thread's slot.
class Counter {
 public:
  void add(long long v = 1) noexcept;
  /// Sum over all slots (snapshot-path only; concurrent adds may or may not
  /// be included — telemetry, not synchronization).
  long long value() const noexcept;

 private:
  friend class Registry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  std::array<detail::Slot, kMetricShards> slots_;
  const std::atomic<bool>* enabled_;
};

/// Last-value / running-max gauge.  A single atomic: gauge writers are rare
/// (per-campaign, per-flush), never per-job.
class Gauge {
 public:
  void set(long long v) noexcept;
  /// Raises the gauge to `v` if larger (CAS loop; monotonic high-water).
  void record_max(long long v) noexcept;
  long long value() const noexcept;

 private:
  friend class Registry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  std::atomic<long long> v_{0};
  const std::atomic<bool>* enabled_;
};

/// Fixed-bucket histogram: bucket i counts samples <= bounds[i] (first
/// matching bound wins); one overflow bucket past the last bound.  The
/// bounds are fixed at creation and shared by every thread; counts and the
/// exact sample sum are sharded like Counter.
class Histogram {
 public:
  void record(long long sample) noexcept;

  const std::vector<long long>& bounds() const { return bounds_; }
  /// Aggregated per-bucket counts (size bounds().size() + 1) — snapshot path.
  std::vector<long long> counts() const;
  long long count() const noexcept;
  long long sum() const noexcept;

 private:
  friend class Registry;
  Histogram(const std::atomic<bool>* enabled, std::vector<long long> bounds);
  struct alignas(64) HistSlot {
    std::vector<std::atomic<long long>> buckets;
    std::atomic<long long> sum{0};
  };
  std::vector<long long> bounds_;
  std::array<HistSlot, kMetricShards> slots_;
  const std::atomic<bool>* enabled_;
};

/// One aggregated scalar metric in a snapshot.
struct MetricValue {
  std::string name;
  long long value = 0;
};

/// One aggregated histogram in a snapshot.
struct HistogramValue {
  std::string name;
  std::vector<long long> bounds;  ///< upper-inclusive bucket bounds
  std::vector<long long> counts;  ///< bounds.size() + 1 (overflow last)
  long long count = 0;
  long long sum = 0;
};

/// Point-in-time aggregation of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<MetricValue> counters;
  std::vector<MetricValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of a named counter/gauge, 0 when absent (meter convenience).
  long long counter_or(const std::string& name, long long fallback = 0) const;
  long long gauge_or(const std::string& name, long long fallback = 0) const;
  /// Sum of every counter whose name starts with `prefix` and ends with
  /// `suffix` (e.g. per-worker pool counters).
  long long counter_prefix_sum(const std::string& prefix, const std::string& suffix) const;
};

/// The process-wide registry.  Handles returned by counter()/gauge()/
/// histogram() are stable for the life of the process (metrics are never
/// unregistered), so call sites cache them in function-local statics.
class Registry {
 public:
  static Registry& global();

  /// Telemetry master switch; disabled (the default) makes every recording
  /// operation a load+branch.  Flip only while no instrumented code runs
  /// (CLIs flip it before starting the pool).
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Get-or-create by name.  Creating is locked (cold); recording is not.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` must be non-empty and strictly ascending; a second lookup of
  /// the same name ignores its `bounds` argument (first registration wins).
  Histogram& histogram(const std::string& name, std::vector<long long> bounds);

  /// Aggregates every metric.  Safe to call while recorders run: counts are
  /// per-slot atomic reads (telemetry-consistent, not a linearization).
  MetricsSnapshot snapshot() const;

  /// Zeroes every slot of every metric (names stay registered).  For tests
  /// and benches that need per-phase deltas; call only while no instrumented
  /// code runs.
  void reset();

 private:
  Registry() = default;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  ///< guards the maps (creation + snapshot/reset)
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Renders a snapshot as the stable metrics JSON schema documented in
/// docs/FORMATS.md#metrics-json: {"lumi_metrics": 1, "counters": {...},
/// "gauges": {...}, "histograms": {...}} with keys in sorted order.
std::string metrics_json(const MetricsSnapshot& snapshot);

}  // namespace lumi::obs
