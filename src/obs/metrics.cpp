#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace lumi::obs {

namespace detail {

std::size_t shard_index() noexcept {
  // Round-robin slot assignment, once per thread.  The counter orders
  // nothing: any interleaving of assignments just maps threads onto slots
  // differently, and every slot is summed at snapshot.
  // lumi-lint: allow(relaxed-atomic)
  static std::atomic<unsigned> next{0};
  // lumi-lint: allow(relaxed-atomic) — see above; assignment only
  thread_local const unsigned idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx % kMetricShards;
}

}  // namespace detail

void Counter::add(long long v) noexcept {
  // Telemetry counter: no other memory is published under it, and snapshot()
  // only needs an eventually-complete sum.  lumi-lint: allow(relaxed-atomic)
  if (!enabled_->load(std::memory_order_relaxed)) return;
  // lumi-lint: allow(relaxed-atomic) — same proof as the enabled check
  slots_[detail::shard_index()].v.fetch_add(v, std::memory_order_relaxed);
}

long long Counter::value() const noexcept {
  long long total = 0;
  // lumi-lint: allow(relaxed-atomic) — snapshot read of telemetry slots
  for (const detail::Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Gauge::set(long long v) noexcept {
  // lumi-lint: allow(relaxed-atomic) — telemetry value, no ordering consumers
  if (!enabled_->load(std::memory_order_relaxed)) return;
  // lumi-lint: allow(relaxed-atomic) — same proof
  v_.store(v, std::memory_order_relaxed);
}

void Gauge::record_max(long long v) noexcept {
  // lumi-lint: allow(relaxed-atomic) — telemetry value, no ordering consumers
  if (!enabled_->load(std::memory_order_relaxed)) return;
  // lumi-lint: allow(relaxed-atomic) — monotonic CAS raise of a telemetry cell
  long long cur = v_.load(std::memory_order_relaxed);
  while (cur < v &&
         // lumi-lint: allow(relaxed-atomic) — same proof
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

long long Gauge::value() const noexcept {
  // lumi-lint: allow(relaxed-atomic) — snapshot read
  return v_.load(std::memory_order_relaxed);
}

Histogram::Histogram(const std::atomic<bool>* enabled, std::vector<long long> bounds)
    : bounds_(std::move(bounds)), enabled_(enabled) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: bounds must be non-empty");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  }
  for (HistSlot& s : slots_) {
    s.buckets = std::vector<std::atomic<long long>>(bounds_.size() + 1);
  }
}

void Histogram::record(long long sample) noexcept {
  // Telemetry histogram: slots carry no ordering obligations; snapshot sums
  // whatever has landed.  lumi-lint: allow(relaxed-atomic)
  if (!enabled_->load(std::memory_order_relaxed)) return;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), sample) - bounds_.begin());
  HistSlot& slot = slots_[detail::shard_index()];
  // lumi-lint: allow(relaxed-atomic) — same proof
  slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  // lumi-lint: allow(relaxed-atomic) — same proof
  slot.sum.fetch_add(sample, std::memory_order_relaxed);
}

std::vector<long long> Histogram::counts() const {
  std::vector<long long> out(bounds_.size() + 1, 0);
  for (const HistSlot& s : slots_) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      // lumi-lint: allow(relaxed-atomic) — snapshot read
      out[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

long long Histogram::count() const noexcept {
  long long total = 0;
  for (const HistSlot& s : slots_) {
    for (const std::atomic<long long>& b : s.buckets) {
      // lumi-lint: allow(relaxed-atomic) — snapshot read
      total += b.load(std::memory_order_relaxed);
    }
  }
  return total;
}

long long Histogram::sum() const noexcept {
  long long total = 0;
  // lumi-lint: allow(relaxed-atomic) — snapshot read
  for (const HistSlot& s : slots_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

long long MetricsSnapshot::counter_or(const std::string& name, long long fallback) const {
  for (const MetricValue& m : counters) {
    if (m.name == name) return m.value;
  }
  return fallback;
}

long long MetricsSnapshot::gauge_or(const std::string& name, long long fallback) const {
  for (const MetricValue& m : gauges) {
    if (m.name == name) return m.value;
  }
  return fallback;
}

long long MetricsSnapshot::counter_prefix_sum(const std::string& prefix,
                                              const std::string& suffix) const {
  long long total = 0;
  for (const MetricValue& m : counters) {
    if (m.name.size() < prefix.size() + suffix.size()) continue;
    if (m.name.compare(0, prefix.size(), prefix) != 0) continue;
    if (m.name.compare(m.name.size() - suffix.size(), suffix.size(), suffix) != 0) continue;
    total += m.value;
  }
  return total;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot.reset(new Counter(&enabled_));
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge(&enabled_));
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<long long> bounds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    // Construct before inserting: a throwing constructor (bad bounds) must
    // not leave a null entry behind for snapshot()/reset() to trip over.
    std::unique_ptr<Histogram> made(new Histogram(&enabled_, std::move(bounds)));
    it = histograms_.emplace(name, std::move(made)).first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.push_back({name, c->value()});
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.gauges.push_back({name, g->value()});
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.push_back({name, h->bounds(), h->counts(), h->count(), h->sum()});
  }
  return out;
}

void Registry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) {
    // lumi-lint: allow(relaxed-atomic) — reset of idle telemetry slots
    for (detail::Slot& s : c->slots_) s.v.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : gauges_) {
    // lumi-lint: allow(relaxed-atomic) — same as above
    g->v_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : histograms_) {
    for (Histogram::HistSlot& s : h->slots_) {
      // lumi-lint: allow(relaxed-atomic) — same as above
      for (std::atomic<long long>& b : s.buckets) b.store(0, std::memory_order_relaxed);
      // lumi-lint: allow(relaxed-atomic) — same as above
      s.sum.store(0, std::memory_order_relaxed);
    }
  }
}

namespace {

/// Minimal JSON string escape for metric names (which are ASCII identifiers
/// by convention; this keeps the writer safe for arbitrary names anyway).
std::string js(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void append_scalar_map(std::string& out, const char* key,
                       const std::vector<MetricValue>& values) {
  out += "  \"";
  out += key;
  out += "\": {";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    " + js(values[i].name) + ": " + std::to_string(values[i].value);
  }
  out += values.empty() ? "}" : "\n  }";
}

void append_list(std::string& out, const std::vector<long long>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(v[i]);
  }
  out += ']';
}

}  // namespace

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"lumi_metrics\": 1,\n";
  append_scalar_map(out, "counters", snapshot.counters);
  out += ",\n";
  append_scalar_map(out, "gauges", snapshot.gauges);
  out += ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramValue& h = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    " + js(h.name) + ": {\"bounds\": ";
    append_list(out, h.bounds);
    out += ", \"counts\": ";
    append_list(out, h.counts);
    out += ", \"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + std::to_string(h.sum) + "}";
  }
  out += snapshot.histograms.empty() ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

}  // namespace lumi::obs
