// Live campaign progress meter: a sampling thread that periodically reads
// the metrics registry (campaign.jobs_done, campaign.cells_done, resume
// skips, pool steal counters) and redraws one stderr status line —
// cells done/total, jobs done/total, jobs/s, ETA and the work-steal ratio.
//
// Strictly a telemetry *consumer*: it never touches campaign state, so it
// cannot perturb results (the obs-isolation contract).  The CLIs construct
// it around the blocking run call; it auto-disables when stderr is not a
// TTY (CI logs stay clean) and under --quiet.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <mutex>
#include <thread>

namespace lumi::obs {

class ProgressMeter {
 public:
  struct Options {
    std::size_t total_jobs = 0;
    std::size_t total_cells = 0;
    double interval_seconds = 0.5;
    /// Start even when stderr is not a TTY (tests; --progress).
    bool force = false;
    std::FILE* out = nullptr;  ///< null = stderr
  };

  /// Starts the sampling thread iff `force` or stderr is a TTY.  Requires
  /// the metrics registry to be enabled to see nonzero counters (the CLIs
  /// enable it whenever the meter runs).
  explicit ProgressMeter(const Options& options);
  /// Stops the thread, clears the status line, then prints one final
  /// newline-terminated summary (cells, jobs, wall, rate) — even when the
  /// live line never ran because stderr is not a TTY, so CI logs still
  /// capture the totals.  The CLIs skip constructing the meter under
  /// --quiet, which therefore also suppresses the summary.
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  bool active() const { return thread_.joinable(); }

  static bool stderr_is_tty();

 private:
  void loop();
  void render_line();
  void print_summary();

  Options options_;
  std::FILE* out_ = nullptr;
  long long jobs_at_start_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::size_t last_line_len_ = 0;
  std::thread thread_;
};

}  // namespace lumi::obs
