#include "src/obs/trace_event.hpp"

#include <cstdio>

namespace lumi::obs {

namespace {

// The installed writer.  Installation happens while no spans are live, so
// acquire/release is enough (and the common disabled path is one load).
std::atomic<TraceWriter*> g_writer{nullptr};

std::uint32_t next_thread_id() noexcept {
  // Dense ids orders nothing — any interleaving just numbers threads
  // differently in the trace.  lumi-lint: allow(relaxed-atomic)
  static std::atomic<std::uint32_t> next{1};
  // lumi-lint: allow(relaxed-atomic) — see above
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceWriter::TraceWriter(std::string path)
    : path_(std::move(path)), epoch_(std::chrono::steady_clock::now()) {
  events_.reserve(4096);
}

TraceWriter::~TraceWriter() {
  if (current() == this) install(nullptr);
}

void TraceWriter::add_complete(const char* name, const char* cat,
                               std::chrono::steady_clock::time_point start,
                               std::chrono::steady_clock::time_point end, std::uint32_t tid,
                               const char* arg_key, long long arg_value) {
  std::lock_guard lock(mu_);
  events_.push_back({name, cat, start, end, tid, arg_key, arg_value});
}

std::size_t TraceWriter::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

bool TraceWriter::flush() {
  std::vector<Event> events;
  {
    std::lock_guard lock(mu_);
    events = events_;
  }
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) return false;
  std::fputs("{\"traceEvents\": [\n", f);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    // Floor both endpoints against the shared epoch, then derive dur: with a
    // monotonic floor, a child interval stays inside its parent's in the
    // rendered integers (flooring dur separately would not guarantee that).
    const auto ts =
        std::chrono::duration_cast<std::chrono::microseconds>(e.start - epoch_).count();
    const auto te =
        std::chrono::duration_cast<std::chrono::microseconds>(e.end - epoch_).count();
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %lld, "
                 "\"dur\": %lld, \"pid\": 1, \"tid\": %u",
                 e.name, e.cat, static_cast<long long>(ts),
                 static_cast<long long>(te - ts), e.tid);
    if (e.arg_key != nullptr) {
      std::fprintf(f, ", \"args\": {\"%s\": %lld}", e.arg_key, e.arg_value);
    }
    std::fputs(i + 1 == events.size() ? "}\n" : "},\n", f);
  }
  std::fputs("]}\n", f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

void TraceWriter::install(TraceWriter* w) { g_writer.store(w, std::memory_order_release); }

TraceWriter* TraceWriter::current() { return g_writer.load(std::memory_order_acquire); }

std::uint32_t TraceWriter::thread_id() {
  thread_local const std::uint32_t id = next_thread_id();
  return id;
}

}  // namespace lumi::obs
