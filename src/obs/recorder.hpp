// Execution flight recorder: a bounded ring buffer of per-instant structured
// events (who activated, which (rule, symmetry) fired, color before/after,
// movement) fed by both engines, plus configuration-hash tracking that turns
// "did not terminate" into a diagnosis.
//
// Design constraints (docs/OBSERVABILITY.md#flight-recorder):
//  - Strictly an observer: attaching a recorder never changes a run's control
//    flow, results or stats — the engines call the hooks and nothing else.
//    Report/checkpoint byte-identity with recording on vs off is pinned by
//    tests/test_obs_identity.cpp, and the obs-isolation lint rule keeps
//    recorder symbols out of the report/checkpoint serializers.
//  - Near-zero when off: a run without a recorder pays one pointer test per
//    instant (RunOptions::recorder is null by default — the same default-off
//    discipline as the metrics registry).  bench_campaign gates the off-path
//    overhead at 3%.
//  - Bounded: the ring keeps the newest `capacity` events (the tail is what
//    explains an anomaly); `events_seen()` still counts everything.
//
// Termination diagnosis: under a deterministic memoryless scheduler (FSYNC's
// first-behavior adversary), the next configuration is a pure function of the
// current one, so a `canonical_hash` revisit proves the execution loops
// forever.  With `detect_cycles` armed the recorder tracks a seen-hash map
// and records the first recurrence as a CycleWitness; run_doctor certifies a
// witness by replaying the cycle and checking the placement actually recurs
// (src/campaign/doctor.hpp), so a 64-bit hash collision can never survive to
// a certified verdict.  Contrapositive of the proof: a terminating run never
// revisits a configuration, so a budget-limited terminating run is diagnosed
// `budget-exhausted`, never `cycle`.
//
// Anomalous runs dump a canonical versioned `.lumirec` file — initial
// configuration + algorithm text + topology spec + scheduler seed + event
// tail + final outcome, format documented in docs/FORMATS.md#lumirec —
// written atomically (tmp + rename, like checkpoints).  The file carries
// everything a deterministic replay needs; `run_doctor` re-executes it and
// hard-errors unless the final configuration and stats are byte-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/configuration.hpp"
#include "src/engine/sync_engine.hpp"

namespace lumi {
struct RunResult;  // src/engine/runner.hpp; full include would be circular
}  // namespace lumi

namespace lumi::obs {

/// What one recorded event describes: a full synchronous activation, or one
/// of the three ASYNC cycle events.
enum class EventKind : std::uint8_t {
  SyncAct,     ///< FSYNC/SSYNC: one robot's full cycle within an instant
  Look,        ///< ASYNC: snapshot taken, decision latched
  ComputeEnd,  ///< ASYNC: the decided color becomes visible
  Move,        ///< ASYNC: the decided movement is applied
};

std::string to_string(EventKind kind);
/// Parses the names printed by to_string; throws std::invalid_argument.
EventKind event_kind_from_name(const std::string& name);

/// One structured event.  Look/SyncAct carry the full decision (rule,
/// symmetry, colors, movement in the global frame); ComputeEnd/Move carry
/// only the robot (their effect is the pending decision's, already recorded
/// at Look time).
struct RecordedEvent {
  long instant = 0;  ///< sync instant or async event index (0-based)
  EventKind kind = EventKind::SyncAct;
  int robot = -1;
  int rule_index = -1;  ///< -1 when the event carries no decision
  Sym sym;
  Color color_before = Color::G;
  Color color_after = Color::G;
  std::optional<Dir> move;  ///< global frame; nullopt = stay / not applicable

  friend bool operator==(const RecordedEvent&, const RecordedEvent&) = default;
};

/// The flight recorder.  One recorder observes one run at a time (begin_run
/// resets per-run state); it is not thread-safe — each run owns its own.
class Recorder {
 public:
  struct Options {
    /// Ring slots: the newest `capacity` events survive (clamped to >= 1).
    std::size_t capacity = 4096;
    /// Track a seen-hash map of instant-boundary configurations and record
    /// the first canonical_hash recurrence.  Only a *proof* of
    /// non-termination under a deterministic memoryless scheduler (FSYNC);
    /// callers arm it exactly there.
    bool detect_cycles = false;

    friend bool operator==(const Options&, const Options&) = default;
  };

  /// Where the recorded run came from — everything a deterministic replay
  /// needs.  `algorithm_text` is dsl::serialize of the algorithm (the file is
  /// self-contained even for tables outside the registry); `scheduler` is
  /// the campaign spelling ("fsync", "ssync-random", ...).
  struct Provenance {
    std::string section;         ///< registry section; may be empty (ad-hoc table)
    std::string algorithm_text;  ///< dsl text, parseable by dsl::parse
    std::string topo_spec;       ///< Topology::spec()
    int rows = 0;
    int cols = 0;
    std::string scheduler;
    unsigned seed = 0;
    long max_steps = 0;
    bool require_unique_actions = false;

    friend bool operator==(const Provenance&, const Provenance&) = default;
  };

  /// First configuration-hash recurrence: the configuration entering instant
  /// `start` reappeared entering instant `start + length`.
  struct CycleWitness {
    long start = 0;
    long length = 0;
    std::uint64_t hash = 0;

    friend bool operator==(const CycleWitness&, const CycleWitness&) = default;
  };

  Recorder();  ///< default options (gcc bug 88165 forbids `Options options = {}`)
  explicit Recorder(Options options);

  // --- engine-facing hooks (called only when a run carries a recorder) -----

  /// Starts a fresh run: captures the initial robots, clears the ring and the
  /// seen-hash state, and (when armed) hashes the initial configuration.
  void begin_run(const Configuration& initial);
  /// One synchronous instant, called with the configuration *before*
  /// apply_sync_step and the scheduler's selection: records one SyncAct per
  /// selected robot, in selection order.
  void record_sync_instant(long instant, const Configuration& before,
                           std::span<const RobotAction> selected);
  /// One ASYNC event.  `decision` is the latched action for Look events and
  /// null for ComputeEnd/Move.
  void record_async_event(long event, EventKind kind, int robot, Color color_before,
                          const Action* decision);
  /// The configuration entering instant `instant` (called after each applied
  /// step): maintains the final-robots snapshot and the cycle detector.
  void record_configuration(long instant, const Configuration& config);

  // --- consumer surface ----------------------------------------------------

  const Options& options() const { return options_; }
  void set_provenance(Provenance prov) { prov_ = std::move(prov); }
  const Provenance& provenance() const { return prov_; }
  const std::vector<Robot>& initial_robots() const { return initial_; }
  /// Robots of the last configuration seen (the final configuration once the
  /// run returned); the initial robots when no instant completed.
  const std::vector<Robot>& last_robots() const { return last_; }
  long long events_seen() const { return seen_; }
  /// The surviving tail, oldest first.
  std::vector<RecordedEvent> tail() const;
  const std::optional<CycleWitness>& cycle() const { return cycle_; }

 private:
  void push(const RecordedEvent& event);

  Options options_;
  Provenance prov_;
  std::vector<Robot> initial_;
  std::vector<Robot> last_;
  std::vector<RecordedEvent> ring_;
  std::size_t next_ = 0;  ///< ring write cursor once the ring is full
  long long seen_ = 0;
  /// canonical_hash -> instant of first occurrence.  Lookup-only (never
  /// iterated), so unordered is safe; frozen once a witness is found, so a
  /// looping run cannot grow it without bound.
  std::unordered_map<std::uint64_t, long> first_seen_;
  std::optional<CycleWitness> cycle_;
};

/// Why a recorded run stopped.
enum class Diagnosis : std::uint8_t {
  Terminated,       ///< clean termination (not an anomaly)
  Cycle,            ///< hash recurrence under a deterministic memoryless scheduler
  BudgetExhausted,  ///< step/event budget ran out with no recurrence seen
  VerifierFailure,  ///< unique-actions violation, scheduler bug or exception
};

std::string to_string(Diagnosis d);
/// Parses the names printed by to_string; throws std::invalid_argument.
Diagnosis diagnosis_from_name(const std::string& name);

/// Classifies a finished run observed by `rec`.  A cycle witness wins over
/// budget exhaustion (the exhaustion is a consequence of the loop).
Diagnosis diagnose(const Recorder& rec, const RunResult& result);

/// A complete recording: what a `.lumirec` file holds.
struct Recording {
  int version = 1;
  Recorder::Options options;  ///< capacity + detect_cycles of the recording run
  Recorder::Provenance prov;
  std::vector<Robot> initial;  ///< index-ordered initial robots
  Diagnosis diagnosis = Diagnosis::Terminated;
  std::optional<Recorder::CycleWitness> cycle;
  long long events_seen = 0;
  std::vector<RecordedEvent> events;  ///< surviving tail, oldest first
  // Final outcome, the replay-identity target:
  bool terminated = false;
  bool explored_all = false;
  long instants = 0;
  long activations = 0;
  long moves = 0;
  long color_changes = 0;  ///< the four result-bearing RunStats fields;
                           ///< match_* are perf diagnostics and excluded
  std::string failure;
  std::vector<Robot> final_robots;  ///< index-ordered

  friend bool operator==(const Recording&, const Recording&) = default;
};

/// Assembles a Recording from a recorder and the run's result (provenance
/// must have been set on the recorder).
Recording make_recording(const Recorder& rec, const RunResult& result);

/// Canonical text serialization (docs/FORMATS.md#lumirec).  parse(serialize)
/// is the identity, and serialize(parse(text)) == text for canonical files.
std::string recording_serialize(const Recording& rec);
/// Throws std::runtime_error naming the line on malformed input.
Recording recording_parse(const std::string& text);

/// Writes via tmp-file + atomic rename (a reader never sees a torn file);
/// false on I/O failure.
bool recording_write(const std::string& path, const Recording& rec);
/// std::nullopt when the file cannot be opened; throws std::runtime_error on
/// malformed content (a present-but-corrupt recording must not be mistaken
/// for an absent one).
std::optional<Recording> recording_load(const std::string& path);

}  // namespace lumi::obs
