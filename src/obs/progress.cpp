#include "src/obs/progress.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "src/obs/metrics.hpp"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace lumi::obs {

bool ProgressMeter::stderr_is_tty() {
#if defined(_WIN32)
  return false;
#else
  return isatty(fileno(stderr)) != 0;
#endif
}

ProgressMeter::ProgressMeter(const Options& options) : options_(options) {
  out_ = options_.out != nullptr ? options_.out : stderr;
  // Baseline and clock are taken even when the live line stays off: the
  // final summary printed by the destructor needs them either way.
  const MetricsSnapshot s = Registry::global().snapshot();
  jobs_at_start_ = s.counter_or("campaign.jobs_done");
  start_ = std::chrono::steady_clock::now();
  if (!options_.force && !stderr_is_tty()) return;
  thread_ = std::thread([this] { loop(); });
}

ProgressMeter::~ProgressMeter() {
  if (thread_.joinable()) {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    render_line();  // final state, then clear
    if (last_line_len_ > 0) {
      std::fprintf(out_, "\r%*s\r", static_cast<int>(last_line_len_), "");
      std::fflush(out_);
    }
  }
  // One newline-terminated summary regardless of TTY, so CI logs capture
  // the totals that the self-erasing live line never leaves behind.
  print_summary();
}

void ProgressMeter::print_summary() {
  const MetricsSnapshot s = Registry::global().snapshot();
  const long long done_new = s.counter_or("campaign.jobs_done") - jobs_at_start_;
  const long long done = done_new + s.counter_or("orchestrate.resume_skips");
  const long long cells = s.counter_or("campaign.cells_done");
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  const double rate = elapsed > 0 ? static_cast<double>(done_new) / elapsed : 0.0;
  std::fprintf(out_, "campaign: cells %lld/%zu, jobs %lld/%zu in %.2fs (%.1f jobs/s)\n",
               cells, options_.total_cells, done, options_.total_jobs, elapsed, rate);
  std::fflush(out_);
}

void ProgressMeter::loop() {
  std::unique_lock lock(mu_);
  const auto interval =
      std::chrono::duration<double>(std::max(options_.interval_seconds, 0.05));
  while (!stop_) {
    cv_.wait_for(lock, interval);
    if (stop_) return;
    render_line();
  }
}

void ProgressMeter::render_line() {
  const MetricsSnapshot s = Registry::global().snapshot();
  const long long done_new = s.counter_or("campaign.jobs_done") - jobs_at_start_;
  const long long skipped = s.counter_or("orchestrate.resume_skips");
  const long long done = done_new + skipped;
  const long long cells = s.counter_or("campaign.cells_done");
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  const double rate = elapsed > 0 ? static_cast<double>(done_new) / elapsed : 0.0;
  const long long remaining =
      std::max<long long>(0, static_cast<long long>(options_.total_jobs) - done);
  const double eta = rate > 0 ? static_cast<double>(remaining) / rate : 0.0;
  const long long executed = s.counter_prefix_sum("pool.worker.", ".executed");
  const long long stolen = s.counter_prefix_sum("pool.worker.", ".stolen");
  const double steal_pct =
      executed > 0 ? 100.0 * static_cast<double>(stolen) / static_cast<double>(executed) : 0.0;

  char line[256];
  int n = std::snprintf(line, sizeof(line),
                        "cells %lld/%zu  jobs %lld/%zu  %.1f jobs/s  ETA %.0fs  steal %.0f%%",
                        cells, options_.total_cells, done, options_.total_jobs, rate,
                        rate > 0 ? eta : 0.0, steal_pct);
  if (n < 0) return;
  const std::size_t len = static_cast<std::size_t>(n);
  // Overwrite the previous line fully: pad with spaces when the new one is
  // shorter so stale characters never linger.
  std::fprintf(out_, "\r%s%*s", line,
               static_cast<int>(last_line_len_ > len ? last_line_len_ - len : 0), "");
  std::fflush(out_);
  last_line_len_ = len;
}

}  // namespace lumi::obs
