// Algorithm 6 (paper §4.3.1): ASYNC, phi=2, colors {G,W,B}, common
// chirality, k=2.  Optimal robot count.
//
// ASYNC-safety comes from strict alternation: in every reachable
// configuration exactly one robot is enabled, so stale snapshots are
// harmless.  Travelling east the pair is (G,W) alternating between compact
// (distance 1) and stretched (distance 2); travelling west it is (B,W).
// Turning west (Fig. 12): W drops (R3), then G recolors B and drops (R4) —
// the recolored-but-not-yet-moved intermediate enables nothing.  Turning
// east (Fig. 13): B drops (R7), recolors to G in place (R8), then W drops
// (R9).
#include "src/algorithms/algorithms.hpp"

namespace lumi::algorithms {

Algorithm algorithm6() {
  using enum Color;
  const CellPattern empty = CellPattern::empty();
  const CellPattern wall = CellPattern::wall();

  Algorithm alg;
  alg.name = "alg06-async-phi2-l3-chir-k2";
  alg.paper_section = "4.3.1";
  alg.model = Synchrony::Async;
  alg.phi = 2;
  alg.num_colors = 3;
  alg.chirality = Chirality::Common;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}, {{0, 1}, W}};

  // Proceed east: W stretches ahead, then G closes the gap.
  alg.rules.push_back(RuleBuilder("R1", W).cell("W", {G}).cell("E", empty).moves(Dir::East).build());
  alg.rules.push_back(RuleBuilder("R2", G).cell("EE", {W}).cell("E", empty).moves(Dir::East).build());
  // Turn west.
  alg.rules.push_back(RuleBuilder("R3", W)
                          .cell("W", {G})
                          .cell("E", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R4", G)
                          .cell("SE", {W})
                          .cell("EE", wall)
                          .cell("E", empty)
                          .cell("S", empty)
                          .becomes(B)
                          .moves(Dir::South)
                          .build());
  // Proceed west: B stretches ahead, then W closes the gap.
  alg.rules.push_back(RuleBuilder("R5", B).cell("E", {W}).cell("W", empty).moves(Dir::West).build());
  alg.rules.push_back(RuleBuilder("R6", W).cell("WW", {B}).cell("W", empty).moves(Dir::West).build());
  // Turn east.
  alg.rules.push_back(RuleBuilder("R7", B)
                          .cell("E", {W})
                          .cell("W", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R8", B).cell("NE", {W}).cell("W", wall).becomes(G).idle().build());
  alg.rules.push_back(RuleBuilder("R9", W)
                          .cell("SW", {G})
                          .cell("N", empty)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());

  alg.validate();
  return alg;
}

}  // namespace lumi::algorithms
