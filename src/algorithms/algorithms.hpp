// The paper's fourteen terminating grid exploration algorithms.
//
// Rule guards are reconstructed from the prose execution traces (see
// DESIGN.md §1): the paper gives every algorithm's initial configuration,
// rule actions, per-phase configuration sequences and terminal
// configurations in text; the guard diagrams themselves are figures.  Each
// factory returns a validated Algorithm whose behavior matches those traces.
#pragma once

#include "src/core/algorithm.hpp"

namespace lumi::algorithms {

// --- FSYNC (paper Section 4.2) ---------------------------------------------
/// §4.2.1, Algorithm 1: phi=2, 2 colors, common chirality, k=2 (optimal).
Algorithm algorithm1();
/// §4.2.2, Algorithm 2: phi=2, 2 colors, no chirality, k=3.
Algorithm algorithm2();
/// §4.2.5, Algorithm 3: phi=1, 3 colors, common chirality, k=2 (optimal).
Algorithm algorithm3();
/// §4.2.6, Algorithm 4: phi=1, 3 colors, no chirality, k=4.
Algorithm algorithm4();
/// §4.2.7, Algorithm 5: phi=1, 2 colors, common chirality, k=3 (optimal).
Algorithm algorithm5();

// --- ASYNC (paper Section 4.3; also correct under SSYNC/FSYNC) -------------
/// §4.3.1, Algorithm 6: phi=2, 3 colors, common chirality, k=2 (optimal).
Algorithm algorithm6();
/// §4.3.2, Algorithm 7: phi=2, 3 colors, no chirality, k=3.
Algorithm algorithm7();
/// §4.3.3, Algorithm 8: phi=2, 2 colors, common chirality, k=3.
Algorithm algorithm8();
/// §4.3.4, Algorithm 9: phi=2, 2 colors, no chirality, k=4.
Algorithm algorithm9();
/// §4.3.5, Algorithm 10: phi=1, 3 colors, common chirality, k=3 (optimal).
Algorithm algorithm10();
/// §4.3.6, Algorithm 11: phi=1, 3 colors, no chirality, k=6.  Proceeding
/// rules R1-R6 follow the paper; the turning rules are our own design with
/// the same contract (see DESIGN.md §1).
Algorithm algorithm11();

// --- Derived algorithms (color-duplication, paper §4.2.3/4.2.4/4.2.8) ------
/// §4.2.3: phi=2, 1 color, common chirality, k=3 (optimal) — Algorithm 1
/// with the W robot represented by two G robots.
Algorithm derived423();
/// §4.2.4: phi=2, 1 color, no chirality, k=4 — Algorithm 2 transformed.
Algorithm derived424();
/// §4.2.8: phi=1, 2 colors, no chirality, k=5 — Algorithm 4 with the B robot
/// represented by two G robots.
Algorithm derived428();

}  // namespace lumi::algorithms
