// Algorithm 8 (paper §4.3.3): ASYNC, phi=2, colors {G,W}, common chirality,
// k=3.
//
// Eastward form: a vertical G pair with W east of the north G; the three
// robots step east one at a time (R1-R3).  Westward form: a horizontal W
// pair with G between/above... precisely W,G on the north row and W under G.
// The turns (Figs. 15-16) run seven sequential steps each, including the
// in-place recolorings R5 (G->W at the east wall) and R13 (W->G at the west
// wall).  Exactly one robot is enabled in every reachable configuration.
#include "src/algorithms/algorithms.hpp"

namespace lumi::algorithms {

Algorithm algorithm8() {
  using enum Color;
  const CellPattern empty = CellPattern::empty();
  const CellPattern wall = CellPattern::wall();

  Algorithm alg;
  alg.name = "alg08-async-phi2-l2-chir-k3";
  alg.paper_section = "4.3.3";
  alg.model = Synchrony::Async;
  alg.phi = 2;
  alg.num_colors = 2;
  alg.chirality = Chirality::Common;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}, {{0, 1}, W}, {{1, 0}, G}};

  // Proceed east: W first, then the north G, then the south G.
  alg.rules.push_back(RuleBuilder("R1", W)
                          .cell("W", {G})
                          .cell("SW", {G})
                          .cell("E", empty)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R2", G)
                          .cell("S", {G})
                          .cell("EE", {W})
                          .cell("E", empty)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R3", G)
                          .cell("NE", {G})
                          .cell("N", empty)
                          .cell("E", empty)
                          .moves(Dir::East)
                          .build());
  // Turn west (Fig. 15).
  alg.rules.push_back(RuleBuilder("R4", W)
                          .cell("W", {G})
                          .cell("SW", {G})
                          .cell("E", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R5", G)
                          .cell("N", {G})
                          .cell("E", {W})
                          .cell("W", empty)
                          .cell("S", empty)
                          .becomes(W)
                          .idle()
                          .build());
  alg.rules.push_back(RuleBuilder("R6", G)
                          .cell("S", {W})
                          .cell("SE", {W})
                          .cell("E", empty)
                          .cell("EE", wall)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R7", W)
                          .cell("N", {G})
                          .cell("W", {W})
                          .cell("E", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R8", G)
                          .cell("SW", {W})
                          .cell("SS", {W})
                          .cell("E", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  // Proceed west: the west W, then G, then the east W.
  alg.rules.push_back(RuleBuilder("R9", W)
                          .cell("E", {G})
                          .cell("SE", {W})
                          .cell("W", empty)
                          .moves(Dir::West)
                          .build());
  alg.rules.push_back(RuleBuilder("R10", G)
                          .cell("S", {W})
                          .cell("WW", {W})
                          .cell("W", empty)
                          .moves(Dir::West)
                          .build());
  alg.rules.push_back(RuleBuilder("R11", W)
                          .cell("NW", {G})
                          .cell("N", empty)
                          .cell("W", empty)
                          .moves(Dir::West)
                          .build());
  // Turn east (Fig. 16).
  alg.rules.push_back(RuleBuilder("R12", W)
                          .cell("E", {G})
                          .cell("SE", {W})
                          .cell("W", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R13", W)
                          .cell("NE", {G})
                          .cell("E", {W})
                          .cell("W", wall)
                          .cell("S", empty)
                          .becomes(G)
                          .idle()
                          .build());
  alg.rules.push_back(RuleBuilder("R14", G)
                          .cell("S", {W})
                          .cell("SW", {G})
                          .cell("W", empty)
                          .cell("WW", wall)
                          .moves(Dir::West)
                          .build());
  alg.rules.push_back(RuleBuilder("R15", G)
                          .cell("N", {G})
                          .cell("E", {W})
                          .cell("W", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R16", G)
                          .cell("SE", {W})
                          .cell("SS", {G})
                          .cell("W", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());

  alg.validate();
  return alg;
}

}  // namespace lumi::algorithms
