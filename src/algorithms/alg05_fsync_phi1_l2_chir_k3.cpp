// Algorithm 5 (paper §4.2.7): FSYNC, phi=1, colors {G,W}, common chirality,
// k=3.  Optimal robot count.
//
// Eastward form:  G G      Westward form:  W W
//                 W                          G
// (the hanging robot marks the trailing side; the color pattern encodes the
// travel direction).  Turning west (Fig. 10) funnels the three robots through
// a transient {G,W} stack at the east wall; turning east (Fig. 11) mirrors
// the dance at the west wall with the roles of G and W exchanged
// (R11-R14 correspond to R4-R7).  Termination leaves a three-robot stack in
// the final corner.
#include "src/algorithms/algorithms.hpp"

namespace lumi::algorithms {

Algorithm algorithm5() {
  using enum Color;
  const CellPattern empty = CellPattern::empty();
  const CellPattern wall = CellPattern::wall();

  Algorithm alg;
  alg.name = "alg05-fsync-phi1-l2-chir-k3";
  alg.paper_section = "4.2.7";
  alg.model = Synchrony::Fsync;
  alg.phi = 1;
  alg.num_colors = 2;
  alg.chirality = Chirality::Common;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}, {{0, 1}, G}, {{1, 0}, W}};

  // Proceed east.
  alg.rules.push_back(RuleBuilder("R1", G).cell("W", {G}).cell("E", empty).moves(Dir::East).build());
  alg.rules.push_back(RuleBuilder("R2", G).cell("E", {G}).cell("S", {W}).moves(Dir::East).build());
  alg.rules.push_back(RuleBuilder("R3", W).cell("N", {G}).cell("E", empty).moves(Dir::East).build());
  // Turn west.
  alg.rules.push_back(RuleBuilder("R4", G)
                          .cell("W", {G})
                          .cell("E", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R5", G)
                          .center({G, W})
                          .cell("N", {G})
                          .cell("E", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R6", W)
                          .center({G, W})
                          .cell("N", {G})
                          .cell("E", wall)
                          .cell("W", empty)
                          .cell("S", empty)
                          .moves(Dir::West)
                          .build());
  alg.rules.push_back(RuleBuilder("R7", G)
                          .cell("S", {G, W})
                          .cell("E", wall)
                          .becomes(W)
                          .moves(Dir::South)
                          .build());
  // Proceed west.
  alg.rules.push_back(RuleBuilder("R8", W).cell("E", {W}).cell("W", empty).moves(Dir::West).build());
  alg.rules.push_back(RuleBuilder("R9", W).cell("W", {W}).cell("S", {G}).moves(Dir::West).build());
  alg.rules.push_back(RuleBuilder("R10", G).cell("N", {W}).cell("W", empty).moves(Dir::West).build());
  // Turn east (mirror of the west turn with G and W exchanged).
  alg.rules.push_back(RuleBuilder("R11", W)
                          .cell("E", {W})
                          .cell("W", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R12", W)
                          .center({G, W})
                          .cell("N", {W})
                          .cell("W", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R13", G)
                          .center({G, W})
                          .cell("N", {W})
                          .cell("W", wall)
                          .cell("E", empty)
                          .cell("S", empty)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R14", W)
                          .cell("S", {G, W})
                          .cell("W", wall)
                          .becomes(G)
                          .moves(Dir::South)
                          .build());

  alg.validate();
  return alg;
}

}  // namespace lumi::algorithms
