// Algorithm 1 (paper §4.2.1): FSYNC, phi=2, colors {G,W}, common chirality,
// k=2 robots.  Optimal robot count.
//
// Shape of the execution (reconstructed from Figs. 4-5 and their prose):
//  * proceed east:  G at (r,j), W at (r,j+1); both step east each instant.
//  * turn west:     at the east wall G drops south (R3); then W drops south
//                   while G steps west (R4+R5), yielding the westward form.
//  * proceed west:  G at (r,j), W at (r,j+2) (gap of one); both step west.
//  * turn east:     at the west wall G drops south while W keeps stepping
//                   (R8+R7); then W drops (R9), recreating the eastward form.
//  * termination:   odd m — eastward form wedged in the southeast corner;
//                   even m — R10+R7 merge both robots onto v_{m-1,1}.
#include "src/algorithms/algorithms.hpp"

namespace lumi::algorithms {

Algorithm algorithm1() {
  using enum Color;
  const CellPattern empty = CellPattern::empty();
  const CellPattern wall = CellPattern::wall();

  Algorithm alg;
  alg.name = "alg01-fsync-phi2-l2-chir-k2";
  alg.paper_section = "4.2.1";
  alg.model = Synchrony::Fsync;
  alg.phi = 2;
  alg.num_colors = 2;
  alg.chirality = Chirality::Common;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}, {{0, 1}, W}};

  // Proceed east.
  alg.rules.push_back(RuleBuilder("R1", W).cell("W", {G}).cell("E", empty).moves(Dir::East).build());
  alg.rules.push_back(RuleBuilder("R2", G).cell("E", {W}).cell("EE", empty).moves(Dir::East).build());
  // Turn west (east wall reached).
  alg.rules.push_back(RuleBuilder("R3", G)
                          .cell("E", {W})
                          .cell("EE", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R4", W)
                          .cell("SW", {G})
                          .cell("E", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R5", G).cell("NE", {W}).cell("W", empty).moves(Dir::West).build());
  // Proceed west.
  alg.rules.push_back(RuleBuilder("R6", G).cell("EE", {W}).cell("W", empty).moves(Dir::West).build());
  alg.rules.push_back(RuleBuilder("R7", W).cell("WW", {G}).cell("W", empty).moves(Dir::West).build());
  // Turn east (west wall reached).
  alg.rules.push_back(RuleBuilder("R8", G)
                          .cell("EE", {W})
                          .cell("W", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R9", W)
                          .cell("SW", {G})
                          .cell("WW", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  // End of exploration, even m: converge onto a single node.
  alg.rules.push_back(RuleBuilder("R10", G)
                          .cell("EE", {W})
                          .cell("W", wall)
                          .cell("S", wall)
                          .cell("E", empty)
                          .moves(Dir::East)
                          .build());

  alg.validate();
  return alg;
}

}  // namespace lumi::algorithms
