// Algorithm 10 (paper §4.3.5): ASYNC, phi=1, colors {G,W,B}, common
// chirality, k=3.  Optimal robot count.
//
// A three-robot "train" crawls by leapfrogging through two-robot stacks, the
// technique of Ooshita & Tixeuil's ring exploration (paper Fig. 19):
//   G,W,W --R1--> {G,W},W --R2--> G,{G,W} --R3--> .,G,W,W
// Eastward the train is (G,W,W); westward it is (B,B,W) with stacks {W,B}
// (rules R7-R9 replay R1-R3 with colors G->W, W->B under mirrored views).
// Turning west (Fig. 20): R4 converts the leading stack's G to B heading
// south, R5/R6 thread the remaining robots down, R7 re-enters the westward
// crawl.  Turning east (Fig. 21) undoes the recoloring via R10-R15.
#include "src/algorithms/algorithms.hpp"

namespace lumi::algorithms {

Algorithm algorithm10() {
  using enum Color;
  const CellPattern empty = CellPattern::empty();
  const CellPattern wall = CellPattern::wall();

  Algorithm alg;
  alg.name = "alg10-async-phi1-l3-chir-k3";
  alg.paper_section = "4.3.5";
  alg.model = Synchrony::Async;
  alg.phi = 1;
  alg.num_colors = 3;
  alg.chirality = Chirality::Common;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}, {{0, 1}, W}, {{0, 2}, W}};

  // Proceed east (Fig. 19): the rear robot leapfrogs onto the middle one.
  alg.rules.push_back(RuleBuilder("R1", G).cell("E", {W}).moves(Dir::East).build());
  alg.rules.push_back(
      RuleBuilder("R2", W).center({G, W}).cell("E", {W}).becomes(G).moves(Dir::East).build());
  alg.rules.push_back(RuleBuilder("R3", G)
                          .center({G, W})
                          .cell("W", {G})
                          .cell("E", empty)
                          .becomes(W)
                          .moves(Dir::East)
                          .build());
  // Turn west (Fig. 20).
  alg.rules.push_back(RuleBuilder("R4", G)
                          .center({G, W})
                          .cell("W", {G})
                          .cell("E", wall)
                          .cell("S", empty)
                          .becomes(B)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R5", G)
                          .center({G, W})
                          .cell("S", {B})
                          .cell("E", wall)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R6", G)
                          .center({G, B})
                          .cell("N", {W})
                          .cell("E", wall)
                          .cell("W", empty)
                          .becomes(B)
                          .moves(Dir::West)
                          .build());
  // Proceed west: R7-R9 mirror R1-R3 with (G,W) -> (W,B).
  alg.rules.push_back(RuleBuilder("R7", W).cell("E", {B}).moves(Dir::East).build());
  alg.rules.push_back(
      RuleBuilder("R8", B).center({W, B}).cell("W", {B}).becomes(W).moves(Dir::West).build());
  alg.rules.push_back(RuleBuilder("R9", W)
                          .center({W, B})
                          .cell("E", {W})
                          .cell("W", empty)
                          .becomes(B)
                          .moves(Dir::West)
                          .build());
  // Turn east (Fig. 21).
  alg.rules.push_back(RuleBuilder("R10", W)
                          .center({W, B})
                          .cell("E", {W})
                          .cell("W", wall)
                          .cell("S", empty)
                          .cell("N", empty)
                          .becomes(G)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R11", W)
                          .center({W, B})
                          .cell("S", {G})
                          .cell("W", wall)
                          .cell("N", empty)
                          .becomes(B)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R12", B)
                          .center({G, B})
                          .cell("N", {B})
                          .cell("W", wall)
                          .cell("E", empty)
                          .becomes(G)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R13", B).cell("S", {G}).cell("W", wall).moves(Dir::South).build());
  alg.rules.push_back(RuleBuilder("R14", B)
                          .center({G, B})
                          .cell("E", {G})
                          .cell("W", wall)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R15", B)
                          .center({G, B})
                          .cell("W", {G})
                          .cell("E", empty)
                          .becomes(W)
                          .idle()
                          .build());

  alg.validate();
  return alg;
}

}  // namespace lumi::algorithms
