// Color-duplication transform (paper §4.2.3, §4.2.4, §4.2.8): in an FSYNC
// algorithm whose executions never recolor robots of color `from` and never
// co-locate `from` with other colors in guard multisets beyond what the
// guards state, the robot of color `from` can be *represented by two robots*
// of color `to`, reducing the palette by one at the cost of one robot.
#pragma once

#include <string>

#include "src/core/algorithm.hpp"

namespace lumi::algorithms {

/// Returns a copy of `base` where every robot of color `from` becomes two
/// robots of color `to`: every occurrence of `from` in initial placements
/// and guard multisets is replaced by two `to`s, and rules acting on `from`
/// act on `to` with the doubled center.  Throws std::invalid_argument if
/// `base` recolors `from` robots (the transform would be unsound) or is not
/// an FSYNC algorithm (the two representatives must move in lockstep).
Algorithm duplicate_color(const Algorithm& base, Color from, Color to, std::string name,
                          std::string paper_section);

}  // namespace lumi::algorithms
