#include "src/algorithms/transform.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/algorithms/algorithms.hpp"

namespace lumi::algorithms {

namespace {

ColorMultiset replace_in_multiset(const ColorMultiset& ms, Color from, Color to) {
  ColorMultiset out;
  for (int i = 0; i < kMaxColors; ++i) {
    const Color c = static_cast<Color>(i);
    const int n = ms.count(c);
    for (int j = 0; j < n; ++j) {
      if (c == from) {
        out.add(to);
        out.add(to);
      } else {
        out.add(c);
      }
    }
  }
  return out;
}

CellPattern transform_pattern(const CellPattern& p, Color from, Color to) {
  if (p.kind() != CellPattern::Kind::Multiset) return p;
  return CellPattern::exactly(replace_in_multiset(p.multiset(), from, to));
}

}  // namespace

Algorithm duplicate_color(const Algorithm& base, Color from, Color to, std::string name,
                          std::string paper_section) {
  if (base.model != Synchrony::Fsync) {
    throw std::invalid_argument("duplicate_color: only sound for FSYNC algorithms");
  }
  for (const Rule& r : base.rules) {
    if ((r.self == from) != (r.new_color == from)) {
      throw std::invalid_argument("duplicate_color: " + r.label +
                                  " recolors the duplicated color; transform unsound");
    }
  }

  Algorithm out = base;
  out.name = std::move(name);
  out.paper_section = std::move(paper_section);
  out.initial_robots.clear();
  for (const auto& [pos, color] : base.initial_robots) {
    if (color == from) {
      out.initial_robots.emplace_back(pos, to);
      out.initial_robots.emplace_back(pos, to);
    } else {
      out.initial_robots.emplace_back(pos, color);
    }
  }
  for (Rule& rule : out.rules) {
    if (rule.self == from) rule.self = to;
    if (rule.new_color == from) rule.new_color = to;
    for (auto& [offset, pattern] : rule.cells) pattern = transform_pattern(pattern, from, to);
  }
  // Shrink the palette to the colors actually used.
  int max_color = 0;
  auto track = [&max_color](Color c) {
    max_color = std::max(max_color, static_cast<int>(c));
  };
  for (const auto& [pos, color] : out.initial_robots) track(color);
  for (const Rule& rule : out.rules) {
    track(rule.self);
    track(rule.new_color);
    for (const auto& [offset, pattern] : rule.cells) {
      if (pattern.kind() == CellPattern::Kind::Multiset) {
        for (int i = 0; i < kMaxColors; ++i) {
          if (pattern.multiset().count(static_cast<Color>(i)) > 0) track(static_cast<Color>(i));
        }
      }
    }
  }
  out.num_colors = max_color + 1;
  out.validate();
  return out;
}

Algorithm derived423() {
  return duplicate_color(algorithm1(), Color::W, Color::G, "alg423-fsync-phi2-l1-chir-k3",
                         "4.2.3");
}

Algorithm derived424() {
  return duplicate_color(algorithm2(), Color::W, Color::G, "alg424-fsync-phi2-l1-nochir-k4",
                         "4.2.4");
}

Algorithm derived428() {
  return duplicate_color(algorithm4(), Color::B, Color::G, "alg428-fsync-phi1-l2-nochir-k5",
                         "4.2.8");
}

}  // namespace lumi::algorithms
