// Catalog of the fourteen Table-1 entries: model assumptions, bounds and the
// algorithm implementing each row.
#pragma once

#include <functional>
#include <span>
#include <string>

#include "src/core/algorithm.hpp"

namespace lumi::algorithms {

struct TableEntry {
  std::string section;       ///< paper section, e.g. "4.2.1"
  Synchrony synchrony;       ///< model column of Table 1
  int phi;
  int num_colors;
  Chirality chirality;
  int lower_bound;           ///< robots, from [5] or the paper's Section 3
  std::string lower_bound_source;  ///< "[5]" or "§3"
  int upper_bound;           ///< robots used by the implementing algorithm
  bool optimal;              ///< upper == lower (starred in Table 1)
  std::function<Algorithm()> make;
};

/// The fourteen rows of Table 1, in the paper's order.
std::span<const TableEntry> table1();

/// Entry by paper section; throws std::out_of_range when absent.
const TableEntry& entry(const std::string& section);

/// Throws std::invalid_argument when two entries share a paper section or
/// two `make()` results share an algorithm name — either would make
/// section/name lookups (entry(), campaign specs, algo_lint output) silently
/// ambiguous.  table1() applies this to the built-in table at registration;
/// exposed so tests can exercise it on synthetic tables.
void check_unique(std::span<const TableEntry> entries);

}  // namespace lumi::algorithms
