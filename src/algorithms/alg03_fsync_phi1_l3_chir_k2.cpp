// Algorithm 3 (paper §4.2.5): FSYNC, phi=1, colors {G,W,B}, common
// chirality, k=2.  Optimal robot count.
//
// Eastward pair is (G,W) with W leading; westward pair is (B,G) with B
// leading — the direction of travel is encoded in the color pair, which is
// how phi=1 robots with chirality tell east from west (paper Figs. 7-8):
//  * turn west (east wall): W drops south becoming G (R3) while G keeps
//    stepping east (R2); then the south robot becomes B stepping west (R4)
//    while the north one drops (R5).
//  * turn east (west wall): B drops (R8) while G steps west (R7); then B
//    becomes W stepping east (R9) while G drops (R10).
//  * termination: the trailing robot walks onto its partner, leaving a
//    two-robot stack that matches no guard.
#include "src/algorithms/algorithms.hpp"

namespace lumi::algorithms {

Algorithm algorithm3() {
  using enum Color;
  const CellPattern empty = CellPattern::empty();
  const CellPattern wall = CellPattern::wall();

  Algorithm alg;
  alg.name = "alg03-fsync-phi1-l3-chir-k2";
  alg.paper_section = "4.2.5";
  alg.model = Synchrony::Fsync;
  alg.phi = 1;
  alg.num_colors = 3;
  alg.chirality = Chirality::Common;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}, {{0, 1}, W}};

  // Proceed east: W leads, G follows onto W's vacated node.
  alg.rules.push_back(RuleBuilder("R1", W).cell("W", {G}).cell("E", empty).moves(Dir::East).build());
  alg.rules.push_back(RuleBuilder("R2", G).cell("E", {W}).moves(Dir::East).build());
  // Turn west: W drops south as G (R3); the south G recolors B heading west
  // (R4) while the north G drops (R5).
  alg.rules.push_back(RuleBuilder("R3", W)
                          .cell("W", {G})
                          .cell("E", wall)
                          .cell("S", empty)
                          .becomes(G)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R4", G)
                          .cell("N", {G})
                          .cell("E", wall)
                          .cell("W", empty)
                          .becomes(B)
                          .moves(Dir::West)
                          .build());
  alg.rules.push_back(RuleBuilder("R5", G)
                          .cell("S", {G})
                          .cell("E", wall)
                          .moves(Dir::South)
                          .build());
  // Proceed west: B leads, G follows.  Westward travel happens on rows >= 1,
  // so the row above is always explored and empty; pinning N=empty stops the
  // pair from matching these guards rotated 90 degrees at the west wall.
  alg.rules.push_back(RuleBuilder("R6", B)
                          .cell("E", {G})
                          .cell("W", empty)
                          .cell("N", empty)
                          .moves(Dir::West)
                          .build());
  alg.rules.push_back(
      RuleBuilder("R7", G).cell("W", {B}).cell("N", empty).moves(Dir::West).build());
  // Turn east: B drops (R8); then recolors W stepping east (R9) while G
  // drops onto B's vacated node (R10).
  alg.rules.push_back(RuleBuilder("R8", B)
                          .cell("E", {G})
                          .cell("W", wall)
                          .cell("S", empty)
                          .cell("N", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R9", B)
                          .cell("N", {G})
                          .cell("W", wall)
                          .cell("E", empty)
                          .becomes(W)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R10", G)
                          .cell("S", {B})
                          .cell("W", wall)
                          .moves(Dir::South)
                          .build());

  alg.validate();
  return alg;
}

}  // namespace lumi::algorithms
