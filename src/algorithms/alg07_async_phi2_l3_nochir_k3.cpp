// Algorithm 7 (paper §4.3.2): ASYNC, phi=2, colors {G,W,B}, no chirality,
// k=3.
//
// The chiral form (B under the trailing G) rotates through three states as
// the robots crawl east one at a time (R1-R3); at the east wall B drops
// first (R4), then G recolors to W and drops (R5), B slides east under the
// remaining W (R6), which finally recolors to G and drops (R7) — yielding
// the mirror form for westward travel (Fig. 14).  R8 fills the last corner
// node on the final row.
#include "src/algorithms/algorithms.hpp"

namespace lumi::algorithms {

Algorithm algorithm7() {
  using enum Color;
  const CellPattern empty = CellPattern::empty();
  const CellPattern wall = CellPattern::wall();

  Algorithm alg;
  alg.name = "alg07-async-phi2-l3-nochir-k3";
  alg.paper_section = "4.3.2";
  alg.model = Synchrony::Async;
  alg.phi = 2;
  alg.num_colors = 3;
  alg.chirality = Chirality::None;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}, {{0, 1}, W}, {{1, 0}, B}};

  // Proceed east: B hops from under G to under W, then W stretches, then G.
  alg.rules.push_back(RuleBuilder("R1", B)
                          .cell("N", {G})
                          .cell("NE", {W})
                          .cell("E", empty)
                          .cell("EE", empty)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R2", W)
                          .cell("W", {G})
                          .cell("S", {B})
                          .cell("E", empty)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R3", G)
                          .cell("EE", {W})
                          .cell("SE", {B})
                          .cell("E", empty)
                          .moves(Dir::East)
                          .build());
  // Turn west.
  alg.rules.push_back(RuleBuilder("R4", B)
                          .cell("N", {G})
                          .cell("NE", {W})
                          .cell("E", empty)
                          .cell("EE", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R5", G)
                          .cell("E", {W})
                          .cell("EE", wall)
                          .cell("S", empty)
                          .cell("SE", empty)
                          .cell("SS", {B})
                          .becomes(W)
                          .moves(Dir::South)
                          .build());
  // R6: B hops east under the wall (the paper's step).  Beyond re-forming
  // the travel shape this makes B visible (SS cell) to the corner W, whose
  // view is otherwise symmetric under the SW-NE reflection — without the
  // hop the scheduler could legally send the W west instead of south.  The
  // WW=empty gate disables R6 on 3-column grids, where B itself sits on the
  // mirror axis and could not hop deterministically (R9a-R9e below handle
  // that case).
  alg.rules.push_back(RuleBuilder("R6", B)
                          .cell("N", {W})
                          .cell("NW", empty)
                          .cell("NE", empty)
                          .cell("E", empty)
                          .cell("EE", wall)
                          .cell("WW", empty)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R7", W)
                          .cell("SW", {W})
                          .cell("SS", {B})
                          .cell("E", wall)
                          .cell("S", empty)
                          .becomes(G)
                          .moves(Dir::South)
                          .build());
  // R9a-R9e: turning on 3-column grids (gated by the EE/WW double wall).
  // Robots on the center column of a 3-wide grid have mirror-symmetric wall
  // structure, and the corner robot's view stays symmetric under the
  // diagonal reflection during the first turn, so the turn threads the wall
  // column vertically: the middle W slides east under the corner (R9a), the
  // corner W recolors to G in place (R9b, direction-free), B hops east under
  // the column (R9c), the W slides back west (R9d), and G finally drops into
  // place (R9e) with two distinct witnesses pinning its frame.
  alg.rules.push_back(RuleBuilder("R9a", W)
                          .cell("NE", {W})
                          .cell("S", {B})
                          .cell("E", empty)
                          .cell("N", empty)
                          .cell("EE", wall)
                          .cell("WW", wall)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R9b", W)
                          .cell("S", {W})
                          .cell("E", wall)
                          .cell("W", empty)
                          .becomes(G)
                          .idle()
                          .build());
  // Same recoloring when B's hop (R9c) was scheduled first and B already
  // sits two cells below (the implicit gray would otherwise reject it).
  alg.rules.push_back(RuleBuilder("R9b2", W)
                          .cell("S", {W})
                          .cell("SS", {B})
                          .cell("E", wall)
                          .cell("W", empty)
                          .becomes(G)
                          .idle()
                          .build());
  // Recovery: the corner W cannot distinguish R5's recolored-but-unmoved
  // intermediate from the legit R9b state (the two views are images of one
  // another under a symmetry), so it may recolor "early", leaving the
  // middle W at the center instead of the wall column.  R9a2 slides it back
  // into the intended position.
  alg.rules.push_back(RuleBuilder("R9a2", W)
                          .cell("NE", {G})
                          .cell("S", {B})
                          .cell("E", empty)
                          .cell("N", empty)
                          .cell("EE", wall)
                          .cell("WW", wall)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R9c", B)
                          .cell("NE", {W})
                          .cell("E", empty)
                          .cell("N", empty)
                          .cell("NN", empty)
                          .cell("EE", wall)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R9d", W)
                          .cell("N", {G})
                          .cell("S", {B})
                          .cell("E", wall)
                          .cell("W", empty)
                          .moves(Dir::West)
                          .build());
  alg.rules.push_back(RuleBuilder("R9e", G)
                          .cell("SW", {W})
                          .cell("SS", {B})
                          .cell("S", empty)
                          .cell("E", wall)
                          .moves(Dir::South)
                          .build());
  // End of exploration: the trailing W fills the last corner node.
  alg.rules.push_back(RuleBuilder("R8", W)
                          .cell("E", {G})
                          .cell("SE", {B})
                          .cell("W", wall)
                          .cell("S", empty)
                          .cell("SS", wall)
                          .moves(Dir::South)
                          .build());

  alg.validate();
  return alg;
}

}  // namespace lumi::algorithms
