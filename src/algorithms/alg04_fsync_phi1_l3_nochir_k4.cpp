// Algorithm 4 (paper §4.2.6): FSYNC, phi=1, colors {G,W,B}, no chirality,
// k=4.
//
// The robots hold a 2x2 block whose color pattern is chiral:
//     G W
//     B W
// Turning west (Fig. 9): the east column drops south (R5+R6) while the west
// column steps east (R2+R4), collapsing onto the east wall; then the two W
// robots step west (R7+R8) while B and G drop south (R9+R10), producing the
// mirror-image block for westward travel.  The final corner node is filled
// by R5 (resp. its mirror), after which three robots share one node and no
// guard matches.
#include "src/algorithms/algorithms.hpp"

namespace lumi::algorithms {

Algorithm algorithm4() {
  using enum Color;
  const CellPattern empty = CellPattern::empty();
  const CellPattern wall = CellPattern::wall();

  Algorithm alg;
  alg.name = "alg04-fsync-phi1-l3-nochir-k4";
  alg.paper_section = "4.2.6";
  alg.model = Synchrony::Fsync;
  alg.phi = 1;
  alg.num_colors = 3;
  alg.chirality = Chirality::None;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}, {{0, 1}, W}, {{1, 0}, B}, {{1, 1}, W}};

  // Proceed east (all four step together).
  alg.rules.push_back(RuleBuilder("R1", W)
                          .cell("W", {G})
                          .cell("S", {W})
                          .cell("E", empty)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(
      RuleBuilder("R2", G).cell("E", {W}).cell("S", {B}).moves(Dir::East).build());
  alg.rules.push_back(RuleBuilder("R3", W)
                          .cell("W", {B})
                          .cell("N", {W})
                          .cell("E", empty)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(
      RuleBuilder("R4", B).cell("E", {W}).cell("N", {G}).moves(Dir::East).build());
  // Turn west, phase 1: east column drops, west column closes in.
  alg.rules.push_back(RuleBuilder("R5", W)
                          .cell("W", {G})
                          .cell("S", {W})
                          .cell("E", wall)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R6", W)
                          .cell("N", {W})
                          .cell("W", {B})
                          .cell("E", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  // Turn west, phase 2: from the wall column {G / W,B / W} the W robots fan
  // west while B and G drop south.
  alg.rules.push_back(RuleBuilder("R7", W)
                          .center({W, B})
                          .cell("N", {G})
                          .cell("S", {W})
                          .cell("E", wall)
                          .cell("W", empty)
                          .moves(Dir::West)
                          .build());
  alg.rules.push_back(RuleBuilder("R8", W)
                          .cell("N", {W, B})
                          .cell("E", wall)
                          .cell("W", empty)
                          .moves(Dir::West)
                          .build());
  alg.rules.push_back(RuleBuilder("R9", B)
                          .center({W, B})
                          .cell("N", {G})
                          .cell("E", wall)
                          .cell("S", {W})
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R10", G)
                          .cell("S", {W, B})
                          .cell("E", wall)
                          .moves(Dir::South)
                          .build());

  alg.validate();
  return alg;
}

}  // namespace lumi::algorithms
