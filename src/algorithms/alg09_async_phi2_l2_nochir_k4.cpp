// Algorithm 9 (paper §4.3.4): ASYNC, phi=2, colors {G,W}, no chirality, k=4.
//
// Eastward form (Fig. 17): G with a W tail of two on the north row plus one
// W hanging under the node east of G:
//     G W W
//       W          (the hanging W marks the south side; the form is chiral)
// The four robots step east one at a time (R1-R4).  Turning west (Fig. 18)
// is an eight-step sequential dance including two in-place recolorings
// (R6: W->G, R9: G->W); the last step reuses R4 through a rotated view.
// R5 doubles as the final "fill the corner" move on the last row (its SS
// constraint distinguishes mid-grid turns from the terminal row).
#include "src/algorithms/algorithms.hpp"

namespace lumi::algorithms {

Algorithm algorithm9() {
  using enum Color;
  const CellPattern empty = CellPattern::empty();
  const CellPattern wall = CellPattern::wall();

  Algorithm alg;
  alg.name = "alg09-async-phi2-l2-nochir-k4";
  alg.paper_section = "4.3.4";
  alg.model = Synchrony::Async;
  alg.phi = 2;
  alg.num_colors = 2;
  alg.chirality = Chirality::None;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}, {{0, 1}, W}, {{0, 2}, W}, {{1, 0}, W}};

  // Proceed east: south W, then east W, then middle W, then G.
  alg.rules.push_back(RuleBuilder("R1", W)
                          .cell("N", {G})
                          .cell("NE", {W})
                          .cell("E", empty)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R2", W)
                          .cell("W", {W})
                          .cell("WW", {G})
                          .cell("SW", {W})
                          .cell("E", empty)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R3", W)
                          .cell("W", {G})
                          .cell("S", {W})
                          .cell("EE", {W})
                          .cell("E", empty)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R4", G)
                          .cell("EE", {W})
                          .cell("SE", {W})
                          .cell("E", empty)
                          .moves(Dir::East)
                          .build());
  // Turn west (Fig. 18) — and, via its mirror, the terminal corner fill.
  alg.rules.push_back(RuleBuilder("R5", W)
                          .cell("W", {W})
                          .cell("WW", {G})
                          .cell("SW", {W})
                          .cell("E", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R6", W)
                          .cell("W", {G})
                          .cell("S", {W})
                          .cell("SE", {W})
                          .cell("E", empty)
                          .cell("EE", wall)
                          .cell("SS", empty)
                          .becomes(G)
                          .idle()
                          .build());
  alg.rules.push_back(RuleBuilder("R7", G)
                          .cell("E", {G})
                          .cell("SE", {W})
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R8", G)
                          .cell("S", {W})
                          .cell("SW", {G})
                          .cell("SE", {W})
                          .cell("E", empty)
                          .cell("EE", wall)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R9", G)
                          .cell("E", {W})
                          .cell("EE", {W})
                          .cell("N", empty)
                          .cell("S", empty)
                          .cell("SE", empty)
                          .becomes(W)
                          .idle()
                          .build());
  alg.rules.push_back(RuleBuilder("R10", W)
                          .cell("N", {G})
                          .cell("W", {W})
                          .cell("WW", {W})
                          .cell("E", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());

  alg.validate();
  return alg;
}

}  // namespace lumi::algorithms
