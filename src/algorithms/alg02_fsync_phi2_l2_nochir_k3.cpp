// Algorithm 2 (paper §4.2.2): FSYNC, phi=2, colors {G,W}, no chirality, k=3.
//
// The robots keep an L-shaped, chiral form (two G on the leading row, one W
// below the trailing G) so that rotated *and mirrored* views stay
// distinguishable:
//     G G                      G G
//     W        --mirror-->       W
// Turning west (Fig. 6): both west robots drop south (R4+R5), then the
// remaining G drops while W slides under it (R6+R7), producing the mirror
// image of the eastward form; westward travel reuses the same rules through
// mirrored views.  R8 performs the final step into the last unvisited corner
// node (odd and even m are symmetric).
#include "src/algorithms/algorithms.hpp"

namespace lumi::algorithms {

Algorithm algorithm2() {
  using enum Color;
  const CellPattern empty = CellPattern::empty();
  const CellPattern wall = CellPattern::wall();

  Algorithm alg;
  alg.name = "alg02-fsync-phi2-l2-nochir-k3";
  alg.paper_section = "4.2.2";
  alg.model = Synchrony::Fsync;
  alg.phi = 2;
  alg.num_colors = 2;
  alg.chirality = Chirality::None;
  alg.min_rows = 2;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}, {{0, 1}, G}, {{1, 0}, W}};

  // Proceed east.
  alg.rules.push_back(RuleBuilder("R1", G)
                          .cell("W", {G})
                          .cell("SW", {W})
                          .cell("E", empty)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R2", G)
                          .cell("E", {G})
                          .cell("S", {W})
                          .cell("EE", empty)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R3", W)
                          .cell("N", {G})
                          .cell("NE", {G})
                          .cell("E", empty)
                          .cell("EE", empty)
                          .moves(Dir::East)
                          .build());
  // Turn west.
  alg.rules.push_back(RuleBuilder("R4", G)
                          .cell("E", {G})
                          .cell("S", {W})
                          .cell("EE", wall)
                          .cell("SS", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R5", W)
                          .cell("N", {G})
                          .cell("NE", {G})
                          .cell("E", empty)
                          .cell("EE", wall)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  // Turn west, phase 2.  The corner G's view is symmetric under the SW-NE
  // reflection (the W robot sits at distance 3, invisible), and on 3-column
  // grids the W's view is mirror-symmetric as well, so neither may move
  // first without the scheduler possibly flipping its direction.  The middle
  // G is the only robot with an asymmetric view; it leads a four-step
  // sequential dance (R6a-R6d) into the mirrored travel form.
  alg.rules.push_back(RuleBuilder("R6a", G)
                          .cell("NE", {G})
                          .cell("S", {W})
                          .cell("E", empty)
                          .cell("W", empty)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R6b", W)
                          .cell("NE", {G})
                          .cell("N", empty)
                          .cell("E", empty)
                          .cell("EE", wall)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R6c", G)
                          .cell("S", {G})
                          .cell("SS", {W})
                          .cell("E", wall)
                          .cell("W", empty)
                          .moves(Dir::West)
                          .build());
  alg.rules.push_back(RuleBuilder("R6d", G)
                          .cell("SE", {G})
                          .cell("EE", wall)
                          .cell("E", empty)
                          .cell("S", empty)
                          .moves(Dir::South)
                          .build());
  // End of exploration: the trailing G fills the last corner node.
  alg.rules.push_back(RuleBuilder("R8", G)
                          .cell("E", {G})
                          .cell("SE", {W})
                          .cell("W", wall)
                          .cell("S", empty)
                          .cell("SS", wall)
                          .moves(Dir::South)
                          .build());

  alg.validate();
  return alg;
}

}  // namespace lumi::algorithms
