#include "src/algorithms/registry.hpp"

#include <stdexcept>
#include <vector>

#include "src/algorithms/algorithms.hpp"

namespace lumi::algorithms {

namespace {

std::vector<TableEntry> build_table() {
  using enum Synchrony;
  using enum Chirality;
  std::vector<TableEntry> t;
  // FSYNC block of Table 1.
  t.push_back({"4.2.1", Fsync, 2, 2, Common, 2, "[5]", 2, true, algorithm1});
  t.push_back({"4.2.2", Fsync, 2, 2, None, 2, "[5]", 3, false, algorithm2});
  t.push_back({"4.2.3", Fsync, 2, 1, Common, 3, "[5]", 3, true, derived423});
  t.push_back({"4.2.4", Fsync, 2, 1, None, 3, "[5]", 4, false, derived424});
  t.push_back({"4.2.5", Fsync, 1, 3, Common, 2, "[5]", 2, true, algorithm3});
  t.push_back({"4.2.6", Fsync, 1, 3, None, 2, "[5]", 4, false, algorithm4});
  t.push_back({"4.2.7", Fsync, 1, 2, Common, 3, "[5]", 3, true, algorithm5});
  t.push_back({"4.2.8", Fsync, 1, 2, None, 3, "[5]", 5, false, derived428});
  // SSYNC/ASYNC block of Table 1.
  t.push_back({"4.3.1", Async, 2, 3, Common, 2, "[5]", 2, true, algorithm6});
  t.push_back({"4.3.2", Async, 2, 3, None, 2, "[5]", 3, false, algorithm7});
  t.push_back({"4.3.3", Async, 2, 2, Common, 2, "[5]", 3, false, algorithm8});
  t.push_back({"4.3.4", Async, 2, 2, None, 2, "[5]", 4, false, algorithm9});
  t.push_back({"4.3.5", Async, 1, 3, Common, 3, "§3", 3, true, algorithm10});
  t.push_back({"4.3.6", Ssync, 1, 3, None, 3, "§3", 6, false, algorithm11});  // see alg11 capability note
  check_unique(t);
  return t;
}

const std::vector<TableEntry>& table() {
  static const std::vector<TableEntry> t = build_table();
  return t;
}

}  // namespace

std::span<const TableEntry> table1() { return table(); }

void check_unique(std::span<const TableEntry> entries) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      if (entries[i].section == entries[j].section) {
        throw std::invalid_argument("registry: duplicate Table 1 section '" +
                                    entries[i].section + "' (entries " + std::to_string(i) +
                                    " and " + std::to_string(j) + ")");
      }
    }
  }
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (const TableEntry& e : entries) names.push_back(e.make().name);
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      if (names[i] == names[j]) {
        throw std::invalid_argument("registry: sections '" + entries[i].section + "' and '" +
                                    entries[j].section + "' both register algorithm '" +
                                    names[i] + "'");
      }
    }
  }
}

const TableEntry& entry(const std::string& section) {
  for (const TableEntry& e : table()) {
    if (e.section == section) return e;
  }
  throw std::out_of_range("no Table 1 entry for section " + section);
}

}  // namespace lumi::algorithms
