// Algorithm 11 (paper §4.3.6): phi=1, colors {G,W,B}, no chirality, k=6.
// Requires m >= 3.
//
// CAPABILITY NOTE: the paper claims ASYNC; this reconstruction is verified
// for FSYNC and (exhaustively, on small grids) for every SSYNC schedule.
// The paper's ASYNC-tolerant turning diagrams (Figs. 24-25) are not
// recoverable from text, and our redesigned turn — while SSYNC-proof —
// admits stale-snapshot ASYNC interleavings that break it (several phi=1
// views at the turning junction are provably symmetric, see EXPERIMENTS.md).
// Table 1's k=6 upper bound is therefore demonstrated here under SSYNC.
//
// Two coupled three-robot "trains" crawl east in lockstep (paper Figs.
// 22-23, rules R1-R6 below are faithful to the prose): the top train is
// Algorithm 10's (G,W,W) leapfrog; the bottom train is a (W+B,W) pair whose
// B member shuttles between stacks.  Cross-row guard cells force the strict
// R1->R2->R3->R4 order; R5 and R6 may run concurrently (all interleavings
// converge, as the paper argues for Fig. 23).
//
// The turning phase entry R7 follows the paper (the leading stack's G turns
// B and drops; it runs concurrently with a pending R6).  The remaining
// turning rules R8-R14 are this reproduction's own design — the paper's
// turning diagrams (Figs. 24-25) are not recoverable from text — satisfying
// the same contract: east-facing form at the wall in, mirror-image
// west-facing form one row down out (entering the crawl at its (b)-phase).
// Consequences (documented in EXPERIMENTS.md): identical robot count,
// colors, phi, route and termination; terminal configurations differ from
// the paper's by one trailing color.
#include "src/algorithms/algorithms.hpp"

namespace lumi::algorithms {

Algorithm algorithm11() {
  using enum Color;
  const CellPattern empty = CellPattern::empty();
  const CellPattern wall = CellPattern::wall();

  Algorithm alg;
  alg.name = "alg11-async-phi1-l3-nochir-k6";
  alg.paper_section = "4.3.6";
  alg.model = Synchrony::Ssync;
  alg.phi = 1;
  alg.num_colors = 3;
  alg.chirality = Chirality::None;
  alg.min_rows = 3;
  alg.min_cols = 3;
  alg.initial_robots = {{{0, 0}, G}, {{0, 1}, W}, {{0, 2}, W},
                        {{1, 0}, W}, {{1, 0}, B}, {{1, 1}, W}};

  // Proceed east (paper Figs. 22-23).
  alg.rules.push_back(
      RuleBuilder("R1", G).cell("E", {W}).cell("S", {W, B}).moves(Dir::East).build());
  alg.rules.push_back(RuleBuilder("R2", W)
                          .center({W, B})
                          .cell("N", empty)
                          .cell("E", {W})
                          .becomes(B)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R3", W)
                          .center({G, W})
                          .cell("E", {W})
                          .cell("S", {W, B})
                          .cell("W", empty)
                          .becomes(G)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R4", B)
                          .center({W, B})
                          .cell("N", {G})
                          .cell("W", {B})
                          .cell("E", empty)
                          .becomes(W)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(RuleBuilder("R5", G)
                          .center({G, W})
                          .cell("W", {G})
                          .cell("S", {W})
                          .cell("E", empty)
                          .becomes(W)
                          .moves(Dir::East)
                          .build());
  alg.rules.push_back(
      RuleBuilder("R6", B).cell("N", empty).cell("E", {W}).moves(Dir::East).build());
  // Turning phase.  R7 keeps the paper's entry action; the rest is this
  // reproduction's own design (the paper's turning diagrams are not
  // recoverable from text, DESIGN.md §1).  Phi=1 robots cannot exclude the
  // rear G's crawl rule R1 at the wall, so the turn embraces it:
  //   X:  [G, {G,W} | {W,B}, W]   (wall-stall; R6 may still be pending)
  //   R7: the stack's G drops onto the wall-side W (no recolor en route);
  //   R1: the rear G folds into the wall stack; R7c recolors the dropped
  //       G to B once that happened ({G,W} east of {G,W} never occurs
  //       mid-crawl, making the guard rotation-proof);
  //   R8/R9: the wall stack's W and B sink one row;
  //   R8: the corner stack's G drops straight onto the wall stack, making
  //        a three-color {G,W,B} stack (all members distinguishable); R9
  //        sheds its B one row down and R10 sinks the W after it —
  //        leaving the single G "pivot" at the wall;
  //   R13/R11: the bottom stacks shed their Ws westward (the G east resp.
  //        north is the trigger) and R12 recolors the stranded B to W —
  //        the G/B color contrast is what breaks every anti-transpose
  //        ambiguity at the junction;
  //   R15/R16: the corner W finally threads down through the G onto the
  //        remaining B, re-entering the mirrored crawl at its (a)-phase.
  alg.rules.push_back(RuleBuilder("R7", G)
                          .center({G, W})
                          .cell("W", {G})
                          .cell("E", wall)
                          .cell("S", {W})
                          .becomes(B)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R8", G)
                          .center({G, W})
                          .cell("W", empty)
                          .cell("S", {W, B})
                          .cell("E", wall)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R9", B)
                          .center({G, W, B})
                          .cell("N", {W})
                          .cell("W", {W, B})
                          .cell("S", empty)
                          .cell("E", wall)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R10a", G)
                          .center({G, W})
                          .cell("N", {W})
                          .cell("W", {W, B})
                          .cell("S", {B})
                          .cell("E", wall)
                          .becomes(B)
                          .idle()
                          .build());
  alg.rules.push_back(RuleBuilder("R10", W)
                          .center({W, B})
                          .cell("N", {W})
                          .cell("W", {W, B})
                          .cell("S", {B})
                          .cell("E", wall)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R13", W)
                          .center({W, B})
                          .cell("N", {B})
                          .cell("E", wall)
                          .cell("W", empty)
                          .moves(Dir::West)
                          .build());
  alg.rules.push_back(RuleBuilder("R11", W)
                          .center({W, B})
                          .cell("E", {B})
                          .cell("S", {W})
                          .cell("N", empty)
                          .cell("W", empty)
                          .moves(Dir::West)
                          .build());
  alg.rules.push_back(RuleBuilder("R12", B)
                          .cell("W", {W})
                          .cell("E", {B})
                          .cell("S", {W})
                          .cell("N", empty)
                          .becomes(W)
                          .idle()
                          .build());
  // b-variants: the corner W may drop onto the pivot (R15) before the
  // bottom row finished re-forming; the triggers then read {G,W}.
  alg.rules.push_back(RuleBuilder("R13b", W)
                          .center({W, B})
                          .cell("N", {G, W})
                          .cell("E", wall)
                          .cell("W", empty)
                          .moves(Dir::West)
                          .build());
  alg.rules.push_back(RuleBuilder("R11b", W)
                          .center({W, B})
                          .cell("E", {W, B})
                          .cell("S", {W})
                          .cell("N", empty)
                          .cell("W", empty)
                          .moves(Dir::West)
                          .build());
  alg.rules.push_back(RuleBuilder("R12b", B)
                          .cell("W", {W})
                          .cell("E", {W, B})
                          .cell("S", {W})
                          .cell("N", empty)
                          .becomes(W)
                          .idle()
                          .build());
  alg.rules.push_back(RuleBuilder("R14", B)
                          .cell("N", {W})
                          .cell("W", {W})
                          .cell("S", {B})
                          .cell("E", wall)
                          .becomes(G)
                          .idle()
                          .build());
  alg.rules.push_back(RuleBuilder("R15", W)
                          .cell("S", {G})
                          .cell("E", wall)
                          .cell("W", empty)
                          .moves(Dir::South)
                          .build());
  alg.rules.push_back(RuleBuilder("R16", W)
                          .center({G, W})
                          .cell("S", {B})
                          .cell("W", {W})
                          .cell("E", wall)
                          .moves(Dir::South)
                          .build());

  alg.validate();
  return alg;
}

}  // namespace lumi::algorithms
