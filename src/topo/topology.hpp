// Topology: the world a configuration lives on, generalizing the paper's
// plain finite m x n grid (src/core/grid.hpp forwards here; `Grid` is an
// alias of this class, so the seed grid path *is* the Topology path).
//
// One concrete value class covers every family — no virtual dispatch on the
// snapshot hot path.  A topology is a rows x cols bounding box plus two wrap
// flags and an optional wall mask:
//
//   grid          no wrap, no walls          (the paper's G = (V, E))
//   ring          cols wrap                  (the classic ring when rows == 1;
//                                             an east-west cylinder otherwise)
//   torus         rows and cols wrap         (no border: robots never see a
//                                             wall, as in unbounded-space work)
//   holes         rectangular interior hole  (walls inside the bounding box)
//   obstacles     seeded random wall mask    (validated connected, so every
//                                             generated world is explorable)
//
// Every query the simulator needs funnels through canonical_index():
// wrap-or-reject per axis, then the wall mask.  For a plain grid that is
// exactly the seed Grid's bounds check + row-major index, which is how the
// plain-grid-through-Topology path reproduces the seed path decision for
// decision (pinned by the golden-trace and Table-1 test suites).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/geometry.hpp"

namespace lumi {

class Topology {
 public:
  enum class Family : std::uint8_t { Grid, Ring, Torus, Holes, Obstacles };

  /// Plain finite grid — the seed Grid constructor, byte-for-byte semantics.
  Topology(int rows, int cols) : Topology(Family::Grid, rows, cols, false, false, {}) {}

  static Topology grid(int rows, int cols) { return Topology(rows, cols); }
  /// East-west wraparound; rows == 1 is the literature's ring of `cols`
  /// nodes (each node has exactly two neighbors).
  static Topology ring(int rows, int cols);
  /// Convenience: the classic ring of `length` nodes.
  static Topology ring(int length) { return ring(1, length); }
  /// Wraparound on both axes: a borderless world (no walls anywhere).
  static Topology torus(int rows, int cols);
  /// Grid with a rectangular hole of walls at [hole_row, hole_row+hole_rows)
  /// x [hole_col, hole_col+hole_cols).  The hole must be strictly interior
  /// (a full border ring of nodes remains), which keeps the free nodes
  /// connected.  Throws std::invalid_argument otherwise.
  static Topology with_hole(int rows, int cols, int hole_row, int hole_col, int hole_rows,
                            int hole_cols);
  /// Centered auto-sized hole (~ rows/3 x cols/3); requires rows, cols >= 3.
  static Topology with_hole(int rows, int cols);
  /// Seeded random obstacle mask: `percent`% of the eligible cells (those
  /// outside the northwest anchor region where Table-1 initial placements
  /// live) become walls.  Deterministic in (rows, cols, percent, seed) across
  /// platforms (in-repo Fisher-Yates, not std::shuffle).  Candidate masks
  /// that disconnect the free nodes are rejected and retried with a derived
  /// seed; throws std::runtime_error when no connected mask is found.
  static Topology obstacles(int rows, int cols, int percent, unsigned seed);

  // --- seed Grid surface (unchanged semantics on the plain family) ---------

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Bounding-box node count (including wall cells; occupancy arrays and
  /// visited bitmaps are indexed over this range).
  int num_nodes() const { return rows_ * cols_; }

  /// True when `v` designates a node of the world: inside the bounding box
  /// (or wrappable onto it) and not a wall.
  bool contains(Vec v) const { return canonical_index(v) >= 0; }

  /// Row-major node index; precondition: `v` canonical (contains(v) and
  /// inside the bounding box).
  int index(Vec v) const { return v.row * cols_ + v.col; }
  Vec node(int index) const { return {index / cols_, index % cols_}; }

  /// Degree-based classification used in Theorem 1's proof (wrapped axes
  /// have no border, so e.g. a torus has no end nodes).
  bool is_end_node(Vec v) const {
    int degree = 0;
    for (Dir d : kAllDirs) degree += step(v, d).has_value() ? 1 : 0;
    return degree < 4;
  }
  /// Inner node: at least 3 away from every border of a non-wrapped axis
  /// (bounding-box criterion; interior walls are not considered).
  bool is_inner_node(Vec v) const {
    const bool row_ok = wrap_rows_ || (v.row >= 3 && v.row < rows_ - 3);
    const bool col_ok = wrap_cols_ || (v.col >= 3 && v.col < cols_ - 3);
    return row_ok && col_ok;
  }

  friend bool operator==(const Topology&, const Topology&) = default;

  /// "4x6" for a plain grid (seed spelling, pinned by error-message tests);
  /// "4x6/torus", "1x8/ring", "8x8/obstacles:15:7" otherwise.
  std::string to_string() const {
    return std::to_string(rows_) + "x" + std::to_string(cols_) +
           (family_ == Family::Grid ? "" : "/" + spec_);
  }

  // --- topology surface ----------------------------------------------------

  Family family() const { return family_; }
  /// True for the no-wrap no-wall family: membership is the seed bounds
  /// check.  Snapshot loops branch on this once and use the unchecked plain
  /// path per cell.
  bool plain() const { return plain_; }
  /// Canonical machine-readable spec ("grid", "ring", "torus", "holes:HxW",
  /// "obstacles:P:S"); make_topology(spec(), rows(), cols()) reproduces this
  /// topology exactly.
  const std::string& spec() const { return spec_; }
  bool wrap_rows() const { return wrap_rows_; }
  bool wrap_cols() const { return wrap_cols_; }
  bool has_walls() const { return !wall_.empty(); }
  /// Number of real (non-wall) nodes — the coverage target for exploration.
  int reachable_nodes() const { return reachable_; }

  /// True when bounding-box index `idx` designates a real node (not a wall).
  bool is_node_index(int idx) const { return wall_.empty() || wall_[static_cast<std::size_t>(idx)] == 0; }

  /// The workhorse: canonical bounding-box index of the node `v` designates,
  /// or -1 when `v` is off-world (outside a non-wrapped axis) or a wall.
  /// The plain family takes the seed Grid's exact bounds-check + row-major
  /// index behind one precomputed flag — the snapshot hot path must not pay
  /// for wraparound or wall masks it doesn't have (bench_campaign gates the
  /// overhead at 20%).
  int canonical_index(Vec v) const {
    if (plain_) {
      return v.row >= 0 && v.row < rows_ && v.col >= 0 && v.col < cols_
                 ? v.row * cols_ + v.col
                 : -1;
    }
    return canonical_index_general(v);
  }

  /// Canonical coordinates of the node `v` designates; precondition
  /// contains(v).
  Vec canonicalize(Vec v) const { return node(canonical_index(v)); }

  /// The neighbor one edge away in direction `d`, in canonical coordinates;
  /// std::nullopt when that edge leads off-world or into a wall.
  std::optional<Vec> step(Vec from, Dir d) const {
    const int idx = canonical_index(from + dir_vec(d));
    if (idx < 0) return std::nullopt;
    return node(idx);
  }

  /// True when `from` and `to` designate nodes joined by an edge (robots
  /// move along edges; on wrapped axes the seam edge counts, and an edge
  /// never leads into a wall).
  bool are_adjacent(Vec from, Vec to) const {
    if (plain_) return manhattan(from, to) == 1;  // seed fast path
    const int ti = canonical_index(to);  // also rejects walls on holed worlds
    if (ti < 0) return false;
    for (Dir d : kAllDirs) {
      if (canonical_index(from + dir_vec(d)) == ti) return true;
    }
    return false;
  }

 private:
  Topology(Family family, int rows, int cols, bool wrap_rows, bool wrap_cols,
           std::vector<std::uint8_t> wall);

  /// Wrap-and-mask path for non-plain families; out of line to keep the
  /// inlined plain fast path small.
  int canonical_index_general(Vec v) const;

  Family family_;
  int rows_;
  int cols_;
  bool wrap_rows_;
  bool wrap_cols_;
  bool plain_;  ///< no wraps and no walls: canonical_index == seed bounds+index
  /// Bounding-box-indexed wall mask; empty when the family has no walls.
  std::vector<std::uint8_t> wall_;
  int reachable_;
  std::string spec_;
};

std::string to_string(Topology::Family family);

/// True when every free node of `wall` (a rows x cols mask, 1 = wall) is
/// reachable from every other along 4-neighbor edges (wrapping per the
/// flags), and at least one free node exists.  The validator the obstacle
/// generator runs on every candidate mask before accepting it.
bool mask_connected(int rows, int cols, const std::vector<std::uint8_t>& wall, bool wrap_rows,
                    bool wrap_cols);

/// Parses a topology spec — "grid", "ring", "torus", "holes",
/// "holes:HxW[@RxC]", "obstacles:P:S" — against the given bounding box.
/// Throws std::invalid_argument on an unknown or malformed spec, or when
/// the family cannot be built at these dimensions.
Topology make_topology(const std::string& spec, int rows, int cols);

/// True when `spec` is grammatically valid, independent of dimensions (the
/// CLI's typo check: a well-formed spec that doesn't fit some cell is a
/// skip at expansion, not an input error).
bool topology_spec_parses(const std::string& spec);

/// True when `spec` parses and builds at the given dimensions.
bool topology_spec_ok(const std::string& spec, int rows, int cols);

/// The spellings accepted by make_topology, for CLI help text.
const char* topology_spec_grammar();

}  // namespace lumi
