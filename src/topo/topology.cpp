#include "src/topo/topology.hpp"

#include <algorithm>

#include "src/core/rng.hpp"

namespace lumi {

namespace {

/// Strict non-negative base-10 integer; false on empty/garbage/overflow.
bool parse_uint(const std::string& s, long long& out) {
  if (s.empty()) return false;
  long long v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
    if (v > 1'000'000'000LL) return false;
  }
  out = v;
  return true;
}

/// Table-1 initial placements all live in the northwest 3x3 block (positions
/// are bounded by the algorithms' min_rows x min_cols, at most 3 x 3), so
/// the obstacle generator never walls that anchor region.
constexpr int kAnchorRows = 3;
constexpr int kAnchorCols = 3;

}  // namespace

std::string to_string(Topology::Family family) {
  switch (family) {
    case Topology::Family::Grid: return "grid";
    case Topology::Family::Ring: return "ring";
    case Topology::Family::Torus: return "torus";
    case Topology::Family::Holes: return "holes";
    case Topology::Family::Obstacles: return "obstacles";
  }
  throw std::invalid_argument("to_string: bad Topology::Family");
}

Topology::Topology(Family family, int rows, int cols, bool wrap_rows, bool wrap_cols,
                   std::vector<std::uint8_t> wall)
    : family_(family),
      rows_(rows),
      cols_(cols),
      wrap_rows_(wrap_rows),
      wrap_cols_(wrap_cols),
      plain_(!wrap_rows && !wrap_cols && wall.empty()),
      wall_(std::move(wall)),
      spec_(lumi::to_string(family)) {  // qualified: the member to_string() shadows it
  if (rows < 1 || cols < 1) throw std::invalid_argument("Grid dimensions must be positive");
  if (!wall_.empty() && wall_.size() != static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    throw std::invalid_argument("Topology: wall mask size mismatch");
  }
  int walls = 0;
  for (const std::uint8_t w : wall_) walls += w ? 1 : 0;
  reachable_ = rows_ * cols_ - walls;
}

int Topology::canonical_index_general(Vec v) const {
  int r = v.row;
  int c = v.col;
  if (r < 0 || r >= rows_) {
    if (!wrap_rows_) return -1;
    r %= rows_;
    if (r < 0) r += rows_;
  }
  if (c < 0 || c >= cols_) {
    if (!wrap_cols_) return -1;
    c %= cols_;
    if (c < 0) c += cols_;
  }
  const int idx = r * cols_ + c;
  if (!wall_.empty() && wall_[static_cast<std::size_t>(idx)]) return -1;
  return idx;
}

Topology Topology::ring(int rows, int cols) {
  return Topology(Family::Ring, rows, cols, false, true, {});
}

Topology Topology::torus(int rows, int cols) {
  return Topology(Family::Torus, rows, cols, true, true, {});
}

Topology Topology::with_hole(int rows, int cols, int hole_row, int hole_col, int hole_rows,
                             int hole_cols) {
  if (hole_rows < 1 || hole_cols < 1) {
    throw std::invalid_argument("with_hole: hole dimensions must be positive");
  }
  // Strictly interior: a full ring of free border nodes must remain, which
  // is what keeps the free nodes connected for any hole position.
  if (hole_row < 1 || hole_col < 1 || hole_row + hole_rows > rows - 1 ||
      hole_col + hole_cols > cols - 1) {
    throw std::invalid_argument("with_hole: hole must be strictly interior to the " +
                                std::to_string(rows) + "x" + std::to_string(cols) + " box");
  }
  std::vector<std::uint8_t> wall(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
                                 0);
  for (int r = hole_row; r < hole_row + hole_rows; ++r) {
    for (int c = hole_col; c < hole_col + hole_cols; ++c) {
      wall[static_cast<std::size_t>(r * cols + c)] = 1;
    }
  }
  Topology out(Family::Holes, rows, cols, false, false, std::move(wall));
  // Comma-free spec: topology lists are comma-separated on the CLI, so the
  // position separator reuses 'x'.
  out.spec_ = "holes:" + std::to_string(hole_rows) + "x" + std::to_string(hole_cols) + "@" +
              std::to_string(hole_row) + "x" + std::to_string(hole_col);
  return out;
}

Topology Topology::with_hole(int rows, int cols) {
  if (rows < 3 || cols < 3) {
    throw std::invalid_argument("with_hole: need at least a 3x3 box for an interior hole");
  }
  const int hole_rows = std::max(1, rows / 3);
  const int hole_cols = std::max(1, cols / 3);
  return with_hole(rows, cols, (rows - hole_rows) / 2, (cols - hole_cols) / 2, hole_rows,
                   hole_cols);
}

Topology Topology::obstacles(int rows, int cols, int percent, unsigned seed) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("Grid dimensions must be positive");
  if (percent < 0 || percent > 90) {
    throw std::invalid_argument("obstacles: percent must be in [0, 90]");
  }
  // Cells eligible to become walls: everything outside the NW anchor region.
  std::vector<int> eligible;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (r < kAnchorRows && c < kAnchorCols) continue;
      eligible.push_back(r * cols + c);
    }
  }
  const int target = static_cast<int>(eligible.size()) * percent / 100;
  const std::size_t size = static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);

  constexpr int kMaxAttempts = 64;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    // Derived per-attempt seed, so rejection and retry stay deterministic in
    // (rows, cols, percent, seed) across platforms (in-repo Fisher-Yates).
    rng::Engine rng(seed + 0x9e3779b9u * static_cast<unsigned>(attempt));
    std::vector<int> cells = eligible;
    fisher_yates(cells, rng);
    std::vector<std::uint8_t> wall(size, 0);
    for (int i = 0; i < target; ++i) wall[static_cast<std::size_t>(cells[static_cast<std::size_t>(i)])] = 1;
    if (!mask_connected(rows, cols, wall, false, false)) continue;
    Topology out(Family::Obstacles, rows, cols, false, false, std::move(wall));
    out.spec_ = "obstacles:" + std::to_string(percent) + ":" + std::to_string(seed);
    return out;
  }
  throw std::runtime_error("obstacles: no connected mask found for " + std::to_string(rows) +
                           "x" + std::to_string(cols) + " at " + std::to_string(percent) +
                           "% (seed " + std::to_string(seed) + ")");
}

bool mask_connected(int rows, int cols, const std::vector<std::uint8_t>& wall, bool wrap_rows,
                    bool wrap_cols) {
  const int n = rows * cols;
  if (static_cast<int>(wall.size()) != n) return false;
  int start = -1;
  int free_count = 0;
  for (int i = 0; i < n; ++i) {
    if (wall[static_cast<std::size_t>(i)]) continue;
    ++free_count;
    if (start < 0) start = i;
  }
  if (free_count == 0) return false;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);
  std::vector<int> stack = {start};
  seen[static_cast<std::size_t>(start)] = 1;
  int visited = 0;
  while (!stack.empty()) {
    const int idx = stack.back();
    stack.pop_back();
    ++visited;
    const int r = idx / cols;
    const int c = idx % cols;
    for (Dir d : kAllDirs) {
      const Vec v = Vec{r, c} + dir_vec(d);
      int nr = v.row;
      int nc = v.col;
      if (nr < 0 || nr >= rows) {
        if (!wrap_rows) continue;
        nr = (nr % rows + rows) % rows;
      }
      if (nc < 0 || nc >= cols) {
        if (!wrap_cols) continue;
        nc = (nc % cols + cols) % cols;
      }
      const int ni = nr * cols + nc;
      if (wall[static_cast<std::size_t>(ni)] || seen[static_cast<std::size_t>(ni)]) continue;
      seen[static_cast<std::size_t>(ni)] = 1;
      stack.push_back(ni);
    }
  }
  return visited == free_count;
}

namespace {

/// Dimension-independent decoding of a spec string.
struct ParsedSpec {
  Topology::Family family = Topology::Family::Grid;
  long long hole_rows = 0, hole_cols = 0;  ///< holes
  long long hole_row = -1, hole_col = -1;  ///< holes; -1 = center at build time
  long long percent = 0, seed = 0;         ///< obstacles
};

/// Grammar check only — no topology is built, so a spec that merely does not
/// fit some particular bounding box still parses (the CLI validates syntax
/// here; expansion decides fit per cell).  Throws std::invalid_argument.
ParsedSpec parse_spec(const std::string& spec) {
  const auto bad = [&spec](const std::string& why) -> std::invalid_argument {
    return std::invalid_argument("topology '" + spec + "': " + why);
  };
  ParsedSpec out;
  if (spec == "grid") return out;
  if (spec == "ring") {
    out.family = Topology::Family::Ring;
    return out;
  }
  if (spec == "torus") {
    out.family = Topology::Family::Torus;
    return out;
  }
  if (spec == "holes" || spec.rfind("holes:", 0) == 0) {
    out.family = Topology::Family::Holes;
    if (spec == "holes") return out;  // auto-sized, centered
    // holes:HxW or holes:HxW@RxC
    std::string body = spec.substr(6);
    const std::size_t at = body.find('@');
    if (at != std::string::npos) {
      const std::string pos = body.substr(at + 1);
      body = body.substr(0, at);
      const std::size_t px = pos.find('x');
      if (px == std::string::npos || !parse_uint(pos.substr(0, px), out.hole_row) ||
          !parse_uint(pos.substr(px + 1), out.hole_col)) {
        throw bad("expected holes:HxW@RxC");
      }
    }
    const std::size_t x = body.find('x');
    if (x == std::string::npos || !parse_uint(body.substr(0, x), out.hole_rows) ||
        !parse_uint(body.substr(x + 1), out.hole_cols)) {
      throw bad("expected holes:HxW or holes:HxW@RxC");
    }
    if (out.hole_rows < 1 || out.hole_cols < 1) throw bad("hole dimensions must be positive");
    return out;
  }
  if (spec.rfind("obstacles:", 0) == 0) {
    out.family = Topology::Family::Obstacles;
    const std::string body = spec.substr(10);
    const std::size_t colon = body.find(':');
    if (colon == std::string::npos || !parse_uint(body.substr(0, colon), out.percent) ||
        !parse_uint(body.substr(colon + 1), out.seed)) {
      throw bad("expected obstacles:PERCENT:SEED");
    }
    if (out.percent > 90) throw bad("percent must be in [0, 90]");
    return out;
  }
  throw bad(std::string("unknown family; expected ") + topology_spec_grammar());
}

}  // namespace

Topology make_topology(const std::string& spec, int rows, int cols) {
  const ParsedSpec p = parse_spec(spec);
  switch (p.family) {
    case Topology::Family::Grid: return Topology::grid(rows, cols);
    case Topology::Family::Ring: return Topology::ring(rows, cols);
    case Topology::Family::Torus: return Topology::torus(rows, cols);
    case Topology::Family::Holes: {
      if (p.hole_rows == 0) return Topology::with_hole(rows, cols);  // auto
      const long long r0 = p.hole_row >= 0 ? p.hole_row : (rows - p.hole_rows) / 2;
      const long long c0 = p.hole_col >= 0 ? p.hole_col : (cols - p.hole_cols) / 2;
      return Topology::with_hole(rows, cols, static_cast<int>(r0), static_cast<int>(c0),
                                 static_cast<int>(p.hole_rows), static_cast<int>(p.hole_cols));
    }
    case Topology::Family::Obstacles:
      return Topology::obstacles(rows, cols, static_cast<int>(p.percent),
                                 static_cast<unsigned>(p.seed));
  }
  throw std::invalid_argument("make_topology: bad family");
}

bool topology_spec_parses(const std::string& spec) {
  try {
    parse_spec(spec);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool topology_spec_ok(const std::string& spec, int rows, int cols) {
  try {
    make_topology(spec, rows, cols);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

const char* topology_spec_grammar() {
  return "grid | ring | torus | holes[:HxW[@RxC]] | obstacles:PERCENT:SEED";
}

}  // namespace lumi
