#include "src/sched/async_schedulers.hpp"

#include "src/core/rng.hpp"

namespace lumi {

namespace {
Action random_action(rng::Engine& rng, const std::vector<Action>& choices) {
  return choices[bounded_draw(rng, static_cast<std::uint32_t>(choices.size()))];
}
}  // namespace

AsyncRandomScheduler::AsyncRandomScheduler(unsigned seed) : rng_(seed) {}

int AsyncRandomScheduler::pick_robot(const AsyncEngine&, const std::vector<int>& effective) {
  return effective[bounded_draw(rng_, static_cast<std::uint32_t>(effective.size()))];
}

Action AsyncRandomScheduler::pick_action(const AsyncEngine&, int,
                                         const std::vector<Action>& choices) {
  return random_action(rng_, choices);
}

int AsyncCentralizedScheduler::pick_robot(const AsyncEngine& engine,
                                          const std::vector<int>& effective) {
  for (int robot : effective) {
    if (engine.phase(robot) != Phase::Idle) return robot;  // finish started cycles first
  }
  // All candidates are Idle: rotate for fairness.
  for (std::size_t i = 0; i < effective.size(); ++i) {
    if (effective[i] >= next_) {
      next_ = effective[i] + 1;
      return effective[i];
    }
  }
  next_ = effective.front() + 1;
  return effective.front();
}

Action AsyncCentralizedScheduler::pick_action(const AsyncEngine&, int,
                                              const std::vector<Action>& choices) {
  return choices.front();
}

AsyncStaleStressScheduler::AsyncStaleStressScheduler(unsigned seed) : rng_(seed) {}

int AsyncStaleStressScheduler::pick_robot(const AsyncEngine& engine,
                                          const std::vector<int>& effective) {
  // Prefer starting new Looks (accumulating concurrent pending cycles);
  // among equals pick randomly.
  std::vector<int> idle;
  for (int robot : effective) {
    if (engine.phase(robot) == Phase::Idle) idle.push_back(robot);
  }
  const std::vector<int>& pool = idle.empty() ? effective : idle;
  return pool[bounded_draw(rng_, static_cast<std::uint32_t>(pool.size()))];
}

Action AsyncStaleStressScheduler::pick_action(const AsyncEngine&, int,
                                              const std::vector<Action>& choices) {
  return random_action(rng_, choices);
}

}  // namespace lumi
