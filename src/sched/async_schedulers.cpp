#include "src/sched/async_schedulers.hpp"

namespace lumi {

namespace {
Action random_action(std::mt19937& rng, const std::vector<Action>& choices) {
  std::uniform_int_distribution<std::size_t> dist(0, choices.size() - 1);
  return choices[dist(rng)];
}
}  // namespace

AsyncRandomScheduler::AsyncRandomScheduler(unsigned seed) : rng_(seed) {}

int AsyncRandomScheduler::pick_robot(const AsyncEngine&, const std::vector<int>& effective) {
  std::uniform_int_distribution<std::size_t> dist(0, effective.size() - 1);
  return effective[dist(rng_)];
}

Action AsyncRandomScheduler::pick_action(const AsyncEngine&, int,
                                         const std::vector<Action>& choices) {
  return random_action(rng_, choices);
}

int AsyncCentralizedScheduler::pick_robot(const AsyncEngine& engine,
                                          const std::vector<int>& effective) {
  for (int robot : effective) {
    if (engine.phase(robot) != Phase::Idle) return robot;  // finish started cycles first
  }
  // All candidates are Idle: rotate for fairness.
  for (std::size_t i = 0; i < effective.size(); ++i) {
    if (effective[i] >= next_) {
      next_ = effective[i] + 1;
      return effective[i];
    }
  }
  next_ = effective.front() + 1;
  return effective.front();
}

Action AsyncCentralizedScheduler::pick_action(const AsyncEngine&, int,
                                              const std::vector<Action>& choices) {
  return choices.front();
}

AsyncStaleStressScheduler::AsyncStaleStressScheduler(unsigned seed) : rng_(seed) {}

int AsyncStaleStressScheduler::pick_robot(const AsyncEngine& engine,
                                          const std::vector<int>& effective) {
  // Prefer starting new Looks (accumulating concurrent pending cycles);
  // among equals pick randomly.
  std::vector<int> idle;
  for (int robot : effective) {
    if (engine.phase(robot) == Phase::Idle) idle.push_back(robot);
  }
  const std::vector<int>& pool = idle.empty() ? effective : idle;
  std::uniform_int_distribution<std::size_t> dist(0, pool.size() - 1);
  return pool[dist(rng_)];
}

Action AsyncStaleStressScheduler::pick_action(const AsyncEngine&, int,
                                              const std::vector<Action>& choices) {
  return random_action(rng_, choices);
}

}  // namespace lumi
